(** The memcached workload (Table 2): an in-memory key-value cache whose
    store is one recoverable map; 95% sets / 5% gets, 16-byte keys,
    512-byte values.

    This is the port the paper describes in Section 6.2: memcached's cache
    logic decoupled from its custom in-place hashmap and rebound to a
    recoverable map -- every set is a single-update FASE on one map (the
    Basic interface's common case). *)

module Mod_kv = Mod_core.Dmap.Make (Pfds.Kv.String_blob) (Pfds.Kv.String_blob)
module Pm_kv = Pmstm.Pm_hashmap.Make (Pfds.Kv.String_blob) (Pfds.Kv.String_blob)

type instance = Mkv of Mod_kv.t | Pkv of int

let setup ctx ~expected =
  match Backend.kind ctx with
  | Backend.Mod ->
      Mkv (Mod_kv.open_or_create ~persist:(Backend.persist ctx) (Backend.heap ctx) ~slot:Micro.ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pm_kv.create tx ~nbuckets:(max 64 expected) in
          Pmstm.Tx.add tx ~off:Micro.ds_slot ~words:1;
          Pmstm.Tx.store tx Micro.ds_slot (Pmem.Word.of_ptr desc);
          Pkv desc)

let set ctx inst k v =
  match inst with
  | Mkv m -> Mod_kv.insert m k v
  | Pkv desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> ignore (Pm_kv.insert tx desc k v : bool))

let get ctx inst k =
  match inst with
  | Mkv m -> ignore (Mod_kv.find m k : string option)
  | Pkv desc -> ignore (Pm_kv.find (Backend.heap ctx) desc k : string option)

(* Key popularity is skewed towards a hot working set, like a cache. *)
let pick_key rng ~keyspace =
  let i =
    if Random.State.int rng 100 < 80 then Random.State.int rng (max 1 (keyspace / 10))
    else Random.State.int rng keyspace
  in
  Printf.sprintf "k%015d" i

let run ?(batch = 1) ctx ~ops ~keyspace =
  let inst = setup ctx ~expected:keyspace in
  let rng = Backend.rng ctx in
  (* warm the cache *)
  for _ = 1 to keyspace / 4 do
    set ctx inst (pick_key rng ~keyspace) (Codecs.value512 rng)
  done;
  Backend.start_measuring ctx;
  (* --batch N: retire sets in groups, the group-commit request loop of
     the ISSUE -- gets still read the staged (pending) version so the
     cache stays read-your-writes consistent within a group. *)
  match inst with
  | Mkv _ when batch > 1 ->
      let heap = Backend.heap ctx in
      Micro.batched_mod_loop ctx ~ops ~batch (fun b ->
          let k = pick_key rng ~keyspace in
          if Random.State.int rng 100 < 95 then begin
            let v = Codecs.value512 rng in
            Mod_core.Batch.stage b ~slot:Micro.ds_slot (fun version ->
                Mod_kv.insert_pure heap version k v);
            true
          end
          else begin
            ignore
              (Mod_kv.find_in heap
                 (Mod_core.Batch.pending b ~slot:Micro.ds_slot)
                 k
                : string option);
            false
          end)
  | Pkv _ when batch > 1 ->
      Micro.batched_stm_loop ctx ~ops ~batch (fun () ->
          let k = pick_key rng ~keyspace in
          if Random.State.int rng 100 < 95 then
            set ctx inst k (Codecs.value512 rng)
          else get ctx inst k)
  | _ ->
      for _ = 1 to ops do
        Backend.op_pause ctx;
        let k = pick_key rng ~keyspace in
        if Random.State.int rng 100 < 95 then
          set ctx inst k (Codecs.value512 rng)
        else get ctx inst k
      done
