(** Key/value shapes used by the Table 2 workloads.

    The microbenchmarks use 8-byte keys/elements with 32-byte values
    (map/set); memcached uses 16-byte keys and 512-byte values.  [Val32]
    renders an integer payload as a 32-byte blob so both backends move the
    same number of value bytes as the paper's configuration. *)

module Val32 : Pfds.Kv.CODEC with type t = int = struct
  type t = int

  let equal = Int.equal
  let hash = Pfds.Kv.mix_int
  let to_string v = Printf.sprintf "%032d" (abs v)
  let write heap v = Pfds.Kv.String_blob.write heap (to_string v)
  let read heap w = int_of_string (Pfds.Kv.String_blob.read heap w)
  let log_word _ = None
end

let key16 rng =
  Printf.sprintf "k%015d" (Random.State.int rng 1_000_000_000)

let value512 rng =
  let seed = Random.State.int rng 1_000_000_000 in
  let base = Printf.sprintf "v%09d-" seed in
  let buf = Buffer.create 512 in
  while Buffer.length buf < 512 do
    Buffer.add_string buf base
  done;
  String.sub (Buffer.contents buf) 0 512
