(** Plain-text rendering helpers for the benchmark harness: fixed-width
    tables, horizontal stacked bars, and aligned scatter listings, so each
    figure of the paper has a legible terminal counterpart. *)

let hrule width = String.make width '-'

let pad s width =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let rpad s width =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

(* A stacked horizontal bar: each segment is (label char, fraction). *)
let stacked_bar ?(width = 50) segments =
  let buf = Buffer.create width in
  let total_cells = ref 0 in
  let n = List.length segments in
  List.iteri
    (fun i (ch, frac) ->
      let cells =
        if i = n - 1 then max 0 (width - !total_cells)
        else
          let c = int_of_float (Float.round (frac *. float_of_int width)) in
          min c (width - !total_cells)
      in
      total_cells := !total_cells + cells;
      Buffer.add_string buf (String.make cells ch))
    segments;
  Buffer.contents buf

(* A plain proportional bar. *)
let bar ?(width = 40) ~max_value value =
  if max_value <= 0.0 then ""
  else
    let cells =
      int_of_float (Float.round (value /. max_value *. float_of_int width))
    in
    String.make (max 0 (min width cells)) '#'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (hrule 78) title (hrule 78)

let subsection title = Printf.printf "\n-- %s\n" title

let row cells widths =
  let line =
    String.concat "  " (List.map2 (fun c w -> pad c w) cells widths)
  in
  print_endline line

let row_r cells widths =
  (* first cell left-aligned, the rest right-aligned: numeric tables *)
  match (cells, widths) with
  | c0 :: crest, w0 :: wrest ->
      let line =
        String.concat "  "
          (pad c0 w0 :: List.map2 (fun c w -> rpad c w) crest wrest)
      in
      print_endline line
  | _ -> ()

let fraction_pct f = Printf.sprintf "%5.1f%%" (100.0 *. f)
let ns_ms ns = Printf.sprintf "%8.2f ms" (ns /. 1e6)
let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v

(** Minimal JSON for the machine-readable harness output (BENCH_*.json)
    and for reading committed baselines back in regression checks.  Only
    what the harness needs -- no external dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_repr f =
    if Float.is_nan f || Float.abs f = infinity then "null"
    else Printf.sprintf "%.12g" f

  let rec emit buf indent t =
    let pad n = Buffer.add_string buf (String.make n ' ') in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            emit buf (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            emit buf (indent + 2) v)
          kvs;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    emit buf 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let to_file path t =
    let oc = open_out path in
    output_string oc (to_string t);
    close_out oc

  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "bad escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char buf '"'
                 | '\\' -> Buffer.add_char buf '\\'
                 | '/' -> Buffer.add_char buf '/'
                 | 'n' -> Buffer.add_char buf '\n'
                 | 'r' -> Buffer.add_char buf '\r'
                 | 't' -> Buffer.add_char buf '\t'
                 | 'u' ->
                     if !pos + 4 >= n then fail "bad unicode escape";
                     let code =
                       int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                     in
                     pos := !pos + 4;
                     (* harness strings are ASCII; clamp the rest *)
                     Buffer.add_char buf
                       (if code < 128 then Char.chr code else '?')
                 | c -> fail (Printf.sprintf "bad escape \\%c" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        incr pos
      done;
      let lit = String.sub s start (!pos - start) in
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lit))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            items []
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let of_file path =
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s

  (* accessors for the regression checks *)
  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let to_list_opt = function List l -> Some l | _ -> None

  let to_number_opt = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None

  let to_string_opt = function String s -> Some s | _ -> None
end
