(** Workload backends: the three systems Figure 9 compares.

    - [Mod]    -- the paper's contribution (this library);
    - [Pmdk14] -- PM-STM baseline with per-snapshot-fence undo logging;
    - [Pmdk15] -- PM-STM baseline with hybrid undo-redo logging.

    A context owns a fresh simulated heap; PMDK contexts carry the
    transaction machinery, a MOD context creates one lazily only if a
    CommitUnrelated needs it. *)

type kind = Mod | Pmdk14 | Pmdk15

let kind_name = function
  | Mod -> "MOD"
  | Pmdk14 -> "PMDK-1.4"
  | Pmdk15 -> "PMDK-1.5"

let all_kinds = [ Pmdk14; Pmdk15; Mod ]

type t = {
  kind : kind;
  heap : Pmalloc.Heap.t;
  mutable tx : Pmstm.Tx.t option;
  rng : Random.State.t;
  persist : Pmalloc.Heap.policy;
      (* commit policy the MOD structure setups promote their slots to *)
}

let create ?(capacity_words = 1 lsl 21) ?(trace = false) ?(seed = 7)
    ?(persist = Pmalloc.Heap.Full) kind =
  let heap = Pmalloc.Heap.create ~capacity_words ~trace ~seed () in
  let tx =
    match kind with
    | Mod -> None
    | Pmdk14 -> Some (Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_4)
    | Pmdk15 -> Some (Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5)
  in
  { kind; heap; tx; rng = Random.State.make [| seed |]; persist }

let heap t = t.heap
let kind t = t.kind
let rng t = t.rng
let persist t = t.persist
let stats t = Pmalloc.Heap.stats t.heap

let tx t =
  match t.tx with
  | Some tx -> tx
  | None ->
      let tx = Pmstm.Tx.create t.heap ~version:Pmstm.Tx.V1_5 in
      t.tx <- Some tx;
      tx

(* Run [f] inside a transaction on PMDK backends; MOD operations carry
   their own commit and run bare. *)
let atomically t f =
  match t.kind with
  | Mod -> f ()
  | Pmdk14 | Pmdk15 -> Pmstm.Tx.run (tx t) f

(* Charge the per-iteration application logic (key generation, branching,
   call overhead) that surrounds each datastructure operation.  Its stack
   and code accesses are L1-resident; they enter the hit count so the
   miss-ratio denominator reflects whole-program accesses, as the paper's
   hardware counters do (Figure 11). *)
let app_accesses_per_op = 50

let op_pause t =
  let s = stats t in
  Pmem.Stats.advance s Pmem.Config.op_overhead_ns;
  s.Pmem.Stats.l1_hits <- s.Pmem.Stats.l1_hits + app_accesses_per_op

(* Reset the measurement clock after setup so results cover only the
   measured operation loop.  Any installed telemetry collector watching
   this heap re-bases with the stats block, or its attribution totals
   would go negative against the zeroed counters. *)
let start_measuring t =
  Pmem.Stats.reset (stats t);
  (match Pmalloc.Heap.telemetry t.heap with
  | Some c -> Telemetry.reset c
  | None -> Telemetry.on_stats_reset (stats t));
  Pmem.Trace.clear (Pmalloc.Heap.trace t.heap)

(* Telemetry gauge sampler over this context's allocator. *)
let gauges t =
  let a = Pmalloc.Heap.allocator t.heap in
  fun () ->
    {
      Telemetry.g_live_words = Pmalloc.Allocator.live_words a;
      g_free_words = Pmalloc.Allocator.free_words a;
      g_deferred_words = Pmalloc.Allocator.deferred_words a;
      g_high_water_words = Pmalloc.Allocator.high_water_words a;
      g_alloc_words_total = Pmalloc.Allocator.alloc_words_total a;
    }
