(** Workload orchestration: run any Table 2 workload on any backend and
    collect the measurements the figures need. *)

type result = {
  workload : string;
  backend : Backend.kind;
  ops : int;
  batch : int; (* group-commit size; 1 = one FASE / transaction per op *)
  ns_total : float;
  ns_flush : float;
  ns_log : float;
  ns_other : float;
  fences : int;
  flushes : int;
  commits : int;
  loads : int;
  stores : int;
  miss_ratio : float;
  live_words : int;
  high_water_words : int;
  telemetry : Telemetry.report option;
      (* per-(structure x op) histograms + fence-stall attribution, when
         the run was started with ?metrics *)
}

let names =
  [ "map"; "set"; "queue"; "stack"; "vector"; "vec-swap"; "bfs"; "vacation";
    "memcached" ]

(* Scale knobs per workload: the paper runs 1M iterations of each; [scale]
   sets the iteration count here, with per-workload adjustments for the
   heavier applications. *)
let dispatch ?(batch = 1) name ~scale ctx =
  let ops = scale in
  match name with
  | "map" -> (Micro.map_run ~batch ctx ~ops ~size:scale, ops)
  | "set" -> (Micro.set_run ~batch ctx ~ops ~size:scale, ops)
  | "queue" -> (Micro.queue_run ~batch ctx ~ops ~size:scale, ops)
  | "stack" -> (Micro.stack_run ~batch ctx ~ops ~size:scale, ops)
  | "vector" -> (Micro.vector_run ~batch ctx ~ops ~size:scale, ops)
  | "vec-swap" -> (Micro.vec_swap_run ctx ~ops ~size:scale, ops)
  | "bfs" ->
      let nodes = max 64 (scale / 12) in
      (Graph.run ctx ~nodes ~edges:scale, scale)
  | "vacation" ->
      let relations = max 64 (scale / 10) in
      (Vacation.run ctx ~ops ~relations, ops)
  | "memcached" ->
      let ops = max 1 (scale / 5) in
      let keyspace = max 64 (scale / 5) in
      (Memcached.run ~batch ctx ~ops ~keyspace, ops)
  | other -> invalid_arg (Printf.sprintf "Runner: unknown workload %S" other)

let run_one ?(capacity_words = 1 lsl 21) ?(trace = false) ?(batch = 1) ?metrics
    ?persist ?seed name backend ~scale =
  let ctx = Backend.create ~capacity_words ~trace ?seed ?persist backend in
  (* instance-scoped: the collector rides on this run's heap, so
     concurrent runs (shards) never fight over a process-wide slot *)
  let collector =
    Option.map
      (fun sink -> Pmalloc.Heap.attach_telemetry ~sink (Backend.heap ctx))
      metrics
  in
  let (), ops = dispatch ~batch name ~scale ctx in
  let telemetry = Option.map Telemetry.report collector in
  let s = Backend.stats ctx in
  let allocator = Pmalloc.Heap.allocator (Backend.heap ctx) in
  {
    workload = name;
    backend;
    ops;
    batch;
    ns_total = s.Pmem.Stats.now_ns;
    ns_flush = s.Pmem.Stats.ns_flush;
    ns_log = s.Pmem.Stats.ns_log;
    ns_other = s.Pmem.Stats.ns_other;
    fences = s.Pmem.Stats.fences;
    flushes = s.Pmem.Stats.clwbs;
    commits = s.Pmem.Stats.commits;
    loads = s.Pmem.Stats.loads;
    stores = s.Pmem.Stats.stores;
    miss_ratio = Pmem.Stats.miss_ratio s;
    live_words = Pmalloc.Allocator.live_words allocator;
    high_water_words = Pmalloc.Allocator.high_water_words allocator;
    telemetry;
  }

(* Same run, but also return the trace for consistency checking. *)
let run_traced name backend ~scale =
  let ctx = Backend.create ~capacity_words:(1 lsl 21) ~trace:true backend in
  let (), _ops = dispatch name ~scale ctx in
  Pmalloc.Heap.trace (Backend.heap ctx)

let flush_fraction r = if r.ns_total = 0.0 then 0.0 else r.ns_flush /. r.ns_total
let log_fraction r = if r.ns_total = 0.0 then 0.0 else r.ns_log /. r.ns_total

let fences_per_op r = float_of_int r.fences /. float_of_int (max 1 r.ops)
let flushes_per_op r = float_of_int r.flushes /. float_of_int (max 1 r.ops)
let ns_per_op r = r.ns_total /. float_of_int (max 1 r.ops)
let fences_per_commit r = float_of_int r.fences /. float_of_int (max 1 r.commits)
