(** The six microbenchmark workloads of Table 2, each runnable on the MOD
    and PMDK backends.

    Every workload follows the paper's harness: set up and prefill the
    datastructure, reset the measurement clock, then run [ops] iterations
    of the operation mix (the paper runs 1 million; the scale here is a
    parameter).  Lookups never flush or fence on either backend
    (Section 6.4), so only update operations are wrapped in PM-STM
    transactions on the PMDK backends. *)

module Mod_map = Mod_core.Dmap.Make (Pfds.Kv.Int) (Codecs.Val32)
module Mod_set = Mod_core.Dset.Make (Pfds.Kv.Int)
module Pm_map = Pmstm.Pm_hashmap.Make (Pfds.Kv.Int) (Codecs.Val32)
module Pm_set = Pmstm.Pm_hashmap.Make (Pfds.Kv.Int) (Pfds.Kv.Unit)

let ds_slot = 0

(* -- group-commit batching ------------------------------------------------- *)

(* Run [ops] iterations of [op], retiring updates in groups of [batch]
   (the --batch knob).  On MOD, [op] stages pure updates into one
   [Mod_core.Batch] and [flush] issues the group's single ordering
   point; on the PMDK backends the window runs inside one PM-STM
   transaction ([Tx.run_grouped]), so the per-op entry points (whose
   nested [Tx.run] calls flatten) amortize their commit fences the same
   way.  [batch <= 1] degenerates to the classic one-FASE-per-op loop. *)
let batched_mod_loop ctx ~ops ~batch op =
  let heap = Backend.heap ctx in
  let b = Mod_core.Batch.create heap in
  let staged = ref 0 in
  let flush () =
    if not (Mod_core.Batch.is_empty b) then
      ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point);
    staged := 0
  in
  for _ = 1 to ops do
    Backend.op_pause ctx;
    if op b then begin
      incr staged;
      if !staged >= batch then flush ()
    end
  done;
  flush ()

let batched_stm_loop ctx ~ops ~batch op =
  let tx = Backend.tx ctx in
  let remaining = ref ops in
  while !remaining > 0 do
    let n = min batch !remaining in
    Pmstm.Tx.run_grouped tx ~n (fun _ ->
        Backend.op_pause ctx;
        op ());
    remaining := !remaining - n
  done

(* -- map ------------------------------------------------------------------ *)

type map_instance =
  | Mmap of Mod_map.t
  | Pmap of int (* descriptor *)

let map_setup ctx ~size =
  match Backend.kind ctx with
  | Backend.Mod -> Mmap (Mod_map.open_or_create ~persist:(Backend.persist ctx) (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pm_map.create tx ~nbuckets:(max 64 size) in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pmap desc)

let map_insert ctx inst k v =
  match inst with
  | Mmap m -> Mod_map.insert m k v
  | Pmap desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> ignore (Pm_map.insert tx desc k v : bool))

let map_lookup ctx inst k =
  match inst with
  | Mmap m -> ignore (Mod_map.find m k : int option)
  | Pmap desc -> ignore (Pm_map.find (Backend.heap ctx) desc k : int option)

let map_run ?(batch = 1) ctx ~ops ~size =
  let inst = map_setup ctx ~size in
  let rng = Backend.rng ctx in
  for _ = 1 to size / 2 do
    map_insert ctx inst (Random.State.int rng size) (Random.State.int rng 1000000)
  done;
  Backend.start_measuring ctx;
  match inst with
  | Mmap _ when batch > 1 ->
      let heap = Backend.heap ctx in
      batched_mod_loop ctx ~ops ~batch (fun b ->
          let k = Random.State.int rng size in
          if Random.State.bool rng then begin
            let v = Random.State.int rng 1000000 in
            Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                Mod_map.insert_pure heap version k v);
            true
          end
          else begin
            (* read-your-writes: lookups see the staged (pending) version *)
            ignore
              (Mod_map.find_in heap
                 (Mod_core.Batch.pending b ~slot:ds_slot)
                 k
                : int option);
            false
          end)
  | Pmap _ when batch > 1 ->
      batched_stm_loop ctx ~ops ~batch (fun () ->
          let k = Random.State.int rng size in
          if Random.State.bool rng then
            map_insert ctx inst k (Random.State.int rng 1000000)
          else map_lookup ctx inst k)
  | _ ->
      for _ = 1 to ops do
        Backend.op_pause ctx;
        let k = Random.State.int rng size in
        if Random.State.bool rng then
          map_insert ctx inst k (Random.State.int rng 1000000)
        else map_lookup ctx inst k
      done

(* -- set ------------------------------------------------------------------ *)

type set_instance = Mset of Mod_set.t | Pset of int

let set_setup ctx ~size =
  match Backend.kind ctx with
  | Backend.Mod -> Mset (Mod_set.open_or_create ~persist:(Backend.persist ctx) (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pm_set.create tx ~nbuckets:(max 64 size) in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pset desc)

let set_add ctx inst k =
  match inst with
  | Mset s -> Mod_set.add s k
  | Pset desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> ignore (Pm_set.insert tx desc k () : bool))

let set_member ctx inst k =
  match inst with
  | Mset s -> ignore (Mod_set.mem s k : bool)
  | Pset desc -> ignore (Pm_set.mem (Backend.heap ctx) desc k : bool)

let set_run ?(batch = 1) ctx ~ops ~size =
  let inst = set_setup ctx ~size in
  let rng = Backend.rng ctx in
  for _ = 1 to size / 2 do
    set_add ctx inst (Random.State.int rng size)
  done;
  Backend.start_measuring ctx;
  match inst with
  | Mset _ when batch > 1 ->
      let heap = Backend.heap ctx in
      batched_mod_loop ctx ~ops ~batch (fun b ->
          let k = Random.State.int rng size in
          if Random.State.bool rng then begin
            Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                Mod_set.add_pure heap version k);
            true
          end
          else begin
            ignore
              (Mod_set.mem_in heap (Mod_core.Batch.pending b ~slot:ds_slot) k
                : bool);
            false
          end)
  | Pset _ when batch > 1 ->
      batched_stm_loop ctx ~ops ~batch (fun () ->
          let k = Random.State.int rng size in
          if Random.State.bool rng then set_add ctx inst k
          else set_member ctx inst k)
  | _ ->
      for _ = 1 to ops do
        Backend.op_pause ctx;
        let k = Random.State.int rng size in
        if Random.State.bool rng then set_add ctx inst k
        else set_member ctx inst k
      done

(* -- stack ---------------------------------------------------------------- *)

type stack_instance = Mstack of Mod_core.Dstack.t | Pstack of int

let stack_setup ctx =
  match Backend.kind ctx with
  | Backend.Mod ->
      Mstack (Mod_core.Dstack.open_or_create ~persist:(Backend.persist ctx) (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pmstm.Pm_stack.create tx in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pstack desc)

let stack_push ctx inst v =
  match inst with
  | Mstack s -> Mod_core.Dstack.push s (Pmem.Word.of_int v)
  | Pstack desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          Pmstm.Pm_stack.push tx desc (Pmem.Word.of_int v))

let stack_pop ctx inst =
  match inst with
  | Mstack s -> ignore (Mod_core.Dstack.pop s : Pmem.Word.t option)
  | Pstack desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          ignore (Pmstm.Pm_stack.pop tx desc : Pmem.Word.t option))

let stack_is_empty ctx inst =
  match inst with
  | Mstack s -> Mod_core.Dstack.is_empty s
  | Pstack desc -> Pmstm.Pm_stack.is_empty (Backend.heap ctx) desc

let stack_run ?(batch = 1) ctx ~ops ~size =
  let inst = stack_setup ctx in
  let rng = Backend.rng ctx in
  for i = 1 to size / 2 do
    stack_push ctx inst i
  done;
  Backend.start_measuring ctx;
  match inst with
  | Mstack _ when batch > 1 ->
      let heap = Backend.heap ctx in
      batched_mod_loop ctx ~ops ~batch (fun b ->
          let pending = Mod_core.Batch.pending b ~slot:ds_slot in
          (if Pfds.Pstack.is_empty pending || Random.State.bool rng then
             let v = Pmem.Word.of_int (Random.State.int rng 1000000) in
             Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                 Pfds.Pstack.push heap version v)
           else
             Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                 match Pfds.Pstack.pop heap version with
                 | None -> version
                 | Some (_, shadow) -> shadow));
          true)
  | Pstack _ when batch > 1 ->
      batched_stm_loop ctx ~ops ~batch (fun () ->
          if stack_is_empty ctx inst || Random.State.bool rng then
            stack_push ctx inst (Random.State.int rng 1000000)
          else stack_pop ctx inst)
  | _ ->
      for _ = 1 to ops do
        Backend.op_pause ctx;
        if stack_is_empty ctx inst || Random.State.bool rng then
          stack_push ctx inst (Random.State.int rng 1000000)
        else stack_pop ctx inst
      done

(* -- queue ---------------------------------------------------------------- *)

type queue_instance = Mqueue of Mod_core.Dqueue.t | Pqueue of int

let queue_setup ctx =
  match Backend.kind ctx with
  | Backend.Mod ->
      Mqueue (Mod_core.Dqueue.open_or_create ~persist:(Backend.persist ctx) (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pmstm.Pm_queue.create tx in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pqueue desc)

let queue_push ctx inst v =
  match inst with
  | Mqueue q -> Mod_core.Dqueue.enqueue q (Pmem.Word.of_int v)
  | Pqueue desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          Pmstm.Pm_queue.enqueue tx desc (Pmem.Word.of_int v))

let queue_pop ctx inst =
  match inst with
  | Mqueue q -> ignore (Mod_core.Dqueue.dequeue q : Pmem.Word.t option)
  | Pqueue desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          ignore (Pmstm.Pm_queue.dequeue tx desc : Pmem.Word.t option))

let queue_is_empty ctx inst =
  match inst with
  | Mqueue q -> Mod_core.Dqueue.is_empty q
  | Pqueue desc -> Pmstm.Pm_queue.is_empty (Backend.heap ctx) desc

let queue_run ?(batch = 1) ctx ~ops ~size =
  let inst = queue_setup ctx in
  let rng = Backend.rng ctx in
  for i = 1 to size / 2 do
    queue_push ctx inst i
  done;
  Backend.start_measuring ctx;
  match inst with
  | Mqueue _ when batch > 1 ->
      let heap = Backend.heap ctx in
      batched_mod_loop ctx ~ops ~batch (fun b ->
          let pending = Mod_core.Batch.pending b ~slot:ds_slot in
          (if Pfds.Pqueue.is_empty heap pending || Random.State.bool rng then
             let v = Pmem.Word.of_int (Random.State.int rng 1000000) in
             Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                 Pfds.Pqueue.enqueue heap version v)
           else
             Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                 match Pfds.Pqueue.dequeue heap version with
                 | None -> version
                 | Some (_, shadow) -> shadow));
          true)
  | Pqueue _ when batch > 1 ->
      batched_stm_loop ctx ~ops ~batch (fun () ->
          if queue_is_empty ctx inst || Random.State.bool rng then
            queue_push ctx inst (Random.State.int rng 1000000)
          else queue_pop ctx inst)
  | _ ->
      for _ = 1 to ops do
        Backend.op_pause ctx;
        if queue_is_empty ctx inst || Random.State.bool rng then
          queue_push ctx inst (Random.State.int rng 1000000)
        else queue_pop ctx inst
      done

(* -- vector --------------------------------------------------------------- *)

type vector_instance = Mvec of Mod_core.Dvec.t | Pvec of int

let vector_setup ctx ~size =
  match Backend.kind ctx with
  | Backend.Mod ->
      let v = Mod_core.Dvec.open_or_create ~persist:(Backend.persist ctx) (Backend.heap ctx) ~slot:ds_slot in
      for i = 1 to size do
        Mod_core.Dvec.push_back v (Pmem.Word.of_int i)
      done;
      Mvec v
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      let desc =
        Pmstm.Tx.run tx (fun () ->
            let desc = Pmstm.Pm_array.create tx ~capacity:(max 16 size) in
            Pmstm.Tx.add tx ~off:ds_slot ~words:1;
            Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
            desc)
      in
      for i = 1 to size do
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Pm_array.push_back tx desc (Pmem.Word.of_int i))
      done;
      Pvec desc

let vector_write ctx inst i v =
  match inst with
  | Mvec vec -> Mod_core.Dvec.set vec i (Pmem.Word.of_int v)
  | Pvec desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.set tx desc i (Pmem.Word.of_int v))

let vector_read ctx inst i =
  match inst with
  | Mvec vec -> ignore (Mod_core.Dvec.get vec i : Pmem.Word.t)
  | Pvec desc ->
      ignore (Pmstm.Pm_array.get (Backend.heap ctx) desc i : Pmem.Word.t)

let vector_swap ctx inst i j =
  match inst with
  | Mvec vec -> Mod_core.Dvec.swap vec i j
  | Pvec desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.swap tx desc i j)

let vector_run ?(batch = 1) ctx ~ops ~size =
  let inst = vector_setup ctx ~size in
  let rng = Backend.rng ctx in
  Backend.start_measuring ctx;
  match inst with
  | Mvec _ when batch > 1 ->
      let heap = Backend.heap ctx in
      batched_mod_loop ctx ~ops ~batch (fun b ->
          let i = Random.State.int rng size in
          if Random.State.bool rng then begin
            let v = Pmem.Word.of_int (Random.State.int rng 1000000) in
            Mod_core.Batch.stage b ~slot:ds_slot (fun version ->
                Pfds.Pvec.set heap version i v);
            true
          end
          else begin
            ignore
              (Pfds.Pvec.get heap (Mod_core.Batch.pending b ~slot:ds_slot) i
                : Pmem.Word.t);
            false
          end)
  | Pvec _ when batch > 1 ->
      batched_stm_loop ctx ~ops ~batch (fun () ->
          let i = Random.State.int rng size in
          if Random.State.bool rng then
            vector_write ctx inst i (Random.State.int rng 1000000)
          else vector_read ctx inst i)
  | _ ->
      for _ = 1 to ops do
        Backend.op_pause ctx;
        let i = Random.State.int rng size in
        if Random.State.bool rng then
          vector_write ctx inst i (Random.State.int rng 1000000)
        else vector_read ctx inst i
      done

let vec_swap_run ctx ~ops ~size =
  let inst = vector_setup ctx ~size in
  let rng = Backend.rng ctx in
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    let i = Random.State.int rng size in
    let j = Random.State.int rng size in
    if i <> j then vector_swap ctx inst i j
  done
