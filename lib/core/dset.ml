(** MOD durable set: a {!Dmap} with unit values (the paper's set shares
    the map's CHAMP implementation the same way). *)

module Make (K : Pfds.Kv.CODEC) = struct
  module M = Dmap.Make (K) (Pfds.Kv.Unit)

  type t = M.t

  let open_or_create = M.open_or_create
  let empty_version = M.empty_version
  let add_pure heap version key = M.insert_pure heap version key ()
  let remove_pure = M.remove_pure
  let mem_in = M.mem_in
  let add t key = M.insert t key ()
  let add_many t ks = M.insert_many t (List.map (fun k -> (k, ())) ks)
  let remove = M.remove
  let mem = M.mem
  let cardinal = M.cardinal
  let iter t fn = M.iter t (fun k () -> fn k)
  let fold t fn acc = M.fold t (fun k () acc -> fn k acc) acc
end
