(** MOD durable set: a {!Dmap} with unit values (the paper's set shares
    the map's CHAMP implementation the same way). *)

module Make (K : Pfds.Kv.CODEC) = struct
  module M = Dmap.Make (K) (Pfds.Kv.Unit)

  type t = M.t
  type elt = K.t

  let structure = "dset"

  (* Spans here, not just in [M]: the outermost span owns the delta, so
     set traffic is attributed to "dset", never double counted as
     "dmap". *)
  let span t op f =
    Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

  let span_n t op n f =
    Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

  let open_or_create = M.open_or_create
  let open_result = M.open_result
  let reconstruct = M.reconstruct
  let handle t = t
  let empty_version = M.empty_version
  let add_pure heap version key = M.insert_pure heap version key ()
  let remove_pure = M.remove_pure
  let mem_in = M.mem_in
  let size_in = M.size_in
  let add t key = span t "add" (fun () -> M.insert t key ())

  let add_many t ks =
    span_n t "add_many" (List.length ks) (fun () ->
        M.insert_many t (List.map (fun k -> (k, ())) ks))

  let remove t key = span t "remove" (fun () -> M.remove t key)
  let mem t key = span t "mem" (fun () -> M.mem t key)
  let cardinal = M.cardinal
  let iter t fn = M.iter t (fun k () -> fn k)
  let fold t fn acc = M.fold t (fun k () acc -> fn k acc) acc
  let size = cardinal
  let is_empty = M.is_empty
  let iter_elts = iter
end
