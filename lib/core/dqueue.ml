(** MOD durable queue: {!Pfds.Pqueue} (Okasaki batched queue) under
    Functional Shadowing. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dqueue"

let span t op f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op f

let span_n t op n f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op ~ops:n f

let open_or_create heap ~slot =
  let h = Handle.make heap ~slot in
  if not (Handle.is_initialized h) then
    Handle.initialize h (Pfds.Pqueue.create heap);
  h

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"queue descriptor (2 scanned words)"
           ~words:2)
  with
  | Error _ as e -> e
  | Ok h ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Pqueue.create heap);
      Ok h

let handle t = t
let empty_version heap = Pfds.Pqueue.create heap
let enqueue_pure = Pfds.Pqueue.enqueue
let dequeue_pure = Pfds.Pqueue.dequeue
let add_pure = enqueue_pure

let enqueue t w =
  span t "enqueue" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Pqueue.enqueue heap (Handle.current t) w))

let dequeue t =
  span t "dequeue" (fun () ->
      let heap = Handle.heap t in
      match Pfds.Pqueue.dequeue heap (Handle.current t) with
      | None -> None
      | Some (v, shadow) ->
          Handle.commit t shadow;
          Some v)

(* Group commit: enqueue N elements in one one-fence FASE. *)
let enqueue_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "enqueue_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pqueue.enqueue heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let is_empty t = Pfds.Pqueue.is_empty (Handle.heap t) (Handle.current t)
let length t = Pfds.Pqueue.length (Handle.heap t) (Handle.current t)
let iter t fn = Pfds.Pqueue.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Pqueue.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = enqueue
let add_many = enqueue_many
let size = length
let size_in heap version = Pfds.Pqueue.length heap version
let iter_elts = iter
