(** MOD durable queue: {!Pfds.Pqueue} (Okasaki batched queue) under
    Functional Shadowing. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dqueue"

let span t op f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

let span_n t op n f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

let handle t = t
let empty_version heap = Pfds.Pqueue.create heap
let enqueue_pure = Pfds.Pqueue.enqueue
let dequeue_pure = Pfds.Pqueue.dequeue
let add_pure = enqueue_pure

(* -- Backup-policy op log -------------------------------------------------- *)

let op_enqueue = 0
let op_dequeue = 1

let apply heap version ~opcode ~a0 ~a1 =
  ignore a1;
  match opcode with
  | 0 -> Pfds.Pqueue.enqueue heap version a0
  | 1 -> (
      match Pfds.Pqueue.dequeue heap version with
      | Some (_, shadow) -> shadow
      | None -> version)
  | _ -> Printf.ksprintf failwith "dqueue: unknown log opcode %d" opcode

let reconstruct heap ~slot = Commit.reconstruct heap ~slot ~apply:(apply heap)

let entry_of_elt op w =
  if Pmem.Word.is_ptr w then None else Some (op, w, Pmem.Word.of_int 0)

let open_or_create ?persist heap ~slot =
  let h = Handle.make heap ~slot in
  (match (persist, Pmalloc.Heap.get_policy heap slot) with
  | Some Pmalloc.Heap.Full, Pmalloc.Heap.Backup ->
      invalid_arg "Dqueue.open_or_create: slot is committed as Backup"
  | (None | Some Pmalloc.Heap.Full), Pmalloc.Heap.Full ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Pqueue.create heap)
  | Some Pmalloc.Heap.Backup, Pmalloc.Heap.Full ->
      (* install the empty descriptor under the Full protocol, then
         promote: the promotion commit anchors it *)
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Pqueue.create heap);
      Commit.enable heap ~slot
  | _, Pmalloc.Heap.Backup -> reconstruct heap ~slot);
  h

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"queue descriptor (2 scanned words)"
           ~words:2)
  with
  | Error _ as e -> e
  | Ok h ->
      (if Pmalloc.Heap.get_policy heap slot = Pmalloc.Heap.Backup then
         reconstruct heap ~slot
       else if not (Handle.is_initialized h) then
         Handle.initialize h (Pfds.Pqueue.create heap));
      Ok h

let enqueue t w =
  span t "enqueue" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Pqueue.enqueue heap cur w) in
      Handle.commit ?entry:(entry_of_elt op_enqueue w) t shadow)

let dequeue t =
  span t "dequeue" (fun () ->
      let heap = Handle.heap t in
      match Handle.pure t (fun cur -> Pfds.Pqueue.dequeue heap cur) with
      | None -> None
      | Some (v, shadow) ->
          Handle.commit
            ~entry:(op_dequeue, Pmem.Word.of_int 0, Pmem.Word.of_int 0)
            t shadow;
          Some v)

(* Group commit: enqueue N elements in one one-fence FASE. *)
let enqueue_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "enqueue_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pqueue.enqueue heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let is_empty t = Pfds.Pqueue.is_empty (Handle.heap t) (Handle.current t)
let length t = Pfds.Pqueue.length (Handle.heap t) (Handle.current t)
let iter t fn = Pfds.Pqueue.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Pqueue.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = enqueue
let add_many = enqueue_many
let size = length
let size_in heap version = Pfds.Pqueue.length heap version
let iter_elts = iter
