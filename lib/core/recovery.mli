(** Crash recovery for MOD heaps (paper Sections 5.2-5.3).

    After a power failure the durable image holds, per root slot, either
    the pre-FASE or the post-FASE version -- never a torn one -- plus
    leaked shadow allocations from any interrupted FASE.  Recovery rolls
    back an interrupted PM-STM transaction if the heap hosts one
    (CommitUnrelated / the PMDK baseline), then runs the reachability
    analysis that recomputes reference counts and reclaims every leak. *)

type report = {
  stm_rolled_back : bool;
  gc : Pmalloc.Recovery_gc.report;
  crash_seed : int option;
      (** seed that drove randomized line survival, when a crash was
          injected by {!crash_and_recover}; replay it with [?seed] *)
}

val recover :
  ?stm:Pmstm.Tx.t -> ?norec:bool -> Pmalloc.Heap.t -> (report, Error.t) result
(** Recovery against the current durable image (call after a crash).
    A durable image recovery cannot make sense of -- an unreadable undo
    log, an unscannable block graph -- comes back as
    [Error (Corrupt_root { slot = -1; _ })] rather than an exception;
    a root record torn beyond its redundancy comes back as [Torn_root],
    and an unreadable (media-bad) line as [Media_error].  No exception
    escapes this function for any durable image: recovery either
    succeeds or degrades to a typed error. *)

val typed_of_exn : exn -> Error.t option
(** Typed form of the lower layers' raw fault exceptions
    ({!Pmalloc.Heap.Torn_root}, {!Pmem.Region.Media_fault}); [None] for
    anything else. *)

val crash_and_recover :
  ?mode:Pmem.Region.crash_mode ->
  ?seed:int ->
  ?torn:bool ->
  ?stm:Pmstm.Tx.t ->
  ?norec:bool ->
  Pmalloc.Heap.t ->
  (report, Error.t) result
(** Inject a power failure, then recover.  [seed] pins the [Randomize]
    survival outcomes; the seed actually used is in the report; [torn]
    enables per-word torn-line persistence.  [norec:true] additionally
    replays a committed-but-unretired {!Pmstm.Norec} redo log before
    the reachability analysis. *)

val recover_exn : ?stm:Pmstm.Tx.t -> ?norec:bool -> Pmalloc.Heap.t -> report
(** {!recover}, raising {!Error.Error} on corruption.  The crash-test
    oracle uses this form: an unrecoverable image must fail loudly. *)

type open_report = {
  heap : Pmalloc.Heap.t;
  journal : [ `None | `Replayed of int | `Discarded ];
      (** fate of the image's sidecar writeback journal: absent/empty, a
          committed journal replayed ([n] cachelines), or a torn one
          discarded *)
  recovery : report;
  reopen_ns : float;  (** wall-clock open + journal resolution + GC *)
}

val open_file :
  ?trace:bool ->
  ?seed:int ->
  path:string ->
  unit ->
  (open_report, Error.t) result
(** The externally-durable recovery cycle: reopen a file-backed heap
    image ({!Pmalloc.Heap.open_file} -- journal replay/discard and
    whole-image checksum verification) and rebuild the volatile
    allocator via the reachability analysis.  Unusable images come back
    as [Error (Bad_image _)], torn roots as [Error (Torn_root _)],
    unscannable graphs as [Error (Corrupt_root _)]; no exception escapes
    for any image, and no descriptor leaks on a failed open. *)

val crash_and_recover_exn :
  ?mode:Pmem.Region.crash_mode ->
  ?seed:int ->
  ?torn:bool ->
  ?stm:Pmstm.Tx.t ->
  ?norec:bool ->
  Pmalloc.Heap.t ->
  report

val pp_report : Format.formatter -> report -> unit
