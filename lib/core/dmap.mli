(** MOD durable map (Section 4: CHAMP trie + Functional Shadowing).

    The installed version is the CHAMP root itself (null = empty map), so
    each update flushes exactly the copied tree path and nothing else.
    Conforms to {!Intf.DURABLE} with [elt = K.t * V.t]. *)

module Make (K : Pfds.Kv.CODEC) (V : Pfds.Kv.CODEC) : sig
  type t = Handle.t
  type elt = K.t * V.t

  val structure : string

  val open_or_create :
    ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
  (** Bind [slot]; a null slot is a valid empty map.  [~persist:Backup]
      promotes the slot to the "Don't Persist All" commit policy (see
      {!Intf.DURABLE}). *)

  val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
  val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
  val handle : t -> Handle.t
  val empty_version : Pmalloc.Heap.t -> Pmem.Word.t

  (** {1 Composition interface (Section 4.3.2): pure updates on versions} *)

  val insert_pure : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> V.t -> Pmem.Word.t

  val remove_pure : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> Pmem.Word.t * bool
  (** Returns the unchanged version itself (un-owned) when the key was
      absent; callers skip the commit in that case. *)

  val find_in : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> V.t option
  val mem_in : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> bool
  val card_of : Pmalloc.Heap.t -> Pmem.Word.t -> int
  val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t
  val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int

  (** {1 Basic interface (Section 4.3.1): one-fence FASEs} *)

  val insert : t -> K.t -> V.t -> unit
  val remove : t -> K.t -> bool

  val insert_many : t -> (K.t * V.t) list -> unit
  (** N inserts under one ordering point (group commit, Figure 8). *)

  val find : t -> K.t -> V.t option
  val mem : t -> K.t -> bool

  val cardinal : t -> int
  (** O(n): cardinality is not materialized in the versioned state. *)

  val iter : t -> (K.t -> V.t -> unit) -> unit
  val fold : t -> (K.t -> V.t -> 'a -> 'a) -> 'a -> 'a

  (** {1 Unified interface ({!Intf.DURABLE})} *)

  val add : t -> elt -> unit
  val add_many : t -> elt list -> unit
  val size : t -> int
  val is_empty : t -> bool
  val iter_elts : t -> (elt -> unit) -> unit
end
