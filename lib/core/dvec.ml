(** MOD durable vector: {!Pfds.Pvec} under Functional Shadowing.

    The version word is the vector descriptor.  [swap] is the paper's
    Figure 7b multi-update FASE: two pure updates chained through an
    intermediate shadow, one CommitSingle. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dvec"

let span t op f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op f

let span_n t op n f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op ~ops:n f

let open_or_create heap ~slot =
  let h = Handle.make heap ~slot in
  if not (Handle.is_initialized h) then
    Handle.initialize h (Pfds.Pvec.create heap);
  h

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"vector descriptor (4 scanned words)"
           ~words:4)
  with
  | Error _ as e -> e
  | Ok h ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Pvec.create heap);
      Ok h

let handle t = t

(* -- Composition interface ------------------------------------------------ *)

let empty_version heap = Pfds.Pvec.create heap
let push_back_pure = Pfds.Pvec.push_back
let set_pure = Pfds.Pvec.set
let pop_back_pure = Pfds.Pvec.pop_back
let get_in = Pfds.Pvec.get
let size_in = Pfds.Pvec.size
let add_pure = push_back_pure

(* -- Basic interface ------------------------------------------------------ *)

let push_back t w =
  span t "push_back" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Pvec.push_back heap (Handle.current t) w))

let set t i w =
  span t "set" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Pvec.set heap (Handle.current t) i w))

let pop_back t =
  span t "pop_back" (fun () ->
      let heap = Handle.heap t in
      let v, shadow = Pfds.Pvec.pop_back heap (Handle.current t) in
      Handle.commit t shadow;
      v)

(* Swap two elements failure-atomically: Figure 7b.  The first update
   produces VectorPtrShadow, the second VectorPtrShadowShadow; Commit
   installs the latter and reclaims the intermediate. *)
let swap t i j =
  span t "swap" (fun () ->
      let heap = Handle.heap t in
      let v = Handle.current t in
      let vi = Pfds.Pvec.get heap v i in
      let vj = Pfds.Pvec.get heap v j in
      let shadow = Pfds.Pvec.set heap v i vj in
      let shadow_shadow = Pfds.Pvec.set heap shadow j vi in
      Handle.commit ~intermediates:[ shadow ] t shadow_shadow)

(* Group commit: push N elements in one one-fence FASE, intermediate
   shadows reclaimed at the commit (the batched form of Figure 7b). *)
let push_back_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "push_back_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pvec.push_back heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let get t i =
  span t "get" (fun () -> Pfds.Pvec.get (Handle.heap t) (Handle.current t) i)

let size t = Pfds.Pvec.size (Handle.heap t) (Handle.current t)
let is_empty t = size t = 0
let iter t fn = Pfds.Pvec.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Pvec.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = push_back
let add_many = push_back_many
let iter_elts = iter
