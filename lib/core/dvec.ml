(** MOD durable vector: {!Pfds.Pvec} under Functional Shadowing.

    The version word is the vector descriptor.  [swap] is the paper's
    Figure 7b multi-update FASE: two pure updates chained through an
    intermediate shadow, one CommitSingle. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dvec"

let span t op f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

let span_n t op n f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

let handle t = t

(* -- Backup-policy op log -------------------------------------------------- *)

let op_push_back = 0
let op_set = 1
let op_pop_back = 2
let op_swap = 3

let apply heap version ~opcode ~a0 ~a1 =
  match opcode with
  | 0 -> Pfds.Pvec.push_back heap version a0
  | 1 -> Pfds.Pvec.set heap version (Pmem.Word.to_int a0) a1
  | 2 -> snd (Pfds.Pvec.pop_back heap version)
  | 3 ->
      let i = Pmem.Word.to_int a0 and j = Pmem.Word.to_int a1 in
      let vi = Pfds.Pvec.get heap version i in
      let vj = Pfds.Pvec.get heap version j in
      let shadow = Pfds.Pvec.set heap version i vj in
      let shadow_shadow = Pfds.Pvec.set heap shadow j vi in
      Commit.release_version heap shadow;
      shadow_shadow
  | _ -> Printf.ksprintf failwith "dvec: unknown log opcode %d" opcode

let reconstruct heap ~slot = Commit.reconstruct heap ~slot ~apply:(apply heap)

let entry_of_elt op w =
  if Pmem.Word.is_ptr w then None else Some (op, w, Pmem.Word.of_int 0)

let open_or_create ?persist heap ~slot =
  let h = Handle.make heap ~slot in
  (match (persist, Pmalloc.Heap.get_policy heap slot) with
  | Some Pmalloc.Heap.Full, Pmalloc.Heap.Backup ->
      invalid_arg "Dvec.open_or_create: slot is committed as Backup"
  | (None | Some Pmalloc.Heap.Full), Pmalloc.Heap.Full ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Pvec.create heap)
  | Some Pmalloc.Heap.Backup, Pmalloc.Heap.Full ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Pvec.create heap);
      Commit.enable heap ~slot
  | _, Pmalloc.Heap.Backup -> reconstruct heap ~slot);
  h

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"vector descriptor (4 scanned words)"
           ~words:4)
  with
  | Error _ as e -> e
  | Ok h ->
      (if Pmalloc.Heap.get_policy heap slot = Pmalloc.Heap.Backup then
         reconstruct heap ~slot
       else if not (Handle.is_initialized h) then
         Handle.initialize h (Pfds.Pvec.create heap));
      Ok h

(* -- Composition interface ------------------------------------------------ *)

let empty_version heap = Pfds.Pvec.create heap
let push_back_pure = Pfds.Pvec.push_back
let set_pure = Pfds.Pvec.set
let pop_back_pure = Pfds.Pvec.pop_back
let get_in = Pfds.Pvec.get
let size_in = Pfds.Pvec.size
let add_pure = push_back_pure

(* -- Basic interface ------------------------------------------------------ *)

let push_back t w =
  span t "push_back" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Pvec.push_back heap cur w) in
      Handle.commit ?entry:(entry_of_elt op_push_back w) t shadow)

let set t i w =
  span t "set" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Pvec.set heap cur i w) in
      let entry =
        if Pmem.Word.is_ptr w then None else Some (op_set, Pmem.Word.of_int i, w)
      in
      Handle.commit ?entry t shadow)

let pop_back t =
  span t "pop_back" (fun () ->
      let heap = Handle.heap t in
      let v, shadow = Handle.pure t (fun cur -> Pfds.Pvec.pop_back heap cur) in
      Handle.commit
        ~entry:(op_pop_back, Pmem.Word.of_int 0, Pmem.Word.of_int 0)
        t shadow;
      v)

(* Swap two elements failure-atomically: Figure 7b.  The first update
   produces VectorPtrShadow, the second VectorPtrShadowShadow; Commit
   installs the latter and reclaims the intermediate.  Under Backup the
   whole multi-update FASE is one log entry: replay re-derives both
   element values from the version it rebuilds. *)
let swap t i j =
  span t "swap" (fun () ->
      let heap = Handle.heap t in
      let shadow, shadow_shadow =
        Handle.pure t (fun v ->
            let vi = Pfds.Pvec.get heap v i in
            let vj = Pfds.Pvec.get heap v j in
            let shadow = Pfds.Pvec.set heap v i vj in
            (shadow, Pfds.Pvec.set heap shadow j vi))
      in
      Handle.commit ~intermediates:[ shadow ]
        ~entry:(op_swap, Pmem.Word.of_int i, Pmem.Word.of_int j)
        t shadow_shadow)

(* Group commit: push N elements in one one-fence FASE, intermediate
   shadows reclaimed at the commit (the batched form of Figure 7b). *)
let push_back_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "push_back_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pvec.push_back heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let get t i =
  span t "get" (fun () -> Pfds.Pvec.get (Handle.heap t) (Handle.current t) i)

let size t = Pfds.Pvec.size (Handle.heap t) (Handle.current t)
let is_empty t = size t = 0
let iter t fn = Pfds.Pvec.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Pvec.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = push_back
let add_many = push_back_many
let iter_elts = iter
