(** The shared shape of every MOD durable datastructure.

    The paper's recipe (Section 4.2) produces structures that all look
    alike: a handle bound to a root slot, a Composition interface of
    pure updates on version words, a Basic interface whose every entry
    point is a one-fence FASE, and a batched [*_many] form that retires
    N logical updates under a single ordering point.  [DURABLE] names
    that common shape once, with the historically divergent names
    unified ([add]/[add_pure]/[add_many] for the structure's natural
    insertion, [size] for cardinal/length, [iter_elts] for element
    iteration), so generic code -- the signature-conformance tests, the
    telemetry-driven workloads -- can be written once and instantiated
    over all seven structures.

    Each structure's [.mli] keeps its domain-specific names ([push],
    [enqueue], [find_min], ...) alongside the unified ones; [DURABLE] is
    the intersection, not the whole surface. *)

module type DURABLE = sig
  type t
  (** A handle bound to a root slot (the structure's identity). *)

  type elt
  (** What one logical insertion carries: a key/value pair for maps, an
      element word for the sequence structures, a priority for the
      priority queue. *)

  val structure : string
  (** Telemetry label; also the structure's name in exported metrics. *)

  val open_or_create :
    ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
  (** Bind [slot], installing an empty version if the slot is null.
      No validation: trusts the slot's contents.  [persist] selects the
      commit policy: omitted, the slot's durable policy word governs
      (and a Backup slot is reconstructed); [Backup] promotes a Full
      slot; [Full] on a Backup-committed slot is [Invalid_argument] --
      demotion would silently drop the log's tail. *)

  val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
  (** Like [open_or_create] (following the stored policy), but validates
      the slot first: range check, pointer check, and a best-effort
      shape check of the root block against this structure's layout
      (the Backup descriptor's, when the slot commits as Backup). *)

  val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
  (** Rebuild a Backup slot's volatile current version by replaying its
      op log from the checkpoint anchor ({!Commit.reconstruct}).
      Idempotent; a no-op on Full slots. *)

  val handle : t -> Handle.t

  val empty_version : Pmalloc.Heap.t -> Pmem.Word.t
  (** A fresh empty version (null for structures whose empty state needs
      no descriptor). *)

  (** {2 Composition interface (Section 4.3.2)} *)

  val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t
  (** Pure insertion: returns the successor shadow version; commit it
      with {!Handle.commit}, {!Commit} or a {!Batch}. *)

  val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int
  (** Element count of an arbitrary version. *)

  (** {2 Basic interface (Section 4.3.1): one-fence FASEs} *)

  val add : t -> elt -> unit
  val add_many : t -> elt list -> unit
  (** [add_many t es] retires all of [es] under one ordering point
      (group commit, Figure 8). *)

  (** {2 Queries} *)

  val size : t -> int
  val is_empty : t -> bool
  val iter_elts : t -> (elt -> unit) -> unit
end
