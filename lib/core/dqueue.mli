(** MOD durable queue: {!Pfds.Pqueue} (Okasaki batched queue) under
    Functional Shadowing.  Conforms to {!Intf.DURABLE} with
    [elt = Pmem.Word.t] ([add] = [enqueue]). *)

type t = Handle.t
type elt = Pmem.Word.t

val structure : string
val open_or_create :
  ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
val handle : t -> Handle.t
val empty_version : Pmalloc.Heap.t -> Pmem.Word.t

(** {1 Composition interface} *)

val enqueue_pure : Pmalloc.Heap.t -> Pmem.Word.t -> Pmem.Word.t -> Pmem.Word.t

val dequeue_pure :
  Pmalloc.Heap.t -> Pmem.Word.t -> (Pmem.Word.t * Pmem.Word.t) option

val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t
val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int

(** {1 Basic interface} *)

val enqueue : t -> Pmem.Word.t -> unit
val dequeue : t -> Pmem.Word.t option
val enqueue_many : t -> Pmem.Word.t list -> unit
val is_empty : t -> bool
val length : t -> int
val iter : t -> (Pmem.Word.t -> unit) -> unit
val to_list : t -> Pmem.Word.t list

(** {1 Unified interface ({!Intf.DURABLE})} *)

val add : t -> elt -> unit
val add_many : t -> elt list -> unit
val size : t -> int
val iter_elts : t -> (elt -> unit) -> unit
