(** Automated crash-consistency testing (paper Section 5.4).

    The relaxed ordering discipline of MOD updates admits a simple static
    check over a trace of PM events.  Two invariants imply the correctness
    argument of Section 5.2:

    1. {b Out-of-place writes}: every PM write outside a commit section
       targets memory allocated since the last completed commit (i.e. the
       shadow under construction), so no useful durable data is ever
       overwritten mid-FASE.
    2. {b Flush-before-fence}: every written cacheline is flushed by a
       clwb before the next sfence, so the fence really persists the whole
       shadow.

    The checker consumes the {!Pmem.Trace} recorded by the region and
    reports each violation with its event index.  PMDK-style in-place
    transactions violate invariant 1 by design -- the tests use that as a
    negative control. *)

type violation =
  | In_place_write of { index : int; off : int }
      (** a non-commit write hit memory that was not freshly allocated *)
  | Unflushed_write of { index : int; line : int }
      (** a fence passed while a written line had no clwb issued *)
  | Write_after_free of { index : int; off : int }

type report = {
  events : int;
  writes_checked : int;
  fences : int;
  violations : violation list;
}

let ok report = report.violations = []

let pp_violation ppf = function
  | In_place_write { index; off } ->
      Format.fprintf ppf "event %d: in-place write to non-fresh word %d" index
        off
  | Unflushed_write { index; line } ->
      Format.fprintf ppf "event %d: fence passed with unflushed line %d" index
        line
  | Write_after_free { index; off } ->
      Format.fprintf ppf "event %d: write to freed word %d" index off

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf
      "consistency: OK (%d events, %d writes checked, %d fences)" r.events
      r.writes_checked r.fences
  else begin
    Format.fprintf ppf "consistency: %d violation(s)@,"
      (List.length r.violations);
    List.iter (fun v -> Format.fprintf ppf "  %a@," pp_violation v) r.violations
  end

(* The out-of-place check exempts the root directory; its size is the
   full dual-copy record area, not the slot count. *)
let check ?(root_slots = Pmalloc.Heap.root_directory_words) trace =
  let fresh : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let freed : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  (* line -> false when written but not yet flushed *)
  let line_flushed : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let violations = ref [] in
  let writes = ref 0 in
  let fences = ref 0 in
  let in_commit = ref 0 in
  let note v = violations := v :: !violations in
  let n = Pmem.Trace.length trace in
  for index = 0 to n - 1 do
    match Pmem.Trace.get trace index with
    | Pmem.Trace.Alloc { off; words } ->
        for w = off to off + words - 1 do
          Hashtbl.replace fresh w ();
          Hashtbl.remove freed w
        done
    | Pmem.Trace.Free { off; words } ->
        for w = off to off + words - 1 do
          Hashtbl.remove fresh w;
          Hashtbl.replace freed w ()
        done
    | Pmem.Trace.Write { off } ->
        incr writes;
        (* Invariant 2 covers shadow construction; writes inside a commit
           section (root-pointer updates and, for CommitUnrelated, the
           short transaction's log) are ordered by the commit protocol
           itself -- the undo log or the next epoch's fence -- so they are
           exempt from flush-before-fence. *)
        if !in_commit = 0 then
          Hashtbl.replace line_flushed (Pmem.Region.line_of_word off) false;
        if Hashtbl.mem freed off then note (Write_after_free { index; off })
        else if !in_commit = 0 && off >= root_slots && not (Hashtbl.mem fresh off)
        then note (In_place_write { index; off })
    | Pmem.Trace.Flush { line } -> Hashtbl.replace line_flushed line true
    | Pmem.Trace.Fence ->
        incr fences;
        (* Hashtbl.iter order is unspecified; collect this fence's
           violations and sort by line so reports are deterministic. *)
        let unflushed =
          Hashtbl.fold
            (fun line flushed acc -> if flushed then acc else line :: acc)
            line_flushed []
        in
        List.iter
          (fun line -> note (Unflushed_write { index; line }))
          (List.sort compare unflushed);
        Hashtbl.reset line_flushed
    | Pmem.Trace.Commit_begin -> incr in_commit
    | Pmem.Trace.Commit_end ->
        in_commit := max 0 (!in_commit - 1);
        (* a completed commit retires the FASE's allocations *)
        if !in_commit = 0 then Hashtbl.reset fresh
    | Pmem.Trace.Crash ->
        (* volatile state is gone; the next FASE starts clean *)
        Hashtbl.reset line_flushed;
        Hashtbl.reset fresh;
        in_commit := 0
  done;
  {
    events = n;
    writes_checked = !writes;
    fences = !fences;
    violations = List.rev !violations;
  }
