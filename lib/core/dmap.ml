(** MOD durable map (Section 4: CHAMP trie + Functional Shadowing).

    The installed version is the CHAMP root itself (null = empty map), so
    each update flushes exactly the copied tree path and nothing else.

    Basic interface: [insert], [remove] are self-contained FASEs with one
    ordering point.  Composition interface: [insert_pure] / [remove_pure]
    return shadow versions for multi-update FASEs, installed with
    [Handle.commit] or {!Commit.siblings} / {!Commit.unrelated}. *)

module Make (K : Pfds.Kv.CODEC) (V : Pfds.Kv.CODEC) = struct
  module T = Pfds.Champ.Make (K) (V)

  type t = Handle.t
  type elt = K.t * V.t

  let structure = "dmap"

  let span t op f =
    Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op f

  let span_n t op n f =
    Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op ~ops:n f

  (* A null version is a valid (empty) map, so opening just binds the
     slot; the first insert installs the first node. *)
  let open_or_create heap ~slot =
    ignore heap;
    Handle.make heap ~slot

  let open_result heap ~slot =
    Handle.open_slot heap ~slot
      ~validate:(Handle.expect_shape ~expected:"CHAMP node (scanned block)")

  let handle t = t
  let empty_version _heap = T.empty

  (* -- Composition interface: pure updates on versions ------------------ *)

  let insert_pure heap version key value =
    let tree', _grew = T.insert heap version key value in
    tree'

  (* Returns the unchanged version itself (un-owned) when the key was
     absent; callers skip the commit in that case. *)
  let remove_pure heap version key = T.remove heap version key

  let find_in heap version key = T.find heap version key
  let mem_in heap version key = T.mem heap version key
  let card_of heap version = T.cardinal heap version
  let add_pure heap version (key, value) = insert_pure heap version key value
  let size_in = card_of

  (* -- Basic interface: each operation is a one-fence FASE -------------- *)

  let insert t key value =
    span t "insert" (fun () ->
        let heap = Handle.heap t in
        Handle.commit t (insert_pure heap (Handle.current t) key value))

  let remove t key =
    span t "remove" (fun () ->
        let heap = Handle.heap t in
        let shadow, removed = remove_pure heap (Handle.current t) key in
        if removed then Handle.commit t shadow;
        removed)

  (* -- Group commit: N updates, one one-fence FASE ----------------------- *)

  let insert_many t kvs =
    match kvs with
    | [] -> ()
    | _ ->
        span_n t "insert_many" (List.length kvs) (fun () ->
            let heap = Handle.heap t in
            let b = Batch.create heap in
            List.iter
              (fun (k, v) ->
                Batch.stage b ~slot:(Handle.slot t) (fun version ->
                    insert_pure heap version k v))
              kvs;
            ignore (Batch.commit b : Batch.commit_point))

  let find t key =
    span t "find" (fun () -> find_in (Handle.heap t) (Handle.current t) key)

  let mem t key =
    span t "mem" (fun () -> mem_in (Handle.heap t) (Handle.current t) key)

  (* O(n): cardinality is not materialized in the versioned state. *)
  let cardinal t = card_of (Handle.heap t) (Handle.current t)

  let iter t fn = T.iter (Handle.heap t) (Handle.current t) fn
  let fold t fn acc = T.fold (Handle.heap t) (Handle.current t) fn acc

  (* -- Unified interface ({!Intf.DURABLE}) ------------------------------- *)

  let add t (key, value) = insert t key value
  let add_many = insert_many
  let size = cardinal
  let is_empty t = Pmem.Word.is_null (Handle.current t)
  let iter_elts t fn = iter t (fun k v -> fn (k, v))
end
