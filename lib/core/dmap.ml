(** MOD durable map (Section 4: CHAMP trie + Functional Shadowing).

    The installed version is the CHAMP root itself (null = empty map), so
    each update flushes exactly the copied tree path and nothing else.

    Basic interface: [insert], [remove] are self-contained FASEs with one
    ordering point.  Composition interface: [insert_pure] / [remove_pure]
    return shadow versions for multi-update FASEs, installed with
    [Handle.commit] or {!Commit.siblings} / {!Commit.unrelated}. *)

module Make (K : Pfds.Kv.CODEC) (V : Pfds.Kv.CODEC) = struct
  module T = Pfds.Champ.Make (K) (V)

  type t = Handle.t
  type elt = K.t * V.t

  let structure = "dmap"

  let span t op f =
    Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

  let span_n t op n f =
    Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

  let handle t = t
  let empty_version _heap = T.empty

  (* -- Composition interface: pure updates on versions ------------------ *)

  let insert_pure heap version key value =
    let tree', _grew = T.insert heap version key value in
    tree'

  (* Returns the unchanged version itself (un-owned) when the key was
     absent; callers skip the commit in that case. *)
  let remove_pure heap version key = T.remove heap version key

  (* -- Backup-policy op log ---------------------------------------------- *)

  let op_insert = 0
  let op_remove = 1

  let apply heap version ~opcode ~a0 ~a1 =
    match opcode with
    | 0 -> insert_pure heap version (K.read heap a0) (V.read heap a1)
    | 1 -> fst (remove_pure heap version (K.read heap a0))
    | _ -> Printf.ksprintf failwith "dmap: unknown log opcode %d" opcode

  let reconstruct heap ~slot = Commit.reconstruct heap ~slot ~apply:(apply heap)

  (* A null version is a valid (empty) map, so opening just binds the
     slot; the first insert installs the first node. *)
  let open_or_create ?persist heap ~slot =
    let t = Handle.make heap ~slot in
    (match (persist, Pmalloc.Heap.get_policy heap slot) with
    | Some Pmalloc.Heap.Full, Pmalloc.Heap.Backup ->
        invalid_arg "Dmap.open_or_create: slot is committed as Backup"
    | (None | Some Pmalloc.Heap.Full), Pmalloc.Heap.Full -> ()
    | Some Pmalloc.Heap.Backup, Pmalloc.Heap.Full -> Commit.enable heap ~slot
    | _, Pmalloc.Heap.Backup -> reconstruct heap ~slot);
    t

  let open_result heap ~slot =
    match
      Handle.open_slot heap ~slot
        ~validate:(Handle.expect_shape ~expected:"CHAMP node (scanned block)")
    with
    | Error _ as e -> e
    | Ok h ->
        if Pmalloc.Heap.get_policy heap slot = Pmalloc.Heap.Backup then
          reconstruct heap ~slot;
        Ok h

  let find_in heap version key = T.find heap version key
  let mem_in heap version key = T.mem heap version key
  let card_of heap version = T.cardinal heap version
  let add_pure heap version (key, value) = insert_pure heap version key value
  let size_in = card_of

  (* -- Basic interface: each operation is a one-fence FASE -------------- *)

  let insert t key value =
    span t "insert" (fun () ->
        let heap = Handle.heap t in
        let shadow =
          Handle.pure t (fun cur -> insert_pure heap cur key value)
        in
        let entry =
          match (K.log_word key, V.log_word value) with
          | Some kw, Some vw -> Some (op_insert, kw, vw)
          | _ -> None
        in
        Handle.commit ?entry t shadow)

  let remove t key =
    span t "remove" (fun () ->
        let heap = Handle.heap t in
        let shadow, removed =
          Handle.pure t (fun cur -> remove_pure heap cur key)
        in
        let entry =
          match K.log_word key with
          | Some kw -> Some (op_remove, kw, Pmem.Word.of_int 0)
          | None -> None
        in
        if removed then Handle.commit ?entry t shadow;
        removed)

  (* -- Group commit: N updates, one one-fence FASE ----------------------- *)

  let insert_many t kvs =
    match kvs with
    | [] -> ()
    | _ ->
        span_n t "insert_many" (List.length kvs) (fun () ->
            let heap = Handle.heap t in
            let b = Batch.create heap in
            List.iter
              (fun (k, v) ->
                Batch.stage b ~slot:(Handle.slot t) (fun version ->
                    insert_pure heap version k v))
              kvs;
            ignore (Batch.commit b : Batch.commit_point))

  let find t key =
    span t "find" (fun () -> find_in (Handle.heap t) (Handle.current t) key)

  let mem t key =
    span t "mem" (fun () -> mem_in (Handle.heap t) (Handle.current t) key)

  (* O(n): cardinality is not materialized in the versioned state. *)
  let cardinal t = card_of (Handle.heap t) (Handle.current t)

  let iter t fn = T.iter (Handle.heap t) (Handle.current t) fn
  let fold t fn acc = T.fold (Handle.heap t) (Handle.current t) fn acc

  (* -- Unified interface ({!Intf.DURABLE}) ------------------------------- *)

  let add t (key, value) = insert t key value
  let add_many = insert_many
  let size = cardinal
  let is_empty t = Pmem.Word.is_null (Handle.current t)
  let iter_elts t fn = iter t (fun k v -> fn (k, v))
end
