(** MOD durable map (Section 4: CHAMP trie + Functional Shadowing).

    The installed version is the CHAMP root itself (null = empty map), so
    each update flushes exactly the copied tree path and nothing else.

    Basic interface: [insert], [remove] are self-contained FASEs with one
    ordering point.  Composition interface: [insert_pure] / [remove_pure]
    return shadow versions for multi-update FASEs, installed with
    [Handle.commit] or {!Commit.siblings} / {!Commit.unrelated}. *)

module Make (K : Pfds.Kv.CODEC) (V : Pfds.Kv.CODEC) = struct
  module T = Pfds.Champ.Make (K) (V)

  type t = Handle.t

  (* A null version is a valid (empty) map, so opening just binds the
     slot; the first insert installs the first node. *)
  let open_or_create heap ~slot =
    ignore heap;
    Handle.make heap ~slot

  let empty_version _heap = T.empty

  (* -- Composition interface: pure updates on versions ------------------ *)

  let insert_pure heap version key value =
    let tree', _grew = T.insert heap version key value in
    tree'

  (* Returns the unchanged version itself (un-owned) when the key was
     absent; callers skip the commit in that case. *)
  let remove_pure heap version key = T.remove heap version key

  let find_in heap version key = T.find heap version key
  let mem_in heap version key = T.mem heap version key
  let card_of heap version = T.cardinal heap version

  (* -- Basic interface: each operation is a one-fence FASE -------------- *)

  let insert t key value =
    let heap = Handle.heap t in
    Handle.commit t (insert_pure heap (Handle.current t) key value)

  let remove t key =
    let heap = Handle.heap t in
    let shadow, removed = remove_pure heap (Handle.current t) key in
    if removed then Handle.commit t shadow;
    removed

  (* -- Group commit: N updates, one one-fence FASE ----------------------- *)

  let insert_many t kvs =
    match kvs with
    | [] -> ()
    | _ ->
        let heap = Handle.heap t in
        let b = Batch.create heap in
        List.iter
          (fun (k, v) ->
            Batch.stage b ~slot:(Handle.slot t) (fun version ->
                insert_pure heap version k v))
          kvs;
        ignore (Batch.commit b : Batch.commit_point)

  let find t key = find_in (Handle.heap t) (Handle.current t) key
  let mem t key = mem_in (Handle.heap t) (Handle.current t) key

  (* O(n): cardinality is not materialized in the versioned state. *)
  let cardinal t = card_of (Handle.heap t) (Handle.current t)

  let iter t fn = T.iter (Handle.heap t) (Handle.current t) fn
  let fold t fn acc = T.fold (Handle.heap t) (Handle.current t) fn acc
end
