(** Commit: the single ordering point of every MOD failure-atomic section.

    A FASE built from MOD datastructures has two parts (Section 4.3.2):
    Update -- pure, out-of-place operations that flush their writes with
    unordered clwbs -- and Commit, which (1) fences once so every shadow is
    durable and (2) atomically swings the persistent pointer(s) from the
    old version(s) to the new.  Three implementations cover the paper's
    cases (Figure 8):

    - {!single}: one datastructure, one or more updates.  One fence, one
      8-byte atomic root write.
    - {!siblings}: several datastructures hanging off one parent object.
      A fresh parent is built pointing at all the shadows, flushed, then
      installed with one fence and one atomic write.
    - {!unrelated}: datastructures with no common parent.  The shadows are
      fenced once, then a short PM-STM transaction updates the root
      pointers -- the only case that needs more ordering points.

    Reclamation (Section 5.3): after the root moves, the superseded
    version and any intermediate shadows are released; reference counts
    make sure structurally shared nodes survive. *)

let release_version heap w =
  if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
    Pmalloc.Heap.release heap (Pmem.Word.to_ptr w)

let mark_commit heap fn =
  let trace = Pmalloc.Heap.trace heap in
  Pmem.Trace.emit trace Pmem.Trace.Commit_begin;
  let result = fn () in
  Pmem.Trace.emit trace Pmem.Trace.Commit_end;
  let stats = Pmalloc.Heap.stats heap in
  stats.Pmem.Stats.commits <- stats.Pmem.Stats.commits + 1;
  result

(* CommitSingle (Figure 8b).  [intermediates] are the superseded shadows
   of a multi-update FASE, oldest first; [latest] is the version to
   install (ownership transfers to the root slot).  [reclaim:false] is an
   ablation knob: skip reference-count reclamation and leave superseded
   versions to recovery-time GC. *)
let single ?(intermediates = []) ?(reclaim = true) heap ~slot latest =
  Pmalloc.Heap.sfence heap;
  (* the one ordering point *)
  let old, old_seq = Pmalloc.Heap.root_get_versioned heap slot in
  mark_commit heap (fun () ->
      match Pmalloc.Heap.commit_mode heap with
      | Pmalloc.Heap.Swing -> Pmalloc.Heap.root_set heap slot latest
      | Pmalloc.Heap.Cas ->
          (* single-writer degenerate: [expected] is the record read one
             line up with no intervening PM event, so the CAS cannot
             lose.  Routing it through [root_cas] exercises the exact
             record-update path concurrent commits take. *)
          if
            not
              (Pmalloc.Heap.root_cas heap slot ~expected:old
                 ~expected_seq:old_seq ~desired:latest)
          then failwith "Commit.single: CAS lost with no concurrent writer");
  if reclaim then begin
    release_version heap old;
    List.iter (release_version heap) intermediates
  end

(* The lock-free concurrent commit: retry the shadow rebuild on root
   conflict instead of holding a lock across the FASE.  [build old]
   re-runs the pure update against the version the root currently
   holds, returning [Some (latest, intermediates)] (ownership of both
   passes in) or [None] when the op is a no-op against [old] (e.g.
   removing an absent key) and nothing should be installed.  Each
   attempt fences its shadows durable, then tries a single counted-CAS
   root swing ({!Pmalloc.Heap.root_cas}, carrying the record sequence
   read alongside [old] as the ABA tag); a lost CAS releases the
   discarded shadows and rebuilds against the new root.  Returns the
   number of build attempts (1 = no conflict).

   [before_swing] runs after the fence, immediately before the CAS of
   an attempt, and [after_swing] runs right after a winning CAS before
   any reclamation; both must be straight-line OCaml with no PM events
   (no store/clwb/sfence), because under the interleaving explorer any
   PM event yields to the other writer.  The concurrent oracle uses
   them to keep its pending/linearized bookkeeping exactly in step with
   the root. *)
let commit_cas ?(reclaim = true) ?(before_swing = ignore)
    ?(after_swing = ignore) heap ~slot ~build =
  let trace = Pmalloc.Heap.trace heap in
  let rec attempt n =
    let old, old_seq = Pmalloc.Heap.root_get_versioned heap slot in
    match build old with
    | None -> n
    | Some (latest, intermediates)
      when Pmem.Word.bits latest = Pmem.Word.bits old ->
        (* the rebuild returned the input version un-owned (MOD pure
           updates do this for no-ops): nothing to install or release
           beyond the attempt's intermediates *)
        if reclaim then List.iter (release_version heap) intermediates;
        n
    | Some (latest, intermediates) ->
        Pmalloc.Heap.sfence heap;
        (* shadows durable; from here to the CAS: no PM events *)
        before_swing ();
        Pmem.Trace.emit trace Pmem.Trace.Commit_begin;
        let won =
          Pmalloc.Heap.root_cas heap slot ~expected:old ~expected_seq:old_seq
            ~desired:latest
        in
        Pmem.Trace.emit trace Pmem.Trace.Commit_end;
        if won then begin
          after_swing ();
          let stats = Pmalloc.Heap.stats heap in
          stats.Pmem.Stats.commits <- stats.Pmem.Stats.commits + 1;
          if reclaim then begin
            release_version heap old;
            List.iter (release_version heap) intermediates
          end;
          n
        end
        else begin
          (* conflict: another writer swung the root after our read.
             Drop this attempt's shadows (reference counts keep shared
             substructure alive) and rebuild against the new root. *)
          release_version heap latest;
          List.iter (release_version heap) intermediates;
          attempt (n + 1)
        end
  in
  attempt 1

(* -- "Don't Persist All": the Backup commit policy ----------------------- *)

(* A Backup-policy slot's root points at a 4-word descriptor
   [magic; nonce; anchor; log] ({!Pmalloc.Backup}).  Committing an
   operation appends one checksummed entry to the log -- a single clwb --
   instead of flushing the whole shadow path; interior nodes stay
   volatile-clean (parked in the heap's backlog) until the next
   {!checkpoint} re-anchors the structure.  After a crash the volatile
   current version is rebuilt by replaying the log's valid prefix from
   the anchor ({!reconstruct}). *)

(* The installed version a reader should see: the durable root for Full
   slots, the volatile (log-covered) current version for Backup slots. *)
let current_of heap ~slot =
  match Pmalloc.Heap.get_policy heap slot with
  | Pmalloc.Heap.Full -> Pmalloc.Heap.root_get heap slot
  | Pmalloc.Heap.Backup -> (
      match Pmalloc.Heap.backup_state heap slot with
      | Some st -> st.Pmalloc.Heap.b_current
      | None ->
          failwith
            (Printf.sprintf
               "slot %d: Backup policy but no volatile state; call the \
                structure's reconstruct first"
               slot))

(* Build and flush a fresh descriptor + empty op log anchored at
   [anchor].  No fence here: the caller's CommitSingle drains the
   descriptor, log-header and policy clwbs before swinging the root, so
   a durable descriptor root implies all of them are durable.  Must run
   outside any backup-update bracket (the descriptor itself needs its
   eager flush). *)
let build_descriptor heap ~slot anchor =
  let log =
    Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw
      ~words:Pmalloc.Backup.log_alloc_words
  in
  (* header lines only: entries validate through their own nonce-bound
     checksums, so the garbage body needs no scrub *)
  Pmalloc.Heap.clwb_range heap
    (Pmalloc.Block.header_of_body log)
    Pmalloc.Block.header_words;
  let nonce = Pmalloc.Heap.next_root_seq heap slot in
  let desc = Pfds.Node.alloc heap ~words:Pmalloc.Backup.desc_words in
  Pfds.Node.set heap desc Pmalloc.Backup.d_magic Pmalloc.Backup.magic_word;
  Pfds.Node.set heap desc Pmalloc.Backup.d_nonce (Pmem.Word.of_int nonce);
  Pfds.Node.set_shared heap desc Pmalloc.Backup.d_anchor anchor;
  Pfds.Node.set heap desc Pmalloc.Backup.d_log (Pmem.Word.of_ptr log);
  Pfds.Node.finish heap desc;
  (desc, log, nonce)

(* Re-anchor a Backup slot at [latest]: flush everything the bracket
   suppressed, install a fresh descriptor + empty log with one
   CommitSingle, and reset the volatile state.  Ownership of [latest]
   transfers: the descriptor takes an anchor reference and the volatile
   current keeps the caller's. *)
let checkpoint ?(intermediates = []) heap ~slot latest =
  Pmalloc.Heap.flush_backlog heap;
  let desc, log, nonce = build_descriptor heap ~slot latest in
  let old = Pmalloc.Heap.backup_state heap slot in
  (* releases the old descriptor, cascading into the old anchor and log *)
  single ~intermediates heap ~slot (Pmem.Word.of_ptr desc);
  (match old with
  | Some st
    when Pmem.Word.bits st.Pmalloc.Heap.b_current <> Pmem.Word.bits latest ->
      release_version heap st.Pmalloc.Heap.b_current
  | _ -> ());
  Pmalloc.Heap.install_backup_state heap slot ~current:latest ~count:0 ~nonce
    ~desc ~log

(* Promote a slot to the Backup policy: durably flip its policy word,
   then install a descriptor anchored at whatever version the slot
   holds (null for an empty structure).  The policy word's clwb drains
   at the promotion commit's fence, before the root swing's own clwb is
   launched -- so a crash can leave Backup-policy + pre-promotion root
   (re-promoted on next open, see [reconstruct]) but never a descriptor
   root with a Full policy word. *)
let enable heap ~slot =
  let root = Pmalloc.Heap.root_get heap slot in
  Pmalloc.Heap.set_policy_durable heap slot Pmalloc.Heap.Backup;
  let desc, log, nonce = build_descriptor heap ~slot root in
  (* the volatile current keeps a reference of its own, alongside the
     anchor reference the descriptor just took *)
  if Pmem.Word.is_ptr root && not (Pmem.Word.is_null root) then
    Pmalloc.Heap.retain heap (Pmem.Word.to_ptr root);
  single heap ~slot (Pmem.Word.of_ptr desc);
  Pmalloc.Heap.install_backup_state heap slot ~current:root ~count:0 ~nonce
    ~desc ~log

(* The Backup commit: one log entry, one clwb, zero shadow flushes.
   The fence comes FIRST -- it drains the {e previous} entry's clwb,
   giving exactly Full commit's epoch-durability window (op k becomes
   durable at op k+1's commit, or at any explicit fence).  Appending
   and fencing in the same commit would make op k durable before its
   caller is told it happened, which the kill-9 oracle rightly flags:
   a crash between the fence and the acknowledgement would expose a
   state the application never observed. *)
let backup_append ?(intermediates = []) heap st ~opcode ~a0 ~a1 ~latest =
  Pmalloc.Heap.sfence heap;
  mark_commit heap (fun () ->
      Pmalloc.Backup.append heap ~log:st.Pmalloc.Heap.b_log
        ~nonce:st.Pmalloc.Heap.b_nonce ~index:st.Pmalloc.Heap.b_count ~opcode
        ~a0 ~a1);
  st.Pmalloc.Heap.b_count <- st.Pmalloc.Heap.b_count + 1;
  let old = st.Pmalloc.Heap.b_current in
  st.Pmalloc.Heap.b_current <- latest;
  if Pmem.Word.bits old <> Pmem.Word.bits latest then release_version heap old;
  List.iter (release_version heap) intermediates

(* Rebuild a Backup slot's volatile current version after a crash (or on
   first open by a fresh process): read the descriptor, replay the log's
   valid entry prefix from the anchor through the structure's [apply],
   and install the result.  Idempotent; no durable writes -- the replayed
   versions stay volatile-clean exactly as the originals did, covered by
   the same log entries. *)
let reconstruct heap ~slot ~apply =
  match Pmalloc.Heap.get_policy heap slot with
  | Pmalloc.Heap.Full -> ()
  | Pmalloc.Heap.Backup -> (
      match Pmalloc.Heap.backup_state heap slot with
      | Some _ -> ()
      | None ->
          let root = Pmalloc.Heap.root_get heap slot in
          let is_desc =
            Pmem.Word.is_ptr root
            && (not (Pmem.Word.is_null root))
            && Pmalloc.Backup.is_magic
                 (Pmalloc.Heap.load heap
                    (Pmem.Word.to_ptr root + Pmalloc.Backup.d_magic))
          in
          if not is_desc then
            (* promotion tear: the policy word persisted but the
               descriptor swing did not; the root is the pre-promotion
               (Full-shaped, possibly null) version.  Promote again. *)
            enable heap ~slot
          else begin
            let body = Pmem.Word.to_ptr root in
            let nonce =
              Pmem.Word.to_int
                (Pmalloc.Heap.load heap (body + Pmalloc.Backup.d_nonce))
            in
            let anchor =
              Pmalloc.Heap.load heap (body + Pmalloc.Backup.d_anchor)
            in
            let log =
              Pmem.Word.to_ptr
                (Pmalloc.Heap.load heap (body + Pmalloc.Backup.d_log))
            in
            let entries =
              Pmalloc.Backup.valid_entries
                ~load:(Pmalloc.Heap.load heap)
                ~log ~nonce
            in
            if Pmem.Word.is_ptr anchor && not (Pmem.Word.is_null anchor) then
              Pmalloc.Heap.retain heap (Pmem.Word.to_ptr anchor);
            let current = ref anchor in
            Pmalloc.Heap.enter_backup_update heap;
            Fun.protect
              ~finally:(fun () -> Pmalloc.Heap.exit_backup_update heap)
              (fun () ->
                List.iter
                  (fun (opcode, a0, a1) ->
                    let next = apply !current ~opcode ~a0 ~a1 in
                    if Pmem.Word.bits next <> Pmem.Word.bits !current then begin
                      release_version heap !current;
                      current := next
                    end)
                  entries);
            Pmalloc.Heap.install_backup_state heap slot ~current:!current
              ~count:(List.length entries) ~nonce ~desc:body ~log
          end)

(* The Update half of CommitSiblings: build and flush a fresh parent that
   points at the [fields] shadows and shares every other field of the old
   parent.  Returns the owned fresh-parent word; no fence here, so batched
   commits can fold several parents under one ordering point. *)
let sibling_shadow heap ~slot fields =
  let old_parent_w = Pmalloc.Heap.root_get heap slot in
  if Pmem.Word.is_null old_parent_w || not (Pmem.Word.is_ptr old_parent_w) then
    invalid_arg
      (Printf.sprintf
         "Commit.siblings: root slot %d holds no parent object (%s)" slot
         (if Pmem.Word.is_null old_parent_w then "null" else "scalar word"));
  let old_parent = Pmem.Word.to_ptr old_parent_w in
  let used = Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) old_parent in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= used then
        invalid_arg
          (Printf.sprintf
             "Commit.siblings: field %d outside the %d-word parent" i used))
    fields;
  let fresh = Pfds.Node.alloc heap ~words:used in
  for i = 0 to used - 1 do
    match List.assoc_opt i fields with
    | Some shadow -> Pfds.Node.set heap fresh i shadow
    | None -> Pfds.Node.set_shared heap fresh i (Pfds.Node.get heap old_parent i)
  done;
  Pfds.Node.finish heap fresh;
  Pmem.Word.of_ptr fresh

(* CommitSiblings (Figure 8c).  The root slot holds a parent object whose
   fields point at MOD datastructures; [fields] gives (field index, owned
   shadow) replacements.  The fresh parent is itself a shadow: built,
   flushed, then installed after the single fence. *)
let siblings heap ~slot fields =
  let old_parent_w = Pmalloc.Heap.root_get heap slot in
  let fresh = sibling_shadow heap ~slot fields in
  Pmalloc.Heap.sfence heap;
  (* the one ordering point *)
  mark_commit heap (fun () -> Pmalloc.Heap.root_set heap slot fresh);
  release_version heap old_parent_w

(* CommitUnrelated (Figure 8d).  [updates] pairs each root slot with its
   owned shadow.  One fence makes the shadows durable; a short PM-STM
   transaction then updates the persistent pointers atomically, at the
   cost of the transaction's own ordering points. *)
let unrelated heap tx updates =
  Pmalloc.Heap.sfence heap;
  let olds = List.map (fun (slot, _) -> Pmalloc.Heap.root_get heap slot) updates in
  mark_commit heap (fun () ->
      Pmstm.Tx.run tx (fun () ->
          List.iter
            (fun (slot, shadow) ->
              (* undo-log both copies of the ping-pong root record, then
                 write the stale copy through the transaction *)
              List.iter
                (fun (off, words) -> Pmstm.Tx.add tx ~off ~words)
                (Pmalloc.Heap.root_record_ranges slot);
              List.iter
                (fun (off, w) -> Pmstm.Tx.store tx off w)
                (Pmalloc.Heap.root_record_stores heap slot shadow))
            updates));
  (* the transaction (or its rollback) rewrote record words outside the
     heap's view; force full validation on the next root access *)
  Pmalloc.Heap.invalidate_root_cache heap;
  List.iter (release_version heap) olds
