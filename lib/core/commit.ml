(** Commit: the single ordering point of every MOD failure-atomic section.

    A FASE built from MOD datastructures has two parts (Section 4.3.2):
    Update -- pure, out-of-place operations that flush their writes with
    unordered clwbs -- and Commit, which (1) fences once so every shadow is
    durable and (2) atomically swings the persistent pointer(s) from the
    old version(s) to the new.  Three implementations cover the paper's
    cases (Figure 8):

    - {!single}: one datastructure, one or more updates.  One fence, one
      8-byte atomic root write.
    - {!siblings}: several datastructures hanging off one parent object.
      A fresh parent is built pointing at all the shadows, flushed, then
      installed with one fence and one atomic write.
    - {!unrelated}: datastructures with no common parent.  The shadows are
      fenced once, then a short PM-STM transaction updates the root
      pointers -- the only case that needs more ordering points.

    Reclamation (Section 5.3): after the root moves, the superseded
    version and any intermediate shadows are released; reference counts
    make sure structurally shared nodes survive. *)

let release_version heap w =
  if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
    Pmalloc.Heap.release heap (Pmem.Word.to_ptr w)

let mark_commit heap fn =
  let trace = Pmalloc.Heap.trace heap in
  Pmem.Trace.emit trace Pmem.Trace.Commit_begin;
  let result = fn () in
  Pmem.Trace.emit trace Pmem.Trace.Commit_end;
  let stats = Pmalloc.Heap.stats heap in
  stats.Pmem.Stats.commits <- stats.Pmem.Stats.commits + 1;
  result

(* CommitSingle (Figure 8b).  [intermediates] are the superseded shadows
   of a multi-update FASE, oldest first; [latest] is the version to
   install (ownership transfers to the root slot).  [reclaim:false] is an
   ablation knob: skip reference-count reclamation and leave superseded
   versions to recovery-time GC. *)
let single ?(intermediates = []) ?(reclaim = true) heap ~slot latest =
  Pmalloc.Heap.sfence heap;
  (* the one ordering point *)
  let old = Pmalloc.Heap.root_get heap slot in
  mark_commit heap (fun () -> Pmalloc.Heap.root_set heap slot latest);
  if reclaim then begin
    release_version heap old;
    List.iter (release_version heap) intermediates
  end

(* The Update half of CommitSiblings: build and flush a fresh parent that
   points at the [fields] shadows and shares every other field of the old
   parent.  Returns the owned fresh-parent word; no fence here, so batched
   commits can fold several parents under one ordering point. *)
let sibling_shadow heap ~slot fields =
  let old_parent_w = Pmalloc.Heap.root_get heap slot in
  if Pmem.Word.is_null old_parent_w || not (Pmem.Word.is_ptr old_parent_w) then
    invalid_arg
      (Printf.sprintf
         "Commit.siblings: root slot %d holds no parent object (%s)" slot
         (if Pmem.Word.is_null old_parent_w then "null" else "scalar word"));
  let old_parent = Pmem.Word.to_ptr old_parent_w in
  let used = Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) old_parent in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= used then
        invalid_arg
          (Printf.sprintf
             "Commit.siblings: field %d outside the %d-word parent" i used))
    fields;
  let fresh = Pfds.Node.alloc heap ~words:used in
  for i = 0 to used - 1 do
    match List.assoc_opt i fields with
    | Some shadow -> Pfds.Node.set heap fresh i shadow
    | None -> Pfds.Node.set_shared heap fresh i (Pfds.Node.get heap old_parent i)
  done;
  Pfds.Node.finish heap fresh;
  Pmem.Word.of_ptr fresh

(* CommitSiblings (Figure 8c).  The root slot holds a parent object whose
   fields point at MOD datastructures; [fields] gives (field index, owned
   shadow) replacements.  The fresh parent is itself a shadow: built,
   flushed, then installed after the single fence. *)
let siblings heap ~slot fields =
  let old_parent_w = Pmalloc.Heap.root_get heap slot in
  let fresh = sibling_shadow heap ~slot fields in
  Pmalloc.Heap.sfence heap;
  (* the one ordering point *)
  mark_commit heap (fun () -> Pmalloc.Heap.root_set heap slot fresh);
  release_version heap old_parent_w

(* CommitUnrelated (Figure 8d).  [updates] pairs each root slot with its
   owned shadow.  One fence makes the shadows durable; a short PM-STM
   transaction then updates the persistent pointers atomically, at the
   cost of the transaction's own ordering points. *)
let unrelated heap tx updates =
  Pmalloc.Heap.sfence heap;
  let olds = List.map (fun (slot, _) -> Pmalloc.Heap.root_get heap slot) updates in
  mark_commit heap (fun () ->
      Pmstm.Tx.run tx (fun () ->
          List.iter
            (fun (slot, shadow) ->
              (* undo-log both copies of the ping-pong root record, then
                 write the stale copy through the transaction *)
              List.iter
                (fun (off, words) -> Pmstm.Tx.add tx ~off ~words)
                (Pmalloc.Heap.root_record_ranges slot);
              List.iter
                (fun (off, w) -> Pmstm.Tx.store tx off w)
                (Pmalloc.Heap.root_record_stores heap slot shadow))
            updates));
  List.iter (release_version heap) olds
