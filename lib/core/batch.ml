(** Group-commit batching: many pure updates, one ordering point.

    A batch accumulates the Update halves of several logical operations
    -- against one root slot, against sibling fields of one parent
    object, or against unrelated root slots -- and retires them all under
    a {e single} FASE.  The commit point is auto-selected from the shape
    of the staged work (paper Figure 8):

    - one root slot touched            -> {!Commit.single} (1 fence);
    - one parent slot, field updates   -> {!Commit.siblings} (1 fence);
    - several root slots               -> {!Commit.unrelated} (1 shadow
      fence + the embedded PM-STM transaction's ordering points).

    Every stage reads through the pending version ({!pending}), so a
    batch has read-your-writes semantics, and every superseded
    intermediate shadow is reclaimed at commit exactly as a multi-update
    FASE reclaims its chain (Section 5.3).  With N logical updates per
    batch the common-case fence cost drops from N to 1. *)

type entry = {
  e_slot : int;
  mutable staged : Pmem.Word.t option;
      (* latest whole-version shadow for the slot (owned) *)
  mutable fields : (int * Pmem.Word.t) list;
      (* staged sibling-field shadows (owned), newest binding first *)
  mutable intermediates : Pmem.Word.t list;
      (* superseded in-batch shadows, newest first (owned); consumers
         reverse to release oldest-first.  Kept newest-first so staging
         is O(1) per op -- an append here made 100k-op batches
         quadratic. *)
}

type t = {
  heap : Pmalloc.Heap.t;
  mutable tx : Pmstm.Tx.t option;  (* for CommitUnrelated, created lazily *)
  mutable entries : entry list;  (* in first-touched order *)
  mutable staged_ops : int;
}

type commit_point = Empty | Single | Siblings | Unrelated

let commit_point_name = function
  | Empty -> "empty"
  | Single -> "single"
  | Siblings -> "siblings"
  | Unrelated -> "unrelated"

let create ?tx heap = { heap; tx; entries = []; staged_ops = 0 }
let heap t = t.heap
let staged_ops t = t.staged_ops
let is_empty t = t.entries = []
let slots t = List.rev_map (fun e -> e.e_slot) t.entries

let entry t slot =
  match List.find_opt (fun e -> e.e_slot = slot) t.entries with
  | Some e -> e
  | None ->
      let e = { e_slot = slot; staged = None; fields = []; intermediates = [] } in
      t.entries <- e :: t.entries;
      e

let pending t ~slot =
  match List.find_opt (fun e -> e.e_slot = slot) t.entries with
  | Some { staged = Some v; _ } -> v
  | _ -> Commit.current_of t.heap ~slot

let pending_field t ~slot ~field =
  let from_parent () =
    let parent_w = Pmalloc.Heap.root_get t.heap slot in
    if Pmem.Word.is_null parent_w || not (Pmem.Word.is_ptr parent_w) then
      invalid_arg
        (Printf.sprintf "Batch.pending_field: root slot %d holds no parent"
           slot)
    else Pfds.Node.get t.heap (Pmem.Word.to_ptr parent_w) field
  in
  match List.find_opt (fun e -> e.e_slot = slot) t.entries with
  | Some e -> (
      match List.assoc_opt field e.fields with
      | Some v -> v
      | None -> from_parent ())
  | None -> from_parent ()

(* Stage one pure update against the whole version of [slot].  [f] maps
   the pending version to its successor shadow; returning the input word
   unchanged (e.g. removing an absent key) stages nothing.  On a Backup
   slot the update runs inside the backup bracket so its shadows stay
   volatile-clean until the commit's checkpoint. *)
let stage t ~slot f =
  let e = entry t slot in
  if e.fields <> [] then
    invalid_arg
      (Printf.sprintf
         "Batch.stage: slot %d already has staged sibling fields" slot);
  let cur =
    match e.staged with
    | Some v -> v
    | None -> Commit.current_of t.heap ~slot
  in
  let next =
    match Pmalloc.Heap.get_policy t.heap slot with
    | Pmalloc.Heap.Full -> f cur
    | Pmalloc.Heap.Backup ->
        Pmalloc.Heap.enter_backup_update t.heap;
        Fun.protect
          ~finally:(fun () -> Pmalloc.Heap.exit_backup_update t.heap)
          (fun () -> f cur)
  in
  if next <> cur then begin
    (match e.staged with
    | Some prev -> e.intermediates <- prev :: e.intermediates
    | None -> ());
    e.staged <- Some next;
    t.staged_ops <- t.staged_ops + 1
  end

(* Stage one pure update against sibling field [field] of the parent
   object in [slot]; the fresh parent is built once, at commit. *)
let stage_field t ~slot ~field f =
  let e = entry t slot in
  if Pmalloc.Heap.get_policy t.heap slot = Pmalloc.Heap.Backup then
    invalid_arg
      (Printf.sprintf
         "Batch.stage_field: slot %d commits as Backup; sibling commits \
          require the Full policy" slot);
  if e.staged <> None then
    invalid_arg
      (Printf.sprintf
         "Batch.stage_field: slot %d already has a whole-version shadow" slot);
  let cur = pending_field t ~slot ~field in
  let next = f cur in
  if next <> cur then begin
    (match List.assoc_opt field e.fields with
    | Some prev ->
        e.fields <- List.remove_assoc field e.fields;
        e.intermediates <- prev :: e.intermediates
    | None -> ());
    e.fields <- (field, next) :: e.fields;
    t.staged_ops <- t.staged_ops + 1
  end

let tx t =
  match t.tx with
  | Some tx -> tx
  | None ->
      let tx = Pmstm.Tx.create t.heap ~version:Pmstm.Tx.V1_5 in
      t.tx <- Some tx;
      tx

let reset t =
  t.entries <- [];
  t.staged_ops <- 0

(* Drop everything staged without committing: the shadows were never
   installed, so releasing them (and their intermediates) is the whole
   rollback -- durable state never moved. *)
let discard t =
  List.iter
    (fun e ->
      (match e.staged with
      | Some v -> Commit.release_version t.heap v
      | None -> ());
      List.iter (fun (_, v) -> Commit.release_version t.heap v) e.fields;
      List.iter (Commit.release_version t.heap) (List.rev e.intermediates))
    t.entries;
  reset t

(* What {!commit} would select right now. *)
let commit_point t =
  let touched = List.filter (fun e -> e.staged <> None || e.fields <> []) t.entries in
  match touched with
  | [] -> Empty
  | [ { fields = []; _ } ] -> Single
  | [ _ ] -> Siblings
  | _ -> Unrelated

let commit_now t =
  let touched =
    List.filter (fun e -> e.staged <> None || e.fields <> []) t.entries
    |> List.rev (* first-touched order *)
  in
  let point =
    match touched with
    | [] -> Empty
    | [ { fields = []; _ } ] -> Single
    | [ _ ] -> Siblings
    | _ -> Unrelated
  in
  (* Backup slots batch naturally through a checkpoint: the staged ops
     already share one ordering point.  Multi-slot commit points write
     through roots directly, which only the Full protocol supports. *)
  (match (point, touched) with
  | (Siblings | Unrelated), entries ->
      List.iter
        (fun e ->
          if Pmalloc.Heap.get_policy t.heap e.e_slot = Pmalloc.Heap.Backup then
            invalid_arg
              (Printf.sprintf
                 "Batch.commit: slot %d commits as Backup; %s commits require \
                  the Full policy"
                 e.e_slot (commit_point_name point)))
        entries
  | (Empty | Single), _ -> ());
  (match (point, touched) with
  | Empty, _ -> ()
  | Single, [ e ] -> (
      let intermediates = List.rev e.intermediates in
      let latest = Option.get e.staged in
      match Pmalloc.Heap.get_policy t.heap e.e_slot with
      | Pmalloc.Heap.Full ->
          Commit.single ~intermediates t.heap ~slot:e.e_slot latest
      | Pmalloc.Heap.Backup ->
          Commit.checkpoint ~intermediates t.heap ~slot:e.e_slot latest)
  | Siblings, [ e ] ->
      Commit.siblings t.heap ~slot:e.e_slot e.fields;
      List.iter (Commit.release_version t.heap) (List.rev e.intermediates)
  | (Unrelated | Single | Siblings), entries ->
      (* materialize one fresh parent per sibling group (Update phase,
         no fence), then swing every root under one shadow fence + one
         short PM-STM transaction *)
      let updates =
        List.map
          (fun e ->
            match e.staged with
            | Some v -> (e.e_slot, v)
            | None -> (e.e_slot, Commit.sibling_shadow t.heap ~slot:e.e_slot e.fields))
          entries
      in
      Commit.unrelated t.heap (tx t) updates;
      List.iter
        (fun e ->
          List.iter (Commit.release_version t.heap) (List.rev e.intermediates))
        entries);
  reset t;
  point

(* The span label carries the commit point the batch is about to select
   and the number of staged logical ops, so exported histograms show the
   per-FASE cost of each ordering strategy directly. *)
let commit t =
  let ops = max 1 t.staged_ops in
  Pmalloc.Heap.span t.heap ~structure:"batch"
    ~op:(commit_point_name (commit_point t))
    ~ops
    (fun () -> commit_now t)
