(** Typed errors for the durable-structure open paths. *)

type t =
  | Corrupt_root of { slot : int; detail : string }
      (** The slot's word cannot be a version: a scalar where a pointer
          should be, or a dangling pointer.  Heap-wide failures (from
          {!Recovery}) use [slot = -1]. *)
  | Slot_out_of_range of { slot : int; limit : int }
  | Codec_mismatch of { slot : int; expected : string; found : string }
      (** The root block's shape disagrees with the structure's
          descriptor layout. *)
  | Torn_root of { slot : int; detail : string }
      (** Both copies of the slot's dual-copy root record failed
          checksum validation (see {!Pmalloc.Heap.root_get}): the root
          is detectably corrupt with no survivor to fall back to. *)
  | Media_error of { off : int; detail : string }
      (** A load faulted on a media-bad line
          ({!Pmem.Region.Media_fault}) and no redundant copy could
          rescue it. *)
  | Bad_image of { path : string; detail : string }
      (** An image file could not be opened as a heap
          ({!Pmem.Backing.Bad_image}): missing, zero-length, truncated,
          wrong magic or format version, or content failing the
          whole-image checksum. *)

exception Error of t
(** Raised by the [_exn] wrappers; carries the same typed error. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val get_ok : ('a, t) result -> 'a
(** [Ok v -> v]; [Error e] raises {!Error}[ e]. *)
