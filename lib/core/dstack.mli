(** MOD durable stack: {!Pfds.Pstack} under Functional Shadowing.

    The version word is the list head (null = empty): push allocates one
    node, pop shares the tail, each Basic-interface operation is a
    one-fence FASE.  Conforms to {!Intf.DURABLE} with
    [elt = Pmem.Word.t] ([add] = [push]). *)

type t = Handle.t
type elt = Pmem.Word.t

val structure : string
val open_or_create :
  ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
val handle : t -> Handle.t
val empty_version : Pmalloc.Heap.t -> Pmem.Word.t

(** {1 Composition interface} *)

val push_pure : Pmalloc.Heap.t -> Pmem.Word.t -> Pmem.Word.t -> Pmem.Word.t

val pop_pure :
  Pmalloc.Heap.t -> Pmem.Word.t -> (Pmem.Word.t * Pmem.Word.t) option

val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t
val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int

(** {1 Basic interface} *)

val push : t -> Pmem.Word.t -> unit

val pop : t -> Pmem.Word.t option
(** Returns the value word of the popped element.  For blob-valued
    stacks, read the payload via [peek] before popping: the commit
    inside [pop] releases the old version and with it the last
    reference to the popped blob. *)

val push_many : t -> Pmem.Word.t list -> unit
val peek : t -> Pmem.Word.t option
val is_empty : t -> bool
val length : t -> int
val iter : t -> (Pmem.Word.t -> unit) -> unit
val to_list : t -> Pmem.Word.t list

(** {1 Unified interface ({!Intf.DURABLE})} *)

val add : t -> elt -> unit
val add_many : t -> elt list -> unit
val size : t -> int
val iter_elts : t -> (elt -> unit) -> unit
