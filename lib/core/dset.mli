(** MOD durable set: a {!Dmap} with unit values (the paper's set shares
    the map's CHAMP implementation the same way).  Conforms to
    {!Intf.DURABLE} with [elt = K.t]. *)

module Make (K : Pfds.Kv.CODEC) : sig
  type t = Handle.t
  type elt = K.t

  val structure : string
  val open_or_create :
    ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
  val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
  val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
  val handle : t -> Handle.t
  val empty_version : Pmalloc.Heap.t -> Pmem.Word.t

  (** {1 Composition interface} *)

  val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> Pmem.Word.t
  val remove_pure : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> Pmem.Word.t * bool
  val mem_in : Pmalloc.Heap.t -> Pmem.Word.t -> K.t -> bool
  val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int

  (** {1 Basic interface} *)

  val add : t -> K.t -> unit
  val add_many : t -> K.t list -> unit
  val remove : t -> K.t -> bool
  val mem : t -> K.t -> bool
  val cardinal : t -> int
  val iter : t -> (K.t -> unit) -> unit
  val fold : t -> (K.t -> 'a -> 'a) -> 'a -> 'a

  (** {1 Unified interface ({!Intf.DURABLE})} *)

  val size : t -> int
  val is_empty : t -> bool
  val iter_elts : t -> (elt -> unit) -> unit
end
