(** Commit: the single ordering point of every MOD failure-atomic section
    (paper Section 5.1, Figure 8).

    A FASE has two parts: Update -- pure, out-of-place operations that
    flush their writes with unordered clwbs -- and Commit, which fences
    once so every shadow is durable, then atomically swings the persistent
    pointer(s), then reclaims superseded versions by reference count. *)

val single :
  ?intermediates:Pmem.Word.t list ->
  ?reclaim:bool ->
  Pmalloc.Heap.t ->
  slot:int ->
  Pmem.Word.t ->
  unit
(** CommitSingle (Figure 8b): one datastructure, one or more updates.
    One fence, one 8-byte atomic root write.  [intermediates] are the
    superseded shadows of a multi-update FASE; [reclaim:false] is an
    ablation knob that leaves old versions to recovery GC. *)

val commit_cas :
  ?reclaim:bool ->
  ?before_swing:(unit -> unit) ->
  ?after_swing:(unit -> unit) ->
  Pmalloc.Heap.t ->
  slot:int ->
  build:(Pmem.Word.t -> (Pmem.Word.t * Pmem.Word.t list) option) ->
  int
(** The lock-free concurrent commit: [build old] re-runs the pure
    update against the root's current version, returning the owned
    [(latest, intermediates)] shadow pair or [None] for a no-op; each
    attempt fences the shadows durable and tries one hardware-CAS root
    swing ({!Pmalloc.Heap.root_cas}), retrying the rebuild on conflict
    instead of taking a lock.  Returns the number of build attempts
    (1 = uncontended).  [before_swing] runs between an attempt's fence
    and its CAS, [after_swing] directly after a winning CAS before any
    reclamation; both must issue no PM events (under the interleaving
    explorer every PM event is a preemption point) -- the concurrent
    oracle hangs its pending/linearized bookkeeping on them.

    Reclamation contract: with genuinely concurrent writers pass
    [reclaim:false].  [reclaim:true] frees the superseded version the
    instant the CAS wins, while a losing writer may still be mid-build
    holding pointers into it -- the classic lock-free reclamation
    hazard (there are no hazard pointers here).  Unreclaimed versions
    are unreachable garbage that recovery GC scrubs; a lost attempt's
    discarded shadow is always released immediately, which is safe
    because its fresh nodes are private and its shared subtrees keep at
    least their pre-build reference count. *)

val siblings : Pmalloc.Heap.t -> slot:int -> (int * Pmem.Word.t) list -> unit
(** CommitSiblings (Figure 8c): several datastructures under one parent
    object held in [slot].  [(field, shadow)] pairs replace parent fields;
    unlisted fields are shared.  A fresh parent is built and flushed, then
    installed after the single fence with one atomic write.  Raises
    [Invalid_argument] if the slot is empty (null) or holds a scalar
    rather than a parent pointer, or if a field index falls outside the
    parent object. *)

val sibling_shadow :
  Pmalloc.Heap.t -> slot:int -> (int * Pmem.Word.t) list -> Pmem.Word.t
(** The Update half of {!siblings}: build and flush (no fence) a fresh
    parent for [slot] with the given field replacements, sharing the
    rest.  Returns the owned parent shadow, ready for any Commit flavor;
    {!Batch} uses it to fold several sibling groups under one fence.
    Same [Invalid_argument] guards as {!siblings}. *)

val unrelated :
  Pmalloc.Heap.t -> Pmstm.Tx.t -> (int * Pmem.Word.t) list -> unit
(** CommitUnrelated (Figure 8d): datastructures with no common parent.
    One fence persists all shadows, then a short PM-STM transaction
    updates the root slots -- the only case with extra ordering points. *)

val release_version : Pmalloc.Heap.t -> Pmem.Word.t -> unit
(** Drop one reference to a version (no-op on null/scalar words). *)

(** {1 "Don't Persist All": the Backup commit policy}

    A Backup-policy slot's root holds a descriptor [magic; nonce;
    anchor; log] ({!Pmalloc.Backup}); commits append one checksummed log
    entry (a single clwb) instead of flushing the shadow path, and the
    volatile current version is rebuilt after a crash by replaying the
    log from the anchor.  Structures drive these through
    {!Handle.commit}'s [?entry] and their own [reconstruct]. *)

val current_of : Pmalloc.Heap.t -> slot:int -> Pmem.Word.t
(** The version a reader should see: the durable root for Full slots,
    the volatile current version for Backup slots.  Raises [Failure] on
    a Backup slot whose state has not been reconstructed yet. *)

val enable : Pmalloc.Heap.t -> slot:int -> unit
(** Promote a slot to the Backup policy: durably flip its policy word,
    then commit a descriptor anchored at the slot's present version
    (null for an empty structure) and install fresh volatile state.
    One fence.  A crash mid-promotion leaves either the old Full state
    or Backup-policy + pre-promotion root, which [reconstruct]
    re-promotes. *)

val backup_append :
  ?intermediates:Pmem.Word.t list ->
  Pmalloc.Heap.t ->
  Pmalloc.Heap.backup_state ->
  opcode:int ->
  a0:Pmem.Word.t ->
  a1:Pmem.Word.t ->
  latest:Pmem.Word.t ->
  unit
(** The Backup commit: fence (draining the {e previous} entry's clwb --
    the same epoch-durability window as a Full commit), append + clwb
    one log entry, advance the volatile current to [latest] and release
    the superseded versions. *)

val checkpoint :
  ?intermediates:Pmem.Word.t list ->
  Pmalloc.Heap.t ->
  slot:int ->
  Pmem.Word.t ->
  unit
(** Re-anchor a Backup slot at the given version: flush the backlogged
    interior nodes, commit a fresh descriptor + empty op log with one
    CommitSingle, reset the volatile state.  Used when the log fills or
    an operation's arguments cannot ride in a log entry. *)

val reconstruct :
  Pmalloc.Heap.t ->
  slot:int ->
  apply:
    (Pmem.Word.t -> opcode:int -> a0:Pmem.Word.t -> a1:Pmem.Word.t ->
     Pmem.Word.t) ->
  unit
(** Rebuild a Backup slot's volatile current version: replay the log's
    valid prefix from the anchor through [apply] (the structure's pure
    op dispatcher, returning the owned successor version).  Idempotent,
    no durable writes; a no-op on Full slots.  An interrupted promotion
    (Backup policy, non-descriptor root) is re-promoted here. *)
