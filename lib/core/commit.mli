(** Commit: the single ordering point of every MOD failure-atomic section
    (paper Section 5.1, Figure 8).

    A FASE has two parts: Update -- pure, out-of-place operations that
    flush their writes with unordered clwbs -- and Commit, which fences
    once so every shadow is durable, then atomically swings the persistent
    pointer(s), then reclaims superseded versions by reference count. *)

val single :
  ?intermediates:Pmem.Word.t list ->
  ?reclaim:bool ->
  Pmalloc.Heap.t ->
  slot:int ->
  Pmem.Word.t ->
  unit
(** CommitSingle (Figure 8b): one datastructure, one or more updates.
    One fence, one 8-byte atomic root write.  [intermediates] are the
    superseded shadows of a multi-update FASE; [reclaim:false] is an
    ablation knob that leaves old versions to recovery GC. *)

val siblings : Pmalloc.Heap.t -> slot:int -> (int * Pmem.Word.t) list -> unit
(** CommitSiblings (Figure 8c): several datastructures under one parent
    object held in [slot].  [(field, shadow)] pairs replace parent fields;
    unlisted fields are shared.  A fresh parent is built and flushed, then
    installed after the single fence with one atomic write.  Raises
    [Invalid_argument] if the slot is empty (null) or holds a scalar
    rather than a parent pointer, or if a field index falls outside the
    parent object. *)

val sibling_shadow :
  Pmalloc.Heap.t -> slot:int -> (int * Pmem.Word.t) list -> Pmem.Word.t
(** The Update half of {!siblings}: build and flush (no fence) a fresh
    parent for [slot] with the given field replacements, sharing the
    rest.  Returns the owned parent shadow, ready for any Commit flavor;
    {!Batch} uses it to fold several sibling groups under one fence.
    Same [Invalid_argument] guards as {!siblings}. *)

val unrelated :
  Pmalloc.Heap.t -> Pmstm.Tx.t -> (int * Pmem.Word.t) list -> unit
(** CommitUnrelated (Figure 8d): datastructures with no common parent.
    One fence persists all shadows, then a short PM-STM transaction
    updates the root slots -- the only case with extra ordering points. *)

val release_version : Pmalloc.Heap.t -> Pmem.Word.t -> unit
(** Drop one reference to a version (no-op on null/scalar words). *)
