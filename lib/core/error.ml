(** Typed errors for the durable-structure open paths.

    Opening a root slot can fail three ways: the slot index is outside
    the root directory, the slot's word is not a plausible version
    pointer, or it points at a block whose shape does not match the
    structure being opened (a vector handle aimed at a CHAMP root, say).
    The [result]-returning open paths report these as values; the [_exn]
    wrappers raise {!Error}. *)

type t =
  | Corrupt_root of { slot : int; detail : string }
      (** The slot's word cannot be a version of anything: a scalar
          where a pointer should be, a dangling pointer, or (for
          recovery, which is heap-wide) [slot = -1]. *)
  | Slot_out_of_range of { slot : int; limit : int }
  | Codec_mismatch of { slot : int; expected : string; found : string }
      (** The root block's shape disagrees with the structure's
          descriptor layout. *)
  | Torn_root of { slot : int; detail : string }
      (** Both copies of the slot's dual-copy root record failed
          checksum validation: torn persistence or in-place corruption,
          detected rather than trusted. *)
  | Media_error of { off : int; detail : string }
      (** A load faulted on a media-bad line and no redundant copy could
          rescue it. *)
  | Bad_image of { path : string; detail : string }
      (** An image file could not be opened as a heap: missing,
          zero-length, truncated, wrong magic or format version, or
          content that fails the whole-image checksum. *)

exception Error of t

let to_string = function
  | Corrupt_root { slot; detail } ->
      if slot < 0 then Printf.sprintf "corrupt heap: %s" detail
      else Printf.sprintf "corrupt root in slot %d: %s" slot detail
  | Slot_out_of_range { slot; limit } ->
      Printf.sprintf "root slot %d out of range (root directory has %d slots)"
        slot limit
  | Codec_mismatch { slot; expected; found } ->
      Printf.sprintf "slot %d codec mismatch: expected %s, found %s" slot
        expected found
  | Torn_root { slot; detail } ->
      Printf.sprintf "torn root record in slot %d: %s" slot detail
  | Media_error { off; detail } ->
      Printf.sprintf "media read fault at offset %d: %s" off detail
  | Bad_image { path; detail } ->
      Printf.sprintf "unusable image file %s: %s" path detail

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Mod_core.Error.Error(%s)" (to_string e))
    | _ -> None)

let get_ok = function Ok v -> v | Error e -> raise (Error e)
