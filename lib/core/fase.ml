(** Failure-atomic section instrumentation.

    MOD's headline property is "one ordering point per FASE in the common
    case" (Section 4).  [run] executes a section and reports how many
    fences and flushes it actually issued, so tests and Figure 10 can
    assert and plot the claim rather than assume it. *)

type profile = {
  fences : int;
  flushes : int;
  commits : int;
  ns : float;
  ns_flush : float;
  ns_log : float;
}

let run heap fn =
  let stats = Pmalloc.Heap.stats heap in
  let before = Pmem.Stats.snapshot stats in
  let result = fn () in
  let after = Pmem.Stats.snapshot stats in
  let d = Pmem.Stats.diff ~before ~after in
  ( result,
    {
      fences = d.Pmem.Stats.s_fences;
      flushes = d.Pmem.Stats.s_clwbs;
      commits = d.Pmem.Stats.s_commits;
      ns = d.Pmem.Stats.s_now_ns;
      ns_flush = d.Pmem.Stats.s_ns_flush;
      ns_log = d.Pmem.Stats.s_ns_log;
    } )

let pp_profile ppf p =
  Format.fprintf ppf
    "%d fences, %d flushes, %d commits, %.0f ns (flush %.0f, log %.0f)"
    p.fences p.flushes p.commits p.ns p.ns_flush p.ns_log
