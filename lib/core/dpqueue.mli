(** MOD durable priority queue — a sixth datastructure produced by the
    paper's recipe (Section 4.2) from a purely functional leftist heap
    ({!Pfds.Pheap}).  Conforms to {!Intf.DURABLE} with [elt = int]
    (a priority; [add] = [insert]). *)

type t = Handle.t
type elt = int

val structure : string
val open_or_create :
  ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
val handle : t -> Handle.t
val empty_version : Pmalloc.Heap.t -> Pmem.Word.t

(** {1 Composition interface} *)

val insert_pure : Pmalloc.Heap.t -> Pmem.Word.t -> int -> Pmem.Word.t
val delete_min_pure : Pmalloc.Heap.t -> Pmem.Word.t -> (int * Pmem.Word.t) option
val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t
val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int

(** {1 Basic interface} *)

val insert : t -> int -> unit
val find_min : t -> int option
val delete_min : t -> int option
val insert_many : t -> int list -> unit
val is_empty : t -> bool
val cardinal : t -> int
val fold : t -> (int -> 'a -> 'a) -> 'a -> 'a

(** {1 Unified interface ({!Intf.DURABLE})} *)

val add : t -> elt -> unit
val add_many : t -> elt list -> unit
val size : t -> int

val iter_elts : t -> (elt -> unit) -> unit
(** Unordered: the leftist heap has no cheap in-order traversal short of
    draining it. *)
