(** MOD durable stack: {!Pfds.Pstack} under Functional Shadowing.

    The version word is the list head (null = empty): push allocates one
    node, pop shares the tail, each Basic-interface operation is a
    one-fence FASE. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dstack"

let span t op f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

let span_n t op n f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

let handle t = t
let empty_version _heap = Pfds.Pstack.empty
let push_pure = Pfds.Pstack.push
let pop_pure = Pfds.Pstack.pop
let add_pure = push_pure

(* -- Backup-policy op log -------------------------------------------------- *)

let op_push = 0
let op_pop = 1

let apply heap version ~opcode ~a0 ~a1 =
  ignore a1;
  match opcode with
  | 0 -> Pfds.Pstack.push heap version a0
  | 1 -> (
      match Pfds.Pstack.pop heap version with
      | Some (_, shadow) -> shadow
      | None -> version)
  | _ -> Printf.ksprintf failwith "dstack: unknown log opcode %d" opcode

let reconstruct heap ~slot = Commit.reconstruct heap ~slot ~apply:(apply heap)

(* Only scalar elements can ride in a log entry; a pointer-valued push
   (blob element) forces a checkpoint instead. *)
let entry_of_elt op w =
  if Pmem.Word.is_ptr w then None else Some (op, w, Pmem.Word.of_int 0)

(* A null version is a valid (empty) stack, so opening just binds the
   slot; the first push installs the first node. *)
let open_or_create ?persist heap ~slot =
  let t = Handle.make heap ~slot in
  (match (persist, Pmalloc.Heap.get_policy heap slot) with
  | Some Pmalloc.Heap.Full, Pmalloc.Heap.Backup ->
      invalid_arg "Dstack.open_or_create: slot is committed as Backup"
  | (None | Some Pmalloc.Heap.Full), Pmalloc.Heap.Full -> ()
  | Some Pmalloc.Heap.Backup, Pmalloc.Heap.Full -> Commit.enable heap ~slot
  | _, Pmalloc.Heap.Backup -> reconstruct heap ~slot);
  t

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"stack cons cell (2 scanned words)"
           ~words:2)
  with
  | Error _ as e -> e
  | Ok h ->
      if Pmalloc.Heap.get_policy heap slot = Pmalloc.Heap.Backup then
        reconstruct heap ~slot;
      Ok h

let push t w =
  span t "push" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Pstack.push heap cur w) in
      Handle.commit ?entry:(entry_of_elt op_push w) t shadow)

(* Pop returns the value word of the popped element; for inline scalars
   this is the value itself.  For blob-valued stacks, read the payload via
   [peek] before popping: the commit inside [pop] releases the old version
   and with it the last reference to the popped blob. *)
let pop t =
  span t "pop" (fun () ->
      let heap = Handle.heap t in
      match Handle.pure t (fun cur -> Pfds.Pstack.pop heap cur) with
      | None -> None
      | Some (v, shadow) ->
          Handle.commit ~entry:(op_pop, Pmem.Word.of_int 0, Pmem.Word.of_int 0)
            t shadow;
          Some v)

(* Group commit: push N elements in one one-fence FASE. *)
let push_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "push_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pstack.push heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let peek t =
  span t "peek" (fun () ->
      Pfds.Pstack.peek (Handle.heap t) (Handle.current t))

let is_empty t = Pfds.Pstack.is_empty (Handle.current t)
let length t = Pfds.Pstack.length (Handle.heap t) (Handle.current t)
let iter t fn = Pfds.Pstack.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Pstack.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = push
let add_many = push_many
let size = length
let size_in heap version = Pfds.Pstack.length heap version
let iter_elts = iter
