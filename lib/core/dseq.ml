(** MOD durable sequence: the RRB tree ({!Pfds.Rrb}) under Functional
    Shadowing — the paper's vector structure with its full interface
    (reference [44]), including failure-atomic O(log n) concatenation and
    slicing.  Append-heavy workloads should prefer {!Dvec}, whose tail
    buffer makes push_back cheaper; [Dseq] is the general sequence. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dseq"

let span t op f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

let span_n t op n f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

let handle t = t

(* -- Backup-policy op log -------------------------------------------------- *)

let op_push_back = 0
let op_set = 1
let op_restrict = 2

let apply heap version ~opcode ~a0 ~a1 =
  match opcode with
  | 0 -> Pfds.Rrb.push_back heap version a0
  | 1 -> Pfds.Rrb.set heap version (Pmem.Word.to_int a0) a1
  | 2 ->
      Pfds.Rrb.slice heap version ~pos:(Pmem.Word.to_int a0)
        ~len:(Pmem.Word.to_int a1)
  | _ -> Printf.ksprintf failwith "dseq: unknown log opcode %d" opcode

let reconstruct heap ~slot = Commit.reconstruct heap ~slot ~apply:(apply heap)

let entry_of_elt op w =
  if Pmem.Word.is_ptr w then None else Some (op, w, Pmem.Word.of_int 0)

let open_or_create ?persist heap ~slot =
  let h = Handle.make heap ~slot in
  (match (persist, Pmalloc.Heap.get_policy heap slot) with
  | Some Pmalloc.Heap.Full, Pmalloc.Heap.Backup ->
      invalid_arg "Dseq.open_or_create: slot is committed as Backup"
  | (None | Some Pmalloc.Heap.Full), Pmalloc.Heap.Full ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Rrb.create heap)
  | Some Pmalloc.Heap.Backup, Pmalloc.Heap.Full ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Rrb.create heap);
      Commit.enable heap ~slot
  | _, Pmalloc.Heap.Backup -> reconstruct heap ~slot);
  h

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"RRB descriptor (3 scanned words)"
           ~words:3)
  with
  | Error _ as e -> e
  | Ok h ->
      (if Pmalloc.Heap.get_policy heap slot = Pmalloc.Heap.Backup then
         reconstruct heap ~slot
       else if not (Handle.is_initialized h) then
         Handle.initialize h (Pfds.Rrb.create heap));
      Ok h

(* -- Composition interface ------------------------------------------------ *)

let empty_version heap = Pfds.Rrb.create heap
let of_words_pure = Pfds.Rrb.of_words
let set_pure = Pfds.Rrb.set
let concat_pure = Pfds.Rrb.concat
let slice_pure = Pfds.Rrb.slice
let get_in = Pfds.Rrb.get
let size_in = Pfds.Rrb.size
let add_pure heap version w = Pfds.Rrb.push_back heap version w

(* -- Basic interface ------------------------------------------------------ *)

let push_back t w =
  span t "push_back" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Rrb.push_back heap cur w) in
      Handle.commit ?entry:(entry_of_elt op_push_back w) t shadow)

let set t i w =
  span t "set" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Rrb.set heap cur i w) in
      let entry =
        if Pmem.Word.is_ptr w then None else Some (op_set, Pmem.Word.of_int i, w)
      in
      Handle.commit ?entry t shadow)

(* Append another durable sequence's current contents, failure-atomically.
   The other handle's version is not expressible in a log entry, so a
   Backup slot takes a checkpoint here. *)
let append t other =
  span t "append" (fun () ->
      let heap = Handle.heap t in
      let shadow =
        Handle.pure t (fun cur ->
            Pfds.Rrb.concat heap cur (Handle.current other))
      in
      Handle.commit t shadow)

(* Keep only [pos, pos+len), failure-atomically. *)
let restrict t ~pos ~len =
  span t "restrict" (fun () ->
      let heap = Handle.heap t in
      let shadow =
        Handle.pure t (fun cur -> Pfds.Rrb.slice heap cur ~pos ~len)
      in
      Handle.commit
        ~entry:(op_restrict, Pmem.Word.of_int pos, Pmem.Word.of_int len)
        t shadow)

(* Group commit: push N elements in one one-fence FASE. *)
let push_back_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "push_back_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Rrb.push_back heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let get t i =
  span t "get" (fun () -> Pfds.Rrb.get (Handle.heap t) (Handle.current t) i)

let size t = Pfds.Rrb.size (Handle.heap t) (Handle.current t)
let is_empty t = size t = 0
let iter t fn = Pfds.Rrb.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Rrb.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = push_back
let add_many = push_back_many
let iter_elts = iter
