(** MOD durable sequence: the RRB tree ({!Pfds.Rrb}) under Functional
    Shadowing — the paper's vector structure with its full interface
    (reference [44]), including failure-atomic O(log n) concatenation and
    slicing.  Append-heavy workloads should prefer {!Dvec}, whose tail
    buffer makes push_back cheaper; [Dseq] is the general sequence. *)

type t = Handle.t
type elt = Pmem.Word.t

let structure = "dseq"

let span t op f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op f

let span_n t op n f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op ~ops:n f

let open_or_create heap ~slot =
  let h = Handle.make heap ~slot in
  if not (Handle.is_initialized h) then Handle.initialize h (Pfds.Rrb.create heap);
  h

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"RRB descriptor (3 scanned words)"
           ~words:3)
  with
  | Error _ as e -> e
  | Ok h ->
      if not (Handle.is_initialized h) then
        Handle.initialize h (Pfds.Rrb.create heap);
      Ok h

let handle t = t

(* -- Composition interface ------------------------------------------------ *)

let empty_version heap = Pfds.Rrb.create heap
let of_words_pure = Pfds.Rrb.of_words
let set_pure = Pfds.Rrb.set
let concat_pure = Pfds.Rrb.concat
let slice_pure = Pfds.Rrb.slice
let get_in = Pfds.Rrb.get
let size_in = Pfds.Rrb.size
let add_pure heap version w = Pfds.Rrb.push_back heap version w

(* -- Basic interface ------------------------------------------------------ *)

let push_back t w =
  span t "push_back" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Rrb.push_back heap (Handle.current t) w))

let set t i w =
  span t "set" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Rrb.set heap (Handle.current t) i w))

(* Append another durable sequence's current contents, failure-atomically. *)
let append t other =
  span t "append" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t
        (Pfds.Rrb.concat heap (Handle.current t) (Handle.current other)))

(* Keep only [pos, pos+len), failure-atomically. *)
let restrict t ~pos ~len =
  span t "restrict" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Rrb.slice heap (Handle.current t) ~pos ~len))

(* Group commit: push N elements in one one-fence FASE. *)
let push_back_many t ws =
  match ws with
  | [] -> ()
  | _ ->
      span_n t "push_back_many" (List.length ws) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun w ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Rrb.push_back heap version w))
            ws;
          ignore (Batch.commit b : Batch.commit_point))

let get t i =
  span t "get" (fun () -> Pfds.Rrb.get (Handle.heap t) (Handle.current t) i)

let size t = Pfds.Rrb.size (Handle.heap t) (Handle.current t)
let is_empty t = size t = 0
let iter t fn = Pfds.Rrb.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Rrb.to_list (Handle.heap t) (Handle.current t)

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = push_back
let add_many = push_back_many
let iter_elts = iter
