(** MOD durable priority queue — a sixth datastructure produced by the
    paper's recipe (Section 4.2) from a purely functional leftist heap
    ({!Pfds.Pheap}).  Included to demonstrate that new MOD datastructures
    really are a recipe application: the whole module is a thin
    pure-update + CommitSingle wrapper, identical in shape to the five
    the paper ships. *)

type t = Handle.t
type elt = int

let structure = "dpqueue"

let span t op f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op f

let span_n t op n f =
  Telemetry.span (Pmalloc.Heap.stats (Handle.heap t)) ~structure ~op ~ops:n f

(* A null version is a valid (empty) heap. *)
let open_or_create heap ~slot = Handle.make heap ~slot

let open_result heap ~slot =
  Handle.open_slot heap ~slot
    ~validate:
      (Handle.expect_shape ~expected:"leftist-heap node (4 scanned words)"
         ~words:4)

let handle t = t
let empty_version _heap = Pfds.Pheap.empty
let insert_pure = Pfds.Pheap.insert
let delete_min_pure = Pfds.Pheap.delete_min
let add_pure = insert_pure

let insert t p =
  span t "insert" (fun () ->
      let heap = Handle.heap t in
      Handle.commit t (Pfds.Pheap.insert heap (Handle.current t) p))

let find_min t =
  span t "find_min" (fun () ->
      Pfds.Pheap.find_min (Handle.heap t) (Handle.current t))

let delete_min t =
  span t "delete_min" (fun () ->
      let heap = Handle.heap t in
      match Pfds.Pheap.delete_min heap (Handle.current t) with
      | None -> None
      | Some (p, shadow) ->
          Handle.commit t shadow;
          Some p)

(* Group commit: insert N priorities in one one-fence FASE. *)
let insert_many t ps =
  match ps with
  | [] -> ()
  | _ ->
      span_n t "insert_many" (List.length ps) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun p ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pheap.insert heap version p))
            ps;
          ignore (Batch.commit b : Batch.commit_point))

let is_empty t = Pfds.Pheap.is_empty (Handle.current t)
let cardinal t = Pfds.Pheap.cardinal (Handle.heap t) (Handle.current t)
let fold t fn acc = Pfds.Pheap.fold (Handle.heap t) (Handle.current t) fn acc

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = insert
let add_many = insert_many
let size = cardinal
let size_in heap version = Pfds.Pheap.cardinal heap version

(* Unordered: the leftist heap has no cheap in-order traversal short of
   draining it. *)
let iter_elts t fn = fold t (fun p () -> fn p) ()
