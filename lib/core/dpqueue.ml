(** MOD durable priority queue — a sixth datastructure produced by the
    paper's recipe (Section 4.2) from a purely functional leftist heap
    ({!Pfds.Pheap}).  Included to demonstrate that new MOD datastructures
    really are a recipe application: the whole module is a thin
    pure-update + CommitSingle wrapper, identical in shape to the five
    the paper ships. *)

type t = Handle.t
type elt = int

let structure = "dpqueue"

let span t op f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op f

let span_n t op n f =
  Pmalloc.Heap.span (Handle.heap t) ~structure ~op ~ops:n f

let handle t = t
let empty_version _heap = Pfds.Pheap.empty
let insert_pure = Pfds.Pheap.insert
let delete_min_pure = Pfds.Pheap.delete_min
let add_pure = insert_pure

(* -- Backup-policy op log -------------------------------------------------- *)

let op_insert = 0
let op_delete_min = 1

let apply heap version ~opcode ~a0 ~a1 =
  ignore a1;
  match opcode with
  | 0 -> Pfds.Pheap.insert heap version (Pmem.Word.to_int a0)
  | 1 -> (
      match Pfds.Pheap.delete_min heap version with
      | Some (_, shadow) -> shadow
      | None -> version)
  | _ -> Printf.ksprintf failwith "dpqueue: unknown log opcode %d" opcode

let reconstruct heap ~slot = Commit.reconstruct heap ~slot ~apply:(apply heap)

(* A null version is a valid (empty) heap. *)
let open_or_create ?persist heap ~slot =
  let t = Handle.make heap ~slot in
  (match (persist, Pmalloc.Heap.get_policy heap slot) with
  | Some Pmalloc.Heap.Full, Pmalloc.Heap.Backup ->
      invalid_arg "Dpqueue.open_or_create: slot is committed as Backup"
  | (None | Some Pmalloc.Heap.Full), Pmalloc.Heap.Full -> ()
  | Some Pmalloc.Heap.Backup, Pmalloc.Heap.Full -> Commit.enable heap ~slot
  | _, Pmalloc.Heap.Backup -> reconstruct heap ~slot);
  t

let open_result heap ~slot =
  match
    Handle.open_slot heap ~slot
      ~validate:
        (Handle.expect_shape ~expected:"leftist-heap node (4 scanned words)"
           ~words:4)
  with
  | Error _ as e -> e
  | Ok h ->
      if Pmalloc.Heap.get_policy heap slot = Pmalloc.Heap.Backup then
        reconstruct heap ~slot;
      Ok h

let insert t p =
  span t "insert" (fun () ->
      let heap = Handle.heap t in
      let shadow = Handle.pure t (fun cur -> Pfds.Pheap.insert heap cur p) in
      Handle.commit ~entry:(op_insert, Pmem.Word.of_int p, Pmem.Word.of_int 0) t
        shadow)

let find_min t =
  span t "find_min" (fun () ->
      Pfds.Pheap.find_min (Handle.heap t) (Handle.current t))

let delete_min t =
  span t "delete_min" (fun () ->
      let heap = Handle.heap t in
      match Handle.pure t (fun cur -> Pfds.Pheap.delete_min heap cur) with
      | None -> None
      | Some (p, shadow) ->
          Handle.commit
            ~entry:(op_delete_min, Pmem.Word.of_int 0, Pmem.Word.of_int 0)
            t shadow;
          Some p)

(* Group commit: insert N priorities in one one-fence FASE. *)
let insert_many t ps =
  match ps with
  | [] -> ()
  | _ ->
      span_n t "insert_many" (List.length ps) (fun () ->
          let heap = Handle.heap t in
          let b = Batch.create heap in
          List.iter
            (fun p ->
              Batch.stage b ~slot:(Handle.slot t) (fun version ->
                  Pfds.Pheap.insert heap version p))
            ps;
          ignore (Batch.commit b : Batch.commit_point))

let is_empty t = Pfds.Pheap.is_empty (Handle.current t)
let cardinal t = Pfds.Pheap.cardinal (Handle.heap t) (Handle.current t)
let fold t fn acc = Pfds.Pheap.fold (Handle.heap t) (Handle.current t) fn acc

(* -- Unified interface ({!Intf.DURABLE}) ---------------------------------- *)

let add = insert
let add_many = insert_many
let size = cardinal
let size_in heap version = Pfds.Pheap.cardinal heap version

(* Unordered: the leftist heap has no cheap in-order traversal short of
   draining it. *)
let iter_elts t fn = fold t (fun p () -> fn p) ()
