(** Automated crash-consistency testing (paper Section 5.4).

    A static checker over the PM event trace.  Two invariants imply the
    correctness argument of Section 5.2:

    + every PM write outside a commit section targets memory allocated
      since the last completed commit (out-of-place discipline);
    + every written cacheline is flushed by a clwb before the next fence
      (so the commit fence really persists the whole shadow).

    Root-slot writes and commit-internal writes are governed by the commit
    protocol itself and exempt.  PMDK-style in-place transactions violate
    invariant 1 by design -- the tests use that as a negative control. *)

type violation =
  | In_place_write of { index : int; off : int }
  | Unflushed_write of { index : int; line : int }
  | Write_after_free of { index : int; off : int }

type report = {
  events : int;
  writes_checked : int;
  fences : int;
  violations : violation list;
}

val ok : report -> bool

(** [root_slots] is the first heap word -- everything below it is
    root-directory space, exempt from the out-of-place rule (defaults to
    {!Pmalloc.Heap.root_directory_words}, the size of the dual-copy
    record area). *)
val check : ?root_slots:int -> Pmem.Trace.t -> report
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
