(** MOD durable sequence: the RRB tree ({!Pfds.Rrb}) under Functional
    Shadowing — the paper's vector structure with its full interface
    (reference [44]), including failure-atomic O(log n) concatenation and
    slicing.  Append-heavy workloads should prefer {!Dvec}, whose tail
    buffer makes push_back cheaper; [Dseq] is the general sequence.
    Conforms to {!Intf.DURABLE} with [elt = Pmem.Word.t]. *)

type t = Handle.t
type elt = Pmem.Word.t

val structure : string
val open_or_create :
  ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
val handle : t -> Handle.t

(** {1 Composition interface} *)

val empty_version : Pmalloc.Heap.t -> Pmem.Word.t
val of_words_pure : Pmalloc.Heap.t -> Pmem.Word.t list -> Pmem.Word.t
val set_pure : Pmalloc.Heap.t -> Pmem.Word.t -> int -> Pmem.Word.t -> Pmem.Word.t

val concat_pure : Pmalloc.Heap.t -> Pmem.Word.t -> Pmem.Word.t -> Pmem.Word.t

val slice_pure :
  Pmalloc.Heap.t -> Pmem.Word.t -> pos:int -> len:int -> Pmem.Word.t

val get_in : Pmalloc.Heap.t -> Pmem.Word.t -> int -> Pmem.Word.t
val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int
val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t

(** {1 Basic interface} *)

val push_back : t -> Pmem.Word.t -> unit
val set : t -> int -> Pmem.Word.t -> unit

val append : t -> t -> unit
(** Append another durable sequence's current contents,
    failure-atomically. *)

val restrict : t -> pos:int -> len:int -> unit
(** Keep only [pos, pos+len), failure-atomically. *)

val push_back_many : t -> Pmem.Word.t list -> unit
val get : t -> int -> Pmem.Word.t
val size : t -> int
val is_empty : t -> bool
val iter : t -> (Pmem.Word.t -> unit) -> unit
val to_list : t -> Pmem.Word.t list

(** {1 Unified interface ({!Intf.DURABLE})} *)

val add : t -> elt -> unit
val add_many : t -> elt list -> unit
val iter_elts : t -> (elt -> unit) -> unit
