(** A handle binds a MOD datastructure to a persistent root slot.

    Through the Basic interface (Section 4.3.1) a handle behaves like a
    mutable datastructure with logically in-place failure-atomic updates;
    underneath, each operation is pure-update-then-CommitSingle.  The
    Composition interface (Section 4.3.2) works on the versions directly:
    [current] reads the installed version, pure updates return shadows,
    and [commit] installs them. *)

type t

val make : Pmalloc.Heap.t -> slot:int -> t
val heap : t -> Pmalloc.Heap.t
val slot : t -> int

val current : t -> Pmem.Word.t
(** The installed version (null if none): the durable root for a Full
    slot, the volatile log-covered version for a Backup slot (raises
    [Failure] there until the structure's [reconstruct] ran). *)

val is_initialized : t -> bool

val initialize : t -> Pmem.Word.t -> unit
(** Install an initial version into an empty slot, failure-atomically.
    [Invalid_argument] on Backup slots -- structures initialize before
    promoting. *)

val pure : t -> (Pmem.Word.t -> 'a) -> 'a
(** Run a pure update against {!current}.  On a Backup slot the update
    runs inside the backup bracket, so its shadows' clwbs are parked in
    the checkpoint backlog instead of issued. *)

val commit :
  ?intermediates:Pmem.Word.t list ->
  ?entry:int * Pmem.Word.t * Pmem.Word.t ->
  t ->
  Pmem.Word.t ->
  unit
(** Install a version.  Full slot: CommitSingle.  Backup slot: append
    the [(opcode, a0, a1)] log [entry] ({!Commit.backup_append}) when
    one is given and the log has room, otherwise {!Commit.checkpoint}.
    [entry] is ignored on Full slots. *)

val update_cas :
  ?reclaim:bool ->
  ?before_swing:(unit -> unit) ->
  ?after_swing:(unit -> unit) ->
  t ->
  build:(Pmem.Word.t -> (Pmem.Word.t * Pmem.Word.t list) option) ->
  int
(** Concurrent commit against this slot: {!Commit.commit_cas} on a Full
    slot (returns the attempt count); raises [Invalid_argument] on a
    Backup slot, whose commit order is its op-log append order and
    cannot be serialized by a lock-free root CAS.  Pass [reclaim:false]
    whenever other writers can race this slot (see the reclamation
    contract on {!Commit.commit_cas}). *)

(** {1 Validated open path}

    [make] trusts the slot; [open_slot] checks it: in-range, and either
    null (a valid empty state) or a pointer into allocated space.
    Structures pass [validate] to add a shape check of the root block
    against their own layout. *)

val open_slot :
  ?validate:(t -> (t, Error.t) result) ->
  Pmalloc.Heap.t ->
  slot:int ->
  (t, Error.t) result

val open_slot_exn :
  ?validate:(t -> (t, Error.t) result) -> Pmalloc.Heap.t -> slot:int -> t
(** {!open_slot}, raising {!Error.Error} on failure. *)

val expect_shape :
  expected:string -> ?words:int -> t -> (t, Error.t) result
(** Shape validator for a non-null root: the block must be [Scanned]
    and, when [words] is given, have exactly that initialized size.
    Returns [Codec_mismatch] describing what was found otherwise. *)
