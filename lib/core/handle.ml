(** A handle binds a MOD datastructure to a persistent root slot.

    Through the Basic interface a handle behaves like a mutable
    datastructure with logically in-place, failure-atomic updates
    (Section 4.3.1); underneath, each operation is
    pure-update-then-CommitSingle.  The Composition interface exposes the
    versions (Section 4.3.2): [current] reads the installed version,
    pure updates return shadows, and {!Commit} installs them. *)

type t = { heap : Pmalloc.Heap.t; slot : int }

let make heap ~slot = { heap; slot }
let heap t = t.heap
let slot t = t.slot
let current t = Pmalloc.Heap.root_get t.heap t.slot
let is_initialized t = not (Pmem.Word.is_null (current t))

(* Install an initial version into an empty slot, failure-atomically. *)
let initialize t version =
  if is_initialized t then invalid_arg "Handle.initialize: slot already bound";
  Commit.single t.heap ~slot:t.slot version

let commit ?intermediates t version =
  Commit.single ?intermediates t.heap ~slot:t.slot version

(* -- Validated open path ------------------------------------------------- *)

let describe_root t =
  let alloc = Pmalloc.Heap.allocator t.heap in
  let body = Pmem.Word.to_ptr (current t) in
  Printf.sprintf "%s block, %d words"
    (match Pmalloc.Allocator.kind_of alloc body with
    | Pmalloc.Block.Scanned -> "scanned"
    | Pmalloc.Block.Raw -> "raw")
    (Pmalloc.Allocator.used_of alloc body)

(* Best-effort shape check for a non-null root known to point at an
   allocated block: every MOD version root is a Scanned block, and the
   descriptor-rooted structures have a fixed descriptor word count. *)
let expect_shape ~expected ?words t =
  let alloc = Pmalloc.Heap.allocator t.heap in
  let body = Pmem.Word.to_ptr (current t) in
  let kind_ok = Pmalloc.Allocator.kind_of alloc body = Pmalloc.Block.Scanned in
  let words_ok =
    match words with
    | None -> true
    | Some n -> Pmalloc.Allocator.used_of alloc body = n
  in
  if kind_ok && words_ok then Ok t
  else
    Error
      (Error.Codec_mismatch { slot = t.slot; expected; found = describe_root t })

let open_slot ?validate heap ~slot =
  let limit = Pmalloc.Heap.root_slots in
  if slot < 0 || slot >= limit then
    Error (Error.Slot_out_of_range { slot; limit })
  else
    let t = { heap; slot } in
    match current t with
    | exception Pmalloc.Heap.Torn_root { slot } ->
        Error
          (Error.Torn_root
             { slot; detail = "both root-record copies failed validation" })
    | exception Pmem.Region.Media_fault { off } ->
        Error (Error.Media_error { off; detail = "unrecoverable read fault" })
    | w ->
    if Pmem.Word.is_null w then Ok t
    else if not (Pmem.Word.is_ptr w) then
      Error
        (Error.Corrupt_root
           { slot; detail = "root slot holds a scalar, not a version pointer" })
    else if
      not
        (Pmalloc.Allocator.is_allocated (Pmalloc.Heap.allocator heap)
           (Pmem.Word.to_ptr w))
    then
      Error
        (Error.Corrupt_root
           {
             slot;
             detail =
               Printf.sprintf "root points at unallocated offset %d"
                 (Pmem.Word.to_ptr w);
           })
    else match validate with None -> Ok t | Some f -> f t

let open_slot_exn ?validate heap ~slot =
  Error.get_ok (open_slot ?validate heap ~slot)
