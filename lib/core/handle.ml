(** A handle binds a MOD datastructure to a persistent root slot.

    Through the Basic interface a handle behaves like a mutable
    datastructure with logically in-place, failure-atomic updates
    (Section 4.3.1); underneath, each operation is
    pure-update-then-CommitSingle.  The Composition interface exposes the
    versions (Section 4.3.2): [current] reads the installed version,
    pure updates return shadows, and {!Commit} installs them. *)

type t = { heap : Pmalloc.Heap.t; slot : int }

let make heap ~slot = { heap; slot }
let heap t = t.heap
let slot t = t.slot

(* Policy-aware: the durable root for Full slots, the volatile
   (log-covered) current version for Backup slots. *)
let current t = Commit.current_of t.heap ~slot:t.slot
let is_initialized t = not (Pmem.Word.is_null (current t))

(* Install an initial version into an empty slot, failure-atomically.
   Only meaningful while the slot commits as Full (structures initialize
   before promoting to Backup). *)
let initialize t version =
  if is_initialized t then invalid_arg "Handle.initialize: slot already bound";
  if Pmalloc.Heap.get_policy t.heap t.slot = Pmalloc.Heap.Backup then
    invalid_arg "Handle.initialize: slot already commits as Backup";
  Commit.single t.heap ~slot:t.slot version

(* Run a pure update against the current version.  Under Backup the
   bracket suppresses the shadows' clwbs into the checkpoint backlog --
   that is the whole point of the policy. *)
let pure t f =
  match Pmalloc.Heap.get_policy t.heap t.slot with
  | Pmalloc.Heap.Full -> f (current t)
  | Pmalloc.Heap.Backup ->
      Pmalloc.Heap.enter_backup_update t.heap;
      Fun.protect
        ~finally:(fun () -> Pmalloc.Heap.exit_backup_update t.heap)
        (fun () -> f (current t))

(* [entry] describes the operation as a Backup log record; [None] (blob
   arguments, multi-structure ops) forces a checkpoint on Backup slots.
   Full slots ignore it and CommitSingle as always. *)
let commit ?intermediates ?entry t version =
  match Pmalloc.Heap.get_policy t.heap t.slot with
  | Pmalloc.Heap.Full -> Commit.single ?intermediates t.heap ~slot:t.slot version
  | Pmalloc.Heap.Backup -> (
      let st =
        match Pmalloc.Heap.backup_state t.heap t.slot with
        | Some st -> st
        | None -> failwith "Handle.commit: Backup slot not reconstructed"
      in
      match entry with
      | Some (opcode, a0, a1)
        when st.Pmalloc.Heap.b_count < Pmalloc.Backup.log_capacity ->
          Commit.backup_append ?intermediates t.heap st ~opcode ~a0 ~a1
            ~latest:version
      | _ -> Commit.checkpoint ?intermediates t.heap ~slot:t.slot version)

(* The concurrent commit path: rebuild-and-CAS until the root swing
   wins (see {!Commit.commit_cas}).  Full-policy only -- a Backup
   slot's commit order is defined by its op-log append order, which a
   lock-free root CAS cannot serialize, so the combination is rejected
   rather than silently downgraded. *)
let update_cas ?reclaim ?before_swing ?after_swing t ~build =
  match Pmalloc.Heap.get_policy t.heap t.slot with
  | Pmalloc.Heap.Full ->
      Commit.commit_cas ?reclaim ?before_swing ?after_swing t.heap
        ~slot:t.slot ~build
  | Pmalloc.Heap.Backup ->
      invalid_arg
        "Handle.update_cas: Backup policy serializes commits through its op \
         log; the lock-free CAS root swing is Full-policy only"

(* -- Validated open path ------------------------------------------------- *)

(* Validators below look at the durable root directly (not the
   policy-aware [current]): on a Backup slot they run before the
   volatile state exists. *)
let durable_root t = Pmalloc.Heap.root_get t.heap t.slot

let describe_root t =
  let alloc = Pmalloc.Heap.allocator t.heap in
  let body = Pmem.Word.to_ptr (durable_root t) in
  Printf.sprintf "%s block, %d words"
    (match Pmalloc.Allocator.kind_of alloc body with
    | Pmalloc.Block.Scanned -> "scanned"
    | Pmalloc.Block.Raw -> "raw")
    (Pmalloc.Allocator.used_of alloc body)

(* Best-effort shape check for a non-null root known to point at an
   allocated block: every MOD version root is a Scanned block, and the
   descriptor-rooted structures have a fixed descriptor word count.
   On a Backup slot the durable root is the policy descriptor, not a
   structure version, so the check validates the descriptor shape
   instead; the structure's own version is volatile until [reconstruct]
   replays the log.  (An interrupted promotion leaves a Full-shaped
   root under the Backup policy word -- that still gets the structure
   check.) *)
let expect_shape ~expected ?words t =
  let alloc = Pmalloc.Heap.allocator t.heap in
  let body = Pmem.Word.to_ptr (durable_root t) in
  let is_descriptor =
    Pmalloc.Heap.get_policy t.heap t.slot = Pmalloc.Heap.Backup
    && Pmalloc.Backup.is_magic
         (Pmalloc.Heap.load t.heap (body + Pmalloc.Backup.d_magic))
  in
  let kind_ok = Pmalloc.Allocator.kind_of alloc body = Pmalloc.Block.Scanned in
  let words_ok =
    match (is_descriptor, words) with
    | true, _ -> Pmalloc.Allocator.used_of alloc body = Pmalloc.Backup.desc_words
    | false, None -> true
    | false, Some n -> Pmalloc.Allocator.used_of alloc body = n
  in
  if kind_ok && words_ok then Ok t
  else
    Error
      (Error.Codec_mismatch { slot = t.slot; expected; found = describe_root t })

let open_slot ?validate heap ~slot =
  let limit = Pmalloc.Heap.root_slots in
  if slot < 0 || slot >= limit then
    Error (Error.Slot_out_of_range { slot; limit })
  else
    let t = { heap; slot } in
    match durable_root t with
    | exception Pmalloc.Heap.Torn_root { slot } ->
        Error
          (Error.Torn_root
             { slot; detail = "both root-record copies failed validation" })
    | exception Pmem.Region.Media_fault { off } ->
        Error (Error.Media_error { off; detail = "unrecoverable read fault" })
    | w ->
    if Pmem.Word.is_null w then Ok t
    else if not (Pmem.Word.is_ptr w) then
      Error
        (Error.Corrupt_root
           { slot; detail = "root slot holds a scalar, not a version pointer" })
    else if
      not
        (Pmalloc.Allocator.is_allocated (Pmalloc.Heap.allocator heap)
           (Pmem.Word.to_ptr w))
    then
      Error
        (Error.Corrupt_root
           {
             slot;
             detail =
               Printf.sprintf "root points at unallocated offset %d"
                 (Pmem.Word.to_ptr w);
           })
    else match validate with None -> Ok t | Some f -> f t

let open_slot_exn ?validate heap ~slot =
  Error.get_ok (open_slot ?validate heap ~slot)
