(** Failure-atomic section instrumentation.

    MOD's headline property is "one ordering point per FASE in the common
    case" (Section 4).  [run] executes a section and reports the fences,
    flushes and phase-attributed simulated time it actually spent, so
    tests and Figure 10 can assert the claim rather than assume it. *)

type profile = {
  fences : int;
  flushes : int;
  commits : int;
  ns : float;
  ns_flush : float;
  ns_log : float;
}

val run : Pmalloc.Heap.t -> (unit -> 'a) -> 'a * profile
val pp_profile : Format.formatter -> profile -> unit
