(** MOD durable vector: {!Pfds.Pvec} under Functional Shadowing.

    The version word is the vector descriptor.  [swap] is the paper's
    Figure 7b multi-update FASE: two pure updates chained through an
    intermediate shadow, one CommitSingle.  Conforms to {!Intf.DURABLE}
    with [elt = Pmem.Word.t] ([add] = [push_back]). *)

type t = Handle.t
type elt = Pmem.Word.t

val structure : string
val open_or_create :
  ?persist:Pmalloc.Heap.policy -> Pmalloc.Heap.t -> slot:int -> t
val open_result : Pmalloc.Heap.t -> slot:int -> (t, Error.t) result
val reconstruct : Pmalloc.Heap.t -> slot:int -> unit
val handle : t -> Handle.t

(** {1 Composition interface} *)

val empty_version : Pmalloc.Heap.t -> Pmem.Word.t
val push_back_pure : Pmalloc.Heap.t -> Pmem.Word.t -> Pmem.Word.t -> Pmem.Word.t
val set_pure : Pmalloc.Heap.t -> Pmem.Word.t -> int -> Pmem.Word.t -> Pmem.Word.t
val pop_back_pure : Pmalloc.Heap.t -> Pmem.Word.t -> Pmem.Word.t * Pmem.Word.t
val get_in : Pmalloc.Heap.t -> Pmem.Word.t -> int -> Pmem.Word.t
val size_in : Pmalloc.Heap.t -> Pmem.Word.t -> int
val add_pure : Pmalloc.Heap.t -> Pmem.Word.t -> elt -> Pmem.Word.t

(** {1 Basic interface} *)

val push_back : t -> Pmem.Word.t -> unit
val set : t -> int -> Pmem.Word.t -> unit
val pop_back : t -> Pmem.Word.t

val swap : t -> int -> int -> unit
(** Swap two elements failure-atomically: Figure 7b (one CommitSingle,
    intermediate shadow reclaimed). *)

val push_back_many : t -> Pmem.Word.t list -> unit
(** N pushes under one ordering point (group commit). *)

val get : t -> int -> Pmem.Word.t
val size : t -> int
val is_empty : t -> bool
val iter : t -> (Pmem.Word.t -> unit) -> unit
val to_list : t -> Pmem.Word.t list

(** {1 Unified interface ({!Intf.DURABLE})} *)

val add : t -> elt -> unit
val add_many : t -> elt list -> unit
val iter_elts : t -> (elt -> unit) -> unit
