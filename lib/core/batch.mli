(** Group-commit batching: accumulate N pure updates across one or more
    MOD datastructures, retire them under a single FASE whose commit
    point (CommitSingle / CommitSiblings / CommitUnrelated, Figure 8) is
    auto-selected from the shape of the staged work.  Fence cost per
    logical update drops from 1 to 1/N in the common case. *)

type t

type commit_point = Empty | Single | Siblings | Unrelated

val commit_point_name : commit_point -> string

val create : ?tx:Pmstm.Tx.t -> Pmalloc.Heap.t -> t
(** A fresh, empty batch.  [tx] is used if the commit point turns out to
    be [Unrelated]; absent, a V1_5 transaction is created lazily (at its
    usual one-off WAL-setup cost) on the first unrelated commit. *)

val heap : t -> Pmalloc.Heap.t

val staged_ops : t -> int
(** Logical updates staged since the last commit (no-op stages excluded). *)

val is_empty : t -> bool
val slots : t -> int list

val pending : t -> slot:int -> Pmem.Word.t
(** Read-your-writes: the staged shadow for [slot] if any, else the
    installed durable version. *)

val pending_field : t -> slot:int -> field:int -> Pmem.Word.t
(** Same, for a sibling field of the parent object in [slot].  Raises
    [Invalid_argument] if the slot holds no parent object. *)

val stage : t -> slot:int -> (Pmem.Word.t -> Pmem.Word.t) -> unit
(** [stage b ~slot f] applies the pure update [f] to the pending version
    of [slot] and stages the resulting shadow.  [f] returning its input
    unchanged stages nothing (e.g. removing an absent key).  Raises
    [Invalid_argument] if [slot] already carries staged sibling fields. *)

val stage_field : t -> slot:int -> field:int -> (Pmem.Word.t -> Pmem.Word.t) -> unit
(** Stage a pure update against one sibling field of the parent object
    in [slot]; the fresh parent is built once at commit.  Raises
    [Invalid_argument] if [slot] already carries a whole-version shadow. *)

val commit_point : t -> commit_point
(** The commit point {!commit} would select for the current contents. *)

val commit : t -> commit_point
(** Retire everything staged under one FASE and reset the batch for
    reuse.  [Empty] batches touch no PM (zero fences); [Single] and
    [Siblings] cost exactly one fence; [Unrelated] costs one shadow
    fence plus the embedded PM-STM root-swing transaction.  Superseded
    in-batch shadows are reclaimed, as in any multi-update FASE. *)

val discard : t -> unit
(** Drop all staged shadows without committing; durable state is
    untouched because nothing was ever installed. *)
