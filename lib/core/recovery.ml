(** Crash recovery for MOD heaps (Sections 5.2-5.3).

    After a power failure the durable image may contain, per root slot,
    either the pre-FASE or the post-FASE version -- never a torn one --
    plus leaked shadow allocations from any interrupted FASE.  Recovery:

    1. rolls back an interrupted PM-STM transaction, if the heap hosts
       one (CommitUnrelated and the PMDK baseline use the undo log);
    2. runs the reachability analysis from the root directory, recomputing
       reference counts and reclaiming every leaked block
       ({!Pmalloc.Recovery_gc}).

    [crash_and_recover] drives the whole cycle against the simulated
    hardware and is what the crash-injection tests exercise. *)

type report = {
  stm_rolled_back : bool;
  gc : Pmalloc.Recovery_gc.report;
  crash_seed : int option;
}

(* Map the raw fault exceptions of the lower layers to their typed
   forms, so callers of the typed paths see [Error.t] and nothing else. *)
let typed_of_exn = function
  | Pmalloc.Heap.Torn_root { slot } ->
      Some
        (Error.Torn_root
           { slot; detail = "both root-record copies failed validation" })
  | Pmem.Region.Media_fault { off } ->
      Some (Error.Media_error { off; detail = "unrecoverable read fault" })
  | Pmem.Backing.Bad_image { path; detail } ->
      Some (Error.Bad_image { path; detail })
  | _ -> None

let recover_exn ?stm ?(norec = false) heap =
  match
    let stm_rolled_back =
      match stm with Some tx -> Pmstm.Tx.recover tx | None -> false
    in
    (* a committed-but-unretired NOrec redo log replays forward (the
       mirror image of the undo rollback above) before reachability *)
    let norec_replayed = if norec then Pmstm.Norec.recover heap else false in
    let gc = Pmalloc.Recovery_gc.recover heap in
    { stm_rolled_back = stm_rolled_back || norec_replayed; gc;
      crash_seed = None }
  with
  | report -> report
  | exception e -> (
      match typed_of_exn e with
      | Some te -> raise (Error.Error te)
      | None -> raise e)

(* Recovery failures are heap-wide, not slot-scoped: surface whatever the
   reachability analysis or the undo-log rollback tripped over as a
   [Corrupt_root] with [slot = -1]; torn roots and media faults keep
   their own constructors. *)
let wrap_corruption f =
  match f () with
  | r -> Ok r
  | exception Error.Error e -> Error e
  | exception (Invalid_argument detail | Failure detail) ->
      Error (Error.Corrupt_root { slot = -1; detail })
  | exception e when typed_of_exn e <> None ->
      Error (Option.get (typed_of_exn e))

let recover ?stm ?norec heap =
  wrap_corruption (fun () -> recover_exn ?stm ?norec heap)

let crash_and_recover_exn ?mode ?seed ?torn ?stm ?norec heap =
  Pmalloc.Heap.crash ?mode ?seed ?torn heap;
  let crash_seed = Pmem.Region.last_crash_seed (Pmalloc.Heap.region heap) in
  { (recover_exn ?stm ?norec heap) with crash_seed }

let crash_and_recover ?mode ?seed ?torn ?stm ?norec heap =
  wrap_corruption (fun () ->
      crash_and_recover_exn ?mode ?seed ?torn ?stm ?norec heap)

(* -- file-backed reopen -------------------------------------------------- *)

type open_report = {
  heap : Pmalloc.Heap.t;
  journal : [ `None | `Replayed of int | `Discarded ];
  recovery : report;
  reopen_ns : float;  (** wall-clock open + journal resolution + GC *)
}

(* The full externally-durable recovery cycle: reopen the image file
   (journal replay/discard + checksum verification), then rebuild the
   volatile allocator with the reachability analysis.  Every way an
   unusable image can fail -- missing/truncated/corrupt file, torn roots,
   unscannable block graph -- comes back as a typed [Error.t]; no
   exception escapes for any image. *)
let open_file ?trace ?seed ~path () =
  wrap_corruption (fun () ->
      let t0 = Unix.gettimeofday () in
      let heap, journal = Pmalloc.Heap.open_file ?trace ?seed ~path () in
      match
        Pmalloc.Heap.span heap ~structure:"heap" ~op:"reopen" (fun () ->
            recover_exn heap)
      with
      | recovery ->
          {
            heap;
            journal;
            recovery;
            reopen_ns = (Unix.gettimeofday () -. t0) *. 1e9;
          }
      | exception e ->
          (* do not leak descriptors when the image opens but its content
             fails recovery *)
          Pmalloc.Heap.close heap;
          raise e)

let pp_report ppf r =
  Format.fprintf ppf "%a%s%s" Pmalloc.Recovery_gc.pp_report r.gc
    (if r.stm_rolled_back then " (rolled back an interrupted transaction)"
     else "")
    (match r.crash_seed with
    | Some s -> Printf.sprintf " (crash seed %d)" s
    | None -> "")
