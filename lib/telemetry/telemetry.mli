(** Per-FASE telemetry: spans, per-(structure x op) latency histograms,
    and fence-stall attribution over the simulated-PM clock.

    A {e collector} watches exactly one heap's {!Pmem.Stats} block and
    is {e instance-scoped}: it is carried by the heap it watches
    ([Pmalloc.Heap.attach_telemetry] / [Pmalloc.Heap.telemetry]), so any
    number of heaps — e.g. the per-domain shards of the serving layer —
    can be metered independently in one process.  The durable-structure
    entry points, [Batch.commit] and the outermost [Tx.run] wrap
    themselves in {!span_on} with their heap's collector; the outermost
    span snapshots the stats around the operation and aggregates the
    delta under its (structure, op) key.  Nested spans (an [insert_many]
    driving a [Batch.commit] driving a [Tx.run]) are suppressed by a
    depth guard, so every simulated nanosecond is attributed at most
    once and the per-op fence-stall sum plus the unattributed remainder
    provably equals that heap's [Pmem.Stats] flush-stall counter.

    With no collector attached (or a foreign heap) a span is a couple of
    word reads on the fast path.

    The previous process-wide-singleton API ({!install} / {!uninstall} /
    {!span}) survives as a deprecated shim over one global fallback
    collector consulted only when the heap carries none; it will be
    removed after one release. *)

(** Log-bucketed latency histograms (re-exported; the library's root
    module is the only one visible to dependents). *)
module Histogram : module type of Histogram

module Sink : sig
  type t =
    | Null  (** track nesting only; record nothing *)
    | Memory  (** aggregate per-(structure, op) in the collector *)
    | Jsonl of out_channel
        (** aggregate, and emit one JSON object per outermost span *)
end

(** Allocator occupancy sampled at span boundaries.  [alloc_words_total]
    is monotone (total words ever handed out), so deltas across a span
    measure its shadow allocations. *)
type gauges = {
  g_live_words : int;
  g_free_words : int;
  g_deferred_words : int;
  g_high_water_words : int;
  g_alloc_words_total : int;
}

type t

(** [create ?sink ?gauges stats] makes a fresh collector watching
    [stats].  Nothing is registered anywhere: the caller owns the
    collector and threads it (normally by attaching it to the heap with
    [Pmalloc.Heap.set_telemetry]).  [gauges] samples allocator occupancy
    at span boundaries; omit it and shadow-alloc attribution reads as
    zero.  Default sink: [Memory]. *)
val create : ?sink:Sink.t -> ?gauges:(unit -> gauges) -> Pmem.Stats.t -> t

(** {1 Deprecated process-wide shim}

    One release of compatibility for the pre-sharding singleton API.
    The global collector is consulted by {!span_on} only when the heap
    carries no collector of its own. *)

(** Replace (or clear) the process-wide fallback collector.
    @deprecated attach collectors to their heap instead. *)
val set_global : t option -> unit

(** [install ?sink ?gauges stats] = [create] + [set_global (Some t)].
    @deprecated use {!create} / [Pmalloc.Heap.attach_telemetry]. *)
val install : ?sink:Sink.t -> ?gauges:(unit -> gauges) -> Pmem.Stats.t -> t

(** @deprecated [set_global None]. *)
val uninstall : unit -> unit

(** The process-wide fallback collector, if any.
    @deprecated instance-scoped collectors live on their heap. *)
val current : unit -> t option

(** Physical identity: does [t] watch this stats block? *)
val watches : t -> Pmem.Stats.t -> bool

(** Drop all aggregates and re-base totals on the stats block's current
    contents. *)
val reset : t -> unit

(** Hook for code that resets a stats block underneath the collector
    (e.g. [Backend.start_measuring]): if the current collector watches
    [stats], it is {!reset} so totals stay consistent. *)
val on_stats_reset : Pmem.Stats.t -> unit

(** [span_on collector stats ~structure ~op ?ops f] runs [f],
    attributing its stats delta to [(structure, op)] on [collector] if
    this is the outermost span.  [collector] is the one the heap
    carries ([Pmalloc.Heap.telemetry]); with [None], the deprecated
    process-wide collector is consulted and records iff it watches
    [stats].  [ops] is the number of logical operations the span
    retires (batch size; default 1). *)
val span_on :
  t option ->
  Pmem.Stats.t ->
  structure:string ->
  op:string ->
  ?ops:int ->
  (unit -> 'a) ->
  'a

(** [span stats ...] = [span_on None stats ...]: records only through
    the process-wide fallback collector.
    @deprecated thread the heap's collector through {!span_on} (or use
    [Pmalloc.Heap.span]). *)
val span :
  Pmem.Stats.t -> structure:string -> op:string -> ?ops:int -> (unit -> 'a) -> 'a

(** {1 Extraction} *)

type row = {
  r_structure : string;
  r_op : string;
  r_spans : int;  (** outermost spans recorded *)
  r_ops : int;  (** logical ops retired (>= r_spans for batched entry points) *)
  r_lat : Histogram.t;  (** span latency, sim-ns *)
  r_span_ns : float;
  r_fence_stall_ns : float;
  r_fences : int;
  r_flushed_lines : int;
  r_shadow_alloc_words : int;
  r_l1_hits : int;
  r_l1_misses : int;
}

type report = {
  rows : row list;  (** sorted by (structure, op) *)
  total_ns : float;
  total_fence_stall_ns : float;
      (** global [Pmem.Stats] flush-stall delta since install/reset *)
  attributed_fence_stall_ns : float;  (** sum over [rows] *)
  unattributed_fence_stall_ns : float;
      (** [total - attributed]: stalls outside any span *)
  total_fences : int;
  cache_hits : int;
  cache_misses : int;
  cache_hit_rate : float;
  last_gauges : gauges option;  (** sampled at the last span boundary *)
}

val report : t -> report

val pp_report : Format.formatter -> report -> unit

module Export : sig
  (** Self-describing JSON document ([modpm-telemetry-v1]); parses with
      [Workloads.Report.Json]. *)
  val to_json : report -> string

  (** Prometheus text exposition format (cumulative histogram buckets,
      counters, gauges). *)
  val to_prometheus : report -> string
end
