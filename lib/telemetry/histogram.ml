(* Power-of-two log-bucketed histogram.  64 buckets cover every float a
   simulated-nanosecond clock can produce; index computation is a shift
   loop on the integer part, so [add] costs a handful of instructions. *)

let nbuckets = 64

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
  mutable min_v : float; (* meaningful only when count > 0 *)
}

let create () =
  { counts = Array.make nbuckets 0; count = 0; sum = 0.0; max_v = 0.0; min_v = 0.0 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.max_v <- 0.0;
  t.min_v <- 0.0

(* Smallest [i] with [v <= 2^i] (0 for v <= 1). *)
let bucket_of v =
  if v <= 1.0 then 0
  else begin
    let i = ref 0 and bound = ref 1.0 in
    while !bound < v && !i < nbuckets - 1 do
      incr i;
      bound := !bound *. 2.0
    done;
    !i
  end

let upper_bound i = if i = 0 then 1.0 else ldexp 1.0 i
let lower_bound i = if i = 0 then 0.0 else ldexp 1.0 (i - 1)

let add t ns =
  let ns = if ns < 0.0 then 0.0 else ns in
  let i = bucket_of ns in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sum <- t.sum +. ns;
  if t.count = 0 then begin
    t.max_v <- ns;
    t.min_v <- ns
  end
  else begin
    if ns > t.max_v then t.max_v <- ns;
    if ns < t.min_v then t.min_v <- ns
  end;
  t.count <- t.count + 1

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let max_value t = t.max_v
let min_value t = t.min_v

let percentile t q =
  if t.count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target = q *. float_of_int t.count in
    let target = if target < 1.0 then 1.0 else target in
    let cum = ref 0 and result = ref t.max_v and found = ref false in
    let i = ref 0 in
    while (not !found) && !i < nbuckets do
      let c = t.counts.(!i) in
      if c > 0 then begin
        let prev = float_of_int !cum in
        cum := !cum + c;
        if float_of_int !cum >= target then begin
          (* interpolate within the winning octave *)
          let lo = lower_bound !i and hi = upper_bound !i in
          let frac = (target -. prev) /. float_of_int c in
          result := lo +. (frac *. (hi -. lo));
          found := true
        end
      end;
      incr i
    done;
    let v = !result in
    let v = if v > t.max_v then t.max_v else v in
    if v < t.min_v then t.min_v else v
  end

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (upper_bound i, t.counts.(i)) :: !acc
  done;
  !acc

let merge ~into src =
  if src.count > 0 then begin
    for i = 0 to nbuckets - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    if into.count = 0 then begin
      into.max_v <- src.max_v;
      into.min_v <- src.min_v
    end
    else begin
      if src.max_v > into.max_v then into.max_v <- src.max_v;
      if src.min_v < into.min_v then into.min_v <- src.min_v
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum
  end

let pp ppf t =
  Format.fprintf ppf "@[<h>n=%d p50=%.0f p90=%.0f p99=%.0f max=%.0f@]" t.count
    (percentile t 0.50) (percentile t 0.90) (percentile t 0.99) t.max_v
