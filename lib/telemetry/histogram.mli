(** Log-bucketed latency histogram over simulated nanoseconds.

    Buckets are powers of two: bucket [i] covers [(2^(i-1), 2^i]] sim-ns
    (bucket 0 covers [[0, 1]]).  Recording is O(1), percentiles are read
    back with linear interpolation inside the winning bucket, so p50/p99
    are accurate to within one octave -- exactly the resolution needed to
    tell a 353 ns fence stall from a microsecond-class one. *)

type t

val create : unit -> t
val clear : t -> unit

(** [add t ns] records one observation of [ns] simulated nanoseconds.
    Negative values clamp to zero. *)
val add : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float

(** Largest / smallest exact values recorded; [0.] when empty. *)
val max_value : t -> float

val min_value : t -> float

(** [percentile t q] for [q] in [0, 1]; interpolated within the bucket,
    clamped to [[min_value, max_value]].  [0.] when empty. *)
val percentile : t -> float -> float

(** Non-empty buckets as [(inclusive_upper_bound_ns, count)], ascending. *)
val buckets : t -> (float * int) list

(** [merge ~into src] adds every observation of [src] into [into]. *)
val merge : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
