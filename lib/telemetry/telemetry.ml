module Histogram = Histogram

module Sink = struct
  type t = Null | Memory | Jsonl of out_channel
end

type gauges = {
  g_live_words : int;
  g_free_words : int;
  g_deferred_words : int;
  g_high_water_words : int;
  g_alloc_words_total : int;
}

type agg = {
  mutable a_spans : int;
  mutable a_ops : int;
  a_lat : Histogram.t;
  mutable a_span_ns : float;
  mutable a_fence_stall_ns : float;
  mutable a_fences : int;
  mutable a_flushed_lines : int;
  mutable a_shadow_alloc_words : int;
  mutable a_l1_hits : int;
  mutable a_l1_misses : int;
}

type t = {
  stats : Pmem.Stats.t;
  sink : Sink.t;
  gauges_fn : (unit -> gauges) option;
  mutable depth : int;
  mutable base : Pmem.Stats.snapshot;
  table : (string * string, agg) Hashtbl.t;
  mutable last_gauges : gauges option;
}

(* Deprecated process-wide fallback.  New code carries the collector on
   the heap ([Pmalloc.Heap.attach_telemetry]) and spans through
   [span_on]; this ref only serves callers of the legacy [install] /
   [span] entry points until they migrate. *)
let global_collector : t option ref = ref None

let create ?(sink = Sink.Memory) ?gauges stats =
  {
    stats;
    sink;
    gauges_fn = gauges;
    depth = 0;
    base = Pmem.Stats.snapshot stats;
    table = Hashtbl.create 32;
    last_gauges = None;
  }

let set_global c = global_collector := c

let install ?sink ?gauges stats =
  let t = create ?sink ?gauges stats in
  set_global (Some t);
  t

let uninstall () = set_global None
let current () = !global_collector
let watches t stats = t.stats == stats

let reset t =
  Hashtbl.reset t.table;
  t.base <- Pmem.Stats.snapshot t.stats;
  t.last_gauges <- None

let on_stats_reset stats =
  match !global_collector with
  | Some t when watches t stats -> reset t
  | _ -> ()

let find_agg t key =
  match Hashtbl.find_opt t.table key with
  | Some a -> a
  | None ->
      let a =
        {
          a_spans = 0;
          a_ops = 0;
          a_lat = Histogram.create ();
          a_span_ns = 0.0;
          a_fence_stall_ns = 0.0;
          a_fences = 0;
          a_flushed_lines = 0;
          a_shadow_alloc_words = 0;
          a_l1_hits = 0;
          a_l1_misses = 0;
        }
      in
      Hashtbl.replace t.table key a;
      a

(* Minimal JSON string escaping for span labels and sink lines. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let record t ~structure ~op ~ops ~before ~alloc_before =
  let after = Pmem.Stats.snapshot t.stats in
  let d = Pmem.Stats.diff ~before ~after in
  let shadow_words =
    match t.gauges_fn with
    | None -> 0
    | Some g ->
        let now = g () in
        t.last_gauges <- Some now;
        now.g_alloc_words_total - alloc_before
  in
  (match t.sink with
  | Sink.Null -> ()
  | Sink.Memory | Sink.Jsonl _ ->
      let a = find_agg t (structure, op) in
      a.a_spans <- a.a_spans + 1;
      a.a_ops <- a.a_ops + ops;
      Histogram.add a.a_lat d.Pmem.Stats.s_now_ns;
      a.a_span_ns <- a.a_span_ns +. d.Pmem.Stats.s_now_ns;
      a.a_fence_stall_ns <- a.a_fence_stall_ns +. d.Pmem.Stats.s_ns_flush;
      a.a_fences <- a.a_fences + d.Pmem.Stats.s_fences;
      a.a_flushed_lines <- a.a_flushed_lines + d.Pmem.Stats.s_clwbs;
      a.a_shadow_alloc_words <- a.a_shadow_alloc_words + shadow_words;
      a.a_l1_hits <- a.a_l1_hits + d.Pmem.Stats.s_l1_hits;
      a.a_l1_misses <- a.a_l1_misses + d.Pmem.Stats.s_l1_misses);
  match t.sink with
  | Sink.Jsonl oc ->
      Printf.fprintf oc
        "{\"structure\":\"%s\",\"op\":\"%s\",\"ops\":%d,\"ns\":%.1f,\"fence_stall_ns\":%.1f,\"fences\":%d,\"flushed_lines\":%d,\"shadow_alloc_bytes\":%d}\n"
        (json_escape structure) (json_escape op) ops d.Pmem.Stats.s_now_ns
        d.Pmem.Stats.s_ns_flush d.Pmem.Stats.s_fences d.Pmem.Stats.s_clwbs
        (shadow_words * 8)
  | _ -> ()

(* Run [f] as a span of collector [t] (already known to watch the
   right stats block). *)
let span_run t ~structure ~op ~ops f =
  if t.depth > 0 then begin
    (* nested span: the outermost one owns the whole delta *)
    t.depth <- t.depth + 1;
    Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1) f
  end
  else
    match t.sink with
    | Sink.Null ->
        (* Null sink: track nesting only — no snapshots, no aggregation —
           so disabled-but-installed telemetry stays within noise. *)
        t.depth <- 1;
        Fun.protect ~finally:(fun () -> t.depth <- 0) f
    | Sink.Memory | Sink.Jsonl _ ->
        t.depth <- 1;
        let before = Pmem.Stats.snapshot t.stats in
        let alloc_before =
          match t.gauges_fn with
          | None -> 0
          | Some g -> (g ()).g_alloc_words_total
        in
        Fun.protect
          ~finally:(fun () ->
            t.depth <- 0;
            record t ~structure ~op ~ops ~before ~alloc_before)
          f

let span_on collector stats ~structure ~op ?(ops = 1) f =
  match collector with
  | Some t -> span_run t ~structure ~op ~ops f
  | None -> (
      (* legacy fallback: a process-wide collector installed with
         [install] still records, but only for the heap it watches *)
      match !global_collector with
      | Some t when t.stats == stats -> span_run t ~structure ~op ~ops f
      | _ -> f ())

let span stats ~structure ~op ?ops f = span_on None stats ~structure ~op ?ops f

type row = {
  r_structure : string;
  r_op : string;
  r_spans : int;
  r_ops : int;
  r_lat : Histogram.t;
  r_span_ns : float;
  r_fence_stall_ns : float;
  r_fences : int;
  r_flushed_lines : int;
  r_shadow_alloc_words : int;
  r_l1_hits : int;
  r_l1_misses : int;
}

type report = {
  rows : row list;
  total_ns : float;
  total_fence_stall_ns : float;
  attributed_fence_stall_ns : float;
  unattributed_fence_stall_ns : float;
  total_fences : int;
  cache_hits : int;
  cache_misses : int;
  cache_hit_rate : float;
  last_gauges : gauges option;
}

let report t =
  let after = Pmem.Stats.snapshot t.stats in
  let d = Pmem.Stats.diff ~before:t.base ~after in
  let rows =
    Hashtbl.fold
      (fun (structure, op) a acc ->
        {
          r_structure = structure;
          r_op = op;
          r_spans = a.a_spans;
          r_ops = a.a_ops;
          r_lat = a.a_lat;
          r_span_ns = a.a_span_ns;
          r_fence_stall_ns = a.a_fence_stall_ns;
          r_fences = a.a_fences;
          r_flushed_lines = a.a_flushed_lines;
          r_shadow_alloc_words = a.a_shadow_alloc_words;
          r_l1_hits = a.a_l1_hits;
          r_l1_misses = a.a_l1_misses;
        }
        :: acc)
      t.table []
    |> List.sort (fun a b ->
           match compare a.r_structure b.r_structure with
           | 0 -> compare a.r_op b.r_op
           | c -> c)
  in
  let attributed =
    List.fold_left (fun acc r -> acc +. r.r_fence_stall_ns) 0.0 rows
  in
  let total_stall = d.Pmem.Stats.s_ns_flush in
  let hits = d.Pmem.Stats.s_l1_hits and misses = d.Pmem.Stats.s_l1_misses in
  {
    rows;
    total_ns = d.Pmem.Stats.s_now_ns;
    total_fence_stall_ns = total_stall;
    attributed_fence_stall_ns = attributed;
    unattributed_fence_stall_ns = total_stall -. attributed;
    total_fences = d.Pmem.Stats.s_fences;
    cache_hits = hits;
    cache_misses = misses;
    cache_hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    last_gauges = t.last_gauges;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%-10s %-12s %8s %8s %10s %10s %10s %10s %8s@ " "structure" "op" "spans"
    "ops" "p50_ns" "p99_ns" "max_ns" "stall_ns" "fences";
  List.iter
    (fun row ->
      Format.fprintf ppf
        "%-10s %-12s %8d %8d %10.0f %10.0f %10.0f %10.0f %8d@ " row.r_structure
        row.r_op row.r_spans row.r_ops
        (Histogram.percentile row.r_lat 0.50)
        (Histogram.percentile row.r_lat 0.99)
        (Histogram.max_value row.r_lat)
        row.r_fence_stall_ns row.r_fences)
    r.rows;
  Format.fprintf ppf
    "total %.0f ns, fence stall %.0f ns (attributed %.0f, unattributed %.0f), \
     %d fences, cache hit rate %.3f"
    r.total_ns r.total_fence_stall_ns r.attributed_fence_stall_ns
    r.unattributed_fence_stall_ns r.total_fences r.cache_hit_rate;
  Format.fprintf ppf "@]"

module Export = struct
  let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

  let json_gauges buf = function
    | None -> Buffer.add_string buf "null"
    | Some g ->
        buf_addf buf
          "{\"live_words\":%d,\"free_words\":%d,\"deferred_words\":%d,\"high_water_words\":%d,\"alloc_words_total\":%d}"
          g.g_live_words g.g_free_words g.g_deferred_words g.g_high_water_words
          g.g_alloc_words_total

  let to_json r =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"schema\":\"modpm-telemetry-v1\",";
    buf_addf buf
      "\"totals\":{\"ns\":%.1f,\"fence_stall_ns\":%.1f,\"attributed_fence_stall_ns\":%.1f,\"unattributed_fence_stall_ns\":%.1f,\"fences\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"cache_hit_rate\":%.6f},"
      r.total_ns r.total_fence_stall_ns r.attributed_fence_stall_ns
      r.unattributed_fence_stall_ns r.total_fences r.cache_hits r.cache_misses
      r.cache_hit_rate;
    Buffer.add_string buf "\"gauges\":";
    json_gauges buf r.last_gauges;
    Buffer.add_string buf ",\"rows\":[";
    List.iteri
      (fun i row ->
        if i > 0 then Buffer.add_char buf ',';
        buf_addf buf
          "{\"structure\":\"%s\",\"op\":\"%s\",\"spans\":%d,\"ops\":%d,"
          (json_escape row.r_structure) (json_escape row.r_op) row.r_spans
          row.r_ops;
        let h = row.r_lat in
        buf_addf buf
          "\"latency\":{\"count\":%d,\"sum_ns\":%.1f,\"p50_ns\":%.1f,\"p90_ns\":%.1f,\"p99_ns\":%.1f,\"max_ns\":%.1f,\"buckets\":["
          (Histogram.count h) (Histogram.sum h)
          (Histogram.percentile h 0.50)
          (Histogram.percentile h 0.90)
          (Histogram.percentile h 0.99)
          (Histogram.max_value h);
        List.iteri
          (fun j (le, c) ->
            if j > 0 then Buffer.add_char buf ',';
            buf_addf buf "{\"le_ns\":%.1f,\"count\":%d}" le c)
          (Histogram.buckets h);
        buf_addf buf
          "]},\"span_ns\":%.1f,\"fence_stall_ns\":%.1f,\"fences\":%d,\"flushed_lines\":%d,\"shadow_alloc_bytes\":%d,\"l1_hits\":%d,\"l1_misses\":%d}"
          row.r_span_ns row.r_fence_stall_ns row.r_fences row.r_flushed_lines
          (row.r_shadow_alloc_words * 8)
          row.r_l1_hits row.r_l1_misses)
      r.rows;
    Buffer.add_string buf "]}";
    Buffer.contents buf

  (* Prometheus label values share JSON's escaping rules for '\', '"'
     and newline, so [json_escape] is adequate. *)
  let labels row =
    Printf.sprintf "structure=\"%s\",op=\"%s\""
      (json_escape row.r_structure) (json_escape row.r_op)

  let to_prometheus r =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      "# HELP modpm_op_latency_ns Span latency per durable operation \
       (simulated ns).\n# TYPE modpm_op_latency_ns histogram\n";
    List.iter
      (fun row ->
        let l = labels row in
        let cum = ref 0 in
        List.iter
          (fun (le, c) ->
            cum := !cum + c;
            buf_addf buf "modpm_op_latency_ns_bucket{%s,le=\"%.0f\"} %d\n" l le
              !cum)
          (Histogram.buckets row.r_lat);
        buf_addf buf "modpm_op_latency_ns_bucket{%s,le=\"+Inf\"} %d\n" l
          (Histogram.count row.r_lat);
        buf_addf buf "modpm_op_latency_ns_sum{%s} %.1f\n" l
          (Histogram.sum row.r_lat);
        buf_addf buf "modpm_op_latency_ns_count{%s} %d\n" l
          (Histogram.count row.r_lat))
      r.rows;
    Buffer.add_string buf
      "# HELP modpm_fence_stall_ns Fence-stall time attributed per \
       operation (simulated ns).\n# TYPE modpm_fence_stall_ns counter\n";
    List.iter
      (fun row ->
        buf_addf buf "modpm_fence_stall_ns{%s} %.1f\n" (labels row)
          row.r_fence_stall_ns)
      r.rows;
    buf_addf buf
      "modpm_fence_stall_ns{structure=\"_unattributed\",op=\"_\"} %.1f\n"
      r.unattributed_fence_stall_ns;
    buf_addf buf
      "# HELP modpm_fence_stall_total_ns Global fence-stall time.\n\
       # TYPE modpm_fence_stall_total_ns counter\n\
       modpm_fence_stall_total_ns %.1f\n"
      r.total_fence_stall_ns;
    Buffer.add_string buf
      "# HELP modpm_ops_total Logical operations retired per entry point.\n\
       # TYPE modpm_ops_total counter\n";
    List.iter
      (fun row ->
        buf_addf buf "modpm_ops_total{%s} %d\n" (labels row) row.r_ops)
      r.rows;
    Buffer.add_string buf
      "# HELP modpm_shadow_alloc_bytes Shadow bytes allocated inside spans.\n\
       # TYPE modpm_shadow_alloc_bytes counter\n";
    List.iter
      (fun row ->
        buf_addf buf "modpm_shadow_alloc_bytes{%s} %d\n" (labels row)
          (row.r_shadow_alloc_words * 8))
      r.rows;
    buf_addf buf
      "# HELP modpm_fences_total Ordering points since install/reset.\n\
       # TYPE modpm_fences_total counter\nmodpm_fences_total %d\n"
      r.total_fences;
    buf_addf buf
      "# HELP modpm_cache_hit_rate Simulated L1D hit rate.\n\
       # TYPE modpm_cache_hit_rate gauge\nmodpm_cache_hit_rate %.6f\n"
      r.cache_hit_rate;
    (match r.last_gauges with
    | None -> ()
    | Some g ->
        buf_addf buf
          "# HELP modpm_allocator_words Allocator occupancy (words).\n\
           # TYPE modpm_allocator_words gauge\n\
           modpm_allocator_words{kind=\"live\"} %d\n\
           modpm_allocator_words{kind=\"free\"} %d\n\
           modpm_allocator_words{kind=\"deferred\"} %d\n\
           modpm_allocator_words{kind=\"high_water\"} %d\n"
          g.g_live_words g.g_free_words g.g_deferred_words g.g_high_water_words;
        buf_addf buf
          "# HELP modpm_alloc_words_total Words ever allocated.\n\
           # TYPE modpm_alloc_words_total counter\n\
           modpm_alloc_words_total %d\n"
          g.g_alloc_words_total);
    Buffer.contents buf
end
