(** PMDK-style transactional crit-bit tree (the paper's ctree baseline).

    A binary radix tree over non-negative integer keys, updated in
    place inside undo-logged {!Tx} transactions.  A structure is named
    by its descriptor's body offset; value words are owned by the
    tree. *)

val create : Tx.t -> int
(** Allocate an empty tree; returns the descriptor offset. *)

val count : Pmalloc.Heap.t -> int -> int
val cardinal : Pmalloc.Heap.t -> int -> int

val find : Pmalloc.Heap.t -> int -> int -> Pmem.Word.t option
val mem : Pmalloc.Heap.t -> int -> int -> bool

val insert : Tx.t -> int -> int -> Pmem.Word.t -> bool
(** Insert or update ([v] is an owned value word); [true] when a new
    key was added.  [Invalid_argument] on negative keys. *)

val remove : Tx.t -> int -> int -> bool
(** Remove a key; [true] when it was present. *)

val iter : Pmalloc.Heap.t -> int -> (int -> Pmem.Word.t -> unit) -> unit
