(** PMDK-style transactional vector: a dense PM array updated in place.

    The baseline the paper's vector and vec-swap workloads use -- a
    flat, contiguous layout where an element update snapshots one word
    and writes one word (Section 6.3: MOD's tree-based vector costs,
    not benefits).  All mutators run inside an undo-logged {!Tx}
    transaction; readers take the heap directly.  A structure is named
    by its descriptor's body offset. *)

val create : Tx.t -> capacity:int -> int
(** Allocate an empty vector; returns the descriptor offset.
    [Invalid_argument] when [capacity <= 0]. *)

val size : Pmalloc.Heap.t -> int -> int
val capacity : Pmalloc.Heap.t -> int -> int

val get : Pmalloc.Heap.t -> int -> int -> Pmem.Word.t
(** [get heap desc i]; [Invalid_argument] out of bounds. *)

val set : Tx.t -> int -> int -> Pmem.Word.t -> unit
(** Point update: snapshot one element word, overwrite it. *)

val swap : Tx.t -> int -> int -> int -> unit
(** Swap two elements in one transaction: two snapshots, two stores
    (the vec-swap workload, emulating canneal's main loop). *)

val grow : Tx.t -> int -> unit
(** Double the capacity: fresh data block, copy, swap the pointer. *)

val push_back : Tx.t -> int -> Pmem.Word.t -> unit
val iter : Pmalloc.Heap.t -> int -> (Pmem.Word.t -> unit) -> unit
