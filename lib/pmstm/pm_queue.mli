(** PMDK-style transactional FIFO queue: a singly linked list with
    head/tail descriptor words, updated in place inside undo-logged
    {!Tx} transactions.  A structure is named by its descriptor's body
    offset; each node is [value; next]. *)

val create : Tx.t -> int
(** Allocate an empty queue; returns the descriptor offset. *)

val head : Pmalloc.Heap.t -> int -> Pmem.Word.t
val tail : Pmalloc.Heap.t -> int -> Pmem.Word.t
val is_empty : Pmalloc.Heap.t -> int -> bool
val enqueue : Tx.t -> int -> Pmem.Word.t -> unit
val dequeue : Tx.t -> int -> Pmem.Word.t option
val iter : Pmalloc.Heap.t -> int -> (Pmem.Word.t -> unit) -> unit
val length : Pmalloc.Heap.t -> int -> int
val to_list : Pmalloc.Heap.t -> int -> Pmem.Word.t list
