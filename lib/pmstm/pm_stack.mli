(** PMDK-style transactional stack: a singly linked list whose
    descriptor is the head word, updated in place inside undo-logged
    {!Tx} transactions.  A structure is named by its descriptor's body
    offset; each node is [value; next]. *)

val create : Tx.t -> int
(** Allocate an empty stack; returns the descriptor offset. *)

val head : Pmalloc.Heap.t -> int -> Pmem.Word.t
val is_empty : Pmalloc.Heap.t -> int -> bool
val push : Tx.t -> int -> Pmem.Word.t -> unit
val pop : Tx.t -> int -> Pmem.Word.t option
val iter : Pmalloc.Heap.t -> int -> (Pmem.Word.t -> unit) -> unit
val length : Pmalloc.Heap.t -> int -> int
val to_list : Pmalloc.Heap.t -> int -> Pmem.Word.t list
