(** NOrec-style validation STM over the simulated PM, for concurrent
    writers.

    One global sequence lock serializes writing commits; readers are
    lock-free and validate by {e value}: a transaction records the bits
    of every word it read and re-checks them whenever the global
    sequence number moves (Dalessandro, Spear, Scott, PPoPP'10 -- "no
    ownership records").  Durability is redo-based: a committing writer
    publishes its buffered write set into a checksummed redo log and
    fences once -- the durable linearization point -- then applies the
    writes in place and durably retires the log.  Three ordering points
    per writing commit, zero for read-only transactions.

    Concurrency is the simulator's cooperative kind: every PM event is
    a preemption point ({!Pmem.Region.set_event_hook}); spin-waits call
    the instance's yield so the lock holder can progress. *)

type t
(** One STM instance: the sequence lock plus its durable redo log.
    Shared by every writer of the heap; each writer runs its own
    transactions ({!tx}) against it. *)

type tx
(** One in-flight transaction (read set, buffered write set). *)

val create : ?log_capacity_words:int -> ?log_root_slot:int -> Pmalloc.Heap.t -> t
(** Allocate the redo log and durably register it in the root directory
    (default slot: [Pmalloc.Heap.root_slots - 2]; {!Tx} uses the last
    slot) so recovery reachability keeps it alive. *)

val default_log_root_slot : int

val heap : t -> Pmalloc.Heap.t

val set_yield : t -> (unit -> unit) -> unit
(** Install the cooperative yield used while spinning on the sequence
    lock.  The interleaving explorer points this at its scheduler; the
    default spins on a bounded fuel counter and fails loudly rather
    than hang. *)

val run :
  ?before_publish:(unit -> unit) ->
  ?after_publish:(unit -> unit) ->
  t ->
  (tx -> 'a) ->
  'a
(** Run [f] as a transaction, re-executing it from scratch whenever
    value validation fails (so [f] must be idempotent up to its [tx]
    operations).  [before_publish] fires after the sequence lock is
    acquired, before the first redo-log store -- the earliest instant a
    crash could expose the commit; [after_publish] fires right after
    the publish fence, when the commit is durably decided.  Both must
    issue no PM events (each PM event is a preemption point). *)

val read : tx -> int -> Pmem.Word.t
(** Transactional load: served from the write buffer when buffered,
    otherwise validated against the global sequence number and recorded
    in the value read set. *)

val write : tx -> int -> Pmem.Word.t -> unit
(** Buffer a word store; it reaches PM only at commit.  Raises
    [Invalid_argument] if the write set outgrows the redo log. *)

val commits : t -> int
(** Writing commits since [create] (volatile diagnostic). *)

val aborts : t -> int
(** Validation failures that forced a re-execution. *)

val recover : ?log_root_slot:int -> Pmalloc.Heap.t -> bool
(** Crash recovery: if the root directory points at a redo log whose
    checksum validates with a non-zero entry count, the crash landed
    between the publish fence and the durable retire -- replay the
    entries (idempotent) and retire the log.  Returns whether a replay
    happened.  Run before the heap's reachability analysis. *)
