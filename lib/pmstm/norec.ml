(** NOrec-style validation STM over the simulated PM.

    NOrec (Dalessandro, Spear, Scott, PPoPP'10) serializes writers with
    one global sequence lock and keeps readers lock-free: a transaction
    records the {e values} it read and revalidates them whenever the
    global sequence number moves, so there is no per-location ownership
    metadata at all ("no ownership records").  This file adds the
    durability half for PM: a committing writer publishes its buffered
    write set into a checksummed redo log and fences {e once} -- that
    fence is the durable linearization point -- then applies the writes
    in place and durably retires the log.

    Commit protocol, while holding the sequence lock (odd [seq]):

    + publish: store every (offset, value) pair plus the entry count,
      a monotonic nonce and a checksum binding all of it into the redo
      log block; clwb the touched lines; {b sfence #1} -- from here the
      transaction survives any crash (recovery replays the log);
    + apply: in-place stores of the write set, clwb, {b sfence #2};
    + retire: zero the log's entry count, clwb, {b sfence #3} -- the
      log cannot replay over a later state.

    A crash before fence #1 leaves a checksum-invalid log (ignored); a
    crash between #1 and #3 leaves a valid log that {!recover} replays
    idempotently.  Three ordering points per writing commit -- compare
    the paper's 5-50 for PMDK v1.4 ({!Tx}) -- and zero for read-only
    transactions.

    Concurrency is the simulator's cooperative kind: every PM event is
    a potential preemption point ({!Pmem.Region.set_event_hook}), and
    loads are not PM events, so volatile straight-line OCaml (the
    lock acquisition, the validation scan) is atomic exactly like
    uninterrupted instructions on one core.  Spin-waits call the
    instance's [yield] so the lock holder can run. *)

(* Redo-log block layout (Raw block, never scanned):
   word 0            entry count (0 = no committed-but-unretired tx)
   word 1            nonce: the committing writer's odd sequence number
   word 2            checksum over (nonce, count, entries)
   word 3 + 2i       entry i target offset
   word 3 + 2i + 1   entry i value bits *)
let log_header_words = 3

(* Avalanche mix (same flavour as the heap's root-record checksum):
   stale log contents from an earlier epoch of the block can never
   validate against a fresh nonce. *)
let mix acc x =
  let x = (acc lxor x) * 0xFF51AFD7ED558C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xC4CEB9FE1A85EC5 in
  x lxor (x lsr 32)

exception Conflict
(** Internal: value-based validation failed; {!run} re-executes. *)

type t = {
  heap : Pmalloc.Heap.t;
  log_body : int; (* redo-log block body offset *)
  log_capacity : int; (* total words in the log block *)
  log_root_slot : int; (* directory slot keeping the log reachable *)
  mutable seq : int; (* the global sequence lock; odd = writer committing *)
  mutable yield : unit -> unit; (* cooperative backoff while locked *)
  mutable commits : int; (* writing commits (volatile diagnostic) *)
  mutable aborts : int; (* validation failures that forced a re-run *)
}

type tx = {
  stm : t;
  mutable snap : int; (* [seq] this tx last validated against (even) *)
  mutable reads : (int * int) list; (* value read set: (offset, bits) *)
  writes : (int, Pmem.Word.t) Hashtbl.t; (* buffered write set *)
  mutable worder : int list; (* distinct write offsets, newest first *)
}

(* The log must hold every buffered write of one transaction. *)
let max_write_set t = (t.log_capacity - log_header_words) / 2

let default_log_root_slot = Pmalloc.Heap.root_slots - 2

let create ?(log_capacity_words = 1 lsl 10)
    ?(log_root_slot = default_log_root_slot) heap =
  if log_capacity_words < log_header_words + 2 then
    invalid_arg "Norec.create: log capacity too small for one entry";
  let log_body =
    Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:log_capacity_words
  in
  Pmalloc.Heap.store heap log_body (Pmem.Word.of_int 0);
  Pmalloc.Heap.clwb heap log_body;
  (* register the log in the root directory so recovery reachability
     never reclaims it, then make registration + empty marker durable *)
  Pmalloc.Heap.root_set heap log_root_slot (Pmem.Word.of_ptr log_body);
  Pmalloc.Heap.sfence heap;
  {
    heap;
    log_body;
    log_capacity = log_capacity_words;
    log_root_slot;
    seq = 0;
    yield = (fun () -> ());
    commits = 0;
    aborts = 0;
  }

let heap t = t.heap
let commits t = t.commits
let aborts t = t.aborts
let set_yield t f = t.yield <- f

(* Spin until no writer holds the sequence lock.  The fuel bound turns a
   scheduling bug (nobody left to release the lock) into a loud failure
   instead of a silent hang. *)
let wait_unlocked stm =
  let fuel = ref 1_000_000 in
  while stm.seq land 1 = 1 do
    decr fuel;
    if !fuel = 0 then
      failwith "Norec: sequence lock never released (scheduler livelock?)";
    stm.yield ()
  done

(* Value-based validation: wait out any in-flight commit, then confirm
   every read still returns the recorded bits.  On success the tx moves
   its snapshot forward; on failure it must re-execute from scratch. *)
let revalidate tx =
  let stm = tx.stm in
  wait_unlocked stm;
  let seq = stm.seq in
  List.iter
    (fun (off, bits) ->
      if Pmem.Word.bits (Pmalloc.Heap.load stm.heap off) <> bits then begin
        stm.aborts <- stm.aborts + 1;
        raise Conflict
      end)
    tx.reads;
  (* loads are not PM events: no yield could have interleaved a writer
     between [wait_unlocked] and here, so [seq] is still current *)
  tx.snap <- seq

let begin_tx stm =
  wait_unlocked stm;
  { stm; snap = stm.seq; reads = []; writes = Hashtbl.create 8; worder = [] }

let read tx off =
  match Hashtbl.find_opt tx.writes off with
  | Some w -> w (* read-your-writes from the buffer *)
  | None ->
      let v = ref (Pmalloc.Heap.load tx.stm.heap off) in
      (* NOrec post-validation: if the global sequence moved since our
         snapshot, some writer committed; prove our reads still hold,
         then re-read the new location under the fresh snapshot *)
      while tx.stm.seq <> tx.snap do
        revalidate tx;
        v := Pmalloc.Heap.load tx.stm.heap off
      done;
      tx.reads <- (off, Pmem.Word.bits !v) :: tx.reads;
      !v

let write tx off w =
  if not (Hashtbl.mem tx.writes off) then tx.worder <- off :: tx.worder;
  Hashtbl.replace tx.writes off w;
  if List.length tx.worder > max_write_set tx.stm then
    invalid_arg "Norec.write: write set exceeds the redo log capacity"

(* Acquire the sequence lock with a consistent read set.  [revalidate]
   leaves [seq] even and equal to [tx.snap] with no intervening PM event,
   so the check-and-bump below is indivisible under the cooperative
   scheduler -- the simulated equivalent of CAS(seq, snap, snap+1). *)
let rec acquire tx =
  let stm = tx.stm in
  if stm.seq = tx.snap then stm.seq <- tx.snap + 1
  else begin
    revalidate tx;
    acquire tx
  end

let commit ?(before_publish = ignore) ?(after_publish = ignore) tx =
  let stm = tx.stm in
  if Hashtbl.length tx.writes = 0 then begin
    (* read-only: a final validation is the whole commit; no fence *)
    if stm.seq <> tx.snap then revalidate tx
  end
  else begin
    acquire tx;
    (* -- locked; seq is odd ------------------------------------------- *)
    let nonce = stm.seq in
    let offs = List.rev tx.worder in
    let count = List.length offs in
    (* bookkeeping hook: from the very first log store a lucky crash
       could already expose this commit, so "pending" starts here *)
    before_publish ();
    (* publish the redo entries + header + checksum, flush, fence #1 *)
    let cursor = ref (stm.log_body + log_header_words) in
    let csum = ref (mix (mix 0 nonce) count) in
    List.iter
      (fun off ->
        let bits = Pmem.Word.bits (Hashtbl.find tx.writes off) in
        Pmalloc.Heap.store stm.heap !cursor (Pmem.Word.of_int off);
        Pmalloc.Heap.store stm.heap (!cursor + 1) (Pmem.Word.raw bits);
        csum := mix (mix !csum off) bits;
        cursor := !cursor + 2)
      offs;
    Pmalloc.Heap.store stm.heap stm.log_body (Pmem.Word.of_int count);
    Pmalloc.Heap.store stm.heap (stm.log_body + 1) (Pmem.Word.of_int nonce);
    Pmalloc.Heap.store stm.heap (stm.log_body + 2) (Pmem.Word.raw !csum);
    Pmalloc.Heap.clwb_range stm.heap stm.log_body
      (log_header_words + (2 * count));
    Pmalloc.Heap.sfence stm.heap;
    (* durably committed: recovery now replays this transaction *)
    after_publish ();
    (* apply in place, fence #2 *)
    List.iter
      (fun off ->
        Pmalloc.Heap.store stm.heap off (Hashtbl.find tx.writes off);
        Pmalloc.Heap.clwb stm.heap off)
      offs;
    Pmalloc.Heap.sfence stm.heap;
    (* retire the log, fence #3 *)
    Pmalloc.Heap.store stm.heap stm.log_body (Pmem.Word.of_int 0);
    Pmalloc.Heap.clwb stm.heap stm.log_body;
    Pmalloc.Heap.sfence stm.heap;
    (* release: seq moves from snap+1 (odd) to snap+2 (even) *)
    stm.seq <- tx.snap + 2;
    stm.commits <- stm.commits + 1;
    let stats = Pmalloc.Heap.stats stm.heap in
    stats.Pmem.Stats.commits <- stats.Pmem.Stats.commits + 1
  end

let run ?before_publish ?after_publish stm f =
  Pmalloc.Heap.span stm.heap ~structure:"norec" ~op:"run"
    (fun () ->
      let rec attempt () =
        let tx = begin_tx stm in
        match
          let r = f tx in
          commit ?before_publish ?after_publish tx;
          r
        with
        | r -> r
        | exception Conflict -> attempt ()
      in
      attempt ())

(* -- crash recovery ------------------------------------------------------ *)

(* Replay a committed-but-unretired redo log found through the root
   directory.  Idempotent: entries are (offset, value) redo records, so
   replaying over an image where the in-place apply already (partially)
   happened rewrites the same values.  Returns whether a log replayed.
   Called on the recovered heap before the reachability analysis. *)
let recover ?(log_root_slot = default_log_root_slot) heap =
  let root = Pmalloc.Heap.root_get heap log_root_slot in
  if (not (Pmem.Word.is_ptr root)) || Pmem.Word.is_null root then false
  else begin
    let body = Pmem.Word.to_ptr root in
    let count = Pmem.Word.to_int (Pmalloc.Heap.load heap body) in
    let nonce = Pmem.Word.to_int (Pmalloc.Heap.load heap (body + 1)) in
    let csum = Pmem.Word.bits (Pmalloc.Heap.load heap (body + 2)) in
    (* a garbage count word cannot send the scan past the log block *)
    let block_words =
      Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) body
    in
    let fits = count > 0 && log_header_words + (2 * count) <= block_words in
    if not fits then false
    else begin
      let expect = ref (mix (mix 0 nonce) count) in
      let entries = ref [] in
      (try
         for i = 0 to count - 1 do
           let base = body + log_header_words + (2 * i) in
           let off = Pmem.Word.to_int (Pmalloc.Heap.load heap base) in
           let bits = Pmem.Word.bits (Pmalloc.Heap.load heap (base + 1)) in
           expect := mix (mix !expect off) bits;
           entries := (off, bits) :: !entries
         done
       with Invalid_argument _ ->
         (* an entry pointed outside the region: garbage count word *)
         expect := lnot csum);
      if !expect <> csum then false (* torn publish: pre-commit state *)
      else begin
        List.iter
          (fun (off, bits) ->
            Pmalloc.Heap.store heap off (Pmem.Word.raw bits);
            Pmalloc.Heap.clwb heap off)
          (List.rev !entries);
        Pmalloc.Heap.sfence heap;
        Pmalloc.Heap.store heap body (Pmem.Word.of_int 0);
        Pmalloc.Heap.clwb heap body;
        Pmalloc.Heap.sfence heap;
        true
      end
    end
  end
