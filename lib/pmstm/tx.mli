(** PMDK-style persistent-memory transactions (the paper's baseline).

    Undo-logging STM over the simulated PM, in the two flavours the
    paper measures: [V1_4] orders every snapshot with its own fences
    (the "5-50 fences per transaction" regime of Section 3) and [V1_5]
    batches snapshot drains hybrid-redo style (~23% faster, Section
    6.3).  Writes are tracked and flushed at commit; the undo log is
    then durably invalidated.  See {!Norec} for the concurrent
    validation STM built for the multi-writer path. *)

type version = V1_4 | V1_5

type t

exception Abort
(** Raise inside [run] to abort the transaction (undo + re-raise). *)

exception Log_full
(** The undo log filled and repeated growth retries could not fit the
    transaction; it has been cleanly aborted through the undo path. *)

val create :
  ?log_capacity_words:int ->
  ?check_adds:bool ->
  ?broken_ordering:bool ->
  ?log_root_slot:int ->
  Pmalloc.Heap.t ->
  version:version ->
  t
(** Allocate and durably register the undo log.  [check_adds] (default
    true) makes [store] enforce the TX_ADD discipline; [broken_ordering]
    builds the deliberately buggy variant the crash-test negative
    controls expect to fail; [log_root_slot] (default the last root
    slot) keeps the log reachable across crashes. *)

val heap : t -> Pmalloc.Heap.t
val version : t -> version
val in_tx : t -> bool
val is_broken : t -> bool

val log_capacity : t -> int
(** Current undo-log capacity in words (grows on [Log_full] retries). *)

val run : t -> (unit -> 'a) -> 'a
(** Run [f] in a transaction: begin, commit on return, abort on any
    exception (which is re-raised).  Nested [run]s flatten into the
    outermost transaction.  A full log aborts, grows and retries the
    whole flattened body, raising {!Log_full} after bounded retries. *)

val run_grouped : t -> n:int -> (int -> unit) -> unit
(** Group commit: one transaction covering [n] logical operations,
    amortizing the snapshot and commit ordering points (the PM-STM
    counterpart of [Mod_core.Batch]). *)

val add : t -> off:int -> words:int -> unit
(** Snapshot [words] words at [off] into the undo log (TX_ADD), with
    the fence discipline of the transaction's [version].  Must precede
    any in-place [store] to existing memory. *)

val load : t -> int -> Pmem.Word.t

val store : t -> int -> Pmem.Word.t -> unit
(** In-place transactional store; with [check_adds], raises [Failure]
    if the target is neither snapshotted nor freshly allocated. *)

val alloc : t -> kind:Pmalloc.Block.kind -> words:int -> int
(** Transactional allocation, rolled back if the transaction aborts. *)

val store_fresh : t -> int -> Pmem.Word.t -> unit
(** Store into a block allocated in this transaction (no undo entry
    needed; still flushed at commit). *)

val free_on_commit : t -> int -> unit
(** Defer a free to commit time (aborting cancels it). *)

val begin_ : t -> unit
val commit : t -> unit
val abort : t -> unit
(** Explicit lifecycle for tests; prefer {!run}. *)

val recover : t -> bool
(** Crash recovery: roll back an interrupted transaction from the
    durable log.  Returns whether a rollback happened. *)
