(** PMDK-style persistent-memory transactions (the paper's baseline).

    Two modes mirror the two PMDK releases the paper measures:

    - [V1_4] -- undo logging: every snapshotted range is made durable with
      its own ordering point before the in-place write may proceed, plus
      stage-transition and log-invalidation fences.  This is the
      "5-50 fences per transaction" regime of Section 3.
    - [V1_5] -- hybrid undo-redo: snapshots are flushed with unordered
      clwbs and drained by a single fence immediately before the first
      in-place store of each add-batch, and the commit record is handled
      redo-style.  Fewer ordering points, the ~23% speedup the paper
      reports for v1.5 over v1.4 (Section 6.3).

    In both modes, all in-place data modified by the transaction is
    flushed at commit, then the undo log is durably invalidated.

    The transaction tracks every word it stores; commit flushes exactly
    those lines.  [store] optionally enforces the TX_ADD discipline: a
    store to existing (not freshly allocated, not snapshotted) memory
    raises, which is the class of PMDK usage bug the paper cites
    (Liu et al., PMTest, ASPLOS'19). *)

type version = V1_4 | V1_5

type t = {
  heap : Pmalloc.Heap.t;
  version : version;
  mutable log : Wal.t; (* replaced when a full log is grown *)
  log_root_slot : int; (* directory slot that keeps the log reachable *)
  mutable depth : int; (* nested tx flatten into the outermost one *)
  mutable pending_drain : bool; (* v1.5: snapshots flushed, not yet fenced *)
  mutable dirty_lines : (int, unit) Hashtbl.t;
  mutable added : (int * int) list; (* snapshotted ranges *)
  mutable fresh : (int * int) list; (* blocks allocated in this tx (body, words) *)
  mutable to_free : int list; (* deferred frees, applied at commit *)
  mutable check_adds : bool;
  (* deliberately ordering-broken variant (negative control for the
     crash-point explorer): skips the snapshot-before-store fences and
     never flushes in-place data at commit, the classic PM bug class the
     durable-linearizability oracle must catch *)
  broken_ordering : bool;
}

exception Abort

exception Log_full
(** The undo log filled and repeated growth retries could not fit the
    transaction.  The transaction has been aborted through the normal
    undo path; the heap is recoverable. *)

(* Internal signal: [add] found the log full.  The outermost [run_now]
   aborts (rolling back this transaction's valid entries), grows the log
   and retries the whole flattened transaction. *)
exception Log_full_retry

(* [log_root_slot] registers the log block in the heap's root directory so
   recovery-time reachability analysis never reclaims it. *)
let create ?(log_capacity_words = 1 lsl 16) ?(check_adds = true)
    ?(broken_ordering = false)
    ?(log_root_slot = Pmalloc.Heap.root_slots - 1) heap ~version =
  let log = Wal.create heap ~capacity_words:log_capacity_words in
  Pmalloc.Heap.root_set heap log_root_slot (Pmem.Word.of_ptr (Wal.body log));
  Pmalloc.Heap.sfence heap;
  {
    heap;
    version;
    log;
    log_root_slot;
    depth = 0;
    pending_drain = false;
    dirty_lines = Hashtbl.create 64;
    added = [];
    fresh = [];
    to_free = [];
    check_adds;
    broken_ordering;
  }

let heap t = t.heap
let version t = t.version
let in_tx t = t.depth > 0
let is_broken t = t.broken_ordering
let log_capacity t = Wal.capacity t.log

(* Replace the full log with one at least [at_least] words big.  Called
   only between transactions (after an abort): the old log is durably
   invalid, the new one is installed in the root directory before the
   old block is freed, so recovery always finds exactly one valid log. *)
let grow_log t ~at_least =
  let cap = ref (Wal.capacity t.log) in
  while !cap < at_least do
    cap := !cap * 2
  done;
  let old_body = Wal.body t.log in
  let log = Wal.create t.heap ~capacity_words:!cap in
  Pmalloc.Heap.root_set t.heap t.log_root_slot
    (Pmem.Word.of_ptr (Wal.body log));
  Pmalloc.Heap.sfence t.heap;
  Pmalloc.Heap.free t.heap old_body;
  t.log <- log

let covered ranges off words =
  List.exists (fun (o, w) -> off >= o && off + words <= o + w) ranges

(* -- transaction lifecycle ----------------------------------------------- *)

let begin_ t =
  t.depth <- t.depth + 1;
  if t.depth = 1 then begin
    Hashtbl.reset t.dirty_lines;
    t.added <- [];
    t.fresh <- [];
    t.to_free <- [];
    t.pending_drain <- false;
    Wal.reset t.log;
    match t.version with
    | V1_4 ->
        (* stage transition NONE -> WORK is made durable eagerly *)
        Pmalloc.Heap.sfence t.heap
    | V1_5 -> ()
  end

let add t ~off ~words =
  if t.depth = 0 then invalid_arg "Tx.add: no transaction in flight";
  if not (covered t.added off words || covered t.fresh off words) then begin
    (match Wal.append t.log ~off ~words with
    | Ok () -> ()
    | Error `Log_full -> raise Log_full_retry);
    t.added <- (off, words) :: t.added;
    if t.broken_ordering then ()
      (* broken: the in-place write may reach PM before its undo snapshot *)
    else
      match t.version with
    | V1_4 ->
        (* undo logging: the snapshot must be durable before the in-place
           write, and the per-entry list metadata is persisted separately
           (the "ordering points proportional to ranges" regime, Section 7) *)
        Pmalloc.Heap.sfence t.heap;
        Wal.touch_metadata t.log;
        Pmalloc.Heap.sfence t.heap
    | V1_5 ->
        (* hybrid logging: entry and metadata drain under one fence *)
        Pmalloc.Heap.sfence t.heap
  end

let load t off = Pmalloc.Heap.load t.heap off

let store t off w =
  if t.depth = 0 then invalid_arg "Tx.store: no transaction in flight";
  if t.check_adds && not (covered t.added off 1 || covered t.fresh off 1) then
    failwith
      (Printf.sprintf
         "Tx.store: unlogged in-place write at %d (missing Tx.add?)" off);
  Pmalloc.Heap.store t.heap off w;
  Hashtbl.replace t.dirty_lines (Pmem.Region.line_of_word off) ()

let alloc t ~kind ~words =
  if t.depth = 0 then invalid_arg "Tx.alloc: no transaction in flight";
  let body = Pmalloc.Heap.alloc t.heap ~kind ~words in
  t.fresh <- (body, words) :: t.fresh;
  body

(* Writes into freshly allocated blocks need no undo entry but must be
   flushed at commit. *)
let store_fresh t off w =
  if t.check_adds && not (covered t.fresh off 1) then
    failwith "Tx.store_fresh: target is not freshly allocated";
  Pmalloc.Heap.store t.heap off w;
  Hashtbl.replace t.dirty_lines (Pmem.Region.line_of_word off) ()

let free_on_commit t body = t.to_free <- body :: t.to_free

let commit t =
  if t.depth = 0 then invalid_arg "Tx.commit: no transaction in flight";
  if t.depth > 1 then t.depth <- t.depth - 1
  else begin
    (* commit-path processing (lane/stage management in libpmemobj) *)
    let stats = Pmalloc.Heap.stats t.heap in
    Pmem.Stats.advance stats Pmem.Config.tx_commit_overhead_ns;
    stats.Pmem.Stats.l1_hits <-
      stats.Pmem.Stats.l1_hits + Pmem.Config.tx_commit_accesses;
    (* flush all in-place and freshly written lines, then drain *)
    if not t.broken_ordering then
      (* broken: in-place data is never flushed, so the durably
         invalidated log can outlive writes that never reached PM *)
      Hashtbl.iter
        (fun line () ->
          Pmalloc.Heap.clwb t.heap (line lsl Pmem.Config.line_shift))
        t.dirty_lines;
    (* headers of fresh blocks were written by the allocator *)
    List.iter (fun (body, _) -> Pmalloc.Heap.flush_block t.heap body) t.fresh;
    Pmalloc.Heap.sfence t.heap;
    (* stage transition ONCOMMIT: persist the commit decision *)
    Wal.touch_metadata t.log;
    Pmalloc.Heap.sfence t.heap;
    (* durably invalidate the undo log (store + clwb + sfence) *)
    Wal.invalidate t.log;
    List.iter (fun body -> Pmalloc.Heap.free t.heap body) t.to_free;
    t.to_free <- [];
    t.fresh <- [];
    t.added <- [];
    Hashtbl.reset t.dirty_lines;
    t.depth <- 0;
    stats.Pmem.Stats.commits <- stats.Pmem.Stats.commits + 1
  end

let abort t =
  if t.depth = 0 then invalid_arg "Tx.abort: no transaction in flight";
  Wal.rollback t.log ~entries_valid:(Wal.entries t.log);
  (* allocations made inside the aborted tx are rolled back *)
  List.iter (fun (body, _) -> Pmalloc.Heap.free t.heap body) t.fresh;
  t.fresh <- [];
  t.added <- [];
  t.to_free <- [];
  Hashtbl.reset t.dirty_lines;
  t.pending_drain <- false;
  t.depth <- 0

(* Growth retries double the log each time; 6 retries = 64x the original
   capacity before giving up with the typed {!Log_full}. *)
let max_growth_retries = 6

let run_now t f =
  let outermost = t.depth = 0 in
  let rec attempt retries =
    begin_ t;
    match f () with
    | result ->
        commit t;
        result
    | exception Log_full_retry when outermost ->
        (* [add] appended nothing; the log's existing entries are intact,
           so the normal undo path cleanly rewinds this transaction.
           Then grow the log and re-run the whole flattened body. *)
        if t.depth > 0 then abort t;
        if retries = 0 then raise Log_full;
        grow_log t ~at_least:(2 * Wal.capacity t.log);
        attempt (retries - 1)
    | exception e ->
        (* flattened nesting: any exception aborts the outermost tx (a
           nested Log_full_retry keeps propagating so the true outermost
           frame, whose abort already ran here, performs the retry) *)
        if t.depth > 0 then abort t;
        raise e
  in
  attempt max_growth_retries

(* The telemetry depth guard keeps nested [run]s (and [run]s embedded in
   a structure-level span, e.g. CommitUnrelated inside a batch) from
   recording twice: only the outermost span owns the stats delta. *)
let run t f =
  Pmalloc.Heap.span t.heap ~structure:"tx" ~op:"run" (fun () -> run_now t f)

(* Group commit, the PM-STM counterpart of [Mod_core.Batch]: one
   transaction covering [n] logical operations amortizes the snapshot
   and commit-path ordering points across the group.  Nested [run]
   calls inside [f] flatten into this transaction, so existing per-op
   entry points batch unchanged. *)
let run_grouped t ~n f =
  run t (fun () ->
      for i = 0 to n - 1 do
        f i
      done)

(* Crash recovery: roll back an interrupted transaction from the durable
   log, then let the caller run heap-level leak recovery. *)
let recover t =
  t.depth <- 0;
  t.pending_drain <- false;
  t.fresh <- [];
  t.added <- [];
  t.to_free <- [];
  Hashtbl.reset t.dirty_lines;
  Wal.recover t.log
