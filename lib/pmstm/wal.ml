(** Persistent undo log for the PMDK-style software transactional memory.

    The log lives in a [Raw] PM block.  Layout:
    - word 0: number of valid entries (0 = log invalid / no tx in flight)
    - then a sequence of self-describing entries:
      [target offset; word count; saved words ...]

    An entry becomes visible to recovery only once the durable entry count
    covers it, so a crash mid-append is harmless.  Rollback applies entries
    in reverse order, restoring the snapshots. *)

type t = {
  heap : Pmalloc.Heap.t;
  body : int; (* log block body offset *)
  capacity : int; (* total words in the log block *)
  mutable tail : int; (* volatile append cursor, relative to body *)
  mutable entries : int; (* volatile entry count *)
}

let create heap ~capacity_words =
  let body = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:capacity_words in
  Pmalloc.Heap.store heap body (Pmem.Word.of_int 0);
  Pmalloc.Heap.clwb heap body;
  Pmalloc.Heap.sfence heap;
  { heap; body; capacity = capacity_words; tail = 1; entries = 0 }

let reset t =
  t.tail <- 1;
  t.entries <- 0

let body t = t.body

let entries t = t.entries

let capacity t = t.capacity

(* Snapshot [words] words starting at [off] into the log and flush the
   entry with unordered clwbs.  The caller decides when to fence (v1.4
   fences per entry; v1.5 batches the drain).  Log construction time is
   attributed to the Log phase (Figures 2 and 9).

   A full log is a typed outcome, not a crash: the caller (Tx) aborts the
   transaction through the normal undo path -- the log's existing entries
   are still intact and valid at this point -- and may retry with a grown
   log.  Nothing has been appended when [Error `Log_full] returns. *)
let append_now t ~off ~words =
  let stats = Pmalloc.Heap.stats t.heap in
  Pmem.Stats.in_phase stats Pmem.Stats.Log (fun () ->
      (* entry construction overhead beyond the data copy (allocation and
         metadata bookkeeping in libpmemobj), in time and in cache-resident
         accesses *)
      Pmem.Stats.advance stats Pmem.Config.log_entry_overhead_ns;
      stats.Pmem.Stats.l1_hits <-
        stats.Pmem.Stats.l1_hits + Pmem.Config.log_entry_accesses;
      let base = t.body + t.tail in
      Pmalloc.Heap.store t.heap base (Pmem.Word.of_int off);
      Pmalloc.Heap.store t.heap (base + 1) (Pmem.Word.of_int words);
      for i = 0 to words - 1 do
        Pmalloc.Heap.store t.heap (base + 2 + i)
          (Pmalloc.Heap.load t.heap (off + i))
      done;
      t.tail <- t.tail + 2 + words;
      t.entries <- t.entries + 1;
      (* publish the new entry count, then flush entry + header *)
      Pmalloc.Heap.store t.heap t.body (Pmem.Word.of_int t.entries);
      Pmalloc.Heap.clwb_range t.heap base (2 + words);
      Pmalloc.Heap.clwb t.heap t.body;
      stats.Pmem.Stats.log_writes <- stats.Pmem.Stats.log_writes + 1)

let append t ~off ~words =
  if t.tail + 2 + words > t.capacity then Error `Log_full
  else Ok (append_now t ~off ~words)

(* Persist a log-metadata update (stage transitions, entry publication):
   one header store plus its flush; the caller orders it. *)
let touch_metadata t =
  let stats = Pmalloc.Heap.stats t.heap in
  Pmem.Stats.in_phase stats Pmem.Stats.Log (fun () ->
      Pmalloc.Heap.store t.heap t.body (Pmem.Word.of_int t.entries);
      Pmalloc.Heap.clwb t.heap t.body)

(* Durably invalidate the log (transaction finished or rolled back). *)
let invalidate t =
  Pmalloc.Heap.store t.heap t.body (Pmem.Word.of_int 0);
  Pmalloc.Heap.clwb t.heap t.body;
  Pmalloc.Heap.sfence t.heap;
  reset t

(* Apply the undo entries in reverse, restoring snapshots, then invalidate.
   Used both for in-flight aborts (reading the volatile view) and for
   crash recovery (where current == durable after the crash). *)
let rollback t ~entries_valid =
  let entry_offsets = Array.make entries_valid 0 in
  let cursor = ref 1 in
  for i = 0 to entries_valid - 1 do
    entry_offsets.(i) <- !cursor;
    let words =
      Pmem.Word.to_int (Pmalloc.Heap.load t.heap (t.body + !cursor + 1))
    in
    cursor := !cursor + 2 + words
  done;
  for i = entries_valid - 1 downto 0 do
    let base = t.body + entry_offsets.(i) in
    let off = Pmem.Word.to_int (Pmalloc.Heap.load t.heap base) in
    let words = Pmem.Word.to_int (Pmalloc.Heap.load t.heap (base + 1)) in
    for j = 0 to words - 1 do
      Pmalloc.Heap.store t.heap (off + j) (Pmalloc.Heap.load t.heap (base + 2 + j))
    done;
    Pmalloc.Heap.clwb_range t.heap off words
  done;
  Pmalloc.Heap.sfence t.heap;
  invalidate t

(* Crash recovery: if the durable entry count is non-zero, a transaction
   was interrupted; roll it back. *)
let recover t =
  let valid = Pmem.Word.to_int (Pmalloc.Heap.load t.heap t.body) in
  reset t;
  if valid > 0 then begin
    rollback t ~entries_valid:valid;
    true
  end
  else false
