(** PMDK-style transactional hashmap (the paper's baseline map/set).

    Modelled on PMDK's [hashmap_tx] example: a bucket array with
    chained entry nodes, updated in place inside undo-logged {!Tx}
    transactions -- the contiguous, cache-friendly layout the paper
    credits for the baseline's lower L1D miss ratios (Section 6.5).
    A structure is named by its descriptor's body offset. *)

module Make (K : Pfds.Kv.CODEC) (V : Pfds.Kv.CODEC) : sig
  type key = K.t
  type value = V.t

  val create : Tx.t -> nbuckets:int -> int
  (** Allocate an empty map; returns the descriptor offset. *)

  val count : Pmalloc.Heap.t -> int -> int
  val cardinal : Pmalloc.Heap.t -> int -> int
  val nbuckets : Pmalloc.Heap.t -> int -> int

  val insert : Tx.t -> int -> key -> value -> bool
  (** Insert or update; [true] when a new key was added. *)

  val remove : Tx.t -> int -> key -> bool
  (** Remove a key; [true] when it was present. *)

  val find : Pmalloc.Heap.t -> int -> key -> value option
  val mem : Pmalloc.Heap.t -> int -> key -> bool
  val iter : Pmalloc.Heap.t -> int -> (key -> value -> unit) -> unit
end
