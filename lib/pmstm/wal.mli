(** Persistent undo log for the PMDK-style STM ({!Tx}).

    Lives in a [Raw] PM block: word 0 holds the valid entry count (0 =
    invalid), followed by self-describing entries
    [target offset; word count; saved words ...].  An entry is visible
    to recovery only once the durable count covers it, so a crash
    mid-append is harmless; rollback restores snapshots newest-first. *)

type t

val create : Pmalloc.Heap.t -> capacity_words:int -> t
(** Allocate the log block and durably zero its count word. *)

val body : t -> int
(** Body offset of the log block (for root-directory registration). *)

val capacity : t -> int
val entries : t -> int

val reset : t -> unit
(** Forget the volatile cursor/count (does not touch PM). *)

val append : t -> off:int -> words:int -> (unit, [ `Log_full ]) result
(** Snapshot a range into the log and flush the entry with unordered
    clwbs (the caller decides when to fence).  [Error `Log_full]
    appends nothing; existing entries stay valid. *)

val touch_metadata : t -> unit
(** Persist a log-metadata update (stage transitions): header store +
    clwb, ordered by the caller. *)

val invalidate : t -> unit
(** Durably invalidate the log (store + clwb + sfence) and reset. *)

val rollback : t -> entries_valid:int -> unit
(** Apply the first [entries_valid] undo entries in reverse, restoring
    the snapshots, then durably invalidate. *)

val recover : t -> bool
(** Crash recovery: roll back if the durable count is non-zero.
    Returns whether a rollback happened. *)
