(** On-PM layout of a Backup-policy slot ("Don't Persist All"): the
    4-word descriptor node a Backup slot's root points at, and the Raw
    op-log block whose per-cacheline checksummed entries make each
    operation durable with a single clwb.  See the implementation header
    for the full protocol and crash argument. *)

val magic : int
(** Scalar payload of a descriptor's word 0; large enough that no
    structure root's scalar (bitmap, size, ...) collides with it. *)

val magic_word : Pmem.Word.t
val is_magic : Pmem.Word.t -> bool

val desc_words : int
(** Descriptor body size (4). *)

val d_magic : int
val d_nonce : int
val d_anchor : int
val d_log : int
(** Word indices inside the descriptor body. *)

val entry_stride : int
(** Words per log entry = words per cacheline: a torn crash can damage
    at most the entry being appended. *)

val log_capacity : int
(** Entries per log; a full log forces a checkpoint. *)

val log_alloc_words : int
(** Body words to allocate for a log so [log_capacity] line-aligned
    entries fit at any body alignment. *)

val first_entry_off : int -> int
(** First (line-aligned) entry word inside a log body. *)

val entry_off : int -> index:int -> int

val entry_checksum :
  nonce:int -> index:int -> opcode:int -> a0:Pmem.Word.t -> a1:Pmem.Word.t ->
  int
(** Checksum binding an entry to its descriptor (nonce), its position,
    and its payload -- stale entries from a recycled log block can never
    validate against a fresh nonce. *)

val append :
  Heap.t -> log:int -> nonce:int -> index:int -> opcode:int ->
  a0:Pmem.Word.t -> a1:Pmem.Word.t -> unit
(** The Backup commit's durable write: one line of stores + one clwb,
    ordered (made durable) by the next fence. *)

val read_entry :
  load:(int -> Pmem.Word.t) -> log:int -> nonce:int -> index:int ->
  (int * Pmem.Word.t * Pmem.Word.t) option
(** Validate entry [index]; [None] on checksum miss.  [load] abstracts
    live-region vs offline-array reads; a media fault it raises
    propagates. *)

val valid_entries :
  load:(int -> Pmem.Word.t) -> log:int -> nonce:int ->
  (int * Pmem.Word.t * Pmem.Word.t) list
(** The committed prefix: entries from 0 until the first invalid one. *)
