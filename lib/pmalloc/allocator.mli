(** Persistent-memory allocator (the role nvm_malloc plays in the paper,
    Section 4.2 recipe step 1).

    Small blocks are served by per-size-class bump arenas ({!Arena}):
    a recycle-stack pop or a pointer bump, never a list search.  Odd
    and large sizes fall back to segregated free lists with splitting
    and neighbor coalescing, else bump a frontier, growing the
    simulated region on demand.  Block headers are one packed word
    written through the normal store path; they become durable with the
    rest of the block when the owning FASE flushes and fences.

    All bookkeeping that recovery can reconstruct is volatile: free lists,
    the frontier, and the reference counts (paper Section 5.3) -- so
    freeing and refcounting never write PM, and the Section 5.4 checker
    sees no in-place writes from reclamation. *)

type t

val create : Pmem.Region.t -> heap_start:int -> t

val alloc : t -> kind:Block.kind -> words:int -> int
(** Allocate a block with [words] usable body words; returns the body
    offset.  The fresh block has reference count 1 (the owned reference
    handed to whoever installs the pointer). *)

val free : t -> int -> unit
(** Return a block to the free lists.  Raises on double free. *)

val release : t -> int -> unit
(** Drop a reference; at zero, recursively release pointer children (of
    [Scanned] blocks) and free.  CommitSingle's reclamation step.
    Blocks freed this way are {e epoch-deferred}: they leave the live
    set immediately but only become allocatable after {e two}
    {!epoch_flush}es (fences).  One fence drains the commit's root
    write; the second retires the stale ping-pong record copy that still
    references the superseded version, which [Heap.root_get] may fall
    back to when the fresh copy is torn or media-bad. *)

val epoch_flush : t -> unit
(** Age the deferral pipeline one epoch and free blocks that have
    survived two fences.  Called by [Heap.sfence] after the fence
    completes. *)

val deferred_words : t -> int
(** Words currently parked in the two-stage deferral pipeline (not yet
    allocatable).  O(1): a running counter maintained at dealloc and
    {!epoch_flush}, not a fold over the pipeline. *)

val retain : t -> int -> unit
val rc_get : t -> int -> int
val rc_incr : t -> int -> unit
val rc_decr : t -> int -> int
val rc_set : t -> int -> int -> unit

val flush_block : t -> int -> unit
(** clwb header + initialized body; no fence (recipe step 3). *)

val capacity_of : t -> int -> int
val used_of : t -> int -> int
val kind_of : t -> int -> Block.kind
val is_allocated : t -> int -> bool

val region : t -> Pmem.Region.t
val heap_start : t -> int
val frontier : t -> int
val live_words : t -> int
val high_water_words : t -> int
val allocations : t -> int
val frees : t -> int
val free_words : t -> int

val alloc_words_total : t -> int
(** Monotone count of words ever allocated (never decremented by frees);
    diffing it across a span measures that span's shadow allocations. *)

val pad_words : t -> int
(** Sub-[min_capacity] alignment slivers stranded by arena segment
    alignment.  Part of the conservation identity: [live_words +
    free_words + deferred_words + pad_words = frontier - heap_start]
    for any crash-free alloc/release/fence history. *)

val coalesces : t -> int
(** Neighbor merges the free lists have performed (fragmentation
    telemetry: split tails re-fusing with adjacent free extents). *)

val freelist_entries : t -> int
(** Live free-list entries across all bins -- the fragmentation gauge
    the coalescing counter drives down. *)

val arena_segments : t -> int
(** Bump segments opened since creation/reset. *)

val arena_recycled_words : t -> int
(** Words currently parked on arena recycle stacks (a component of
    {!free_words}). *)

val reset_fresh : t -> unit
(** Return all volatile state (free lists, refcounts, deferral list,
    counters, frontier) to the just-created state.  Pairs with rewinding
    the region to a pristine snapshot: together they are equivalent to a
    fresh heap without the O(capacity) construction cost. *)

(** {1 Recovery support} ({!Recovery_gc})} *)

val recovery_reset : t -> frontier:int -> unit
val recovery_insert_free : t -> body:int -> capacity:int -> unit
val recovery_declare_live : t -> body:int -> capacity:int -> rc:int -> unit
