(** A persistent heap: simulated PM region + allocator + a durable root
    directory through which applications locate their recoverable
    datastructures across crashes (the paper's per-heap "root pointer",
    Section 5.1). *)

type t

val root_slots : int
(** Number of root-directory slots (word 0 .. root_slots-1 of the region). *)

val create : ?capacity_words:int -> ?trace:bool -> ?seed:int -> unit -> t
(** Fresh heap with all root slots durably null.  [trace] enables the
    Section 5.4 event trace; [seed] drives crash nondeterminism. *)

val region : t -> Pmem.Region.t
val allocator : t -> Allocator.t
val stats : t -> Pmem.Stats.t
val trace : t -> Pmem.Trace.t

val root_get : t -> int -> Pmem.Word.t
(** Read a root slot (a persistent pointer or null). *)

val root_set : t -> int -> Pmem.Word.t -> unit
(** The 8-byte atomic root update at the heart of Commit: one store plus a
    weakly-ordered flush; the flush is ordered by the {e next} fence
    (epoch persistency) -- losing it in a crash merely re-exposes the
    previous consistent version. *)

val alloc : t -> kind:Block.kind -> words:int -> int
(** Allocate a block; returns the body offset.  The fresh block carries
    one owned reference. *)

val free : t -> int -> unit
val release : t -> int -> unit
(** Drop a reference; at zero, recursively release children and free.
    Release-path frees are epoch-deferred: the blocks become allocatable
    only at the next {!sfence}, once the commit's root write that
    unlinked them is guaranteed durable (see {!Allocator.release}). *)

val retain : t -> int -> unit
val flush_block : t -> int -> unit
(** clwb every cacheline of a block (header + initialized body); no fence. *)

val load : t -> int -> Pmem.Word.t
val store : t -> int -> Pmem.Word.t -> unit
val clwb : t -> int -> unit
val clwb_range : t -> int -> int -> unit
val sfence : t -> unit
(** Drain all in-flight flushes, then hand epoch-deferred frees back to
    the allocator (the previous commit's root write is now durable, so
    no durable root can reference them). *)

val crash : ?mode:Pmem.Region.crash_mode -> ?seed:int -> t -> unit
(** Inject a power failure; [seed] pins the [Randomize] survival
    outcomes for replay (see {!Pmem.Region.crash}). *)

val pristine_snapshot : t -> Pmem.Region.snapshot
(** Snapshot of the just-created heap (take it before any application
    work), for {!reset_fresh}. *)

val reset_fresh : t -> pristine:Pmem.Region.snapshot -> unit
(** Rewind the region to the pristine snapshot and reset all volatile
    allocator state: observably equivalent to a fresh {!create} with the
    same parameters, but O(state touched since the snapshot) when the
    region is in [Journal] snapshot mode. *)
