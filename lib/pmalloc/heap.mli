(** A persistent heap: simulated PM region + allocator + a durable root
    directory through which applications locate their recoverable
    datastructures across crashes (the paper's per-heap "root pointer",
    Section 5.1). *)

type t

val root_slots : int
(** Number of root-directory slots.  Each slot is stored as a checksummed
    ping-pong pair of record copies (see below); the directory occupies
    the region's first {!root_directory_words} words and the heap proper
    starts after it. *)

val root_directory_words : int
(** Size of the on-PM root directory in words ([8 * root_slots]).  A
    record copy is three words -- value, sequence number, checksum over
    (value, slot, seq) -- padded to a 4-word cell so it never straddles
    a cacheline; slot [s] keeps copy 0 at word [4*s] and copy 1 one bank
    later.  {!root_set} overwrites only the stale copy, so at most one
    copy is ever in flight when a crash hits: torn crashes and media
    faults can invalidate at most that copy, and {!root_get} falls back
    to the survivor. *)

type policy = Full | Backup
(** Per-slot commit policy ("Don't Persist All").  [Full] is the paper's
    MOD protocol: every shadow node is clwb'd before the commit fence.
    [Backup] persists only a per-op log entry plus periodic checkpoint
    anchors; interior nodes stay volatile-clean and the structure is
    reconstructed after a crash by replaying the log from the anchor. *)

val policy_name : policy -> string

val policy_words : int
(** One durable policy word per slot, stored at
    [root_directory_words + slot]: 0 = Full, 1 = Backup.  Written once at
    promotion, ordered before the descriptor root swing by the promotion
    commit's fence. *)

val policy_off : int -> int
(** Word offset of slot [s]'s durable policy word (offline inspection). *)

val heap_start_words : int
(** First word of the block heap: the root directory plus the policy
    directory ([root_directory_words + policy_words]). *)

exception Torn_root of { slot : int }
(** Raised by {!root_get} when {e both} copies of a slot's record fail
    checksum validation: the root is detectably corrupt and there is no
    survivor to fall back to.  (If a copy's line faults on read instead,
    {!Pmem.Region.Media_fault} propagates.)  Never raised for a root that
    merely lost an unfenced update -- that re-exposes the previous
    value. *)

val create :
  ?capacity_words:int -> ?trace:bool -> ?seed:int -> ?file:string -> unit -> t
(** Fresh heap with all root slots durably null.  [trace] enables the
    Section 5.4 event trace; [seed] drives crash nondeterminism.  With
    [~file:path] the heap is file-backed (see {!Pmem.Region.create}):
    every fence commits the durable image's changed lines to [path] as
    one failure-atomic batch, and the heap survives [kill -9].  Creating
    truncates an existing image; reopen with {!open_file}. *)

val open_file :
  ?trace:bool ->
  ?seed:int ->
  path:string ->
  unit ->
  t * [ `None | `Replayed of int | `Discarded ]
(** Reopen an existing image file as a heap: the region layer replays or
    discards the sidecar journal and checksum-verifies the image (see
    {!Pmem.Region.open_file}); the returned heap's allocator is empty and
    must be rebuilt by the reachability analysis before allocating --
    call {!Recovery.open_file} instead unless you are the recovery layer.
    Raises {!Pmem.Backing.Bad_image} for unusable images. *)

val close : t -> unit
(** Commit outstanding durable-image changes to the backing file (if
    any) and release its descriptors.  No-op for memory-backed heaps. *)

val region : t -> Pmem.Region.t
val allocator : t -> Allocator.t
val stats : t -> Pmem.Stats.t
val trace : t -> Pmem.Trace.t

(** {1 Instance-scoped telemetry}

    A heap optionally carries the {!Telemetry.t} collector metering it.
    Collectors are per-heap, not process-wide, so N shard heaps in one
    process each keep their own histograms and fence-stall attribution;
    the durable-structure entry points thread the collector through
    {!span}. *)

val telemetry : t -> Telemetry.t option
(** The collector this heap carries, if any. *)

val set_telemetry : t -> Telemetry.t option -> unit
(** Attach (or detach) an existing collector.  The collector should
    watch this heap's {!stats} block; {!attach_telemetry} guarantees
    that. *)

val attach_telemetry : ?sink:Telemetry.Sink.t -> t -> Telemetry.t
(** Create a collector watching this heap's stats block, wire its
    allocator-occupancy gauges, attach it, and return it.  Replaces any
    previously attached collector.  Default sink: [Memory]. *)

val span :
  t -> structure:string -> op:string -> ?ops:int -> (unit -> 'a) -> 'a
(** [span t ~structure ~op f] runs [f] under the heap's collector (see
    {!Telemetry.span_on}); with no collector attached it falls back to
    the deprecated process-wide one, and with neither it is a couple of
    word reads. *)

val root_get : t -> int -> Pmem.Word.t
(** Read a root slot (a persistent pointer or null).  Validates both
    copies' checksums and serves the valid copy with the newest sequence
    number; a torn or media-bad copy is survived by falling back to the
    other, which holds the latest or previous committed value.  Raises
    {!Torn_root} (or re-raises [Media_fault]) only when both copies are
    unusable. *)

val root_get_versioned : t -> int -> Pmem.Word.t * int
(** {!root_get} plus the serving copy's sequence number -- the version
    tag a caller must present to {!root_cas}.  The sequence increases by
    at least one on every successful root update, so observing an
    unchanged tag proves the slot was not written in between. *)

val root_set : t -> int -> Pmem.Word.t -> unit
(** The root update at the heart of Commit: write the {e stale} copy of
    the checksummed record (all three words inside one cacheline) and
    launch one weakly-ordered flush; the flush is ordered by the {e
    next} fence (epoch persistency) -- losing it in a crash merely
    re-exposes the other copy, the previous consistent version. *)

type commit_mode = Swing | Cas
(** How Full-policy commits install their root.  [Swing] is the paper's
    single-writer 8-byte atomic store ({!root_set}); [Cas] routes the
    same record update through {!root_cas}, the lock-free path
    concurrent writers use.  Volatile, whole-heap; reset to [Swing] by
    {!reset_fresh}. *)

val commit_mode : t -> commit_mode
val set_commit_mode : t -> commit_mode -> unit

val root_cas :
  t ->
  int ->
  expected:Pmem.Word.t ->
  expected_seq:int ->
  desired:Pmem.Word.t ->
  bool
(** Counted compare-and-swap on a root slot, modelling a double-word
    (pointer + counter) hardware CAS: atomically (with respect to other
    simulated writers -- see {!Pmem.Region.atomic}) compare the slot's
    current record against [(expected, expected_seq)] (both from one
    {!root_get_versioned}) and, on a match, write [desired] via the same
    stale-copy ping-pong record update as {!root_set}.  Returns whether
    the swap happened.  The sequence number is the ABA tag: a root that
    raced back to a bit-identical pointer value (reclaimed address
    reused by a later version) fails the compare, where a plain
    value-compare would wrongly succeed and install a shadow built from
    a dead version.  Crash-wise it is exactly a {!root_set}: a power cut
    mid-record re-exposes the surviving copy. *)

val root_record_stores : t -> int -> Pmem.Word.t -> (int * Pmem.Word.t) list
(** [(offset, word)] stores that write slot [s]'s record for a given
    value into the currently stale copy -- for callers that must route
    the root swing through another write path (e.g. a PM-STM
    transaction) instead of {!root_set}. *)

val root_record_ranges : int -> (int * int) list
(** [(offset, words)] extents of the two copies of slot [s]'s record
    (for undo logging and fault injection). *)

val invalidate_root_cache : t -> unit
(** Drop the incremental root-record cache, forcing the next access to
    each slot back through full two-copy checksum validation.  The cache
    already self-invalidates on crash / restore / corruption / media
    faults (it is bound to [Pmem.Region.integrity_epoch]); call this
    when record words may have been rewritten through a path the heap
    cannot see, e.g. a PM-STM transaction replaying
    {!root_record_stores} or recovery rewriting records in place. *)

val active_root_copy : t -> int -> int
(** Index (0 or 1) of the copy {!root_get} would currently serve;
    raises {!Torn_root} when neither validates.  Diagnostics/tests. *)

val root_torn_detected : t -> int
(** Times a root-record copy failed checksum validation (volatile
    diagnostic counter; reset by {!reset_fresh}). *)

val root_fallbacks : t -> int
(** Times {!root_get} served a slot from its surviving copy because the
    other was torn or media-bad. *)

val alloc : t -> kind:Block.kind -> words:int -> int
(** Allocate a block; returns the body offset.  The fresh block carries
    one owned reference. *)

val free : t -> int -> unit
val release : t -> int -> unit
(** Drop a reference; at zero, recursively release children and free.
    Release-path frees are epoch-deferred: the blocks become allocatable
    only at the next {!sfence}, once the commit's root write that
    unlinked them is guaranteed durable (see {!Allocator.release}). *)

val retain : t -> int -> unit
val flush_block : t -> int -> unit
(** clwb every cacheline of a block (header + initialized body); no
    fence.  Inside a Backup update bracket ({!enter_backup_update}),
    Scanned blocks skip their clwbs and are parked in the backlog for
    the next checkpoint instead; Raw blocks always flush eagerly. *)

(** {1 Commit-policy state}

    The durable policy words are the source of truth; the per-slot
    Backup runtime state below is volatile, cleared by recovery and
    {!reset_fresh}, and rebuilt by the owning structure's log replay. *)

val get_policy : t -> int -> policy
(** The cached policy of a slot (refreshed from the durable words by
    recovery; [Full] on a freshly created or reopened heap until then). *)

val refresh_policies : t -> unit
(** Re-read the durable policy words into the cache.  Propagates
    [Media_fault] if a policy line is armed -- callers on the recovery
    path surface it as a typed degradation. *)

val set_policy_durable : t -> int -> policy -> unit
(** Store + clwb the slot's policy word and update the cache.  The write
    is ordered by the caller's next fence. *)

type backup_state = {
  mutable b_current : Pmem.Word.t;
      (** root of the live (possibly never-flushed) version *)
  mutable b_count : int;  (** valid entries appended to the durable log *)
  b_nonce : int;  (** nonce every valid entry's checksum is bound to *)
  b_desc : int;  (** descriptor body offset *)
  b_log : int;  (** op-log (Raw block) body offset *)
}

val backup_state : t -> int -> backup_state option
val install_backup_state :
  t -> int -> current:Pmem.Word.t -> count:int -> nonce:int -> desc:int ->
  log:int -> unit

val clear_backup_state : t -> int -> unit
val clear_backup_runtime : t -> unit
(** Drop all volatile Backup state (per-slot states, backlog, bracket
    depth) -- recovery calls this before any replay. *)

val next_root_seq : t -> int -> int
(** The sequence number the slot's next {!root_set} will stamp -- the
    nonce a fresh op log is bound to. *)

val enter_backup_update : t -> unit
val exit_backup_update : t -> unit
(** Bracket a Backup-policy pure update: while the depth is positive,
    {!flush_block} suppresses Scanned flushes into the backlog. *)

val in_backup_update : t -> bool

val flush_backlog : t -> unit
(** clwb every backlogged node still allocated (checkpoint step), then
    clear the backlog. *)

val load : t -> int -> Pmem.Word.t
val store : t -> int -> Pmem.Word.t -> unit
val clwb : t -> int -> unit
val clwb_range : t -> int -> int -> unit
val sfence : t -> unit
(** Drain all in-flight flushes, then hand epoch-deferred frees back to
    the allocator (the previous commit's root write is now durable, so
    no durable root can reference them). *)

val crash :
  ?mode:Pmem.Region.crash_mode -> ?seed:int -> ?torn:bool -> t -> unit
(** Inject a power failure; [seed] pins the [Randomize] survival
    outcomes for replay, [torn] enables per-word torn-line persistence
    (see {!Pmem.Region.crash}). *)

val pristine_snapshot : t -> Pmem.Region.snapshot
(** Snapshot of the just-created heap (take it before any application
    work), for {!reset_fresh}. *)

val reset_fresh : t -> pristine:Pmem.Region.snapshot -> unit
(** Rewind the region to the pristine snapshot and reset all volatile
    allocator state: observably equivalent to a fresh {!create} with the
    same parameters, but O(state touched since the snapshot) when the
    region is in [Journal] snapshot mode. *)

val record_copy_off : copy:int -> int -> int
(** Word offset of copy [copy] (0 or 1) of slot [s]'s root record --
    for offline image inspection ({!Fsck}) working on a raw word array. *)

val record_checksum : slot:int -> seq:int -> Pmem.Word.t -> int
(** The checksum word a valid record copy must carry for (value, slot,
    seq) -- exported for offline validation and repair. *)
