(** Recovery-time garbage collection (paper Section 5.3).

    After a crash the volatile allocator state (free lists, reference
    counts, frontier) is gone and the durable image may contain leaked
    blocks from an interrupted failure-atomic section.  Recovery performs a
    reachability analysis from the root directory:

    - every block reachable from a root slot is live; its reference count
      is recomputed as its in-degree in the object graph (the paper resets
      counts to 1 and rescans; recomputing exact in-degrees is the
      equivalent for structurally-shared trees);
    - all other space between the heap start and the highest live block is
      reclaimed into free extents;
    - the allocation frontier restarts after the last live block.

    Reachability only ever traverses blocks that were made durable by a
    completed commit (a block becomes reachable only after the fence that
    persisted it), so headers and payloads read here are never torn.
    Roots themselves are read through {!Heap.root_get}, so a torn or
    media-bad root record is either rescued from its secondary copy or
    surfaces as a typed failure before any graph walk trusts it.  When
    media faults are armed, the walk also scrubs raw-block payloads so an
    unreadable reachable line is detected {e now}, during recovery,
    rather than at first use. *)

type report = {
  live_blocks : int;
  live_words : int;
  reclaimed_extents : int;
  reclaimed_words : int;
  frontier : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "recovery: %d live blocks (%d words), reclaimed %d extents (%d words), \
     frontier %d"
    r.live_blocks r.live_words r.reclaimed_extents r.reclaimed_words r.frontier

let recover heap =
  let region = Heap.region heap in
  let allocator = Heap.allocator heap in
  (* Recovery runs right after a crash or reopen: every cached root-record
     view predates the failure and must be re-validated from PM. *)
  Heap.invalidate_root_cache heap;
  (* Volatile commit-policy state died with the crash; re-read the
     durable policy words (a media fault here propagates and is surfaced
     typed by the recovery wrapper).  Backup slots' volatile current
     versions are rebuilt later, by each structure's log replay -- the
     graph walk below only needs the descriptor/anchor/log blocks, which
     are ordinary reachable nodes. *)
  Heap.clear_backup_runtime heap;
  Heap.refresh_policies heap;
  (* Media scrub is only useful when faults can actually fire; without
     armed faults every load succeeds, so skip the extra payload reads
     (raw blocks can be large -- e.g. the PM-STM undo log). *)
  let scrub = Pmem.Region.media_fault_count region > 0 in
  (* body offset -> (header offset, capacity, in-degree) *)
  let reachable : (int, int * int * int) Hashtbl.t = Hashtbl.create 4096 in
  (* Explicit worklist: recursion here would be unbounded in the depth of
     the object graph, and list spines (dstack/dseq) reach hundreds of
     thousands of nodes. *)
  let pending = Stack.create () in
  let visit body =
    match Hashtbl.find_opt reachable body with
    | Some (header, capacity, indeg) ->
        Hashtbl.replace reachable body (header, capacity, indeg + 1)
    | None ->
        let header = Block.header_of_body body in
        (* one load serves capacity, kind *and* the scan limit: the
           packed header keeps the whole walk at one header read per
           block *)
        let hw = Pmem.Region.load region header in
        let capacity, kind, _allocated = Block.decode_info hw in
        let used = Block.decode_used hw in
        Hashtbl.replace reachable body (header, capacity, 1);
        Stack.push (body, used, kind) pending
  in
  let scan (body, used, kind) =
    match kind with
    | Block.Raw ->
        if scrub then
          for i = 0 to used - 1 do
            ignore (Pmem.Region.load region (body + i) : Pmem.Word.t)
          done
    | Block.Scanned ->
        for i = 0 to used - 1 do
          let w = Pmem.Region.load region (body + i) in
          if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
            visit (Pmem.Word.to_ptr w)
        done
  in
  for slot = 0 to Heap.root_slots - 1 do
    let w = Heap.root_get heap slot in
    if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
      visit (Pmem.Word.to_ptr w)
  done;
  while not (Stack.is_empty pending) do
    scan (Stack.pop pending)
  done;
  (* Sort live blocks by address to find the gaps between them. *)
  let blocks =
    Hashtbl.fold (fun body (header, cap, indeg) acc ->
        (header, cap, body, indeg) :: acc)
      reachable []
  in
  let blocks =
    List.sort (fun (h1, _, _, _) (h2, _, _, _) -> compare h1 h2) blocks
  in
  let frontier =
    List.fold_left
      (fun acc (h, cap, _, _) -> max acc (h + cap))
      Heap.heap_start_words blocks
  in
  Allocator.recovery_reset allocator ~frontier;
  let live_words = ref 0 in
  List.iter
    (fun (_, cap, body, indeg) ->
      Allocator.recovery_declare_live allocator ~body ~capacity:cap ~rc:indeg;
      live_words := !live_words + cap)
    blocks;
  let extents = ref 0 in
  let reclaimed = ref 0 in
  let cursor = ref Heap.heap_start_words in
  let reclaim_gap gap_start gap_end =
    let size = gap_end - gap_start in
    if size >= Block.min_capacity then begin
      Allocator.recovery_insert_free allocator
        ~body:(Block.body_of_header gap_start)
        ~capacity:size;
      incr extents;
      reclaimed := !reclaimed + size
    end
  in
  List.iter
    (fun (header, cap, _, _) ->
      if header > !cursor then reclaim_gap !cursor header;
      cursor := max !cursor (header + cap))
    blocks;
  {
    live_blocks = List.length blocks;
    live_words = !live_words;
    reclaimed_extents = !extents;
    reclaimed_words = !reclaimed;
    frontier;
  }
