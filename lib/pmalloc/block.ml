(** Persistent-heap block headers.

    Every heap block carries a {e one-word} header immediately before its
    body, packing four fields:
    - bit 0: allocated flag;
    - bit 1: block kind;
    - bits 2..25: physical capacity (in words, including the header);
    - bits 26..49: body words the owner actually initialized (the scan
      limit for the recovery garbage collector).

    A single word keeps header traffic to one store per allocation and
    one load per header decode -- the recovery scan and the flush path
    read capacity, kind and used out of the same cacheline word.

    Pointers handed to clients address the {e body}; the header lives at
    [body - header_words].  [Scanned] blocks contain only tagged words
    ({!Pmem.Word}), so reachability can be computed generically; [Raw]
    blocks hold opaque payload (string blobs) that must never be
    interpreted as pointers. *)

type kind = Scanned | Raw

let header_words = 1
let min_capacity = header_words + 2

(* 24 bits per size field: blocks up to 16M words (128 MB). *)
let field_bits = 24
let max_field = (1 lsl field_bits) - 1

let kind_to_bit = function Scanned -> 0 | Raw -> 1
let kind_of_bit = function 0 -> Scanned | _ -> Raw

let encode ~capacity ~used ~kind ~allocated =
  if capacity < 0 || capacity > max_field then
    invalid_arg "Block.encode: capacity out of range";
  if used < 0 || used > max_field then
    invalid_arg "Block.encode: used out of range";
  Pmem.Word.of_int
    ((used lsl (2 + field_bits))
    lor (capacity lsl 2)
    lor (kind_to_bit kind lsl 1)
    lor (if allocated then 1 else 0))

(* Decoders mask their fields, so they are total on arbitrary words --
   offline fsck feeds them raw image bytes and bounds-checks after. *)
let decode_info w =
  let v = Pmem.Word.to_int w in
  ((v lsr 2) land max_field, kind_of_bit ((v lsr 1) land 1), v land 1 = 1)

let decode_used w = (Pmem.Word.to_int w lsr (2 + field_bits)) land max_field

let header_of_body body = body - header_words
let body_of_header header = header + header_words
