(** Segregated free lists for the persistent-memory allocator, with
    neighbor coalescing.

    The lists themselves are volatile (ordinary OCaml state): after a crash
    they are reconstructed by the recovery garbage collector from the gaps
    between reachable blocks, exactly as the paper's reclamation design
    permits (Section 5.3: only reachability needs to be durable).

    Bins hold entries describing free extents.  Capacities up to
    [exact_max] get an exact-fit bin each; larger blocks fall into
    power-of-two buckets that are searched first-fit and split.

    Every insert checks both physical neighbors of the incoming extent
    (two O(1) hash probes on the extent's end offsets) and merges with
    any that are free, so split tails re-fuse with their siblings
    instead of fragmenting the heap into ever-smaller unusable shards.
    Merged-away constituents are marked dead and dropped lazily when a
    take pops them; the live-entry count and the coalesce counter are
    exported so fragmentation is observable. *)

let exact_max = 64
let buckets = 24 (* power-of-two classes above exact_max *)

type entry = { body : int; capacity : int; mutable dead : bool }

type t = {
  exact : entry list array; (* index = capacity, 0..exact_max *)
  coarse : entry list array; (* index = log2 class *)
  mutable free_words : int;
  (* physical-neighbor index for coalescing: a live entry keyed by the
     first word of its extent (its header offset) and by one-past its
     last word *)
  by_start : (int, entry) Hashtbl.t;
  by_end : (int, entry) Hashtbl.t;
  mutable entries : int; (* live entries across all bins *)
  mutable coalesces : int; (* neighbor merges performed *)
}

let create () =
  {
    exact = Array.make (exact_max + 1) [];
    coarse = Array.make buckets [];
    free_words = 0;
    by_start = Hashtbl.create 256;
    by_end = Hashtbl.create 256;
    entries = 0;
    coalesces = 0;
  }

let clear t =
  Array.fill t.exact 0 (Array.length t.exact) [];
  Array.fill t.coarse 0 (Array.length t.coarse) [];
  Hashtbl.reset t.by_start;
  Hashtbl.reset t.by_end;
  t.free_words <- 0;
  t.entries <- 0

let bucket_of capacity =
  let rec log2 n acc = if n <= exact_max then acc else log2 (n lsr 1) (acc + 1) in
  min (buckets - 1) (log2 capacity 0)

let start_of e = Block.header_of_body e.body
let end_of e = Block.header_of_body e.body + e.capacity

let unhash t e =
  Hashtbl.remove t.by_start (start_of e);
  Hashtbl.remove t.by_end (end_of e)

(* Remove a live entry that is being merged into a larger one.  Its bin
   cell stays behind marked dead and is dropped when a take reaches it. *)
let kill t e =
  unhash t e;
  e.dead <- true;
  t.free_words <- t.free_words - e.capacity;
  t.entries <- t.entries - 1

let bin_insert t e =
  if e.capacity <= exact_max then
    t.exact.(e.capacity) <- e :: t.exact.(e.capacity)
  else begin
    let b = bucket_of e.capacity in
    t.coarse.(b) <- e :: t.coarse.(b)
  end;
  Hashtbl.replace t.by_start (start_of e) e;
  Hashtbl.replace t.by_end (end_of e) e;
  t.free_words <- t.free_words + e.capacity;
  t.entries <- t.entries + 1

let insert t ~body ~capacity =
  if capacity >= Block.min_capacity then begin
    let start = Block.header_of_body body in
    let fin = start + capacity in
    (* merge with the physically adjacent free extents, if any; the
       lists never hold two adjacent live extents, so one probe per
       side is exhaustive *)
    let fin =
      match Hashtbl.find_opt t.by_start fin with
      | Some succ ->
          kill t succ;
          t.coalesces <- t.coalesces + 1;
          end_of succ
      | None -> fin
    in
    let start =
      match Hashtbl.find_opt t.by_end start with
      | Some pred ->
          kill t pred;
          t.coalesces <- t.coalesces + 1;
          start_of pred
      | None -> start
    in
    bin_insert t
      { body = Block.body_of_header start; capacity = fin - start; dead = false }
  end

let free_words t = t.free_words
let live_entries t = t.entries
let coalesces t = t.coalesces

let take t e =
  unhash t e;
  t.free_words <- t.free_words - e.capacity;
  t.entries <- t.entries - 1;
  Some e

(* Take a block of exactly [capacity] words if one is on an exact bin. *)
let take_exact t capacity =
  if capacity > exact_max then None
  else begin
    (* drop dead cells left behind by coalescing *)
    let rec pop = function
      | e :: rest when e.dead ->
          t.exact.(capacity) <- rest;
          pop rest
      | e :: rest ->
          t.exact.(capacity) <- rest;
          take t e
      | [] -> None
    in
    pop t.exact.(capacity)
  end

(* First-fit search of the coarse buckets for a block of at least
   [capacity] words.  The found block is removed; the caller splits. *)
let take_at_least t capacity =
  let found = ref None in
  let b = ref (bucket_of capacity) in
  while !found = None && !b < buckets do
    let keep = ref [] in
    let rec scan = function
      | [] -> ()
      | e :: rest when e.dead -> scan rest
      | e :: rest ->
          if !found = None && e.capacity >= capacity then begin
            found := take t e;
            keep := List.rev_append !keep rest
          end
          else begin
            keep := e :: !keep;
            scan rest
          end
    in
    scan t.coarse.(!b);
    t.coarse.(!b) <- List.rev !keep;
    incr b
  done;
  (* Fall back to scavenging larger exact bins. *)
  if !found = None && capacity <= exact_max then begin
    let c = ref capacity in
    while !found = None && !c <= exact_max do
      (match take_exact t !c with
      | Some _ as e -> found := e
      | None -> ());
      incr c
    done
  end;
  !found

let iter t fn =
  let live l = List.iter (fun e -> if not e.dead then fn e) l in
  Array.iter live t.exact;
  Array.iter live t.coarse
