(** On-PM layout of a Backup-policy slot ("Don't Persist All").

    A slot whose policy word is [Backup] does not point at a structure
    version; it points at a 4-word {e descriptor} node:

    - word 0: magic (scalar) -- distinguishes a descriptor from any
      structure root (CHAMP bitmaps, vector sizes, ... are all small
      scalars or pointers; the magic is a large scalar constant);
    - word 1: nonce (scalar) -- the root-record sequence number the
      descriptor was installed under; every valid log entry's checksum
      is bound to it, so entries surviving in a recycled log block from
      an earlier descriptor can never validate;
    - word 2: anchor -- the last checkpointed version (fully flushed at
      checkpoint time), or null for a fresh structure;
    - word 3: pointer to the op log, a [Raw] block.

    The log holds up to {!log_capacity} fixed-stride entries, one per
    cacheline (the first entry is line-aligned inside the block), each
    [checksum; opcode; arg0; arg1].  Appending an entry is the Backup
    commit: 4 stores + 1 clwb, drained by the next operation's fence
    (epoch persistency, the same durability window as the Full root
    swing).  Entries are append-only and the valid prefix is
    self-delimiting: recovery replays entries from the anchor until the
    first checksum miss, which is exactly the committed prefix (plus, at
    most, the in-flight entry of the interrupted op -- the oracle's
    pending state).  The log body is never zeroed: garbage from the
    block's previous life cannot checksum against a fresh nonce.

    Arguments are {e scalars only}.  Operations carrying pointer
    arguments (blob keys, structure-to-structure appends) cannot be
    replayed from a log line and escalate to a checkpoint instead.

    Validation is parameterized over a [load] closure so the same code
    runs against a live region ({!Heap.load}) and against a raw word
    array (offline {!Fsck}). *)

(* Large scalar, far outside any structure root's scalar range. *)
let magic = 0x4D42_4B50_0001
let magic_word = Pmem.Word.of_int magic
let is_magic w = (not (Pmem.Word.is_ptr w)) && Pmem.Word.to_int w = magic

let desc_words = 4
let d_magic = 0
let d_nonce = 1
let d_anchor = 2
let d_log = 3

(* One entry per cacheline: a torn crash can damage at most the entry
   being appended, and its checksum miss truncates the replay there. *)
let entry_stride = Pmem.Config.words_per_line
let log_capacity = 32

(* First line-aligned word of the log body: every entry then owns
   exactly one line. *)
let first_entry_off log =
  (log + entry_stride - 1) / entry_stride * entry_stride

(* Body words needed so [log_capacity] aligned entries fit whatever the
   body's alignment. *)
let log_alloc_words = (entry_stride - 1) + (log_capacity * entry_stride)

let entry_off log ~index = first_entry_off log + (index * entry_stride)

(* Avalanche mix binding an entry to its descriptor (nonce), position
   (index) and payload; 60-bit constants as in [Heap.checksum]. *)
let entry_checksum ~nonce ~index ~opcode ~a0 ~a1 =
  let x =
    nonce
    lxor ((index + 1) * 0x9E3779B97F4A7C1)
    lxor ((opcode + 1) * 0xD1B54A32D192ED0)
    lxor Pmem.Word.bits a0
  in
  let x = x lxor (Pmem.Word.bits a1 * 0x2545F4914F6CDD1) in
  let x = x lxor (x lsr 33) in
  let x = x * 0xFF51AFD7ED558C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xC4CEB9FE1A85EC5 in
  x lxor (x lsr 32)

(* The Backup commit's durable write: one line of stores + one clwb,
   ordered by the next fence. *)
let append heap ~log ~nonce ~index ~opcode ~a0 ~a1 =
  if index < 0 || index >= log_capacity then
    invalid_arg (Printf.sprintf "Backup.append: log index %d out of range" index);
  let e = entry_off log ~index in
  Heap.store heap e
    (Pmem.Word.raw (entry_checksum ~nonce ~index ~opcode ~a0 ~a1));
  Heap.store heap (e + 1) (Pmem.Word.of_int opcode);
  Heap.store heap (e + 2) a0;
  Heap.store heap (e + 3) a1;
  Heap.clwb heap e

(* Read and validate entry [index] through [load].  [None] = checksum
   miss (end of the committed prefix, or torn/garbage line).  A media
   fault raised by [load] propagates -- recovery surfaces it typed. *)
let read_entry ~load ~log ~nonce ~index =
  let e = entry_off log ~index in
  let c = Pmem.Word.bits (load e) in
  let opcode_w = load (e + 1) in
  let a0 = load (e + 2) in
  let a1 = load (e + 3) in
  if Pmem.Word.is_ptr opcode_w then None
  else
    let opcode = Pmem.Word.to_int opcode_w in
    if opcode >= 0 && entry_checksum ~nonce ~index ~opcode ~a0 ~a1 = c then
      Some (opcode, a0, a1)
    else None

(* The committed prefix: entries 0.. until the first invalid one. *)
let valid_entries ~load ~log ~nonce =
  let rec go index acc =
    if index >= log_capacity then List.rev acc
    else
      match read_entry ~load ~log ~nonce ~index with
      | Some e -> go (index + 1) (e :: acc)
      | None -> List.rev acc
  in
  go 0 []
