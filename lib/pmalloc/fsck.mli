(** Offline image checker and repairer ([modpm fsck]).

    Validates the {e effective} image (file with a committed sidecar
    journal applied, a torn one ignored) without mutating disk unless
    {!repair} is called: file structure, whole-image checksum, both
    copies of every root record, a bounds- and header-validating
    reachability walk per root, and -- for slots whose durable policy
    word says Backup -- the descriptor/op-log shape on top.  An image
    whose interior nodes were never flushed is still [Clean] under
    Backup (interior-absent is the point of the policy); a damaged
    anchor, log or descriptor is [Corrupt]. *)

type verdict = Clean | Repaired | Degraded | Corrupt

val verdict_name : verdict -> string

type slot_status =
  | Dual  (** both record copies validate *)
  | Single of int  (** only copy 0 or copy 1 validates *)
  | Dead  (** neither copy validates *)

type report = {
  verdict : verdict;
  detail : string list;  (** human-readable findings, worst first *)
  journal : Pmem.Backing.journal_status;
  checksum_ok : bool;
  slots : (int * slot_status) list;  (** non-[Dual] slots only *)
  unreachable_slots : int list;  (** slots whose object walk failed *)
  live_blocks : int;
  quarantined : int list;  (** repair only: slots nulled *)
}

val pp_report : Format.formatter -> report -> unit

val check : string -> report
(** Read-only validation of the image at [path].  Never raises on a
    damaged file: unreadable images come back as [Corrupt] reports. *)

val repair : string -> report
(** Resolve the journal, restore dual-copy root redundancy from each
    slot's surviving copy, quarantine slots with no usable copy or an
    unwalkable object graph (nulling the root and demoting its policy
    word to Full), and atomically rewrite the image.  The result always
    reopens; quarantined slots are reported, never silently
    resurrected. *)
