(** Per-size-class bump arenas for the shadow-node hot path.

    The MOD commit protocol allocates a handful of small shadow nodes per
    operation and releases the superseded ones at the next fence.  Serving
    that churn from segregated free lists costs a search per allocation;
    the arenas reduce it to a pointer bump (fresh segment) or a stack pop
    (recycled block), both O(1) with no scan.

    Strides are chosen so blocks never straddle a cacheline boundary they
    could have avoided -- on PM the cost of a node is the number of lines
    it touches, not its word count:
    - stride 4 serves capacities 3..4 (two blocks per cacheline);
    - stride 8 serves capacities 5..8 (one block per cacheline);
    - capacities 9..[max_class] round up to the next multiple of 8
      (strides 16, 24, ..., [max_class]), so inside a line-aligned
      segment every block starts on a line boundary and spans exactly
      [stride/8] lines.  The rounded-up slack stays inside the block's
      recorded capacity, so the conservation identity is untouched; the
      line-count saving on every store, flush and cold read of the block
      outweighs the padded words (paper-adjacent result: line-granularity
      layout dominates PM cost).

    Classes own disjoint {e segments} -- cacheline-aligned extents carved
    from the allocation frontier (or from a large free extent) in bulk,
    handed out block by block by bumping a cursor.  Freed blocks of a
    class stride are pushed on the class's recycle stack and handed back
    LIFO, so a hot commit loop reuses the same few cachelines.

    All arena state is volatile, like the free lists: recovery rebuilds
    allocation metadata from reachability and the arenas restart empty. *)

let max_class = 72

(* Segments hold [segment_blocks] blocks; bounded words per refill keeps
   small heaps from over-reserving while still amortizing refill cost. *)
let segment_blocks stride = max 8 (min 64 (1024 / stride))
let segment_words stride = segment_blocks stride * stride

let stride_of capacity =
  if capacity <= 4 then 4
  else if capacity <= 8 then 8
  else (capacity + 7) land lnot 7

(* Capacities that are themselves a class stride recycle through the
   arena; everything else goes back to the free lists. *)
let is_stride c = c = 4 || (c >= 8 && c <= max_class && c land 7 = 0)

type cls = {
  stride : int;
  mutable bump : int; (* next header offset in the open segment *)
  mutable limit : int; (* one past the open segment's last word *)
  mutable stack : int array; (* recycled header offsets, LIFO *)
  mutable sp : int;
}

type t = {
  classes : cls array; (* indexed by stride *)
  mutable recycled_words : int; (* words parked on recycle stacks *)
  mutable open_words : int; (* unbumped words in open segments *)
  mutable segments : int; (* segments ever opened (telemetry) *)
}

let create () =
  {
    classes =
      Array.init (max_class + 1) (fun stride ->
          { stride; bump = 0; limit = 0; stack = [||]; sp = 0 });
    recycled_words = 0;
    open_words = 0;
    segments = 0;
  }

let reset t =
  Array.iter
    (fun c ->
      c.bump <- 0;
      c.limit <- 0;
      c.sp <- 0)
    t.classes;
  t.recycled_words <- 0;
  t.open_words <- 0;
  t.segments <- 0

let free_words t = t.recycled_words + t.open_words
let recycled_words t = t.recycled_words
let open_words t = t.open_words
let segments t = t.segments

(* O(1) hot path: recycled block if one is parked, else bump the open
   segment.  [None] means the caller must refill (or fall back). *)
let take t stride =
  let c = t.classes.(stride) in
  if c.sp > 0 then begin
    c.sp <- c.sp - 1;
    t.recycled_words <- t.recycled_words - stride;
    Some c.stack.(c.sp)
  end
  else if c.bump < c.limit then begin
    let header = c.bump in
    c.bump <- c.bump + stride;
    t.open_words <- t.open_words - stride;
    Some header
  end
  else None

let recycle t ~header ~stride =
  let c = t.classes.(stride) in
  if c.sp = Array.length c.stack then begin
    let grown = Array.make (max 64 (2 * Array.length c.stack)) 0 in
    Array.blit c.stack 0 grown 0 c.sp;
    c.stack <- grown
  end;
  c.stack.(c.sp) <- header;
  c.sp <- c.sp + 1;
  t.recycled_words <- t.recycled_words + stride

(* Install a fresh segment for [stride].  Only legal when the class's
   open segment is exhausted (segments are multiples of the stride, so
   the bump cursor lands exactly on the limit). *)
let refill t ~stride ~start ~words =
  let c = t.classes.(stride) in
  assert (c.bump >= c.limit);
  c.bump <- start;
  c.limit <- start + words;
  t.open_words <- t.open_words + words;
  t.segments <- t.segments + 1
