(** Persistent-memory allocator (the paper uses nvm_malloc in the same
    role: recipe step 1, Section 4.2).

    Allocation serves from segregated free lists, splitting large blocks,
    and otherwise bumps a frontier, growing the simulated region on demand.
    Headers are written through the normal store path so they become
    durable together with the rest of the block when the owning
    failure-atomic section flushes and fences.

    Reference counts are deliberately volatile (paper Section 5.3: they
    never need to be durable because recovery recomputes them), kept in an
    OCaml-side table rather than in simulated PM so that the Section 5.4
    trace checker sees no in-place PM writes from refcount maintenance.

    Reclamation through {!release} is {e epoch-deferred}: a superseded
    version is released right after the commit's 8-byte root write, but
    that write's clwb is only ordered by the {e next} FASE's fence (epoch
    persistency, Section 5.1).  Until that fence completes, a crash can
    still re-expose the old version as the durable root -- so its blocks
    must not be handed back to allocation, or the next FASE's stores
    (which a cache eviction can persist at any moment) would corrupt a
    state recovery may legitimately return to.

    The deferral spans {e two} fences, not one.  The heap's ping-pong
    root records keep the previous committed version reachable through
    the stale record copy until the next commit overwrites that copy
    {e and} the overwrite's flush is fenced -- one commit plus one fence
    after the release.  [root_get] falls back to the stale copy when the
    fresh one is torn or media-bad, so the version it references must
    stay intact that long.  Released blocks therefore park on [deferred],
    age into [deferred_prev] at the first [sfence], and enter the free
    lists at the second, once neither record copy can reference them.
    Plain {!free} is immediate: its callers (the PM-STM undo path) only
    free blocks whose last durable reference was already retired under a
    fence. *)

type t = {
  region : Pmem.Region.t;
  heap_start : int;
  mutable frontier : int;
  freelist : Freelist.t;
  rc : (int, int) Hashtbl.t; (* body offset -> reference count *)
  mutable deferred : (int * int) list; (* (body, capacity) awaiting fence *)
  mutable deferred_prev : (int * int) list; (* aged one fence; free at next *)
  mutable live_words : int;
  mutable high_water_words : int;
  mutable allocations : int;
  mutable frees : int;
  mutable alloc_words_total : int;
      (* monotone: words ever handed out; telemetry spans diff it to
         attribute shadow-allocation volume per operation *)
}

let create region ~heap_start =
  {
    region;
    heap_start;
    frontier = heap_start;
    freelist = Freelist.create ();
    rc = Hashtbl.create 4096;
    deferred = [];
    deferred_prev = [];
    live_words = 0;
    high_water_words = 0;
    allocations = 0;
    frees = 0;
    alloc_words_total = 0;
  }

let region t = t.region
let heap_start t = t.heap_start
let frontier t = t.frontier
let live_words t = t.live_words
let high_water_words t = t.high_water_words
let allocations t = t.allocations
let frees t = t.frees
let free_words t = Freelist.free_words t.freelist
let alloc_words_total t = t.alloc_words_total

let account_alloc t capacity =
  t.live_words <- t.live_words + capacity;
  if t.live_words > t.high_water_words then t.high_water_words <- t.live_words;
  t.allocations <- t.allocations + 1;
  t.alloc_words_total <- t.alloc_words_total + capacity

(* Write the header of a fresh block.  Plain stores: the block's lines get
   durable when the owning FASE flushes them and fences. *)
let write_header t ~body ~capacity ~kind ~used =
  let header = Block.header_of_body body in
  Pmem.Region.store t.region header
    (Block.encode_info ~capacity ~kind ~allocated:true);
  Pmem.Region.store t.region (header + 1) (Block.encode_used used)

let alloc t ~kind ~words =
  if words <= 0 then invalid_arg "Allocator.alloc: empty block";
  let capacity = max Block.min_capacity (words + Block.header_words) in
  let body, capacity =
    match Freelist.take_exact t.freelist capacity with
    | Some e -> (e.Freelist.body, e.Freelist.capacity)
    | None -> (
        match Freelist.take_at_least t.freelist capacity with
        | Some e ->
            let spare = e.Freelist.capacity - capacity in
            if spare >= Block.min_capacity then begin
              (* split: give back the tail of the block *)
              let tail_header = Block.header_of_body e.Freelist.body + capacity in
              Freelist.insert t.freelist
                ~body:(Block.body_of_header tail_header)
                ~capacity:spare;
              (e.Freelist.body, capacity)
            end
            else (e.Freelist.body, e.Freelist.capacity)
        | None ->
            let header = t.frontier in
            t.frontier <- t.frontier + capacity;
            Pmem.Region.ensure_capacity t.region t.frontier;
            (Block.body_of_header header, capacity))
  in
  (* Declare the allocation before the header stores so the trace shows
     every write landing in already-allocated-fresh memory. *)
  Pmem.Trace.emit
    (Pmem.Region.trace t.region)
    (Pmem.Trace.Alloc { off = Block.header_of_body body; words = capacity });
  write_header t ~body ~capacity ~kind ~used:words;
  account_alloc t capacity;
  Hashtbl.replace t.rc body 1;
  body

let block_info t body =
  let header = Block.header_of_body body in
  Block.decode_info (Pmem.Region.peek_current t.region header)

let capacity_of t body =
  let capacity, _, _ = block_info t body in
  capacity

let kind_of t body =
  let _, kind, _ = block_info t body in
  kind

let used_of t body =
  Block.decode_used
    (Pmem.Region.peek_current t.region (Block.header_of_body body + 1))

(* Liveness is tracked in the volatile rc table (every live block has an
   entry, even refcount-free STM blocks): freeing must not write PM, or
   reclamation after a commit would look like an in-place write to the
   Section 5.4 checker.  Recovery never reads a free bit either --
   reachability decides. *)
let is_allocated t body = Hashtbl.mem t.rc body

let dealloc t body ~defer =
  let header = Block.header_of_body body in
  let capacity, _kind, _ =
    Block.decode_info (Pmem.Region.peek_current t.region header)
  in
  if not (Hashtbl.mem t.rc body) then
    invalid_arg (Printf.sprintf "Allocator.free: double free at %d" body);
  Hashtbl.remove t.rc body;
  if defer then t.deferred <- (body, capacity) :: t.deferred
  else Freelist.insert t.freelist ~body ~capacity;
  t.live_words <- t.live_words - capacity;
  t.frees <- t.frees + 1;
  Pmem.Trace.emit
    (Pmem.Region.trace t.region)
    (Pmem.Trace.Free { off = header; words = capacity })

let free t body = dealloc t body ~defer:false

let deferred_words t =
  List.fold_left
    (fun acc (_, cap) -> acc + cap)
    0
    (List.rev_append t.deferred t.deferred_prev)

(* A fence ages the deferral pipeline one epoch: blocks that have now
   survived two fences were unlinked by a root write that is durable
   *and* superseded in both record copies, so nothing durable can reach
   them and they may be reused. *)
let epoch_flush t =
  List.iter
    (fun (body, capacity) -> Freelist.insert t.freelist ~body ~capacity)
    t.deferred_prev;
  t.deferred_prev <- t.deferred;
  t.deferred <- []

(* Flush every cacheline of a block (header + initialized body) with
   weakly-ordered clwb instructions; no fence (recipe step 3). *)
let flush_block t body =
  let header = Block.header_of_body body in
  let used = used_of t body in
  Pmem.Region.clwb_range t.region header (Block.header_words + used)

let rc_get t body = try Hashtbl.find t.rc body with Not_found -> 0

let rc_incr t body =
  Hashtbl.replace t.rc body (rc_get t body + 1)

let rc_decr t body =
  let n = rc_get t body - 1 in
  if n < 0 then invalid_arg "Allocator.rc_decr: count underflow";
  Hashtbl.replace t.rc body n;
  n

let rc_set t body n = Hashtbl.replace t.rc body n

(* Drop a reference to [body]; when the count reaches zero, release the
   block's children (for Scanned blocks) and free it.  This is the
   reclamation step of CommitSingle and friends (Section 5.3).  Frees are
   epoch-deferred (see the module comment): the blocks leave the live set
   now but only become allocatable at the next fence. *)
let rec release t body =
  if rc_decr t body = 0 then begin
    (match kind_of t body with
    | Block.Scanned ->
        let used = used_of t body in
        for i = 0 to used - 1 do
          let w = Pmem.Region.load t.region (body + i) in
          if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
            release t (Pmem.Word.to_ptr w)
        done
    | Block.Raw -> ());
    dealloc t body ~defer:true
  end

let retain t body = rc_incr t body

(* Return the allocator to its just-created state.  Used by the
   crash-point explorer when it rewinds a scratch heap's region to its
   pristine snapshot instead of building a fresh heap per crash point:
   the volatile allocator state must rewind with the image. *)
let reset_fresh t =
  Freelist.clear t.freelist;
  Hashtbl.reset t.rc;
  t.deferred <- [];
  t.deferred_prev <- [];
  t.live_words <- 0;
  t.high_water_words <- 0;
  t.allocations <- 0;
  t.frees <- 0;
  t.alloc_words_total <- 0;
  t.frontier <- t.heap_start

(* Recovery support: wipe all volatile allocator state and reinstall it
   from the reachability analysis. *)
let recovery_reset t ~frontier =
  Freelist.clear t.freelist;
  Hashtbl.reset t.rc;
  t.deferred <- [];
  t.deferred_prev <- [];
  t.live_words <- 0;
  t.frontier <- frontier

let recovery_insert_free t ~body ~capacity =
  Freelist.insert t.freelist ~body ~capacity

let recovery_declare_live t ~body ~capacity ~rc =
  Hashtbl.replace t.rc body rc;
  t.live_words <- t.live_words + capacity;
  if t.live_words > t.high_water_words then t.high_water_words <- t.live_words
