(** Persistent-memory allocator (the paper uses nvm_malloc in the same
    role: recipe step 1, Section 4.2).

    Small allocations (capacity <= {!Arena.max_class}) are served by
    per-size-class bump arenas: a stack pop for a recycled block, a
    pointer bump inside a cacheline-aligned segment otherwise -- the
    shadow-node hot path never searches a list.  Odd sizes and large
    blocks fall back to segregated free lists with first-fit splitting
    and neighbor coalescing, and otherwise bump a frontier, growing the
    simulated region on demand.  Headers are written through the normal
    store path so they become durable together with the rest of the
    block when the owning failure-atomic section flushes and fences.

    Reference counts are deliberately volatile (paper Section 5.3: they
    never need to be durable because recovery recomputes them), kept in an
    OCaml-side table rather than in simulated PM so that the Section 5.4
    trace checker sees no in-place PM writes from refcount maintenance.

    Reclamation through {!release} is {e epoch-deferred}: a superseded
    version is released right after the commit's 8-byte root write, but
    that write's clwb is only ordered by the {e next} FASE's fence (epoch
    persistency, Section 5.1).  Until that fence completes, a crash can
    still re-expose the old version as the durable root -- so its blocks
    must not be handed back to allocation, or the next FASE's stores
    (which a cache eviction can persist at any moment) would corrupt a
    state recovery may legitimately return to.

    The deferral spans {e two} fences, not one.  The heap's ping-pong
    root records keep the previous committed version reachable through
    the stale record copy until the next commit overwrites that copy
    {e and} the overwrite's flush is fenced -- one commit plus one fence
    after the release.  [root_get] falls back to the stale copy when the
    fresh one is torn or media-bad, so the version it references must
    stay intact that long.  Released blocks therefore park in [deferred],
    age into [deferred_prev] at the first [sfence], and recycle at the
    second, once neither record copy can reference them.  The two stages
    are reusable flat buffers swapped wholesale per epoch -- bulk
    reclamation allocates no cons cells and keeps a running word count,
    so telemetry reads it in O(1).  Plain {!free} is immediate: its
    callers (the PM-STM undo path) only free blocks whose last durable
    reference was already retired under a fence. *)

(* One stage of the deferral pipeline: interleaved (body, capacity)
   pairs in a growable flat buffer, reused epoch after epoch. *)
type dbuf = {
  mutable data : int array;
  mutable len : int; (* pairs *)
  mutable dwords : int; (* sum of parked capacities *)
}

let dbuf_create () = { data = Array.make 128 0; len = 0; dwords = 0 }

let dbuf_push b body capacity =
  if 2 * b.len = Array.length b.data then begin
    let grown = Array.make (4 * Array.length b.data) 0 in
    Array.blit b.data 0 grown 0 (2 * b.len);
    b.data <- grown
  end;
  b.data.(2 * b.len) <- body;
  b.data.((2 * b.len) + 1) <- capacity;
  b.len <- b.len + 1;
  b.dwords <- b.dwords + capacity

let dbuf_reset b =
  b.len <- 0;
  b.dwords <- 0

type t = {
  region : Pmem.Region.t;
  heap_start : int;
  mutable frontier : int;
  freelist : Freelist.t;
  arena : Arena.t;
  rc : (int, int) Hashtbl.t; (* body offset -> reference count *)
  mutable deferred : dbuf; (* awaiting first fence *)
  mutable deferred_prev : dbuf; (* aged one fence; recycle at next *)
  mutable live_words : int;
  mutable high_water_words : int;
  mutable allocations : int;
  mutable frees : int;
  mutable alloc_words_total : int;
      (* monotone: words ever handed out; telemetry spans diff it to
         attribute shadow-allocation volume per operation *)
  mutable pad_words : int;
      (* sub-min_capacity slivers stranded by segment alignment; they
         re-merge into gaps at the next recovery walk *)
}

let create region ~heap_start =
  {
    region;
    heap_start;
    frontier = heap_start;
    freelist = Freelist.create ();
    arena = Arena.create ();
    rc = Hashtbl.create 4096;
    deferred = dbuf_create ();
    deferred_prev = dbuf_create ();
    live_words = 0;
    high_water_words = 0;
    allocations = 0;
    frees = 0;
    alloc_words_total = 0;
    pad_words = 0;
  }

let region t = t.region
let heap_start t = t.heap_start
let frontier t = t.frontier
let live_words t = t.live_words
let high_water_words t = t.high_water_words
let allocations t = t.allocations
let frees t = t.frees
let free_words t = Freelist.free_words t.freelist + Arena.free_words t.arena
let alloc_words_total t = t.alloc_words_total
let pad_words t = t.pad_words
let coalesces t = Freelist.coalesces t.freelist
let freelist_entries t = Freelist.live_entries t.freelist
let arena_segments t = Arena.segments t.arena
let arena_recycled_words t = Arena.recycled_words t.arena

(* The one word-conservation identity everything above maintains (and
   the property tests check): every word between the heap start and the
   frontier is live, free, parked in the deferral pipeline, or a
   stranded alignment sliver. *)
let deferred_words t = t.deferred.dwords + t.deferred_prev.dwords

let account_alloc t capacity =
  t.live_words <- t.live_words + capacity;
  if t.live_words > t.high_water_words then t.high_water_words <- t.live_words;
  t.allocations <- t.allocations + 1;
  t.alloc_words_total <- t.alloc_words_total + capacity

(* Write the header of a fresh block.  One plain store: the block's lines
   get durable when the owning FASE flushes them and fences. *)
let write_header t ~body ~capacity ~kind ~used =
  let header = Block.header_of_body body in
  Pmem.Region.store t.region header
    (Block.encode ~capacity ~used ~kind ~allocated:true)

(* Return a no-longer-live extent to the reuse structures: class-stride
   capacities recycle through their arena stack, everything else joins
   the coalescing free lists. *)
let stash_free t ~body ~capacity =
  if Arena.is_stride capacity then
    Arena.recycle t.arena ~header:(Block.header_of_body body) ~stride:capacity
  else Freelist.insert t.freelist ~body ~capacity

(* Open a fresh segment for [stride]: carve it out of a large free
   extent when one exists (so post-recovery gaps serve the hot path
   too), else bump the frontier, cacheline-aligning the segment so
   stride-4/8 blocks tile lines exactly. *)
let open_segment t stride =
  let words = Arena.segment_words stride in
  let line = Pmem.Config.words_per_line in
  (* Ask for one spare line so a misaligned extent still fits an aligned
     segment; the sliver before the aligned start goes back to the free
     lists (or the pad ledger when it is below a block's minimum). *)
  match Freelist.take_at_least t.freelist (words + line - 1) with
  | Some e ->
      let raw = Block.header_of_body e.Freelist.body in
      let start = (raw + line - 1) / line * line in
      let lead = start - raw in
      if lead >= Block.min_capacity then
        Freelist.insert t.freelist ~body:e.Freelist.body ~capacity:lead
      else if lead > 0 then t.pad_words <- t.pad_words + lead;
      let spare = e.Freelist.capacity - lead - words in
      if spare >= Block.min_capacity then
        Freelist.insert t.freelist
          ~body:(Block.body_of_header (start + words))
          ~capacity:spare
      else if spare > 0 then t.pad_words <- t.pad_words + spare;
      Arena.refill t.arena ~stride ~start ~words
  | None ->
      let pad = (line - (t.frontier mod line)) mod line in
      if pad >= Block.min_capacity then
        Freelist.insert t.freelist
          ~body:(Block.body_of_header t.frontier)
          ~capacity:pad
      else t.pad_words <- t.pad_words + pad;
      let start = t.frontier + pad in
      t.frontier <- start + words;
      Pmem.Region.ensure_capacity t.region t.frontier;
      Arena.refill t.arena ~stride ~start ~words

let alloc t ~kind ~words =
  if words <= 0 then invalid_arg "Allocator.alloc: empty block";
  let capacity = max Block.min_capacity (words + Block.header_words) in
  let body, capacity =
    if capacity <= Arena.max_class then begin
      (* hot path: stack pop or pointer bump, no list search *)
      let stride = Arena.stride_of capacity in
      match Arena.take t.arena stride with
      | Some header -> (Block.body_of_header header, stride)
      | None -> (
          match Freelist.take_exact t.freelist stride with
          | Some e -> (e.Freelist.body, e.Freelist.capacity)
          | None -> (
              open_segment t stride;
              match Arena.take t.arena stride with
              | Some header -> (Block.body_of_header header, stride)
              | None -> assert false))
    end
    else
      match Freelist.take_exact t.freelist capacity with
      | Some e -> (e.Freelist.body, e.Freelist.capacity)
      | None -> (
          match Freelist.take_at_least t.freelist capacity with
          | Some e ->
              let spare = e.Freelist.capacity - capacity in
              if spare >= Block.min_capacity then begin
                (* split: give back the tail of the block *)
                let tail_header =
                  Block.header_of_body e.Freelist.body + capacity
                in
                Freelist.insert t.freelist
                  ~body:(Block.body_of_header tail_header)
                  ~capacity:spare;
                (e.Freelist.body, capacity)
              end
              else (e.Freelist.body, e.Freelist.capacity)
          | None ->
              let header = t.frontier in
              t.frontier <- t.frontier + capacity;
              Pmem.Region.ensure_capacity t.region t.frontier;
              (Block.body_of_header header, capacity))
  in
  (* Declare the allocation before the header store so the trace shows
     every write landing in already-allocated-fresh memory. *)
  Pmem.Trace.emit
    (Pmem.Region.trace t.region)
    (Pmem.Trace.Alloc { off = Block.header_of_body body; words = capacity });
  write_header t ~body ~capacity ~kind ~used:words;
  account_alloc t capacity;
  Hashtbl.replace t.rc body 1;
  body

let block_info t body =
  let header = Block.header_of_body body in
  Block.decode_info (Pmem.Region.peek_current t.region header)

let capacity_of t body =
  let capacity, _, _ = block_info t body in
  capacity

let kind_of t body =
  let _, kind, _ = block_info t body in
  kind

let used_of t body =
  Block.decode_used
    (Pmem.Region.peek_current t.region (Block.header_of_body body))

(* Liveness is tracked in the volatile rc table (every live block has an
   entry, even refcount-free STM blocks): freeing must not write PM, or
   reclamation after a commit would look like an in-place write to the
   Section 5.4 checker.  Recovery never reads a free bit either --
   reachability decides. *)
let is_allocated t body = Hashtbl.mem t.rc body

let dealloc t body ~defer =
  (* Validate liveness before touching the header: a stale or corrupt
     body must fail loudly here, not decode garbage capacity into the
     accounting first. *)
  if not (Hashtbl.mem t.rc body) then
    invalid_arg (Printf.sprintf "Allocator.free: double free at %d" body);
  let header = Block.header_of_body body in
  let capacity, _kind, _ =
    Block.decode_info (Pmem.Region.peek_current t.region header)
  in
  Hashtbl.remove t.rc body;
  if defer then dbuf_push t.deferred body capacity
  else stash_free t ~body ~capacity;
  t.live_words <- t.live_words - capacity;
  t.frees <- t.frees + 1;
  Pmem.Trace.emit
    (Pmem.Region.trace t.region)
    (Pmem.Trace.Free { off = header; words = capacity })

let free t body = dealloc t body ~defer:false

(* A fence ages the deferral pipeline one epoch: blocks that have now
   survived two fences were unlinked by a root write that is durable
   *and* superseded in both record copies, so nothing durable can reach
   them and they may be reused.  The drained stage's buffer is recycled
   as the new deferred stage -- bulk per-epoch swaps, no per-block
   cells. *)
let epoch_flush t =
  let drain = t.deferred_prev in
  for i = 0 to drain.len - 1 do
    stash_free t ~body:drain.data.(2 * i) ~capacity:drain.data.((2 * i) + 1)
  done;
  dbuf_reset drain;
  t.deferred_prev <- t.deferred;
  t.deferred <- drain

(* Flush every cacheline of a block (header + initialized body) with
   weakly-ordered clwb instructions; no fence (recipe step 3). *)
let flush_block t body =
  let header = Block.header_of_body body in
  let used = used_of t body in
  Pmem.Region.clwb_range t.region header (Block.header_words + used)

let rc_get t body = try Hashtbl.find t.rc body with Not_found -> 0

let rc_incr t body =
  Hashtbl.replace t.rc body (rc_get t body + 1)

let rc_decr t body =
  let n = rc_get t body - 1 in
  if n < 0 then invalid_arg "Allocator.rc_decr: count underflow";
  Hashtbl.replace t.rc body n;
  n

let rc_set t body n = Hashtbl.replace t.rc body n

(* Drop a reference to [body]; when the count reaches zero, release the
   block's children (for Scanned blocks) and free it.  This is the
   reclamation step of CommitSingle and friends (Section 5.3).  Frees are
   epoch-deferred (see the module comment): the blocks leave the live set
   now but only become allocatable at the next fence. *)
let rec release t body =
  if rc_decr t body = 0 then begin
    (match kind_of t body with
    | Block.Scanned ->
        let used = used_of t body in
        for i = 0 to used - 1 do
          let w = Pmem.Region.load t.region (body + i) in
          if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
            release t (Pmem.Word.to_ptr w)
        done
    | Block.Raw -> ());
    dealloc t body ~defer:true
  end

let retain t body = rc_incr t body

(* Return the allocator to its just-created state.  Used by the
   crash-point explorer when it rewinds a scratch heap's region to its
   pristine snapshot instead of building a fresh heap per crash point:
   the volatile allocator state must rewind with the image. *)
let reset_fresh t =
  Freelist.clear t.freelist;
  Arena.reset t.arena;
  Hashtbl.reset t.rc;
  dbuf_reset t.deferred;
  dbuf_reset t.deferred_prev;
  t.live_words <- 0;
  t.high_water_words <- 0;
  t.allocations <- 0;
  t.frees <- 0;
  t.alloc_words_total <- 0;
  t.pad_words <- 0;
  t.frontier <- t.heap_start

(* Recovery support: wipe all volatile allocator state and reinstall it
   from the reachability analysis. *)
let recovery_reset t ~frontier =
  Freelist.clear t.freelist;
  Arena.reset t.arena;
  Hashtbl.reset t.rc;
  dbuf_reset t.deferred;
  dbuf_reset t.deferred_prev;
  t.live_words <- 0;
  t.pad_words <- 0;
  t.frontier <- frontier

let recovery_insert_free t ~body ~capacity =
  Freelist.insert t.freelist ~body ~capacity

let recovery_declare_live t ~body ~capacity ~rc =
  Hashtbl.replace t.rc body rc;
  t.live_words <- t.live_words + capacity;
  if t.live_words > t.high_water_words then t.high_water_words <- t.live_words
