(** Offline image checker and repairer ([modpm fsck]).

    Works on the {e effective} image -- the file with a committed sidecar
    journal applied in memory, or a torn one ignored, exactly what a
    reopening process would end up reading -- without mutating anything
    on disk unless [--repair] is requested.  Four layers of validation:

    + file structure: magic, version, header checksum, size (delegated to
      {!Pmem.Backing}; failures are [Corrupt] with a [Bad_image] detail);
    + content integrity: the whole-image checksum maintained by the
      commit protocol, which catches out-of-band corruption of any line,
      not just root records;
    + root directory: both record copies of every slot validated against
      their (value, slot, seq) checksums;
    + object graph: a bounds- and header-validating reachability walk
      from every readable root.

    Verdicts: [Clean] (everything above passes, no journal pending,
    full root redundancy), [Degraded] (openable, but redundancy reduced
    or a journal is awaiting replay/discard), [Corrupt] (the open path
    would fail or serve detectably damaged data), and -- only with
    repair -- [Repaired] (the image was rewritten and now reopens).

    Repair is deliberately lossy-but-safe: resolve the journal, restore
    dual-copy redundancy from each slot's surviving copy, quarantine
    slots with no usable copy or an unwalkable object graph (nulling
    them), and atomically rewrite the image (fresh header and checksum,
    temp file + rename, journal dropped).  The result always reopens;
    quarantined roots are reported, not silently resurrected. *)

type verdict = Clean | Repaired | Degraded | Corrupt

let verdict_name = function
  | Clean -> "clean"
  | Repaired -> "repaired"
  | Degraded -> "degraded"
  | Corrupt -> "corrupt"

type slot_status =
  | Dual  (** both record copies validate *)
  | Single of int  (** only copy 0 or copy 1 validates *)
  | Dead  (** neither copy validates *)

type report = {
  verdict : verdict;
  detail : string list;  (** human-readable findings, worst first *)
  journal : Pmem.Backing.journal_status;
  checksum_ok : bool;
  slots : (int * slot_status) list;  (** non-[Dual] slots only *)
  unreachable_slots : int list;  (** slots whose object walk failed *)
  live_blocks : int;
  quarantined : int list;  (** repair only: slots nulled *)
}

let pp_journal ppf = function
  | Pmem.Backing.Jnone -> Format.pp_print_string ppf "none"
  | Pmem.Backing.Jcommitted n -> Format.fprintf ppf "committed (%d lines)" n
  | Pmem.Backing.Jtorn -> Format.pp_print_string ppf "torn"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>verdict: %s@ journal: %a@ image checksum: %s@ \
                      live blocks: %d@]"
    (verdict_name r.verdict) pp_journal r.journal
    (if r.checksum_ok then "ok" else "MISMATCH")
    r.live_blocks;
  List.iter (fun d -> Format.fprintf ppf "@ - %s" d) r.detail;
  (match r.quarantined with
  | [] -> ()
  | q ->
      Format.fprintf ppf "@ quarantined slots: %s"
        (String.concat ", " (List.map string_of_int q)))

(* -- root-record validation on a raw word array -------------------------- *)

let read_copy words ~slot ~copy =
  let off = Heap.record_copy_off ~copy slot in
  if off + 2 >= Array.length words then Error `Oob
  else
    let v = Pmem.Word.raw words.(off) in
    let seq = words.(off + 1) in
    let c = words.(off + 2) in
    if seq >= 0 && Heap.record_checksum ~slot ~seq v = c then Ok (seq, v)
    else Error `Torn

let slot_status words slot =
  match (read_copy words ~slot ~copy:0, read_copy words ~slot ~copy:1) with
  | Ok _, Ok _ -> Dual
  | Ok _, Error _ -> Single 0
  | Error _, Ok _ -> Single 1
  | Error _, Error _ -> Dead

(* The value [Heap.root_get] would serve: the valid copy with the newest
   sequence number; [None] when the slot is dead. *)
let slot_value words slot =
  match (read_copy words ~slot ~copy:0, read_copy words ~slot ~copy:1) with
  | Ok (s0, v0), Ok (s1, v1) -> Some (if s0 >= s1 then v0 else v1)
  | Ok (_, v), Error _ | Error _, Ok (_, v) -> Some v
  | Error _, Error _ -> None

(* -- validating reachability walk ---------------------------------------- *)

(* Walk the object graph hanging off [root], enforcing the invariants the
   trusting recovery walk (Recovery_gc) assumes: headers inside bounds
   and plausibly encoded, bodies inside the image, pointer words in
   scanned payloads landing back inside the heap.  Returns the set of
   bodies visited, or a description of the first violation. *)
let walk_root words ~visited root =
  let cap = Array.length words in
  let heap_start = Heap.heap_start_words in
  let pending = Stack.create () in
  let newly = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let visit body =
    if Hashtbl.mem visited body then Ok ()
    else
      let header = Block.header_of_body body in
      if header < heap_start || body >= cap then
        fail "block body %d outside the heap" body
      else
        match Block.decode_info (Pmem.Word.raw words.(header)) with
        | exception _ -> fail "unreadable block header at %d" header
        | capacity, kind, _allocated ->
            if capacity < Block.min_capacity || header + capacity > cap then
              fail "block at %d has implausible capacity %d" header capacity
            else begin
              Hashtbl.replace visited body ();
              newly := body :: !newly;
              Stack.push (body, header, capacity, kind) pending;
              Ok ()
            end
  in
  let scan (body, header, capacity, kind) =
    match Block.decode_used (Pmem.Word.raw words.(header)) with
    | exception _ -> fail "unreadable used-count at %d" header
    | used ->
        if used < 0 || used > capacity - Block.header_words then
          fail "block at %d claims %d used words of %d" header used capacity
        else if kind = Block.Raw then Ok ()
        else
          let rec go i =
            if i = used then Ok ()
            else
              let w = Pmem.Word.raw words.(body + i) in
              if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
                match visit (Pmem.Word.to_ptr w) with
                | Ok () -> go (i + 1)
                | Error _ as e -> e
              else go (i + 1)
          in
          go 0
  in
  let rec drain () =
    if Stack.is_empty pending then Ok ()
    else
      match scan (Stack.pop pending) with
      | Ok () -> drain ()
      | Error _ as e -> e
  in
  match visit root with
  | Error _ as e ->
      e
  | Ok () -> (
      match drain () with
      | Ok () -> Ok ()
      | Error _ as e -> e)

(* -- commit-policy / Backup-descriptor validation ------------------------- *)

let policy_of words slot =
  let off = Heap.policy_off slot in
  if off >= Array.length words then Heap.Full
  else
    let w = Pmem.Word.raw words.(off) in
    if (not (Pmem.Word.is_ptr w)) && Pmem.Word.to_int w = 1 then Heap.Backup
    else Heap.Full

(* Shape-check the descriptor a Backup slot's root points at and count
   its log's committed entries.  The generic reachability walk already
   proves the descriptor, the anchor subtree and the log block are
   well-formed blocks; this enforces the Backup-specific layout on top:
   a 4-word Scanned body [magic; nonce; anchor; log->Raw].  An image
   whose interiors were never flushed still passes everything here --
   interior-absent is Clean by design; a damaged anchor (leaf-absent) or
   log pointer is Corrupt. *)
let check_descriptor words body =
  let cap = Array.length words in
  let header = Block.header_of_body body in
  let word i = Pmem.Word.raw words.(body + i) in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match Block.decode_info (Pmem.Word.raw words.(header)) with
  | exception _ -> fail "unreadable descriptor header at %d" header
  | _, kind, _ ->
      if kind <> Block.Scanned then fail "descriptor block is not Scanned"
      else if
        Block.decode_used (Pmem.Word.raw words.(header)) <> Backup.desc_words
      then fail "descriptor is not %d words" Backup.desc_words
      else if not (Backup.is_magic (word Backup.d_magic)) then
        fail "descriptor magic mismatch"
      else
        let nonce_w = word Backup.d_nonce in
        let anchor = word Backup.d_anchor in
        let log_w = word Backup.d_log in
        if Pmem.Word.is_ptr nonce_w || Pmem.Word.to_int nonce_w < 0 then
          fail "descriptor nonce is not a non-negative scalar"
        else if not (Pmem.Word.is_ptr anchor) then
          fail "descriptor anchor is a scalar"
        else if (not (Pmem.Word.is_ptr log_w)) || Pmem.Word.is_null log_w then
          fail "descriptor log pointer missing"
        else
          let log = Pmem.Word.to_ptr log_w in
          let lheader = Block.header_of_body log in
          match Block.decode_info (Pmem.Word.raw words.(lheader)) with
          | exception _ -> fail "unreadable log header at %d" lheader
          | _, lkind, _ ->
              if lkind <> Block.Raw then fail "op log is not a Raw block"
              else
                let load off =
                  if off >= 0 && off < cap then Pmem.Word.raw words.(off)
                  else Pmem.Word.zero
                in
                let nonce = Pmem.Word.to_int nonce_w in
                Ok (List.length (Backup.valid_entries ~load ~log ~nonce))

(* Validate every slot's graph.  A failed slot poisons [visited] with the
   blocks it reached before failing; to keep slots independent we re-walk
   with a fresh table per slot and merge only successful walks. *)
let walk_all words =
  let merged = Hashtbl.create 1024 in
  let bad = ref [] in
  let details = ref [] in
  for slot = Heap.root_slots - 1 downto 0 do
    match slot_value words slot with
    | None -> ()
    | Some w ->
        if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then begin
          let body = Pmem.Word.to_ptr w in
          let visited = Hashtbl.create 256 in
          (match walk_root words ~visited body with
          | Ok () ->
              Hashtbl.iter (fun b () -> Hashtbl.replace merged b ()) visited
          | Error m ->
              bad := slot :: !bad;
              details := Printf.sprintf "slot %d: %s" slot m :: !details);
          (* Backup slots: the root must be a well-formed descriptor
             (the only exception is a crash between the policy write and
             the descriptor swing, which leaves the pre-promotion root
             -- a valid Full-shaped state the open path re-promotes). *)
          if
            policy_of words slot = Heap.Backup
            && (not (List.mem slot !bad))
            && Block.header_of_body body >= Heap.heap_start_words
            && body < Array.length words
            && Backup.is_magic (Pmem.Word.raw words.(body + Backup.d_magic))
          then
            match check_descriptor words body with
            | Ok _entries -> ()
            | Error m ->
                bad := slot :: !bad;
                details :=
                  Printf.sprintf "slot %d (backup): %s" slot m :: !details
        end
        else if not (Pmem.Word.is_ptr w) then begin
          (* a scalar in a root slot is not a version of anything *)
          bad := slot :: !bad;
          details :=
            Printf.sprintf "slot %d: scalar %d where a pointer belongs" slot
              (Pmem.Word.bits w)
            :: !details
        end
  done;
  (Hashtbl.length merged, !bad, !details)

(* -- check --------------------------------------------------------------- *)

let corrupt_of_bad_image path detail =
  {
    verdict = Corrupt;
    detail = [ Printf.sprintf "%s: %s" path detail ];
    journal = Pmem.Backing.Jnone;
    checksum_ok = false;
    slots = [];
    unreachable_slots = [];
    live_blocks = 0;
    quarantined = [];
  }

let check path =
  match Pmem.Backing.inspect ~path with
  | exception Pmem.Backing.Bad_image { path; detail } ->
      corrupt_of_bad_image path detail
  | img ->
      let words = img.Pmem.Backing.i_words in
      let detail = ref [] in
      let push fmt = Printf.ksprintf (fun m -> detail := m :: !detail) fmt in
      let checksum_ok = img.Pmem.Backing.i_checksum_ok in
      if not checksum_ok then
        push "image checksum mismatch: content corrupted out-of-band";
      if Array.length words < Heap.heap_start_words then
        push "image smaller than the root + policy directory";
      let degraded_slots = ref [] in
      let dead = ref [] in
      if Array.length words >= Heap.heap_start_words then
        for slot = Heap.root_slots - 1 downto 0 do
          match slot_status words slot with
          | Dual -> ()
          | Single c ->
              degraded_slots := (slot, Single c) :: !degraded_slots;
              push "slot %d: single surviving record copy (%d)" slot c
          | Dead ->
              degraded_slots := (slot, Dead) :: !degraded_slots;
              dead := slot :: !dead;
              push "slot %d: both record copies invalid" slot
        done;
      let live_blocks, unreachable, walk_details =
        if Array.length words >= Heap.heap_start_words then
          walk_all words
        else (0, [], [])
      in
      List.iter (fun m -> push "%s" m) walk_details;
      (match img.Pmem.Backing.i_journal with
      | Jnone -> ()
      | Jcommitted n -> push "committed journal pending replay (%d lines)" n
      | Jtorn -> push "torn journal pending discard");
      let verdict =
        if
          (not checksum_ok)
          || !dead <> [] || unreachable <> []
          || Array.length words < Heap.heap_start_words
        then Corrupt
        else if
          !degraded_slots <> [] || img.Pmem.Backing.i_journal <> Jnone
        then Degraded
        else Clean
      in
      {
        verdict;
        detail = List.rev !detail;
        journal = img.Pmem.Backing.i_journal;
        checksum_ok;
        slots = !degraded_slots;
        unreachable_slots = unreachable;
        live_blocks;
        quarantined = [];
      }

(* -- repair -------------------------------------------------------------- *)

(* Write a valid record triple into one copy cell of [slot]. *)
let write_record words ~slot ~copy ~seq v =
  let off = Heap.record_copy_off ~copy slot in
  words.(off) <- Pmem.Word.bits v;
  words.(off + 1) <- seq;
  words.(off + 2) <- Heap.record_checksum ~slot ~seq v

(* Nulling a slot must also demote its policy word: a quarantined Backup
   slot has lost its descriptor, and leaving the policy at Backup would
   make the reopened null slot look like an interrupted promotion. *)
let quarantine words slot =
  write_record words ~slot ~copy:0 ~seq:0 Pmem.Word.null;
  write_record words ~slot ~copy:1 ~seq:0 Pmem.Word.null;
  if Heap.policy_off slot < Array.length words then
    words.(Heap.policy_off slot) <- Pmem.Word.bits (Pmem.Word.of_int 0)

(* Repair = resolve journal (inspect already applied/ignored it), restore
   dual-copy redundancy, quarantine dead or unwalkable slots, atomically
   rewrite the image.  Returns the post-repair report ([Repaired] verdict
   when anything was fixed; an already-clean image stays [Clean]). *)
let repair path =
  match Pmem.Backing.inspect ~path with
  | exception Pmem.Backing.Bad_image { path = p; detail } ->
      (* nothing below the header survives: an unusable file cannot be
         rebuilt into the heap it once held *)
      corrupt_of_bad_image p detail
  | img ->
      let words = Array.copy img.Pmem.Backing.i_words in
      if Array.length words < Heap.heap_start_words then
        corrupt_of_bad_image path "image smaller than the root + policy directory"
      else begin
        let touched = ref (img.Pmem.Backing.i_journal <> Jnone) in
        let quarantined = ref [] in
        if not img.Pmem.Backing.i_checksum_ok then touched := true;
        (* dual-copy redundancy: copy the survivor over the bad cell *)
        for slot = 0 to Heap.root_slots - 1 do
          match
            (read_copy words ~slot ~copy:0, read_copy words ~slot ~copy:1)
          with
          | Ok _, Ok _ -> ()
          | Ok (seq, v), Error _ ->
              write_record words ~slot ~copy:1 ~seq v;
              touched := true
          | Error _, Ok (seq, v) ->
              write_record words ~slot ~copy:0 ~seq v;
              touched := true
          | Error _, Error _ ->
              quarantine words slot;
              quarantined := slot :: !quarantined;
              touched := true
        done;
        (* unwalkable graphs: null the offending root *)
        let rec stabilize () =
          let _, bad, _ = walk_all words in
          match bad with
          | [] -> ()
          | slots ->
              List.iter
                (fun slot ->
                  quarantine words slot;
                  if not (List.mem slot !quarantined) then
                    quarantined := slot :: !quarantined;
                  touched := true)
                slots;
              stabilize ()
        in
        stabilize ();
        if !touched then Pmem.Backing.rewrite ~path ~words;
        let r = check path in
        {
          r with
          verdict = (if !touched then Repaired else r.verdict);
          quarantined = List.sort compare !quarantined;
        }
      end
