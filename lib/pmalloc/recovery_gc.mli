(** Recovery-time garbage collection (paper Section 5.3): reachability
    analysis from the root directory that rebuilds the volatile
    allocator state (free lists, frontier, reference counts as
    in-degrees) after a crash, reclaims leaked blocks, scrubs reachable
    Raw payloads when media faults are armed, and refreshes the volatile
    commit-policy cache from the durable policy words.  Backup slots'
    volatile current versions are {e not} rebuilt here -- each
    structure's [reconstruct] replays its op log on first access. *)

type report = {
  live_blocks : int;
  live_words : int;
  reclaimed_extents : int;
  reclaimed_words : int;
  frontier : int;
}

val pp_report : Format.formatter -> report -> unit

val recover : Heap.t -> report
(** Walk the object graph from every readable root slot and hand the
    allocator its reconstructed state.  Clears all volatile Backup
    runtime state and re-reads the policy directory first.  Raises
    (typed by {!Mod_core.Recovery}): [Heap.Torn_root] when both copies
    of a root record fail validation, [Pmem.Region.Media_fault] when an
    armed line is reached by a root read, the policy refresh, a header
    read, or the Raw scrub. *)
