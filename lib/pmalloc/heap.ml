(** A persistent heap: a simulated PM region, an allocator, and a small
    durable root directory through which applications locate their
    recoverable datastructures across crashes (the paper's "root pointer,
    one for each persistent heap", Section 5.1).

    Root-record format (fault tolerance).  Each of the [root_slots] roots
    is stored as a checksummed {e ping-pong} pair of record copies rather
    than a bare word.  A copy is three words -- value, sequence number,
    checksum over (value, slot, seq) -- padded to a 4-word cell so it
    never straddles a cacheline:

    - copy 0 of slot [s]: words [4*s .. 4*s + 2];
    - copy 1: the same cell one bank ([copy_bank_words]) later.

    [root_set] writes {e only the stale copy} with the next sequence
    number, so at most one copy is ever dirty when a crash hits: a torn
    crash (per-word persistence) or a media-bad line can invalidate at
    most the in-flight copy, and [root_get] falls back to the other,
    which holds the previous committed value -- exactly the state the
    unfenced root swing would have re-exposed anyway.  Only when both
    copies fail validation (double corruption, or a media fault paired
    with a tear) does the heap give up, with a typed [Torn_root] or a
    re-raised [Media_fault] -- never a silently wrong root. *)

let root_slots = 64

(* A record copy is 3 words padded to a 4-word cell: cells are 4-aligned
   and lines hold 8 words, so a copy never straddles a line. *)
let copy_stride = 4
let copy_bank_words = copy_stride * root_slots
let root_directory_words = 2 * copy_bank_words

let copy_off ~copy slot = (copy * copy_bank_words) + (copy_stride * slot)

(* "Don't Persist All" commit policy, one durable word per slot right
   after the record banks: 0 = Full (every shadow node flushed before
   the fence), 1 = Backup (only the op log and checkpoint anchors are
   flushed; interior nodes stay volatile-clean and are reconstructed at
   recovery by replaying the log).  The word is written once, when a
   slot is promoted, with an ordinary store + clwb drained by the
   promotion commit's fence. *)
type policy = Full | Backup

let policy_name = function Full -> "full" | Backup -> "backup"
let policy_words = root_slots
let policy_off slot = root_directory_words + slot
let heap_start_words = root_directory_words + policy_words

(* Avalanche mix (murmur3-finalizer flavoured, 63-bit) binding the root
   value to its slot and sequence number: a stale-but-valid copy from
   another slot or an earlier epoch of this slot still fails validation.
   Constants are 60-bit so the literals fit OCaml's int. *)
let checksum ~slot ~seq w =
  let x =
    Pmem.Word.bits w
    lxor ((slot + 1) * 0x9E3779B97F4A7C1)
    lxor (seq * 0xD1B54A32D192ED0)
  in
  let x = x lxor (x lsr 33) in
  let x = x * 0xFF51AFD7ED558C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xC4CEB9FE1A85EC5 in
  x lxor (x lsr 32)

exception Torn_root of { slot : int }

(* Volatile per-slot state of a Backup-policy structure.  The durable
   side is a 4-word descriptor node the root slot points at (magic,
   nonce, anchor version, op-log pointer; see {!Backup}); this record
   caches what replaying the log would rebuild, so the hot path never
   re-reads the log.  Lost at crash/reset; rebuilt by the structure's
   [reconstruct] after recovery. *)
type backup_state = {
  mutable b_current : Pmem.Word.t;
      (* root of the live (possibly never-flushed) version *)
  mutable b_count : int;  (* valid entries appended to the durable log *)
  b_nonce : int;  (* the nonce every valid entry's checksum is bound to *)
  b_desc : int;  (* descriptor body offset *)
  b_log : int;  (* op-log (Raw block) body offset *)
}

(* How Full-policy commits install their root: [Swing] is the paper's
   single-writer 8-byte store; [Cas] routes the same record update
   through {!root_cas}, the lock-free path concurrent writers use.  A
   volatile, whole-heap knob so the conformance suite can exercise every
   structure's commits under the CAS discipline without per-structure
   plumbing. *)
type commit_mode = Swing | Cas

type t = {
  region : Pmem.Region.t;
  allocator : Allocator.t;
  (* degradation diagnostics (volatile): how often validation caught a
     bad record copy, and how often the surviving copy rescued the slot *)
  mutable root_torn_detected : int;
  mutable root_fallbacks : int;
  mutable commit_mode : commit_mode;
  (* commit-policy machinery (volatile; durable policy words are the
     source of truth, this is a cache refreshed by recovery) *)
  policies : policy array;
  backup : (int, backup_state) Hashtbl.t;
  backlog : (int, unit) Hashtbl.t;
      (* Scanned bodies whose flush was suppressed inside a Backup
         update; flushed in bulk at the next checkpoint *)
  mutable backup_depth : int;
  (* instance-scoped telemetry: the collector metering this heap, if
     any.  Carried here (not in a process-wide ref) so N shard heaps in
     one process each keep their own histograms and attribution. *)
  mutable telemetry : Telemetry.t option;
  (* Incremental root-record cache (volatile).  Re-validating both
     3-word copies on every root read/swing costs ~12 PM loads per
     commit; once a slot has been seen with both copies valid, the
     winning (value, seq) and the next swing's (target copy, seq) are
     remembered here and a one-field root update recomputes only the
     touched record's checksum -- 3 stores + 1 clwb, no re-reads.  An
     entry is trusted only while the region's integrity epoch matches
     the fill-time epoch: crashes, restores, injected corruption and
     media-fault arming all bump the epoch, and [root_record_stores]
     (whose stores land outside this module's view) invalidates its
     slot, so every path that can falsify the cache forces the next
     access back through full two-copy validation. *)
  rcache_epoch : int array; (* fill-time integrity epoch; -1 = empty *)
  rcache_value : Pmem.Word.t array;
  rcache_seq : int array;
  rcache_target : int array; (* copy the next swing overwrites *)
  rcache_tseq : int array; (* sequence the next swing stamps *)
}

let region t = t.region
let allocator t = t.allocator
let stats t = Pmem.Region.stats t.region
let trace t = Pmem.Region.trace t.region
let telemetry t = t.telemetry
let set_telemetry t c = t.telemetry <- c

let telemetry_gauges t () =
  {
    Telemetry.g_live_words = Allocator.live_words t.allocator;
    g_free_words = Allocator.free_words t.allocator;
    g_deferred_words = Allocator.deferred_words t.allocator;
    g_high_water_words = Allocator.high_water_words t.allocator;
    g_alloc_words_total = Allocator.alloc_words_total t.allocator;
  }

let attach_telemetry ?sink t =
  let c =
    Telemetry.create ?sink ~gauges:(telemetry_gauges t)
      (Pmem.Region.stats t.region)
  in
  t.telemetry <- Some c;
  c

let span t ~structure ~op ?ops f =
  Telemetry.span_on t.telemetry (Pmem.Region.stats t.region) ~structure ~op
    ?ops f
let root_torn_detected t = t.root_torn_detected
let root_fallbacks t = t.root_fallbacks
let commit_mode t = t.commit_mode
let set_commit_mode t mode = t.commit_mode <- mode

let check_slot slot =
  if slot < 0 || slot >= root_slots then
    invalid_arg (Printf.sprintf "Heap: root slot %d out of range" slot)

let rcache_valid t slot =
  t.rcache_epoch.(slot) = Pmem.Region.integrity_epoch t.region

let rcache_invalidate t slot = t.rcache_epoch.(slot) <- -1
let invalidate_root_cache t = Array.fill t.rcache_epoch 0 root_slots (-1)

(* Fill a slot's cache entry from a both-copies-valid read.  A slot with
   a torn or media-bad copy keeps paying full validation on every access
   until a swing repairs it, and nothing is cached while any media fault
   is armed (a fault on the record's own line must surface as
   [Media_fault] on the very next read, not be papered over). *)
let rcache_fill t slot ~s0 ~v0 ~s1 ~v1 =
  if Pmem.Region.media_fault_count t.region = 0 then begin
    let value, seq = if s0 >= s1 then (v0, s0) else (v1, s1) in
    t.rcache_value.(slot) <- value;
    t.rcache_seq.(slot) <- seq;
    t.rcache_target.(slot) <- (if s0 <= s1 then 0 else 1);
    t.rcache_tseq.(slot) <- 1 + max s0 s1;
    t.rcache_epoch.(slot) <- Pmem.Region.integrity_epoch t.region
  end

(* Read one copy of a root record.  [Error `Torn] = checksum mismatch,
   [Error `Media] = the copy's line faulted on read. *)
let read_copy t ~slot ~copy =
  let off = copy_off ~copy slot in
  match
    let v = Pmem.Region.load t.region off in
    let s = Pmem.Region.load t.region (off + 1) in
    let c = Pmem.Region.load t.region (off + 2) in
    (v, s, c)
  with
  | exception Pmem.Region.Media_fault _ -> Error `Media
  | v, s, c ->
      let seq = Pmem.Word.bits s in
      if seq >= 0 && checksum ~slot ~seq v = Pmem.Word.bits c then
        Ok (seq, v)
      else Error `Torn

let count_torn t = t.root_torn_detected <- t.root_torn_detected + 1

(* Why torn copies fall back but media-bad copies do not.  Only the
   in-flight copy of a record is ever dirty, so a torn crash can
   invalidate at most that copy and the survivor holds the latest or the
   previous committed value -- both inside the durable-linearizability
   window of an unfenced root swing.  A media fault is different: it can
   kill the *up-to-date* copy while a torn crash reverts the in-flight
   one to its fully-old (still valid) contents, leaving a survivor two
   commits stale.  Freshness of the survivor cannot be established, so a
   faulting record line surfaces as a typed [Media_fault] instead of a
   silently stale root. *)
let root_get_versioned t slot =
  check_slot slot;
  if rcache_valid t slot then (t.rcache_value.(slot), t.rcache_seq.(slot))
  else
    match (read_copy t ~slot ~copy:0, read_copy t ~slot ~copy:1) with
    | Ok (s0, v0), Ok (s1, v1) ->
        rcache_fill t slot ~s0 ~v0 ~s1 ~v1;
        if s0 >= s1 then (v0, s0) else (v1, s1)
    | Ok (s, v), Error `Torn | Error `Torn, Ok (s, v) ->
        count_torn t;
        t.root_fallbacks <- t.root_fallbacks + 1;
        (v, s)
    | Error `Media, _ | _, Error `Media ->
        let copy =
          match read_copy t ~slot ~copy:0 with Error `Media -> 0 | _ -> 1
        in
        raise (Pmem.Region.Media_fault { off = copy_off ~copy slot })
    | Error `Torn, Error `Torn ->
        count_torn t;
        count_torn t;
        raise (Torn_root { slot })

let root_get t slot = fst (root_get_versioned t slot)

(* The copy [root_get] would serve (diagnostics/tests). *)
let active_root_copy t slot =
  check_slot slot;
  match (read_copy t ~slot ~copy:0, read_copy t ~slot ~copy:1) with
  | Ok (s0, _), Ok (s1, _) -> if s0 >= s1 then 0 else 1
  | Ok _, Error `Torn -> 0
  | Error `Torn, Ok _ -> 1
  | Error `Media, _ -> raise (Pmem.Region.Media_fault { off = copy_off ~copy:0 slot })
  | _, Error `Media -> raise (Pmem.Region.Media_fault { off = copy_off ~copy:1 slot })
  | Error `Torn, Error `Torn -> raise (Torn_root { slot })

(* Pick the copy the next update must overwrite: normally the stale one
   (ping-pong), but never leave the freshest value on a line already
   known media-bad when the other line still reads fine. *)
let target_copy t slot =
  match (read_copy t ~slot ~copy:0, read_copy t ~slot ~copy:1) with
  | Ok (s0, _), Ok (s1, _) ->
      if s0 <= s1 then (0, 1 + max s0 s1) else (1, 1 + max s0 s1)
  | Ok (s, _), Error `Torn -> (1, s + 1)
  | Error `Torn, Ok (s, _) -> (0, s + 1)
  (* media-bad sibling: write over the readable copy; the bad line would
     fault every future read anyway *)
  | Ok (s, _), Error `Media -> (0, s + 1)
  | Error `Media, Ok (s, _) -> (1, s + 1)
  | Error `Media, Error `Torn -> (1, 1)
  | Error _, Error _ -> (0, 1)

let root_record_stores t slot w =
  check_slot slot;
  (* the caller applies these stores outside this module's view, so the
     cached post-state can no longer be trusted once they land *)
  rcache_invalidate t slot;
  let copy, seq = target_copy t slot in
  let off = copy_off ~copy slot in
  [
    (off, w);
    (off + 1, Pmem.Word.raw seq);
    (off + 2, Pmem.Word.raw (checksum ~slot ~seq w));
  ]

let root_record_ranges slot =
  [ (copy_off ~copy:0 slot, 3); (copy_off ~copy:1 slot, 3) ]

let create ?(capacity_words = 1 lsl 20) ?(trace = false) ?(seed = 42) ?file ()
    =
  let region = Pmem.Region.create ~capacity_words ~trace ~seed ?file () in
  let t =
    {
      region;
      allocator = Allocator.create region ~heap_start:heap_start_words;
      root_torn_detected = 0;
      root_fallbacks = 0;
      commit_mode = Swing;
      policies = Array.make root_slots Full;
      backup = Hashtbl.create 8;
      backlog = Hashtbl.create 64;
      backup_depth = 0;
      telemetry = None;
      rcache_epoch = Array.make root_slots (-1);
      rcache_value = Array.make root_slots Pmem.Word.null;
      rcache_seq = Array.make root_slots 0;
      rcache_target = Array.make root_slots 0;
      rcache_tseq = Array.make root_slots 0;
    }
  in
  (* Fresh heap: both copies of every record are durable, valid null
     pointers at sequence 0 (the tie breaks toward overwriting copy 0
     first), and every policy word durably Full. *)
  for slot = 0 to root_slots - 1 do
    List.iter
      (fun copy ->
        let off = copy_off ~copy slot in
        Pmem.Region.store region off Pmem.Word.null;
        Pmem.Region.store region (off + 1) (Pmem.Word.raw 0);
        Pmem.Region.store region (off + 2)
          (Pmem.Word.raw (checksum ~slot ~seq:0 Pmem.Word.null)))
      [ 0; 1 ];
    Pmem.Region.store region (policy_off slot) (Pmem.Word.raw 0)
  done;
  Pmem.Region.clwb_range region 0 heap_start_words;
  Pmem.Region.sfence region;
  Pmem.Stats.reset (Pmem.Region.stats region);
  Pmem.Trace.clear (Pmem.Region.trace region);
  t

(* The root update at the heart of Commit: write the stale copy of the
   record (value, next seq, checksum -- all inside one cacheline) and
   launch one weakly-ordered flush.  The flush is ordered by the *next*
   FASE's fence (epoch persistency, Section 5.1): losing it in a crash
   -- torn or whole -- merely re-exposes the other copy, which holds the
   previous consistent version of the record. *)
let root_set t slot w =
  check_slot slot;
  if rcache_valid t slot then begin
    (* Incremental swing: the stale copy's identity and the next sequence
       number are already known, so only the touched record's checksum is
       recomputed -- the same 3 stores + 1 clwb the validating path
       emits, with zero loads.  The cache then advances to the post-swing
       state: the written copy is now freshest, the sibling is next. *)
    let copy = t.rcache_target.(slot) in
    let seq = t.rcache_tseq.(slot) in
    let off = copy_off ~copy slot in
    Pmem.Region.store t.region off w;
    Pmem.Region.store t.region (off + 1) (Pmem.Word.raw seq);
    Pmem.Region.store t.region (off + 2)
      (Pmem.Word.raw (checksum ~slot ~seq w));
    Pmem.Region.clwb t.region off;
    t.rcache_value.(slot) <- w;
    t.rcache_seq.(slot) <- seq;
    t.rcache_target.(slot) <- 1 - copy;
    t.rcache_tseq.(slot) <- seq + 1
  end
  else begin
    let stores = root_record_stores t slot w in
    List.iter (fun (off, v) -> Pmem.Region.store t.region off v) stores;
    match stores with
    | (off, _) :: _ -> Pmem.Region.clwb t.region off
    | [] -> assert false
  end

(* Compare-and-swap on a root slot, modelling a double-word (pointer +
   counter) hardware CAS on the root record.  The record's sequence
   number doubles as the ABA tag: every successful update stamps
   [1 + max seq] on the stale copy, so a root that has returned to a
   bit-identical pointer value after intervening commits -- which
   happens as soon as a superseded version is reclaimed and its address
   reused by a later shadow -- still fails the compare.  A plain
   value-compare CAS is unsound here for exactly that reason: a writer
   that read root [P], built a shadow from [P]'s contents, and raced two
   commits (away from and back to address [P]) would install a shadow
   derived from a version that no longer exists.

   The read-compare-write runs inside {!Pmem.Region.atomic}, so no other
   simulated writer is scheduled between the load of the current record
   and the record write -- but every PM event inside still counts
   against the crash budget, and the record write keeps the ping-pong
   discipline (only the stale copy is touched), so a crash landing
   mid-CAS re-exposes the previous committed value exactly as under
   {!root_set}. *)
let root_cas t slot ~expected ~expected_seq ~desired =
  check_slot slot;
  Pmem.Region.atomic t.region (fun () ->
      let cur, seq = root_get_versioned t slot in
      if seq = expected_seq && Pmem.Word.bits cur = Pmem.Word.bits expected
      then begin
        root_set t slot desired;
        true
      end
      else false)

(* -- commit policy ------------------------------------------------------- *)

let get_policy t slot =
  check_slot slot;
  t.policies.(slot)

(* Re-read the durable policy words into the volatile cache (recovery,
   reopen).  A media fault on a policy line propagates: the caller is
   the recovery path, which wraps it as a typed degradation. *)
let refresh_policies t =
  for slot = 0 to root_slots - 1 do
    let w = Pmem.Region.load t.region (policy_off slot) in
    t.policies.(slot) <-
      (if (not (Pmem.Word.is_ptr w)) && Pmem.Word.to_int w = 1 then Backup
       else Full)
  done

(* Record the policy durably: a single store + clwb, ordered by the
   promotion commit's fence ({!sfence} inside [Commit.single]), which
   runs strictly before the descriptor root swing can persist -- so a
   durable descriptor root implies a durable Backup policy word. *)
let set_policy_durable t slot policy =
  check_slot slot;
  Pmem.Region.store t.region (policy_off slot)
    (Pmem.Word.of_int (match policy with Full -> 0 | Backup -> 1));
  Pmem.Region.clwb t.region (policy_off slot);
  t.policies.(slot) <- policy

let backup_state t slot =
  check_slot slot;
  Hashtbl.find_opt t.backup slot

let install_backup_state t slot ~current ~count ~nonce ~desc ~log =
  check_slot slot;
  Hashtbl.replace t.backup slot
    { b_current = current; b_count = count; b_nonce = nonce; b_desc = desc;
      b_log = log }

let clear_backup_state t slot =
  check_slot slot;
  Hashtbl.remove t.backup slot

let clear_backup_runtime t =
  Hashtbl.reset t.backup;
  Hashtbl.reset t.backlog;
  t.backup_depth <- 0

(* The sequence number {!root_set} will stamp on this slot's next record
   update -- used as the nonce binding a fresh op log to its descriptor,
   so stale-but-checksummed entries from a recycled log block can never
   validate. *)
let next_root_seq t slot =
  check_slot slot;
  if rcache_valid t slot then t.rcache_tseq.(slot)
  else snd (target_copy t slot)

let enter_backup_update t = t.backup_depth <- t.backup_depth + 1

let exit_backup_update t =
  if t.backup_depth <= 0 then invalid_arg "Heap.exit_backup_update: not inside";
  t.backup_depth <- t.backup_depth - 1

let in_backup_update t = t.backup_depth > 0

let alloc t ~kind ~words = Allocator.alloc t.allocator ~kind ~words
let free t body = Allocator.free t.allocator body
let release t body = Allocator.release t.allocator body
let retain t body = Allocator.retain t.allocator body

(* Inside a Backup update, Scanned shadow nodes skip their clwbs (that is
   the whole point of the policy: the op log carries durability) and are
   parked in the backlog for the next checkpoint, which must make the
   checkpoint anchor fully durable.  Raw blocks (string blobs) always
   flush eagerly -- the log only records scalar arguments, so blob
   payloads must be durable the moment a logged op can reference them. *)
let flush_block t body =
  if t.backup_depth > 0 && Allocator.kind_of t.allocator body = Block.Scanned
  then Hashtbl.replace t.backlog body ()
  else Allocator.flush_block t.allocator body

(* Flush every backlogged node that is still live.  Nodes released since
   their suppressed flush (superseded intermediate versions) are skipped;
   flushing only live blocks keeps the checkpoint cost proportional to
   the surviving update, not to churn. *)
let flush_backlog t =
  Hashtbl.iter
    (fun body () ->
      if Allocator.is_allocated t.allocator body then
        Allocator.flush_block t.allocator body)
    t.backlog;
  Hashtbl.reset t.backlog

let load t off = Pmem.Region.load t.region off
let store t off w = Pmem.Region.store t.region off w
let clwb t off = Pmem.Region.clwb t.region off
let clwb_range t off words = Pmem.Region.clwb_range t.region off words
(* A fence ends the reclamation epoch: every in-flight clwb -- including
   the previous commit's root write -- is now durable, so blocks released
   by that commit can no longer be reached from any durable root and the
   allocator may hand them out again. *)
let sfence t =
  Pmem.Region.sfence t.region;
  Allocator.epoch_flush t.allocator
let crash ?mode ?seed ?torn t = Pmem.Region.crash ?mode ?seed ?torn t.region

(* Scratch-heap support for the crash-point explorer: a snapshot taken
   right after [create] captures the pristine heap; [reset_fresh]
   rewinds the region to it and resets the volatile allocator state,
   which together are equivalent to a fresh [create] without the
   O(capacity) construction cost (the 33MB simulated cache hierarchy
   dominates heap construction). *)
let pristine_snapshot t = Pmem.Region.snapshot t.region

let reset_fresh t ~pristine =
  Pmem.Region.restore t.region pristine;
  Allocator.reset_fresh t.allocator;
  (* the restore's epoch bump already distrusts every entry; emptying the
     cache as well keeps reset equivalent to a fresh [create] *)
  invalidate_root_cache t;
  t.root_torn_detected <- 0;
  t.root_fallbacks <- 0;
  t.commit_mode <- Swing;
  Array.fill t.policies 0 root_slots Full;
  clear_backup_runtime t;
  (* the restore rewound the stats block under the collector; re-base it
     so the first post-reset report doesn't see a negative delta *)
  match t.telemetry with Some c -> Telemetry.reset c | None -> ()

(* -- file-backed heaps --------------------------------------------------- *)

(* Reopen an existing image file.  The region layer resolves the sidecar
   journal and checksum-verifies the content; here we only sanity-check
   that the image is big enough to hold a root directory at all.  The
   allocator starts empty -- its state is volatile by design and must be
   rebuilt by the reachability analysis (Recovery_gc / Recovery.open_file),
   exactly as after a simulated crash. *)
let open_file ?(trace = false) ?(seed = 42) ~path () =
  let region, journal = Pmem.Region.open_file ~trace ~seed ~path () in
  if Pmem.Region.capacity_words region < heap_start_words then
    raise
      (Pmem.Backing.Bad_image
         {
           path;
           detail =
             Printf.sprintf "image holds %d words, smaller than the %d-word \
                             root + policy directory"
               (Pmem.Region.capacity_words region)
               heap_start_words;
         });
  let t =
    {
      region;
      allocator = Allocator.create region ~heap_start:heap_start_words;
      root_torn_detected = 0;
      root_fallbacks = 0;
      commit_mode = Swing;
      policies = Array.make root_slots Full;
      backup = Hashtbl.create 8;
      backlog = Hashtbl.create 64;
      backup_depth = 0;
      telemetry = None;
      rcache_epoch = Array.make root_slots (-1);
      rcache_value = Array.make root_slots Pmem.Word.null;
      rcache_seq = Array.make root_slots 0;
      rcache_target = Array.make root_slots 0;
      rcache_tseq = Array.make root_slots 0;
    }
  in
  (t, journal)

let close t = Pmem.Region.close_file t.region

(* Record-format helpers for offline image inspection (Fsck): validate
   and synthesize root records on a raw word array, no region needed. *)
let record_copy_off = copy_off
let record_checksum ~slot ~seq w = checksum ~slot ~seq w
