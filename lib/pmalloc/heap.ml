(** A persistent heap: a simulated PM region, an allocator, and a small
    durable root directory through which applications locate their
    recoverable datastructures across crashes (the paper's "root pointer,
    one for each persistent heap", Section 5.1). *)

let root_slots = 64

type t = { region : Pmem.Region.t; allocator : Allocator.t }

let region t = t.region
let allocator t = t.allocator
let stats t = Pmem.Region.stats t.region
let trace t = Pmem.Region.trace t.region

let create ?(capacity_words = 1 lsl 20) ?(trace = false) ?(seed = 42) () =
  let region = Pmem.Region.create ~capacity_words ~trace ~seed () in
  let t = { region; allocator = Allocator.create region ~heap_start:root_slots } in
  (* Fresh heap: all root slots start as durable null pointers. *)
  for slot = 0 to root_slots - 1 do
    Pmem.Region.store region slot Pmem.Word.null
  done;
  Pmem.Region.clwb_range region 0 root_slots;
  Pmem.Region.sfence region;
  Pmem.Stats.reset (Pmem.Region.stats region);
  Pmem.Trace.clear (Pmem.Region.trace region);
  t

let check_slot slot =
  if slot < 0 || slot >= root_slots then
    invalid_arg (Printf.sprintf "Heap: root slot %d out of range" slot)

let root_get t slot =
  check_slot slot;
  Pmem.Region.load t.region slot

(* The 8-byte atomic root update at the heart of Commit: a single store
   plus a weakly-ordered flush.  The flush is ordered by the *next* FASE's
   fence (epoch persistency, Section 5.1) -- losing it in a crash merely
   re-exposes the previous consistent version. *)
let root_set t slot w =
  check_slot slot;
  Pmem.Region.store t.region slot w;
  Pmem.Region.clwb t.region slot

let alloc t ~kind ~words = Allocator.alloc t.allocator ~kind ~words
let free t body = Allocator.free t.allocator body
let release t body = Allocator.release t.allocator body
let retain t body = Allocator.retain t.allocator body
let flush_block t body = Allocator.flush_block t.allocator body

let load t off = Pmem.Region.load t.region off
let store t off w = Pmem.Region.store t.region off w
let clwb t off = Pmem.Region.clwb t.region off
let clwb_range t off words = Pmem.Region.clwb_range t.region off words
(* A fence ends the reclamation epoch: every in-flight clwb -- including
   the previous commit's root write -- is now durable, so blocks released
   by that commit can no longer be reached from any durable root and the
   allocator may hand them out again. *)
let sfence t =
  Pmem.Region.sfence t.region;
  Allocator.epoch_flush t.allocator
let crash ?mode ?seed t = Pmem.Region.crash ?mode ?seed t.region

(* Scratch-heap support for the crash-point explorer: a snapshot taken
   right after [create] captures the pristine heap; [reset_fresh]
   rewinds the region to it and resets the volatile allocator state,
   which together are equivalent to a fresh [create] without the
   O(capacity) construction cost (the 33MB simulated cache hierarchy
   dominates heap construction). *)
let pristine_snapshot t = Pmem.Region.snapshot t.region

let reset_fresh t ~pristine =
  Pmem.Region.restore t.region pristine;
  Allocator.reset_fresh t.allocator
