(** Exhaustive crash-point exploration.

    A workload is re-run deterministically with the {!Pmem.Region} crash
    scheduler armed at budget 1, 2, ..., so a simulated power failure is
    injected after every single PM event (store / clwb / sfence).  At
    each crash point the memory image is snapshotted and sampled under
    the three crash modes -- [Drop_inflight] and [Keep_inflight] are
    deterministic corner cases; [Randomize] is sampled K times from
    explicit, replayable survival seeds -- then recovered and checked
    against the durable-linearizability oracle.  A full (uncrashed) run
    is also traced and fed to the Section 5.4 consistency checker as a
    second invariant.

    Sweeps default to the fast path: the region journals copy-on-write
    undo records ({!Pmem.Region.snapshot_mode} [Journal]), so each crash
    point costs O(state touched) instead of O(capacity), and one scratch
    heap is rewound to a pristine snapshot between budgets instead of
    being rebuilt.  [snapshot_mode = Full_copy] selects the original
    full-image path, kept as a differential reference: both paths must
    produce identical oracle verdicts.  With [jobs > 1] the budget list
    is partitioned round-robin across forked worker processes and the
    per-worker reports are merged deterministically (identical to a
    sequential sweep); on platforms without [fork] the sweep falls back
    to sequential.

    Large runs can be strided or capped; whatever is skipped is reported
    through [log] rather than silently dropped. *)

type config = {
  stride : int;  (** test every [stride]-th crash point *)
  randomize_samples : int;  (** survival samples per point in Randomize *)
  seed : int;  (** master seed survival seeds are derived from *)
  modes : Pmem.Region.crash_mode list;
  capacity_words : int;
  heap_seed : int;
  max_points : int option;  (** cap on tested points (strided sweeps) *)
  snapshot_mode : Pmem.Region.snapshot_mode;
      (** [Journal] = O(touched) copy-on-write sweeps (default);
          [Full_copy] = the original O(capacity) reference path *)
  jobs : int;  (** worker processes; 1 = sequential, 0 = one per core *)
  faults : bool;
      (** also sample each crash point under the fault schedule: torn
          (per-word) line persistence plus armed media faults, asserting
          the degradation contract -- recovery succeeds or fails with a
          typed error, never silently corrupts *)
  worker_kill : int option;
      (** test hook: the given parallel worker index dies before doing
          any work, exercising the shard-resweep path *)
  log : string -> unit;
}

let default =
  {
    stride = 1;
    randomize_samples = 3;
    seed = 1;
    modes =
      [
        Pmem.Region.Drop_inflight;
        Pmem.Region.Keep_inflight;
        Pmem.Region.Randomize;
      ];
    capacity_words = 1 lsl 14;
    heap_seed = 42;
    max_points = None;
    snapshot_mode = Pmem.Region.Journal;
    jobs = 1;
    faults = false;
    worker_kill = None;
    log = ignore;
  }

type failure = {
  workload : string;
  ops : int;
  crash_index : int;  (** PM event the power failed after *)
  mode : Pmem.Region.crash_mode;
  survival_seed : int option;  (** Randomize line-survival seed *)
  detail : string;
}

type result = {
  workload : string;
  ops : int;
  total_events : int;
  points_tested : int;
  points_skipped : int;
  crashes_sampled : int;
  fault_samples : int;  (** fault-schedule samples (torn / media) *)
  fault_recovered : int;  (** fault samples recovery fully absorbed *)
  fault_degraded : int;  (** fault samples that failed with a typed error *)
  fault_fallbacks : int;  (** root reads rescued by the secondary copy *)
  shards_resequenced : int;
      (** parallel-sweep shards re-run sequentially after a worker died *)
  wall_seconds : float;
  trace_report : Mod_core.Consistency.report option;
  failures : failure list;
}

let ok r =
  r.failures = []
  && match r.trace_report with
     | Some rep -> Mod_core.Consistency.ok rep
     | None -> true

let points_per_sec r =
  if r.wall_seconds <= 0.0 then 0.0
  else float_of_int r.points_tested /. r.wall_seconds

let mode_name = function
  | Pmem.Region.Drop_inflight -> "drop"
  | Pmem.Region.Keep_inflight -> "keep"
  | Pmem.Region.Randomize -> "randomize"

let mode_of_name = function
  | "drop" -> Ok Pmem.Region.Drop_inflight
  | "keep" -> Ok Pmem.Region.Keep_inflight
  | "randomize" | "random" -> Ok Pmem.Region.Randomize
  | s -> Error (Printf.sprintf "unknown crash mode %S (drop|keep|randomize)" s)

(* Survival seeds are a pure function of (master seed, crash point,
   sample index): any failure replays bit-for-bit from its triple. *)
let survival_seed cfg ~crash_index ~k =
  (cfg.seed * 1_000_003) + (crash_index * 131) + k

(* Fault-schedule seeds live in a distinct stream so torn-crash samples
   never collide with the plain Randomize samples of the same point. *)
let fault_seed cfg ~crash_index ~k =
  (cfg.seed * 7_368_787) + (crash_index * 257) + k

(* Per-point fault schedule: sample [k = 0..3] cycles through the four
   injection kinds on top of a torn crash. *)
let fault_kinds = 4

type crashed = {
  c_heap : Pmalloc.Heap.t;
  c_inst : Workload.instance;
  c_history : Workload.state list;  (** distinct committed states, newest first *)
  c_pending : Workload.state option;
}

(* A reusable execution context: one heap whose region journals undo
   records, rewound to its pristine snapshot between crash points.
   Equivalent to a fresh heap per budget (the reference behavior) but
   O(state touched) instead of O(capacity + cache hierarchy). *)
type scratch = { s_heap : Pmalloc.Heap.t; s_pristine : Pmem.Region.snapshot }

let make_scratch cfg =
  let heap =
    Pmalloc.Heap.create ~capacity_words:cfg.capacity_words ~trace:true
      ~seed:cfg.heap_seed ()
  in
  Pmem.Region.set_snapshot_mode (Pmalloc.Heap.region heap) Pmem.Region.Journal;
  { s_heap = heap; s_pristine = Pmalloc.Heap.pristine_snapshot heap }

(* Run [w] on a fresh deterministic heap (or a rewound scratch heap); if
   [budget] is given, power fails after that many PM events (counted from
   just after heap creation) and the interrupted execution is returned. *)
let run_until ?scratch cfg (w : Workload.t) ~budget =
  let heap =
    match scratch with
    | Some s ->
        Pmalloc.Heap.reset_fresh s.s_heap ~pristine:s.s_pristine;
        s.s_heap
    | None ->
        Pmalloc.Heap.create ~capacity_words:cfg.capacity_words ~trace:true
          ~seed:cfg.heap_seed ()
  in
  let region = Pmalloc.Heap.region heap in
  let base_events = Pmem.Region.pm_events region in
  (match budget with
  | Some n -> Pmem.Region.set_crash_after region n
  | None -> ());
  let history = ref [ w.model.(0) ] in
  let pending = ref None in
  let inst = w.make heap in
  match
    inst.Workload.init ();
    for i = 0 to w.ops - 1 do
      pending := Some w.model.(i + 1);
      inst.Workload.run_op i;
      pending := None;
      if w.model.(i + 1) <> List.hd !history then
        history := w.model.(i + 1) :: !history
    done
  with
  | () ->
      Pmem.Region.clear_crash_point region;
      `Completed (Pmem.Region.pm_events region - base_events, heap)
  | exception Pmem.Region.Crash_point ->
      `Crashed
        { c_heap = heap; c_inst = inst; c_history = !history;
          c_pending = !pending }

let recover_and_check (c : crashed) =
  let recovered =
    match
      c.c_inst.Workload.recover ();
      c.c_inst.Workload.dump ()
    with
    | s -> Ok s
    | exception e -> Error e
  in
  Oracle.check ~history:c.c_history ~pending:c.c_pending ~recovered

(* Classify one fault sample against the degradation contract.  Unlike
   the fault-free oracle, a typed error is an acceptable outcome here:
   the injected fault was detected and surfaced.  What must never happen
   is an untyped exception escaping recovery, or a successfully
   "recovered" state the oracle rejects (silent corruption). *)
let recover_and_classify_faulted (c : crashed) =
  let typed = function
    | Mod_core.Error.Error te -> Some te
    | e -> Mod_core.Recovery.typed_of_exn e
  in
  match c.c_inst.Workload.recover () with
  | exception e -> (
      match typed e with
      | Some te -> `Degraded te
      | None -> `Escaped e)
  | () -> (
      match c.c_inst.Workload.dump () with
      | exception e -> (
          match typed e with
          | Some te -> `Degraded te
          | None -> `Escaped e)
      | s -> (
          match
            Oracle.check ~history:c.c_history ~pending:c.c_pending
              ~recovered:(Ok s)
          with
          | Oracle.Consistent -> `Recovered
          | Oracle.Violation d -> `Violation d))

(* Arm the media faults of fault-schedule kind [k mod 4]:
   0 = pure torn crash, no media fault;
   1 = primary root-record line bad (typed Media_error: the survivor's
       freshness cannot be proven, so the heap degrades instead of
       serving a possibly-stale root);
   2 = both root-record lines bad (typed Media_error path);
   3 = a seed-derived heap line bad (reachable-graph scrub path). *)
let arm_fault_kind region ~k ~seed =
  let record_lines =
    List.map
      (fun (off, _) -> Pmem.Region.line_of_word off)
      (Pmalloc.Heap.root_record_ranges 0)
  in
  let primary_line = List.nth record_lines 0 in
  let secondary_line = List.nth record_lines 1 in
  match k mod fault_kinds with
  | 0 -> ()
  | 1 -> Pmem.Region.arm_media_fault region ~line:primary_line
  | 2 ->
      Pmem.Region.arm_media_fault region ~line:primary_line;
      Pmem.Region.arm_media_fault region ~line:secondary_line
  | _ ->
      let first_heap_line =
        Pmalloc.Heap.heap_start_words / Pmem.Config.words_per_line
      in
      let nlines =
        Pmem.Region.capacity_words region / Pmem.Config.words_per_line
      in
      let span = max 1 (nlines - first_heap_line) in
      let line = first_heap_line + (abs (seed * 2_654_435_761) mod span) in
      Pmem.Region.arm_media_fault region ~line

type point_stats = {
  p_sampled : int;
  p_fsampled : int;
  p_frecovered : int;
  p_fdegraded : int;
  p_ffallbacks : int;
  p_failures : failure list;
}

(* Sample one crash point: snapshot the interrupted image, then for each
   mode (and each survival seed, under Randomize) restore, crash,
   recover and consult the oracle.  With [cfg.faults] the same point is
   additionally sampled under the fault schedule (torn crashes and armed
   media faults) against the weaker degradation contract. *)
let sample_point cfg (w : Workload.t) ~crash_index (c : crashed) =
  let region = Pmalloc.Heap.region c.c_heap in
  let snap = Pmem.Region.snapshot region in
  let sampled = ref 0 in
  let failures = ref [] in
  List.iter
    (fun mode ->
      let samples =
        match mode with
        | Pmem.Region.Randomize -> cfg.randomize_samples
        | Pmem.Region.Drop_inflight | Pmem.Region.Keep_inflight -> 1
      in
      for k = 0 to samples - 1 do
        Pmem.Region.restore region snap;
        let seed =
          match mode with
          | Pmem.Region.Randomize ->
              Some (survival_seed cfg ~crash_index ~k)
          | _ -> None
        in
        Pmalloc.Heap.crash ~mode ?seed c.c_heap;
        incr sampled;
        match recover_and_check c with
        | Oracle.Consistent -> ()
        | Oracle.Violation detail ->
            failures :=
              {
                workload = w.Workload.name;
                ops = w.Workload.ops;
                crash_index;
                mode;
                survival_seed = seed;
                detail;
              }
              :: !failures
      done)
    cfg.modes;
  let fsampled = ref 0 in
  let frecovered = ref 0 in
  let fdegraded = ref 0 in
  let ffallbacks = ref 0 in
  if cfg.faults then
    for k = 0 to fault_kinds - 1 do
      Pmem.Region.restore region snap;
      let seed = fault_seed cfg ~crash_index ~k in
      Pmalloc.Heap.crash ~mode:Pmem.Region.Randomize ~seed ~torn:true c.c_heap;
      arm_fault_kind region ~k ~seed;
      incr fsampled;
      let fb0 = Pmalloc.Heap.root_fallbacks c.c_heap in
      let fail detail =
        failures :=
          {
            workload = w.Workload.name;
            ops = w.Workload.ops;
            crash_index;
            mode = Pmem.Region.Randomize;
            survival_seed = Some seed;
            detail;
          }
          :: !failures
      in
      (match recover_and_classify_faulted c with
      | `Recovered -> incr frecovered
      | `Degraded _ -> incr fdegraded
      | `Violation d ->
          fail (Printf.sprintf "faults(kind %d): silent corruption: %s" k d)
      | `Escaped e ->
          fail
            (Printf.sprintf "faults(kind %d): untyped exception escaped: %s" k
               (Printexc.to_string e)));
      ffallbacks := !ffallbacks + Pmalloc.Heap.root_fallbacks c.c_heap - fb0;
      Pmem.Region.clear_media_faults region
    done;
  {
    p_sampled = !sampled;
    p_fsampled = !fsampled;
    p_frecovered = !frecovered;
    p_fdegraded = !fdegraded;
    p_ffallbacks = !ffallbacks;
    p_failures = List.rev !failures;
  }

(* -- sweep driver -------------------------------------------------------- *)

(* The crash points a sweep must test, honoring stride and cap.  The
   parallel driver partitions exactly this list, so sequential and
   parallel sweeps test identical point sets. *)
let sweep_budgets cfg ~total_events =
  let rec go b n acc =
    if b > total_events then List.rev acc
    else
      match cfg.max_points with
      | Some m when n >= m -> List.rev acc
      | _ -> go (b + cfg.stride) (n + 1) (b :: acc)
  in
  go 1 0 []

type chunk = {
  ch_tested : int;
  ch_sampled : int;
  ch_fsampled : int;
  ch_frecovered : int;
  ch_fdegraded : int;
  ch_ffallbacks : int;
  ch_resweeps : int;  (** shards re-run sequentially after worker death *)
  ch_failures : failure list;  (** in ascending crash-point order *)
}

(* Test every budget in [bs] (ascending), reusing one scratch heap on
   the journaled path. *)
let sweep_chunk cfg (w : Workload.t) bs =
  let scratch =
    match cfg.snapshot_mode with
    | Pmem.Region.Journal -> Some (make_scratch cfg)
    | Pmem.Region.Full_copy -> None
  in
  let tested = ref 0 in
  let sampled = ref 0 in
  let fsampled = ref 0 in
  let frecovered = ref 0 in
  let fdegraded = ref 0 in
  let ffallbacks = ref 0 in
  let failures = ref [] in
  List.iter
    (fun budget ->
      match run_until ?scratch cfg w ~budget:(Some budget) with
      | `Completed _ -> ()
      | `Crashed c ->
          incr tested;
          let p = sample_point cfg w ~crash_index:budget c in
          sampled := !sampled + p.p_sampled;
          fsampled := !fsampled + p.p_fsampled;
          frecovered := !frecovered + p.p_frecovered;
          fdegraded := !fdegraded + p.p_fdegraded;
          ffallbacks := !ffallbacks + p.p_ffallbacks;
          failures := List.rev_append p.p_failures !failures)
    bs;
  {
    ch_tested = !tested;
    ch_sampled = !sampled;
    ch_fsampled = !fsampled;
    ch_frecovered = !frecovered;
    ch_fdegraded = !fdegraded;
    ch_ffallbacks = !ffallbacks;
    ch_resweeps = 0;
    ch_failures = List.rev !failures;
  }

(* Fork one worker per budget partition; each marshals its chunk back
   over a pipe.  Round-robin partitioning plus a stable merge keyed on
   the crash index reproduces the sequential failure order exactly
   (within one crash point all samples come from the same worker, in
   canonical mode/seed order).

   A worker that dies -- killed by the OS, or crashing before it could
   marshal its chunk -- must not abort the sweep: its budget partition is
   re-swept sequentially in the parent (budgets are pure inputs, so the
   re-run is identical to what the worker would have produced) and the
   rescue is counted in the summary. *)
let sweep_parallel cfg w bs ~jobs =
  let parts = Array.make jobs [] in
  List.iteri (fun i b -> parts.(i mod jobs) <- b :: parts.(i mod jobs)) bs;
  flush stdout;
  flush stderr;
  let children =
    Array.to_list parts
    |> List.mapi (fun idx part -> (idx, List.rev part))
    |> List.filter_map (fun (idx, part) ->
           if part = [] then None
           else
             let rd, wr = Unix.pipe () in
             match Unix.fork () with
             | 0 ->
                 Unix.close rd;
                 if cfg.worker_kill = Some idx then Unix._exit 117;
                 let status =
                   match sweep_chunk cfg w part with
                   | chunk ->
                       let oc = Unix.out_channel_of_descr wr in
                       Marshal.to_channel oc chunk [];
                       flush oc;
                       close_out oc;
                       0
                   | exception e ->
                       Printf.eprintf "crashtest worker: %s\n%!"
                         (Printexc.to_string e);
                       1
                 in
                 (* not [exit]: at_exit handlers would replay the parent's
                    buffered output *)
                 Unix._exit status
             | pid ->
                 Unix.close wr;
                 Some (pid, rd, part))
  in
  let chunks, resweeps =
    List.fold_left
      (fun (chunks, resweeps) (pid, rd, part) ->
        let ic = Unix.in_channel_of_descr rd in
        let chunk =
          match (Marshal.from_channel ic : chunk) with
          | c -> Some c
          | exception (End_of_file | Failure _) -> None
        in
        close_in ic;
        let _, status = Unix.waitpid [] pid in
        match (chunk, status) with
        | Some c, Unix.WEXITED 0 -> (c :: chunks, resweeps)
        | _ ->
            cfg.log
              (Printf.sprintf
                 "explorer: worker pid %d died (%s); re-sweeping its %d \
                  budget(s) sequentially"
                 pid
                 (match status with
                 | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                 | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
                 | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
                 (List.length part));
            (sweep_chunk cfg w part :: chunks, resweeps + 1))
      ([], 0) children
  in
  let chunks = List.rev chunks in
  let sum f = List.fold_left (fun a c -> a + f c) 0 chunks in
  {
    ch_tested = sum (fun c -> c.ch_tested);
    ch_sampled = sum (fun c -> c.ch_sampled);
    ch_fsampled = sum (fun c -> c.ch_fsampled);
    ch_frecovered = sum (fun c -> c.ch_frecovered);
    ch_fdegraded = sum (fun c -> c.ch_fdegraded);
    ch_ffallbacks = sum (fun c -> c.ch_ffallbacks);
    ch_resweeps = resweeps;
    ch_failures =
      List.concat_map (fun c -> c.ch_failures) chunks
      |> List.stable_sort (fun a b -> compare a.crash_index b.crash_index);
  }

let resolve_jobs cfg =
  let requested =
    if cfg.jobs = 0 then Domain.recommended_domain_count () else cfg.jobs
  in
  let requested = max 1 requested in
  if requested > 1 && not Sys.unix then begin
    cfg.log "explorer: no fork on this platform, falling back to sequential";
    1
  end
  else requested

let explore ?(cfg = default) (w : Workload.t) =
  let t0 = Unix.gettimeofday () in
  let total_events, trace_report =
    match run_until cfg w ~budget:None with
    | `Completed (events, heap) ->
        let report =
          if w.Workload.check_trace then
            Some (Mod_core.Consistency.check (Pmalloc.Heap.trace heap))
          else None
        in
        (events, report)
    | `Crashed _ -> assert false (* no budget armed *)
  in
  let bs = sweep_budgets cfg ~total_events in
  let jobs = min (resolve_jobs cfg) (max 1 (List.length bs)) in
  let chunk =
    if jobs > 1 then sweep_parallel cfg w bs ~jobs else sweep_chunk cfg w bs
  in
  let skipped = max 0 (total_events - chunk.ch_tested) in
  if skipped > 0 then
    cfg.log
      (Printf.sprintf
         "%s: tested %d of %d crash points (stride %d%s), %d skipped"
         w.Workload.name chunk.ch_tested total_events cfg.stride
         (match cfg.max_points with
         | Some m -> Printf.sprintf ", cap %d" m
         | None -> "")
         skipped);
  {
    workload = w.Workload.name;
    ops = w.Workload.ops;
    total_events;
    points_tested = chunk.ch_tested;
    points_skipped = skipped;
    crashes_sampled = chunk.ch_sampled;
    fault_samples = chunk.ch_fsampled;
    fault_recovered = chunk.ch_frecovered;
    fault_degraded = chunk.ch_fdegraded;
    fault_fallbacks = chunk.ch_ffallbacks;
    shards_resequenced = chunk.ch_resweeps;
    wall_seconds = Unix.gettimeofday () -. t0;
    trace_report;
    failures = chunk.ch_failures;
  }

(* -- concurrent sweeps --------------------------------------------------- *)

(* A concurrent crash point is identified by (schedule, budget): the
   interleaving is a pure function of the schedule, so re-running the
   writers under the same schedule with the same budget reproduces the
   same interrupted image bit-for-bit.  Sweeps are sequential (no fork):
   a concurrent run is a few writers x a few ops, and the schedule axis
   already multiplies the point count. *)

type cfailure = {
  cf_workload : string;
  cf_writers : int;
  cf_ops : int;  (** per writer *)
  cf_schedule : Interleave.schedule;
  cf_crash_index : int;  (** -1 = uncrashed-run final-state check *)
  cf_mode : Pmem.Region.crash_mode;
  cf_survival_seed : int option;
  cf_detail : string;
}

type cresult = {
  cr_workload : string;
  cr_writers : int;
  cr_ops : int;
  cr_schedules : int;
  cr_total_events : int;  (** summed over schedules *)
  cr_points_tested : int;
  cr_points_skipped : int;
  cr_crashes_sampled : int;
  cr_wall_seconds : float;
  cr_failures : cfailure list;
}

let cok r = r.cr_failures = []

let cpoints_per_sec r =
  if r.cr_wall_seconds <= 0.0 then 0.0
  else float_of_int r.cr_points_tested /. r.cr_wall_seconds

(* The default schedule set: round-robin at co-prime quanta (tight
   alternation through coarse slices) plus seeded random walks. *)
let default_schedules =
  [
    Interleave.Round_robin 1;
    Interleave.Round_robin 3;
    Interleave.Round_robin 7;
    Interleave.Seeded 1;
    Interleave.Seeded 2;
  ]

(* Run the concurrent workload under [schedule] on a fresh (or rewound
   scratch) heap; [budget] arms the crash scheduler exactly like the
   sequential [run_until]. *)
let crun_until ?scratch cfg (cw : Workload.ct) ~schedule ~budget =
  let heap =
    match scratch with
    | Some s ->
        Pmalloc.Heap.reset_fresh s.s_heap ~pristine:s.s_pristine;
        s.s_heap
    | None ->
        Pmalloc.Heap.create ~capacity_words:cfg.capacity_words ~trace:true
          ~seed:cfg.heap_seed ()
  in
  let region = Pmalloc.Heap.region heap in
  let base_events = Pmem.Region.pm_events region in
  (match budget with
  | Some n -> Pmem.Region.set_crash_after region n
  | None -> ());
  let inst = cw.Workload.cmake heap in
  match
    inst.Workload.c_init ();
    Interleave.run region ~schedule inst.Workload.c_writers
  with
  | () ->
      Pmem.Region.clear_crash_point region;
      `Completed (Pmem.Region.pm_events region - base_events, heap, inst)
  | exception Pmem.Region.Crash_point -> `Crashed (heap, inst)

let crecover_and_check (inst : Workload.cinstance) =
  let recovered =
    match
      inst.Workload.c_recover ();
      inst.Workload.c_dump ()
    with
    | s -> Ok s
    | exception e -> Error e
  in
  Oracle.check_concurrent inst.Workload.c_tracker ~recovered

(* Sample one concurrent crash point under every mode (and survival
   seed), sharing the sequential sweep's seed streams so any failure
   replays from its (schedule, crash index, mode, seed) tuple. *)
let csample_point cfg (cw : Workload.ct) ~schedule ~crash_index heap inst =
  let region = Pmalloc.Heap.region heap in
  let snap = Pmem.Region.snapshot region in
  let sampled = ref 0 in
  let failures = ref [] in
  List.iter
    (fun mode ->
      let samples =
        match mode with
        | Pmem.Region.Randomize -> cfg.randomize_samples
        | Pmem.Region.Drop_inflight | Pmem.Region.Keep_inflight -> 1
      in
      for k = 0 to samples - 1 do
        Pmem.Region.restore region snap;
        let seed =
          match mode with
          | Pmem.Region.Randomize -> Some (survival_seed cfg ~crash_index ~k)
          | _ -> None
        in
        Pmalloc.Heap.crash ~mode ?seed heap;
        incr sampled;
        match crecover_and_check inst with
        | Oracle.Consistent -> ()
        | Oracle.Violation detail ->
            failures :=
              {
                cf_workload = cw.Workload.cname;
                cf_writers = cw.Workload.cwriters;
                cf_ops = cw.Workload.cops;
                cf_schedule = schedule;
                cf_crash_index = crash_index;
                cf_mode = mode;
                cf_survival_seed = seed;
                cf_detail = detail;
              }
              :: !failures
      done)
    cfg.modes;
  (!sampled, List.rev !failures)

let explore_concurrent ?(cfg = default) ?(schedules = default_schedules)
    (cw : Workload.ct) =
  let t0 = Unix.gettimeofday () in
  let scratch =
    match cfg.snapshot_mode with
    | Pmem.Region.Journal -> Some (make_scratch cfg)
    | Pmem.Region.Full_copy -> None
  in
  let tested = ref 0 in
  let skipped = ref 0 in
  let sampled = ref 0 in
  let total = ref 0 in
  let failures = ref [] in
  List.iter
    (fun schedule ->
      (* the uncrashed run: its final durable state must equal the
         newest tracked model state (serializability), and it sizes the
         budget sweep *)
      let events =
        match crun_until ?scratch cfg cw ~schedule ~budget:None with
        | `Crashed _ -> assert false (* no budget armed *)
        | `Completed (events, _heap, inst) ->
            (match inst.Workload.c_dump () with
            | final ->
                let expect = Oracle.latest inst.Workload.c_tracker in
                if final <> expect then
                  failures :=
                    {
                      cf_workload = cw.Workload.cname;
                      cf_writers = cw.Workload.cwriters;
                      cf_ops = cw.Workload.cops;
                      cf_schedule = schedule;
                      cf_crash_index = -1;
                      cf_mode = Pmem.Region.Keep_inflight;
                      cf_survival_seed = None;
                      cf_detail =
                        Printf.sprintf
                          "final state %s does not match the serialized \
                           model %s"
                          final expect;
                    }
                    :: !failures
            | exception e ->
                failures :=
                  {
                    cf_workload = cw.Workload.cname;
                    cf_writers = cw.Workload.cwriters;
                    cf_ops = cw.Workload.cops;
                    cf_schedule = schedule;
                    cf_crash_index = -1;
                    cf_mode = Pmem.Region.Keep_inflight;
                    cf_survival_seed = None;
                    cf_detail =
                      Printf.sprintf "reading the final state raised %s"
                        (Printexc.to_string e);
                  }
                  :: !failures);
            events
      in
      total := !total + events;
      let bs = sweep_budgets cfg ~total_events:events in
      List.iter
        (fun budget ->
          match crun_until ?scratch cfg cw ~schedule ~budget:(Some budget) with
          | `Completed _ -> ()
          | `Crashed (heap, inst) ->
              incr tested;
              let n, fs =
                csample_point cfg cw ~schedule ~crash_index:budget heap inst
              in
              sampled := !sampled + n;
              failures := List.rev_append fs !failures)
        bs;
      skipped := !skipped + max 0 (events - List.length bs))
    schedules;
  if !skipped > 0 then
    cfg.log
      (Printf.sprintf
         "%s: tested %d of %d concurrent crash points (stride %d%s), %d \
          skipped"
         cw.Workload.cname !tested !total cfg.stride
         (match cfg.max_points with
         | Some m -> Printf.sprintf ", cap %d/schedule" m
         | None -> "")
         !skipped);
  {
    cr_workload = cw.Workload.cname;
    cr_writers = cw.Workload.cwriters;
    cr_ops = cw.Workload.cops;
    cr_schedules = List.length schedules;
    cr_total_events = !total;
    cr_points_tested = !tested;
    cr_points_skipped = !skipped;
    cr_crashes_sampled = !sampled;
    cr_wall_seconds = Unix.gettimeofday () -. t0;
    cr_failures = List.rev !failures;
  }

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "%s: crash after PM event %d (mode %s%s): %s"
    f.workload f.crash_index (mode_name f.mode)
    (match f.survival_seed with
    | Some s -> Printf.sprintf ", survival seed %d" s
    | None -> "")
    f.detail

let pp_result ppf r =
  Format.fprintf ppf
    "%-12s %5d events, %5d points tested (%d skipped), %6d crash samples in \
     %.2fs (%.0f points/s), %s%s%s%s"
    r.workload r.total_events r.points_tested r.points_skipped
    r.crashes_sampled r.wall_seconds (points_per_sec r)
    (match r.trace_report with
    | Some rep when not (Mod_core.Consistency.ok rep) ->
        Printf.sprintf "trace: %d violation(s), "
          (List.length rep.Mod_core.Consistency.violations)
    | Some _ -> "trace: ok, "
    | None -> "")
    (match r.failures with
    | [] -> "oracle: ok"
    | fs -> Printf.sprintf "oracle: %d violation(s)" (List.length fs))
    (if r.fault_samples > 0 then
       Printf.sprintf ", faults: %d samples (%d recovered, %d degraded, %d \
                       root fallbacks)"
         r.fault_samples r.fault_recovered r.fault_degraded r.fault_fallbacks
     else "")
    (if r.shards_resequenced > 0 then
       Printf.sprintf ", %d shard(s) re-swept after worker death"
         r.shards_resequenced
     else "")

let pp_cfailure ppf (f : cfailure) =
  if f.cf_crash_index < 0 then
    Format.fprintf ppf "%s (%d writers, schedule %s): %s" f.cf_workload
      f.cf_writers
      (Interleave.schedule_name f.cf_schedule)
      f.cf_detail
  else
    Format.fprintf ppf
      "%s (%d writers, schedule %s): crash after PM event %d (mode %s%s): %s"
      f.cf_workload f.cf_writers
      (Interleave.schedule_name f.cf_schedule)
      f.cf_crash_index (mode_name f.cf_mode)
      (match f.cf_survival_seed with
      | Some s -> Printf.sprintf ", survival seed %d" s
      | None -> "")
      f.cf_detail

let pp_cresult ppf r =
  Format.fprintf ppf
    "%-12s %d writers x %d ops, %d schedules, %5d events, %5d points tested \
     (%d skipped), %6d crash samples in %.2fs (%.0f points/s), %s"
    r.cr_workload r.cr_writers r.cr_ops r.cr_schedules r.cr_total_events
    r.cr_points_tested r.cr_points_skipped r.cr_crashes_sampled
    r.cr_wall_seconds (cpoints_per_sec r)
    (match r.cr_failures with
    | [] -> "oracle: ok"
    | fs -> Printf.sprintf "oracle: %d violation(s)" (List.length fs))
