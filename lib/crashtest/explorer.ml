(** Exhaustive crash-point exploration.

    A workload is re-run deterministically with the {!Pmem.Region} crash
    scheduler armed at budget 1, 2, ..., so a simulated power failure is
    injected after every single PM event (store / clwb / sfence).  At
    each crash point the memory image is snapshotted and sampled under
    the three crash modes -- [Drop_inflight] and [Keep_inflight] are
    deterministic corner cases; [Randomize] is sampled K times from
    explicit, replayable survival seeds -- then recovered and checked
    against the durable-linearizability oracle.  A full (uncrashed) run
    is also traced and fed to the Section 5.4 consistency checker as a
    second invariant.

    Large runs can be strided or capped; whatever is skipped is reported
    through [log] rather than silently dropped. *)

type config = {
  stride : int;  (** test every [stride]-th crash point *)
  randomize_samples : int;  (** survival samples per point in Randomize *)
  seed : int;  (** master seed survival seeds are derived from *)
  modes : Pmem.Region.crash_mode list;
  capacity_words : int;
  heap_seed : int;
  max_points : int option;  (** cap on tested points (strided sweeps) *)
  log : string -> unit;
}

let default =
  {
    stride = 1;
    randomize_samples = 3;
    seed = 1;
    modes =
      [
        Pmem.Region.Drop_inflight;
        Pmem.Region.Keep_inflight;
        Pmem.Region.Randomize;
      ];
    capacity_words = 1 lsl 14;
    heap_seed = 42;
    max_points = None;
    log = ignore;
  }

type failure = {
  workload : string;
  ops : int;
  crash_index : int;  (** PM event the power failed after *)
  mode : Pmem.Region.crash_mode;
  survival_seed : int option;  (** Randomize line-survival seed *)
  detail : string;
}

type result = {
  workload : string;
  ops : int;
  total_events : int;
  points_tested : int;
  points_skipped : int;
  crashes_sampled : int;
  trace_report : Mod_core.Consistency.report option;
  failures : failure list;
}

let ok r =
  r.failures = []
  && match r.trace_report with
     | Some rep -> Mod_core.Consistency.ok rep
     | None -> true

let mode_name = function
  | Pmem.Region.Drop_inflight -> "drop"
  | Pmem.Region.Keep_inflight -> "keep"
  | Pmem.Region.Randomize -> "randomize"

let mode_of_name = function
  | "drop" -> Ok Pmem.Region.Drop_inflight
  | "keep" -> Ok Pmem.Region.Keep_inflight
  | "randomize" | "random" -> Ok Pmem.Region.Randomize
  | s -> Error (Printf.sprintf "unknown crash mode %S (drop|keep|randomize)" s)

(* Survival seeds are a pure function of (master seed, crash point,
   sample index): any failure replays bit-for-bit from its triple. *)
let survival_seed cfg ~crash_index ~k =
  (cfg.seed * 1_000_003) + (crash_index * 131) + k

type crashed = {
  c_heap : Pmalloc.Heap.t;
  c_inst : Workload.instance;
  c_history : Workload.state list;  (** distinct committed states, newest first *)
  c_pending : Workload.state option;
}

(* Run [w] on a fresh deterministic heap; if [budget] is given, power
   fails after that many PM events (counted from just after heap
   creation) and the interrupted execution is returned. *)
let run_until cfg (w : Workload.t) ~budget =
  let heap =
    Pmalloc.Heap.create ~capacity_words:cfg.capacity_words ~trace:true
      ~seed:cfg.heap_seed ()
  in
  let region = Pmalloc.Heap.region heap in
  let base_events = Pmem.Region.pm_events region in
  (match budget with
  | Some n -> Pmem.Region.set_crash_after region n
  | None -> ());
  let history = ref [ w.model.(0) ] in
  let pending = ref None in
  let inst = w.make heap in
  match
    inst.Workload.init ();
    for i = 0 to w.ops - 1 do
      pending := Some w.model.(i + 1);
      inst.Workload.run_op i;
      pending := None;
      if w.model.(i + 1) <> List.hd !history then
        history := w.model.(i + 1) :: !history
    done
  with
  | () ->
      Pmem.Region.clear_crash_point region;
      `Completed (Pmem.Region.pm_events region - base_events, heap)
  | exception Pmem.Region.Crash_point ->
      `Crashed
        { c_heap = heap; c_inst = inst; c_history = !history;
          c_pending = !pending }

let recover_and_check (c : crashed) =
  let recovered =
    match
      c.c_inst.Workload.recover ();
      c.c_inst.Workload.dump ()
    with
    | s -> Ok s
    | exception e -> Error e
  in
  Oracle.check ~history:c.c_history ~pending:c.c_pending ~recovered

(* Sample one crash point: snapshot the interrupted image, then for each
   mode (and each survival seed, under Randomize) restore, crash,
   recover and consult the oracle. *)
let sample_point cfg (w : Workload.t) ~crash_index (c : crashed) =
  let region = Pmalloc.Heap.region c.c_heap in
  let snap = Pmem.Region.snapshot region in
  let sampled = ref 0 in
  let failures = ref [] in
  List.iter
    (fun mode ->
      let samples =
        match mode with
        | Pmem.Region.Randomize -> cfg.randomize_samples
        | Pmem.Region.Drop_inflight | Pmem.Region.Keep_inflight -> 1
      in
      for k = 0 to samples - 1 do
        Pmem.Region.restore region snap;
        let seed =
          match mode with
          | Pmem.Region.Randomize ->
              Some (survival_seed cfg ~crash_index ~k)
          | _ -> None
        in
        Pmalloc.Heap.crash ~mode ?seed c.c_heap;
        incr sampled;
        match recover_and_check c with
        | Oracle.Consistent -> ()
        | Oracle.Violation detail ->
            failures :=
              {
                workload = w.Workload.name;
                ops = w.Workload.ops;
                crash_index;
                mode;
                survival_seed = seed;
                detail;
              }
              :: !failures
      done)
    cfg.modes;
  (!sampled, List.rev !failures)

let explore ?(cfg = default) (w : Workload.t) =
  let total_events, trace_report =
    match run_until cfg w ~budget:None with
    | `Completed (events, heap) ->
        let report =
          if w.Workload.check_trace then
            Some (Mod_core.Consistency.check (Pmalloc.Heap.trace heap))
          else None
        in
        (events, report)
    | `Crashed _ -> assert false (* no budget armed *)
  in
  let tested = ref 0 in
  let sampled = ref 0 in
  let failures = ref [] in
  let budget = ref 1 in
  let stop = ref false in
  while not !stop do
    let capped =
      match cfg.max_points with Some m -> !tested >= m | None -> false
    in
    if capped || !budget > total_events then stop := true
    else
      match run_until cfg w ~budget:(Some !budget) with
      | `Completed _ ->
          (* the budget outlived the execution: sweep is complete *)
          stop := true
      | `Crashed c ->
          incr tested;
          let n, fs = sample_point cfg w ~crash_index:!budget c in
          sampled := !sampled + n;
          failures := !failures @ fs;
          budget := !budget + cfg.stride
  done;
  let skipped = max 0 (total_events - !tested) in
  if skipped > 0 then
    cfg.log
      (Printf.sprintf
         "%s: tested %d of %d crash points (stride %d%s), %d skipped"
         w.Workload.name !tested total_events cfg.stride
         (match cfg.max_points with
         | Some m -> Printf.sprintf ", cap %d" m
         | None -> "")
         skipped);
  {
    workload = w.Workload.name;
    ops = w.Workload.ops;
    total_events;
    points_tested = !tested;
    points_skipped = skipped;
    crashes_sampled = !sampled;
    trace_report;
    failures = !failures;
  }

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "%s: crash after PM event %d (mode %s%s): %s"
    f.workload f.crash_index (mode_name f.mode)
    (match f.survival_seed with
    | Some s -> Printf.sprintf ", survival seed %d" s
    | None -> "")
    f.detail

let pp_result ppf r =
  Format.fprintf ppf
    "%-12s %5d events, %5d points tested (%d skipped), %6d crash samples, %s%s"
    r.workload r.total_events r.points_tested r.points_skipped
    r.crashes_sampled
    (match r.trace_report with
    | Some rep when not (Mod_core.Consistency.ok rep) ->
        Printf.sprintf "trace: %d violation(s), "
          (List.length rep.Mod_core.Consistency.violations)
    | Some _ -> "trace: ok, "
    | None -> "")
    (match r.failures with
    | [] -> "oracle: ok"
    | fs -> Printf.sprintf "oracle: %d violation(s)" (List.length fs))
