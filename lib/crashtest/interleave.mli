(** Deterministic interleaving of concurrent writers over one heap.

    Writers are cooperative effect-based fibers; every PM event (store /
    clwb / sfence) is a preemption point, wired through the
    {!Pmem.Region} event hook.  Straight OCaml between PM events is
    atomic; {!Pmem.Region.atomic} sections (the root-record CAS) never
    preempt internally.  Any interleaving replays bit-for-bit from
    [(schedule, writers, crash budget)]. *)

type schedule =
  | Round_robin of int  (** switch writers every [q] PM events *)
  | Seeded of int  (** PRNG-driven writer choice at every PM event *)

val schedule_name : schedule -> string
(** Canonical spelling, e.g. ["rr3"], ["seeded17"] (CLI / JSON key). *)

val schedule_of_name : string -> (schedule, string) result

val yield : unit -> unit
(** Cooperative yield without a PM event, for spin-waits
    ({!Pmstm.Norec.set_yield}).  A no-op outside {!run}. *)

val run : Pmem.Region.t -> schedule:schedule -> (unit -> unit) array -> unit
(** Run the writers to completion, interleaved per [schedule].  A
    writer's exception -- notably {!Pmem.Region.Crash_point} from an
    armed crash budget -- propagates immediately; the other writers'
    suspended fibers are abandoned (a power failure does not unwind the
    other core's stack).  The event hook is always uninstalled on
    exit. *)
