(** Durable-linearizability oracle.

    Sequential form: after a crash the recovered abstract state must
    equal the model state at a FASE boundary no older than the
    penultimate committed operation (buffered durable linearizability
    under epoch persistency, paper Section 5.1).

    Concurrent form: with several writers racing commits at one root
    the installed states still form a total order (the root-record CAS
    serializes them), but durability lags per thread -- the recovered
    state must be a linearization-consistent cut no older than each
    thread's penultimate committed operation, or the would-be state of
    an in-flight commit. *)

type verdict = Consistent | Violation of string

val acceptable : history:string list -> pending:string option -> string list
(** The window of states a crash may legally expose: the latest
    committed state, the distinct state before it, and the mid-flight
    operation's state if any.  [history] is newest-first. *)

val check :
  history:string list ->
  pending:string option ->
  recovered:(string, exn) result ->
  verdict
(** Sequential check.  [Error exn] (recovery raised) is always a
    violation: recovery must degrade typedly, never throw on read. *)

val is_consistent : verdict -> bool

(** {1 Concurrent histories} *)

type tracker
(** Per-execution bookkeeping for concurrent writers: the totally
    ordered committed model states (recorded at each commit's
    linearization point) plus each writer's in-flight state.  The
    tracked states are what the winning operation {e must} have
    produced, so lost updates surface as a recovered state matching no
    cut. *)

val tracker : writers:int -> init:string -> tracker

val track_pending : tracker -> writer:int -> string -> unit
(** The writer is about to attempt its commit swing; [state] is the
    model state its operation yields applied to the current model.
    Call once per CAS attempt -- retries recompute and overwrite. *)

val track_commit : tracker -> writer:int -> string -> unit
(** The writer's commit won; [state] is now the latest durably-decided
    model state (clears the writer's pending). *)

val latest : tracker -> string
(** Newest committed model state ([init] before any commit): what an
    uncrashed run must observe -- the serializability check. *)

val check_concurrent : tracker -> recovered:(string, exn) result -> verdict
(** A recovered state is consistent iff it equals the tracked model
    state at some cut depth where every writer has at most one
    committed operation newer than the cut (only the last root write
    per thread can still be undrained), or one writer's pending
    state. *)
