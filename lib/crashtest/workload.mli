(** Deterministic workload scripts for the crash-point explorer.

    A workload is a fixed, seed-determined sequence of operations
    against one durable structure, paired with a purely volatile model
    of the abstract state after every prefix of operations.  States are
    rendered canonically (sorted, fully explicit) so the
    durable-linearizability oracle can compare a recovered structure
    against model prefixes with plain string equality. *)

type state = string

type instance = {
  init : unit -> unit;  (** durable initialization (may commit) *)
  run_op : int -> unit;  (** apply operation [i] through the structure *)
  dump : unit -> state;  (** canonical view of the (recovered) state *)
  recover : unit -> unit;  (** post-crash recovery for this workload *)
}

type t = {
  name : string;
  ops : int;
  negative : bool;
      (** negative control: the oracle is expected to report violations *)
  check_trace : bool;
      (** also run the Section 5.4 trace checker (MOD-only invariant) *)
  model : state array;  (** [model.(i)] = state after [i] operations *)
  make : Pmalloc.Heap.t -> instance;
      (** per-heap instance; construction performs no PM work ([init]
          does, so a crash can land inside initialization too) *)
}

(** {1 Registry} *)

val mod_names : string list
(** Workloads whose traces satisfy the Section 5.4 checker. *)

val basic_names : string list
(** One structure, one root slot -- the Backup-eligible subset. *)

val stm_names : string list
val negative_names : string list

val names : string list
(** Everything {!build} accepts. *)

val backup_names : string list
(** Workloads accepting [persist:Backup]. *)

val build : ?persist:Pmalloc.Heap.policy -> string -> ops:int -> t
(** Construct a registered workload.  [Invalid_argument] on an unknown
    name or an unsupported [persist] policy. *)

(** {1 Concurrent workloads}

    A concurrent workload runs [cwriters] deterministic per-writer
    scripts under the cooperative interleaving scheduler
    ({!Interleave.run}); correctness is judged by the concurrent oracle
    against the model states recorded in [c_tracker] at each commit's
    linearization point. *)

type cinstance = {
  c_init : unit -> unit;  (** durable initialization (runs uninterleaved) *)
  c_writers : (unit -> unit) array;  (** one fiber body per writer *)
  c_tracker : Oracle.tracker;
  c_dump : unit -> state;
  c_recover : unit -> unit;
}

type ct = {
  cname : string;
  cwriters : int;
  cops : int;  (** operations per writer *)
  cnegative : bool;
      (** the concurrent oracle is expected to catch this workload *)
  cmake : Pmalloc.Heap.t -> cinstance;
}

val concurrent_positive_names : string list
val concurrent_negative_names : string list

val concurrent_names : string list
(** Everything {!cbuild} accepts. *)

val cbuild : string -> writers:int -> ops:int -> ct
(** Construct a registered concurrent workload.  [Invalid_argument] on
    an unknown name or [writers < 1]. *)
