(** Durable-linearizability oracle.

    MOD provides buffered durable linearizability under epoch persistency
    (paper Section 5.1): after a crash, the recovered abstract state must
    equal the model state at a FASE boundary no older than the
    penultimate committed operation -- the final root write's flush may
    still have been in flight, and an operation that was mid-flight at
    the crash may or may not have committed.  Anything else (a torn
    state, a lost older operation, a phantom value) is a violation. *)

type verdict = Consistent | Violation of string

(* [acceptable] is the window of states a crash may legally expose:
   the most recent committed state, the distinct state before it (its
   root write was the only one whose flush could still be in flight --
   every older root write was drained by a later FASE's fence), and the
   state of the operation that was mid-flight when power failed. *)
let acceptable ~history ~pending =
  let committed =
    match history with
    | latest :: previous :: _ -> [ latest; previous ]
    | l -> l
  in
  match pending with None -> committed | Some s -> s :: committed

let check ~history ~pending ~recovered =
  let ok = acceptable ~history ~pending in
  match recovered with
  | Error exn ->
      Violation
        (Printf.sprintf "reading the recovered structure raised %s"
           (Printexc.to_string exn))
  | Ok state ->
      if List.mem state ok then Consistent
      else
        Violation
          (Printf.sprintf
             "recovered state %s is not at a FASE boundary (acceptable: %s)"
             state
             (String.concat " | " ok))

let is_consistent = function Consistent -> true | Violation _ -> false

(* -- concurrent histories -------------------------------------------------- *)

(* With several writers racing commits at one root, the installed states
   still form a total order (the root-record CAS serializes them), but
   durability lags per thread: the criterion is a linearization-
   consistent cut no older than each thread's penultimate committed
   operation.  The tracker records, at each commit's linearization
   point, the MODEL state the winning operation must have produced --
   not the state the structure happens to hold -- so lost updates
   surface as a recovered state matching no cut. *)

type commit = { writer : int; state : string }

type tracker = {
  t_init : string;
  mutable t_commits : commit list;  (** newest first *)
  t_pendings : string option array;  (** per-writer in-flight state *)
}

let tracker ~writers ~init =
  { t_init = init; t_commits = []; t_pendings = Array.make writers None }

(* The writer is about to (try to) swing the commit in: [state] is the
   model state its operation yields applied to the current model.  Safe
   to call once per CAS attempt -- a retry recomputes and overwrites. *)
let track_pending tr ~writer state = tr.t_pendings.(writer) <- Some state

(* The writer's CAS won: [state] is now the latest durably-decided
   model state. *)
let track_commit tr ~writer state =
  tr.t_commits <- { writer; state } :: tr.t_commits;
  tr.t_pendings.(writer) <- None

(* The cut at depth [d] (0 = after every commit, [length commits] =
   initial state) is linearization-consistent iff every writer has at
   most one committed operation newer than the cut -- only the last
   root write per thread can still be undrained. *)
let cut_consistent commits ~depth =
  let newer = List.filteri (fun i _ -> i < depth) commits in
  let counts = Hashtbl.create 4 in
  List.for_all
    (fun c ->
      let seen =
        match Hashtbl.find_opt counts c.writer with Some n -> n | None -> 0
      in
      Hashtbl.replace counts c.writer (seen + 1);
      seen < 1)
    newer

(* Newest committed model state: what an uncrashed run must dump. *)
let latest tr =
  match tr.t_commits with [] -> tr.t_init | c :: _ -> c.state

let check_concurrent (tr : tracker) ~recovered =
  match recovered with
  | Error exn ->
      Violation
        (Printf.sprintf "reading the recovered structure raised %s"
           (Printexc.to_string exn))
  | Ok state ->
      let ncommits = List.length tr.t_commits in
      let state_at d =
        if d = ncommits then tr.t_init
        else (List.nth tr.t_commits d).state
      in
      let rec cut_ok d =
        d <= ncommits
        && ((state_at d = state && cut_consistent tr.t_commits ~depth:d)
            || cut_ok (d + 1))
      in
      let pending_ok =
        Array.exists (function Some s -> s = state | None -> false)
          tr.t_pendings
      in
      if cut_ok 0 || pending_ok then Consistent
      else
        let window =
          List.filteri (fun d _ -> d <= 2) (List.map (fun c -> c.state)
            tr.t_commits @ [ tr.t_init ])
        in
        let pend =
          Array.to_list tr.t_pendings
          |> List.filter_map Fun.id
        in
        Violation
          (Printf.sprintf
             "recovered state %s is not a linearization-consistent cut \
              (newest committed: %s%s)"
             state
             (String.concat " | " window)
             (match pend with
             | [] -> ""
             | l -> "; pending: " ^ String.concat " | " l))
