(** Durable-linearizability oracle.

    MOD provides buffered durable linearizability under epoch persistency
    (paper Section 5.1): after a crash, the recovered abstract state must
    equal the model state at a FASE boundary no older than the
    penultimate committed operation -- the final root write's flush may
    still have been in flight, and an operation that was mid-flight at
    the crash may or may not have committed.  Anything else (a torn
    state, a lost older operation, a phantom value) is a violation. *)

type verdict = Consistent | Violation of string

(* [acceptable] is the window of states a crash may legally expose:
   the most recent committed state, the distinct state before it (its
   root write was the only one whose flush could still be in flight --
   every older root write was drained by a later FASE's fence), and the
   state of the operation that was mid-flight when power failed. *)
let acceptable ~history ~pending =
  let committed =
    match history with
    | latest :: previous :: _ -> [ latest; previous ]
    | l -> l
  in
  match pending with None -> committed | Some s -> s :: committed

let check ~history ~pending ~recovered =
  let ok = acceptable ~history ~pending in
  match recovered with
  | Error exn ->
      Violation
        (Printf.sprintf "reading the recovered structure raised %s"
           (Printexc.to_string exn))
  | Ok state ->
      if List.mem state ok then Consistent
      else
        Violation
          (Printf.sprintf
             "recovered state %s is not at a FASE boundary (acceptable: %s)"
             state
             (String.concat " | " ok))

let is_consistent = function Consistent -> true | Violation _ -> false
