(** Deterministic workload scripts for the crash-point explorer.

    A workload is a fixed, seed-determined sequence of operations against
    one durable structure, paired with a purely volatile model of the
    abstract state after every prefix of operations.  States are rendered
    canonically (sorted, fully explicit) so the durable-linearizability
    oracle can compare a recovered structure against model prefixes with
    plain string equality.

    [make] builds a per-heap instance whose closures apply operations,
    recover after a crash, and dump the recovered abstract state.
    Instance construction itself performs no PM work; [init] does, so a
    crash can land inside initialization too. *)

type state = string

type instance = {
  init : unit -> unit;  (** durable initialization (may commit) *)
  run_op : int -> unit;  (** apply operation [i] through the structure *)
  dump : unit -> state;  (** canonical view of the (recovered) state *)
  recover : unit -> unit;  (** post-crash recovery for this workload *)
}

type t = {
  name : string;
  ops : int;
  negative : bool;
      (** negative control: the oracle is expected to report violations *)
  check_trace : bool;
      (** also run the Section 5.4 trace checker (MOD-only invariant) *)
  model : state array;  (** [model.(i)] = state after [i] operations *)
  make : Pmalloc.Heap.t -> instance;
}

let seed_of name ~ops = (Hashtbl.hash name * 65599) + ops

(* Backup-policy plumbing.  A workload built with [~persist:Backup] runs
   the same script against the same model (seeds key off the canonical
   name), but the structure commits under the "don't persist all" policy:
   interior nodes stay volatile-clean and recovery replays the slot's op
   log.  Dumps therefore reconstruct before reading -- a no-op under Full
   -- because the kill-9 harness dumps a freshly reopened heap and the
   explorer dumps after recovery cleared the volatile backup state.  The
   log append is an in-place write pattern by design, so the Section 5.4
   MOD trace invariant is only checked under Full. *)
let is_backup = function Some Pmalloc.Heap.Backup -> true | _ -> false

(* -- canonical renderings ------------------------------------------------- *)

let render_ints l =
  "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

let render_pairs l =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) l)
  ^ "}"

(* [prefix_states ~init ~apply script] is the ops+1 abstract states after
   every prefix of [script], starting from [init]. *)
let prefix_states ~init ~apply script =
  let _, acc =
    List.fold_left
      (fun (cur, acc) op ->
        let next = apply cur op in
        (next, next :: acc))
      (init, [ init ]) script
  in
  Array.of_list (List.rev acc)

(* -- map ------------------------------------------------------------------ *)

module IntMap = Map.Make (Int)
module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

type map_op = Minsert of int * int | Mremove of int

let map_script ~ops seed =
  let rng = Random.State.make [| seed |] in
  List.init ops (fun _ ->
      let k = Random.State.int rng 24 in
      if Random.State.int rng 3 < 2 then
        Minsert (k, Random.State.int rng 1000)
      else Mremove k)

let map_model script =
  Array.map
    (fun m -> render_pairs (IntMap.bindings m))
    (prefix_states ~init:IntMap.empty
       ~apply:(fun m -> function
         | Minsert (k, v) -> IntMap.add k v m
         | Mremove k -> IntMap.remove k m)
       script)

let dump_map heap =
  Imap.reconstruct heap ~slot:0;
  let h = Mod_core.Handle.make heap ~slot:0 in
  render_pairs
    (IntMap.bindings (Imap.fold h IntMap.add IntMap.empty))

let map_workload ?persist ~ops () =
  let script = map_script ~ops (seed_of "map" ~ops) in
  let arr = Array.of_list script in
  {
    name = "map";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model = map_model script;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () -> ignore (Imap.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Minsert (k, v) -> Imap.insert h k v
              | Mremove k -> ignore (Imap.remove h k : bool));
          dump = (fun () -> dump_map heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* A deliberately broken MOD map: commits swing the root pointer without
   the preceding sfence, so the durable root can point at a shadow whose
   nodes never became durable.  The Section 5.4 trace checker does not
   catch this (it only inspects flush-before-fence pairs, and there are
   no fences); only the durable-linearizability oracle does. *)
let map_nofence_workload ~ops =
  let script = map_script ~ops (seed_of "map" ~ops) in
  let arr = Array.of_list script in
  let base = map_workload ~ops () in
  let broken_commit heap version =
    let old = Pmalloc.Heap.root_get heap 0 in
    (* missing ordering point: no sfence before the root swing *)
    Pmalloc.Heap.root_set heap 0 version;
    if Pmem.Word.is_ptr old && not (Pmem.Word.is_null old) then
      Pmalloc.Heap.release heap (Pmem.Word.to_ptr old)
  in
  {
    base with
    name = "map-nofence";
    negative = true;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init = (fun () -> ());
          run_op =
            (fun i ->
              let v = Mod_core.Handle.current h in
              match arr.(i) with
              | Minsert (k, value) ->
                  broken_commit heap (Imap.insert_pure heap v k value)
              | Mremove k ->
                  let shadow, removed = Imap.remove_pure heap v k in
                  if removed then broken_commit heap shadow);
          dump = (fun () -> dump_map heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* -- set ------------------------------------------------------------------ *)

module Iset = Mod_core.Dset.Make (Pfds.Kv.Int)
module IntSet = Set.Make (Int)

type set_op = Sadd of int | Sremove of int

let set_workload ?persist ~ops () =
  let rng = Random.State.make [| seed_of "set" ~ops |] in
  let script =
    List.init ops (fun _ ->
        let k = Random.State.int rng 24 in
        if Random.State.int rng 3 < 2 then Sadd k else Sremove k)
  in
  let arr = Array.of_list script in
  let model =
    Array.map
      (fun s -> render_ints (IntSet.elements s))
      (prefix_states ~init:IntSet.empty
         ~apply:(fun s -> function
           | Sadd k -> IntSet.add k s
           | Sremove k -> IntSet.remove k s)
         script)
  in
  let dump heap =
    Iset.reconstruct heap ~slot:0;
    let h = Mod_core.Handle.make heap ~slot:0 in
    render_ints (IntSet.elements (Iset.fold h IntSet.add IntSet.empty))
  in
  {
    name = "set";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () -> ignore (Iset.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Sadd k -> Iset.add h k
              | Sremove k -> ignore (Iset.remove h k : bool));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* -- stack / queue -------------------------------------------------------- *)

type sq_op = Push of int | Pop

let sq_script name ~ops =
  let rng = Random.State.make [| seed_of name ~ops |] in
  let rec gen i depth acc =
    if i = ops then List.rev acc
    else if depth > 0 && Random.State.int rng 3 = 0 then
      gen (i + 1) (depth - 1) (Pop :: acc)
    else gen (i + 1) (depth + 1) (Push (Random.State.int rng 1000) :: acc)
  in
  gen 0 0 []

let stack_workload ?persist ~ops () =
  let script = sq_script "stack" ~ops in
  let arr = Array.of_list script in
  let model =
    Array.map render_ints
      (prefix_states ~init:[]
         ~apply:(fun s -> function
           | Push v -> v :: s
           | Pop -> ( match s with [] -> [] | _ :: tl -> tl))
         script)
  in
  let dump heap =
    Mod_core.Dstack.reconstruct heap ~slot:0;
    let h = Mod_core.Handle.make heap ~slot:0 in
    render_ints (List.map Pmem.Word.to_int (Mod_core.Dstack.to_list h))
  in
  {
    name = "stack";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () ->
              ignore (Mod_core.Dstack.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Push v -> Mod_core.Dstack.push h (Pmem.Word.of_int v)
              | Pop -> ignore (Mod_core.Dstack.pop h));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

let queue_workload ?persist ~ops () =
  let script = sq_script "queue" ~ops in
  let arr = Array.of_list script in
  let model =
    Array.map render_ints
      (prefix_states ~init:[]
         ~apply:(fun q -> function
           | Push v -> q @ [ v ]
           | Pop -> ( match q with [] -> [] | _ :: tl -> tl))
         script)
  in
  let dump heap =
    Mod_core.Dqueue.reconstruct heap ~slot:0;
    let h = Mod_core.Handle.make heap ~slot:0 in
    if not (Mod_core.Handle.is_initialized h) then render_ints []
    else
      render_ints (List.map Pmem.Word.to_int (Mod_core.Dqueue.to_list h))
  in
  {
    name = "queue";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () ->
              ignore (Mod_core.Dqueue.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Push v -> Mod_core.Dqueue.enqueue h (Pmem.Word.of_int v)
              | Pop -> ignore (Mod_core.Dqueue.dequeue h));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* -- vector / sequence ---------------------------------------------------- *)

type vec_op = Vpush of int | Vset of int * int | Vpop

let vec_script name ~ops =
  let rng = Random.State.make [| seed_of name ~ops |] in
  let rec gen i size acc =
    if i = ops then List.rev acc
    else
      let choice = if size = 0 then 0 else Random.State.int rng 4 in
      match choice with
      | 0 | 3 ->
          gen (i + 1) (size + 1) (Vpush (Random.State.int rng 1000) :: acc)
      | 1 ->
          gen (i + 1) size
            (Vset (Random.State.int rng size, Random.State.int rng 1000)
            :: acc)
      | _ -> gen (i + 1) (size - 1) (Vpop :: acc)
  in
  gen 0 0 []

let vec_like_states script =
  let apply l = function
    | Vpush v -> l @ [ v ]
    | Vset (i, v) -> List.mapi (fun j x -> if j = i then v else x) l
    | Vpop -> ( match List.rev l with [] -> [] | _ :: tl -> List.rev tl)
  in
  Array.map render_ints (prefix_states ~init:[] ~apply script)

let vec_workload ?persist ~ops () =
  let script = vec_script "vec" ~ops in
  let arr = Array.of_list script in
  let dump heap =
    Mod_core.Dvec.reconstruct heap ~slot:0;
    let h = Mod_core.Handle.make heap ~slot:0 in
    if not (Mod_core.Handle.is_initialized h) then render_ints []
    else render_ints (List.map Pmem.Word.to_int (Mod_core.Dvec.to_list h))
  in
  {
    name = "vec";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model = vec_like_states script;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () ->
              ignore (Mod_core.Dvec.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Vpush v -> Mod_core.Dvec.push_back h (Pmem.Word.of_int v)
              | Vset (j, v) -> Mod_core.Dvec.set h j (Pmem.Word.of_int v)
              | Vpop -> ignore (Mod_core.Dvec.pop_back h));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

let seq_workload ?persist ~ops () =
  let script = vec_script "seq" ~ops in
  let arr = Array.of_list script in
  let dump heap =
    Mod_core.Dseq.reconstruct heap ~slot:0;
    let h = Mod_core.Handle.make heap ~slot:0 in
    if not (Mod_core.Handle.is_initialized h) then render_ints []
    else render_ints (List.map Pmem.Word.to_int (Mod_core.Dseq.to_list h))
  in
  {
    name = "seq";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model = vec_like_states script;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () ->
              ignore (Mod_core.Dseq.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Vpush v -> Mod_core.Dseq.push_back h (Pmem.Word.of_int v)
              | Vset (j, v) -> Mod_core.Dseq.set h j (Pmem.Word.of_int v)
              | Vpop ->
                  let size = Mod_core.Dseq.size h in
                  Mod_core.Dseq.restrict h ~pos:0 ~len:(size - 1));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* -- priority queue ------------------------------------------------------- *)

type pq_op = Pinsert of int | Pdelete_min

let pqueue_workload ?persist ~ops () =
  let rng = Random.State.make [| seed_of "pqueue" ~ops |] in
  let rec gen i size acc =
    if i = ops then List.rev acc
    else if size > 0 && Random.State.int rng 3 = 0 then
      gen (i + 1) (size - 1) (Pdelete_min :: acc)
    else gen (i + 1) (size + 1) (Pinsert (Random.State.int rng 1000) :: acc)
  in
  let script = gen 0 0 [] in
  let arr = Array.of_list script in
  let model =
    Array.map render_ints
      (prefix_states ~init:[]
         ~apply:(fun s -> function
           | Pinsert p -> List.sort compare (p :: s)
           | Pdelete_min -> ( match s with [] -> [] | _ :: tl -> tl))
         script)
  in
  let dump heap =
    Mod_core.Dpqueue.reconstruct heap ~slot:0;
    let h = Mod_core.Handle.make heap ~slot:0 in
    render_ints
      (Pfds.Pheap.to_sorted_list_model heap (Mod_core.Handle.current h))
  in
  {
    name = "pqueue";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model;
    make =
      (fun heap ->
        let h = Mod_core.Handle.make heap ~slot:0 in
        {
          init =
            (fun () ->
              ignore (Mod_core.Dpqueue.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              match arr.(i) with
              | Pinsert p -> Mod_core.Dpqueue.insert h p
              | Pdelete_min -> ignore (Mod_core.Dpqueue.delete_min h));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* -- group-commit batching (Batch / CommitSiblings / CommitUnrelated) ----- *)

(* Each logical operation is a group of [batch_group] map sub-operations
   staged into one {!Mod_core.Batch} and retired by a single
   CommitSingle: a crash inside the group must recover to either the
   state before the whole group or after it, never in between. *)
let batch_group = 3

let batched_workload ?persist ~ops () =
  let script =
    map_script ~ops:(ops * batch_group) (seed_of "batched" ~ops)
  in
  let groups =
    Array.init ops (fun i ->
        Array.init batch_group (fun j ->
            List.nth script ((i * batch_group) + j)))
  in
  let model =
    Array.map
      (fun m -> render_pairs (IntMap.bindings m))
      (prefix_states ~init:IntMap.empty
         ~apply:(fun m group ->
           Array.fold_left
             (fun m -> function
               | Minsert (k, v) -> IntMap.add k v m
               | Mremove k -> IntMap.remove k m)
             m group)
         (Array.to_list groups))
  in
  {
    name = "batched";
    ops;
    negative = false;
    check_trace = not (is_backup persist);
    model;
    make =
      (fun heap ->
        let b = Mod_core.Batch.create heap in
        {
          init =
            (fun () -> ignore (Imap.open_or_create ?persist heap ~slot:0));
          run_op =
            (fun i ->
              Array.iter
                (function
                  | Minsert (k, v) ->
                      Mod_core.Batch.stage b ~slot:0 (fun version ->
                          Imap.insert_pure heap version k v)
                  | Mremove k ->
                      Mod_core.Batch.stage b ~slot:0 (fun version ->
                          fst (Imap.remove_pure heap version k)))
                groups.(i);
              ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point));
          dump = (fun () -> dump_map heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* CommitSiblings under crash: one parent object at slot 0 whose two
   fields are independent stacks; every op updates both fields through
   {!Mod_core.Batch.stage_field} and retires them with one fresh parent
   and one fence.  Recovery must see both stacks move together. *)
let siblings_workload ~ops =
  let script = sq_script "siblings" ~ops in
  let arr = Array.of_list script in
  let render (a, b) = render_ints a ^ "|" ^ render_ints b in
  let model =
    Array.map render
      (prefix_states ~init:([], [])
         ~apply:(fun (a, b) -> function
           | Push v -> (v :: a, (v + 500) :: b)
           | Pop -> (
               match (a, b) with
               | _ :: ta, _ :: tb -> (ta, tb)
               | _ -> (a, b)))
         script)
  in
  let dump heap =
    let root = Pmalloc.Heap.root_get heap 0 in
    if Pmem.Word.is_null root then model.(0)
    else
      let parent = Pmem.Word.to_ptr root in
      let stack f =
        List.map Pmem.Word.to_int
          (Pfds.Pstack.to_list heap (Pfds.Node.get heap parent f))
      in
      render_ints (stack 0) ^ "|" ^ render_ints (stack 1)
  in
  {
    name = "siblings";
    ops;
    negative = false;
    check_trace = true;
    model;
    make =
      (fun heap ->
        let b = Mod_core.Batch.create heap in
        {
          init =
            (fun () ->
              (* one FASE: build the two-field parent, install it *)
              let parent = Pfds.Node.alloc heap ~words:2 in
              Pfds.Node.set heap parent 0 Pfds.Pstack.empty;
              Pfds.Node.set heap parent 1 Pfds.Pstack.empty;
              Pfds.Node.finish heap parent;
              Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent));
          run_op =
            (fun i ->
              let stage_stack field f =
                Mod_core.Batch.stage_field b ~slot:0 ~field f
              in
              (match arr.(i) with
              | Push v ->
                  stage_stack 0 (fun w ->
                      Pfds.Pstack.push heap w (Pmem.Word.of_int v));
                  stage_stack 1 (fun w ->
                      Pfds.Pstack.push heap w (Pmem.Word.of_int (v + 500)))
              | Pop ->
                  let pop w =
                    match Pfds.Pstack.pop heap w with
                    | None -> w
                    | Some (_, shadow) -> shadow
                  in
                  stage_stack 0 pop;
                  stage_stack 1 pop);
              ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point));
          dump = (fun () -> dump heap);
          recover = (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* CommitUnrelated under crash: two maps at unrelated root slots 0 and 1,
   both updated in one batch, retired by the shadow fence plus the
   embedded PM-STM root-swing transaction.  A crash inside that
   transaction must roll back both root swings together (the WAL is the
   atomicity mechanism, exactly Figure 8d). *)
let unrelated_workload ~ops =
  let rng = Random.State.make [| seed_of "unrelated" ~ops |] in
  let script =
    List.init ops (fun _ ->
        let k = Random.State.int rng 24 in
        let v = Random.State.int rng 1000 in
        (k, v, Random.State.int rng 3 < 2))
  in
  let arr = Array.of_list script in
  let render (m0, m1) =
    render_pairs (IntMap.bindings m0) ^ "|" ^ render_pairs (IntMap.bindings m1)
  in
  let model =
    Array.map render
      (prefix_states
         ~init:(IntMap.empty, IntMap.empty)
         ~apply:(fun (m0, m1) (k, v, add1) ->
           ( IntMap.add k v m0,
             if add1 then IntMap.add k (v + 1) m1 else IntMap.remove k m1 ))
         script)
  in
  let dump heap =
    dump_map heap ^ "|"
    ^
    let h = Mod_core.Handle.make heap ~slot:1 in
    render_pairs (IntMap.bindings (Imap.fold h IntMap.add IntMap.empty))
  in
  {
    name = "unrelated";
    ops;
    negative = false;
    (* the embedded PM-STM transaction writes in place by design, so the
       Section 5.4 MOD trace invariant does not apply *)
    check_trace = false;
    model;
    make =
      (fun heap ->
        let tx = ref None in
        let batch = ref None in
        {
          init =
            (fun () ->
              let t = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
              tx := Some t;
              batch := Some (Mod_core.Batch.create ~tx:t heap));
          run_op =
            (fun i ->
              let b = Option.get !batch in
              let k, v, add1 = arr.(i) in
              Mod_core.Batch.stage b ~slot:0 (fun version ->
                  Imap.insert_pure heap version k v);
              Mod_core.Batch.stage b ~slot:1 (fun version ->
                  if add1 then Imap.insert_pure heap version k (v + 1)
                  else fst (Imap.remove_pure heap version k));
              ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point));
          dump = (fun () -> dump heap);
          recover =
            (fun () -> ignore (Mod_core.Recovery.recover_exn ?stm:!tx heap));
        });
  }

(* -- PM-STM baselines ----------------------------------------------------- *)

(* An 8-cell counter array updated in place under PMDK-style transactions.
   The undo log makes every committed transaction durable, so recovery
   must observe exactly the last committed state (positive control).  The
   [broken] variant skips the snapshot fences and the commit-time data
   flushes -- the oracle must catch it. *)
let stm_cells = 8

let stm_workload name version ~broken ~ops =
  let rng = Random.State.make [| seed_of name ~ops |] in
  let script =
    List.init ops (fun _ ->
        (Random.State.int rng stm_cells, 1 + Random.State.int rng 99))
  in
  let arr = Array.of_list script in
  let model =
    Array.map
      (fun c -> render_ints (Array.to_list c))
      (prefix_states
         ~init:(Array.make stm_cells 0)
         ~apply:(fun c (idx, delta) ->
           let c' = Array.copy c in
           c'.(idx) <- c'.(idx) + delta;
           c')
         script)
  in
  let dump heap =
    let root = Pmalloc.Heap.root_get heap 1 in
    if Pmem.Word.is_null root then model.(0)
    else
      let body = Pmem.Word.to_ptr root in
      render_ints
        (List.init stm_cells (fun i ->
             Pmem.Word.to_int (Pmalloc.Heap.load heap (body + i))))
  in
  {
    name;
    ops;
    negative = broken;
    check_trace = false (* in-place by design: invariant 1 never holds *);
    model;
    make =
      (fun heap ->
        let tx = ref None in
        let body = ref (-1) in
        {
          init =
            (fun () ->
              let t =
                Pmstm.Tx.create heap ~version ~broken_ordering:broken
              in
              tx := Some t;
              let b =
                Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw
                  ~words:stm_cells
              in
              for i = 0 to stm_cells - 1 do
                Pmalloc.Heap.store heap (b + i) (Pmem.Word.of_int 0)
              done;
              Pmalloc.Heap.flush_block heap b;
              Pmalloc.Heap.root_set heap 1 (Pmem.Word.of_ptr b);
              Pmalloc.Heap.sfence heap;
              body := b);
          run_op =
            (fun i ->
              let t = Option.get !tx in
              let idx, delta = arr.(i) in
              let off = !body + idx in
              Pmstm.Tx.run t (fun () ->
                  Pmstm.Tx.add t ~off ~words:1;
                  let v = Pmem.Word.to_int (Pmstm.Tx.load t off) in
                  Pmstm.Tx.store t off (Pmem.Word.of_int (v + delta))));
          dump = (fun () -> dump heap);
          recover =
            (fun () ->
              ignore (Mod_core.Recovery.recover_exn ?stm:!tx heap));
        });
  }

(* -- concurrent workloads ------------------------------------------------- *)

(* A concurrent workload scripts [cwriters] writers, each with its own
   deterministic operation sequence over one shared structure; the
   interleaving explorer runs them as cooperative fibers.  The shared
   volatile model advances at each commit's linearization point -- the
   {!Oracle.tracker} hooks fire inside the commit protocol, where the
   simulator guarantees no preemption -- so the tracked history is the
   exact total order the root-record CAS (or the NOrec sequence lock)
   serialized. *)

type cinstance = {
  c_init : unit -> unit;  (** single-writer durable initialization *)
  c_writers : (unit -> unit) array;  (** one closure per writer *)
  c_tracker : Oracle.tracker;
  c_dump : unit -> state;
  c_recover : unit -> unit;
}

type ct = {
  cname : string;
  cwriters : int;
  cops : int;  (** operations per writer *)
  cnegative : bool;
  cmake : Pmalloc.Heap.t -> cinstance;
}

(* Per-writer scripts draw from one small key range so writers genuinely
   contend: overlapping keys force CAS retries and validation aborts. *)
let cmap_scripts name ~writers ~ops =
  Array.init writers (fun w ->
      let rng =
        Random.State.make
          [| seed_of (Printf.sprintf "%s-w%d" name w) ~ops |]
      in
      Array.init ops (fun _ ->
          let k = Random.State.int rng 12 in
          if Random.State.int rng 3 < 2 then
            Minsert (k, Random.State.int rng 1000)
          else Mremove k))

let render_map m = render_pairs (IntMap.bindings m)

let cmap_workload ~writers ~ops =
  let scripts = cmap_scripts "cmap" ~writers ~ops in
  {
    cname = "cmap";
    cwriters = writers;
    cops = ops;
    cnegative = false;
    cmake =
      (fun heap ->
        let tr = Oracle.tracker ~writers ~init:(render_map IntMap.empty) in
        let model = ref IntMap.empty in
        let h = Mod_core.Handle.make heap ~slot:0 in
        let run_op w op =
          let apply m =
            match op with
            | Minsert (k, v) -> IntMap.add k v m
            | Mremove k -> IntMap.remove k m
          in
          let build old =
            match op with
            | Minsert (k, v) -> Some (Imap.insert_pure heap old k v, [])
            | Mremove k ->
                let shadow, removed = Imap.remove_pure heap old k in
                if removed then Some (shadow, []) else None
          in
          (* reclaim:false -- a racing writer may still be mid-build over
             the superseded version; recovery GC scrubs the garbage *)
          ignore
            (Mod_core.Handle.update_cas h ~reclaim:false ~build
               ~before_swing:(fun () ->
                 Oracle.track_pending tr ~writer:w
                   (render_map (apply !model)))
               ~after_swing:(fun () ->
                 model := apply !model;
                 Oracle.track_commit tr ~writer:w (render_map !model))
              : int)
        in
        {
          c_init = (fun () -> ignore (Imap.open_or_create heap ~slot:0));
          c_writers =
            Array.init writers (fun w () ->
                Array.iter (run_op w) scripts.(w));
          c_tracker = tr;
          c_dump = (fun () -> dump_map heap);
          c_recover =
            (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

let cset_scripts ~writers ~ops =
  Array.init writers (fun w ->
      let rng =
        Random.State.make
          [| seed_of (Printf.sprintf "cset-w%d" w) ~ops |]
      in
      Array.init ops (fun _ ->
          let k = Random.State.int rng 12 in
          if Random.State.int rng 3 < 2 then Sadd k else Sremove k))

let cset_workload ~writers ~ops =
  let scripts = cset_scripts ~writers ~ops in
  let render s = render_ints (IntSet.elements s) in
  {
    cname = "cset";
    cwriters = writers;
    cops = ops;
    cnegative = false;
    cmake =
      (fun heap ->
        let tr = Oracle.tracker ~writers ~init:(render IntSet.empty) in
        let model = ref IntSet.empty in
        let h = Mod_core.Handle.make heap ~slot:0 in
        let run_op w op =
          let apply s =
            match op with
            | Sadd k -> IntSet.add k s
            | Sremove k -> IntSet.remove k s
          in
          let build old =
            match op with
            | Sadd k -> Some (Iset.add_pure heap old k, [])
            | Sremove k ->
                let shadow, removed = Iset.remove_pure heap old k in
                if removed then Some (shadow, []) else None
          in
          ignore
            (Mod_core.Handle.update_cas h ~reclaim:false ~build
               ~before_swing:(fun () ->
                 Oracle.track_pending tr ~writer:w (render (apply !model)))
               ~after_swing:(fun () ->
                 model := apply !model;
                 Oracle.track_commit tr ~writer:w (render !model))
              : int)
        in
        {
          c_init = (fun () -> ignore (Iset.open_or_create heap ~slot:0));
          c_writers =
            Array.init writers (fun w () ->
                Array.iter (run_op w) scripts.(w));
          c_tracker = tr;
          c_dump =
            (fun () ->
              Iset.reconstruct heap ~slot:0;
              let h = Mod_core.Handle.make heap ~slot:0 in
              render_ints
                (IntSet.elements (Iset.fold h IntSet.add IntSet.empty)));
          c_recover =
            (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

(* Two writers over the NOrec STM: read-modify-write increments of a
   shared counter array, each commit serialized by the sequence lock and
   made durable by the published redo log.  The model advances at the
   publish fence (the durable linearization point). *)
let cstm_norec_workload ~writers ~ops =
  let scripts =
    Array.init writers (fun w ->
        let rng =
          Random.State.make
            [| seed_of (Printf.sprintf "cstm-w%d" w) ~ops |]
        in
        Array.init ops (fun _ ->
            (Random.State.int rng stm_cells, 1 + Random.State.int rng 99)))
  in
  {
    cname = "cstm-norec";
    cwriters = writers;
    cops = ops;
    cnegative = false;
    cmake =
      (fun heap ->
        let render c = render_ints (Array.to_list c) in
        let model = Array.make stm_cells 0 in
        let tr = Oracle.tracker ~writers ~init:(render model) in
        let stm = ref None in
        let body = ref (-1) in
        let run_op w (idx, delta) =
          let s = Option.get !stm in
          let off = !body + idx in
          Pmstm.Norec.run
            ~before_publish:(fun () ->
              let c = Array.copy model in
              c.(idx) <- c.(idx) + delta;
              Oracle.track_pending tr ~writer:w (render c))
            ~after_publish:(fun () ->
              model.(idx) <- model.(idx) + delta;
              Oracle.track_commit tr ~writer:w (render model))
            s
            (fun tx ->
              let v = Pmem.Word.to_int (Pmstm.Norec.read tx off) in
              Pmstm.Norec.write tx off (Pmem.Word.of_int (v + delta)))
        in
        {
          c_init =
            (fun () ->
              let b =
                Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw
                  ~words:stm_cells
              in
              for i = 0 to stm_cells - 1 do
                Pmalloc.Heap.store heap (b + i) (Pmem.Word.of_int 0)
              done;
              Pmalloc.Heap.flush_block heap b;
              Pmalloc.Heap.root_set heap 1 (Pmem.Word.of_ptr b);
              Pmalloc.Heap.sfence heap;
              body := b;
              let s = Pmstm.Norec.create heap in
              Pmstm.Norec.set_yield s Interleave.yield;
              stm := Some s);
          c_writers =
            Array.init writers (fun w () ->
                Array.iter (run_op w) scripts.(w));
          c_tracker = tr;
          c_dump =
            (fun () ->
              let root = Pmalloc.Heap.root_get heap 1 in
              if Pmem.Word.is_null root then render (Array.make stm_cells 0)
              else
                let b = Pmem.Word.to_ptr root in
                render_ints
                  (List.init stm_cells (fun i ->
                       Pmem.Word.to_int (Pmalloc.Heap.load heap (b + i)))));
          c_recover =
            (fun () ->
              ignore (Mod_core.Recovery.recover_exn ~norec:true heap));
        });
  }

(* The concurrent negative control: lock-free CAS commits whose
   pre-swing sfence is missing, so the root record can become durable
   while the shadow nodes it points at are still in flight.  The
   concurrent oracle must catch it; losing attempts leak their shadows
   on purpose (recovery reclaims them -- a real power failure would not
   unwind the loser either). *)
let cmap_nofence_cworkload ~writers ~ops =
  let scripts = cmap_scripts "cmap" ~writers ~ops in
  {
    cname = "cmap-nofence";
    cwriters = writers;
    cops = ops;
    cnegative = true;
    cmake =
      (fun heap ->
        let tr = Oracle.tracker ~writers ~init:(render_map IntMap.empty) in
        let model = ref IntMap.empty in
        let run_op w op =
          let apply m =
            match op with
            | Minsert (k, v) -> IntMap.add k v m
            | Mremove k -> IntMap.remove k m
          in
          let rec attempt () =
            let old, old_seq = Pmalloc.Heap.root_get_versioned heap 0 in
            let shadow =
              match op with
              | Minsert (k, v) -> Some (Imap.insert_pure heap old k v)
              | Mremove k ->
                  let s, removed = Imap.remove_pure heap old k in
                  if removed then Some s else None
            in
            match shadow with
            | None -> ()
            | Some shadow ->
                (* missing ordering point: no sfence before the swing *)
                Oracle.track_pending tr ~writer:w
                  (render_map (apply !model));
                if
                  Pmalloc.Heap.root_cas heap 0 ~expected:old
                    ~expected_seq:old_seq ~desired:shadow
                then begin
                  model := apply !model;
                  Oracle.track_commit tr ~writer:w (render_map !model)
                end
                else attempt ()
          in
          attempt ()
        in
        {
          c_init = (fun () -> ignore (Imap.open_or_create heap ~slot:0));
          c_writers =
            Array.init writers (fun w () ->
                Array.iter (run_op w) scripts.(w));
          c_tracker = tr;
          c_dump = (fun () -> dump_map heap);
          c_recover =
            (fun () -> ignore (Mod_core.Recovery.recover_exn heap));
        });
  }

let concurrent_positive_names = [ "cmap"; "cset"; "cstm-norec" ]
let concurrent_negative_names = [ "cmap-nofence" ]
let concurrent_names = concurrent_positive_names @ concurrent_negative_names

let cbuild name ~writers ~ops =
  if writers < 1 then invalid_arg "Workload.cbuild: writers must be >= 1";
  match name with
  | "cmap" -> cmap_workload ~writers ~ops
  | "cset" -> cset_workload ~writers ~ops
  | "cstm-norec" -> cstm_norec_workload ~writers ~ops
  | "cmap-nofence" -> cmap_nofence_cworkload ~writers ~ops
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Workload.cbuild: unknown concurrent workload %S (expected %s)"
           name
           (String.concat ", " concurrent_names))

(* -- registry ------------------------------------------------------------- *)

let mod_names =
  [
    "map"; "queue"; "stack"; "vec"; "set"; "pqueue"; "seq"; "batched";
    "siblings"; "unrelated";
  ]

(* The seven basic MOD structures: the fault-injection sweep covers
   exactly these.  The composition/STM workloads ride an undo log whose
   count-then-entries protocol is not torn-write-safe by design (the
   paper's FASEs never write multi-word records that must survive
   tearing; the log is the PMDK baseline), so torn faults there would
   report protocol limits, not datastructure bugs. *)
let basic_names = [ "map"; "queue"; "stack"; "vec"; "set"; "pqueue"; "seq" ]

let stm_names = [ "stm14"; "stm15" ]
let negative_names = [ "stm-broken"; "map-nofence" ]
let names = mod_names @ stm_names @ negative_names

(* The workloads that can run under [~persist:Backup]: the seven basic
   structures plus the single-slot batched group commit (whose Single
   commit point becomes a checkpoint).  Siblings/unrelated need
   multi-slot commit points and stage_field, which the Backup policy
   rejects; the STM and negative controls are policy-free baselines. *)
let backup_names = basic_names @ [ "batched" ]

let build ?persist name ~ops =
  (if is_backup persist && not (List.mem name backup_names) then
     invalid_arg
       (Printf.sprintf
          "Workload.build: workload %S does not support the Backup policy \
           (expected %s)"
          name
          (String.concat ", " backup_names)));
  match name with
  | "map" -> map_workload ?persist ~ops ()
  | "queue" -> queue_workload ?persist ~ops ()
  | "stack" -> stack_workload ?persist ~ops ()
  | "vec" -> vec_workload ?persist ~ops ()
  | "set" -> set_workload ?persist ~ops ()
  | "pqueue" -> pqueue_workload ?persist ~ops ()
  | "seq" -> seq_workload ?persist ~ops ()
  | "batched" -> batched_workload ?persist ~ops ()
  | "siblings" -> siblings_workload ~ops
  | "unrelated" -> unrelated_workload ~ops
  | "stm14" -> stm_workload "stm14" Pmstm.Tx.V1_4 ~broken:false ~ops
  | "stm15" -> stm_workload "stm15" Pmstm.Tx.V1_5 ~broken:false ~ops
  | "stm-broken" -> stm_workload "stm-broken" Pmstm.Tx.V1_4 ~broken:true ~ops
  | "map-nofence" -> map_nofence_workload ~ops
  | _ ->
      invalid_arg
        (Printf.sprintf "Workload.build: unknown workload %S (expected %s)"
           name (String.concat ", " names))
