(** Minimal-repro replay and shrinking.

    Every explorer failure is identified by the triple
    [(workload/ops, crash event index, survival seed)]; [replay] re-runs
    exactly that crash deterministically, [command] prints the CLI
    incantation that does the same, and [minimize] shrinks the workload
    to the smallest operation count that still reproduces the failure.

    Replay always executes on a fresh heap and crashes the live image
    directly -- no snapshots, no workers -- so a repro command reproduces
    bit-for-bit regardless of the [snapshot_mode] ([--full-snapshots])
    and [jobs] ([--jobs]) settings the sweep that found it ran under. *)

(* Re-run one crash point, single sample.  [None] means the crash index
   lies beyond the workload's last PM event (nothing to inject). *)
let replay ?(cfg = Explorer.default) (w : Workload.t) ~crash_index ~mode
    ?seed () =
  match Explorer.run_until cfg w ~budget:(Some crash_index) with
  | `Completed _ -> None
  | `Crashed c ->
      Pmalloc.Heap.crash ~mode ?seed c.Explorer.c_heap;
      Some (Explorer.recover_and_check c)

let command (f : Explorer.failure) =
  Printf.sprintf "modpm crashtest --workload %s --ops %d --replay %d --mode %s%s"
    f.Explorer.workload f.Explorer.ops f.Explorer.crash_index
    (Explorer.mode_name f.Explorer.mode)
    (match f.Explorer.survival_seed with
    | Some s -> Printf.sprintf " --survival-seed %d" s
    | None -> "")

let reproduces ?cfg (f : Explorer.failure) =
  let w = Workload.build f.Explorer.workload ~ops:f.Explorer.ops in
  match
    replay ?cfg w ~crash_index:f.Explorer.crash_index ~mode:f.Explorer.mode
      ?seed:f.Explorer.survival_seed ()
  with
  | Some (Oracle.Violation _) -> true
  | Some Oracle.Consistent | None -> false

(* Shrink the workload length: try 1, 2, 4, ... operations and keep the
   first count whose execution still reaches the crash index and still
   violates the oracle there (the crash index and survival seed are
   preserved, so the repro stays bit-for-bit deterministic). *)
let minimize ?cfg (f : Explorer.failure) =
  let fails ops =
    let w = Workload.build f.Explorer.workload ~ops in
    match
      replay ?cfg w ~crash_index:f.Explorer.crash_index
        ~mode:f.Explorer.mode ?seed:f.Explorer.survival_seed ()
    with
    | Some (Oracle.Violation detail) ->
        Some { f with Explorer.ops; detail }
    | Some Oracle.Consistent | None -> None
  in
  let rec go ops =
    if ops >= f.Explorer.ops then f
    else match fails ops with Some f' -> f' | None -> go (ops * 2)
  in
  go 1

(* -- concurrent failures -------------------------------------------------- *)

(* A concurrent crash point is the pair (schedule, crash event index):
   the interleaving is a pure function of the schedule, so re-running
   the writers under the same schedule and budget reconstructs the same
   interrupted image bit-for-bit.  [crash_index = -1] replays the
   uncrashed serializability check instead of a crash. *)
let creplay ?(cfg = Explorer.default) (cw : Workload.ct) ~schedule
    ~crash_index ~mode ?seed () =
  if crash_index < 0 then
    match Explorer.crun_until cfg cw ~schedule ~budget:None with
    | `Crashed _ -> None
    | `Completed (_, _, inst) -> (
        match inst.Workload.c_dump () with
        | final ->
            let expect = Oracle.latest inst.Workload.c_tracker in
            Some
              (if String.equal final expect then Oracle.Consistent
               else
                 Oracle.Violation
                   (Printf.sprintf
                      "final state %s does not match the serialized model %s"
                      final expect))
        | exception e ->
            Some
              (Oracle.Violation
                 (Printf.sprintf "reading the final state raised %s"
                    (Printexc.to_string e))))
  else
    match Explorer.crun_until cfg cw ~schedule ~budget:(Some crash_index) with
    | `Completed _ -> None
    | `Crashed (heap, inst) ->
        Pmalloc.Heap.crash ~mode ?seed heap;
        Some (Explorer.crecover_and_check inst)

let ccommand (f : Explorer.cfailure) =
  Printf.sprintf
    "modpm crashtest --workload %s --writers %d --ops %d --schedule %s \
     --replay %d --mode %s%s"
    f.Explorer.cf_workload f.Explorer.cf_writers f.Explorer.cf_ops
    (Interleave.schedule_name f.Explorer.cf_schedule)
    f.Explorer.cf_crash_index
    (Explorer.mode_name f.Explorer.cf_mode)
    (match f.Explorer.cf_survival_seed with
    | Some s -> Printf.sprintf " --survival-seed %d" s
    | None -> "")

let creproduces ?cfg (f : Explorer.cfailure) =
  let cw =
    Workload.cbuild f.Explorer.cf_workload ~writers:f.Explorer.cf_writers
      ~ops:f.Explorer.cf_ops
  in
  match
    creplay ?cfg cw ~schedule:f.Explorer.cf_schedule
      ~crash_index:f.Explorer.cf_crash_index ~mode:f.Explorer.cf_mode
      ?seed:f.Explorer.cf_survival_seed ()
  with
  | Some (Oracle.Violation _) -> true
  | Some Oracle.Consistent | None -> false
