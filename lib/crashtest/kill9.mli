(** Real kill-9 crash harness.

    Everything the explorer proves is simulated; this harness makes the
    durability claim external.  A forked worker ({!serve}) applies a
    deterministic {!Workload} script to a {e file-backed} heap, acking
    each completed operation over a pipe; the driver ({!run}) SIGKILLs
    it -- at a random wall-clock instant, or deterministically inside
    the file backend's writeback protocol via {!Pmem.Backing.sync_phase}
    -- then reopens the image in the surviving process, dumps the
    recovered abstract state and checks it against the
    durable-linearizability oracle. *)

type plan =
  | Complete  (** no kill: calibration + exact-final-state check *)
  | Timer of float  (** SIGKILL after this many wall-clock seconds *)
  | At_sync of { commit : int; phase : Pmem.Backing.sync_phase }
      (** worker SIGKILLs itself inside its [commit]-th file batch *)

val plan_name : plan -> string

val names : string list
(** Workloads whose recovery path is self-contained in a fresh process. *)

val serve :
  ?capacity_words:int ->
  ?kill_at:int * Pmem.Backing.sync_phase ->
  ?persist:Pmalloc.Heap.policy ->
  path:string ->
  workload:string ->
  ops:int ->
  ack_fd:Unix.file_descr ->
  unit ->
  unit
(** The worker body: open/create the file-backed heap at [path], run
    the workload, ack each completed op on [ack_fd].  Runs in the
    forked child, or standalone via [modpm serve]. *)

type outcome =
  | Consistent of int option
      (** matched the oracle window; the model index when unique *)
  | Violation of string
  | Typed_error of string  (** typed degradation (only OK pre-format) *)
  | Escaped of string  (** a raw exception leaked somewhere *)

type trial = {
  t_index : int;
  t_workload : string;
  t_plan : plan;
  t_acked : int;  (** completed ops acked; -1 = killed before format *)
  t_completed : bool;
  t_journal : [ `None | `Replayed of int | `Discarded ] option;
  t_reopen_ns : float;  (** 0 when the image never reopened *)
  t_fsck : Pmalloc.Fsck.verdict;
  t_outcome : outcome;
}

type result = {
  workload : string;
  ops : int;
  kills : int;
  trials : trial list;
  violations : int;
  escaped : int;
  typed_errors : int;  (** typed degradations on pre-format kills (benign) *)
  completed_runs : int;
  replayed : int;
  discarded : int;
  clean_journals : int;
  fsck_clean : int;
  fsck_degraded : int;
  fsck_corrupt : int;
  max_reopen_ns : float;
  mean_reopen_ns : float;
  wall_seconds : float;
}

val ok : result -> bool
val pp_result : Format.formatter -> result -> unit

val history_of : Workload.state array -> int -> Workload.state list
(** The oracle history for a kill after acked op [a]: the distinct
    committed states the file may legally hold, newest first. *)

val run :
  ?dir:string ->
  ?ops:int ->
  ?seed:int ->
  ?keep:bool ->
  ?capacity_words:int ->
  ?log:(string -> unit) ->
  ?persist:Pmalloc.Heap.policy ->
  workload:string ->
  kills:int ->
  unit ->
  result
(** Fork/kill/reopen [kills] trials (plus one calibration run and the
    deterministic sync-phase plans) and judge each against the oracle
    window.  [keep] preserves the image files for post-mortems. *)

val failures : result -> string list
(** One printable line per violating or escaped trial. *)
