(** Real kill-9 crash harness.

    Everything the explorer proves is simulated: crashes are exceptions
    and the "durable image" is an array in the same process.  This
    harness makes the durability claim external.  A forked worker
    ([serve]) applies a deterministic {!Workload} script to a
    {e file-backed} heap, acking each completed operation over a pipe;
    the driver ([run]) SIGKILLs it -- at a random wall-clock instant, or
    deterministically {e inside} the file backend's writeback protocol
    via the {!Pmem.Backing.sync_phase} hook -- then reopens the image in
    the surviving process ({!Mod_core.Recovery.open_file}), dumps the
    recovered abstract state and checks it against the durable-
    linearizability oracle.

    The oracle window for a real kill.  Let [A] be the highest acked
    operation.  Op [A]'s commit fenced before its root swing, so every
    root write up to the last state-changing op [m <= A] {e before} it
    was drained -- the file holds [model.(A)] once op [A+1]'s fence
    commits, and [prev_distinct(A)] (= [model.(m-1)]) until then.  Op
    [A+1]'s own root swing can never reach the file (that needs op
    [A+2]'s fence, which needs the ack we did not get), so the window is
    exactly the oracle's: latest committed state or the previous
    distinct one.  A mid-writeback kill resolves to one edge of the same
    window: a committed journal replays forward to [model.(A)], a torn
    one discards back.  A kill before the worker's first ack may predate
    the image's formatting commit; only then is a typed open error
    acceptable.  A worker that completes fences once more and acks
    [done], pinning the file to exactly [model.(ops)]. *)

type plan =
  | Complete  (** no kill: calibration + exact-final-state check *)
  | Timer of float  (** SIGKILL after this many wall-clock seconds *)
  | At_sync of { commit : int; phase : Pmem.Backing.sync_phase }
      (** worker SIGKILLs itself inside its [commit]-th file batch *)

let plan_name = function
  | Complete -> "complete"
  | Timer s -> Printf.sprintf "timer %.1fms" (s *. 1e3)
  | At_sync { commit; phase } ->
      Printf.sprintf "sync %d/%s" commit (Pmem.Backing.phase_name phase)

(* Workloads whose recovery path is self-contained (no PM-STM transaction
   handle to rebuild in a fresh process). *)
let names = Workload.basic_names @ [ "batched"; "siblings" ]

(* -- the worker (runs in the forked child, or standalone via modpm serve) *)

let write_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

(* Apply [workload] against a fresh file-backed heap at [path], acking
   progress on [ack_fd]: "r" once the image is formatted (first commit
   done), "i" after workload init, "1".."ops" per completed operation,
   then "done <file-commits>" after a final fence pins the image to the
   last state.  [kill_at] arms a self-SIGKILL inside the given file
   batch, for deterministic mid-writeback kills. *)
let serve ?(capacity_words = 1 lsl 16) ?kill_at ?persist ~path ~workload ~ops
    ~ack_fd () =
  let w = Workload.build ?persist workload ~ops in
  let heap = Pmalloc.Heap.create ~capacity_words ~file:path () in
  (match kill_at with
  | None -> ()
  | Some (commit, phase) ->
      Pmem.Region.set_file_sync_hook (Pmalloc.Heap.region heap)
        (fun p ordinal ->
          if ordinal = commit && p = phase then
            Unix.kill (Unix.getpid ()) Sys.sigkill));
  write_line ack_fd "r";
  let inst = w.Workload.make heap in
  inst.Workload.init ();
  write_line ack_fd "i";
  for i = 0 to ops - 1 do
    inst.Workload.run_op i;
    write_line ack_fd (string_of_int (i + 1))
  done;
  (* drain the last root write so the image is exactly model.(ops) *)
  Pmalloc.Heap.sfence heap;
  write_line ack_fd
    (Printf.sprintf "done %d"
       (Pmem.Region.file_commits (Pmalloc.Heap.region heap)));
  Pmalloc.Heap.close heap

(* -- per-trial bookkeeping ----------------------------------------------- *)

type outcome =
  | Consistent of int option
      (** matched the oracle window; the model index when unique *)
  | Violation of string
  | Typed_error of string  (** typed degradation (only OK pre-format) *)
  | Escaped of string  (** a raw exception leaked somewhere *)

type trial = {
  t_index : int;
  t_workload : string;
  t_plan : plan;
  t_acked : int;  (** completed ops acked; -1 = killed before format *)
  t_completed : bool;
  t_journal : [ `None | `Replayed of int | `Discarded ] option;
  t_reopen_ns : float;  (** 0 when the image never reopened *)
  t_fsck : Pmalloc.Fsck.verdict;
  t_outcome : outcome;
}

type result = {
  workload : string;
  ops : int;
  kills : int;
  trials : trial list;
  violations : int;
  escaped : int;
  typed_errors : int;  (** typed degradations on pre-format kills (benign) *)
  completed_runs : int;
  replayed : int;
  discarded : int;
  clean_journals : int;
  fsck_clean : int;
  fsck_degraded : int;
  fsck_corrupt : int;
  max_reopen_ns : float;
  mean_reopen_ns : float;
  wall_seconds : float;
}

let ok r = r.violations = 0 && r.escaped = 0

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>kill9 %s: %d trials (%d completed), %d violations, %d escaped@ \
     journals: %d replayed, %d discarded, %d clean; fsck: %d clean, %d \
     degraded, %d corrupt@ reopen: mean %.2fms, max %.2fms; wall %.1fs@]"
    r.workload r.kills r.completed_runs r.violations r.escaped r.replayed
    r.discarded r.clean_journals r.fsck_clean r.fsck_degraded r.fsck_corrupt
    (r.mean_reopen_ns /. 1e6) (r.max_reopen_ns /. 1e6) r.wall_seconds

(* -- oracle window ------------------------------------------------------- *)

let prev_distinct (model : Workload.state array) a =
  let rec go j =
    if j < 0 then None
    else if model.(j) <> model.(a) then Some model.(j)
    else go (j - 1)
  in
  go (a - 1)

(* The window argued in the header: [model.(A)] plus the previous
   distinct state.  Handing these to {!Oracle.check} as a two-deep
   history (no pending) makes the harness and the simulated explorer
   judge recovered states with the same code. *)
let history_of model acked =
  let a = max 0 acked in
  match prev_distinct model a with
  | Some prev -> [ model.(a); prev ]
  | None -> [ model.(a) ]

(* -- the driver ---------------------------------------------------------- *)

(* Read acks until EOF; for [Timer] plans, SIGKILL the child when the
   deadline passes and keep reading (the pipe still holds everything the
   child wrote before dying). *)
let collect_acks rfd pid plan =
  let buf = Buffer.create 512 in
  let bytes = Bytes.create 4096 in
  let deadline =
    match plan with
    | Timer s -> Some (Unix.gettimeofday () +. s)
    | Complete | At_sync _ -> None
  in
  let deadline = ref deadline in
  let rec loop () =
    let timeout =
      match !deadline with
      | None -> -1.0
      | Some d -> Float.max 0.0 (d -. Unix.gettimeofday ())
    in
    let fire () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      deadline := None
    in
    match Unix.select [ rfd ] [] [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | [], _, _ ->
        fire ();
        loop ()
    | _ -> (
        match Unix.read rfd bytes 0 (Bytes.length bytes) with
        | exception Unix.Unix_error (EINTR, _, _) -> loop ()
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf bytes 0 n;
            loop ())
  in
  loop ();
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

type acks = {
  a_ready : bool;
  a_acked : int;
  a_done : bool;
  a_exn : string option;
}

let parse_acks lines =
  List.fold_left
    (fun a line ->
      match line with
      | "r" -> { a with a_ready = true }
      | "i" -> a
      | _ when String.length line >= 4 && String.sub line 0 4 = "done" ->
          { a with a_done = true }
      | _ when String.length line >= 3 && String.sub line 0 3 = "exn" ->
          { a with a_exn = Some line }
      | n -> (
          match int_of_string_opt n with
          | Some k -> { a with a_acked = max a.a_acked k }
          | None -> a))
    { a_ready = false; a_acked = 0; a_done = false; a_exn = None }
    lines

(* One forked kill trial: spawn the worker on a fresh image, execute the
   kill plan, fsck the raw post-mortem image, reopen it, and judge the
   recovered state. *)
let trial ~dir ~keep ~capacity_words ?persist (w : Workload.t) ~index plan =
  let path = Filename.concat dir (Printf.sprintf "kill_%04d.img" index) in
  let rfd, wfd = Unix.pipe ~cloexec:false () in
  let kill_at =
    match plan with
    | At_sync { commit; phase } -> Some (commit, phase)
    | Complete | Timer _ -> None
  in
  (match Unix.fork () with
  | 0 -> (
      Unix.close rfd;
      match
        serve ~capacity_words ?kill_at ?persist ~path
          ~workload:w.Workload.name ~ops:w.Workload.ops ~ack_fd:wfd ()
      with
      | () -> Unix._exit 0
      | exception e ->
          write_line wfd ("exn " ^ Printexc.to_string e);
          Unix._exit 3)
  | pid -> (
      Unix.close wfd;
      let lines = collect_acks rfd pid plan in
      Unix.close rfd;
      ignore (Unix.waitpid [] pid);
      let acks = parse_acks lines in
      (* the raw post-mortem image, journal and all, before the reopen
         mutates it *)
      let fsck =
        match Pmalloc.Fsck.check path with
        | r -> r.Pmalloc.Fsck.verdict
        | exception e ->
            (* fsck must classify every image without crashing *)
            ignore (Printexc.to_string e : string);
            Pmalloc.Fsck.Corrupt
      in
      let journal = ref None in
      let reopen_ns = ref 0.0 in
      let outcome =
        match acks.a_exn with
        | Some m -> Escaped m
        | None -> (
            match Mod_core.Recovery.open_file ~path () with
            | Error e ->
                (* only a kill that predates the formatting commit can
                   leave an unopenable (virgin) image behind *)
                if acks.a_ready then
                  Violation
                    (Printf.sprintf "formatted image failed to reopen: %s"
                       (Mod_core.Error.to_string e))
                else Typed_error (Mod_core.Error.to_string e)
            | Ok report -> (
                journal := Some report.Mod_core.Recovery.journal;
                reopen_ns := report.Mod_core.Recovery.reopen_ns;
                let heap = report.Mod_core.Recovery.heap in
                let recovered =
                  match
                    let inst = w.Workload.make heap in
                    inst.Workload.dump ()
                  with
                  | s -> Ok s
                  | exception e -> Error e
                in
                Pmalloc.Heap.close heap;
                let model = w.Workload.model in
                let history =
                  if acks.a_done then [ model.(w.Workload.ops) ]
                  else history_of model acks.a_acked
                in
                match Oracle.check ~history ~pending:None ~recovered with
                | Oracle.Consistent ->
                    let idx =
                      match recovered with
                      | Ok s ->
                          let found = ref None in
                          Array.iteri
                            (fun j m -> if !found = None && m = s then
                                found := Some j)
                            model;
                          !found
                      | Error _ -> None
                    in
                    Consistent idx
                | Oracle.Violation d ->
                    Violation
                      (Printf.sprintf "%s (acked %d, plan %s)" d acks.a_acked
                         (plan_name plan))))
      in
      if not keep then begin
        if Sys.file_exists path then Sys.remove path;
        let j = path ^ ".journal" in
        if Sys.file_exists j then Sys.remove j
      end;
      {
        t_index = index;
        t_workload = w.Workload.name;
        t_plan = plan;
        t_acked = (if acks.a_ready then acks.a_acked else -1);
        t_completed = acks.a_done;
        t_journal = !journal;
        t_reopen_ns = !reopen_ns;
        t_fsck = fsck;
        t_outcome = outcome;
      })
  | exception e ->
      Unix.close rfd;
      Unix.close wfd;
      raise e)

let phases =
  [|
    Pmem.Backing.Journal_torn; Pmem.Backing.Journal_committed;
    Pmem.Backing.Mid_apply; Pmem.Backing.Applied;
  |]

let run ?(dir = Filename.get_temp_dir_name ()) ?(ops = 60) ?(seed = 7)
    ?(keep = false) ?(capacity_words = 1 lsl 16) ?(log = ignore) ?persist
    ~workload ~kills () =
  if not (List.mem workload names) then
    invalid_arg
      (Printf.sprintf "Kill9.run: unsupported workload %S (expected %s)"
         workload (String.concat ", " names));
  let w = Workload.build ?persist workload ~ops in
  let rng = Random.State.make [| seed; Hashtbl.hash workload |] in
  let t0 = Unix.gettimeofday () in
  (* calibration trial: complete run, exact final state, commit count *)
  let calib = trial ~dir ~keep ~capacity_words ?persist w ~index:0 Complete in
  let wall0 = Unix.gettimeofday () -. t0 in
  let commits =
    (* every state-changing op commits one batch; the calibration ack
       stream does not carry the count back here, so derive a safe upper
       bound from ops (at-sync ordinals past the real count simply let
       the worker finish -- still a valid trial) *)
    max 2 (ops + 2)
  in
  let make_plan i =
    if i land 1 = 0 then Timer (Random.State.float rng (wall0 *. 1.1))
    else
      (* ordinal 1 is the formatting commit inside Heap.create, which
         precedes hook installation -- start at 2 *)
      At_sync
        {
          commit = 2 + Random.State.int rng commits;
          phase = phases.(Random.State.int rng (Array.length phases));
        }
  in
  let trials = ref [ calib ] in
  for i = 1 to kills do
    let t = trial ~dir ~keep ~capacity_words ?persist w ~index:i (make_plan i) in
    trials := t :: !trials;
    if i mod 25 = 0 then
      log (Printf.sprintf "kill9 %s: %d/%d trials" workload i kills)
  done;
  let trials = List.rev !trials in
  let count f = List.length (List.filter f trials) in
  let reopens = List.filter (fun t -> t.t_reopen_ns > 0.0) trials in
  let sum_reopen =
    List.fold_left (fun a t -> a +. t.t_reopen_ns) 0.0 reopens
  in
  {
    workload;
    ops;
    kills = List.length trials;
    trials;
    violations =
      count (fun t ->
          match t.t_outcome with Violation _ -> true | _ -> false);
    escaped =
      count (fun t -> match t.t_outcome with Escaped _ -> true | _ -> false);
    typed_errors =
      count (fun t ->
          match t.t_outcome with Typed_error _ -> true | _ -> false);
    completed_runs = count (fun t -> t.t_completed);
    replayed =
      count (fun t ->
          match t.t_journal with Some (`Replayed _) -> true | _ -> false);
    discarded =
      count (fun t -> t.t_journal = Some `Discarded);
    clean_journals = count (fun t -> t.t_journal = Some `None);
    fsck_clean = count (fun t -> t.t_fsck = Pmalloc.Fsck.Clean);
    fsck_degraded = count (fun t -> t.t_fsck = Pmalloc.Fsck.Degraded);
    fsck_corrupt = count (fun t -> t.t_fsck = Pmalloc.Fsck.Corrupt);
    max_reopen_ns =
      List.fold_left (fun a t -> Float.max a t.t_reopen_ns) 0.0 trials;
    mean_reopen_ns =
      (if reopens = [] then 0.0
       else sum_reopen /. float_of_int (List.length reopens));
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let failures r =
  List.filter_map
    (fun t ->
      match t.t_outcome with
      | Violation m | Escaped m ->
          Some
            (Printf.sprintf "trial %d (%s, plan %s, acked %d): %s" t.t_index
               t.t_workload (plan_name t.t_plan) t.t_acked m)
      | Consistent _ | Typed_error _ -> None)
    r.trials
