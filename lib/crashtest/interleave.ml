(** Deterministic interleaving of concurrent writers over one heap.

    The simulator's concurrency is cooperative: writers are effect-based
    fibers ([Effect.Deep]) over a single OCaml domain, and every PM
    event (store / clwb / sfence) is a preemption point -- the
    {!Pmem.Region} event hook performs {!Yield}, handing control to the
    scheduler, which resumes a writer chosen by the schedule.  Straight
    OCaml between PM events is atomic, exactly like real instructions
    between persist-ordering points; {!Pmem.Region.atomic} sections
    (the root-record CAS) never preempt internally.

    Schedules are pure functions of their parameters, so any
    interleaving replays bit-for-bit from [(schedule, writers, budget)]:
    [Round_robin q] switches writers every [q] PM events; [Seeded s]
    draws the next writer from a private PRNG at every event.

    A {!Pmem.Region.Crash_point} raised by the armed crash budget
    propagates out of the running fiber through the scheduler to the
    caller ([exnc = raise]); the other writers' suspended continuations
    are deliberately abandoned, not discontinued -- a power failure does
    not unwind the other core's stack. *)

[@@@alert "-unstable"]

open Effect
open Effect.Deep

type schedule = Round_robin of int | Seeded of int

type _ Effect.t += Yield : unit Effect.t

(* The cooperative yield point, for spin-waits that must let the lock
   holder progress without issuing a PM event ({!Pmstm.Norec.set_yield}).
   Outside [run] (single-writer code, recovery) it is a no-op so the
   same workload closures run un-interleaved. *)
let yield () = try perform Yield with Effect.Unhandled Yield -> ()

let schedule_name = function
  | Round_robin q -> Printf.sprintf "rr%d" q
  | Seeded s -> Printf.sprintf "seeded%d" s

let schedule_of_name s =
  let num prefix =
    match int_of_string_opt
            (String.sub s (String.length prefix)
               (String.length s - String.length prefix))
    with
    | Some n when n >= 0 -> Some n
    | _ -> None
  in
  let has prefix =
    String.length s > String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  if has "rr" then
    match num "rr" with
    | Some q when q > 0 -> Ok (Round_robin q)
    | _ -> Error (Printf.sprintf "bad round-robin quantum in %S" s)
  else if has "seeded" then
    match num "seeded" with
    | Some n -> Ok (Seeded n)
    | _ -> Error (Printf.sprintf "bad seed in %S" s)
  else Error (Printf.sprintf "unknown schedule %S (rr<q>|seeded<n>)" s)

(* Run [writers] to completion over [region], interleaved per
   [schedule].  Returns normally once every writer finished; any
   exception a writer raises (notably [Crash_point]) propagates
   immediately, abandoning the other fibers. *)
let run region ~schedule (writers : (unit -> unit) array) =
  let n = Array.length writers in
  if n = 0 then ()
  else begin
    let conts : (unit, unit) continuation option array = Array.make n None in
    let fresh = Array.make n true in
    let alive = Array.make n true in
    let current = ref 0 in
    let slice = ref 0 in
    let rng =
      match schedule with
      | Seeded s -> Some (Random.State.make [| s; n |])
      | Round_robin _ -> None
    in
    let quantum = match schedule with Round_robin q -> max 1 q | _ -> 1 in
    (* Pick who runs the next burst (one burst = resume until the next
       PM event or writer exit). *)
    let pick () =
      match rng with
      | Some st ->
          let live = ref [] in
          for i = n - 1 downto 0 do
            if alive.(i) then live := i :: !live
          done;
          let live = Array.of_list !live in
          live.(Random.State.int st (Array.length live))
      | None ->
          if (not alive.(!current)) || !slice >= quantum then begin
            slice := 0;
            let rec next i =
              let i = (i + 1) mod n in
              if alive.(i) then i else next i
            in
            current := next !current
          end;
          incr slice;
          !current
    in
    let handler i =
      {
        retc = (fun () -> alive.(i) <- false);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some (fun (k : (a, _) continuation) -> conts.(i) <- Some k)
            | _ -> None);
      }
    in
    let burst i =
      match conts.(i) with
      | Some k ->
          conts.(i) <- None;
          continue k ()
      | None ->
          if fresh.(i) then begin
            fresh.(i) <- false;
            match_with writers.(i) () (handler i)
          end
          else alive.(i) <- false (* finished writer picked again *)
    in
    Pmem.Region.set_event_hook region (Some (fun () -> perform Yield));
    Fun.protect
      ~finally:(fun () -> Pmem.Region.set_event_hook region None)
      (fun () ->
        let rec loop () =
          if Array.exists Fun.id alive then begin
            burst (pick ());
            loop ()
          end
        in
        loop ())
  end
