(** Minimal-repro replay and shrinking.

    Every explorer failure is identified by a small tuple -- sequential:
    (workload/ops, crash event index, mode, survival seed); concurrent:
    the same plus (writers, interleaving schedule).  [replay]/[creplay]
    re-run exactly that crash deterministically, [command]/[ccommand]
    print the CLI incantation that does the same, and [minimize] shrinks
    a sequential workload to the smallest operation count that still
    reproduces.  Replay always executes on a fresh heap and crashes the
    live image directly -- no snapshots, no workers -- so a repro
    command reproduces bit-for-bit regardless of the sweep settings that
    found it. *)

val replay :
  ?cfg:Explorer.config ->
  Workload.t ->
  crash_index:int ->
  mode:Pmem.Region.crash_mode ->
  ?seed:int ->
  unit ->
  Oracle.verdict option
(** Re-run one crash point, single sample.  [None] means the crash
    index lies beyond the workload's last PM event. *)

val command : Explorer.failure -> string
val reproduces : ?cfg:Explorer.config -> Explorer.failure -> bool

val minimize : ?cfg:Explorer.config -> Explorer.failure -> Explorer.failure
(** Shrink the operation count (1, 2, 4, ...) to the smallest workload
    that still reaches the crash index and still violates there. *)

(** {1 Concurrent failures} *)

val creplay :
  ?cfg:Explorer.config ->
  Workload.ct ->
  schedule:Interleave.schedule ->
  crash_index:int ->
  mode:Pmem.Region.crash_mode ->
  ?seed:int ->
  unit ->
  Oracle.verdict option
(** Re-run one concurrent crash point: the interleaving is a pure
    function of the schedule, so the same (schedule, budget) pair
    reconstructs the same interrupted image bit-for-bit.
    [crash_index = -1] replays the uncrashed serializability check. *)

val ccommand : Explorer.cfailure -> string
val creproduces : ?cfg:Explorer.config -> Explorer.cfailure -> bool
