(** Exhaustive crash-point exploration.

    A workload is re-run deterministically with the {!Pmem.Region}
    crash scheduler armed at budget 1, 2, ..., so a simulated power
    failure is injected after every single PM event; each crash point
    is sampled under the crash modes (and survival seeds, under
    [Randomize]), recovered, and checked against the
    durable-linearizability oracle.  Concurrent workloads add a
    schedule axis: every (interleaving schedule, crash point) pair is
    swept and judged by the concurrent oracle. *)

type config = {
  stride : int;  (** test every [stride]-th crash point *)
  randomize_samples : int;  (** survival samples per point in Randomize *)
  seed : int;  (** master seed survival seeds are derived from *)
  modes : Pmem.Region.crash_mode list;
  capacity_words : int;
  heap_seed : int;
  max_points : int option;  (** cap on tested points (strided sweeps) *)
  snapshot_mode : Pmem.Region.snapshot_mode;
      (** [Journal] = O(touched) copy-on-write sweeps (default);
          [Full_copy] = the original O(capacity) reference path *)
  jobs : int;  (** worker processes; 1 = sequential, 0 = one per core *)
  faults : bool;
      (** also sample each crash point under the fault schedule (torn
          lines + armed media faults) against the degradation contract *)
  worker_kill : int option;
      (** test hook: the given parallel worker index dies before doing
          any work, exercising the shard-resweep path *)
  log : string -> unit;
}

val default : config

type failure = {
  workload : string;
  ops : int;
  crash_index : int;  (** PM event the power failed after *)
  mode : Pmem.Region.crash_mode;
  survival_seed : int option;  (** Randomize line-survival seed *)
  detail : string;
}

type result = {
  workload : string;
  ops : int;
  total_events : int;
  points_tested : int;
  points_skipped : int;
  crashes_sampled : int;
  fault_samples : int;
  fault_recovered : int;
  fault_degraded : int;
  fault_fallbacks : int;
  shards_resequenced : int;
  wall_seconds : float;
  trace_report : Mod_core.Consistency.report option;
  failures : failure list;
}

val ok : result -> bool
val points_per_sec : result -> float
val mode_name : Pmem.Region.crash_mode -> string
val mode_of_name : string -> (Pmem.Region.crash_mode, string) Stdlib.result

val survival_seed : config -> crash_index:int -> k:int -> int
(** The survival seed of sample [k] at a crash point: a pure function
    of the master seed, so failures replay from their triple. *)

type crashed = {
  c_heap : Pmalloc.Heap.t;
  c_inst : Workload.instance;
  c_history : Workload.state list;
      (** distinct committed states, newest first *)
  c_pending : Workload.state option;
}

type scratch

val run_until :
  ?scratch:scratch ->
  config ->
  Workload.t ->
  budget:int option ->
  [ `Completed of int * Pmalloc.Heap.t | `Crashed of crashed ]
(** Run the workload on a fresh deterministic heap; with a budget, power
    fails after that many PM events and the interrupted execution is
    returned ([`Completed] carries the total event count). *)

val recover_and_check : crashed -> Oracle.verdict

val explore : ?cfg:config -> Workload.t -> result
(** The full sweep: every strided crash point x every mode x every
    survival seed, plus the uncrashed trace check. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_result : Format.formatter -> result -> unit

(** {1 Concurrent sweeps}

    A concurrent crash point is identified by (schedule, budget): the
    interleaving is a pure function of the schedule, so re-running the
    writers under the same schedule and budget reproduces the same
    interrupted image bit-for-bit. *)

type cfailure = {
  cf_workload : string;
  cf_writers : int;
  cf_ops : int;  (** per writer *)
  cf_schedule : Interleave.schedule;
  cf_crash_index : int;  (** -1 = uncrashed-run final-state check *)
  cf_mode : Pmem.Region.crash_mode;
  cf_survival_seed : int option;
  cf_detail : string;
}

type cresult = {
  cr_workload : string;
  cr_writers : int;
  cr_ops : int;
  cr_schedules : int;
  cr_total_events : int;  (** summed over schedules *)
  cr_points_tested : int;
  cr_points_skipped : int;
  cr_crashes_sampled : int;
  cr_wall_seconds : float;
  cr_failures : cfailure list;
}

val cok : cresult -> bool
val cpoints_per_sec : cresult -> float

val default_schedules : Interleave.schedule list
(** Round-robin at co-prime quanta plus seeded random walks. *)

val crun_until :
  ?scratch:scratch ->
  config ->
  Workload.ct ->
  schedule:Interleave.schedule ->
  budget:int option ->
  [ `Completed of int * Pmalloc.Heap.t * Workload.cinstance
  | `Crashed of Pmalloc.Heap.t * Workload.cinstance ]

val crecover_and_check : Workload.cinstance -> Oracle.verdict

val explore_concurrent :
  ?cfg:config -> ?schedules:Interleave.schedule list -> Workload.ct -> cresult
(** Sweep every (schedule, strided crash point, mode, survival seed)
    tuple sequentially, preceded per schedule by an uncrashed run whose
    final state must equal the newest tracked model state (the
    serializability check; reported as [cf_crash_index = -1]). *)

val pp_cfailure : Format.formatter -> cfailure -> unit
val pp_cresult : Format.formatter -> cresult -> unit
