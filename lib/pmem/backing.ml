(** File-backed durable images (the FAMS-style snapshot backend).

    A {!Region} normally keeps its durable image in a volatile array:
    crashes are simulated, and nothing survives the process.  This module
    maps the durable image onto a file so the heap genuinely outlives a
    [kill -9]: the region accumulates the cachelines whose durable
    contents changed and, at every fence, hands them here to be committed
    as {e one atomic batch} -- the failure-atomic-msync recipe.

    Commit protocol (WAL-style double write):

    + write the dirty-line set, the new capacity and the post-commit image
      checksum into a sidecar journal ([<path>.journal]), then a commit
      marker over the whole journal, and [fsync] it;
    + apply the lines to the image file, update the header (capacity +
      image checksum), and [fsync] it;
    + truncate the journal and [fsync] it.

    Power can fail anywhere: a journal without a valid commit marker is
    discarded on reopen (the image is intact at the previous commit), and
    a committed journal is replayed idempotently (the image reaches the
    new commit).  There is no window in which the image is torn and the
    journal unusable.

    The image header carries a whole-image checksum (xor of per-line
    hashes, maintained incrementally per commit), so out-of-band
    corruption of any line -- not just root records -- is detected at
    reopen and by [modpm fsck] rather than trusted.

    Reads retry transient failures ([EINTR]/[EAGAIN], short reads) with
    bounded backoff; everything else surfaces as the typed {!Bad_image}. *)

exception Bad_image of { path : string; detail : string }

let () =
  Printexc.register_printer (function
    | Bad_image { path; detail } ->
        Some (Printf.sprintf "Pmem.Backing.Bad_image(%s: %s)" path detail)
    | _ -> None)

let bad path fmt =
  Printf.ksprintf (fun detail -> raise (Bad_image { path; detail })) fmt

(* Hook points inside {!commit}, for the kill-9 harness: a worker can
   SIGKILL itself at any of these to leave a mid-writeback image behind.
   The [int] is the 1-based ordinal of the commit in progress. *)
type sync_phase =
  | Journal_torn  (** entries written; commit marker not yet durable *)
  | Journal_committed  (** journal fsynced; apply not begun *)
  | Mid_apply  (** half the lines applied to the image *)
  | Applied  (** image fsynced; journal not yet truncated *)

let phase_name = function
  | Journal_torn -> "journal"
  | Journal_committed -> "commit"
  | Mid_apply -> "apply"
  | Applied -> "applied"

let phase_of_name = function
  | "journal" -> Ok Journal_torn
  | "commit" -> Ok Journal_committed
  | "apply" -> Ok Mid_apply
  | "applied" -> Ok Applied
  | s ->
      Error
        (Printf.sprintf "unknown sync phase %S (journal|commit|apply|applied)" s)

type t = {
  path : string;
  jpath : string;
  fd : Unix.file_descr;
  jfd : Unix.file_descr;
  mutable capacity : int;  (** words the image file currently holds *)
  mutable line_hash : int array;  (** per-line content hash *)
  mutable image_checksum : int;  (** xor of all line hashes *)
  mutable commits : int;  (** atomic batches completed on this handle *)
  mutable hook : sync_phase -> int -> unit;
}

(* -- layout -------------------------------------------------------------- *)

let word_bytes = 8
let magic = 0x4D4F_4450_4D31 (* "MODPM1", word 0 of every image *)
let jmagic = 0x4D4F_4450_4A31 (* "MODPJ1", word 0 of every journal *)
let format_version = 1
let header_words = 8
let header_bytes = header_words * word_bytes
let jheader_words = 5

let lines_of_cap cap = (cap + Config.words_per_line - 1) / Config.words_per_line
let line_len ~cap line =
  min Config.words_per_line (cap - (line lsl Config.line_shift))

(* Avalanche mix (murmur3-finalizer flavoured) used for line hashes, the
   header checksum and the journal commit marker. *)
let mix h x =
  let h = (h lxor x) * 0x9E3779B97F4A7C1 in
  let h = h lxor (h lsr 29) in
  let h = (h * 0xC4CEB9FE1A85EC5) land max_int in
  h lxor (h lsr 32)

let hash_line ~line words off len =
  let h = ref (mix 0x5EED (line + 1)) in
  for i = off to off + len - 1 do
    h := mix !h words.(i)
  done;
  !h

let header_checksum ~capacity ~image_checksum =
  mix (mix (mix (mix 0xCAFE magic) format_version) capacity) image_checksum

(* -- retrying I/O primitives --------------------------------------------- *)

let rec retrying ?(attempts = 6) ?(delay = 0.0005) f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _)
    when attempts > 1 ->
      Unix.sleepf delay;
      retrying ~attempts:(attempts - 1) ~delay:(delay *. 2.0) f

let seek fd pos = ignore (Unix.lseek fd pos Unix.SEEK_SET : int)

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = retrying (fun () -> Unix.write fd buf !off (len - !off)) in
    if n <= 0 then failwith "Backing: write returned 0";
    off := !off + n
  done

(* Short reads are transient on some filesystems: keep reading with
   backoff until the request is satisfied or the file genuinely ends. *)
let read_exact ~path fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  let stalls = ref 0 in
  while !off < len do
    let n = retrying (fun () -> Unix.read fd buf !off (len - !off)) in
    if n = 0 then begin
      incr stalls;
      if !stalls > 5 then bad path "truncated: short read at byte %d of %d" !off len;
      Unix.sleepf 0.0005
    end
    else begin
      stalls := 0;
      off := !off + n
    end
  done

let fsync fd = retrying (fun () -> Unix.fsync fd)

(* Best-effort directory fsync so creates and renames are themselves
   durable (ignored on filesystems that reject fsync on directories). *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      (try fsync dfd with Unix.Unix_error _ -> ());
      Unix.close dfd

let put_words buf off words woff n =
  for i = 0 to n - 1 do
    Bytes.set_int64_le buf ((off + i) * word_bytes)
      (Int64.of_int words.(woff + i))
  done

let get_word buf i = Int64.to_int (Bytes.get_int64_le buf (i * word_bytes))

let read_words ~path fd ~pos ~words:n =
  let buf = Bytes.create (n * word_bytes) in
  seek fd pos;
  read_exact ~path fd buf;
  Array.init n (fun i -> get_word buf i)

let file_size fd = (Unix.fstat fd).Unix.st_size

(* -- header -------------------------------------------------------------- *)

let write_header fd ~capacity ~image_checksum =
  let buf = Bytes.make header_bytes '\000' in
  put_words buf 0
    [|
      magic; format_version; capacity; Config.words_per_line; image_checksum;
      header_checksum ~capacity ~image_checksum; 0; 0;
    |]
    0 header_words;
  seek fd 0;
  write_all fd buf

let read_header ~path fd =
  let size = file_size fd in
  if size = 0 then bad path "zero-length image file";
  if size < header_bytes then bad path "truncated header (%d bytes)" size;
  let h = read_words ~path fd ~pos:0 ~words:header_words in
  if h.(0) <> magic then bad path "wrong magic 0x%x (not a modpm image)" h.(0);
  if h.(1) <> format_version then
    bad path "unsupported image format version %d (want %d)" h.(1)
      format_version;
  if h.(3) <> Config.words_per_line then
    bad path "image built for %d-word cachelines, this build uses %d" h.(3)
      Config.words_per_line;
  let capacity = h.(2) and image_checksum = h.(4) in
  if capacity <= 0 then bad path "nonsensical capacity %d" capacity;
  if h.(5) <> header_checksum ~capacity ~image_checksum then
    bad path "header checksum mismatch";
  if size < header_bytes + (capacity * word_bytes) then
    bad path "truncated: header promises %d words, file holds %d" capacity
      ((size - header_bytes) / word_bytes);
  (capacity, image_checksum)

let checksum_of words cap =
  let cs = ref 0 in
  for line = 0 to lines_of_cap cap - 1 do
    cs :=
      !cs
      lxor hash_line ~line words (line lsl Config.line_shift)
            (line_len ~cap line)
  done;
  !cs

let rebuild_hashes t words =
  let nlines = lines_of_cap t.capacity in
  t.line_hash <- Array.make nlines 0;
  for line = 0 to nlines - 1 do
    t.line_hash.(line) <-
      hash_line ~line words (line lsl Config.line_shift)
        (line_len ~cap:t.capacity line)
  done;
  t.image_checksum <- Array.fold_left ( lxor ) 0 t.line_hash

(* -- journal ------------------------------------------------------------- *)

type journal_status = Jnone | Jcommitted of int | Jtorn

(* Journal word layout:
   [jmagic; version; nlines; new_capacity; post_checksum]
   then per line: [line_index; w0 .. w7]  (ragged tails zero-padded)
   then one trailing commit marker word hashing everything above. *)

let journal_marker ~nlines ~capacity ~post_checksum entries_hash =
  mix (mix (mix (mix entries_hash nlines) capacity) post_checksum) jmagic

(* Read and classify the sidecar journal without touching the image. *)
let read_journal ~path jfd =
  let size = file_size jfd in
  if size = 0 then (Jnone, [||], 0, 0)
  else if size < (jheader_words + 1) * word_bytes then (Jtorn, [||], 0, 0)
  else
    let total_words = size / word_bytes in
    let w = read_words ~path jfd ~pos:0 ~words:total_words in
    let nlines = w.(2) in
    let entry_words = 1 + Config.words_per_line in
    let expect = jheader_words + (nlines * entry_words) + 1 in
    if w.(0) <> jmagic || w.(1) <> format_version || nlines < 0
       || total_words < expect
    then (Jtorn, [||], 0, 0)
    else
      let eh = ref 0 in
      for i = jheader_words to jheader_words + (nlines * entry_words) - 1 do
        eh := mix !eh w.(i)
      done;
      let marker =
        journal_marker ~nlines ~capacity:w.(3) ~post_checksum:w.(4) !eh
      in
      if w.(jheader_words + (nlines * entry_words)) <> marker then
        (Jtorn, [||], 0, 0)
      else (Jcommitted nlines, w, w.(3), w.(4))

let truncate_journal t =
  retrying (fun () -> Unix.ftruncate t.jfd 0);
  fsync t.jfd

(* Apply a committed journal's entries to the image file and to the given
   in-memory image (if any); idempotent. *)
let apply_journal t jwords ~new_capacity ~post_checksum ~into =
  let entry_words = 1 + Config.words_per_line in
  let nlines = jwords.(2) in
  if new_capacity > t.capacity then begin
    retrying (fun () ->
        Unix.ftruncate t.fd (header_bytes + (new_capacity * word_bytes)));
    t.capacity <- new_capacity
  end;
  let buf = Bytes.create (Config.words_per_line * word_bytes) in
  for e = 0 to nlines - 1 do
    let base = jheader_words + (e * entry_words) in
    let line = jwords.(base) in
    let len = line_len ~cap:t.capacity line in
    put_words buf 0 jwords (base + 1) Config.words_per_line;
    seek t.fd (header_bytes + (line lsl Config.line_shift * word_bytes));
    write_all t.fd (Bytes.sub buf 0 (len * word_bytes));
    (match into with
    | None -> ()
    | Some words ->
        Array.blit jwords (base + 1) words (line lsl Config.line_shift) len)
  done;
  t.image_checksum <- post_checksum;
  write_header t.fd ~capacity:t.capacity ~image_checksum:post_checksum;
  fsync t.fd;
  truncate_journal t

(* -- lifecycle ----------------------------------------------------------- *)

let journal_path path = path ^ ".journal"

let open_fd ~path flags = retrying (fun () -> Unix.openfile path flags 0o644)

let create ~path ~capacity_words =
  let fd =
    open_fd ~path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
  in
  let jpath = journal_path path in
  let jfd =
    open_fd ~path:jpath
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
  in
  (* sparse zero image: fresh regions are all-zero words *)
  retrying (fun () -> Unix.ftruncate fd (header_bytes + (capacity_words * word_bytes)));
  let t =
    {
      path;
      jpath;
      fd;
      jfd;
      capacity = capacity_words;
      line_hash = [||];
      image_checksum = 0;
      commits = 0;
      hook = (fun _ _ -> ());
    }
  in
  rebuild_hashes t (Array.make capacity_words 0);
  write_header fd ~capacity:capacity_words ~image_checksum:t.image_checksum;
  fsync fd;
  fsync jfd;
  fsync_dir path;
  t

(* Reopen an existing image: resolve the journal (replay a committed one,
   discard a torn one), then load and checksum-verify the image.  Returns
   the handle, the image words and what happened to the journal. *)
let open_ ~path =
  if not (Sys.file_exists path) then bad path "no such image file";
  let fd = open_fd ~path [ Unix.O_RDWR; Unix.O_CLOEXEC ] in
  let jpath = journal_path path in
  let jfd =
    open_fd ~path:jpath [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
  in
  match
    let capacity, image_checksum = read_header ~path fd in
    let t =
      {
        path;
        jpath;
        fd;
        jfd;
        capacity;
        line_hash = [||];
        image_checksum;
        commits = 0;
        hook = (fun _ _ -> ());
      }
    in
    let status =
      match read_journal ~path:jpath jfd with
      | Jnone, _, _, _ -> `None
      | Jcommitted n, jwords, new_capacity, post_checksum ->
          apply_journal t jwords ~new_capacity ~post_checksum ~into:None;
          `Replayed n
      | Jtorn, _, _, _ ->
          truncate_journal t;
          `Discarded
    in
    let words =
      read_words ~path fd ~pos:header_bytes ~words:t.capacity
    in
    let _, stored_checksum = read_header ~path fd in
    rebuild_hashes t words;
    if t.image_checksum <> stored_checksum then
      bad path "image checksum mismatch: content was corrupted out-of-band";
    (t, words, status)
  with
  | v -> v
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.close jfd with Unix.Unix_error _ -> ());
      raise e

let close t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  try Unix.close t.jfd with Unix.Unix_error _ -> ()

let set_sync_hook t hook = t.hook <- hook
let commits t = t.commits
let path t = t.path

(* -- the atomic batch commit --------------------------------------------- *)

(* [fsyncs_per_commit] is fixed by the protocol: journal, image, journal
   truncate. *)
let fsyncs_per_commit = 3

let commit t ~capacity ~lines =
  let ordinal = t.commits + 1 in
  let nlines = List.length lines in
  if nlines > 0 then begin
    (* grow the hash table with the image *)
    let new_nlines = lines_of_cap capacity in
    if new_nlines > Array.length t.line_hash then begin
      let bigger = Array.make new_nlines (hash_line ~line:0 [||] 0 0) in
      (* fresh lines hash as all-zero content *)
      for line = 0 to new_nlines - 1 do
        bigger.(line) <-
          (if line < Array.length t.line_hash then t.line_hash.(line)
           else
             hash_line ~line
               (Array.make Config.words_per_line 0)
               0
               (line_len ~cap:capacity line));
        if line >= Array.length t.line_hash then
          t.image_checksum <- t.image_checksum lxor bigger.(line)
      done;
      t.line_hash <- bigger
    end;
    (* post-commit checksum: xor out each written line's old hash, xor in
       the new *)
    let post = ref t.image_checksum in
    List.iter
      (fun (line, words) ->
        let nh = hash_line ~line words 0 (Array.length words) in
        post := !post lxor t.line_hash.(line) lxor nh)
      lines;
    let post_checksum = !post in
    (* 1. journal: header + entries, hook, marker, fsync *)
    let entry_words = 1 + Config.words_per_line in
    let jwords = jheader_words + (nlines * entry_words) in
    let buf = Bytes.make ((jwords + 1) * word_bytes) '\000' in
    put_words buf 0
      [| jmagic; format_version; nlines; capacity; post_checksum |]
      0 jheader_words;
    let eh = ref 0 in
    List.iteri
      (fun e (line, words) ->
        let base = jheader_words + (e * entry_words) in
        let padded = Array.make entry_words 0 in
        padded.(0) <- line;
        Array.blit words 0 padded 1 (Array.length words);
        put_words buf base padded 0 entry_words;
        for i = base to base + entry_words - 1 do
          eh := mix !eh (get_word buf i)
        done)
      lines;
    retrying (fun () -> Unix.ftruncate t.jfd 0);
    seek t.jfd 0;
    write_all t.jfd (Bytes.sub buf 0 (jwords * word_bytes));
    t.hook Journal_torn ordinal;
    let marker = Bytes.create word_bytes in
    Bytes.set_int64_le marker 0
      (Int64.of_int
         (journal_marker ~nlines ~capacity ~post_checksum !eh));
    seek t.jfd (jwords * word_bytes);
    write_all t.jfd marker;
    fsync t.jfd;
    t.hook Journal_committed ordinal;
    (* 2. apply to the image + header, fsync *)
    if capacity > t.capacity then begin
      retrying (fun () ->
          Unix.ftruncate t.fd (header_bytes + (capacity * word_bytes)));
      t.capacity <- capacity
    end;
    let lbuf = Bytes.create (Config.words_per_line * word_bytes) in
    List.iteri
      (fun e (line, words) ->
        if e = nlines / 2 then t.hook Mid_apply ordinal;
        let len = Array.length words in
        put_words lbuf 0 words 0 len;
        seek t.fd (header_bytes + ((line lsl Config.line_shift) * word_bytes));
        write_all t.fd (Bytes.sub lbuf 0 (len * word_bytes));
        let nh = hash_line ~line words 0 len in
        t.line_hash.(line) <- nh)
      lines;
    t.image_checksum <- post_checksum;
    write_header t.fd ~capacity:t.capacity ~image_checksum:post_checksum;
    fsync t.fd;
    t.hook Applied ordinal;
    (* 3. retire the journal *)
    truncate_journal t;
    t.commits <- ordinal
  end

(* -- read-only inspection (fsck) ----------------------------------------- *)

type image = {
  i_capacity : int;
  i_words : int array;  (** effective image: a committed journal applied *)
  i_journal : journal_status;
  i_checksum_ok : bool;
  i_bad_lines : int list;  (** lines whose content hash disagrees *)
}

(* Load the image without mutating anything on disk: a committed journal
   is applied in memory only, a torn one is ignored (exactly what a
   repairing open would do, minus the writes). *)
let inspect ~path =
  if not (Sys.file_exists path) then bad path "no such image file";
  let fd = open_fd ~path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] in
  let jpath = journal_path path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let capacity, header_cs = read_header ~path fd in
      let words = read_words ~path fd ~pos:header_bytes ~words:capacity in
      let journal, expect_cs, capacity, words =
        match Sys.file_exists jpath with
        | false -> (Jnone, header_cs, capacity, words)
        | true ->
            let jfd = open_fd ~path:jpath [ Unix.O_RDONLY; Unix.O_CLOEXEC ] in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close jfd with Unix.Unix_error _ -> ())
              (fun () ->
                match read_journal ~path:jpath jfd with
                | Jnone, _, _, _ -> (Jnone, header_cs, capacity, words)
                | Jtorn, _, _, _ -> (Jtorn, header_cs, capacity, words)
                | Jcommitted n, jwords, new_capacity, post_checksum ->
                    let cap = max capacity new_capacity in
                    let grown = Array.make cap 0 in
                    Array.blit words 0 grown 0 capacity;
                    let entry_words = 1 + Config.words_per_line in
                    for e = 0 to n - 1 do
                      let base = jheader_words + (e * entry_words) in
                      let line = jwords.(base) in
                      let len = line_len ~cap line in
                      Array.blit jwords (base + 1) grown
                        (line lsl Config.line_shift)
                        len
                    done;
                    (Jcommitted n, post_checksum, cap, grown))
      in
      let bad_lines = ref [] in
      let cs = ref 0 in
      for line = lines_of_cap capacity - 1 downto 0 do
        let h =
          hash_line ~line words (line lsl Config.line_shift)
            (line_len ~cap:capacity line)
        in
        cs := !cs lxor h
      done;
      let checksum_ok = !cs = expect_cs in
      (* identify the damaged lines only when the totals disagree (the
         per-line diff needs nothing more than the xor structure when a
         single line is hit, but report conservatively: recompute is
         already done; a mismatching total with no identified line still
         reports not-ok) *)
      if not checksum_ok then
        (* without per-line reference hashes on disk we cannot name the
           exact lines; report the whole-image mismatch *)
        bad_lines := [];
      {
        i_capacity = capacity;
        i_words = words;
        i_journal = journal;
        i_checksum_ok = checksum_ok;
        i_bad_lines = !bad_lines;
      })

(* Atomic whole-image rewrite (fsck --repair): write a fresh image to a
   temporary, fsync, rename over the original, drop the journal. *)
let rewrite ~path ~words =
  let capacity = Array.length words in
  let tmp = path ^ ".repair" in
  let fd =
    open_fd ~path:tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
  in
  let image_checksum = checksum_of words capacity in
  write_header fd ~capacity ~image_checksum;
  let chunk = 4096 in
  let buf = Bytes.create (chunk * word_bytes) in
  let off = ref 0 in
  seek fd header_bytes;
  while !off < capacity do
    let n = min chunk (capacity - !off) in
    put_words buf 0 words !off n;
    write_all fd (Bytes.sub buf 0 (n * word_bytes));
    off := !off + n
  done;
  fsync fd;
  Unix.close fd;
  Unix.rename tmp path;
  let jpath = journal_path path in
  if Sys.file_exists jpath then Sys.remove jpath;
  fsync_dir path

(* Hand-of-god corruption for tests and the fsck property: overwrite one
   word in place, bypassing the journal and the checksum maintenance --
   exactly the out-of-band damage fsck must catch. *)
let poke_word ~path ~index word =
  let fd = open_fd ~path [ Unix.O_RDWR; Unix.O_CLOEXEC ] in
  let buf = Bytes.create word_bytes in
  Bytes.set_int64_le buf 0 (Int64.of_int word);
  seek fd (header_bytes + (index * word_bytes));
  write_all fd buf;
  fsync fd;
  Unix.close fd

let peek_word ~path ~index =
  let fd = open_fd ~path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] in
  let buf = Bytes.create word_bytes in
  seek fd (header_bytes + (index * word_bytes));
  read_exact ~path fd buf;
  Unix.close fd;
  Int64.to_int (Bytes.get_int64_le buf 0)
