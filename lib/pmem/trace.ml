(** Persistent-memory event trace (Section 5.4).

    The paper's automated testing framework records all PM allocations,
    writes, flushes, commits and fences during execution; a checker then
    verifies that (1) all PM writes outside commit sections target newly
    allocated memory and (2) every PM write is flushed before the next
    fence.  This module is the recording half; [Mod_core.Consistency]
    implements the checker. *)

type event =
  | Alloc of { off : int; words : int }
  | Free of { off : int; words : int }
  | Write of { off : int }
  | Flush of { line : int }
  | Fence
  | Commit_begin
  | Commit_end
  | Crash

type t = {
  mutable enabled : bool;
  mutable events : event array;
  mutable len : int;
}

let create ~enabled = { enabled; events = Array.make 1024 Fence; len = 0 }

let clear t = t.len <- 0
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let emit t ev =
  if t.enabled then begin
    if t.len = Array.length t.events then begin
      let bigger = Array.make (2 * t.len) Fence in
      Array.blit t.events 0 bigger 0 t.len;
      t.events <- bigger
    end;
    t.events.(t.len) <- ev;
    t.len <- t.len + 1
  end

let length t = t.len

(* Rewind to a previously observed [length]: region restore drops the
   events a sampled crash appended after the snapshot was taken. *)
let truncate t len =
  if len < 0 || len > t.len then
    invalid_arg (Printf.sprintf "Trace.truncate: length %d out of range" len);
  t.len <- len

let get t i = t.events.(i)
let iter t fn =
  for i = 0 to t.len - 1 do
    fn t.events.(i)
  done

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.events.(i) :: acc) in
  build (t.len - 1) []

let pp_event ppf = function
  | Alloc { off; words } -> Format.fprintf ppf "alloc(%d, %d words)" off words
  | Free { off; words } -> Format.fprintf ppf "free(%d, %d words)" off words
  | Write { off } -> Format.fprintf ppf "write(%d)" off
  | Flush { line } -> Format.fprintf ppf "clwb(line %d)" line
  | Fence -> Format.fprintf ppf "sfence"
  | Commit_begin -> Format.fprintf ppf "commit-begin"
  | Commit_end -> Format.fprintf ppf "commit-end"
  | Crash -> Format.fprintf ppf "crash"
