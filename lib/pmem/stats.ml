(** Simulated-time and event accounting.

    Execution time is split into the three phases of Figures 2 and 9:
    - [Flush]: CPU stalls at ordering points waiting for in-flight
      cacheline writebacks (including flushes of log entries);
    - [Log]: time spent constructing and copying write-ahead-log entries;
    - [Other]: everything else (computation, loads, stores).

    The counters also feed Figure 10 (flushes and fences per operation),
    Figure 11 (L1D miss ratios) and the Section 3 fence analysis. *)

type phase = Flush | Log | Other

type t = {
  mutable now_ns : float;
  mutable ns_flush : float;
  mutable ns_log : float;
  mutable ns_other : float;
  mutable loads : int;
  mutable stores : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable clwbs : int;
  mutable fences : int;
  mutable lines_drained : int;
  mutable log_writes : int;
  mutable commits : int;
      (* commit points retired: MOD root swings and PM-STM transaction
         commits both count one, so fences/commit compares the backends'
         ordering cost per retired atomic update group *)
  mutable cur_phase : phase;
  (* file-backed persistence (Backing): atomic writeback batches committed,
     cachelines written through them, and fsyncs issued on their behalf *)
  mutable file_commits : int;
  mutable file_lines : int;
  mutable file_fsyncs : int;
  (* histogram: number of fences that drained exactly [n] in-flight lines *)
  drain_histogram : (int, int) Hashtbl.t;
}

let create () =
  {
    now_ns = 0.0;
    ns_flush = 0.0;
    ns_log = 0.0;
    ns_other = 0.0;
    loads = 0;
    stores = 0;
    l1_hits = 0;
    l1_misses = 0;
    clwbs = 0;
    fences = 0;
    lines_drained = 0;
    log_writes = 0;
    commits = 0;
    cur_phase = Other;
    file_commits = 0;
    file_lines = 0;
    file_fsyncs = 0;
    drain_histogram = Hashtbl.create 16;
  }

let reset t =
  t.now_ns <- 0.0;
  t.ns_flush <- 0.0;
  t.ns_log <- 0.0;
  t.ns_other <- 0.0;
  t.loads <- 0;
  t.stores <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.clwbs <- 0;
  t.fences <- 0;
  t.lines_drained <- 0;
  t.log_writes <- 0;
  t.commits <- 0;
  t.cur_phase <- Other;
  t.file_commits <- 0;
  t.file_lines <- 0;
  t.file_fsyncs <- 0;
  Hashtbl.reset t.drain_histogram

(* Deep copy, for region snapshots: a crash-point sample must not leak
   its simulated time or event counts into the next sample. *)
let copy t = { t with drain_histogram = Hashtbl.copy t.drain_histogram }

(* Overwrite [into] with the contents of [src] (the restore half). *)
let assign ~into src =
  into.now_ns <- src.now_ns;
  into.ns_flush <- src.ns_flush;
  into.ns_log <- src.ns_log;
  into.ns_other <- src.ns_other;
  into.loads <- src.loads;
  into.stores <- src.stores;
  into.l1_hits <- src.l1_hits;
  into.l1_misses <- src.l1_misses;
  into.clwbs <- src.clwbs;
  into.fences <- src.fences;
  into.lines_drained <- src.lines_drained;
  into.log_writes <- src.log_writes;
  into.commits <- src.commits;
  into.cur_phase <- src.cur_phase;
  into.file_commits <- src.file_commits;
  into.file_lines <- src.file_lines;
  into.file_fsyncs <- src.file_fsyncs;
  Hashtbl.reset into.drain_histogram;
  Hashtbl.iter (Hashtbl.replace into.drain_histogram) src.drain_histogram

(* Advance simulated time, attributing it to the current phase. *)
let advance t ns =
  t.now_ns <- t.now_ns +. ns;
  match t.cur_phase with
  | Flush -> t.ns_flush <- t.ns_flush +. ns
  | Log -> t.ns_log <- t.ns_log +. ns
  | Other -> t.ns_other <- t.ns_other +. ns

(* Advance simulated time, attributing it to a specific phase regardless of
   the current one.  Fence stalls always count as Flush time. *)
let advance_in t phase ns =
  t.now_ns <- t.now_ns +. ns;
  match phase with
  | Flush -> t.ns_flush <- t.ns_flush +. ns
  | Log -> t.ns_log <- t.ns_log +. ns
  | Other -> t.ns_other <- t.ns_other +. ns

let in_phase t phase f =
  let saved = t.cur_phase in
  t.cur_phase <- phase;
  Fun.protect ~finally:(fun () -> t.cur_phase <- saved) f

let record_fence t ~drained =
  t.fences <- t.fences + 1;
  t.lines_drained <- t.lines_drained + drained;
  let prev = try Hashtbl.find t.drain_histogram drained with Not_found -> 0 in
  Hashtbl.replace t.drain_histogram drained (prev + 1)

let miss_ratio t =
  let total = t.l1_hits + t.l1_misses in
  if total = 0 then 0.0 else float_of_int t.l1_misses /. float_of_int total

(** Immutable snapshot, used to compute per-operation deltas (Figure 10). *)
type snapshot = {
  s_now_ns : float;
  s_ns_flush : float;
  s_ns_log : float;
  s_ns_other : float;
  s_loads : int;
  s_stores : int;
  s_l1_hits : int;
  s_l1_misses : int;
  s_clwbs : int;
  s_fences : int;
  s_lines_drained : int;
  s_commits : int;
}

let snapshot t =
  {
    s_now_ns = t.now_ns;
    s_ns_flush = t.ns_flush;
    s_ns_log = t.ns_log;
    s_ns_other = t.ns_other;
    s_loads = t.loads;
    s_stores = t.stores;
    s_l1_hits = t.l1_hits;
    s_l1_misses = t.l1_misses;
    s_clwbs = t.clwbs;
    s_fences = t.fences;
    s_lines_drained = t.lines_drained;
    s_commits = t.commits;
  }

let diff ~before ~after =
  {
    s_now_ns = after.s_now_ns -. before.s_now_ns;
    s_ns_flush = after.s_ns_flush -. before.s_ns_flush;
    s_ns_log = after.s_ns_log -. before.s_ns_log;
    s_ns_other = after.s_ns_other -. before.s_ns_other;
    s_loads = after.s_loads - before.s_loads;
    s_stores = after.s_stores - before.s_stores;
    s_l1_hits = after.s_l1_hits - before.s_l1_hits;
    s_l1_misses = after.s_l1_misses - before.s_l1_misses;
    s_clwbs = after.s_clwbs - before.s_clwbs;
    s_fences = after.s_fences - before.s_fences;
    s_lines_drained = after.s_lines_drained - before.s_lines_drained;
    s_commits = after.s_commits - before.s_commits;
  }

let snapshot_miss_ratio s =
  let total = s.s_l1_hits + s.s_l1_misses in
  if total = 0 then 0.0 else float_of_int s.s_l1_misses /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "@[<v>time %.0f ns (flush %.0f, log %.0f, other %.0f)@ loads %d stores %d@ \
     clwb %d sfence %d drained %d@ L1D hits %d misses %d (%.2f%%)@]"
    t.now_ns t.ns_flush t.ns_log t.ns_other t.loads t.stores t.clwbs t.fences
    t.lines_drained t.l1_hits t.l1_misses
    (100.0 *. miss_ratio t)
