(** Simulated persistent-memory region.

    The region is a word-addressable array with per-cacheline durability
    state, modelling a CPU with a write-back L1D cache in front of Optane
    DCPMM.  Stores land in the volatile view; [clwb] launches an unordered
    background writeback of a line; [sfence] guarantees the completion of
    all in-flight writebacks (charging the Amdahl stall of Section 3); a
    [crash] loses everything volatile, randomizing the fate of lines whose
    writeback had been launched or that may have been evicted. *)

type t

type crash_mode =
  | Drop_inflight  (** no launched writeback completed: worst case *)
  | Keep_inflight  (** every launched writeback completed: best case *)
  | Randomize      (** each in-flight / dirty line flips a coin *)

exception Crash_point
(** Raised by the deterministic crash scheduler (see {!set_crash_after})
    immediately after the scheduled PM event completes. *)

exception Media_fault of { off : int }
(** Raised by [load] / [durable_load] when the word's cacheline has been
    armed as media-bad (see {!arm_media_fault}): the simulated DIMM
    returns a detectable poisoned read, as ECC hardware would. *)

val create :
  ?capacity_words:int -> ?trace:bool -> ?seed:int -> ?file:string -> unit -> t
(** [create ()] makes a memory-backed region (nothing survives the
    process).  With [~file:path], the durable image is additionally
    mapped onto [path] ({!Backing}): every fence commits the cachelines
    whose durable contents changed as one failure-atomic batch, so the
    heap genuinely survives [kill -9].  Creating truncates any existing
    image at [path]; use {!open_file} to reopen one. *)

val stats : t -> Stats.t
val trace : t -> Trace.t
val cache : t -> Cache.t
val capacity_words : t -> int

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t n] grows the region so offsets below [n] are valid. *)

val load : t -> int -> Word.t
(** Cached load of the word at the given offset; charges hit or PM-miss
    latency and updates the cache simulator. *)

val store : t -> int -> Word.t -> unit
(** Cached store; the target line becomes dirty (volatile until flushed or
    evicted). An 8-byte store is atomic, as on x86-64. *)

val clwb : t -> int -> unit
(** Launch a writeback of the line containing the word offset.  Commits
    instantly; the flush proceeds unordered in the background (Figure 3). *)

val clwb_range : t -> int -> int -> unit
(** [clwb_range t off words] issues [clwb] once per distinct line touched
    by the range. *)

val sfence : t -> unit
(** Drain all in-flight writebacks to the durable image; stall per the
    analytical model, attributed to the Flush phase. *)

val inflight : t -> int
(** Number of lines with a launched, un-fenced writeback. *)

val set_fence_per_flush : t -> bool -> unit
(** Ablation knob: when enabled, every [clwb] is immediately followed by
    an [sfence], serializing all flushes (the Section 3 worst case). *)

val crash : ?mode:crash_mode -> ?seed:int -> ?torn:bool -> t -> unit
(** Power failure: volatile state is lost.  Lines that were flushed and
    fenced are durable; other dirty state survives per [mode].  After the
    call, loads observe exactly the durable image.  Line-survival
    randomness ([Randomize]) comes from a per-crash RNG seeded by [seed]
    when given, else by a draw from the region's private stream; either
    way the seed actually used is recorded in {!last_crash_seed}, so a
    failing randomized crash can be replayed in isolation.

    With [~torn:true], each dirty or in-flight line persists a seeded
    per-word {e subset} of its new contents instead of an all-or-nothing
    outcome ([mode] is ignored for such lines): the fault model for a
    writeback interrupted mid-line.  Multi-word records that must be
    read back after a torn crash need their own detection (checksums). *)

val last_crash_seed : t -> int option
(** Seed that drove the most recent [crash]'s survival outcomes. *)

(** {1 Fault injection}

    Beyond clean power cuts, the injector can arm individual cachelines
    as media-bad (uncorrectable read errors) and corrupt single words in
    place.  Faults are part of the {e current} timeline: {!restore}
    clears any armed media faults along with the image. *)

val arm_media_fault : t -> line:int -> unit
(** Mark [line] media-bad: every subsequent [load] / [durable_load] of a
    word in it raises {!Media_fault} until {!clear_media_faults} or a
    {!restore}.  Stores still land (the WPQ accepts writes to bad
    lines); only reads observe the poison. *)

val clear_media_faults : t -> unit
val media_fault_count : t -> int
(** Number of lines currently armed as media-bad. *)

val integrity_epoch : t -> int
(** Monotone counter bumped by every event that can silently change or
    poison durable contents behind a reader's back: {!crash}, {!restore},
    {!corrupt_word}, {!arm_media_fault}, {!clear_media_faults}.  A layer
    caching derived views of PM (e.g. the heap's root-record cache)
    remembers the epoch at fill time and treats a mismatch as a cache
    invalidation. *)

val corrupt_word : t -> int -> unit
(** Flip bits of one word in both the volatile view and the durable
    image, bypassing cache and stats: the injector's hand, used to model
    silent in-place corruption that checksums must catch. *)

(** {1 Deterministic crash scheduler}

    Every completed [store], [clwb] and [sfence] is one {e PM event}.
    [set_crash_after t n] arms a budget: the [n]-th subsequent event
    completes and then {!Crash_point} is raised, simulating a power
    failure at that exact instruction boundary.  The caller catches the
    exception, injects {!crash}, and recovers -- re-running the same
    deterministic workload with budgets 1, 2, ... enumerates every
    possible crash point. *)

val pm_events : t -> int
(** Total PM events (stores + clwbs + sfences) since [create]. *)

val set_crash_after : t -> int -> unit
(** Arm the scheduler: raise {!Crash_point} after [n] more PM events
    ([n >= 1]).  The budget disarms itself when it fires. *)

val clear_crash_point : t -> unit
(** Disarm a pending crash budget. *)

(** {1 Event hook (concurrent interleaving)}

    The crash scheduler's PM-event stream doubles as the preemption
    grid for simulated concurrency: an installed hook runs after every
    completed PM event (store / clwb / sfence) that did not crash, and
    the interleaving explorer yields to another writer there.  Loads
    are not PM events, so straight-line OCaml between two PM events is
    atomic with respect to the other writer -- the granularity of real
    store visibility on a TSO machine. *)

val set_event_hook : t -> (unit -> unit) option -> unit
(** Install (or clear, with [None]) the post-event hook.  The hook runs
    after the crash-budget check, so a crashing event never yields. *)

val atomic : t -> (unit -> 'a) -> 'a
(** [atomic t f] runs [f] with the event hook suspended: no other
    writer is scheduled between [f]'s PM events, but the events still
    count against the crash budget (a power cut can land inside).
    Models a single indivisible hardware instruction such as an 8-byte
    CAS.  Nested calls are flattened. *)

type snapshot
(** A rewind point for the memory image (volatile view, durable image,
    per-line durability state, simulated-time counters, RNG and trace
    position).  Representation depends on the {!snapshot_mode} in force
    when {!snapshot} was called. *)

type snapshot_mode =
  | Journal
      (** Copy-on-write undo journaling: [snapshot] records a position in
          the region's journal (O(1)); every subsequent first mutation of
          a cacheline saves that line's pre-image; [restore] replays the
          records newest-to-oldest -- O(lines touched) instead of
          O(capacity).  Snapshots stack: an outer snapshot remains valid
          across inner snapshot/restore cycles, but truncating the
          journal below a token (restoring past it) invalidates it, and
          [restore] rejects such stale tokens. *)
  | Full_copy
      (** Whole-image array copies on every snapshot and restore
          (O(capacity)).  Kept as the differential reference for the
          journal: both modes must produce bit-identical images and
          oracle verdicts. *)

val set_snapshot_mode : t -> snapshot_mode -> unit
(** Select the implementation used by subsequent {!snapshot} calls.
    Fresh regions start in [Full_copy].  Once a [Journal] snapshot has
    been taken, the region keeps journaling until it is discarded. *)

val snapshot_mode : t -> snapshot_mode

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** [restore t s] rewinds the memory image to [s] so the same crash
    point can be sampled under several survival seeds without re-running
    the workload.  The cache hierarchy is invalidated rather than
    restored; that affects only latency accounting, so the intended next
    step after a restore is another [crash].  Stats (simulated time,
    event counters), the region RNG and the trace position are restored
    alongside the image, so samples do not leak time into each other.
    Raises [Invalid_argument] for a journaled snapshot that was
    invalidated by an earlier restore past it, or that belongs to a
    different region. *)

val journal_entries : t -> int
(** Number of live undo records in the snapshot journal (for tests). *)

val images_equal : t -> t -> bool
(** Word-for-word equality of two regions' volatile views, durable
    images, line states, capacities and in-flight counts (differential
    testing of the two snapshot modes). *)

val durable_load : t -> int -> Word.t
(** Read the durable image directly (recovery-time inspection; charges PM
    read latency but does not disturb the cache simulator). *)

val peek_durable : t -> int -> Word.t
(** Read the durable image with no side effects at all (for tests). *)

val peek_current : t -> int -> Word.t
(** Read the volatile view with no side effects at all (for tests). *)

val line_of_word : int -> int
val is_durable_line : t -> int -> bool
(** [is_durable_line t line] is true when the volatile and durable contents
    of [line] agree (for tests). *)

(** {1 File backend}

    With a backing file, the durable image outlives the process: fences
    commit changed cachelines to the image as one atomic batch via a
    WAL-style double write (sidecar journal, fsync, apply, fsync,
    truncate -- see {!Backing}), so an image killed mid-writeback is
    always recoverable on reopen. *)

val open_file :
  ?trace:bool ->
  ?seed:int ->
  path:string ->
  unit ->
  t * [ `None | `Replayed of int | `Discarded ]
(** Reopen an existing image file: resolve the sidecar journal (replay a
    committed one -- [`Replayed lines] -- or discard a torn one --
    [`Discarded]), verify the whole-image checksum, and return a region
    whose volatile view and durable image both equal the file contents
    (all lines Clean, as after a power cycle).  Raises
    {!Backing.Bad_image} for missing, truncated, wrong-magic,
    wrong-version or corrupted images; transient open errors
    ([EINTR]/[EAGAIN], short reads) are retried with bounded backoff
    before that verdict. *)

val file_backed : t -> bool
val backing_path : t -> string option

val close_file : t -> unit
(** Commit any durable-image changes not yet in the file and release the
    descriptors.  The region remains usable as memory-backed. *)

val set_file_sync_hook : t -> (Backing.sync_phase -> int -> unit) -> unit
(** Install a hook called at the four phases of every file commit (see
    {!Backing.sync_phase}) -- the kill-9 harness uses it to SIGKILL the
    process mid-writeback.  Raises [Invalid_argument] on a memory-backed
    region. *)

val file_commits : t -> int
(** Atomic file batches committed so far (0 for memory-backed regions). *)
