(** Simulated persistent-memory region.

    The region is a word-addressable array with per-cacheline durability
    state, modelling a CPU with a write-back L1D cache in front of Optane
    DCPMM.  Stores land in the volatile view; [clwb] launches an unordered
    background writeback of a line; [sfence] guarantees the completion of
    all in-flight writebacks (charging the Amdahl stall of Section 3); a
    [crash] loses everything volatile, randomizing the fate of lines whose
    writeback had been launched or that may have been evicted. *)

type t

type crash_mode =
  | Drop_inflight  (** no launched writeback completed: worst case *)
  | Keep_inflight  (** every launched writeback completed: best case *)
  | Randomize      (** each in-flight / dirty line flips a coin *)

exception Crash_point
(** Raised by the deterministic crash scheduler (see {!set_crash_after})
    immediately after the scheduled PM event completes. *)

val create : ?capacity_words:int -> ?trace:bool -> ?seed:int -> unit -> t

val stats : t -> Stats.t
val trace : t -> Trace.t
val cache : t -> Cache.t
val capacity_words : t -> int

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t n] grows the region so offsets below [n] are valid. *)

val load : t -> int -> Word.t
(** Cached load of the word at the given offset; charges hit or PM-miss
    latency and updates the cache simulator. *)

val store : t -> int -> Word.t -> unit
(** Cached store; the target line becomes dirty (volatile until flushed or
    evicted). An 8-byte store is atomic, as on x86-64. *)

val clwb : t -> int -> unit
(** Launch a writeback of the line containing the word offset.  Commits
    instantly; the flush proceeds unordered in the background (Figure 3). *)

val clwb_range : t -> int -> int -> unit
(** [clwb_range t off words] issues [clwb] once per distinct line touched
    by the range. *)

val sfence : t -> unit
(** Drain all in-flight writebacks to the durable image; stall per the
    analytical model, attributed to the Flush phase. *)

val inflight : t -> int
(** Number of lines with a launched, un-fenced writeback. *)

val set_fence_per_flush : t -> bool -> unit
(** Ablation knob: when enabled, every [clwb] is immediately followed by
    an [sfence], serializing all flushes (the Section 3 worst case). *)

val crash : ?mode:crash_mode -> ?seed:int -> t -> unit
(** Power failure: volatile state is lost.  Lines that were flushed and
    fenced are durable; other dirty state survives per [mode].  After the
    call, loads observe exactly the durable image.  Line-survival
    randomness ([Randomize]) comes from a per-crash RNG seeded by [seed]
    when given, else by a draw from the region's private stream; either
    way the seed actually used is recorded in {!last_crash_seed}, so a
    failing randomized crash can be replayed in isolation. *)

val last_crash_seed : t -> int option
(** Seed that drove the most recent [crash]'s survival outcomes. *)

(** {1 Deterministic crash scheduler}

    Every completed [store], [clwb] and [sfence] is one {e PM event}.
    [set_crash_after t n] arms a budget: the [n]-th subsequent event
    completes and then {!Crash_point} is raised, simulating a power
    failure at that exact instruction boundary.  The caller catches the
    exception, injects {!crash}, and recovers -- re-running the same
    deterministic workload with budgets 1, 2, ... enumerates every
    possible crash point. *)

val pm_events : t -> int
(** Total PM events (stores + clwbs + sfences) since [create]. *)

val set_crash_after : t -> int -> unit
(** Arm the scheduler: raise {!Crash_point} after [n] more PM events
    ([n >= 1]).  The budget disarms itself when it fires. *)

val clear_crash_point : t -> unit
(** Disarm a pending crash budget. *)

type snapshot
(** A full copy of the memory image (volatile view, durable image,
    per-line durability state). *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** [restore t s] rewinds the memory image to [s] so the same crash
    point can be sampled under several survival seeds without re-running
    the workload.  The cache hierarchy is reset rather than restored;
    that affects only latency accounting, so the intended next step
    after a restore is another [crash]. *)

val durable_load : t -> int -> Word.t
(** Read the durable image directly (recovery-time inspection; charges PM
    read latency but does not disturb the cache simulator). *)

val peek_durable : t -> int -> Word.t
(** Read the durable image with no side effects at all (for tests). *)

val peek_current : t -> int -> Word.t
(** Read the volatile view with no side effects at all (for tests). *)

val line_of_word : int -> int
val is_durable_line : t -> int -> bool
(** [is_durable_line t line] is true when the volatile and durable contents
    of [line] agree (for tests). *)
