(** Persistent-memory event trace (paper Section 5.4).

    The recording half of the paper's automated testing framework: the
    region emits every allocation, write, flush, fence, commit marker and
    crash; {!Mod_core.Consistency} is the checker that audits the result.
    Tracing is off by default (zero overhead for benchmarks). *)

type event =
  | Alloc of { off : int; words : int }
  | Free of { off : int; words : int }
  | Write of { off : int }
  | Flush of { line : int }
  | Fence
  | Commit_begin
  | Commit_end
  | Crash

type t

val create : enabled:bool -> t
val clear : t -> unit
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val emit : t -> event -> unit
val length : t -> int

val truncate : t -> int -> unit
(** [truncate t len] rewinds the trace to a previously observed {!length}
    (snapshot/restore support: drops events recorded after the snapshot). *)

val get : t -> int -> event
val iter : t -> (event -> unit) -> unit
val to_list : t -> event list
val pp_event : Format.formatter -> event -> unit
