type line_state = Clean | Dirty | Flushing

type crash_mode = Drop_inflight | Keep_inflight | Randomize

exception Crash_point

exception Media_fault of { off : int }

type snapshot_mode = Journal | Full_copy

(* One undo-journal record: the full pre-image of a cacheline (volatile
   view, durable image, durability state) captured on its first mutation
   after a snapshot or restore.  Replaying records newest-to-oldest
   rewinds the region in O(lines touched). *)
type jentry = {
  e_line : int;
  e_state : line_state;
  e_cur : int array;
  e_dur : int array;
}

let dummy_entry = { e_line = 0; e_state = Clean; e_cur = [||]; e_dur = [||] }

type jtoken = {
  t_region : int;  (** stamp of the region this token belongs to *)
  t_pos : int;  (** journal length when the snapshot was taken *)
  mutable t_valid : bool;  (** cleared when the log is truncated below *)
  t_capacity : int;
  t_inflight : int;
  t_stats : Stats.t;
  t_rng : Random.State.t;
  t_trace_len : int;
}

type t = {
  mutable current : int array; (* the CPU's coherent view *)
  mutable durable : int array; (* what Optane DCPMM holds *)
  mutable state : line_state array; (* per cacheline *)
  mutable capacity : int; (* in words *)
  cache : Cache.t; (* L1D: drives miss ratios and eviction writebacks *)
  l2 : Cache.t; (* latency modelling only *)
  llc : Cache.t; (* latency modelling only *)
  stats : Stats.t;
  trace : Trace.t;
  mutable rng : Random.State.t;
  mutable inflight : int;
  (* worklist of lines that may be in Flushing state, so a fence drains
     in O(in-flight flushes) instead of scanning every line of the
     region.  Invariant: every Flushing line is in the list; the list may
     also hold stale entries for lines that left Flushing some other way
     (eviction writeback, a re-dirtying store) -- the drain re-checks the
     state and skips them. *)
  mutable flushing_q : int list;
  (* ablation knob: order every clwb individually, as if each flush were
     followed by its own sfence (the paper's Section 3 worst case) *)
  mutable fence_per_flush : bool;
  (* crash scheduler: every store/clwb/sfence is one PM event; when the
     budget counts down to zero the power fails (Crash_point is raised) *)
  mutable events : int;
  mutable crash_budget : int; (* -1 = no crash scheduled *)
  mutable last_crash_seed : int option;
  (* concurrency hook: called after every PM event that did not crash.
     The interleaving explorer installs a scheduler yield here so two
     writers' event streams can be woven deterministically.  [atomic]
     suspends the hook (but not the crash budget) across a section that
     models one indivisible hardware instruction, e.g. an 8-byte CAS. *)
  mutable event_hook : (unit -> unit) option;
  mutable hook_suspended : bool;
  (* snapshot journal (see [snapshot]) *)
  region_stamp : int;
  mutable snap_mode : snapshot_mode;
  mutable j_on : bool; (* journaling armed: first-touch undo records *)
  mutable j_entries : jentry array;
  mutable j_len : int;
  mutable j_mark : int array; (* per line: epoch of its current record *)
  mutable j_epoch : int;
  mutable j_tokens : jtoken list; (* live journaled snapshots *)
  (* fault injection: lines armed as media-bad raise Media_fault on any
     load until cleared (restore clears them) *)
  media_bad : (int, unit) Hashtbl.t;
  (* bumped on every event that can invalidate a reader's private cache of
     durable contents: crash, restore, hand-of-god corruption, media-fault
     arming/clearing.  Readers (e.g. Heap's root-record cache) compare a
     remembered epoch against this before trusting cached values. *)
  mutable integrity_epoch : int;
  (* file backend (Backing): when present, cachelines whose durable
     contents changed since the last fence accumulate in [file_dirty] and
     are committed to the image file as one atomic batch at each fence *)
  mutable backing : Backing.t option;
  file_dirty : (int, unit) Hashtbl.t;
}

type snapshot =
  | Full of {
      s_current : int array;
      s_durable : int array;
      s_state : line_state array;
      s_capacity : int;
      s_inflight : int;
      s_stats : Stats.t;
      s_rng : Random.State.t;
      s_trace_len : int;
    }
  | Journaled of jtoken

let line_of_word off = off lsr Config.line_shift

let next_stamp = ref 0

let create ?(capacity_words = 1 lsl 20) ?(trace = false) ?(seed = 42) ?file ()
    =
  let cap = max capacity_words Config.words_per_line in
  let lines = (cap + Config.words_per_line - 1) / Config.words_per_line in
  incr next_stamp;
  let backing =
    match file with
    | None -> None
    | Some path -> Some (Backing.create ~path ~capacity_words:cap)
  in
  {
    current = Array.make cap 0;
    durable = Array.make cap 0;
    state = Array.make lines Clean;
    capacity = cap;
    cache = Cache.create ();
    l2 = Cache.create ~sets:Config.l2_sets ~ways:Config.l2_ways ();
    llc = Cache.create ~sets:Config.llc_sets ~ways:Config.llc_ways ();
    stats = Stats.create ();
    trace = Trace.create ~enabled:trace;
    rng = Random.State.make [| seed |];
    inflight = 0;
    flushing_q = [];
    fence_per_flush = false;
    events = 0;
    crash_budget = -1;
    last_crash_seed = None;
    event_hook = None;
    hook_suspended = false;
    region_stamp = !next_stamp;
    snap_mode = Full_copy;
    j_on = false;
    j_entries = [||];
    j_len = 0;
    j_mark = Array.make lines (-1);
    j_epoch = 0;
    j_tokens = [];
    media_bad = Hashtbl.create 4;
    integrity_epoch = 0;
    backing;
    file_dirty = Hashtbl.create 64;
  }

let stats t = t.stats
let trace t = t.trace
let cache t = t.cache
let capacity_words t = t.capacity
let inflight t = t.inflight
let pm_events t = t.events
let set_crash_after t n =
  if n <= 0 then invalid_arg "Region.set_crash_after: budget must be positive";
  t.crash_budget <- n

let clear_crash_point t = t.crash_budget <- -1
let last_crash_seed t = t.last_crash_seed

let set_snapshot_mode t mode = t.snap_mode <- mode
let snapshot_mode t = t.snap_mode

(* -- snapshot journal ---------------------------------------------------- *)

let journal_push t e =
  let n = Array.length t.j_entries in
  if t.j_len = n then begin
    let bigger = Array.make (max 64 (2 * n)) dummy_entry in
    Array.blit t.j_entries 0 bigger 0 n;
    t.j_entries <- bigger
  end;
  t.j_entries.(t.j_len) <- e;
  t.j_len <- t.j_len + 1

(* First-touch undo record: called before any mutation of [line]'s
   volatile contents, durable contents or durability state. *)
let journal_touch t line =
  if t.j_on && t.j_mark.(line) <> t.j_epoch then begin
    t.j_mark.(line) <- t.j_epoch;
    let base = line lsl Config.line_shift in
    let len = min Config.words_per_line (t.capacity - base) in
    journal_push t
      {
        e_line = line;
        e_state = t.state.(line);
        e_cur = Array.sub t.current base len;
        e_dur = Array.sub t.durable base len;
      }
  end

let journal_entries t = t.j_len

(* ------------------------------------------------------------------------ *)

(* Count one PM event (store / clwb / sfence) against the crash budget.
   The event itself has completed by the time we raise: the power fails
   immediately after it. *)
let tick t =
  t.events <- t.events + 1;
  if t.crash_budget > 0 then begin
    t.crash_budget <- t.crash_budget - 1;
    if t.crash_budget = 0 then begin
      t.crash_budget <- -1;
      raise Crash_point
    end
  end;
  match t.event_hook with
  | Some hook when not t.hook_suspended -> hook ()
  | _ -> ()

let set_event_hook t hook = t.event_hook <- hook

(* Run [f] with the event hook suspended: the section's PM events still
   count against the crash budget (power can fail inside it) but no
   other writer is scheduled between them.  This is how an 8-byte
   hardware CAS is modelled: its read-compare-write is indivisible with
   respect to other CPUs, yet a power cut can still land mid-record. *)
let atomic t f =
  if t.hook_suspended then f ()
  else begin
    t.hook_suspended <- true;
    Fun.protect ~finally:(fun () -> t.hook_suspended <- false) f
  end

let ensure_capacity t n =
  if n > t.capacity then begin
    let cap = ref t.capacity in
    while n > !cap do
      cap := !cap * 2
    done;
    let cap = !cap in
    let grow arr =
      let bigger = Array.make cap 0 in
      Array.blit arr 0 bigger 0 t.capacity;
      bigger
    in
    t.current <- grow t.current;
    t.durable <- grow t.durable;
    let lines = (cap + Config.words_per_line - 1) / Config.words_per_line in
    let st = Array.make lines Clean in
    Array.blit t.state 0 st 0 (Array.length t.state);
    t.state <- st;
    if lines > Array.length t.j_mark then begin
      let marks = Array.make lines (-1) in
      Array.blit t.j_mark 0 marks 0 (Array.length t.j_mark);
      t.j_mark <- marks
    end;
    t.capacity <- cap
  end

let check_off t off fn =
  if off < 0 || off >= t.capacity then
    invalid_arg (Printf.sprintf "Region.%s: offset %d out of bounds" fn off)

let mark_file_dirty t line =
  if t.backing <> None then Hashtbl.replace t.file_dirty line ()

(* Copy the volatile contents of [line] into the durable image. *)
let writeback_line t line =
  let base = line lsl Config.line_shift in
  let len = min Config.words_per_line (t.capacity - base) in
  Array.blit t.current base t.durable base len;
  mark_file_dirty t line

(* Commit the durable image's changed lines to the backing file as one
   atomic batch (journal, fsync, apply, fsync, truncate).  Called at
   every fence -- the file's commit points are exactly the region's
   ordering points, so what a revived process reads back is what the
   epoch-persistency model says was durable. *)
let file_commit t =
  match t.backing with
  | None -> ()
  | Some b ->
      if Hashtbl.length t.file_dirty > 0 then begin
        let lines =
          Hashtbl.fold
            (fun line () acc ->
              let base = line lsl Config.line_shift in
              let len = min Config.words_per_line (t.capacity - base) in
              (line, Array.sub t.durable base len) :: acc)
            t.file_dirty []
        in
        let lines =
          List.sort (fun (a, _) (b, _) -> compare a b) lines
        in
        Backing.commit b ~capacity:t.capacity ~lines;
        Hashtbl.reset t.file_dirty;
        t.stats.Stats.file_commits <- t.stats.Stats.file_commits + 1;
        t.stats.Stats.file_lines <-
          t.stats.Stats.file_lines + List.length lines;
        t.stats.Stats.file_fsyncs <-
          t.stats.Stats.file_fsyncs + Backing.fsyncs_per_commit
      end

(* Cache-eviction callback: hardware replacement writes the victim's data
   back to PM, incidentally making it durable. *)
let evict_writeback t victim_line =
  if victim_line < Array.length t.state then begin
    journal_touch t victim_line;
    writeback_line t victim_line;
    (match t.state.(victim_line) with
    | Flushing -> t.inflight <- t.inflight - 1
    | Dirty | Clean -> ());
    t.state.(victim_line) <- Clean
  end

let no_writeback _ = ()

(* Walk the cache hierarchy for latency purposes.  Durability only cares
   about L1D evictions (a dirty line leaving L1D is written back to PM,
   conservatively); L2 and LLC model where a miss is served from. *)
let touch_cache t off ~write =
  let line = line_of_word off in
  let hit = Cache.access t.cache ~writeback:(evict_writeback t) ~line ~write in
  if hit then begin
    t.stats.Stats.l1_hits <- t.stats.Stats.l1_hits + 1;
    Latency.L1
  end
  else begin
    t.stats.Stats.l1_misses <- t.stats.Stats.l1_misses + 1;
    if Cache.access t.l2 ~writeback:no_writeback ~line ~write:false then
      Latency.L2
    else if Cache.access t.llc ~writeback:no_writeback ~line ~write:false then
      Latency.Llc
    else Latency.Pm
  end

(* Media-bad lines fault on any read path: armed by the fault injector
   (see [arm_media_fault]), detected here exactly where a real DIMM would
   return a poisoned line. *)
let check_media t off fn =
  if
    Hashtbl.length t.media_bad > 0
    && Hashtbl.mem t.media_bad (line_of_word off)
  then begin
    ignore (fn : string);
    raise (Media_fault { off })
  end

let load t off =
  check_off t off "load";
  check_media t off "load";
  let level = touch_cache t off ~write:false in
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Stats.advance t.stats (Latency.load_ns level);
  Word.raw t.current.(off)

let store t off w =
  check_off t off "store";
  let line = line_of_word off in
  journal_touch t line;
  ignore (touch_cache t off ~write:true : Latency.load_level);
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Stats.advance t.stats Latency.store_ns;
  t.current.(off) <- Word.bits w;
  (match t.state.(line) with
  | Clean -> t.state.(line) <- Dirty
  | Dirty -> ()
  | Flushing ->
      (* The store raced a writeback already launched by a clwb.  On
         hardware the pre-clwb contents are durable by the next fence
         regardless -- the writeback either completed before this store
         or the store joined the line while it was still queued; model
         the latter, so the fence drains the line with this store
         included.  Downgrading to [Dirty] here would silently void the
         clwb+fence guarantee of a neighbour block sharing the line
         (false sharing): its commit would fence "durable" shadows whose
         line a concurrent writer's allocation re-dirtied. *)
      ());
  Trace.emit t.trace (Trace.Write { off });
  tick t

let rec clwb t off =
  check_off t off "clwb";
  let line = line_of_word off in
  t.stats.Stats.clwbs <- t.stats.Stats.clwbs + 1;
  Trace.emit t.trace (Trace.Flush { line });
  (match t.state.(line) with
  | Dirty ->
      journal_touch t line;
      t.state.(line) <- Flushing;
      t.flushing_q <- line :: t.flushing_q;
      t.inflight <- t.inflight + 1
  | Clean | Flushing -> ());
  tick t;
  if t.fence_per_flush then sfence t

and sfence t =
  let drained = t.inflight in
  List.iter
    (fun line ->
      match t.state.(line) with
      | Flushing ->
          journal_touch t line;
          writeback_line t line;
          t.state.(line) <- Clean;
          Cache.mark_clean t.cache ~line
      | Clean | Dirty -> ())
    t.flushing_q;
  t.flushing_q <- [];
  t.inflight <- 0;
  Stats.record_fence t.stats ~drained;
  Stats.advance_in t.stats Stats.Flush (Latency.fence_stall_ns ~inflight:drained);
  file_commit t;
  Trace.emit t.trace Trace.Fence;
  tick t

let clwb_range t off words =
  if words > 0 then begin
    let first = line_of_word off in
    let last = line_of_word (off + words - 1) in
    for line = first to last do
      clwb t (line lsl Config.line_shift)
    done
  end

let set_fence_per_flush t enabled = t.fence_per_flush <- enabled

(* Invalidate the cache hierarchy.  The full wipe is kept on the
   full-copy reference path; journaled snapshots use the O(1) epoch
   invalidation (observably identical -- see Cache). *)
let reset_caches t =
  match t.snap_mode with
  | Full_copy ->
      Cache.reset t.cache;
      Cache.reset t.l2;
      Cache.reset t.llc
  | Journal ->
      Cache.invalidate t.cache;
      Cache.invalidate t.l2;
      Cache.invalidate t.llc

let arm_media_fault t ~line =
  if line < 0 || line >= Array.length t.state then
    invalid_arg (Printf.sprintf "Region.arm_media_fault: line %d out of bounds" line);
  t.integrity_epoch <- t.integrity_epoch + 1;
  Hashtbl.replace t.media_bad line ()

let clear_media_faults t =
  t.integrity_epoch <- t.integrity_epoch + 1;
  Hashtbl.reset t.media_bad

let media_fault_count t = Hashtbl.length t.media_bad
let integrity_epoch t = t.integrity_epoch

(* Hand-of-god corruption used by fault tests: flip low bits of one word
   in both the volatile view and the durable image, bypassing the cache
   and stats (this is the injector, not the program under test). *)
let corrupt_word t off =
  check_off t off "corrupt_word";
  t.integrity_epoch <- t.integrity_epoch + 1;
  journal_touch t (line_of_word off);
  let v = t.current.(off) lxor 0x55 in
  t.current.(off) <- v;
  t.durable.(off) <- v;
  mark_file_dirty t (line_of_word off)

let crash ?(mode = Randomize) ?seed ?(torn = false) t =
  (* Each crash draws its line-survival outcomes from a dedicated RNG
     whose seed is either supplied by the caller (replay) or drawn from
     the region's private stream -- and always recorded, so any failing
     randomized crash can be reproduced in isolation. *)
  let seed_used =
    match seed with Some s -> s | None -> Random.State.bits t.rng
  in
  let crash_rng = Random.State.make [| seed_used |] in
  t.last_crash_seed <- Some seed_used;
  t.crash_budget <- -1;
  t.integrity_epoch <- t.integrity_epoch + 1;
  Array.iteri
    (fun line st ->
      (* Clean lines are already durable with no writeback in flight, so
         their volatile and durable contents agree: losing power changes
         nothing.  Only dirty / in-flight lines need work (or undo
         journaling), keeping a crash O(lines + dirty words). *)
      match st with
      | Clean -> ()
      | Dirty | Flushing when torn ->
          (* Torn persistence: the line was partially written back when
             power failed, so an arbitrary per-word subset of its new
             contents reaches PM.  This deliberately breaks the
             whole-line atomicity the rest of the model provides --
             multi-word records must detect it (checksums) rather than
             assume it away. *)
          journal_touch t line;
          let base = line lsl Config.line_shift in
          let len = min Config.words_per_line (t.capacity - base) in
          for i = base to base + len - 1 do
            if
              t.current.(i) <> t.durable.(i)
              && Random.State.bool crash_rng
            then begin
              t.durable.(i) <- t.current.(i);
              mark_file_dirty t line
            end
          done;
          (* the volatile view reverts to what PM now holds *)
          Array.blit t.durable base t.current base len;
          t.state.(line) <- Clean
      | Dirty | Flushing ->
          let survives =
            match (st, mode) with
            | Clean, _ -> false (* already durable, nothing in flight *)
            | Flushing, Keep_inflight -> true
            | Flushing, Drop_inflight -> false
            | Flushing, Randomize -> Random.State.bool crash_rng
            | Dirty, Keep_inflight -> false
            | Dirty, Drop_inflight -> false
            | Dirty, Randomize ->
                (* a dirty, never-flushed line reaches PM only if the cache
                   happened to evict it; make that rarer than in-flight
                   lines *)
                Random.State.int crash_rng 4 = 0
          in
          journal_touch t line;
          if survives then writeback_line t line
          else begin
            (* the volatile view reverts to what PM holds *)
            let base = line lsl Config.line_shift in
            let len = min Config.words_per_line (t.capacity - base) in
            Array.blit t.durable base t.current base len
          end;
          t.state.(line) <- Clean)
    t.state;
  t.inflight <- 0;
  t.flushing_q <- [];
  reset_caches t;
  (* a simulated crash on a file-backed region still commits: the file
     must track the post-crash durable image, not the pre-crash one *)
  file_commit t;
  Trace.emit t.trace Trace.Crash

(* Snapshot / restore of the memory image, for the crash-point explorer:
   one execution to a crash point can be sampled under many survival
   seeds without re-running the workload.

   Two implementations, selected by {!set_snapshot_mode}:
   - [Full_copy] (the differential reference): three whole-image array
     copies, O(capacity) per snapshot and restore.
   - [Journal] (the default for sweeps): [snapshot] is O(1) -- it records
     a position in a copy-on-write undo journal; every subsequent
     first-touch mutation of a cacheline saves that line's pre-image, and
     [restore] replays the records newest-to-oldest, O(lines touched).
     Tokens stack (an outer "pristine" snapshot survives inner crash-point
     snapshots); truncating the journal below a token's position
     invalidates it.

   Cache contents are not captured -- restore invalidates the hierarchy,
   which only matters for latency stats, not durability, because the
   intended next step after a restore is another [crash].  Simulated-time
   and event counters (Stats) are captured and restored alongside the
   image so crash samples do not leak time into each other, and the
   region RNG and trace position rewind with them. *)
let snapshot t =
  match t.snap_mode with
  | Full_copy ->
      Full
        {
          s_current = Array.copy t.current;
          s_durable = Array.copy t.durable;
          s_state = Array.copy t.state;
          s_capacity = t.capacity;
          s_inflight = t.inflight;
          s_stats = Stats.copy t.stats;
          s_rng = Random.State.copy t.rng;
          s_trace_len = Trace.length t.trace;
        }
  | Journal ->
      let tok =
        {
          t_region = t.region_stamp;
          t_pos = t.j_len;
          t_valid = true;
          t_capacity = t.capacity;
          t_inflight = t.inflight;
          t_stats = Stats.copy t.stats;
          t_rng = Random.State.copy t.rng;
          t_trace_len = Trace.length t.trace;
        }
      in
      t.j_on <- true;
      t.j_epoch <- t.j_epoch + 1;
      t.j_tokens <- tok :: t.j_tokens;
      Journaled tok

(* Shrink the image arrays back to [cap] (undoing ensure_capacity growth
   that happened after the snapshot).  The journal already rewound every
   surviving line; words beyond [cap] simply cease to exist, exactly as
   under the full-copy path, and any later re-growth re-zeroes them. *)
let truncate_image t cap =
  if cap < t.capacity then begin
    t.current <- Array.sub t.current 0 cap;
    t.durable <- Array.sub t.durable 0 cap;
    let lines = (cap + Config.words_per_line - 1) / Config.words_per_line in
    t.state <- Array.sub t.state 0 lines;
    (* drop worklist entries for lines that no longer exist *)
    t.flushing_q <- List.filter (fun l -> l < lines) t.flushing_q;
    t.capacity <- cap
  end

let restore t s =
  (match s with
  | Full f ->
      t.current <- Array.copy f.s_current;
      t.durable <- Array.copy f.s_durable;
      t.state <- Array.copy f.s_state;
      t.capacity <- f.s_capacity;
      t.inflight <- f.s_inflight;
      (* rebuild the flushing worklist from the restored state array (the
         full-copy path is already O(capacity)) *)
      t.flushing_q <- [];
      Array.iteri
        (fun line st ->
          if st = Flushing then t.flushing_q <- line :: t.flushing_q)
        t.state;
      Stats.assign ~into:t.stats f.s_stats;
      t.rng <- Random.State.copy f.s_rng;
      Trace.truncate t.trace f.s_trace_len;
      (* a full restore orphans any journal state *)
      List.iter (fun tk -> tk.t_valid <- false) t.j_tokens;
      t.j_tokens <- [];
      t.j_len <- 0;
      t.j_epoch <- t.j_epoch + 1
  | Journaled tok ->
      if tok.t_region <> t.region_stamp then
        invalid_arg "Region.restore: journaled snapshot from another region";
      if not (tok.t_valid && tok.t_pos <= t.j_len) then
        invalid_arg
          "Region.restore: stale journaled snapshot (journal truncated below \
           it)";
      (* replay undo records newest-to-oldest down to the token *)
      for i = t.j_len - 1 downto tok.t_pos do
        let e = t.j_entries.(i) in
        let base = e.e_line lsl Config.line_shift in
        Array.blit e.e_cur 0 t.current base (Array.length e.e_cur);
        Array.blit e.e_dur 0 t.durable base (Array.length e.e_dur);
        t.state.(e.e_line) <- e.e_state;
        (* a replayed line returning to Flushing must be on the fence
           worklist; lines untouched since the snapshot never left it *)
        if e.e_state = Flushing then t.flushing_q <- e.e_line :: t.flushing_q;
        t.j_entries.(i) <- dummy_entry
      done;
      t.j_len <- tok.t_pos;
      List.iter
        (fun tk -> if tk.t_pos > tok.t_pos then tk.t_valid <- false)
        t.j_tokens;
      t.j_tokens <- List.filter (fun tk -> tk.t_valid) t.j_tokens;
      truncate_image t tok.t_capacity;
      t.inflight <- tok.t_inflight;
      Stats.assign ~into:t.stats tok.t_stats;
      t.rng <- Random.State.copy tok.t_rng;
      Trace.truncate t.trace tok.t_trace_len;
      (* mutations after this restore need fresh undo records *)
      t.j_epoch <- t.j_epoch + 1);
  t.crash_budget <- -1;
  t.integrity_epoch <- t.integrity_epoch + 1;
  (* armed media faults belong to the timeline being abandoned *)
  Hashtbl.reset t.media_bad;
  (* the rewound durable image diverges from the file again; every line is
     conservatively re-committed at the next fence (restore on a
     file-backed region is a test-only combination) *)
  if t.backing <> None then
    for line = 0 to Array.length t.state - 1 do
      Hashtbl.replace t.file_dirty line ()
    done;
  reset_caches t

let durable_load t off =
  check_off t off "durable_load";
  check_media t off "durable_load";
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Stats.advance t.stats (Latency.load_ns Latency.Pm);
  Word.raw t.durable.(off)

let peek_durable t off =
  check_off t off "peek_durable";
  Word.raw t.durable.(off)

let peek_current t off =
  check_off t off "peek_current";
  Word.raw t.current.(off)

let is_durable_line t line =
  let base = line lsl Config.line_shift in
  let len = min Config.words_per_line (t.capacity - base) in
  let same = ref true in
  for i = base to base + len - 1 do
    if t.current.(i) <> t.durable.(i) then same := false
  done;
  !same

(* Bit-level comparison of two regions' images (differential testing of
   the two snapshot implementations). *)
let images_equal a b =
  a.capacity = b.capacity && a.inflight = b.inflight
  && Array.sub a.current 0 a.capacity = Array.sub b.current 0 b.capacity
  && Array.sub a.durable 0 a.capacity = Array.sub b.durable 0 b.capacity
  && a.state = b.state

(* -- file backend -------------------------------------------------------- *)

let file_backed t = t.backing <> None

let backing_path t = Option.map Backing.path t.backing

(* Reopen an existing image file as a fresh region: the Backing layer
   resolves the sidecar journal (replaying a committed one, discarding a
   torn one) and checksum-verifies the content; the loaded words become
   both the volatile view and the durable image, all lines Clean --
   exactly the post-power-cycle machine state. *)
let open_file ?(trace = false) ?(seed = 42) ~path () =
  let b, words, status = Backing.open_ ~path in
  let cap = Array.length words in
  let lines = (cap + Config.words_per_line - 1) / Config.words_per_line in
  incr next_stamp;
  let t =
    {
      current = Array.copy words;
      durable = words;
      state = Array.make lines Clean;
      capacity = cap;
      cache = Cache.create ();
      l2 = Cache.create ~sets:Config.l2_sets ~ways:Config.l2_ways ();
      llc = Cache.create ~sets:Config.llc_sets ~ways:Config.llc_ways ();
      stats = Stats.create ();
      trace = Trace.create ~enabled:trace;
      rng = Random.State.make [| seed |];
      inflight = 0;
      flushing_q = [];
      fence_per_flush = false;
      events = 0;
      crash_budget = -1;
      last_crash_seed = None;
      event_hook = None;
      hook_suspended = false;
      region_stamp = !next_stamp;
      snap_mode = Full_copy;
      j_on = false;
      j_entries = [||];
      j_len = 0;
      j_mark = Array.make lines (-1);
      j_epoch = 0;
      j_tokens = [];
      media_bad = Hashtbl.create 4;
      integrity_epoch = 0;
      backing = Some b;
      file_dirty = Hashtbl.create 64;
    }
  in
  (t, status)

(* Flush any durable-image changes that have not reached the file (there
   are none after a clean fence) and release the descriptors.  The region
   stays usable as a memory-backed one afterwards. *)
let close_file t =
  match t.backing with
  | None -> ()
  | Some b ->
      (* a clean close is a final ordering point: drain in-flight flushes
         so the image holds everything the program made flush-durable,
         then commit whatever that writeback dirtied *)
      sfence t;
      file_commit t;
      Backing.close b;
      t.backing <- None

let set_file_sync_hook t hook =
  match t.backing with
  | None -> invalid_arg "Region.set_file_sync_hook: region is memory-backed"
  | Some b -> Backing.set_sync_hook b hook

let file_commits t =
  match t.backing with None -> 0 | Some b -> Backing.commits b
