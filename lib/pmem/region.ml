type line_state = Clean | Dirty | Flushing

type crash_mode = Drop_inflight | Keep_inflight | Randomize

exception Crash_point

type t = {
  mutable current : int array; (* the CPU's coherent view *)
  mutable durable : int array; (* what Optane DCPMM holds *)
  mutable state : line_state array; (* per cacheline *)
  mutable capacity : int; (* in words *)
  cache : Cache.t; (* L1D: drives miss ratios and eviction writebacks *)
  l2 : Cache.t; (* latency modelling only *)
  llc : Cache.t; (* latency modelling only *)
  stats : Stats.t;
  trace : Trace.t;
  rng : Random.State.t;
  mutable inflight : int;
  (* ablation knob: order every clwb individually, as if each flush were
     followed by its own sfence (the paper's Section 3 worst case) *)
  mutable fence_per_flush : bool;
  (* crash scheduler: every store/clwb/sfence is one PM event; when the
     budget counts down to zero the power fails (Crash_point is raised) *)
  mutable events : int;
  mutable crash_budget : int; (* -1 = no crash scheduled *)
  mutable last_crash_seed : int option;
}

type snapshot = {
  s_current : int array;
  s_durable : int array;
  s_state : line_state array;
  s_capacity : int;
  s_inflight : int;
}

let line_of_word off = off lsr Config.line_shift

let create ?(capacity_words = 1 lsl 20) ?(trace = false) ?(seed = 42) () =
  let cap = max capacity_words Config.words_per_line in
  let lines = (cap + Config.words_per_line - 1) / Config.words_per_line in
  {
    current = Array.make cap 0;
    durable = Array.make cap 0;
    state = Array.make lines Clean;
    capacity = cap;
    cache = Cache.create ();
    l2 = Cache.create ~sets:Config.l2_sets ~ways:Config.l2_ways ();
    llc = Cache.create ~sets:Config.llc_sets ~ways:Config.llc_ways ();
    stats = Stats.create ();
    trace = Trace.create ~enabled:trace;
    rng = Random.State.make [| seed |];
    inflight = 0;
    fence_per_flush = false;
    events = 0;
    crash_budget = -1;
    last_crash_seed = None;
  }

let stats t = t.stats
let trace t = t.trace
let cache t = t.cache
let capacity_words t = t.capacity
let inflight t = t.inflight
let pm_events t = t.events
let set_crash_after t n =
  if n <= 0 then invalid_arg "Region.set_crash_after: budget must be positive";
  t.crash_budget <- n

let clear_crash_point t = t.crash_budget <- -1
let last_crash_seed t = t.last_crash_seed

(* Count one PM event (store / clwb / sfence) against the crash budget.
   The event itself has completed by the time we raise: the power fails
   immediately after it. *)
let tick t =
  t.events <- t.events + 1;
  if t.crash_budget > 0 then begin
    t.crash_budget <- t.crash_budget - 1;
    if t.crash_budget = 0 then begin
      t.crash_budget <- -1;
      raise Crash_point
    end
  end

let ensure_capacity t n =
  if n > t.capacity then begin
    let cap = ref t.capacity in
    while n > !cap do
      cap := !cap * 2
    done;
    let cap = !cap in
    let grow arr =
      let bigger = Array.make cap 0 in
      Array.blit arr 0 bigger 0 t.capacity;
      bigger
    in
    t.current <- grow t.current;
    t.durable <- grow t.durable;
    let lines = (cap + Config.words_per_line - 1) / Config.words_per_line in
    let st = Array.make lines Clean in
    Array.blit t.state 0 st 0 (Array.length t.state);
    t.state <- st;
    t.capacity <- cap
  end

let check_off t off fn =
  if off < 0 || off >= t.capacity then
    invalid_arg (Printf.sprintf "Region.%s: offset %d out of bounds" fn off)

(* Copy the volatile contents of [line] into the durable image. *)
let writeback_line t line =
  let base = line lsl Config.line_shift in
  let len = min Config.words_per_line (t.capacity - base) in
  Array.blit t.current base t.durable base len

(* Cache-eviction callback: hardware replacement writes the victim's data
   back to PM, incidentally making it durable. *)
let evict_writeback t victim_line =
  if victim_line < Array.length t.state then begin
    writeback_line t victim_line;
    (match t.state.(victim_line) with
    | Flushing -> t.inflight <- t.inflight - 1
    | Dirty | Clean -> ());
    t.state.(victim_line) <- Clean
  end

let no_writeback _ = ()

(* Walk the cache hierarchy for latency purposes.  Durability only cares
   about L1D evictions (a dirty line leaving L1D is written back to PM,
   conservatively); L2 and LLC model where a miss is served from. *)
let touch_cache t off ~write =
  let line = line_of_word off in
  let hit = Cache.access t.cache ~writeback:(evict_writeback t) ~line ~write in
  if hit then begin
    t.stats.Stats.l1_hits <- t.stats.Stats.l1_hits + 1;
    Latency.L1
  end
  else begin
    t.stats.Stats.l1_misses <- t.stats.Stats.l1_misses + 1;
    if Cache.access t.l2 ~writeback:no_writeback ~line ~write:false then
      Latency.L2
    else if Cache.access t.llc ~writeback:no_writeback ~line ~write:false then
      Latency.Llc
    else Latency.Pm
  end

let load t off =
  check_off t off "load";
  let level = touch_cache t off ~write:false in
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Stats.advance t.stats (Latency.load_ns level);
  Word.raw t.current.(off)

let store t off w =
  check_off t off "store";
  ignore (touch_cache t off ~write:true : Latency.load_level);
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Stats.advance t.stats Latency.store_ns;
  t.current.(off) <- Word.bits w;
  let line = line_of_word off in
  (match t.state.(line) with
  | Clean -> t.state.(line) <- Dirty
  | Dirty -> ()
  | Flushing ->
      (* The launched writeback raced with this store; the line must be
         flushed again before it can be considered durable. *)
      t.inflight <- t.inflight - 1;
      t.state.(line) <- Dirty);
  Trace.emit t.trace (Trace.Write { off });
  tick t

let rec clwb t off =
  check_off t off "clwb";
  let line = line_of_word off in
  t.stats.Stats.clwbs <- t.stats.Stats.clwbs + 1;
  Trace.emit t.trace (Trace.Flush { line });
  (match t.state.(line) with
  | Dirty ->
      t.state.(line) <- Flushing;
      t.inflight <- t.inflight + 1
  | Clean | Flushing -> ());
  tick t;
  if t.fence_per_flush then sfence t

and sfence t =
  let drained = t.inflight in
  Array.iteri
    (fun line st ->
      match st with
      | Flushing ->
          writeback_line t line;
          t.state.(line) <- Clean;
          Cache.mark_clean t.cache ~line
      | Clean | Dirty -> ())
    t.state;
  t.inflight <- 0;
  Stats.record_fence t.stats ~drained;
  Stats.advance_in t.stats Stats.Flush (Latency.fence_stall_ns ~inflight:drained);
  Trace.emit t.trace Trace.Fence;
  tick t

let clwb_range t off words =
  if words > 0 then begin
    let first = line_of_word off in
    let last = line_of_word (off + words - 1) in
    for line = first to last do
      clwb t (line lsl Config.line_shift)
    done
  end

let set_fence_per_flush t enabled = t.fence_per_flush <- enabled

let crash ?(mode = Randomize) ?seed t =
  (* Each crash draws its line-survival outcomes from a dedicated RNG
     whose seed is either supplied by the caller (replay) or drawn from
     the region's private stream -- and always recorded, so any failing
     randomized crash can be reproduced in isolation. *)
  let seed_used =
    match seed with Some s -> s | None -> Random.State.bits t.rng
  in
  let crash_rng = Random.State.make [| seed_used |] in
  t.last_crash_seed <- Some seed_used;
  t.crash_budget <- -1;
  Array.iteri
    (fun line st ->
      let survives =
        match (st, mode) with
        | Clean, _ -> false (* already durable, nothing in flight *)
        | Flushing, Keep_inflight -> true
        | Flushing, Drop_inflight -> false
        | Flushing, Randomize -> Random.State.bool crash_rng
        | Dirty, Keep_inflight -> false
        | Dirty, Drop_inflight -> false
        | Dirty, Randomize ->
            (* a dirty, never-flushed line reaches PM only if the cache
               happened to evict it; make that rarer than in-flight lines *)
            Random.State.int crash_rng 4 = 0
      in
      if survives then writeback_line t line;
      t.state.(line) <- Clean)
    t.state;
  t.inflight <- 0;
  Array.blit t.durable 0 t.current 0 t.capacity;
  Cache.reset t.cache;
  Cache.reset t.l2;
  Cache.reset t.llc;
  Trace.emit t.trace Trace.Crash

(* Snapshot / restore of the full memory image, for the crash-point
   explorer: one execution to a crash point can be sampled under many
   survival seeds without re-running the workload.  Cache contents are
   not captured -- restore resets the hierarchy, which only matters for
   latency stats, not durability, because the intended next step after a
   restore is another [crash]. *)
let snapshot t =
  {
    s_current = Array.copy t.current;
    s_durable = Array.copy t.durable;
    s_state = Array.copy t.state;
    s_capacity = t.capacity;
    s_inflight = t.inflight;
  }

let restore t s =
  t.current <- Array.copy s.s_current;
  t.durable <- Array.copy s.s_durable;
  t.state <- Array.copy s.s_state;
  t.capacity <- s.s_capacity;
  t.inflight <- s.s_inflight;
  t.crash_budget <- -1;
  Cache.reset t.cache;
  Cache.reset t.l2;
  Cache.reset t.llc

let durable_load t off =
  check_off t off "durable_load";
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Stats.advance t.stats (Latency.load_ns Latency.Pm);
  Word.raw t.durable.(off)

let peek_durable t off =
  check_off t off "peek_durable";
  Word.raw t.durable.(off)

let peek_current t off =
  check_off t off "peek_current";
  Word.raw t.current.(off)

let is_durable_line t line =
  let base = line lsl Config.line_shift in
  let len = min Config.words_per_line (t.capacity - base) in
  let same = ref true in
  for i = base to base + len - 1 do
    if t.current.(i) <> t.durable.(i) then same := false
  done;
  !same
