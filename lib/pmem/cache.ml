(** Set-associative L1D cache simulator.

    Used for two purposes:
    - Figure 11: L1D miss ratios of PMDK vs MOD workloads.  The paper
      attributes MOD's higher miss ratios on map/set/vector to pointer-based
      tree layouts; modelling a 32KB 8-way L1D reproduces that effect.
    - Crash realism: evicting a dirty persistent-memory line writes it back
      to the durable image, exactly as hardware cache replacement can make
      un-flushed data durable at arbitrary times. *)

type t = {
  sets : int;
  ways : int;
  tags : int array; (* sets * ways; -1 = invalid. tag = line address *)
  dirty : bool array;
  last_use : int array; (* LRU timestamps *)
  mutable tick : int;
  (* Epoch-based O(1) invalidation: a set whose [set_epoch] lags [epoch]
     holds stale entries from before the last [invalidate] and is wiped
     lazily on first access.  Observably identical to [reset], but the
     crash-point explorer can drop a 33MB LLC between samples without
     touching its arrays. *)
  set_epoch : int array; (* one per set *)
  mutable epoch : int;
}

let create ?(sets = Config.l1d_sets) ?(ways = Config.l1d_ways) () =
  {
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    dirty = Array.make (sets * ways) false;
    last_use = Array.make (sets * ways) 0;
    tick = 0;
    set_epoch = Array.make sets 0;
    epoch = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.last_use 0 (Array.length t.last_use) 0;
  t.tick <- 0;
  Array.fill t.set_epoch 0 t.sets t.epoch

let invalidate t =
  t.epoch <- t.epoch + 1;
  t.tick <- 0

let set_of t line = line mod t.sets

(* Wipe [set]'s ways if it predates the last [invalidate]. *)
let refresh_set t set =
  if t.set_epoch.(set) <> t.epoch then begin
    t.set_epoch.(set) <- t.epoch;
    let base = set * t.ways in
    Array.fill t.tags base t.ways (-1);
    Array.fill t.dirty base t.ways false;
    Array.fill t.last_use base t.ways 0
  end

(* Returns [true] on hit.  On a miss the LRU way of the set is evicted; if
   it held a dirty line, [writeback] is called with that line address before
   the new line is installed. *)
let access t ~writeback ~line ~write =
  t.tick <- t.tick + 1;
  let set = set_of t line in
  refresh_set t set;
  let base = set * t.ways in
  let hit_way = ref (-1) in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    let i = base + !hit_way in
    t.last_use.(i) <- t.tick;
    if write then t.dirty.(i) <- true;
    true
  end
  else begin
    (* choose victim: first invalid way, else least-recently-used *)
    let victim = ref 0 in
    let found_invalid = ref false in
    for w = 0 to t.ways - 1 do
      if (not !found_invalid) && t.tags.(base + w) = -1 then begin
        victim := w;
        found_invalid := true
      end
    done;
    if not !found_invalid then begin
      let best = ref max_int in
      for w = 0 to t.ways - 1 do
        if t.last_use.(base + w) < !best then begin
          best := t.last_use.(base + w);
          victim := w
        end
      done
    end;
    let i = base + !victim in
    if t.tags.(i) >= 0 && t.dirty.(i) then writeback t.tags.(i);
    t.tags.(i) <- line;
    t.dirty.(i) <- write;
    t.last_use.(i) <- t.tick;
    false
  end

(* Mark a line clean in the cache (its data has been written back by a
   clwb+sfence), without evicting it: clwb writes back but need not evict. *)
let mark_clean t ~line =
  let set = set_of t line in
  refresh_set t set;
  let base = set * t.ways in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line then t.dirty.(base + w) <- false
  done

let resident t ~line =
  let set = set_of t line in
  refresh_set t set;
  let base = set * t.ways in
  let found = ref false in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line then found := true
  done;
  !found

let dirty_lines t =
  let acc = ref [] in
  Array.iteri
    (fun i tag ->
      if tag >= 0 && t.dirty.(i) && t.set_epoch.(i / t.ways) = t.epoch then
        acc := tag :: !acc)
    t.tags;
  !acc
