(* Sharded multi-domain serving layer.

   N shards, each owning its own [Pmalloc.Heap] (optionally file-backed
   at [<image>.N]), its own instance-scoped telemetry collector, and --
   in [Domains] mode -- its own OCaml 5 domain.  Keys are
   hash-partitioned by [Router.shard_of_key]; requests flow through
   per-shard bounded FIFO queues; idle workers steal from loaded
   siblings to absorb zipfian skew.

   Two invariants the whole layer is built on:

   - {e Shard independence.}  No state is shared between shards: heap,
     allocator, collector, queue and lock are all per-shard, so a crash
     of one shard cannot perturb another, and each recovers alone from
     its own image ([crash_sweep] proves both).

   - {e Per-shard FIFO.}  A request is popped {e under the executing
     shard's heap lock} and completed before the lock is released, so
     two sets to one key apply in arrival order no matter which domain
     (owner or thief) executes them.  That is what makes the sharded
     map's final state equal the single-heap map's for any request
     sequence (the differential test in test_shard.ml).

   Work stealing and the clocks: a stolen request still executes on the
   {e victim's} heap, and simulated PM time is charged to the heap that
   does the work, so stealing improves wall-clock utilisation (domains
   never idle beside a hot sibling) but not the simulated makespan --
   the per-shard sim clock is the serialization point the data lives
   behind.  Throughput gates therefore compare simulated makespans
   (max over shards), which are deterministic and machine-independent;
   wall-clock req/s is reported for color only. *)

module Router = Router
module Queue = Queue

module Kv = Mod_core.Dmap.Make (Pfds.Kv.String_blob) (Pfds.Kv.String_blob)

let kv_slot = 0

type request = Set of string * string | Get of string

let key_of = function Set (k, _) | Get k -> k

type mode = Inline | Domains

let mode_name = function Inline -> "inline" | Domains -> "domains"

type shard = {
  id : int;
  heap : Pmalloc.Heap.t;
  collector : Telemetry.t;
  mutable kv : Kv.t;
  queue : request Queue.t;
  hlock : Mutex.t;
      (* serializes all access to this shard's heap: taken by the owner
         and by thieves for the whole pop+execute of each request *)
  mutable routed : int;  (* requests the router sent here *)
  mutable executed : int;  (* requests retired on this heap (any domain) *)
  mutable stolen : int;  (* subset of [executed] retired by a thief *)
}

type t = {
  mode : mode;
  nshards : int;
  shards : shard array;
  persist : Pmalloc.Heap.policy;
}

let shard_path base i = Printf.sprintf "%s.%d" base i

let make_shard ~capacity_words ~queue_capacity ~seed ~persist ?file i =
  let file = Option.map (fun b -> shard_path b i) file in
  let heap = Pmalloc.Heap.create ~capacity_words ~seed:(seed + i) ?file () in
  let collector = Pmalloc.Heap.attach_telemetry heap in
  let kv = Kv.open_or_create ~persist heap ~slot:kv_slot in
  {
    id = i;
    heap;
    collector;
    kv;
    queue = Queue.create ~capacity:queue_capacity ();
    hlock = Mutex.create ();
    routed = 0;
    executed = 0;
    stolen = 0;
  }

let create ?(mode = Inline) ?(capacity_words = 1 lsl 21)
    ?(queue_capacity = 1024) ?(seed = 42) ?(persist = Pmalloc.Heap.Full) ?file
    ~nshards () =
  if nshards < 1 then invalid_arg "Shard.create: nshards must be >= 1";
  {
    mode;
    nshards;
    shards =
      Array.init nshards
        (make_shard ~capacity_words ~queue_capacity ~seed ~persist ?file);
    persist;
  }

let nshards t = t.nshards
let mode t = t.mode
let heap t i = t.shards.(i).heap
let collector t i = t.shards.(i).collector
let backing_path t i = Pmem.Region.backing_path (Pmalloc.Heap.region t.shards.(i).heap)
let close t = Array.iter (fun sh -> Pmalloc.Heap.close sh.heap) t.shards

(* Charge the per-request application logic around the datastructure op,
   as the figure-9 backends do (Backend.op_pause): the sim clock should
   reflect whole requests, not just PM work. *)
let app_accesses_per_request = 50

let request_pause sh =
  let s = Pmalloc.Heap.stats sh.heap in
  Pmem.Stats.advance s Pmem.Config.op_overhead_ns;
  s.Pmem.Stats.l1_hits <- s.Pmem.Stats.l1_hits + app_accesses_per_request

let exec sh req =
  request_pause sh;
  (match req with
  | Set (k, v) -> Kv.insert sh.kv k v
  | Get k -> ignore (Kv.find sh.kv k : string option));
  sh.executed <- sh.executed + 1

let route t key = t.shards.(Router.shard_of_key ~nshards:t.nshards key)

(* Inline-mode entry point (and the warmup/crash-sweep path): execute on
   the owning shard right here.  No locking -- Inline mode is
   single-domain by definition, and a [Crash_point] escaping mid-request
   must not leave a mutex held. *)
let apply t req =
  let sh = route t (key_of req) in
  sh.routed <- sh.routed + 1;
  exec sh req

let submit t req =
  match t.mode with
  | Inline -> apply t req
  | Domains ->
      let sh = route t (key_of req) in
      sh.routed <- sh.routed + 1;
      Queue.push sh.queue req

let close_queues t = Array.iter (fun sh -> Queue.close sh.queue) t.shards

(* -- workers (Domains mode) --------------------------------------------- *)

let with_hlock sh f =
  Mutex.lock sh.hlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.hlock) f

(* Serve one request of [sh]'s queue, popping under the heap lock so
   per-shard execution is strictly FIFO (see the header comment). *)
let serve_one ~thief sh =
  with_hlock sh (fun () ->
      match Queue.try_pop sh.queue with
      | None -> false
      | Some req ->
          if thief then sh.stolen <- sh.stolen + 1;
          exec sh req;
          true)

let try_steal_one sh =
  if Mutex.try_lock sh.hlock then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sh.hlock)
      (fun () ->
        match Queue.try_pop sh.queue with
        | None -> false
        | Some req ->
            sh.stolen <- sh.stolen + 1;
            exec sh req;
            true)
  else false

let worker t i () =
  let me = t.shards.(i) in
  let n = t.nshards in
  (* steal from the most loaded sibling first: under zipfian skew the
     hot shard's queue is where idle cycles are worth spending *)
  let steal_round () =
    let best = ref (-1) and best_len = ref 0 in
    for d = 1 to n - 1 do
      let j = (i + d) mod n in
      let len = Queue.length t.shards.(j).queue in
      if len > !best_len then begin
        best := j;
        best_len := len
      end
    done;
    !best >= 0 && try_steal_one t.shards.(!best)
  in
  let all_drained () =
    let ok = ref true in
    for j = 0 to n - 1 do
      ok := !ok && Queue.drained t.shards.(j).queue
    done;
    !ok
  in
  let rec loop idle =
    if serve_one ~thief:false me then loop 0
    else if n > 1 && steal_round () then loop 0
    else if all_drained () then ()
    else begin
      (* no timed condition wait in OCaml's Mutex/Condition: poll with
         escalating backoff (relax spins, then a short sleep) *)
      if idle < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002;
      loop (idle + 1)
    end
  in
  loop 0

(* -- measured load ------------------------------------------------------- *)

type shard_metrics = {
  m_id : int;
  m_routed : int;
  m_executed : int;
  m_stolen : int;
  m_sim_ns : float;
  m_fences : int;
  m_p50_ns : float;
  m_p99_ns : float;
  m_report : Telemetry.report;
}

type load_result = {
  lr_requests : int;
  lr_nshards : int;
  lr_mode : mode;
  lr_theta : float;
  lr_wall_s : float;
  lr_wall_req_s : float;
  lr_sim_makespan_ns : float;  (* max over shards: the parallel sim time *)
  lr_sim_total_ns : float;  (* sum over shards: the serial-equivalent *)
  lr_sim_req_s : float;  (* requests / makespan, in simulated seconds *)
  lr_shards : shard_metrics list;
}

let reset_measurement t =
  Array.iter
    (fun sh ->
      Pmem.Stats.reset (Pmalloc.Heap.stats sh.heap);
      Telemetry.reset sh.collector;
      sh.routed <- 0;
      sh.executed <- 0;
      sh.stolen <- 0)
    t.shards

(* Overall span-latency percentiles for one shard: merge the
   per-(structure x op) histograms the collector kept. *)
let latency_histogram report =
  let acc = Telemetry.Histogram.create () in
  List.iter
    (fun r -> Telemetry.Histogram.merge ~into:acc r.Telemetry.r_lat)
    report.Telemetry.rows;
  acc

let shard_metrics sh =
  let report = Telemetry.report sh.collector in
  let lat = latency_histogram report in
  let s = Pmalloc.Heap.stats sh.heap in
  {
    m_id = sh.id;
    m_routed = sh.routed;
    m_executed = sh.executed;
    m_stolen = sh.stolen;
    m_sim_ns = s.Pmem.Stats.now_ns;
    m_fences = s.Pmem.Stats.fences;
    m_p50_ns = Telemetry.Histogram.percentile lat 0.5;
    m_p99_ns = Telemetry.Histogram.percentile lat 0.99;
    m_report = report;
  }

(* Deterministic request stream: zipfian key popularity over a fixed
   keyspace, [get_pct]% reads, values drawn from a small precomputed
   pool (the memcached shape: 16-byte keys, 512-byte values). *)
let value_pool ~seed n =
  let rng = Random.State.make [| seed; 0xbeef |] in
  Array.init n (fun _ ->
      String.init 512 (fun _ -> Char.chr (33 + Random.State.int rng 94)))

type stream = { keys : string array; z : Router.zipf; mix : Random.State.t;
                pool : string array; get_pct : int }

let stream ?(theta = 0.99) ?(get_pct = 5) ~seed ~keyspace () =
  {
    keys = Array.init keyspace Router.key_of_index;
    z = Router.zipf ~theta ~seed ~n:keyspace ();
    mix = Random.State.make [| seed; 0xfeed |];
    pool = value_pool ~seed 64;
    get_pct;
  }

let next_request st =
  let k = st.keys.(Router.next st.z) in
  if Random.State.int st.mix 100 < st.get_pct then Get k
  else Set (k, st.pool.(Random.State.int st.mix (Array.length st.pool)))

let run_load ?(theta = 0.99) ?(get_pct = 5) ?(seed = 1) ?(warmup = 0)
    ?(keyspace = 10_000) t ~requests () =
  let st = stream ~theta ~get_pct ~seed ~keyspace () in
  for _ = 1 to warmup do
    apply t (next_request st)
  done;
  reset_measurement t;
  let t0 = Unix.gettimeofday () in
  (match t.mode with
  | Inline ->
      for _ = 1 to requests do
        submit t (next_request st)
      done
  | Domains ->
      let domains =
        Array.init t.nshards (fun i -> Domain.spawn (worker t i))
      in
      for _ = 1 to requests do
        submit t (next_request st)
      done;
      close_queues t;
      Array.iter Domain.join domains);
  let wall = Unix.gettimeofday () -. t0 in
  let per_shard = Array.to_list (Array.map shard_metrics t.shards) in
  let makespan =
    List.fold_left (fun acc m -> Float.max acc m.m_sim_ns) 0.0 per_shard
  in
  let total = List.fold_left (fun acc m -> acc +. m.m_sim_ns) 0.0 per_shard in
  {
    lr_requests = requests;
    lr_nshards = t.nshards;
    lr_mode = t.mode;
    lr_theta = theta;
    lr_wall_s = wall;
    lr_wall_req_s = (if wall > 0.0 then float_of_int requests /. wall else 0.0);
    lr_sim_makespan_ns = makespan;
    lr_sim_total_ns = total;
    lr_sim_req_s =
      (if makespan > 0.0 then float_of_int requests /. (makespan *. 1e-9)
       else 0.0);
    lr_shards = per_shard;
  }

(* -- canonical dumps ----------------------------------------------------- *)

let dump_kv kv =
  Kv.fold kv (fun k v acc -> (k, v) :: acc) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ";"

let dump t i = dump_kv t.shards.(i).kv
let dump_all t =
  Array.to_list t.shards
  |> List.concat_map (fun sh -> Kv.fold sh.kv (fun k v acc -> (k, v) :: acc) [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ";"

(* -- single-shard crash sweep ------------------------------------------- *)

(* Kill one shard at the j-th PM event of its own region and prove:
   (1) the dead shard recovers alone -- via [Recovery.recover] on the
   crashed region, or [Recovery.open_file] on its image when
   file-backed -- into a state inside the durable-linearizability
   window of {e its own} request subsequence; (2) the N-1 sibling
   shards are bit-identically untouched.  The crash budget is armed on
   the target's region only, so [Crash_point] can only fire while a
   request routed to the target executes -- sibling heaps never even
   observe the sweep. *)

type sweep_result = {
  sw_nshards : int;
  sw_points : int;
  sw_consistent : int;
  sw_violations : string list;
  sw_sibling_mismatches : int;
  sw_exhausted : bool;
      (* the budget outlived the script: every crash point was covered *)
}

module Smap = Map.Make (String)

let dump_model m =
  Smap.bindings m |> List.map (fun (k, v) -> k ^ "=" ^ v) |> String.concat ";"

let apply_model m = function
  | Set (k, v) -> Smap.add k v m
  | Get _ -> m

(* One sweep iteration on fresh shards: run [script] with shard [target]
   armed to crash after [budget] PM events.  Returns [None] when the
   budget never fired (script exhausted). *)
let sweep_iteration t ~script ~target ~budget ~recover_target =
  let tgt = t.shards.(target) in
  let models = Array.make t.nshards Smap.empty in
  (* newest-first committed states of the target shard, for the oracle *)
  let history = ref [ dump_model Smap.empty ] in
  Pmem.Region.set_crash_after (Pmalloc.Heap.region tgt.heap) budget;
  let crashed = ref None in
  (try
     List.iter
       (fun req ->
         let sh = route t (key_of req) in
         let next = apply_model models.(sh.id) req in
         (try apply t req
          with Pmem.Region.Crash_point ->
            crashed := Some (dump_model next);
            raise Exit);
         models.(sh.id) <- next;
         if sh.id = target then history := dump_model next :: !history)
       script
   with Exit -> ());
  Pmem.Region.clear_crash_point (Pmalloc.Heap.region tgt.heap);
  match !crashed with
  | None -> None
  | Some pending ->
      (* sibling snapshots before the target recovers *)
      let sibling_before =
        Array.init t.nshards (fun i -> if i = target then "" else dump t i)
      in
      let recovered =
        try Ok (recover_target tgt) with e -> Error e
      in
      let verdict =
        Crashtest.Oracle.check ~history:!history ~pending:(Some pending)
          ~recovered
      in
      (* bit-identical sibling dumps, and still equal to their models *)
      let sibling_ok = ref true in
      for i = 0 to t.nshards - 1 do
        if i <> target then begin
          let after = dump t i in
          if after <> sibling_before.(i) || after <> dump_model models.(i)
          then sibling_ok := false
        end
      done;
      Some (verdict, !sibling_ok)

let crash_sweep ?(nshards = 4) ?(requests = 160) ?(keyspace = 256)
    ?(theta = 0.99) ?(stride = 97) ?(max_points = 200) ?(seed = 7)
    ?(capacity_words = 1 lsl 18) ?file () =
  (* the deterministic script every iteration replays *)
  let script =
    let st = stream ~theta ~get_pct:5 ~seed ~keyspace () in
    List.init requests (fun _ -> next_request st)
  in
  let consistent = ref 0 in
  let violations = ref [] in
  let sibling_mismatches = ref 0 in
  let points = ref 0 in
  let exhausted = ref false in
  (* In-memory sweeps reuse one shard set via pristine snapshots (heap
     construction dominates otherwise); file-backed sweeps recreate the
     images each iteration, since a crashed file-backed region is
     abandoned exactly as a killed process would abandon it. *)
  let mem_t, pristine =
    match file with
    | Some _ -> (None, [||])
    | None ->
        let t = create ~mode:Inline ~capacity_words ~seed ~nshards () in
        ( Some t,
          Array.map (fun sh -> Pmalloc.Heap.pristine_snapshot sh.heap) t.shards
        )
  in
  let budget = ref 1 in
  (try
     while !points < max_points do
       let target = !points mod nshards in
       let outcome =
         match (file, mem_t) with
         | None, None -> assert false
         | None, Some t ->
             Array.iteri
               (fun i sh ->
                 Pmalloc.Heap.reset_fresh sh.heap ~pristine:pristine.(i);
                 sh.kv <- Kv.open_or_create sh.heap ~slot:kv_slot;
                 sh.routed <- 0;
                 sh.executed <- 0;
                 sh.stolen <- 0)
               t.shards;
             sweep_iteration t ~script ~target ~budget:!budget
               ~recover_target:(fun tgt ->
                 Pmalloc.Heap.crash tgt.heap;
                 match Mod_core.Recovery.recover tgt.heap with
                 | Ok _report ->
                     dump_kv (Kv.open_or_create tgt.heap ~slot:kv_slot)
                 | Error e -> raise (Mod_core.Error.Error e))
         | Some base, _ ->
             let t = create ~mode:Inline ~capacity_words ~seed ~file:base ~nshards () in
             let r =
               sweep_iteration t ~script ~target ~budget:!budget
                 ~recover_target:(fun tgt ->
                   (* abandon the crashed region as kill -9 would: its
                      image holds exactly the fenced batches; reopen it
                      through the external recovery cycle *)
                   let path =
                     Option.get
                       (Pmem.Region.backing_path (Pmalloc.Heap.region tgt.heap))
                   in
                   match Mod_core.Recovery.open_file ~path () with
                   | Ok report ->
                       let dump =
                         dump_kv
                           (Kv.open_or_create report.Mod_core.Recovery.heap
                              ~slot:kv_slot)
                       in
                       Pmalloc.Heap.close report.Mod_core.Recovery.heap;
                       dump
                   | Error e -> raise (Mod_core.Error.Error e))
             in
             (* clean up sibling images; the crashed one stays abandoned *)
             Array.iteri
               (fun i sh -> if i <> target then Pmalloc.Heap.close sh.heap)
               t.shards;
             r
       in
       match outcome with
       | None ->
           exhausted := true;
           raise Exit
       | Some (verdict, sibling_ok) ->
           incr points;
           (match verdict with
           | Crashtest.Oracle.Consistent -> incr consistent
           | Crashtest.Oracle.Violation msg ->
               violations :=
                 Printf.sprintf "shard %d, budget %d: %s" target !budget msg
                 :: !violations);
           if not sibling_ok then incr sibling_mismatches;
           budget := !budget + stride
     done
   with Exit -> ());
  (match mem_t with Some t -> close t | None -> ());
  {
    sw_nshards = nshards;
    sw_points = !points;
    sw_consistent = !consistent;
    sw_violations = List.rev !violations;
    sw_sibling_mismatches = !sibling_mismatches;
    sw_exhausted = !exhausted;
  }

let sweep_ok r = r.sw_violations = [] && r.sw_sibling_mismatches = 0
