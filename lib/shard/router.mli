(** Key routing and load synthesis for the sharded serving layer. *)

val hash : string -> int
(** FNV-1a over the key bytes, masked positive.  Deterministic across
    processes and runs -- the property routing is built on. *)

val shard_of_key : nshards:int -> string -> int
(** The shard owning [key]: [hash key mod nshards].  A pure function of
    (key, nshards); raises [Invalid_argument] when [nshards < 1]. *)

val key_of_index : int -> string
(** Fixed-width 16-byte key for keyspace index [i] (memcached shape). *)

(** {1 Zipfian key popularity} *)

type zipf
(** YCSB's bounded zipfian generator: ranks follow [P(i) ~ 1/i^theta]
    over [[0, n)].  Fully determined by (seed, n, theta). *)

val zipf : ?theta:float -> seed:int -> n:int -> unit -> zipf
(** [theta] defaults to 0.99 (the YCSB constant); [theta = 0] is
    uniform.  Raises [Invalid_argument] outside [[0, 1)] or [n < 1]. *)

val next : zipf -> int
(** Draw the next key index. *)
