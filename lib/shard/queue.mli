(** Bounded per-shard request queue: one producer, FIFO consumers.

    Pops are strictly FIFO from a single end -- per-shard request order
    is a serving-layer invariant (sets to one key apply in arrival
    order), so thieves take the {e oldest} pending request rather than
    the classic deque's newest.  [push] blocks for backpressure;
    consumers poll [try_pop] and back off (no blocking pop: a blocked
    worker could not steal). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 1024.  Raises [Invalid_argument] when < 1. *)

val push : 'a t -> 'a -> unit
(** Enqueue, blocking while full.  Raises [Invalid_argument] if the
    queue is (or becomes, while blocked) closed. *)

val try_pop : 'a t -> 'a option
(** Dequeue the oldest pending request; [None] when empty. *)

val close : 'a t -> unit
(** No further pushes; pending requests stay poppable. *)

val drained : 'a t -> bool
(** Closed with nothing pending: the consumer exit condition. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_closed : 'a t -> bool
