(* Key routing and load synthesis for the sharded serving layer.

   Routing must be a pure function of (key, nshards): every process that
   ever serves an image set must agree on which shard owns a key, across
   restarts and across the crash of any sibling.  FNV-1a over the key
   bytes gives a cheap, well-mixed 63-bit hash with no per-process
   state (OCaml's [Hashtbl.hash] is seedable and truncates long
   strings, so it is exactly what this must not be). *)

(* 64-bit FNV constants; the offset is written masked to OCaml's 63-bit
   int (top bit dropped), which changes the hash values but none of the
   mixing properties. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let hash key =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime)
    key;
  !h land max_int

let shard_of_key ~nshards key =
  if nshards <= 0 then invalid_arg "Router.shard_of_key: nshards must be >= 1";
  hash key mod nshards

(* The driver's keyspace: fixed-width decimal keys, same shape as the
   memcached workload's (16 bytes incl. the tag). *)
let key_of_index i = Printf.sprintf "k%015d" i

(* -- zipfian key popularity --------------------------------------------- *)

(* YCSB's bounded zipfian generator (Gray et al.'s rejection-free
   formula): item ranks follow P(i) ~ 1/i^theta over [0, n).  theta =
   0.99 is the YCSB default and the ISSUE's skew target; theta = 0
   degenerates to uniform.  All state is a seeded [Random.State], so a
   load is a pure function of (seed, n, theta). *)
type zipf = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  rng : Random.State.t;
}

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !s

let zipf ?(theta = 0.99) ~seed ~n () =
  if n <= 0 then invalid_arg "Router.zipf: n must be >= 1";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Router.zipf: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta 2 theta /. zetan))
  in
  { n; theta; alpha; zetan; eta; rng = Random.State.make [| seed; n |] }

let next z =
  if z.theta = 0.0 then Random.State.int z.rng z.n
  else
    let u = Random.State.float z.rng 1.0 in
    let uz = u *. z.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
    else
      let i =
        int_of_float
          (float_of_int z.n *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)
      in
      min (max i 0) (z.n - 1)
