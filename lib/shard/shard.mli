(** Sharded multi-domain serving layer.

    N shards, each owning its own {!Pmalloc.Heap} (optionally
    file-backed at [<image>.N]), its own instance-scoped telemetry
    collector, and -- in {!Domains} mode -- its own OCaml 5 domain.
    Keys are hash-partitioned ({!Router.shard_of_key}); requests flow
    through per-shard bounded FIFO queues ({!Queue}); idle workers
    steal from loaded siblings to absorb zipfian skew.

    Invariants: {e shard independence} (no shared state between shards,
    so one shard's crash cannot perturb another -- {!crash_sweep}
    proves it) and {e per-shard FIFO} (a request is popped and executed
    under the owning shard's heap lock, so sets to one key apply in
    arrival order no matter which domain runs them).

    Clocks: a stolen request executes on the victim's heap and its
    simulated PM time is charged there, so stealing improves wall-clock
    utilisation but not the simulated makespan.  Throughput gates
    compare simulated makespans (deterministic, machine-independent);
    wall req/s is reported for color. *)

module Router : module type of Router
module Queue : module type of Queue

(** The served structure: one durable string->string map per shard
    (memcached shape: 16-byte keys, 512-byte values). *)
module Kv :
    module type of Mod_core.Dmap.Make (Pfds.Kv.String_blob) (Pfds.Kv.String_blob)

val kv_slot : int
(** Root slot each shard's map lives in (0). *)

type request = Set of string * string | Get of string

val key_of : request -> string

type mode =
  | Inline  (** one domain, requests execute at {!submit} -- the
                deterministic mode crash sweeps and tests run in *)
  | Domains  (** one worker domain per shard, with work stealing *)

val mode_name : mode -> string

type t

val create :
  ?mode:mode ->
  ?capacity_words:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  ?persist:Pmalloc.Heap.policy ->
  ?file:string ->
  nshards:int ->
  unit ->
  t
(** [create ~nshards ()] builds the shard set.  [~file:base] file-backs
    shard [i] at [base.i].  [persist] is the commit policy every
    shard's map is promoted to (default [Full]). *)

val nshards : t -> int
val mode : t -> mode
val heap : t -> int -> Pmalloc.Heap.t
val collector : t -> int -> Telemetry.t
val backing_path : t -> int -> string option

val close : t -> unit
(** Commit and release every shard's backing file (no-op in memory). *)

val submit : t -> request -> unit
(** Route by key and execute (Inline) or enqueue (Domains). *)

val apply : t -> request -> unit
(** Route and execute inline on the owning shard, regardless of mode
    (the warmup and crash-sweep path). *)

val dump : t -> int -> string
(** Canonical sorted [k=v;...] rendering of shard [i]'s map. *)

val dump_all : t -> string
(** All shards' pairs merged into one canonical rendering -- equals a
    single-heap map's dump for the same request sequence. *)

(** {1 Measured load} *)

type shard_metrics = {
  m_id : int;
  m_routed : int;  (** requests the router sent here *)
  m_executed : int;  (** requests retired on this heap (any domain) *)
  m_stolen : int;  (** subset of [m_executed] retired by a thief *)
  m_sim_ns : float;  (** this heap's simulated clock *)
  m_fences : int;
  m_p50_ns : float;  (** span latency percentiles, merged over all ops *)
  m_p99_ns : float;
  m_report : Telemetry.report;  (** feed to the existing exporters *)
}

type load_result = {
  lr_requests : int;
  lr_nshards : int;
  lr_mode : mode;
  lr_theta : float;
  lr_wall_s : float;
  lr_wall_req_s : float;
  lr_sim_makespan_ns : float;  (** max over shards: parallel sim time *)
  lr_sim_total_ns : float;  (** sum over shards: serial-equivalent *)
  lr_sim_req_s : float;  (** requests per simulated makespan-second *)
  lr_shards : shard_metrics list;
}

val run_load :
  ?theta:float ->
  ?get_pct:int ->
  ?seed:int ->
  ?warmup:int ->
  ?keyspace:int ->
  t ->
  requests:int ->
  unit ->
  load_result
(** Drive a deterministic zipfian ([theta], default 0.99) memcached-style
    loop of [requests] requests ([get_pct]% gets, default 5).  Resets
    each shard's stats and collector after [warmup] inline requests, so
    the result covers exactly the measured loop. *)

(** {1 Single-shard crash sweep} *)

type sweep_result = {
  sw_nshards : int;
  sw_points : int;  (** crash points examined *)
  sw_consistent : int;
  sw_violations : string list;
  sw_sibling_mismatches : int;
      (** iterations where a sibling's dump changed at all *)
  sw_exhausted : bool;
      (** the sweep outlived the script: every crash point covered *)
}

val crash_sweep :
  ?nshards:int ->
  ?requests:int ->
  ?keyspace:int ->
  ?theta:float ->
  ?stride:int ->
  ?max_points:int ->
  ?seed:int ->
  ?capacity_words:int ->
  ?file:string ->
  unit ->
  sweep_result
(** Kill one shard (rotating targets) after [1 + k*stride] PM events of
    its own region and check, per iteration: the dead shard recovers
    alone into the durable-linearizability window of its own request
    subsequence ({!Crashtest.Oracle.check}), and every sibling's dump
    is bit-identically untouched.  In memory the crash is injected with
    [Heap.crash] and recovered with [Recovery.recover]; with [~file] the
    crashed region is abandoned as [kill -9] would leave it and the
    shard's image is reopened through {!Mod_core.Recovery.open_file}. *)

val sweep_ok : sweep_result -> bool
(** No violations and no sibling perturbation. *)
