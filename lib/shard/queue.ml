(* Bounded per-shard request queue.

   One producer (the front-end router) pushes, the owning worker and any
   thieves pop.  Pops are strictly FIFO: per-shard request order is an
   invariant the serving layer relies on (two sets to one key must apply
   in arrival order no matter which domain executes them), so there is
   no LIFO thief end -- a thief takes the oldest pending request, under
   the victim's heap lock (see Shard).  [push] applies backpressure by
   blocking while the ring is full; consumers never block (OCaml's
   [Condition] has no timed wait, and a blocked worker could not steal),
   they poll [try_pop] and back off. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable head : int;  (* absolute index of the next pop *)
  mutable tail : int;  (* absolute index of the next push *)
  mutable closed : bool;
  lock : Mutex.t;
  not_full : Condition.t;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Queue.create: capacity must be >= 1";
  {
    buf = Array.make capacity None;
    cap = capacity;
    head = 0;
    tail = 0;
    closed = false;
    lock = Mutex.create ();
    not_full = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> t.tail - t.head)
let capacity t = t.cap
let is_closed t = with_lock t (fun () -> t.closed)

let push t x =
  with_lock t (fun () ->
      while t.tail - t.head >= t.cap && not t.closed do
        Condition.wait t.not_full t.lock
      done;
      if t.closed then invalid_arg "Queue.push: closed";
      t.buf.(t.tail mod t.cap) <- Some x;
      t.tail <- t.tail + 1)

let try_pop t =
  with_lock t (fun () ->
      if t.head >= t.tail then None
      else begin
        let i = t.head mod t.cap in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.head <- t.head + 1;
        Condition.signal t.not_full;
        x
      end)

(* drained = nothing pending and nothing will ever arrive: the worker
   exit condition (checked across every queue it could steal from). *)
let drained t = with_lock t (fun () -> t.closed && t.head >= t.tail)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_full)
