(** Key/value codecs: how application values map onto tagged PM words.

    Small scalars (the 8-byte keys/elements of the microbenchmarks) are
    stored inline; variable-length payloads (memcached's 16 B keys and
    512 B values) are stored as [Raw] heap blobs referenced by pointer
    words.  A codec's [write] returns an {e owned} word: if it allocated a
    blob, the blob's reference count is 1 and ownership passes to whoever
    stores the word into a node.  Blobs are flushed (unordered) as they are
    written, like every other out-of-place write in a MOD update. *)

module type CODEC = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val write : Pmalloc.Heap.t -> t -> Pmem.Word.t
  val read : Pmalloc.Heap.t -> Pmem.Word.t -> t

  val log_word : t -> Pmem.Word.t option
  (* [Some w] when the value round-trips through the scalar word [w]
     without touching the heap -- such values can ride in a Backup op-log
     entry.  [None] (blob codecs) forces the Backup commit path to
     checkpoint instead, since a log entry cannot own heap storage. *)
end

(* Hashes must fit a tagged scalar word (61 bits, positive) because the
   PMDK-style hashmap stores them in PM entries. *)
let hash_mask = max_int lsr 1

(* splitmix-style finalizer (constants truncated to OCaml's native int):
   decorrelates adjacent integer keys so CHAMP tries stay balanced even on
   sequential inserts. *)
let mix_int v =
  let v = v * 0x1E3779B97F4A7C15 in
  let v = (v lxor (v lsr 30)) * 0x3F58476D1CE4E5B9 in
  let v = (v lxor (v lsr 27)) * 0x14D049BB133111EB in
  (v lxor (v lsr 31)) land hash_mask

module Int : CODEC with type t = int = struct
  type t = int

  let equal = Int.equal
  let hash = mix_int
  let write _heap v = Pmem.Word.of_int v
  let read _heap w = Pmem.Word.to_int w
  let log_word v = Some (Pmem.Word.of_int v)
end

(* Unit values: sets are maps to unit, stored as scalar 0. *)
module Unit : CODEC with type t = unit = struct
  type t = unit

  let equal () () = true
  let hash () = 0
  let write _heap () = Pmem.Word.of_int 0
  let read _heap _w = ()
  let log_word () = Some (Pmem.Word.of_int 0)
end

(* FNV-1a over the bytes; cheap and adequate for trie dispersal. *)
let hash_string s =
  let h = ref 0x2bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land hash_mask

(* Blobs pack 7 bytes per word so every payload word fits OCaml's 63-bit
   native int.  Layout: word 0 = byte length, then ceil(n/7) packed words. *)
let bytes_per_word = 7
let words_for_bytes n = (n + bytes_per_word - 1) / bytes_per_word

module String_blob : CODEC with type t = string = struct
  type t = string

  let equal = String.equal
  let hash = hash_string

  let write heap s =
    let n = String.length s in
    let body =
      Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw
        ~words:(1 + words_for_bytes n)
    in
    Pmalloc.Heap.store heap body (Pmem.Word.of_int n);
    for w = 0 to words_for_bytes n - 1 do
      let packed = ref 0 in
      for b = bytes_per_word - 1 downto 0 do
        let i = (w * bytes_per_word) + b in
        let byte = if i < n then Char.code s.[i] else 0 in
        packed := (!packed lsl 8) lor byte
      done;
      Pmalloc.Heap.store heap (body + 1 + w) (Pmem.Word.raw !packed)
    done;
    Pmalloc.Heap.flush_block heap body;
    Pmem.Word.of_ptr body

  let read heap w =
    let body = Pmem.Word.to_ptr w in
    let n = Pmem.Word.to_int (Pmalloc.Heap.load heap body) in
    let buf = Bytes.create n in
    for w = 0 to words_for_bytes n - 1 do
      let packed = ref (Pmem.Word.bits (Pmalloc.Heap.load heap (body + 1 + w))) in
      for b = 0 to bytes_per_word - 1 do
        let i = (w * bytes_per_word) + b in
        if i < n then Bytes.set buf i (Char.chr (!packed land 0xff));
        packed := !packed lsr 8
      done
    done;
    Bytes.to_string buf

  (* Blob values live in the heap; a log entry cannot carry them. *)
  let log_word _ = None
end
