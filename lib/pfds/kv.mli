(** Key/value codecs: how application values map onto tagged PM words.

    Small scalars (the 8-byte keys/elements of the microbenchmarks) are
    stored inline; variable-length payloads (memcached's 16 B keys and
    512 B values) are stored as [Raw] heap blobs referenced by pointer
    words.  A codec's [write] returns an {e owned} word: if it allocated a
    blob, ownership passes to whoever stores the word into a node. *)

module type CODEC = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
  (** Must fit a tagged scalar word: 61 bits, non-negative. *)

  val write : Pmalloc.Heap.t -> t -> Pmem.Word.t
  val read : Pmalloc.Heap.t -> Pmem.Word.t -> t

  val log_word : t -> Pmem.Word.t option
  (** [Some w] when the value round-trips through the scalar word [w]
      without heap storage, making it eligible for a Backup op-log
      entry; [None] (blob codecs) forces a checkpoint commit. *)
end

val hash_mask : int

val mix_int : int -> int
(** splitmix-style finalizer: decorrelates adjacent integer keys so CHAMP
    tries stay balanced even on sequential inserts. *)

val hash_string : string -> int
(** FNV-1a, masked to fit a tagged scalar. *)

val bytes_per_word : int
val words_for_bytes : int -> int

module Int : CODEC with type t = int
(** Inline 8-byte scalars. *)

module Unit : CODEC with type t = unit
(** Unit values (sets are maps to unit). *)

module String_blob : CODEC with type t = string
(** Arbitrary byte strings as [Raw] blobs: word 0 holds the byte length,
    then 7 bytes per word (so payload words stay within OCaml's native
    int).  [write] flushes the blob with unordered clwbs. *)
