(** Compressed Hash-Array Mapped Prefix tree (CHAMP) in persistent memory.

    This is the functional map/set the paper's MOD map and set are built
    from (Steindorfer & Vinju, OOPSLA'15; reference [43] in the paper):
    a 32-way hash trie whose nodes carry two bitmaps -- [datamap] marking
    in-node key/value entries and [nodemap] marking sub-tree pointers --
    so nodes store only occupied slots.  Updates copy the O(log32 n) nodes
    on the path to the affected slot and share everything else, which is
    the structural sharing that keeps MOD's shadow overhead below 0.01%
    per update (paper Section 4.2, Table 3).

    Node layouts (tagged words, [Scanned] blocks):
    - regular:   [packed_maps; k0; v0; ...; child0; child1; ...]
      with data entries sorted by bit index, then children by bit index;
    - collision: [-(count+1); k0; v0; k1; v1; ...] for keys whose hashes
      collide through every trie level.

    Packed headers.  A slot of the 32-way node is in one of three
    states -- empty, in-node entry ([datamap]), or sub-tree pointer
    ([nodemap]) -- and the two bitmaps are disjoint by construction, so
    storing them as separate words wastes a word and a PM load on every
    trie level of every operation.  Instead both maps live in one
    non-negative word: the 32 slots split into 8 groups of 4, each group
    ternary-coded into 7 bits (3^4 = 81 states), 56 bits total, with
    nibble-indexed side tables making pack/unpack a few volatile array
    reads.  Word 0 doubles as the node tag: negative means collision
    node (count = -w0 - 1), non-negative is a packed map pair.  One
    header word instead of two keeps small nodes a cacheline and makes
    every traversal step one header load instead of two.

    All update operations are pure: they return an owned pointer to a new
    root and never modify existing nodes.  New nodes are flushed with
    unordered clwbs; the single fence belongs to Commit. *)

let bits_per_level = 5
let branch = 1 lsl bits_per_level
let level_mask = branch - 1
let max_shift = 60 (* beyond this the 62-bit hash is exhausted *)

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v land (v - 1)) (acc + 1) in
  go v 0

(* -- packed map codec ------------------------------------------------------ *)

let group_bits = 7
let groups = 8

(* [enc.(d lor (m lsl 4))] = ternary code (0..80) of a 4-slot group whose
   datamap nibble is [d] and nodemap nibble is [m]; [dec] inverts it.
   Disjointness (d land m = 0) keeps exactly 81 of the 256 indices in
   use. *)
let enc = Array.make 256 0
let dec = Array.make 81 0

let () =
  for code = 0 to 80 do
    let d = ref 0 and m = ref 0 and c = ref code in
    for slot = 0 to 3 do
      (match !c mod 3 with
      | 1 -> d := !d lor (1 lsl slot)
      | 2 -> m := !m lor (1 lsl slot)
      | _ -> ());
      c := !c / 3
    done;
    let byte = !d lor (!m lsl 4) in
    enc.(byte) <- code;
    dec.(code) <- byte
  done

let pack_maps ~dm ~nm =
  let p = ref 0 in
  for g = 0 to groups - 1 do
    let d = (dm lsr (4 * g)) land 0xF and m = (nm lsr (4 * g)) land 0xF in
    p := !p lor (enc.(d lor (m lsl 4)) lsl (group_bits * g))
  done;
  !p

(* Both maps from one packed word: [(dm, nm)]. *)
let unpack_maps p =
  let dm = ref 0 and nm = ref 0 in
  for g = 0 to groups - 1 do
    let byte = dec.((p lsr (group_bits * g)) land 0x7F) in
    dm := !dm lor ((byte land 0xF) lsl (4 * g));
    nm := !nm lor ((byte lsr 4) lsl (4 * g))
  done;
  (!dm, !nm)

module Make (K : Kv.CODEC) (V : Kv.CODEC) = struct
  type key = K.t
  type value = V.t

  let empty = Pmem.Word.null
  let is_empty root = Pmem.Word.is_null root

  (* -- node accessors ---------------------------------------------------- *)

  (* Word 0 is the whole header: negative tags a collision node (count =
     [-w0 - 1]), non-negative is a packed (datamap, nodemap) pair.  Every
     node visit loads it exactly once. *)
  let header heap n = Pmem.Word.to_int (Node.get heap n 0)
  let collision_count_of w0 = -w0 - 1
  let collision_header count = Pmem.Word.of_int (-(count + 1))
  let maps_header ~dm ~nm = Pmem.Word.of_int (pack_maps ~dm ~nm)
  let data_off di = 1 + (2 * di)
  let child_off dcount ci = 1 + (2 * dcount) + ci
  let chunk hash shift = (hash lsr shift) land level_mask

  (* -- lookup ------------------------------------------------------------ *)

  let rec find_rec heap shift hash key n =
    let w0 = header heap n in
    if w0 < 0 then begin
      let count = collision_count_of w0 in
      let rec scan i =
        if i >= count then None
        else if K.equal key (K.read heap (Node.get heap n (data_off i))) then
          Some (Node.get heap n (data_off i + 1))
        else scan (i + 1)
      in
      scan 0
    end
    else begin
      let dm, nm = unpack_maps w0 in
      let bit = 1 lsl chunk hash shift in
      if dm land bit <> 0 then begin
        let di = popcount (dm land (bit - 1)) in
        if K.equal key (K.read heap (Node.get heap n (data_off di))) then
          Some (Node.get heap n (data_off di + 1))
        else None
      end
      else if nm land bit <> 0 then begin
        let ci = popcount (nm land (bit - 1)) in
        let child = Node.get heap n (child_off (popcount dm) ci) in
        find_rec heap (shift + bits_per_level) hash key (Pmem.Word.to_ptr child)
      end
      else None
    end

  let find_word heap root key =
    if is_empty root then None
    else find_rec heap 0 (K.hash key) key (Pmem.Word.to_ptr root)

  let find heap root key =
    Option.map (V.read heap) (find_word heap root key)

  let mem heap root key = Option.is_some (find_word heap root key)

  (* -- insertion --------------------------------------------------------- *)

  (* Build the subtree holding two entries whose hashes first diverge at or
     below [shift].  (k1, v1) come from an existing node and are shared;
     (k2, v2) are fresh and owned. *)
  let rec merge_entries heap shift h1 k1 v1 h2 k2 v2 =
    if shift >= max_shift then begin
      let n = Node.alloc heap ~words:5 in
      Node.set heap n 0 (collision_header 2);
      Node.set_shared heap n 1 k1;
      Node.set_shared heap n 2 v1;
      Node.set heap n 3 k2;
      Node.set heap n 4 v2;
      Node.finish heap n;
      Pmem.Word.of_ptr n
    end
    else begin
      let i1 = chunk h1 shift and i2 = chunk h2 shift in
      if i1 = i2 then begin
        let child =
          merge_entries heap (shift + bits_per_level) h1 k1 v1 h2 k2 v2
        in
        let n = Node.alloc heap ~words:2 in
        Node.set heap n 0 (maps_header ~dm:0 ~nm:(1 lsl i1));
        Node.set heap n 1 child;
        Node.finish heap n;
        Pmem.Word.of_ptr n
      end
      else begin
        let n = Node.alloc heap ~words:5 in
        Node.set heap n 0
          (maps_header ~dm:((1 lsl i1) lor (1 lsl i2)) ~nm:0);
        let set_entry off ~shared k v =
          if shared then begin
            Node.set_shared heap n off k;
            Node.set_shared heap n (off + 1) v
          end
          else begin
            Node.set heap n off k;
            Node.set heap n (off + 1) v
          end
        in
        if i1 < i2 then begin
          set_entry 1 ~shared:true k1 v1;
          set_entry 3 ~shared:false k2 v2
        end
        else begin
          set_entry 1 ~shared:false k2 v2;
          set_entry 3 ~shared:true k1 v1
        end;
        Node.finish heap n;
        Pmem.Word.of_ptr n
      end
    end

  let insert_collision heap n count key value =
    let used = 1 + (2 * count) in
    let rec find_idx i =
      if i >= count then None
      else if K.equal key (K.read heap (Node.get heap n (data_off i))) then Some i
      else find_idx (i + 1)
    in
    match find_idx 0 with
    | Some i ->
        let fresh = Node.alloc heap ~words:used in
        Node.blit_shared heap ~src:n ~soff:0 ~dst:fresh ~doff:0
          ~len:(data_off i + 1);
        Node.set heap fresh (data_off i + 1) (V.write heap value);
        Node.blit_shared heap ~src:n ~soff:(data_off i + 2) ~dst:fresh
          ~doff:(data_off i + 2)
          ~len:(used - data_off i - 2);
        Node.finish heap fresh;
        (Pmem.Word.of_ptr fresh, false)
    | None ->
        let fresh = Node.alloc heap ~words:(used + 2) in
        Node.set heap fresh 0 (collision_header (count + 1));
        Node.blit_shared heap ~src:n ~soff:1 ~dst:fresh ~doff:1 ~len:(used - 1);
        Node.set heap fresh used (K.write heap key);
        Node.set heap fresh (used + 1) (V.write heap value);
        Node.finish heap fresh;
        (Pmem.Word.of_ptr fresh, true)

  (* Returns (owned new node, grew). *)
  let rec insert_rec heap shift hash key value n =
    let w0 = header heap n in
    if w0 < 0 then insert_collision heap n (collision_count_of w0) key value
    else begin
      let dm, nm = unpack_maps w0 in
      let dcount = popcount dm and ccount = popcount nm in
      let used = 1 + (2 * dcount) + ccount in
      let bit = 1 lsl chunk hash shift in
      if dm land bit <> 0 then begin
        let di = popcount (dm land (bit - 1)) in
        let kw = Node.get heap n (data_off di) in
        if K.equal key (K.read heap kw) then begin
          (* same key: copy the node, swapping in the new value *)
          let fresh = Node.alloc heap ~words:used in
          Node.blit_shared heap ~src:n ~soff:0 ~dst:fresh ~doff:0
            ~len:(data_off di + 1);
          Node.set heap fresh (data_off di + 1) (V.write heap value);
          Node.blit_shared heap ~src:n ~soff:(data_off di + 2) ~dst:fresh
            ~doff:(data_off di + 2)
            ~len:(used - data_off di - 2);
          Node.finish heap fresh;
          (Pmem.Word.of_ptr fresh, false)
        end
        else begin
          (* hash-path collision: push both entries one level down *)
          let vw = Node.get heap n (data_off di + 1) in
          let h1 = K.hash (K.read heap kw) in
          let k2 = K.write heap key and v2 = V.write heap value in
          let child =
            merge_entries heap (shift + bits_per_level) h1 kw vw hash k2 v2
          in
          let ci = popcount (nm land (bit - 1)) in
          let fresh = Node.alloc heap ~words:(used - 1) in
          Node.set heap fresh 0
            (maps_header ~dm:(dm land lnot bit) ~nm:(nm lor bit));
          (* data entries, skipping di *)
          Node.blit_shared heap ~src:n ~soff:1 ~dst:fresh ~doff:1
            ~len:(2 * di);
          Node.blit_shared heap ~src:n
            ~soff:(data_off (di + 1))
            ~dst:fresh ~doff:(data_off di)
            ~len:(2 * (dcount - 1 - di));
          (* children with the merged subtree inserted at ci *)
          let doff_children = child_off (dcount - 1) 0 in
          Node.blit_shared heap ~src:n ~soff:(child_off dcount 0) ~dst:fresh
            ~doff:doff_children ~len:ci;
          Node.set heap fresh (doff_children + ci) child;
          Node.blit_shared heap ~src:n
            ~soff:(child_off dcount ci)
            ~dst:fresh
            ~doff:(doff_children + ci + 1)
            ~len:(ccount - ci);
          Node.finish heap fresh;
          (Pmem.Word.of_ptr fresh, true)
        end
      end
      else if nm land bit <> 0 then begin
        let ci = popcount (nm land (bit - 1)) in
        let coff = child_off dcount ci in
        let child = Node.get heap n coff in
        let child', grew =
          insert_rec heap (shift + bits_per_level) hash key value
            (Pmem.Word.to_ptr child)
        in
        let fresh = Node.alloc heap ~words:used in
        Node.blit_shared heap ~src:n ~soff:0 ~dst:fresh ~doff:0 ~len:coff;
        Node.set heap fresh coff child';
        Node.blit_shared heap ~src:n ~soff:(coff + 1) ~dst:fresh
          ~doff:(coff + 1)
          ~len:(used - coff - 1);
        Node.finish heap fresh;
        (Pmem.Word.of_ptr fresh, grew)
      end
      else begin
        (* free slot: insert a fresh data entry *)
        let di = popcount (dm land (bit - 1)) in
        let fresh = Node.alloc heap ~words:(used + 2) in
        Node.set heap fresh 0 (maps_header ~dm:(dm lor bit) ~nm);
        Node.blit_shared heap ~src:n ~soff:1 ~dst:fresh ~doff:1 ~len:(2 * di);
        Node.set heap fresh (data_off di) (K.write heap key);
        Node.set heap fresh (data_off di + 1) (V.write heap value);
        Node.blit_shared heap ~src:n ~soff:(data_off di) ~dst:fresh
          ~doff:(data_off (di + 1))
          ~len:(used - data_off di);
        Node.finish heap fresh;
        (Pmem.Word.of_ptr fresh, true)
      end
    end

  (* Returns (owned new root, grew). *)
  let insert heap root key value =
    if is_empty root then begin
      let bit = 1 lsl chunk (K.hash key) 0 in
      let n = Node.alloc heap ~words:3 in
      Node.set heap n 0 (maps_header ~dm:bit ~nm:0);
      Node.set heap n 1 (K.write heap key);
      Node.set heap n 2 (V.write heap value);
      Node.finish heap n;
      (Pmem.Word.of_ptr n, true)
    end
    else insert_rec heap 0 (K.hash key) key value (Pmem.Word.to_ptr root)

  (* -- removal ----------------------------------------------------------- *)

  type removal =
    | Unchanged
    | Gone (* subtree became empty *)
    | Inline of Pmem.Word.t * Pmem.Word.t (* single surviving entry, owned *)
    | Replaced of int (* owned new node *)

  let remove_collision heap n count key =
    let rec find_idx i =
      if i >= count then None
      else if K.equal key (K.read heap (Node.get heap n (data_off i))) then Some i
      else find_idx (i + 1)
    in
    match find_idx 0 with
    | None -> Unchanged
    | Some i ->
        if count = 2 then begin
          let j = 1 - i in
          let k = Node.share heap (Node.get heap n (data_off j)) in
          let v = Node.share heap (Node.get heap n (data_off j + 1)) in
          Inline (k, v)
        end
        else begin
          let fresh = Node.alloc heap ~words:(1 + (2 * (count - 1))) in
          Node.set heap fresh 0 (collision_header (count - 1));
          Node.blit_shared heap ~src:n ~soff:1 ~dst:fresh ~doff:1 ~len:(2 * i);
          Node.blit_shared heap ~src:n
            ~soff:(data_off (i + 1))
            ~dst:fresh ~doff:(data_off i)
            ~len:(2 * (count - 1 - i));
          Node.finish heap fresh;
          Replaced fresh
        end

  let rec remove_rec heap shift hash key n =
    let w0 = header heap n in
    if w0 < 0 then remove_collision heap n (collision_count_of w0) key
    else begin
      let dm, nm = unpack_maps w0 in
      let dcount = popcount dm and ccount = popcount nm in
      let used = 1 + (2 * dcount) + ccount in
      let bit = 1 lsl chunk hash shift in
      if dm land bit <> 0 then begin
        let di = popcount (dm land (bit - 1)) in
        if not (K.equal key (K.read heap (Node.get heap n (data_off di)))) then
          Unchanged
        else if dcount = 1 && ccount = 0 then Gone
        else if dcount = 2 && ccount = 0 && shift > 0 then begin
          (* canonical CHAMP: a lone entry migrates up into the parent *)
          let j = 1 - di in
          let k = Node.share heap (Node.get heap n (data_off j)) in
          let v = Node.share heap (Node.get heap n (data_off j + 1)) in
          Inline (k, v)
        end
        else begin
          let fresh = Node.alloc heap ~words:(used - 2) in
          Node.set heap fresh 0 (maps_header ~dm:(dm land lnot bit) ~nm);
          Node.blit_shared heap ~src:n ~soff:1 ~dst:fresh ~doff:1 ~len:(2 * di);
          Node.blit_shared heap ~src:n
            ~soff:(data_off (di + 1))
            ~dst:fresh ~doff:(data_off di)
            ~len:(used - data_off (di + 1));
          Node.finish heap fresh;
          Replaced fresh
        end
      end
      else if nm land bit <> 0 then begin
        let ci = popcount (nm land (bit - 1)) in
        let coff = child_off dcount ci in
        let child = Pmem.Word.to_ptr (Node.get heap n coff) in
        match remove_rec heap (shift + bits_per_level) hash key child with
        | Unchanged -> Unchanged
        | Gone ->
            (* children always hold >= 2 entries, so they collapse through
               Inline, never to Gone *)
            assert false
        | Replaced c' ->
            let fresh = Node.alloc heap ~words:used in
            Node.blit_shared heap ~src:n ~soff:0 ~dst:fresh ~doff:0 ~len:coff;
            Node.set heap fresh coff (Pmem.Word.of_ptr c');
            Node.blit_shared heap ~src:n ~soff:(coff + 1) ~dst:fresh
              ~doff:(coff + 1)
              ~len:(used - coff - 1);
            Node.finish heap fresh;
            Replaced fresh
        | Inline (k, v) ->
            if dcount = 0 && ccount = 1 && shift > 0 then
              (* this node reduces to that single entry too *)
              Inline (k, v)
            else begin
              (* child slot becomes an in-node data entry *)
              let di = popcount (dm land (bit - 1)) in
              let fresh = Node.alloc heap ~words:(used + 1) in
              Node.set heap fresh 0
                (maps_header ~dm:(dm lor bit) ~nm:(nm land lnot bit));
              Node.blit_shared heap ~src:n ~soff:1 ~dst:fresh ~doff:1
                ~len:(2 * di);
              Node.set heap fresh (data_off di) k;
              Node.set heap fresh (data_off di + 1) v;
              Node.blit_shared heap ~src:n ~soff:(data_off di) ~dst:fresh
                ~doff:(data_off (di + 1))
                ~len:(2 * (dcount - di));
              let doff_children = child_off (dcount + 1) 0 in
              Node.blit_shared heap ~src:n ~soff:(child_off dcount 0)
                ~dst:fresh ~doff:doff_children ~len:ci;
              Node.blit_shared heap ~src:n
                ~soff:(child_off dcount (ci + 1))
                ~dst:fresh
                ~doff:(doff_children + ci)
                ~len:(ccount - ci - 1);
              Node.finish heap fresh;
              Replaced fresh
            end
      end
      else Unchanged
    end

  (* Returns (new root, removed).  When nothing was removed the original
     root is returned un-owned and no commit is needed. *)
  let remove heap root key =
    if is_empty root then (root, false)
    else
      match remove_rec heap 0 (K.hash key) key (Pmem.Word.to_ptr root) with
      | Unchanged -> (root, false)
      | Gone -> (Pmem.Word.null, true)
      | Replaced n -> (Pmem.Word.of_ptr n, true)
      | Inline (k, v) ->
          (* rebuild a single-entry root *)
          let hash = K.hash (K.read heap k) in
          let bit = 1 lsl chunk hash 0 in
          let n = Node.alloc heap ~words:3 in
          Node.set heap n 0 (maps_header ~dm:bit ~nm:0);
          Node.set heap n 1 k;
          Node.set heap n 2 v;
          Node.finish heap n;
          (Pmem.Word.of_ptr n, true)

  (* -- traversal --------------------------------------------------------- *)

  let rec iter_node heap n fn =
    let w0 = header heap n in
    if w0 < 0 then begin
      let count = collision_count_of w0 in
      for i = 0 to count - 1 do
        fn (Node.get heap n (data_off i)) (Node.get heap n (data_off i + 1))
      done
    end
    else begin
      let dm, nm = unpack_maps w0 in
      let dcount = popcount dm in
      let ccount = popcount nm in
      for i = 0 to dcount - 1 do
        fn (Node.get heap n (data_off i)) (Node.get heap n (data_off i + 1))
      done;
      for i = 0 to ccount - 1 do
        iter_node heap
          (Pmem.Word.to_ptr (Node.get heap n (child_off dcount i)))
          fn
      done
    end

  let iter_words heap root fn =
    if not (is_empty root) then iter_node heap (Pmem.Word.to_ptr root) fn

  let iter heap root fn =
    iter_words heap root (fun kw vw -> fn (K.read heap kw) (V.read heap vw))

  let fold heap root fn acc =
    let acc = ref acc in
    iter heap root (fun k v -> acc := fn k v !acc);
    !acc

  let cardinal heap root =
    let n = ref 0 in
    iter_words heap root (fun _ _ -> incr n);
    !n
end
