(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated Optane machine, plus the
   ablation studies indexed in DESIGN.md and a Bechamel wall-clock section.

   Usage:
     dune exec bench/main.exe                     -- everything, default scale
     dune exec bench/main.exe -- fig4 fig9        -- selected sections
     dune exec bench/main.exe -- --scale 50000    -- heavier runs
     dune exec bench/main.exe -- --full           -- paper-scale (1M ops; slow)

   Numbers are simulated nanoseconds; the goal is the *shape* of each
   paper result (see EXPERIMENTS.md for the side-by-side reading). *)

open Workloads

let default_scale = 10_000

let usage () =
  print_endline
    "sections: fig2 fig4 fig9 fig10 fig11 table3 ctree ablations batch \
     telemetry faults persist killtest alloc shard bechamel all";
  print_endline
    "options: --scale N | --full | --json FILE | --baseline FILE | --seed N \
     | --shards N";
  exit 1

(* Machine-readable counterpart of a Runner sweep entry (BENCH_*.json). *)
let runner_json (r : Runner.result) =
  Report.Json.(
    Obj
      [
        ("workload", String r.Runner.workload);
        ("backend", String (Backend.kind_name r.Runner.backend));
        ("ops", Int r.Runner.ops);
        ("batch", Int r.Runner.batch);
        ("commits", Int r.Runner.commits);
        ("sim_ns_total", Float r.Runner.ns_total);
        ("sim_ns_flush", Float r.Runner.ns_flush);
        ("sim_ns_log", Float r.Runner.ns_log);
        ("sim_ns_other", Float r.Runner.ns_other);
        ("fences", Int r.Runner.fences);
        ("flushes", Int r.Runner.flushes);
        ("loads", Int r.Runner.loads);
        ("stores", Int r.Runner.stores);
        ("cache_miss_ratio", Float r.Runner.miss_ratio);
        ("live_words", Int r.Runner.live_words);
        ("high_water_words", Int r.Runner.high_water_words);
      ])

(* ------------------------------------------------------------------ *)
(* Figure 4: average flush latency vs flushes overlapped per fence     *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  Report.section
    "Figure 4: average flush latency vs flush concurrency (320 cachelines)";
  Printf.printf "%s\n\n"
    "observed = measured on the simulated DCPMM; amdahl = closed-form fit\n\
     (f = 0.82 parallel), as in the paper.";
  Report.row_r
    [ "flushes/fence"; "observed (ns)"; "amdahl (ns)"; "" ]
    [ 14; 14; 12; 30 ];
  let lines_total = 320 in
  let points = ref [] in
  List.iter
    (fun n ->
      let region = Pmem.Region.create ~capacity_words:(1 lsl 16) () in
      (* fault in 320 distinct cachelines (<= 32KB worth: they fit L1D) *)
      let offs = Array.init lines_total (fun i -> i * Pmem.Config.words_per_line) in
      Array.iter (fun off -> Pmem.Region.store region off (Pmem.Word.of_int 1)) offs;
      let stats = Pmem.Region.stats region in
      let t0 = stats.Pmem.Stats.now_ns in
      Array.iteri
        (fun i off ->
          Pmem.Region.clwb region off;
          if (i + 1) mod n = 0 then Pmem.Region.sfence region)
        offs;
      if lines_total mod n <> 0 then Pmem.Region.sfence region;
      let avg = (stats.Pmem.Stats.now_ns -. t0) /. float_of_int lines_total in
      let model = Pmem.Latency.amdahl_avg_ns n in
      points :=
        Report.Json.(
          Obj
            [
              ("flushes_per_fence", Int n);
              ("observed_avg_ns", Float avg);
              ("amdahl_avg_ns", Float model);
            ])
        :: !points;
      Report.row_r
        [
          string_of_int n;
          Printf.sprintf "%.1f" avg;
          Printf.sprintf "%.1f" model;
          Report.bar ~width:28 ~max_value:360.0 avg;
        ]
        [ 14; 14; 12; 30 ])
    [ 1; 2; 4; 8; 12; 16; 20; 24; 28; 32 ];
  let r1 = Pmem.Latency.amdahl_avg_ns 1 and r16 = Pmem.Latency.amdahl_avg_ns 16 in
  Printf.printf
    "\nheadline: 16 concurrent flushes are %.0f%% cheaper than serialized\n\
     flushes (paper: 75%%).\n"
    (100.0 *. (r1 -. r16) /. r1);
  Report.Json.List (List.rev !points)

(* ------------------------------------------------------------------ *)
(* Workload sweeps shared by Figures 2, 9 and 11                       *)
(* ------------------------------------------------------------------ *)

let sweep ~scale =
  List.map
    (fun name ->
      let per_backend =
        List.map
          (fun backend -> (backend, Runner.run_one name backend ~scale))
          Backend.all_kinds
      in
      (name, per_backend))
    Runner.names

let get results name backend = List.assoc backend (List.assoc name results)

let fig2 results =
  Report.section
    "Figure 2: fraction of execution time flushing / logging (PMDK v1.5)";
  Report.row [ "workload"; "other"; "flush"; "log"; "o=other f=flush l=log" ]
    [ 10; 6; 6; 6; 50 ];
  List.iter
    (fun name ->
      let r = get results name Backend.Pmdk15 in
      let fo = 1.0 -. Runner.flush_fraction r -. Runner.log_fraction r in
      let ff = Runner.flush_fraction r in
      let fl = Runner.log_fraction r in
      Report.row
        [
          name;
          Report.fraction_pct fo;
          Report.fraction_pct ff;
          Report.fraction_pct fl;
          Report.stacked_bar [ ('o', fo); ('f', ff); ('l', fl) ];
        ]
        [ 10; 6; 6; 6; 50 ])
    Runner.names;
  let avg f =
    let xs = List.map (fun n -> f (get results n Backend.Pmdk15)) Runner.names in
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  Printf.printf
    "\nheadline: PMDK v1.5 spends %.0f%% of time flushing and %.0f%% logging\n\
     on average (paper: ~64%% flushing, ~9%% logging).\n"
    (100.0 *. avg Runner.flush_fraction)
    (100.0 *. avg Runner.log_fraction)

let fig9 results =
  Report.section
    "Figure 9: execution time normalized to PMDK v1.4 (stacked: other/flush/log)";
  Report.row
    [ "workload"; "backend"; "norm"; "other"; "flush"; "log"; "stacked bar" ]
    [ 10; 9; 6; 6; 6; 6; 40 ];
  List.iter
    (fun name ->
      let base = (get results name Backend.Pmdk14).Runner.ns_total in
      List.iter
        (fun backend ->
          let r = get results name backend in
          let norm = r.Runner.ns_total /. base in
          let seg f = f r *. norm in
          let other =
            norm -. seg Runner.flush_fraction -. seg Runner.log_fraction
          in
          Report.row
            [
              (if backend = Backend.Pmdk14 then name else "");
              Backend.kind_name backend;
              Report.f2 norm;
              Report.f2 other;
              Report.f2 (seg Runner.flush_fraction);
              Report.f2 (seg Runner.log_fraction);
              Report.stacked_bar
                ~width:(int_of_float (Float.round (norm *. 25.0)))
                [
                  ('o', other /. norm);
                  ('f', seg Runner.flush_fraction /. norm);
                  ('l', seg Runner.log_fraction /. norm);
                ];
            ]
            [ 10; 9; 6; 6; 6; 6; 40 ])
        Backend.all_kinds;
      print_newline ())
    Runner.names;
  (* headline summaries, as in Section 6.3 *)
  let speedup names =
    let per_wl =
      List.map
        (fun n ->
          let p = (get results n Backend.Pmdk15).Runner.ns_total in
          let m = (get results n Backend.Mod).Runner.ns_total in
          (p -. m) /. p)
        names
    in
    100.0
    *. (List.fold_left ( +. ) 0.0 per_wl /. float_of_int (List.length per_wl))
  in
  Printf.printf
    "headline: MOD vs PMDK v1.5 --\n\
    \  pointer-based micros (map set queue stack): %+.0f%% (paper: +43%%)\n\
    \  applications (bfs vacation memcached):      %+.0f%% (paper: +36%%)\n\
    \  vector / vec-swap:                          %+.0f%% (paper: negative)\n"
    (speedup [ "map"; "set"; "queue"; "stack" ])
    (speedup [ "bfs"; "vacation"; "memcached" ])
    (speedup [ "vector"; "vec-swap" ]);
  let v14 =
    let per_wl =
      List.map
        (fun n ->
          let a = (get results n Backend.Pmdk14).Runner.ns_total in
          let b = (get results n Backend.Pmdk15).Runner.ns_total in
          (a -. b) /. a)
        Runner.names
    in
    100.0
    *. (List.fold_left ( +. ) 0.0 per_wl /. float_of_int (List.length per_wl))
  in
  Printf.printf "  PMDK v1.5 vs v1.4:                          %+.0f%% (paper: +23%%)\n" v14

let fig10 () =
  Report.section
    "Figure 10: flushes per operation vs fences per operation (scatter data)";
  let points = Profile.all ~samples:300 ~size:5_000 () in
  Report.row_r
    [ "operation"; "backend"; "fences/op"; "flushes/op" ]
    [ 14; 9; 10; 11 ];
  List.iter
    (fun (p : Profile.point) ->
      Report.row_r
        [
          p.label;
          Backend.kind_name p.backend;
          Report.f1 p.fences;
          Report.f1 p.flushes;
        ]
        [ 14; 9; 10; 11 ])
    points;
  print_newline ();
  Printf.printf
    "headline: MOD always has exactly 1 fence/op; PMDK v1.5 shows several\n\
     (paper Section 3: 5-11 fences, 4-23 flushes per transaction).\n"

let fig11 results =
  Report.section "Figure 11: L1D cache miss ratios (PMDK v1.5 vs MOD)";
  Report.row [ "workload"; "PMDK-1.5"; "MOD"; "PMDK bar / MOD bar" ] [ 10; 9; 7; 44 ];
  List.iter
    (fun name ->
      let p = get results name Backend.Pmdk15 in
      let m = get results name Backend.Mod in
      Report.row
        [
          name;
          Report.fraction_pct p.Runner.miss_ratio;
          Report.fraction_pct m.Runner.miss_ratio;
          Printf.sprintf "%s | %s"
            (Report.bar ~width:20 ~max_value:0.12 p.Runner.miss_ratio)
            (Report.bar ~width:20 ~max_value:0.12 m.Runner.miss_ratio);
        ]
        [ 10; 9; 7; 44 ])
    Runner.names;
  Printf.printf
    "\nheadline: MOD's pointer-based map/set/vector show markedly higher\n\
     miss ratios than PMDK's contiguous layouts (paper: 2.8-4.6x);\n\
     stack/queue/bfs are comparable on both.\n"

let table3 ~scale =
  Report.section
    "Table 3: memory consumed at 2N elements relative to N elements";
  let n = max 1_000 (scale / 2) in
  Printf.printf "N = %d elements (paper: 1 million)\n\n" n;
  let rows = Space.table3 ~n () in
  Report.row_r
    [ "structure"; "backend"; "words@N"; "words@2N"; "ratio" ]
    [ 10; 9; 10; 10; 7 ];
  List.iter
    (fun (r : Space.row) ->
      Report.row_r
        [
          r.structure;
          Backend.kind_name r.backend;
          string_of_int r.words_at_n;
          string_of_int r.words_at_2n;
          Printf.sprintf "%.2fx" r.ratio;
        ]
        [ 10; 9; 10; 10; 7 ])
    rows;
  let transient, live = Space.shadow_overhead ~n in
  Printf.printf
    "\nper-update shadow overhead: one insert into a %d-element map consumes\n\
     %d transient words = %.6fx of the structure (paper: 0.00002-0.00004x).\n"
    n transient
    (float_of_int transient /. float_of_int live);
  Report.Json.(
    Obj
      [
        ("n", Int n);
        ( "rows",
          List
            (List.map
               (fun (r : Space.row) ->
                 Obj
                   [
                     ("structure", String r.structure);
                     ("backend", String (Backend.kind_name r.backend));
                     ("words_at_n", Int r.words_at_n);
                     ("words_at_2n", Int r.words_at_2n);
                     ("ratio", Float r.ratio);
                   ])
               rows) );
        ("shadow_transient_words", Int transient);
        ("shadow_live_words", Int live);
      ])

let ablations ~scale =
  Report.section "Ablations (DESIGN.md): what each MOD ingredient buys";
  let ops = max 200 (scale / 10) in
  let print_group title rows =
    Report.subsection title;
    List.iter
      (fun (r : Ablation.result) ->
        Printf.printf
          "  %-48s %10.2f ms  %7d fences  %8d flushes  %8d hw words\n" r.label
          (r.ns_total /. 1e6) r.fences r.flushes r.high_water_words)
      rows
  in
  let groups =
    [
      ( "sharing",
        "(a) structural sharing (vector point updates)",
        Ablation.sharing ~ops ~size:(max 500 (scale / 5)) );
      ( "ordering",
        "(b) minimal ordering (map inserts)",
        Ablation.ordering ~ops ~size:(max 500 (scale / 5)) );
      ( "reclamation",
        "(c) eager reclamation (map insert churn)",
        Ablation.reclamation ~ops ~size:100 );
    ]
  in
  List.iter (fun (_, title, rows) -> print_group title rows) groups;
  Report.Json.(
    Obj
      (List.map
         (fun (key, _, rows) ->
           ( key,
             List
               (List.map
                  (fun (r : Ablation.result) ->
                    Obj
                      [
                        ("label", String r.label);
                        ("sim_ns_total", Float r.ns_total);
                        ("fences", Int r.fences);
                        ("flushes", Int r.flushes);
                        ("high_water_words", Int r.high_water_words);
                      ])
                  rows) ))
         groups))

(* ------------------------------------------------------------------ *)
(* Group commit: simulated cost vs batch size (the --batch knob)       *)
(* ------------------------------------------------------------------ *)

let batch_sizes = [ 1; 2; 4; 8; 16; 32 ]

(* One N-op group is one FASE: N staged shadows, one ordering point.
   The sweep shows simulated ns/op strictly decreasing as the fence cost
   amortizes, and fences/commit -> 1 on MOD; the optional baseline check
   (--baseline) turns the shape into a regression gate. *)
let batch_section ~scale ~baseline () =
  Report.section
    "Group commit: simulated cost vs batch size (micro map workload)";
  Printf.printf
    "MOD stages N pure updates into one Mod_core.Batch and retires them\n\
     under a single fence (Commit.single); the PMDK backends group the\n\
     same N operations in one PM-STM transaction (Tx.run_grouped).\n\n";
  (* Common-case FASE shape first: one 8-insert group is exactly one
     ordering point and one commit. *)
  let profile =
    let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
    let m = Micro.Mod_map.open_or_create heap ~slot:0 in
    let (), p =
      Mod_core.Fase.run heap (fun () ->
          Micro.Mod_map.insert_many m (List.init 8 (fun i -> (i, i))))
    in
    Printf.printf "one 8-insert MOD batch: %s\n\n"
      (Format.asprintf "%a" Mod_core.Fase.pp_profile p);
    p
  in
  let mod_runs =
    List.map
      (fun b -> (b, Runner.run_one ~batch:b "map" Backend.Mod ~scale))
      batch_sizes
  in
  let pmdk_runs =
    List.map
      (fun b -> (b, Runner.run_one ~batch:b "map" Backend.Pmdk15 ~scale))
      batch_sizes
  in
  Report.row_r
    [ "backend"; "batch"; "sim ns/op"; "fences/op"; "fences/commit";
      "flushes/op" ]
    [ 9; 6; 10; 10; 14; 11 ];
  let show backend runs =
    List.iter
      (fun (b, r) ->
        Report.row_r
          [
            backend;
            string_of_int b;
            Printf.sprintf "%.1f" (Runner.ns_per_op r);
            Report.f2 (Runner.fences_per_op r);
            Report.f2 (Runner.fences_per_commit r);
            Report.f2 (Runner.flushes_per_op r);
          ]
          [ 9; 6; 10; 10; 14; 11 ])
      runs
  in
  show "MOD" mod_runs;
  print_newline ();
  show "PMDK-1.5" pmdk_runs;
  let ns b runs = Runner.ns_per_op (List.assoc b runs) in
  Printf.printf
    "\nheadline: MOD ns/op drops %.2fx from batch=1 to batch=32; fences/op\n\
     falls from %.2f to %.2f (1/N amortization of the single ordering\n\
     point).\n"
    (ns 1 mod_runs /. ns 32 mod_runs)
    (Runner.fences_per_op (List.assoc 1 mod_runs))
    (Runner.fences_per_op (List.assoc 32 mod_runs));
  (* regression gate *)
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check
    (profile.Mod_core.Fase.fences = 1 && profile.Mod_core.Fase.commits = 1)
    (Printf.sprintf
       "FASE profile: an 8-insert batch used %d fences / %d commits \
        (expected 1 / 1)"
       profile.Mod_core.Fase.fences profile.Mod_core.Fase.commits);
  let rec strictly_decreasing = function
    | (b1, r1) :: ((b2, r2) :: _ as rest) ->
        check
          (Runner.ns_per_op r2 < Runner.ns_per_op r1)
          (Printf.sprintf
             "MOD ns/op did not decrease from batch=%d (%.1f) to batch=%d \
              (%.1f)"
             b1 (Runner.ns_per_op r1) b2 (Runner.ns_per_op r2));
        strictly_decreasing rest
    | _ -> ()
  in
  strictly_decreasing mod_runs;
  (match baseline with
  | None -> ()
  | Some path -> (
      let open Report.Json in
      match Option.bind (member "batch" (of_file path)) (member "mod_map") with
      | exception Sys_error e ->
          check false (Printf.sprintf "baseline %s unreadable: %s" path e)
      | exception Parse_error e ->
          check false (Printf.sprintf "baseline %s: bad JSON: %s" path e)
      | None ->
          check false (Printf.sprintf "baseline %s has no batch.mod_map" path)
      | Some base ->
          let bound key =
            match Option.bind (member key base) to_number_opt with
            | Some v -> v
            | None ->
                check false
                  (Printf.sprintf "baseline batch.mod_map has no %s" key);
                nan
          in
          let max_f32 = bound "max_fences_per_op_at_32" in
          let min_speedup = bound "min_speedup_1_to_32" in
          let f32 = Runner.fences_per_op (List.assoc 32 mod_runs) in
          let speedup = ns 1 mod_runs /. ns 32 mod_runs in
          check
            (Float.is_nan max_f32 || f32 <= max_f32)
            (Printf.sprintf
               "fences/op at batch=32 is %.3f, above the baseline bound %.3f"
               f32 max_f32);
          check
            (Float.is_nan min_speedup || speedup >= min_speedup)
            (Printf.sprintf
               "batch=1 -> batch=32 speedup is %.2fx, below the baseline \
                bound %.2fx"
               speedup min_speedup)));
  (match List.rev !failures with
  | [] -> print_endline "\nbatch regression gate: ok"
  | fs ->
      List.iter (fun m -> Printf.eprintf "BATCH REGRESSION: %s\n" m) fs;
      exit 1);
  let runs_json backend runs =
    Report.Json.(
      List
        (List.map
           (fun (b, r) ->
             Obj
               [
                 ("backend", String backend);
                 ("batch", Int b);
                 ("sim_ns_per_op", Float (Runner.ns_per_op r));
                 ("fences_per_op", Float (Runner.fences_per_op r));
                 ("fences_per_commit", Float (Runner.fences_per_commit r));
                 ("flushes_per_op", Float (Runner.flushes_per_op r));
                 ("sim_ns_total", Float r.Runner.ns_total);
                 ("fences", Int r.Runner.fences);
                 ("commits", Int r.Runner.commits);
               ])
           runs))
  in
  Report.Json.(
    Obj
      [
        ( "fase_profile_8_insert_batch",
          Obj
            [
              ("fences", Int profile.Mod_core.Fase.fences);
              ("flushes", Int profile.Mod_core.Fase.flushes);
              ("commits", Int profile.Mod_core.Fase.commits);
            ] );
        ("mod", runs_json "mod" mod_runs);
        ("pmdk15", runs_json "pmdk15" pmdk_runs);
      ])

(* ------------------------------------------------------------------ *)
(* Telemetry: per-op histograms, attribution identity, sink overhead   *)
(* ------------------------------------------------------------------ *)

let telemetry_section ~scale ~baseline () =
  Report.section
    "Telemetry: per-(structure x op) histograms and fence-stall attribution";
  Printf.printf
    "A Memory-sink run of the micro map workload, its attribution identity\n\
     (sum of per-op stalls + unattributed = global Pmem.Stats stall), and\n\
     the wall-clock overhead of an installed-but-Null collector.\n\n";
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  (* -- Memory-sink run: histograms + attribution ------------------- *)
  let r =
    Runner.run_one ~metrics:Telemetry.Sink.Memory "map" Backend.Mod ~scale
  in
  let rep =
    match r.Runner.telemetry with
    | Some rep -> rep
    | None -> failwith "telemetry: Memory-sink run returned no report"
  in
  Format.printf "%a@." Telemetry.pp_report rep;
  let attr_gap =
    Float.abs
      (rep.Telemetry.attributed_fence_stall_ns
      +. rep.Telemetry.unattributed_fence_stall_ns
      -. rep.Telemetry.total_fence_stall_ns)
  in
  let tol = 1e-6 +. (1e-9 *. Float.abs rep.Telemetry.total_fence_stall_ns) in
  check (rep.Telemetry.rows <> [])
    "telemetry: Memory-sink run produced no per-op rows";
  check (attr_gap <= tol)
    (Printf.sprintf
       "telemetry: attribution does not sum to the global stall counter \
        (%.3f + %.3f vs %.3f, gap %.3g)"
       rep.Telemetry.attributed_fence_stall_ns
       rep.Telemetry.unattributed_fence_stall_ns
       rep.Telemetry.total_fence_stall_ns attr_gap);
  List.iter
    (fun row ->
      let h = row.Telemetry.r_lat in
      check
        (Telemetry.Histogram.count h = row.Telemetry.r_spans)
        (Printf.sprintf "telemetry: row %s/%s histogram holds %d samples, \
                         expected %d spans"
           row.Telemetry.r_structure row.Telemetry.r_op
           (Telemetry.Histogram.count h) row.Telemetry.r_spans))
    rep.Telemetry.rows;
  (* -- Null-sink overhead: interleaved min-of-trials --------------- *)
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let trials = 5 in
  let best_off = ref infinity and best_null = ref infinity in
  (* one untimed warmup each, then interleave so drift hits both arms *)
  ignore (Runner.run_one "map" Backend.Mod ~scale);
  ignore (Runner.run_one ~metrics:Telemetry.Sink.Null "map" Backend.Mod ~scale);
  for _ = 1 to trials do
    best_off :=
      Float.min !best_off (time (fun () -> Runner.run_one "map" Backend.Mod ~scale));
    best_null :=
      Float.min !best_null
        (time (fun () ->
             Runner.run_one ~metrics:Telemetry.Sink.Null "map" Backend.Mod
               ~scale))
  done;
  let overhead_pct =
    if !best_off <= 0.0 then 0.0
    else Float.max 0.0 (((!best_null /. !best_off) -. 1.0) *. 100.0)
  in
  Printf.printf
    "null-sink overhead: off %.1f ms, null %.1f ms -> %.2f%% (min of %d \
     interleaved trials)\n"
    (!best_off *. 1e3) (!best_null *. 1e3) overhead_pct trials;
  (match baseline with
  | None -> ()
  | Some path -> (
      let open Report.Json in
      match member "telemetry" (of_file path) with
      | exception Sys_error e ->
          check false (Printf.sprintf "baseline %s unreadable: %s" path e)
      | exception Parse_error e ->
          check false (Printf.sprintf "baseline %s: bad JSON: %s" path e)
      | None ->
          check false (Printf.sprintf "baseline %s has no telemetry block" path)
      | Some base ->
          let bound =
            match
              Option.bind (member "max_null_sink_overhead_pct" base)
                to_number_opt
            with
            | Some v -> v
            | None ->
                check false
                  "baseline telemetry block has no max_null_sink_overhead_pct";
                nan
          in
          check
            (Float.is_nan bound || overhead_pct <= bound)
            (Printf.sprintf
               "null-sink overhead %.2f%% exceeds the baseline bound %.2f%%"
               overhead_pct bound)));
  (match List.rev !failures with
  | [] -> print_endline "\ntelemetry regression gate: ok"
  | fs ->
      List.iter (fun m -> Printf.eprintf "TELEMETRY REGRESSION: %s\n" m) fs;
      exit 1);
  let row_json row =
    let h = row.Telemetry.r_lat in
    Report.Json.(
      Obj
        [
          ("structure", String row.Telemetry.r_structure);
          ("op", String row.Telemetry.r_op);
          ("spans", Int row.Telemetry.r_spans);
          ("ops", Int row.Telemetry.r_ops);
          ("p50_ns", Float (Telemetry.Histogram.percentile h 0.50));
          ("p99_ns", Float (Telemetry.Histogram.percentile h 0.99));
          ("fence_stall_ns", Float row.Telemetry.r_fence_stall_ns);
        ])
  in
  Report.Json.(
    Obj
      [
        ("workload", String "map");
        ("backend", String "mod");
        ("null_sink_overhead_pct", Float overhead_pct);
        ("attribution_gap_ns", Float attr_gap);
        ( "total_fence_stall_ns",
          Float rep.Telemetry.total_fence_stall_ns );
        ( "attributed_fence_stall_ns",
          Float rep.Telemetry.attributed_fence_stall_ns );
        ( "unattributed_fence_stall_ns",
          Float rep.Telemetry.unattributed_fence_stall_ns );
        ("rows", List (List.map row_json rep.Telemetry.rows));
      ])

(* ------------------------------------------------------------------ *)
(* Faults: torn-crash + media-fault sweep throughput and detection     *)
(* ------------------------------------------------------------------ *)

let faults_section () =
  Report.section
    "Faults: torn-crash and media-fault sweep (detection-or-recovery gate)";
  Printf.printf
    "A bounded fault-schedule sweep over the seven basic structures: at\n\
     each sampled crash point the dirty lines are torn per-word and root /\n\
     heap cachelines are armed as media-bad.  The oracle requires recovery\n\
     to reconstruct a durably-linearizable state or fail with a typed\n\
     error -- a silent-corruption verdict fails the bench.\n\n";
  let cfg =
    {
      Crashtest.Explorer.default with
      stride = 2;
      randomize_samples = 2;
      faults = true;
    }
  in
  let violations = ref 0 in
  let results =
    List.map
      (fun name ->
        let w = Crashtest.Workload.build name ~ops:16 in
        let r = Crashtest.Explorer.explore ~cfg w in
        Format.printf "%a@." Crashtest.Explorer.pp_result r;
        if not (Crashtest.Explorer.ok r) then
          violations := !violations + List.length r.Crashtest.Explorer.failures;
        (name, r))
      Crashtest.Workload.basic_names
  in
  let sum f =
    List.fold_left (fun a (_, r) -> a + f r) 0 results
  in
  let samples = sum (fun r -> r.Crashtest.Explorer.fault_samples) in
  let recovered = sum (fun r -> r.Crashtest.Explorer.fault_recovered) in
  let degraded = sum (fun r -> r.Crashtest.Explorer.fault_degraded) in
  let fallbacks = sum (fun r -> r.Crashtest.Explorer.fault_fallbacks) in
  let points = sum (fun r -> r.Crashtest.Explorer.points_tested) in
  let wall =
    List.fold_left
      (fun a (_, r) -> a +. r.Crashtest.Explorer.wall_seconds)
      0.0 results
  in
  let points_per_sec =
    if wall <= 0.0 then 0.0 else float_of_int points /. wall
  in
  Printf.printf
    "\nfault sweep: %d samples (%d recovered, %d degraded, %d root \
     fallbacks), %.0f points/s\n"
    samples recovered degraded fallbacks points_per_sec;
  if !violations > 0 then begin
    Printf.eprintf "FAULT SWEEP: %d oracle violation(s)\n" !violations;
    exit 1
  end;
  print_endline "fault detection gate: ok";
  Report.Json.(
    Obj
      [
        ("fault_samples", Int samples);
        ("fault_recovered", Int recovered);
        ("fault_degraded", Int degraded);
        ("fault_fallbacks", Int fallbacks);
        ("points_tested", Int points);
        ("wall_seconds", Float wall);
        ("points_per_sec", Float points_per_sec);
        ("violations", Int !violations);
        ( "workloads",
          List
            (List.map
               (fun (name, r) ->
                 Obj
                   [
                     ("workload", String name);
                     ("fault_samples", Int r.Crashtest.Explorer.fault_samples);
                     ( "fault_recovered",
                       Int r.Crashtest.Explorer.fault_recovered );
                     ("fault_degraded", Int r.Crashtest.Explorer.fault_degraded);
                     ( "fault_fallbacks",
                       Int r.Crashtest.Explorer.fault_fallbacks );
                     ("ok", Bool (Crashtest.Explorer.ok r));
                   ])
               results) );
      ])

(* ------------------------------------------------------------------ *)
(* Commit policies: Full vs Backup ("don't persist all")               *)
(* ------------------------------------------------------------------ *)

(* The paper's "persist only the backup data" tradeoff, measured on the
   simulated machine: per-op flush and fence counts for the same script
   under both commit policies, plus the Backup recovery cost (log replay
   rebuilding the volatile interior).  Gates: Backup must strictly
   reduce flushes/op on both map and vec, and the committed baseline
   bounds the reconstruction latency. *)
let persist_section ~scale ~baseline () =
  Report.section
    "Commit policies: Full vs Backup (\"don't persist all\", Section 2.3)";
  Printf.printf
    "Same insert script under both commit policies.  Full clwbs every new\n\
     node before the commit fence; Backup clwbs only a bounded op log and\n\
     checkpoints when it fills, leaving interior nodes volatile-clean --\n\
     recovery replays the log to rebuild them.\n\n";
  let module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int) in
  let ops = max 1_000 (min scale 10_000) in
  let measure name persist run_ops reconstruct =
    let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 22) () in
    let stats = Pmalloc.Heap.stats heap in
    let c0 = stats.Pmem.Stats.clwbs
    and f0 = stats.Pmem.Stats.fences
    and t0 = stats.Pmem.Stats.now_ns in
    run_ops heap;
    let flushes = stats.Pmem.Stats.clwbs - c0
    and fences = stats.Pmem.Stats.fences - f0
    and ns = stats.Pmem.Stats.now_ns -. t0 in
    (* Backup recovery cost: drop the volatile state (as a reopen
       would) and time the log replay that rebuilds it *)
    let recovery_ms =
      match persist with
      | None -> 0.0
      | Some _ ->
          let t0 = Unix.gettimeofday () in
          ignore (Mod_core.Recovery.recover_exn heap);
          reconstruct heap;
          (Unix.gettimeofday () -. t0) *. 1e3
    in
    ( name,
      float_of_int flushes /. float_of_int ops,
      float_of_int fences /. float_of_int ops,
      ns /. float_of_int ops,
      recovery_ms )
  in
  let map_ops persist heap =
    let m = Imap.open_or_create ?persist heap ~slot:0 in
    let rng = Random.State.make [| 11 |] in
    for _ = 1 to ops do
      Imap.insert m (Random.State.int rng (2 * ops)) 7
    done
  in
  let vec_ops persist heap =
    let v = Mod_core.Dvec.open_or_create ?persist heap ~slot:0 in
    for i = 1 to ops do
      Mod_core.Dvec.push_back v (Pmem.Word.of_int i)
    done
  in
  let map_rebuild heap = Imap.reconstruct heap ~slot:0 in
  let vec_rebuild heap = Mod_core.Dvec.reconstruct heap ~slot:0 in
  let rows =
    [
      measure "map/full" None (map_ops None) map_rebuild;
      measure "map/backup" (Some Pmalloc.Heap.Backup)
        (map_ops (Some Pmalloc.Heap.Backup))
        map_rebuild;
      measure "vec/full" None (vec_ops None) vec_rebuild;
      measure "vec/backup" (Some Pmalloc.Heap.Backup)
        (vec_ops (Some Pmalloc.Heap.Backup))
        vec_rebuild;
    ]
  in
  Report.row_r
    [ "structure/policy"; "flushes/op"; "fences/op"; "sim ns/op";
      "recovery (ms)" ]
    [ 18; 12; 11; 11; 14 ];
  List.iter
    (fun (name, fl, fe, ns, rec_ms) ->
      Printf.printf "  %-18s %10.3f  %9.3f  %9.1f  %12.2f\n" name fl fe ns
        rec_ms)
    rows;
  let get name =
    let _, fl, _, _, rec_ms =
      List.find (fun (n, _, _, _, _) -> n = name) rows
    in
    (fl, rec_ms)
  in
  let map_full, _ = get "map/full" in
  let map_backup, map_rec = get "map/backup" in
  let vec_full, _ = get "vec/full" in
  let vec_backup, vec_rec = get "vec/backup" in
  Printf.printf
    "\nheadline: Backup flushes %.1fx fewer lines/op on map, %.1fx on vec,\n\
     at the price of a bounded log replay on reopen.\n"
    (map_full /. Float.max map_backup 1e-9)
    (vec_full /. Float.max vec_backup 1e-9);
  if map_backup >= map_full || vec_backup >= vec_full then begin
    Printf.eprintf
      "PERSIST GATE: Backup does not strictly reduce flushes/op (map %.3f \
       vs %.3f, vec %.3f vs %.3f)\n"
      map_backup map_full vec_backup vec_full;
    exit 1
  end;
  let recovery_ms = Float.max map_rec vec_rec in
  (match baseline with
  | None -> ()
  | Some path -> (
      let open Report.Json in
      match
        Option.bind
          (Option.bind (member "persist" (of_file path))
             (member "max_recovery_ms"))
          to_number_opt
      with
      | exception Sys_error e ->
          Printf.eprintf "baseline %s unreadable: %s\n" path e;
          exit 1
      | exception Parse_error e ->
          Printf.eprintf "baseline %s: bad JSON: %s\n" path e;
          exit 1
      | None ->
          Printf.eprintf "baseline %s has no persist.max_recovery_ms\n" path;
          exit 1
      | Some bound_ms ->
          Printf.printf "recovery max %.2f ms (baseline bound %.2f ms)\n"
            recovery_ms bound_ms;
          if recovery_ms > bound_ms then begin
            Printf.eprintf
              "PERSIST REGRESSION: recovery %.2f ms exceeds the committed \
               bound %.2f ms\n"
              recovery_ms bound_ms;
            exit 1
          end));
  print_endline "persist-policy gate: ok";
  Report.Json.(
    Obj
      [
        ("ops", Int ops);
        ("max_recovery_ms", Float recovery_ms);
        ( "rows",
          List
            (List.map
               (fun (name, fl, fe, ns, rec_ms) ->
                 Obj
                   [
                     ("name", String name);
                     ("flushes_per_op", Float fl);
                     ("fences_per_op", Float fe);
                     ("sim_ns_per_op", Float ns);
                     ("recovery_ms", Float rec_ms);
                   ])
               rows) );
      ])

(* ------------------------------------------------------------------ *)
(* Kill9: real fork+SIGKILL durability sweep on the file backend       *)
(* ------------------------------------------------------------------ *)

let killtest_section ~baseline () =
  Report.section
    "Kill9: fork + SIGKILL durability on the file-backed heap";
  Printf.printf
    "Forked workers apply deterministic workloads to file-backed heaps and\n\
     are SIGKILLed at random wall-clock instants and deterministically\n\
     inside the journaled writeback; the surviving process reopens each\n\
     image and checks the recovered state against the oracle.  Any\n\
     violation or escaped exception fails the bench; the committed\n\
     baseline bounds reopen latency.\n\n";
  let results =
    List.map
      (fun name ->
        let r =
          Crashtest.Kill9.run ~ops:30 ~seed:13 ~workload:name ~kills:8 ()
        in
        Format.printf "%a@." Crashtest.Kill9.pp_result r;
        List.iter
          (fun f -> Printf.eprintf "KILL9 FAIL: %s\n" f)
          (Crashtest.Kill9.failures r);
        r)
      [ "map"; "queue"; "vec" ]
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let violations = sum (fun r -> r.Crashtest.Kill9.violations) in
  let escaped = sum (fun r -> r.Crashtest.Kill9.escaped) in
  let max_reopen_ms =
    List.fold_left
      (fun a r -> Float.max a (r.Crashtest.Kill9.max_reopen_ns /. 1e6))
      0.0 results
  in
  if violations > 0 || escaped > 0 then begin
    Printf.eprintf "KILL9 SWEEP: %d violation(s), %d escaped exception(s)\n"
      violations escaped;
    exit 1
  end;
  (match baseline with
  | None -> ()
  | Some path -> (
      let open Report.Json in
      match
        Option.bind
          (Option.bind (member "kill9" (of_file path)) (member "max_reopen_ms"))
          to_number_opt
      with
      | exception Sys_error e ->
          Printf.eprintf "baseline %s unreadable: %s\n" path e;
          exit 1
      | exception Parse_error e ->
          Printf.eprintf "baseline %s: bad JSON: %s\n" path e;
          exit 1
      | None ->
          Printf.eprintf "baseline %s has no kill9.max_reopen_ms\n" path;
          exit 1
      | Some bound_ms ->
          Printf.printf "reopen max %.2f ms (baseline bound %.2f ms)\n"
            max_reopen_ms bound_ms;
          if max_reopen_ms > bound_ms then begin
            Printf.eprintf
              "KILL9 REGRESSION: reopen max %.2f ms exceeds the committed \
               bound %.2f ms\n"
              max_reopen_ms bound_ms;
            exit 1
          end));
  print_endline "kill9 durability gate: ok";
  Report.Json.(
    Obj
      [
        ("trials", Int (sum (fun r -> r.Crashtest.Kill9.kills)));
        ("violations", Int violations);
        ("escaped", Int escaped);
        ("completed", Int (sum (fun r -> r.Crashtest.Kill9.completed_runs)));
        ("journal_replayed", Int (sum (fun r -> r.Crashtest.Kill9.replayed)));
        ("journal_discarded", Int (sum (fun r -> r.Crashtest.Kill9.discarded)));
        ("max_reopen_ms", Float max_reopen_ms);
        ( "workloads",
          List
            (List.map
               (fun (r : Crashtest.Kill9.result) ->
                 Obj
                   [
                     ("workload", String r.workload);
                     ("trials", Int r.kills);
                     ("violations", Int r.violations);
                     ("mean_reopen_ms", Float (r.mean_reopen_ns /. 1e6));
                     ("ok", Bool (Crashtest.Kill9.ok r));
                   ])
               results) );
      ])

(* ------------------------------------------------------------------ *)
(* Allocator: arena hot path, map inserts at scale, recovery per GB    *)
(* ------------------------------------------------------------------ *)

(* Three measurements, all on the simulated machine:
   (a) raw alloc/release churn through the epoch pipeline at the full
       --scale (the shadow-node hot path in isolation);
   (b) CHAMP map inserts at min(scale, 1M) -- allocs/op, simulated
       ns/op and host wall ns/op;
   (c) crash + reachability recovery over the built heap, normalized
       to seconds per GB of high-water footprint.
   Simulated numbers and allocs/op are deterministic, so the committed
   baseline gates them; wall-clock is reported for the trajectory. *)
let alloc_section ~scale ~baseline () =
  Report.section
    "Allocator: arena hot path, map inserts at scale, recovery per GB";
  let module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int) in
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  (* -- (a) raw churn ------------------------------------------------ *)
  let churn_ops = max 10_000 scale in
  let churn_live = 512 in
  let churn =
    let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 22) () in
    let al = Pmalloc.Heap.allocator heap in
    let stats = Pmalloc.Heap.stats heap in
    let live = Array.make churn_live (-1) in
    let rng = Random.State.make [| 271828 |] in
    let a0 = Pmalloc.Allocator.allocations al in
    let t0 = stats.Pmem.Stats.now_ns in
    let w0 = Unix.gettimeofday () in
    for i = 0 to churn_ops - 1 do
      let slot = i mod churn_live in
      if live.(slot) >= 0 then Pmalloc.Heap.release heap live.(slot);
      let words = 2 + Random.State.int rng 14 in
      let body = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words in
      Pmalloc.Heap.store heap body (Pmem.Word.of_int i);
      live.(slot) <- body;
      if i land 63 = 63 then Pmalloc.Heap.sfence heap
    done;
    Pmalloc.Heap.sfence heap;
    let ops = float_of_int churn_ops in
    let sim_ns_op = (stats.Pmem.Stats.now_ns -. t0) /. ops in
    let wall_ns_op = (Unix.gettimeofday () -. w0) *. 1e9 /. ops in
    let allocs = Pmalloc.Allocator.allocations al - a0 in
    let hw = Pmalloc.Allocator.high_water_words al in
    (* churn at a bounded live set must reuse memory, not chase the
       frontier: the high-water mark stays O(live set + epoch lag) *)
    check
      (hw < 128 * churn_live * 16)
      (Printf.sprintf
         "churn leaked through the reuse path: high water %d words for a \
          %d-block live set"
         hw churn_live);
    (allocs, sim_ns_op, wall_ns_op, hw)
  in
  let churn_allocs, churn_sim_ns, churn_wall_ns, churn_hw = churn in
  Printf.printf
    "churn: %d alloc/release ops, %.2f allocs/op, %.1f sim ns/op, %.0f \
     wall ns/op, high water %d words\n"
    churn_ops
    (float_of_int churn_allocs /. float_of_int churn_ops)
    churn_sim_ns churn_wall_ns churn_hw;
  (* -- (b) map inserts at scale ------------------------------------- *)
  let map_n = max 1_000 (min scale 10_000_000) in
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 24) () in
  let al = Pmalloc.Heap.allocator heap in
  let stats = Pmalloc.Heap.stats heap in
  let m = Imap.open_or_create heap ~slot:0 in
  let a0 = Pmalloc.Allocator.allocations al in
  let t0 = stats.Pmem.Stats.now_ns in
  let w0 = Unix.gettimeofday () in
  for k = 0 to map_n - 1 do
    Imap.insert m k (k land 1023)
  done;
  let fn = float_of_int map_n in
  let map_allocs_op = float_of_int (Pmalloc.Allocator.allocations al - a0) /. fn in
  let map_sim_ns = (stats.Pmem.Stats.now_ns -. t0) /. fn in
  let map_wall_ns = (Unix.gettimeofday () -. w0) *. 1e9 /. fn in
  Printf.printf
    "map: %d inserts, %.2f allocs/op, %.1f sim ns/op, %.0f wall ns/op, \
     %d live words\n"
    map_n map_allocs_op map_sim_ns map_wall_ns
    (Pmalloc.Allocator.live_words al);
  (* -- (c) recovery seconds per GB of heap footprint ---------------- *)
  let hw_bytes = float_of_int (Pmalloc.Allocator.high_water_words al * 8) in
  Pmalloc.Heap.crash heap;
  let rt0 = stats.Pmem.Stats.now_ns in
  let rw0 = Unix.gettimeofday () in
  let report = Mod_core.Recovery.recover_exn heap in
  let rec_sim_s = (stats.Pmem.Stats.now_ns -. rt0) /. 1e9 in
  let rec_wall_s = Unix.gettimeofday () -. rw0 in
  let gb = hw_bytes /. 1e9 in
  let rec_sim_s_gb = rec_sim_s /. gb and rec_wall_s_gb = rec_wall_s /. gb in
  Printf.printf
    "recovery: %.3f GB footprint, %.3f sim s (%.1f sim s/GB), %.3f wall s \
     (%.1f wall s/GB), %d blocks live\n"
    gb rec_sim_s rec_sim_s_gb rec_wall_s rec_wall_s_gb
    report.Mod_core.Recovery.gc.Pmalloc.Recovery_gc.live_blocks;
  check
    (Imap.cardinal m = map_n)
    (Printf.sprintf "recovered map holds %d keys, expected %d"
       (Imap.cardinal m) map_n);
  (* -- regression gate ---------------------------------------------- *)
  (match baseline with
  | None -> ()
  | Some path -> (
      let open Report.Json in
      match member "alloc" (of_file path) with
      | exception Sys_error e ->
          check false (Printf.sprintf "baseline %s unreadable: %s" path e)
      | exception Parse_error e ->
          check false (Printf.sprintf "baseline %s: bad JSON: %s" path e)
      | None ->
          check false (Printf.sprintf "baseline %s has no alloc block" path)
      | Some base ->
          let bound key =
            match Option.bind (member key base) to_number_opt with
            | Some v -> v
            | None ->
                check false (Printf.sprintf "baseline alloc has no %s" key);
                nan
          in
          let gate name v bound_v =
            check
              (Float.is_nan bound_v || v <= bound_v)
              (Printf.sprintf "%s is %.3f, above the baseline bound %.3f"
                 name v bound_v)
          in
          gate "churn sim ns/op" churn_sim_ns (bound "max_churn_sim_ns_per_op");
          gate "map allocs/op" map_allocs_op (bound "max_map_allocs_per_op");
          gate "map sim ns/op" map_sim_ns (bound "max_map_sim_ns_per_op");
          gate "recovery sim s/GB" rec_sim_s_gb
            (bound "max_recovery_sim_s_per_gb")));
  (match List.rev !failures with
  | [] -> print_endline "\nalloc regression gate: ok"
  | fs ->
      List.iter (fun m -> Printf.eprintf "ALLOC REGRESSION: %s\n" m) fs;
      exit 1);
  Report.Json.(
    Obj
      [
        ("churn_ops", Int churn_ops);
        ("churn_allocs", Int churn_allocs);
        ("churn_sim_ns_per_op", Float churn_sim_ns);
        ("churn_wall_ns_per_op", Float churn_wall_ns);
        ("churn_high_water_words", Int churn_hw);
        ("map_inserts", Int map_n);
        ("map_allocs_per_op", Float map_allocs_op);
        ("map_sim_ns_per_op", Float map_sim_ns);
        ("map_wall_ns_per_op", Float map_wall_ns);
        ("heap_gb", Float gb);
        ("recovery_sim_s", Float rec_sim_s);
        ("recovery_sim_s_per_gb", Float rec_sim_s_gb);
        ("recovery_wall_s", Float rec_wall_s);
        ("recovery_wall_s_per_gb", Float rec_wall_s_gb);
      ])

(* ------------------------------------------------------------------ *)
(* Section 6.1 baseline choice: WHISPER hashmap vs ctree on PMDK       *)
(* ------------------------------------------------------------------ *)

let ctree ~scale =
  Report.section
    "Baseline choice (paper 6.1): WHISPER hashmap vs ctree, PMDK v1.5";
  let ops = max 1_000 (scale / 2) in
  let size = ops in
  let run_map () =
    let ctx = Backend.create Backend.Pmdk15 in
    let inst = Micro.map_setup ctx ~size in
    let rng = Backend.rng ctx in
    for _ = 1 to size / 2 do
      Micro.map_insert ctx inst (Random.State.int rng size) 1
    done;
    Backend.start_measuring ctx;
    for _ = 1 to ops do
      Backend.op_pause ctx;
      let k = Random.State.int rng size in
      if Random.State.bool rng then Micro.map_insert ctx inst k 2
      else Micro.map_lookup ctx inst k
    done;
    (Backend.stats ctx).Pmem.Stats.now_ns
  in
  let run_ctree () =
    let ctx = Backend.create Backend.Pmdk15 in
    let tx = Backend.tx ctx in
    let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_ctree.create tx) in
    let heap = Backend.heap ctx in
    let rng = Backend.rng ctx in
    (* same 32-byte blob values as the hashmap baseline *)
    let value v = Pfds.Kv.String_blob.write heap (Printf.sprintf "%032d" v) in
    for _ = 1 to size / 2 do
      Pmstm.Tx.run tx (fun () ->
          ignore
            (Pmstm.Pm_ctree.insert tx desc (Random.State.int rng size)
               (value 1)
              : bool))
    done;
    Backend.start_measuring ctx;
    for _ = 1 to ops do
      Backend.op_pause ctx;
      let k = Random.State.int rng size in
      if Random.State.bool rng then
        Pmstm.Tx.run tx (fun () ->
            ignore (Pmstm.Pm_ctree.insert tx desc k (value 2) : bool))
      else ignore (Pmstm.Pm_ctree.find heap desc k : Pmem.Word.t option)
    done;
    (Backend.stats ctx).Pmem.Stats.now_ns
  in
  let t_map = run_map () and t_ctree = run_ctree () in
  Printf.printf "  hashmap  %10.2f ms
  ctree    %10.2f ms
" (t_map /. 1e6)
    (t_ctree /. 1e6);
  Printf.printf
    "
headline: hashmap outperforms ctree by %.0f%% -- the paper compares
     MOD against hashmap for this reason (Section 6.1).
"
    (100.0 *. (t_ctree -. t_map) /. t_ctree);
  Report.Json.(
    Obj [ ("hashmap_sim_ns", Float t_map); ("ctree_sim_ns", Float t_ctree) ])

(* ------------------------------------------------------------------ *)
(* Serving layer: sharded zipfian throughput + crash independence      *)
(* ------------------------------------------------------------------ *)

(* Both runs use the deterministic Inline mode so the speedup is a pure
   function of (seed, nshards): sim_total(1 shard) is the
   serial-equivalent cost of the whole loop, sim_makespan(N shards) is
   the slowest shard's clock -- their ratio is the aggregate throughput
   gain hash partitioning buys under zipfian skew, independent of how
   many host cores the CI runner has. *)
let shard_section ~seed ~nshards ~baseline () =
  Report.section
    "Serving layer: sharded zipfian loop (sim speedup) + single-shard crashes";
  let requests = 8_000 in
  let theta = 0.99 in
  let run n =
    let t = Shard.create ~mode:Shard.Inline ~seed ~nshards:n () in
    let r =
      Shard.run_load ~theta ~seed ~warmup:(requests / 10) t ~requests ()
    in
    Shard.close t;
    r
  in
  let r1 = run 1 in
  let rn = run nshards in
  let speedup =
    r1.Shard.lr_sim_total_ns /. rn.Shard.lr_sim_makespan_ns
  in
  Printf.printf
    "zipfian theta=%.2f, %d requests: 1 shard %.3f sim-ms; %d shards \
     makespan %.3f sim-ms => %.2fx aggregate speedup (%.0f req/sim-s)\n"
    theta requests
    (r1.Shard.lr_sim_total_ns /. 1e6)
    nshards
    (rn.Shard.lr_sim_makespan_ns /. 1e6)
    speedup rn.Shard.lr_sim_req_s;
  Printf.printf "  shard  executed   sim ms    p50 ns   p99 ns\n";
  List.iter
    (fun m ->
      Printf.printf "  %5d  %8d  %7.3f  %8.0f %8.0f\n" m.Shard.m_id
        m.Shard.m_executed
        (m.Shard.m_sim_ns /. 1e6)
        m.Shard.m_p50_ns m.Shard.m_p99_ns)
    rn.Shard.lr_shards;
  (* crash independence is a hard gate, baseline or not *)
  let sw =
    Shard.crash_sweep ~nshards ~requests:160 ~keyspace:256 ~stride:97
      ~max_points:60 ~seed ()
  in
  Printf.printf
    "single-shard crash sweep: %d points, %d consistent, %d violations, %d \
     sibling perturbations\n"
    sw.Shard.sw_points sw.Shard.sw_consistent
    (List.length sw.Shard.sw_violations)
    sw.Shard.sw_sibling_mismatches;
  if not (Shard.sweep_ok sw) then begin
    List.iter
      (fun v -> Printf.eprintf "SHARD SWEEP FAIL: %s\n" v)
      sw.Shard.sw_violations;
    Printf.eprintf "SHARD SWEEP: crash independence violated\n";
    exit 1
  end;
  (match baseline with
  | None -> ()
  | Some path -> (
      let open Report.Json in
      match
        Option.bind
          (Option.bind (member "shard" (of_file path))
             (member "min_sim_speedup"))
          to_number_opt
      with
      | exception Sys_error e ->
          Printf.eprintf "baseline %s unreadable: %s\n" path e;
          exit 1
      | exception Parse_error e ->
          Printf.eprintf "baseline %s: bad JSON: %s\n" path e;
          exit 1
      | None ->
          Printf.eprintf "baseline %s has no shard.min_sim_speedup\n" path;
          exit 1
      | Some bound ->
          Printf.printf "sim speedup %.2fx (baseline floor %.2fx)\n" speedup
            bound;
          if speedup < bound then begin
            Printf.eprintf
              "SHARD REGRESSION: %d-shard sim speedup %.2fx is below the \
               committed floor %.2fx\n"
              nshards speedup bound;
            exit 1
          end));
  print_endline "shard serving gate: ok";
  Report.Json.(
    Obj
      [
        ("nshards", Int nshards);
        ("requests", Int requests);
        ("theta", Float theta);
        ("seed", Int seed);
        ("sim_total_1shard_ns", Float r1.Shard.lr_sim_total_ns);
        ("sim_makespan_ns", Float rn.Shard.lr_sim_makespan_ns);
        ("sim_speedup", Float speedup);
        ("agg_req_per_sim_s", Float rn.Shard.lr_sim_req_s);
        ("sweep_points", Int sw.Shard.sw_points);
        ("sweep_violations", Int (List.length sw.Shard.sw_violations));
        ( "sweep_sibling_mismatches",
          Int sw.Shard.sw_sibling_mismatches );
        ( "shards",
          List
            (List.map
               (fun m ->
                 Obj
                   [
                     ("id", Int m.Shard.m_id);
                     ("executed", Int m.Shard.m_executed);
                     ("sim_ns", Float m.Shard.m_sim_ns);
                     ("p50_ns", Float m.Shard.m_p50_ns);
                     ("p99_ns", Float m.Shard.m_p99_ns);
                   ])
               rn.Shard.lr_shards) );
      ])

(* ------------------------------------------------------------------ *)
(* Bechamel: host wall-clock of the simulator itself                   *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  Report.section
    "Bechamel: host wall-clock per operation (simulator overhead included)";
  let open Bechamel in
  let open Toolkit in
  let make_map_test backend =
    let ctx = Backend.create backend in
    let inst = Micro.map_setup ctx ~size:10_000 in
    let rng = Backend.rng ctx in
    for _ = 1 to 5_000 do
      Micro.map_insert ctx inst (Random.State.int rng 10_000) 7
    done;
    Test.make
      ~name:(Backend.kind_name backend)
      (Staged.stage (fun () ->
           Micro.map_insert ctx inst (Random.State.int rng 10_000) 7))
  in
  let make_queue_test backend =
    let ctx = Backend.create backend in
    let inst = Micro.queue_setup ctx in
    for i = 1 to 1_000 do
      Micro.queue_push ctx inst i
    done;
    Test.make
      ~name:(Backend.kind_name backend)
      (Staged.stage (fun () ->
           Micro.queue_push ctx inst 1;
           Micro.queue_pop ctx inst))
  in
  let grouped =
    Test.make_grouped ~name:"ops"
      [
        Test.make_grouped ~name:"map-insert"
          (List.map make_map_test Backend.all_kinds);
        Test.make_grouped ~name:"queue-push-pop"
          (List.map make_queue_test Backend.all_kinds);
      ]
  in
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> acc)
      results []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %12.0f ns/op (host)\n" name est)
    rows;
  Report.Json.(
    Obj (List.map (fun (name, est) -> (name, Float est)) rows))

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref default_scale in
  let json_out = ref None in
  let baseline = ref None in
  let seed = ref 42 in
  let shards = ref 4 in
  let sections = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
        scale := int_of_string n;
        parse rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | "--shards" :: n :: rest ->
        shards := int_of_string n;
        parse rest
    | "--full" :: rest ->
        scale := 1_000_000;
        parse rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse args;
  let sections = if !sections = [] then [ "all" ] else List.rev !sections in
  let wants s = List.mem s sections || List.mem "all" sections in
  let scale = !scale in
  print_endline (Pmem.Config.describe ());
  Printf.printf "\nworkload scale: %d operations (paper: 1,000,000)\n" scale;
  let t_start = Unix.gettimeofday () in
  let results = lazy (sweep ~scale) in
  (* Each section renders its terminal figure and hands back a JSON
     payload (Null for the pure views over the shared sweep, whose data
     lands in the top-level "sweep" array). *)
  let collected = ref [] in
  let run name enabled f =
    if enabled then begin
      let t0 = Unix.gettimeofday () in
      let payload = f () in
      let dt = Unix.gettimeofday () -. t0 in
      collected := (name, dt, payload) :: !collected
    end
  in
  let unit_section f () = f (); Report.Json.Null in
  run "fig4" (wants "fig4") fig4;
  run "fig2" (wants "fig2") (unit_section (fun () -> fig2 (Lazy.force results)));
  run "fig9" (wants "fig9") (unit_section (fun () -> fig9 (Lazy.force results)));
  run "fig10" (wants "fig10") (unit_section fig10);
  run "fig11" (wants "fig11")
    (unit_section (fun () -> fig11 (Lazy.force results)));
  run "table3" (wants "table3") (fun () -> table3 ~scale);
  run "batch" (wants "batch")
    (batch_section ~scale:(min scale 20_000) ~baseline:!baseline);
  run "telemetry" (wants "telemetry")
    (telemetry_section ~scale:(min scale 10_000) ~baseline:!baseline);
  run "faults" (wants "faults") (fun () -> faults_section ());
  run "persist" (wants "persist")
    (persist_section ~scale:(min scale 10_000) ~baseline:!baseline);
  run "killtest" (wants "killtest") (killtest_section ~baseline:!baseline);
  run "alloc" (wants "alloc") (alloc_section ~scale ~baseline:!baseline);
  run "shard" (wants "shard")
    (shard_section ~seed:!seed ~nshards:!shards ~baseline:!baseline);
  run "ctree" (wants "ctree") (fun () -> ctree ~scale);
  run "ablations" (wants "ablations") (fun () -> ablations ~scale);
  run "bechamel" (wants "bechamel") (fun () -> bechamel ());
  (match !json_out with
  | None -> ()
  | Some path ->
      let open Report.Json in
      let sweep_json =
        if Lazy.is_val results then
          List
            (List.concat_map
               (fun (_, per_backend) ->
                 List.map (fun (_, r) -> runner_json r) per_backend)
               (Lazy.force results))
        else List []
      in
      let section_json =
        List
          (List.rev_map
             (fun (name, dt, payload) ->
               let fields =
                 [ ("name", String name); ("wall_seconds", Float dt) ]
               in
               Obj
                 (match payload with
                 | Null -> fields
                 | p -> fields @ [ ("data", p) ]))
             !collected)
      in
      let doc =
        Obj
          [
            ("schema", String "modpm-bench/1");
            ("scale", Int scale);
            ("wall_seconds", Float (Unix.gettimeofday () -. t_start));
            ("sections", section_json);
            ("sweep", sweep_json);
          ]
      in
      to_file path doc;
      Printf.printf "\nwrote %s\n" path);
  Printf.printf "\ndone.\n"
