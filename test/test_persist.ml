(* Differential crash testing for the "don't persist all" Backup commit
   policy (paper Section 6): a structure committed with
   [~persist:Backup] flushes only its backup data -- a bounded op log
   hanging off a descriptor -- and recovery reconstructs the interior
   nodes by replaying the log.  The proof obligation is equivalence with
   the Full policy: for every structure, every operation prefix and
   every crash point, the Backup-policy recovery must dump a state the
   Full-policy structure reproduces exactly, and recovery must never
   raise.

   Also here: the Backup-specific fsck story (interior-absent images are
   Clean; a corrupted log line is Corrupt; --repair output reopens) and
   a real kill-9 slice under the Backup policy. *)

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let temp_image () = Filename.temp_file "mod_test_persist" ".img"

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  let j = path ^ ".journal" in
  if Sys.file_exists j then Sys.remove j

(* -- differential property ------------------------------------------------ *)

let modes =
  [|
    Pmem.Region.Drop_inflight; Pmem.Region.Keep_inflight;
    Pmem.Region.Randomize;
  |]

let cfg = { Crashtest.Explorer.default with log = ignore }

(* Total PM events of a complete Backup-policy run, to scale crash
   points into range. *)
let backup_events ~name ~ops =
  let w = Crashtest.Workload.build ~persist:Pmalloc.Heap.Backup name ~ops in
  match Crashtest.Explorer.run_until cfg w ~budget:None with
  | `Completed (events, _heap) -> events
  | `Crashed _ -> Alcotest.fail "uncrashed run reported a crash"

(* The Full-policy structure's dump after exactly [k] operations of the
   shared script: the ground truth a Backup recovery must match. *)
let full_dump_after ~name ~ops k =
  let w = Crashtest.Workload.build name ~ops in
  let heap =
    Pmalloc.Heap.create ~capacity_words:cfg.Crashtest.Explorer.capacity_words
      ~seed:cfg.Crashtest.Explorer.heap_seed ()
  in
  let inst = w.Crashtest.Workload.make heap in
  inst.Crashtest.Workload.init ();
  for i = 0 to k - 1 do
    inst.Crashtest.Workload.run_op i
  done;
  inst.Crashtest.Workload.dump ()

let diff_gen =
  QCheck.Gen.(
    let* name = oneofl Crashtest.Workload.basic_names in
    let* ops = int_range 5 14 in
    let* frac = int_range 1 1000 in
    let* mode = int_range 0 2 in
    let* sseed = int_range 0 9999 in
    return (name, ops, frac, mode, sseed))

let print_diff_case (name, ops, frac, mode, sseed) =
  Printf.sprintf "%s ops=%d frac=%d/1000 mode=%s seed=%d" name ops frac
    (Crashtest.Explorer.mode_name modes.(mode))
    sseed

(* For (structure x prefix x crash point x crash mode): crash the
   Backup-policy run, recover, and require (1) recovery and dump never
   raise, (2) the oracle accepts the state, (3) the state is a model
   prefix, and (4) the Full-policy structure replayed to that prefix
   dumps the identical string. *)
let differential_property =
  QCheck.Test.make ~count:40
    ~name:"backup recovery dump == full-policy dump of the same prefix"
    (QCheck.make ~print:print_diff_case diff_gen)
    (fun (name, ops, frac, mode, sseed) ->
      let events = backup_events ~name ~ops in
      let budget = 1 + (frac * (events - 1) / 1000) in
      let w =
        Crashtest.Workload.build ~persist:Pmalloc.Heap.Backup name ~ops
      in
      match Crashtest.Explorer.run_until cfg w ~budget:(Some budget) with
      | `Completed (_, heap) ->
          (* budget past the last event: compare final states instead *)
          let inst = w.Crashtest.Workload.make heap in
          let s = inst.Crashtest.Workload.dump () in
          let full = full_dump_after ~name ~ops ops in
          if s <> full then
            QCheck.Test.fail_reportf
              "completed backup run dumps %s, full dumps %s" s full;
          true
      | `Crashed c ->
          let mode = modes.(mode) in
          let seed =
            match mode with
            | Pmem.Region.Randomize -> Some sseed
            | _ -> None
          in
          Pmalloc.Heap.crash ~mode ?seed c.Crashtest.Explorer.c_heap;
          (match Crashtest.Explorer.recover_and_check c with
          | Crashtest.Oracle.Consistent -> ()
          | Crashtest.Oracle.Violation d ->
              QCheck.Test.fail_reportf "oracle violation @ event %d: %s"
                budget d);
          let s =
            match c.Crashtest.Explorer.c_inst.Crashtest.Workload.dump () with
            | s -> s
            | exception e ->
                QCheck.Test.fail_reportf "post-recovery dump raised: %s"
                  (Printexc.to_string e)
          in
          let k = ref None in
          Array.iteri
            (fun i m -> if !k = None && m = s then k := Some i)
            w.Crashtest.Workload.model;
          let k =
            match !k with
            | Some k -> k
            | None ->
                QCheck.Test.fail_reportf
                  "recovered state %s matches no model prefix" s
          in
          let full = full_dump_after ~name ~ops k in
          if s <> full then
            QCheck.Test.fail_reportf
              "backup recovery dumps %s, full-policy prefix %d dumps %s" s k
              full;
          true)

(* -- policy plumbing ------------------------------------------------------ *)

let policy_tests =
  [
    Alcotest.test_case "policy word survives close/reopen" `Quick (fun () ->
        let path = temp_image () in
        let heap =
          Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path ()
        in
        let m =
          Imap.open_or_create ~persist:Pmalloc.Heap.Backup heap ~slot:0
        in
        Imap.insert m 1 10;
        Alcotest.(check bool) "policy is Backup" true
          (Pmalloc.Heap.get_policy heap 0 = Pmalloc.Heap.Backup);
        Pmalloc.Heap.close heap;
        (match Mod_core.Recovery.open_file ~path () with
        | Error e -> Alcotest.failf "reopen: %s" (Mod_core.Error.to_string e)
        | Ok o ->
            let heap = o.Mod_core.Recovery.heap in
            Alcotest.(check bool) "policy survives reopen" true
              (Pmalloc.Heap.get_policy heap 0 = Pmalloc.Heap.Backup);
            let m = Imap.open_or_create heap ~slot:0 in
            Alcotest.(check int) "replayed entry" 10
              (Option.get (Imap.find m 1));
            Pmalloc.Heap.close heap);
        cleanup path);
    Alcotest.test_case "full reopen of a Backup slot is rejected" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) () in
        ignore (Imap.open_or_create ~persist:Pmalloc.Heap.Backup heap ~slot:0);
        match
          Imap.open_or_create ~persist:Pmalloc.Heap.Full heap ~slot:0
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "demotion to Full accepted silently");
    Alcotest.test_case "log overflow checkpoints and keeps going" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 16) () in
        let m =
          Imap.open_or_create ~persist:Pmalloc.Heap.Backup heap ~slot:0
        in
        (* push well past the log capacity to force checkpoints *)
        let n = (3 * Pmalloc.Backup.log_capacity) + 5 in
        for k = 1 to n do
          Imap.insert m k (k * 2)
        done;
        Alcotest.(check int) "all entries live" n (Imap.cardinal m);
        (* recovery after the volatile state is dropped still replays *)
        ignore (Mod_core.Recovery.recover_exn heap);
        Imap.reconstruct heap ~slot:0;
        Alcotest.(check int) "all entries after recovery" n (Imap.cardinal m));
    Alcotest.test_case "multi-slot batch commit rejects Backup slots" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) () in
        ignore (Imap.open_or_create ~persist:Pmalloc.Heap.Backup heap ~slot:0);
        ignore (Imap.open_or_create heap ~slot:1);
        let b = Mod_core.Batch.create heap in
        Mod_core.Batch.stage b ~slot:0 (fun v ->
            Imap.insert_pure heap v 1 1);
        Mod_core.Batch.stage b ~slot:1 (fun v ->
            Imap.insert_pure heap v 2 2);
        match Mod_core.Batch.commit b with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "CommitUnrelated over a Backup slot accepted");
  ]

(* -- fsck on Backup images ------------------------------------------------ *)

let fsck_tests =
  [
    Alcotest.test_case "interior-absent Backup image is Clean" `Quick
      (fun () ->
        let path = temp_image () in
        let heap =
          Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path ()
        in
        let m =
          Imap.open_or_create ~persist:Pmalloc.Heap.Backup heap ~slot:0
        in
        for k = 1 to 20 do
          Imap.insert m k (k * 7)
        done;
        (* the live tree root: an interior node the Backup policy never
           flushed, so the image file must hold zeros at its address *)
        let root_body =
          Pmem.Word.to_ptr (Mod_core.Commit.current_of heap ~slot:0)
        in
        Pmalloc.Heap.close heap;
        Alcotest.(check int) "interior node absent from the image" 0
          (Pmem.Backing.peek_word ~path ~index:root_body);
        let r = Pmalloc.Fsck.check path in
        Alcotest.(check string) "fsck verdict" "clean"
          (Pmalloc.Fsck.verdict_name r.Pmalloc.Fsck.verdict);
        (* and the log replays the whole map back *)
        (match Mod_core.Recovery.open_file ~path () with
        | Error e -> Alcotest.failf "reopen: %s" (Mod_core.Error.to_string e)
        | Ok o ->
            let heap = o.Mod_core.Recovery.heap in
            let m = Imap.open_or_create heap ~slot:0 in
            Alcotest.(check int) "cardinal" 20 (Imap.cardinal m);
            Alcotest.(check int) "value" 70 (Option.get (Imap.find m 10));
            Pmalloc.Heap.close heap);
        cleanup path);
    Alcotest.test_case "corrupted backup log is Corrupt; repair reopens"
      `Quick (fun () ->
        let path = temp_image () in
        let heap =
          Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path ()
        in
        let m =
          Imap.open_or_create ~persist:Pmalloc.Heap.Backup heap ~slot:0
        in
        for k = 1 to 8 do
          Imap.insert m k k
        done;
        (* the log block is backup data: it IS in the image, so tearing
           one of its words must trip the image checksum *)
        let log_body =
          match Pmalloc.Heap.backup_state heap 0 with
          | Some st -> st.Pmalloc.Heap.b_log
          | None -> Alcotest.fail "no backup state on a Backup slot"
        in
        Pmalloc.Heap.close heap;
        let index = Pmalloc.Backup.first_entry_off log_body in
        let v = Pmem.Backing.peek_word ~path ~index in
        Alcotest.(check bool) "log entry present in the image" true (v <> 0);
        Pmem.Backing.poke_word ~path ~index (v lxor 0x55AA);
        let r = Pmalloc.Fsck.check path in
        Alcotest.(check string) "fsck verdict" "corrupt"
          (Pmalloc.Fsck.verdict_name r.Pmalloc.Fsck.verdict);
        let r' = Pmalloc.Fsck.repair path in
        Alcotest.(check bool) "repair not corrupt" true
          (r'.Pmalloc.Fsck.verdict <> Pmalloc.Fsck.Corrupt);
        (match Mod_core.Recovery.open_file ~path () with
        | Ok o -> Pmalloc.Heap.close o.Mod_core.Recovery.heap
        | Error e ->
            Alcotest.failf "repaired image does not reopen: %s"
              (Mod_core.Error.to_string e));
        cleanup path);
  ]

(* -- flush accounting ----------------------------------------------------- *)

let flush_tests =
  [
    Alcotest.test_case "backup strictly reduces flushes/op" `Quick (fun () ->
        let flushes persist =
          let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
          let m = Imap.open_or_create ?persist heap ~slot:0 in
          let stats = Pmalloc.Heap.stats heap in
          let before = stats.Pmem.Stats.clwbs in
          for k = 1 to 200 do
            Imap.insert m k k
          done;
          stats.Pmem.Stats.clwbs - before
        in
        let full = flushes None in
        let backup = flushes (Some Pmalloc.Heap.Backup) in
        Alcotest.(check bool)
          (Printf.sprintf "backup %d < full %d clwbs" backup full)
          true
          (backup < full));
  ]

(* -- real kill-9 under Backup --------------------------------------------- *)

let kill9_tests =
  [
    Alcotest.test_case "kill9: vec sweep under Backup has no violations"
      `Slow (fun () ->
        let r =
          Crashtest.Kill9.run ~ops:30 ~seed:13
            ~persist:Pmalloc.Heap.Backup ~workload:"vec" ~kills:6 ()
        in
        Alcotest.(check int) "violations" 0 r.Crashtest.Kill9.violations;
        Alcotest.(check int) "escaped" 0 r.Crashtest.Kill9.escaped;
        Alcotest.(check bool) "calibration run completed" true
          (r.Crashtest.Kill9.completed_runs >= 1));
  ]

let () =
  Alcotest.run "persist"
    [
      ("policy", policy_tests);
      ("fsck-backup", fsck_tests);
      ("flushes", flush_tests);
      ( "differential",
        [ QCheck_alcotest.to_alcotest ~long:true differential_property ] );
      ("kill9-backup", kill9_tests);
    ]
