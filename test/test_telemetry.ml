(* Tests for the telemetry layer: histogram bucketing and percentiles,
   span attribution (sums to the global fence-stall counter, nested-span
   suppression, null sink, foreign heaps, stats-reset rebase), and the
   JSON / Prometheus exporters. *)

module H = Telemetry.Histogram

let mk_heap ?(capacity = 1 lsl 18) () =
  Pmalloc.Heap.create ~capacity_words:capacity ()

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let gauges_of heap =
  let a = Pmalloc.Heap.allocator heap in
  fun () ->
    {
      Telemetry.g_live_words = Pmalloc.Allocator.live_words a;
      g_free_words = Pmalloc.Allocator.free_words a;
      g_deferred_words = Pmalloc.Allocator.deferred_words a;
      g_high_water_words = Pmalloc.Allocator.high_water_words a;
      g_alloc_words_total = Pmalloc.Allocator.alloc_words_total a;
    }

(* Always leave the process-wide collector clean, even on failure. *)
let with_collector ?(sink = Telemetry.Sink.Memory) heap f =
  let c =
    Telemetry.install ~sink ~gauges:(gauges_of heap)
      (Pmalloc.Heap.stats heap)
  in
  Fun.protect ~finally:Telemetry.uninstall (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_hist_bucketing () =
  let h = H.create () in
  List.iter (fun v -> H.add h v) [ 1.0; 2.0; 3.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 1006.0 (H.sum h);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (H.max_value h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (H.min_value h);
  let buckets = H.buckets h in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  Alcotest.(check int) "bucket counts sum to count" 4 total;
  (* upper bounds are powers of two, ascending *)
  let rec ascending = function
    | (u1, _) :: ((u2, _) :: _ as rest) ->
        Alcotest.(check bool) "ascending bounds" true (u1 < u2);
        ascending rest
    | _ -> ()
  in
  ascending buckets;
  List.iter
    (fun (u, _) ->
      Alcotest.(check (float 1e-9)) "power-of-two bound" u
        (Float.round (Float.log2 u) |> Float.to_int |> ldexp 1.0))
    buckets

let test_hist_percentiles () =
  let h = H.create () in
  for i = 1 to 1000 do
    H.add h (float_of_int i)
  done;
  let p50 = H.percentile h 0.50 and p99 = H.percentile h 0.99 in
  (* log-bucketed: percentiles land inside the right power-of-two bucket *)
  Alcotest.(check bool) "p50 within (256, 1000]" true (p50 > 256.0 && p50 <= 1000.0);
  Alcotest.(check bool) "p99 within (512, 1000]" true (p99 > 512.0 && p99 <= 1000.0);
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 1000.0 (H.percentile h 1.0);
  let single = H.create () in
  H.add single 42.0;
  Alcotest.(check (float 1e-9)) "single-sample p50 = the sample" 42.0
    (H.percentile single 0.5);
  Alcotest.(check (float 1e-9)) "empty percentile is 0" 0.0
    (H.percentile (H.create ()) 0.5);
  H.add single (-5.0);
  Alcotest.(check (float 1e-9)) "negatives clamp to 0 bucket" 0.0
    (H.min_value single)

let test_hist_merge () =
  let a = H.create () and b = H.create () in
  List.iter (H.add a) [ 1.0; 10.0 ];
  List.iter (H.add b) [ 100.0; 1000.0 ];
  H.merge ~into:a b;
  Alcotest.(check int) "merged count" 4 (H.count a);
  Alcotest.(check (float 1e-9)) "merged max" 1000.0 (H.max_value a);
  Alcotest.(check (float 1e-9)) "merged min" 1.0 (H.min_value a)

(* ------------------------------------------------------------------ *)
(* Span attribution                                                   *)
(* ------------------------------------------------------------------ *)

let run_map_ops heap n =
  let m = Imap.open_or_create heap ~slot:0 in
  for i = 1 to n do
    Imap.insert m i (i * 2)
  done;
  Imap.insert_many m (List.init n (fun i -> (n + i, i)));
  for i = 1 to n do
    ignore (Imap.find m i)
  done

let test_attribution_sums () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      run_map_ops heap 64;
      let r = Telemetry.report c in
      Alcotest.(check bool) "has rows" true (r.Telemetry.rows <> []);
      let gap =
        Float.abs
          (r.Telemetry.attributed_fence_stall_ns
          +. r.Telemetry.unattributed_fence_stall_ns
          -. r.Telemetry.total_fence_stall_ns)
      in
      Alcotest.(check bool) "attributed + unattributed = total" true
        (gap <= 1e-6);
      (* every insert goes through a span, so with all work spanned the
         unattributed remainder is exactly zero *)
      Alcotest.(check (float 1e-6)) "all stalls attributed" 0.0
        r.Telemetry.unattributed_fence_stall_ns;
      Alcotest.(check bool) "some stall was recorded" true
        (r.Telemetry.total_fence_stall_ns > 0.0);
      (* the row sum also matches the raw stats counter *)
      let stats = Pmalloc.Heap.stats heap in
      Alcotest.(check (float 1e-6)) "total matches Pmem.Stats.ns_flush"
        stats.Pmem.Stats.ns_flush r.Telemetry.total_fence_stall_ns)

let test_unattributed_remainder () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      (* stall outside any span: flush a line by hand *)
      let region = Pmalloc.Heap.region heap in
      Pmem.Region.store region 512 (Pmem.Word.of_int 1);
      Pmem.Region.clwb region 512;
      Pmem.Region.sfence region;
      run_map_ops heap 16;
      let r = Telemetry.report c in
      Alcotest.(check bool) "unattributed > 0" true
        (r.Telemetry.unattributed_fence_stall_ns > 0.0);
      let gap =
        Float.abs
          (r.Telemetry.attributed_fence_stall_ns
          +. r.Telemetry.unattributed_fence_stall_ns
          -. r.Telemetry.total_fence_stall_ns)
      in
      Alcotest.(check bool) "identity still holds" true (gap <= 1e-6))

let test_nested_spans () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      let stats = Pmalloc.Heap.stats heap in
      Telemetry.span stats ~structure:"outer" ~op:"op" (fun () ->
          Telemetry.span stats ~structure:"inner" ~op:"op" (fun () ->
              run_map_ops heap 4));
      let r = Telemetry.report c in
      let names =
        List.map (fun row -> row.Telemetry.r_structure) r.Telemetry.rows
      in
      Alcotest.(check (list string)) "only the outermost span records"
        [ "outer" ] names)

let test_batched_ops_count () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      let m = Imap.open_or_create heap ~slot:0 in
      Imap.insert_many m (List.init 32 (fun i -> (i, i)));
      let r = Telemetry.report c in
      let row =
        List.find
          (fun row -> row.Telemetry.r_op = "insert_many")
          r.Telemetry.rows
      in
      Alcotest.(check int) "one span" 1 row.Telemetry.r_spans;
      Alcotest.(check int) "32 logical ops" 32 row.Telemetry.r_ops;
      Alcotest.(check bool) "shadow allocations recorded" true
        (row.Telemetry.r_shadow_alloc_words > 0))

let test_null_sink () =
  let heap = mk_heap () in
  with_collector ~sink:Telemetry.Sink.Null heap (fun c ->
      run_map_ops heap 16;
      let r = Telemetry.report c in
      Alcotest.(check bool) "null sink aggregates nothing" true
        (r.Telemetry.rows = []))

let test_foreign_heap () =
  let watched = mk_heap () and foreign = mk_heap () in
  with_collector watched (fun c ->
      (* all work happens on a heap the collector does not watch *)
      run_map_ops foreign 16;
      let r = Telemetry.report c in
      Alcotest.(check bool) "foreign spans ignored" true
        (r.Telemetry.rows = []);
      Alcotest.(check (float 1e-9)) "no stall charged" 0.0
        r.Telemetry.total_fence_stall_ns)

let test_stats_reset_rebase () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      run_map_ops heap 32;
      (* measurement restart under the collector, Backend-style *)
      Pmem.Stats.reset (Pmalloc.Heap.stats heap);
      Telemetry.on_stats_reset (Pmalloc.Heap.stats heap);
      let m = Imap.open_or_create heap ~slot:0 in
      Imap.insert m 999 1;
      let r = Telemetry.report c in
      Alcotest.(check bool) "totals rebased (no negative stall)" true
        (r.Telemetry.total_fence_stall_ns >= 0.0);
      let gap =
        Float.abs
          (r.Telemetry.attributed_fence_stall_ns
          +. r.Telemetry.unattributed_fence_stall_ns
          -. r.Telemetry.total_fence_stall_ns)
      in
      Alcotest.(check bool) "identity holds after reset" true (gap <= 1e-6))

let test_gauges_sampled () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      run_map_ops heap 16;
      let r = Telemetry.report c in
      match r.Telemetry.last_gauges with
      | None -> Alcotest.fail "no gauges sampled"
      | Some g ->
          Alcotest.(check bool) "live words > 0" true
            (g.Telemetry.g_live_words > 0);
          Alcotest.(check bool) "alloc total >= live" true
            (g.Telemetry.g_alloc_words_total >= g.Telemetry.g_live_words))

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let report_of_run () =
  let heap = mk_heap () in
  with_collector heap (fun c ->
      run_map_ops heap 64;
      Telemetry.report c)

let test_json_roundtrip () =
  let r = report_of_run () in
  let open Workloads.Report.Json in
  let doc = of_string (Telemetry.Export.to_json r) in
  Alcotest.(check (option string))
    "schema tag" (Some "modpm-telemetry-v1")
    (Option.bind (member "schema" doc) to_string_opt);
  let num path v =
    match Option.bind (member path doc) (member v) with
    | Some j -> Option.get (to_number_opt j)
    | None -> Alcotest.failf "missing %s.%s" path v
  in
  let total = num "totals" "fence_stall_ns"
  and attributed = num "totals" "attributed_fence_stall_ns"
  and unattributed = num "totals" "unattributed_fence_stall_ns" in
  Alcotest.(check bool) "attribution identity in JSON" true
    (Float.abs (attributed +. unattributed -. total) <= 1e-6);
  let rows =
    match Option.bind (member "rows" doc) to_list_opt with
    | Some rows -> rows
    | None -> Alcotest.fail "no rows array"
  in
  Alcotest.(check int) "row count matches report" (List.length r.Telemetry.rows)
    (List.length rows);
  List.iter
    (fun row ->
      let lat =
        match member "latency" row with
        | Some l -> l
        | None -> Alcotest.fail "row without latency"
      in
      let get k =
        match Option.bind (member k lat) to_number_opt with
        | Some v -> v
        | None -> Alcotest.failf "latency without %s" k
      in
      let count = get "count" in
      Alcotest.(check bool) "p50 <= p99 <= max" true
        (get "p50_ns" <= get "p99_ns" && get "p99_ns" <= get "max_ns");
      let bucket_total =
        match Option.bind (member "buckets" lat) to_list_opt with
        | None -> Alcotest.fail "latency without buckets"
        | Some bs ->
            List.fold_left
              (fun acc b ->
                acc
                +.
                match Option.bind (member "count" b) to_number_opt with
                | Some v -> v
                | None -> Alcotest.fail "bucket without count")
              0.0 bs
      in
      Alcotest.(check (float 1e-9)) "buckets sum to count" count bucket_total)
    rows

let test_prometheus_export () =
  let r = report_of_run () in
  let text = Telemetry.Export.to_prometheus r in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec scan i =
      i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (has needle))
    [
      "# TYPE modpm_op_latency_ns histogram";
      "le=\"+Inf\"";
      "modpm_fence_stall_ns{structure=\"_unattributed\"";
      "modpm_fence_stall_total_ns";
      "modpm_ops_total";
      "modpm_cache_hit_rate";
      "modpm_allocator_words";
      "structure=\"dmap\"";
    ];
  (* every line is either a comment or "name{labels} value" / "name value" *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           Alcotest.(check bool)
             (Printf.sprintf "line has a value: %S" line)
             true
             (String.contains line ' '))

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_hist_bucketing;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "sums to global counter" `Quick
            test_attribution_sums;
          Alcotest.test_case "unattributed remainder" `Quick
            test_unattributed_remainder;
          Alcotest.test_case "nested spans suppressed" `Quick
            test_nested_spans;
          Alcotest.test_case "batched ops counted" `Quick
            test_batched_ops_count;
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "foreign heap ignored" `Quick test_foreign_heap;
          Alcotest.test_case "stats reset rebases" `Quick
            test_stats_reset_rebase;
          Alcotest.test_case "gauges sampled" `Quick test_gauges_sampled;
        ] );
      ( "export",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
        ] );
    ]
