(* Crash-injection integration tests: power failures at arbitrary points,
   under every crash mode, must leave every MOD datastructure in exactly a
   pre- or post-FASE state (Section 5.2), with all leaks reclaimed and the
   heap ready for more work. *)

let w = Pmem.Word.of_int
let uw v = Pmem.Word.to_int v

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)
module IntMap = Map.Make (Int)

let modes =
  [ Pmem.Region.Drop_inflight; Pmem.Region.Keep_inflight; Pmem.Region.Randomize ]

(* Read the full contents of the map into an IntMap. *)
let dump m = Imap.fold m IntMap.add IntMap.empty

(* Atomicity under repeated crashes: after each crash the recovered state
   must equal the model just before or just after the last FASE (the final
   root write may still be in flight; everything older is fenced). *)
let crash_recover_map_rounds ~seed ~rounds =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
  let rng = Random.State.make [| seed |] in
  let m = ref (Imap.open_or_create heap ~slot:0) in
  let model = ref IntMap.empty in
  let prev_model = ref IntMap.empty in
  for round = 1 to rounds do
    let batch = 1 + Random.State.int rng 15 in
    for _ = 1 to batch do
      let k = Random.State.int rng 40 in
      if Random.State.bool rng then begin
        let v = Random.State.int rng 1000 in
        Imap.insert !m k v;
        prev_model := !model;
        model := IntMap.add k v !model
      end
      else if Imap.remove !m k then begin
        (* only a committing operation advances the FASE history; a no-op
           remove never commits and cannot be "lost" by a crash *)
        prev_model := !model;
        model := IntMap.remove k !model
      end
    done;
    let mode = List.nth modes (Random.State.int rng 3) in
    ignore (Mod_core.Recovery.crash_and_recover_exn ~mode heap);
    let m' = Imap.open_or_create heap ~slot:0 in
    let actual = dump m' in
    let matches reference = IntMap.equal Int.equal actual reference in
    if not (matches !model || matches !prev_model) then
      Alcotest.failf "round %d: recovered state is neither pre- nor post-FASE"
        round;
    (* resume from whatever state actually survived *)
    model := actual;
    prev_model := actual;
    m := m'
  done

let map_crash_tests =
  [
    Alcotest.test_case "map survives 40 random crash/recover rounds" `Slow
      (fun () -> crash_recover_map_rounds ~seed:21 ~rounds:40);
    Alcotest.test_case "map crash rounds, second seed" `Slow (fun () ->
        crash_recover_map_rounds ~seed:77 ~rounds:40);
    Alcotest.test_case "crash mid-FASE never corrupts (all modes)" `Quick
      (fun () ->
        List.iter
          (fun mode ->
            let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
            let m = Imap.open_or_create heap ~slot:0 in
            for k = 0 to 29 do
              Imap.insert m k k
            done;
            Pmalloc.Heap.sfence heap;
            (* shadow under construction, commit never reached *)
            let shadow =
              Imap.insert_pure heap (Mod_core.Handle.current m) 999 1
            in
            ignore (shadow : Pmem.Word.t);
            ignore (Mod_core.Recovery.crash_and_recover_exn ~mode heap);
            let m' = Imap.open_or_create heap ~slot:0 in
            Alcotest.(check int) "all 30 keys" 30 (Imap.cardinal m');
            Alcotest.(check (option int)) "no phantom key" None
              (Imap.find m' 999))
          modes);
    Alcotest.test_case "heap usable for new work after each crash" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
        for round = 1 to 5 do
          let m = Imap.open_or_create heap ~slot:0 in
          for k = 0 to 19 do
            Imap.insert m (round * 100 + k) k
          done;
          Pmalloc.Heap.sfence heap;
          ignore (Mod_core.Recovery.crash_and_recover_exn heap)
        done;
        let m = Imap.open_or_create heap ~slot:0 in
        Alcotest.(check int) "all rounds' keys survive" 100 (Imap.cardinal m));
  ]

(* -- queue: no element duplicated or lost except the in-flight FASE ------- *)

let queue_crash_tests =
  [
    Alcotest.test_case "queue state is a FASE-boundary prefix" `Quick
      (fun () ->
        List.iter
          (fun mode ->
            let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
            let q = Mod_core.Dqueue.open_or_create heap ~slot:0 in
            for i = 1 to 50 do
              Mod_core.Dqueue.enqueue q (w i)
            done;
            for _ = 1 to 20 do
              ignore (Mod_core.Dqueue.dequeue q)
            done;
            (* state now: 21..50; last FASE (dequeue of 20) may be lost *)
            ignore (Mod_core.Recovery.crash_and_recover_exn ~mode heap);
            let q' = Mod_core.Dqueue.open_or_create heap ~slot:0 in
            let contents = List.map uw (Mod_core.Dqueue.to_list q') in
            let expect_post = List.init 30 (fun i -> i + 21) in
            let expect_pre = List.init 31 (fun i -> i + 20) in
            if contents <> expect_post && contents <> expect_pre then
              Alcotest.failf "queue recovered to an invalid state (%d elems)"
                (List.length contents))
          modes);
  ]

(* -- cross-datastructure atomicity ----------------------------------------- *)

let composition_crash_tests =
  [
    Alcotest.test_case
      "CommitUnrelated: element never duplicated or lost across crash" `Quick
      (fun () ->
        List.iter
          (fun mode ->
            let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
            let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
            let m1 = Imap.open_or_create heap ~slot:0 in
            let m2 = Imap.open_or_create heap ~slot:1 in
            for k = 0 to 19 do
              Imap.insert m1 k k
            done;
            (* move keys 0..9 one FASE at a time *)
            for k = 0 to 9 do
              let v1 = Mod_core.Handle.current m1 in
              let v2 = Mod_core.Handle.current m2 in
              let value = Option.get (Imap.find_in heap v1 k) in
              let v1', _ = Imap.remove_pure heap v1 k in
              let v2' = Imap.insert_pure heap v2 k value in
              Mod_core.Commit.unrelated heap tx [ (0, v1'); (1, v2') ]
            done;
            ignore (Mod_core.Recovery.crash_and_recover_exn ~stm:tx ~mode heap);
            let m1' = Imap.open_or_create heap ~slot:0 in
            let m2' = Imap.open_or_create heap ~slot:1 in
            (* every key must exist in exactly one map *)
            for k = 0 to 19 do
              let in1 = Imap.mem m1' k and in2 = Imap.mem m2' k in
              if in1 && in2 then Alcotest.failf "key %d duplicated" k;
              if (not in1) && not in2 then Alcotest.failf "key %d lost" k
            done)
          modes);
    Alcotest.test_case
      "CommitSiblings: reservation invariant holds across crash" `Quick
      (fun () ->
        List.iter
          (fun mode ->
            let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
            (* parent: field 0 = inventory map, field 1 = orders map *)
            let parent = Pfds.Node.alloc heap ~words:2 in
            Pfds.Node.set heap parent 0 (Imap.empty_version heap);
            Pfds.Node.set heap parent 1 (Imap.empty_version heap);
            Pfds.Node.finish heap parent;
            Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent);
            let field f =
              let p = Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 0) in
              Pfds.Node.get heap p f
            in
            (* stock 10 units of item 1 *)
            let inv = Imap.insert_pure heap (field 0) 1 10 in
            Mod_core.Commit.siblings heap ~slot:0 [ (0, inv) ];
            (* 6 reservations: each moves one unit from inventory to orders *)
            for o = 1 to 6 do
              let stock = Option.get (Imap.find_in heap (field 0) 1) in
              let inv' = Imap.insert_pure heap (field 0) 1 (stock - 1) in
              let orders' = Imap.insert_pure heap (field 1) o 1 in
              Mod_core.Commit.siblings heap ~slot:0 [ (0, inv'); (1, orders') ]
            done;
            ignore (Mod_core.Recovery.crash_and_recover_exn ~mode heap);
            (* conservation: remaining stock + orders placed = 10, exactly,
               in every crash mode -- the two map updates of a reservation
               are atomic because they share one parent swap *)
            let stock = Option.get (Imap.find_in heap (field 0) 1) in
            let orders = Imap.card_of heap (field 1) in
            Alcotest.(check int)
              (Printf.sprintf "stock %d + orders %d = 10" stock orders)
              10 (stock + orders))
          modes);
  ]

(* -- deterministic boundary sweep ------------------------------------------- *)

(* For every k, run exactly k FASEs, crash in the worst mode, recover, and
   require the state to be exactly after k or k-1 operations (the last
   root write's flush may still be in flight). *)
let boundary_sweep_tests =
  [
    Alcotest.test_case "crash after every FASE boundary (map, worst case)"
      `Quick (fun () ->
        for k = 0 to 40 do
          let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
          let m = Imap.open_or_create heap ~slot:0 in
          for i = 1 to k do
            Imap.insert m i (i * 10)
          done;
          ignore
            (Mod_core.Recovery.crash_and_recover_exn
               ~mode:Pmem.Region.Drop_inflight heap);
          let m' = Imap.open_or_create heap ~slot:0 in
          let n = Imap.cardinal m' in
          if not (n = k || n = k - 1) then
            Alcotest.failf "k=%d: recovered %d entries" k n;
          (* whatever survived is internally consistent *)
          for i = 1 to n do
            Alcotest.(check (option int))
              (Printf.sprintf "k=%d key %d" k i)
              (Some (i * 10))
              (Imap.find m' i)
          done
        done);
    Alcotest.test_case "crash after every FASE boundary (stack, best case)"
      `Quick (fun () ->
        for k = 0 to 40 do
          let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
          let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
          for i = 1 to k do
            Mod_core.Dstack.push s (w i)
          done;
          ignore
            (Mod_core.Recovery.crash_and_recover_exn
               ~mode:Pmem.Region.Keep_inflight heap);
          let s' = Mod_core.Dstack.open_or_create heap ~slot:0 in
          (* keep-inflight: the last root write's flush completes *)
          Alcotest.(check (list int))
            (Printf.sprintf "k=%d full stack" k)
            (List.init k (fun i -> k - i))
            (List.map uw (Mod_core.Dstack.to_list s'))
        done);
  ]

(* -- vector / set / priority queue / sequence -------------------------------- *)

(* The remaining MOD structures get the same coverage through the
   crash-point explorer: every PM event of a scripted run is interrupted
   under all three crash modes and the recovered state must sit inside
   the durable-linearizability window (plus the Section 5.4 trace check). *)
let explorer_crash_tests =
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "%s: exhaustive crash sweep, all modes" name)
        `Quick
        (fun () ->
          let w = Crashtest.Workload.build name ~ops:6 in
          let cfg =
            { Crashtest.Explorer.default with randomize_samples = 2 }
          in
          let r = Crashtest.Explorer.explore ~cfg w in
          Alcotest.(check int) "every crash point tested" 0
            r.Crashtest.Explorer.points_skipped;
          (match r.Crashtest.Explorer.trace_report with
          | Some rep ->
              Alcotest.(check bool) "Section 5.4 trace clean" true
                (Mod_core.Consistency.ok rep)
          | None -> ());
          if not (Crashtest.Explorer.ok r) then
            Alcotest.failf "%s: %d oracle violation(s), first: %s" name
              (List.length r.Crashtest.Explorer.failures)
              (Format.asprintf "%a" Crashtest.Explorer.pp_failure
                 (List.hd r.Crashtest.Explorer.failures))))
    [
      "vec"; "set"; "pqueue"; "seq"; "stack"; "queue"; "batched"; "siblings";
      "unrelated";
    ]

(* Negative-control parity: under the exact explorer configuration the
   positive sweeps run with, the deliberately ordering-broken workloads
   must still trip the oracle -- otherwise a passing sweep proves
   nothing. *)
let negative_parity_tests =
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "%s: oracle still catches it under sweep cfg" name)
        `Quick
        (fun () ->
          let w = Crashtest.Workload.build name ~ops:6 in
          let cfg =
            { Crashtest.Explorer.default with randomize_samples = 2 }
          in
          let r = Crashtest.Explorer.explore ~cfg w in
          Alcotest.(check bool) "workload is a negative control" true
            w.Crashtest.Workload.negative;
          if r.Crashtest.Explorer.failures = [] then
            Alcotest.failf
              "%s: negative control reported no oracle violations" name))
    Crashtest.Workload.negative_names

let () =
  Alcotest.run "crash"
    [
      ("map", map_crash_tests);
      ("queue", queue_crash_tests);
      ("composition", composition_crash_tests);
      ("boundary-sweep", boundary_sweep_tests);
      ("explorer", explorer_crash_tests);
      ("negative-parity", negative_parity_tests);
    ]
