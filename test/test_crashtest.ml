(* Tests for the exhaustive crash-point exploration engine: the PM-event
   crash scheduler, snapshot/restore, epoch-deferred reclamation, the
   durable-linearizability oracle, exhaustive sweeps over every workload,
   negative controls, and minimal-repro replay. *)

let mk_region () = Pmem.Region.create ~capacity_words:256 ~trace:true ~seed:7 ()

(* -- crash scheduler -------------------------------------------------------- *)

let scheduler_tests =
  [
    Alcotest.test_case "pm_events counts stores, clwbs and fences" `Quick
      (fun () ->
        let r = mk_region () in
        let base = Pmem.Region.pm_events r in
        Pmem.Region.store r 10 (Pmem.Word.of_int 1);
        Pmem.Region.store r 11 (Pmem.Word.of_int 2);
        Pmem.Region.clwb r 10;
        Pmem.Region.sfence r;
        Alcotest.(check int) "four events" 4 (Pmem.Region.pm_events r - base));
    Alcotest.test_case "crash fires after exactly the Nth event" `Quick
      (fun () ->
        let r = mk_region () in
        Pmem.Region.set_crash_after r 3;
        Pmem.Region.store r 10 (Pmem.Word.of_int 1);
        Pmem.Region.store r 11 (Pmem.Word.of_int 2);
        (match Pmem.Region.store r 12 (Pmem.Word.of_int 3) with
        | () -> Alcotest.fail "expected Crash_point on the third event"
        | exception Pmem.Region.Crash_point -> ());
        (* the budget disarms itself: further events run normally *)
        Pmem.Region.store r 13 (Pmem.Word.of_int 4));
    Alcotest.test_case "set_crash_after rejects non-positive budgets" `Quick
      (fun () ->
        let r = mk_region () in
        Alcotest.check_raises "zero budget"
          (Invalid_argument "Region.set_crash_after: budget must be positive")
          (fun () -> Pmem.Region.set_crash_after r 0));
    Alcotest.test_case "clear_crash_point disarms a pending budget" `Quick
      (fun () ->
        let r = mk_region () in
        Pmem.Region.set_crash_after r 1;
        Pmem.Region.clear_crash_point r;
        Pmem.Region.store r 10 (Pmem.Word.of_int 1));
    Alcotest.test_case "snapshot/restore round-trips the memory image" `Quick
      (fun () ->
        let r = mk_region () in
        Pmem.Region.store r 10 (Pmem.Word.of_int 41);
        Pmem.Region.clwb r 10;
        Pmem.Region.sfence r;
        let snap = Pmem.Region.snapshot r in
        Pmem.Region.store r 10 (Pmem.Word.of_int 99);
        Pmem.Region.store r 20 (Pmem.Word.of_int 7);
        Pmem.Region.restore r snap;
        Alcotest.(check int) "current word restored" 41
          (Pmem.Word.to_int (Pmem.Region.load r 10));
        Alcotest.(check int) "untouched word restored" 0
          (Pmem.Word.to_int (Pmem.Region.load r 20)));
    Alcotest.test_case "same survival seed yields the same crash image" `Quick
      (fun () ->
        let r = mk_region () in
        for i = 0 to 15 do
          Pmem.Region.store r (64 + i) (Pmem.Word.of_int i)
        done;
        Pmem.Region.clwb_range r 64 8;
        (* half flushed (in flight), half dirty: both survive by coin flip *)
        let snap = Pmem.Region.snapshot r in
        let image () =
          List.init 16 (fun i ->
              Pmem.Word.to_int (Pmem.Region.load r (64 + i)))
        in
        Pmem.Region.crash ~mode:Pmem.Region.Randomize ~seed:5 r;
        let first = image () in
        Pmem.Region.restore r snap;
        Pmem.Region.crash ~mode:Pmem.Region.Randomize ~seed:5 r;
        Alcotest.(check (list int)) "deterministic replay" first (image ());
        Alcotest.(check (option int)) "seed recorded" (Some 5)
          (Pmem.Region.last_crash_seed r));
  ]

(* -- epoch-deferred reclamation --------------------------------------------- *)

let deferral_tests =
  [
    Alcotest.test_case "released blocks wait for two fences" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 12) () in
        let alloc = Pmalloc.Heap.allocator heap in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:4 in
        let free_before = Pmalloc.Allocator.free_words alloc in
        Pmalloc.Heap.release heap a;
        Alcotest.(check bool) "left the live set" false
          (Pmalloc.Allocator.is_allocated alloc a);
        Alcotest.(check bool) "parked on the deferral pipeline" true
          (Pmalloc.Allocator.deferred_words alloc > 0);
        Alcotest.(check int) "not yet allocatable" free_before
          (Pmalloc.Allocator.free_words alloc);
        (* first fence: the root write that unlinked the block drains,
           but the stale ping-pong record copy may still reference it *)
        Pmalloc.Heap.sfence heap;
        Alcotest.(check bool) "still deferred after one fence" true
          (Pmalloc.Allocator.deferred_words alloc > 0);
        Alcotest.(check int) "still not allocatable" free_before
          (Pmalloc.Allocator.free_words alloc);
        (* second fence: the stale copy is retired too *)
        Pmalloc.Heap.sfence heap;
        Alcotest.(check int) "deferral pipeline drained" 0
          (Pmalloc.Allocator.deferred_words alloc);
        Alcotest.(check bool) "allocatable after two fences" true
          (Pmalloc.Allocator.free_words alloc > free_before));
    Alcotest.test_case "plain free stays immediate" `Quick (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 12) () in
        let alloc = Pmalloc.Heap.allocator heap in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:4 in
        let free_before = Pmalloc.Allocator.free_words alloc in
        Pmalloc.Heap.free heap a;
        Alcotest.(check int) "nothing deferred" 0
          (Pmalloc.Allocator.deferred_words alloc);
        Alcotest.(check bool) "immediately allocatable" true
          (Pmalloc.Allocator.free_words alloc > free_before));
  ]

(* -- durable-linearizability oracle ----------------------------------------- *)

let verdict = Alcotest.testable (fun ppf -> function
    | Crashtest.Oracle.Consistent -> Format.fprintf ppf "consistent"
    | Crashtest.Oracle.Violation d -> Format.fprintf ppf "violation: %s" d)
    (fun a b ->
      match (a, b) with
      | Crashtest.Oracle.Consistent, Crashtest.Oracle.Consistent -> true
      | Crashtest.Oracle.Violation _, Crashtest.Oracle.Violation _ -> true
      | _ -> false)

let oracle_tests =
  let history = [ "c"; "b"; "a" ] (* distinct committed states, newest first *)
  and pending = Some "d" in
  let check recovered =
    Crashtest.Oracle.check ~history ~pending ~recovered
  in
  [
    Alcotest.test_case "latest, previous and pending states pass" `Quick
      (fun () ->
        List.iter
          (fun s ->
            Alcotest.check verdict s Crashtest.Oracle.Consistent
              (check (Ok s)))
          [ "d"; "c"; "b" ]);
    Alcotest.test_case "older committed states are violations" `Quick
      (fun () ->
        (* "a" was committed two FASEs back: its root write was drained by a
           later fence, so recovery may never fall back that far *)
        Alcotest.check verdict "stale state"
          (Crashtest.Oracle.Violation "") (check (Ok "a"));
        Alcotest.check verdict "torn state"
          (Crashtest.Oracle.Violation "") (check (Ok "garbage")));
    Alcotest.test_case "a raising dump is a violation" `Quick (fun () ->
        Alcotest.check verdict "exception"
          (Crashtest.Oracle.Violation "")
          (check (Error (Failure "segfault"))));
    Alcotest.test_case "no pending op narrows the window" `Quick (fun () ->
        let chk recovered =
          Crashtest.Oracle.check ~history ~pending:None ~recovered
        in
        Alcotest.check verdict "latest ok" Crashtest.Oracle.Consistent
          (chk (Ok "c"));
        Alcotest.check verdict "pending-only state now stale"
          (Crashtest.Oracle.Violation "") (chk (Ok "d")));
  ]

(* -- Section 5.4 checker: deterministic violation order --------------------- *)

let consistency_tests =
  [
    Alcotest.test_case "unflushed-write violations are sorted by line" `Quick
      (fun () ->
        let r = mk_region () in
        (* dirty three lines high-to-low, never flush, then fence *)
        Pmem.Region.store r 40 (Pmem.Word.of_int 1);
        Pmem.Region.store r 24 (Pmem.Word.of_int 2);
        Pmem.Region.store r 8 (Pmem.Word.of_int 3);
        Pmem.Region.sfence r;
        let report = Mod_core.Consistency.check (Pmem.Region.trace r) in
        let lines =
          List.filter_map
            (function
              | Mod_core.Consistency.Unflushed_write { line; _ } -> Some line
              | _ -> None)
            report.Mod_core.Consistency.violations
        in
        Alcotest.(check (list int))
          "ascending line order regardless of write order"
          [ 1; 3; 5 ] lines);
  ]

(* -- exhaustive sweeps -------------------------------------------------------- *)

let quick_cfg =
  { Crashtest.Explorer.default with randomize_samples = 2 }

let sweep_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": every crash point is consistent") `Quick
        (fun () ->
          let w = Crashtest.Workload.build name ~ops:5 in
          let r = Crashtest.Explorer.explore ~cfg:quick_cfg w in
          Alcotest.(check int) "exhaustive (no skips)" 0
            r.Crashtest.Explorer.points_skipped;
          Alcotest.(check bool) "every point sampled" true
            (r.Crashtest.Explorer.points_tested
            = r.Crashtest.Explorer.total_events);
          if not (Crashtest.Explorer.ok r) then
            Alcotest.failf "%d oracle violation(s), first: %s"
              (List.length r.Crashtest.Explorer.failures)
              (Format.asprintf "%a" Crashtest.Explorer.pp_failure
                 (List.hd r.Crashtest.Explorer.failures))))
    (Crashtest.Workload.mod_names @ Crashtest.Workload.stm_names)

(* -- negative controls and minimal-repro replay ------------------------------- *)

let negative_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": caught, replayable and shrinkable") `Quick
        (fun () ->
          let w = Crashtest.Workload.build name ~ops:6 in
          let r = Crashtest.Explorer.explore ~cfg:quick_cfg w in
          let f =
            match r.Crashtest.Explorer.failures with
            | f :: _ -> f
            | [] -> Alcotest.fail "negative control produced no violation"
          in
          (* the printed triple (workload, crash index, seed) must reproduce
             the violation bit-for-bit, twice *)
          Alcotest.(check bool) "replay reproduces" true
            (Crashtest.Replay.reproduces ~cfg:quick_cfg f);
          Alcotest.(check bool) "replay is deterministic" true
            (Crashtest.Replay.reproduces ~cfg:quick_cfg f);
          let cmd = Crashtest.Replay.command f in
          let contains s sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "command names the crash index" true
            (contains cmd "--replay");
          let f' = Crashtest.Replay.minimize ~cfg:quick_cfg f in
          Alcotest.(check bool) "shrunk repro is no larger" true
            (f'.Crashtest.Explorer.ops <= f.Crashtest.Explorer.ops);
          Alcotest.(check bool) "shrunk repro still reproduces" true
            (Crashtest.Replay.reproduces ~cfg:quick_cfg f')))
    Crashtest.Workload.negative_names

(* -- journaled + parallel sweeps match the full-copy reference ---------------- *)

let failure_key (f : Crashtest.Explorer.failure) =
  Printf.sprintf "%d:%s:%s:%s" f.crash_index
    (Crashtest.Explorer.mode_name f.mode)
    (match f.survival_seed with Some s -> string_of_int s | None -> "-")
    f.detail

let parity_tests =
  let sweep w mode jobs =
    let cfg =
      { quick_cfg with Crashtest.Explorer.snapshot_mode = mode; jobs }
    in
    Crashtest.Explorer.explore ~cfg w
  in
  let check_matches name (reference : Crashtest.Explorer.result)
      (r : Crashtest.Explorer.result) =
    Alcotest.(check int)
      (name ^ ": same points tested")
      reference.Crashtest.Explorer.points_tested
      r.Crashtest.Explorer.points_tested;
    Alcotest.(check int)
      (name ^ ": same crashes sampled")
      reference.Crashtest.Explorer.crashes_sampled
      r.Crashtest.Explorer.crashes_sampled;
    Alcotest.(check (list string))
      (name ^ ": identical failures at identical crash points")
      (List.map failure_key reference.Crashtest.Explorer.failures)
      (List.map failure_key r.Crashtest.Explorer.failures)
  in
  List.map
    (fun name ->
      Alcotest.test_case
        (name ^ ": journaled and parallel sweeps match full-copy") `Quick
        (fun () ->
          (* the negative-control guard: every violation the slow
             reference path finds, the fast paths must find at the same
             crash point with the same detail -- and vice versa *)
          let w = Crashtest.Workload.build name ~ops:6 in
          let reference = sweep w Pmem.Region.Full_copy 1 in
          Alcotest.(check bool)
            "reference catches the defect" false
            (Crashtest.Explorer.ok reference);
          check_matches "journaled" reference (sweep w Pmem.Region.Journal 1);
          check_matches "parallel (3 workers)" reference
            (sweep w Pmem.Region.Journal 3)))
    Crashtest.Workload.negative_names
  @ [
      Alcotest.test_case "clean workload agrees across all paths" `Quick
        (fun () ->
          let w = Crashtest.Workload.build "vec" ~ops:4 in
          let full = sweep w Pmem.Region.Full_copy 1 in
          let par = sweep w Pmem.Region.Journal 2 in
          Alcotest.(check bool) "full ok" true (Crashtest.Explorer.ok full);
          Alcotest.(check bool) "parallel ok" true (Crashtest.Explorer.ok par);
          Alcotest.(check int)
            "same point set"
            full.Crashtest.Explorer.points_tested
            par.Crashtest.Explorer.points_tested;
          Alcotest.(check int)
            "same samples"
            full.Crashtest.Explorer.crashes_sampled
            par.Crashtest.Explorer.crashes_sampled);
      Alcotest.test_case "sweeps report wall-clock throughput" `Quick
        (fun () ->
          let w = Crashtest.Workload.build "map" ~ops:3 in
          let r = Crashtest.Explorer.explore ~cfg:quick_cfg w in
          Alcotest.(check bool)
            "wall clock measured" true
            (r.Crashtest.Explorer.wall_seconds > 0.0);
          Alcotest.(check bool)
            "throughput derived" true
            (Crashtest.Explorer.points_per_sec r > 0.0));
    ]

(* -- seeded crash/recover reporting ------------------------------------------ *)

let seed_tests =
  [
    Alcotest.test_case "crash_and_recover reports the survival seed" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 16) () in
        let report =
          Mod_core.Recovery.crash_and_recover_exn ~mode:Pmem.Region.Randomize
            ~seed:123 heap
        in
        Alcotest.(check (option int)) "explicit seed surfaces" (Some 123)
          report.Mod_core.Recovery.crash_seed;
        (* unseeded Randomize crashes still report the seed they drew *)
        let report2 =
          Mod_core.Recovery.crash_and_recover_exn ~mode:Pmem.Region.Randomize heap
        in
        Alcotest.(check bool) "drawn seed surfaces" true
          (report2.Mod_core.Recovery.crash_seed <> None));
  ]

let () =
  Alcotest.run "crashtest"
    [
      ("scheduler", scheduler_tests);
      ("deferral", deferral_tests);
      ("oracle", oracle_tests);
      ("consistency-order", consistency_tests);
      ("sweep", sweep_tests);
      ("negative", negative_tests);
      ("parity", parity_tests);
      ("seed", seed_tests);
    ]
