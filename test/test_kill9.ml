(* Tests for the file-backed persistence backend and the kill-9 story:
   the journaled atomic batch writeback ([Pmem.Backing]), typed
   [Bad_image] degradation for every way an image file can be unusable,
   heap state surviving a real fork + SIGKILL, the offline fsck
   classifier, and the qcheck property tying fsck's verdict to the
   durable-linearizability oracle. *)

let word = Pmem.Word.of_int

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let temp_image () = Filename.temp_file "mod_test_kill9" ".img"

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  let j = path ^ ".journal" in
  if Sys.file_exists j then Sys.remove j

let line8 seed = Array.init 8 (fun i -> seed + i)

(* -- Backing: the journaled atomic batch ---------------------------------- *)

exception Abort_commit

let backing_tests =
  [
    Alcotest.test_case "commit/close/open round-trips words and capacity"
      `Quick (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:64 in
        Pmem.Backing.commit b ~capacity:64
          ~lines:[ (0, line8 100); (3, line8 900) ];
        Pmem.Backing.commit b ~capacity:64 ~lines:[ (3, line8 300) ];
        Pmem.Backing.close b;
        let b', words, status = Pmem.Backing.open_ ~path in
        Pmem.Backing.close b';
        Alcotest.(check bool) "no journal pending" true (status = `None);
        Alcotest.(check int) "capacity" 64 (Array.length words);
        Alcotest.(check int) "line 0 word 2" 102 words.(2);
        Alcotest.(check int) "line 3 overwritten" 305 words.(29);
        Alcotest.(check int) "untouched words zero" 0 words.(40);
        cleanup path);
    Alcotest.test_case "capacity growth is part of the atomic batch" `Quick
      (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:8 in
        Pmem.Backing.commit b ~capacity:24 ~lines:[ (2, line8 70) ];
        Pmem.Backing.close b;
        let b', words, _ = Pmem.Backing.open_ ~path in
        Pmem.Backing.close b';
        Alcotest.(check int) "grown capacity" 24 (Array.length words);
        Alcotest.(check int) "grown line" 77 words.(23);
        cleanup path);
    Alcotest.test_case "torn journal (pre-marker kill) is discarded" `Quick
      (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:64 in
        Pmem.Backing.commit b ~capacity:64 ~lines:[ (1, line8 10) ];
        Pmem.Backing.set_sync_hook b (fun phase ordinal ->
            if ordinal = 2 && phase = Pmem.Backing.Journal_torn then
              raise Abort_commit);
        (match
           Pmem.Backing.commit b ~capacity:64 ~lines:[ (1, line8 500) ]
         with
        | () -> Alcotest.fail "commit should have aborted"
        | exception Abort_commit -> ());
        Pmem.Backing.close b;
        let b', words, status = Pmem.Backing.open_ ~path in
        Pmem.Backing.close b';
        Alcotest.(check bool) "discarded" true (status = `Discarded);
        Alcotest.(check int) "pre-batch state" 10 words.(8);
        cleanup path);
    Alcotest.test_case "committed journal (post-marker kill) replays" `Quick
      (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:64 in
        Pmem.Backing.commit b ~capacity:64 ~lines:[ (1, line8 10) ];
        Pmem.Backing.set_sync_hook b (fun phase ordinal ->
            if ordinal = 2 && phase = Pmem.Backing.Journal_committed then
              raise Abort_commit);
        (try
           Pmem.Backing.commit b ~capacity:64
             ~lines:[ (1, line8 500); (4, line8 40) ]
         with Abort_commit -> ());
        Pmem.Backing.close b;
        let b', words, status = Pmem.Backing.open_ ~path in
        Pmem.Backing.close b';
        Alcotest.(check bool) "replayed both lines" true
          (status = `Replayed 2);
        Alcotest.(check int) "post-batch line 1" 500 words.(8);
        Alcotest.(check int) "post-batch line 4" 47 words.(39);
        cleanup path);
    Alcotest.test_case "kill mid-apply still replays to the full batch"
      `Quick (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:64 in
        Pmem.Backing.set_sync_hook b (fun phase ordinal ->
            if ordinal = 1 && phase = Pmem.Backing.Mid_apply then
              raise Abort_commit);
        (try
           Pmem.Backing.commit b ~capacity:64
             ~lines:[ (0, line8 1); (2, line8 2); (5, line8 3) ]
         with Abort_commit -> ());
        Pmem.Backing.close b;
        let b', words, status = Pmem.Backing.open_ ~path in
        Pmem.Backing.close b';
        Alcotest.(check bool) "replayed" true (status = `Replayed 3);
        Alcotest.(check int) "first line applied" 1 words.(0);
        Alcotest.(check int) "last line applied" 3 words.(40);
        cleanup path);
  ]

(* -- typed Bad_image degradation ------------------------------------------ *)

let expect_bad_image name path =
  match Mod_core.Recovery.open_file ~path () with
  | Ok _ -> Alcotest.failf "%s: unusable image opened" name
  | Error (Mod_core.Error.Bad_image _) -> ()
  | Error e ->
      Alcotest.failf "%s: expected Bad_image, got %s" name
        (Mod_core.Error.to_string e)

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let bad_image_tests =
  [
    Alcotest.test_case "missing file is a typed Bad_image" `Quick (fun () ->
        expect_bad_image "missing" "/nonexistent/mod_heap.img");
    Alcotest.test_case "empty and short files are typed Bad_image" `Quick
      (fun () ->
        let path = temp_image () in
        write_bytes path "";
        expect_bad_image "empty" path;
        write_bytes path "short";
        expect_bad_image "short" path;
        cleanup path);
    Alcotest.test_case "wrong magic is a typed Bad_image" `Quick (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:1024 in
        Pmem.Backing.close b;
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
        ignore (Unix.write fd (Bytes.make 1 '\xFF') 0 1 : int);
        Unix.close fd;
        expect_bad_image "magic" path;
        cleanup path);
    Alcotest.test_case "undersized image (no root directory) is Bad_image"
      `Quick (fun () ->
        let path = temp_image () in
        let b = Pmem.Backing.create ~path ~capacity_words:64 in
        Pmem.Backing.close b;
        expect_bad_image "undersized" path;
        cleanup path);
    Alcotest.test_case "out-of-band word corruption is caught by checksum"
      `Quick (fun () ->
        let path = temp_image () in
        let heap =
          Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path ()
        in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 1 to 20 do
          Imap.insert m k k
        done;
        Pmalloc.Heap.close heap;
        let v = Pmem.Backing.peek_word ~path ~index:600 in
        Pmem.Backing.poke_word ~path ~index:600 (v lxor 0x5A5A);
        expect_bad_image "poked" path;
        (* and fsck agrees, then repair brings it back *)
        let r = Pmalloc.Fsck.check path in
        Alcotest.(check bool) "fsck corrupt" true
          (r.Pmalloc.Fsck.verdict = Pmalloc.Fsck.Corrupt);
        let r' = Pmalloc.Fsck.repair path in
        Alcotest.(check bool) "repair is not corrupt" true
          (r'.Pmalloc.Fsck.verdict <> Pmalloc.Fsck.Corrupt);
        (match Mod_core.Recovery.open_file ~path () with
        | Ok o -> Pmalloc.Heap.close o.Mod_core.Recovery.heap
        | Error e ->
            Alcotest.failf "repaired image does not reopen: %s"
              (Mod_core.Error.to_string e));
        cleanup path);
  ]

(* -- heap round-trip and real SIGKILL survival ---------------------------- *)

let roundtrip_tests =
  [
    Alcotest.test_case "map survives close + typed reopen" `Quick (fun () ->
        let path = temp_image () in
        let heap =
          Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path ()
        in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 1 to 64 do
          Imap.insert m k (k * k)
        done;
        Pmalloc.Heap.close heap;
        (match Mod_core.Recovery.open_file ~path () with
        | Error e -> Alcotest.failf "reopen: %s" (Mod_core.Error.to_string e)
        | Ok o ->
            let heap = o.Mod_core.Recovery.heap in
            Alcotest.(check bool) "clean journal" true
              (o.Mod_core.Recovery.journal = `None);
            Alcotest.(check bool) "reopen latency measured" true
              (o.Mod_core.Recovery.reopen_ns > 0.0);
            let m = Imap.open_or_create heap ~slot:0 in
            Alcotest.(check int) "cardinal" 64 (Imap.cardinal m);
            Alcotest.(check int) "value" 49 (Option.get (Imap.find m 7));
            Pmalloc.Heap.close heap);
        let r = Pmalloc.Fsck.check path in
        Alcotest.(check bool) "fsck clean" true
          (r.Pmalloc.Fsck.verdict = Pmalloc.Fsck.Clean);
        cleanup path);
    Alcotest.test_case "heap state survives a real SIGKILL" `Quick (fun () ->
        let path = temp_image () in
        let rfd, wfd = Unix.pipe () in
        (match Unix.fork () with
        | 0 ->
            Unix.close rfd;
            (try
               let heap =
                 Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path ()
               in
               let m = Imap.open_or_create heap ~slot:0 in
               for k = 1 to 50 do
                 Imap.insert m k (k * 3)
               done;
               Pmalloc.Heap.sfence heap;
               ignore (Unix.write wfd (Bytes.of_string "k") 0 1 : int)
             with _ -> ());
            (* hold the heap hostage until the parent shoots *)
            let rec spin () =
              Unix.sleepf 0.05;
              spin ()
            in
            spin ()
        | pid ->
            Unix.close wfd;
            ignore (Unix.read rfd (Bytes.create 1) 0 1 : int);
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid);
            Unix.close rfd;
            (match Mod_core.Recovery.open_file ~path () with
            | Error e ->
                Alcotest.failf "post-kill reopen: %s"
                  (Mod_core.Error.to_string e)
            | Ok o ->
                let heap = o.Mod_core.Recovery.heap in
                let m = Imap.open_or_create heap ~slot:0 in
                Alcotest.(check int) "all 50 entries survive the kill" 50
                  (Imap.cardinal m);
                Alcotest.(check int) "17 -> 51" 51
                  (Option.get (Imap.find m 17));
                Pmalloc.Heap.close heap));
        cleanup path);
    Alcotest.test_case "kill9 harness: map sweep has no violations" `Slow
      (fun () ->
        let r =
          Crashtest.Kill9.run ~ops:30 ~seed:11 ~workload:"map" ~kills:6 ()
        in
        Alcotest.(check int) "violations" 0 r.Crashtest.Kill9.violations;
        Alcotest.(check int) "escaped" 0 r.Crashtest.Kill9.escaped;
        Alcotest.(check bool) "calibration run completed" true
          (r.Crashtest.Kill9.completed_runs >= 1);
        List.iter
          (fun t ->
            if t.Crashtest.Kill9.t_acked >= 0 then
              match t.Crashtest.Kill9.t_outcome with
              | Crashtest.Kill9.Consistent _ -> ()
              | _ -> Alcotest.fail "formatted image must recover consistent")
          r.Crashtest.Kill9.trials)
  ]

(* -- fsck vs the oracle (qcheck) ------------------------------------------ *)

(* Build a post-kill image in-process: run a workload prefix against a
   file-backed heap and abort (exception, not SIGKILL -- same file
   state) inside the [kill]-th writeback batch at the given phase.
   Returns the workload and how many ops completed. *)
let build_image ~path ~workload ~ops ~kill ~phase =
  let w = Crashtest.Workload.build workload ~ops in
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~file:path () in
  Pmem.Region.set_file_sync_hook
    (Pmalloc.Heap.region heap)
    (fun p ordinal -> if ordinal = kill && p = phase then raise Abort_commit);
  let completed = ref (-1) in
  (try
     let inst = w.Crashtest.Workload.make heap in
     inst.Crashtest.Workload.init ();
     completed := 0;
     for i = 0 to ops - 1 do
       inst.Crashtest.Workload.run_op i;
       completed := i + 1
     done;
     Pmalloc.Heap.sfence heap;
     Pmalloc.Heap.close heap
   with Abort_commit -> ());
  (w, !completed)

let phases =
  [|
    Pmem.Backing.Journal_torn; Pmem.Backing.Journal_committed;
    Pmem.Backing.Mid_apply; Pmem.Backing.Applied;
  |]

let fsck_case_gen =
  QCheck.Gen.(
    let* workload = oneofl [ "map"; "queue"; "stack"; "vec" ] in
    let* ops = int_range 4 16 in
    let* kill = int_range 2 14 in
    let* phase = int_range 0 3 in
    let* corrupt = opt (int_range 0 ((1 lsl 14) - 1)) in
    return (workload, ops, kill, phase, corrupt))

let print_fsck_case (w, ops, kill, phase, corrupt) =
  Printf.sprintf "%s ops=%d kill=%d phase=%s corrupt=%s" w ops kill
    (Pmem.Backing.phase_name phases.(phase))
    (match corrupt with None -> "none" | Some i -> string_of_int i)

(* For any image produced by (workload prefix x kill point x optional
   out-of-band word corruption): fsck classifies it without crashing;
   a Clean verdict implies the image reopens AND recovers to an
   oracle-acceptable state; and the repaired image always reopens. *)
let fsck_property =
  QCheck.Test.make ~count:30 ~name:"fsck never blesses an oracle-rejected image"
    (QCheck.make ~print:print_fsck_case fsck_case_gen)
    (fun (workload, ops, kill, phase, corrupt) ->
      let path = temp_image () in
      let w, completed =
        build_image ~path ~workload ~ops ~kill ~phase:phases.(phase)
      in
      (match corrupt with
      | None -> ()
      | Some index ->
          let v = Pmem.Backing.peek_word ~path ~index in
          Pmem.Backing.poke_word ~path ~index (v lxor 0xBEEF));
      let report = Pmalloc.Fsck.check path in
      (* fsck must never crash; an out-of-band corruption must never be
         blessed (the incremental image checksum catches it) *)
      if corrupt <> None && report.Pmalloc.Fsck.verdict = Pmalloc.Fsck.Clean
      then QCheck.Test.fail_report "corrupted image reported Clean";
      (match Mod_core.Recovery.open_file ~path () with
      | Ok o ->
          let heap = o.Mod_core.Recovery.heap in
          let recovered =
            match
              let inst = w.Crashtest.Workload.make heap in
              inst.Crashtest.Workload.dump ()
            with
            | s -> Ok s
            | exception e -> Error e
          in
          Pmalloc.Heap.close heap;
          let history =
            Crashtest.Kill9.history_of w.Crashtest.Workload.model
              (max 0 completed)
          in
          let oracle =
            Crashtest.Oracle.check ~history ~pending:None ~recovered
          in
          if
            report.Pmalloc.Fsck.verdict = Pmalloc.Fsck.Clean
            && oracle <> Crashtest.Oracle.Consistent
          then
            QCheck.Test.fail_report
              "fsck Clean but recovered state fails the oracle"
      | Error _ ->
          if report.Pmalloc.Fsck.verdict = Pmalloc.Fsck.Clean then
            QCheck.Test.fail_report "fsck Clean but image does not reopen");
      (* --repair output always reopens *)
      let repaired = Pmalloc.Fsck.repair path in
      ignore (repaired.Pmalloc.Fsck.verdict : Pmalloc.Fsck.verdict);
      (match Mod_core.Recovery.open_file ~path () with
      | Ok o -> Pmalloc.Heap.close o.Mod_core.Recovery.heap
      | Error e ->
          QCheck.Test.fail_reportf "repaired image does not reopen: %s"
            (Mod_core.Error.to_string e));
      cleanup path;
      true)

let () =
  ignore (word : int -> Pmem.Word.t);
  Alcotest.run "kill9"
    [
      ("backing", backing_tests);
      ("bad-image", bad_image_tests);
      ("roundtrip", roundtrip_tests);
      ("fsck-oracle", [ QCheck_alcotest.to_alcotest ~long:true fsck_property ]);
    ]
