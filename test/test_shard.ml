(* Sharded serving layer: routing purity, sharded-vs-single-heap
   equivalence, crash independence and the Domains execution mode.

   The load-bearing properties are the first three: routing must be a
   pure function of (key, nshards) so every process ever serving an
   image set agrees on ownership; a sharded map must externally equal a
   single-heap map for any request sequence (the per-shard FIFO
   invariant); and killing one shard must leave every sibling's dump
   bit-identical while the dead shard recovers alone into its own
   durable-linearizability window. *)

module Router = Shard.Router

(* -- routing purity --------------------------------------------------------- *)

let key_gen =
  QCheck.Gen.(
    oneof
      [
        map Router.key_of_index (int_bound 99_999);
        string_size ~gen:printable (int_range 1 40);
      ])

let prop_route_pure =
  let arb =
    QCheck.make
      ~print:(fun (k, n) -> Printf.sprintf "key=%S nshards=%d" k n)
      QCheck.Gen.(pair key_gen (int_range 1 16))
  in
  QCheck.Test.make ~count:500 ~name:"shard_of_key is pure and in range" arb
    (fun (key, nshards) ->
      let s = Router.shard_of_key ~nshards key in
      (* in range, deterministic across calls, insensitive to string
         identity (fresh copy hashes the bytes, not the pointer) *)
      s >= 0 && s < nshards
      && Router.shard_of_key ~nshards key = s
      && Router.shard_of_key ~nshards (String.sub key 0 (String.length key))
         = s)

let test_route_covers () =
  (* the fixed-width driver keyspace must actually spread: every shard
     of 4 owns some of the first 1000 keys *)
  let seen = Array.make 4 0 in
  for i = 0 to 999 do
    let s = Router.shard_of_key ~nshards:4 (Router.key_of_index i) in
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns keys (%d)" i c)
        true (c > 100))
    seen

let test_zipf_deterministic () =
  let draw () =
    let z = Router.zipf ~theta:0.99 ~seed:5 ~n:1000 () in
    List.init 200 (fun _ -> Router.next z)
  in
  Alcotest.(check (list int)) "same seed, same draws" (draw ()) (draw ());
  List.iter
    (fun r -> Alcotest.(check bool) "rank in range" true (r >= 0 && r < 1000))
    (draw ())

(* -- sharded == single-heap ------------------------------------------------- *)

(* A request sequence as (key index, payload index, is_get) triples over
   a small keyspace, applied to an N-shard set and to a 1-shard set:
   the merged canonical dumps must be equal.  This is the per-shard
   FIFO invariant made external: partitioning plus in-order execution
   per shard commutes with a single serial map. *)
let ops_gen =
  QCheck.Gen.(
    pair (int_range 2 5)
      (list_size (int_range 1 60)
         (triple (int_bound 23) (int_bound 9) (int_bound 4))))

let apply_ops t ops =
  List.iter
    (fun (k, v, g) ->
      let key = Router.key_of_index k in
      if g = 0 then Shard.submit t (Shard.Get key)
      else Shard.submit t (Shard.Set (key, Printf.sprintf "v%03d" v)))
    ops

let prop_sharded_equals_single =
  let arb =
    QCheck.make
      ~print:(fun (n, ops) ->
        Printf.sprintf "nshards=%d ops=%s" n
          (String.concat ";"
             (List.map
                (fun (k, v, g) -> Printf.sprintf "(%d,%d,%d)" k v g)
                ops)))
      ops_gen
  in
  QCheck.Test.make ~count:40 ~name:"sharded dump equals single-heap dump" arb
    (fun (nshards, ops) ->
      let run n =
        let t = Shard.create ~capacity_words:(1 lsl 16) ~nshards:n () in
        apply_ops t ops;
        let d = Shard.dump_all t in
        Shard.close t;
        d
      in
      run nshards = run 1)

(* -- crash independence ----------------------------------------------------- *)

let test_crash_sweep () =
  let r =
    Shard.crash_sweep ~nshards:3 ~requests:96 ~keyspace:64 ~stride:53
      ~max_points:20 ~seed:11 ~capacity_words:(1 lsl 17) ()
  in
  Alcotest.(check bool) "examined points" true (r.Shard.sw_points > 0);
  Alcotest.(check (list string)) "no oracle violations" [] r.Shard.sw_violations;
  Alcotest.(check int) "no sibling perturbation" 0 r.Shard.sw_sibling_mismatches;
  Alcotest.(check int)
    "every point consistent" r.Shard.sw_points r.Shard.sw_consistent;
  Alcotest.(check bool) "sweep_ok" true (Shard.sweep_ok r)

(* -- Domains mode ----------------------------------------------------------- *)

let test_domains_matches_inline () =
  let load mode =
    let t =
      Shard.create ~mode ~capacity_words:(1 lsl 18) ~seed:9 ~nshards:3 ()
    in
    let r =
      Shard.run_load ~theta:0.99 ~seed:9 ~warmup:50 ~keyspace:500 t
        ~requests:600 ()
    in
    let d = Shard.dump_all t in
    let executed =
      List.fold_left (fun a m -> a + m.Shard.m_executed) 0 r.Shard.lr_shards
    in
    Shard.close t;
    (d, executed, r.Shard.lr_sim_makespan_ns)
  in
  let di, ei, mi = load Shard.Inline in
  let dd, ed, md = load Shard.Domains in
  Alcotest.(check int) "inline executes every request" 600 ei;
  Alcotest.(check int) "domains execute every request" 600 ed;
  Alcotest.(check string) "same final state" di dd;
  (* same requests on the same heaps: the simulated clocks agree too *)
  Alcotest.(check (float 1e-6)) "same sim makespan" mi md

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          QCheck_alcotest.to_alcotest prop_route_pure;
          Alcotest.test_case "keyspace coverage" `Quick test_route_covers;
          Alcotest.test_case "zipf deterministic" `Quick
            test_zipf_deterministic;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_sharded_equals_single ] );
      ( "crash",
        [ Alcotest.test_case "single-shard sweep" `Quick test_crash_sweep ] );
      ( "domains",
        [
          Alcotest.test_case "matches inline" `Quick
            test_domains_matches_inline;
        ] );
    ]
