(* Tests for the MOD core library: Basic interface semantics, the paper's
   one-ordering-point-per-FASE property, the Composition interface
   (CommitSingle / CommitSiblings / CommitUnrelated), reclamation
   exactness, and the Section 5.4 consistency checker. *)

let w = Pmem.Word.of_int
let uw v = Pmem.Word.to_int v
let mk_heap ?(capacity = 1 lsl 18) ?(trace = false) () =
  Pmalloc.Heap.create ~capacity_words:capacity ~trace ()

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)
module IntMap = Map.Make (Int)

(* Recompute every reachable block's in-degree from the root directory and
   compare with the allocator's reference counts; also confirm that the
   reachable footprint matches the allocator's live accounting (no leaks,
   no premature frees). *)
let check_heap_exact heap =
  let region = Pmalloc.Heap.region heap in
  let allocator = Pmalloc.Heap.allocator heap in
  let reach : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec visit body =
    match Hashtbl.find_opt reach body with
    | Some n -> Hashtbl.replace reach body (n + 1)
    | None ->
        Hashtbl.replace reach body 1;
        let header = Pmalloc.Block.header_of_body body in
        let _cap, kind, _ =
          Pmalloc.Block.decode_info (Pmem.Region.peek_current region header)
        in
        (match kind with
        | Pmalloc.Block.Raw -> ()
        | Pmalloc.Block.Scanned ->
            let used =
              Pmalloc.Block.decode_used
                (Pmem.Region.peek_current region header)
            in
            for i = 0 to used - 1 do
              let word = Pmem.Region.peek_current region (body + i) in
              if Pmem.Word.is_ptr word && not (Pmem.Word.is_null word) then
                visit (Pmem.Word.to_ptr word)
            done)
  in
  for slot = 0 to Pmalloc.Heap.root_slots - 1 do
    let word = Pmalloc.Heap.root_get heap slot in
    if Pmem.Word.is_ptr word && not (Pmem.Word.is_null word) then
      visit (Pmem.Word.to_ptr word)
  done;
  Hashtbl.iter
    (fun body indeg ->
      let rc = Pmalloc.Allocator.rc_get allocator body in
      if rc <> indeg then
        Alcotest.failf "block %d: rc %d but in-degree %d" body rc indeg)
    reach;
  let reach_words =
    Hashtbl.fold
      (fun body _ acc -> acc + Pmalloc.Allocator.capacity_of allocator body)
      reach 0
  in
  Alcotest.(check int)
    "live words == reachable words" reach_words
    (Pmalloc.Allocator.live_words allocator)

(* -- Basic interface vs models --------------------------------------------- *)

let basic_tests =
  [
    Alcotest.test_case "map basic ops" `Quick (fun () ->
        let heap = mk_heap () in
        let m = Imap.open_or_create heap ~slot:0 in
        Imap.insert m 1 10;
        Imap.insert m 2 20;
        Imap.insert m 1 11;
        Alcotest.(check (option int)) "k1" (Some 11) (Imap.find m 1);
        Alcotest.(check (option int)) "k2" (Some 20) (Imap.find m 2);
        Alcotest.(check int) "cardinal" 2 (Imap.cardinal m);
        Alcotest.(check bool) "remove" true (Imap.remove m 1);
        Alcotest.(check bool) "remove absent" false (Imap.remove m 1);
        Alcotest.(check int) "cardinal after" 1 (Imap.cardinal m);
        check_heap_exact heap);
    Alcotest.test_case "map random ops match model + exact heap" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        let model = ref IntMap.empty in
        let rng = Random.State.make [| 5 |] in
        for _ = 1 to 2000 do
          let k = Random.State.int rng 100 in
          match Random.State.int rng 3 with
          | 0 | 1 ->
              let v = Random.State.int rng 1000 in
              Imap.insert m k v;
              model := IntMap.add k v !model
          | _ ->
              let removed = Imap.remove m k in
              Alcotest.(check bool) "remove agrees" (IntMap.mem k !model)
                removed;
              model := IntMap.remove k !model
        done;
        Alcotest.(check int) "cardinal" (IntMap.cardinal !model)
          (Imap.cardinal m);
        IntMap.iter
          (fun k v -> Alcotest.(check (option int)) "binding" (Some v)
              (Imap.find m k))
          !model;
        check_heap_exact heap);
    Alcotest.test_case "set basic ops" `Quick (fun () ->
        let module Iset = Mod_core.Dset.Make (Pfds.Kv.Int) in
        let heap = mk_heap () in
        let s = Iset.open_or_create heap ~slot:0 in
        Iset.add s 1;
        Iset.add s 2;
        Iset.add s 1;
        Alcotest.(check int) "cardinal" 2 (Iset.cardinal s);
        Alcotest.(check bool) "mem" true (Iset.mem s 1);
        Alcotest.(check bool) "removed" true (Iset.remove s 1);
        Alcotest.(check bool) "gone" false (Iset.mem s 1);
        check_heap_exact heap);
    Alcotest.test_case "stack basic ops" `Quick (fun () ->
        let heap = mk_heap () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        Mod_core.Dstack.push s (w 1);
        Mod_core.Dstack.push s (w 2);
        Alcotest.(check (option int)) "peek" (Some 2)
          (Option.map uw (Mod_core.Dstack.peek s));
        Alcotest.(check (option int)) "pop" (Some 2)
          (Option.map uw (Mod_core.Dstack.pop s));
        Alcotest.(check (option int)) "pop" (Some 1)
          (Option.map uw (Mod_core.Dstack.pop s));
        Alcotest.(check bool) "empty" true (Mod_core.Dstack.is_empty s);
        Alcotest.(check bool) "pop empty" true (Mod_core.Dstack.pop s = None);
        check_heap_exact heap);
    Alcotest.test_case "queue basic ops + churn stays leak-free" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let q = Mod_core.Dqueue.open_or_create heap ~slot:0 in
        let model = Queue.create () in
        let rng = Random.State.make [| 9 |] in
        for i = 1 to 2000 do
          if Random.State.bool rng || Mod_core.Dqueue.is_empty q then begin
            Mod_core.Dqueue.enqueue q (w i);
            Queue.push i model
          end
          else
            let v = Mod_core.Dqueue.dequeue q in
            Alcotest.(check (option int)) "fifo" (Some (Queue.pop model))
              (Option.map uw v)
        done;
        Alcotest.(check int) "length" (Queue.length model)
          (Mod_core.Dqueue.length q);
        check_heap_exact heap);
    Alcotest.test_case "vector basic ops incl. swap" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let v = Mod_core.Dvec.open_or_create heap ~slot:0 in
        for i = 0 to 99 do
          Mod_core.Dvec.push_back v (w i)
        done;
        Mod_core.Dvec.set v 10 (w 1000);
        Alcotest.(check int) "set" 1000 (uw (Mod_core.Dvec.get v 10));
        Mod_core.Dvec.swap v 0 99;
        Alcotest.(check int) "swap lo" 99 (uw (Mod_core.Dvec.get v 0));
        Alcotest.(check int) "swap hi" 0 (uw (Mod_core.Dvec.get v 99));
        Alcotest.(check int) "pop" 0 (uw (Mod_core.Dvec.pop_back v));
        Alcotest.(check int) "size" 99 (Mod_core.Dvec.size v);
        check_heap_exact heap);
    Alcotest.test_case "update churn does not grow live memory" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 0 to 199 do
          Imap.insert m k k
        done;
        let allocator = Pmalloc.Heap.allocator heap in
        let live_before = Pmalloc.Allocator.live_words allocator in
        (* overwrite the same keys many times: shadows must be reclaimed *)
        for round = 1 to 20 do
          for k = 0 to 199 do
            Imap.insert m k (k * round)
          done
        done;
        let live_after = Pmalloc.Allocator.live_words allocator in
        Alcotest.(check bool)
          (Printf.sprintf "live stable (%d -> %d)" live_before live_after)
          true
          (live_after <= live_before + 64));
  ]

(* -- the one-ordering-point property ---------------------------------------- *)

let fase_tests =
  [
    Alcotest.test_case "every Basic map/set/stack/queue/vector op: 1 fence"
      `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        let s = Mod_core.Dstack.open_or_create heap ~slot:1 in
        let q = Mod_core.Dqueue.open_or_create heap ~slot:2 in
        let v = Mod_core.Dvec.open_or_create heap ~slot:3 in
        for i = 0 to 63 do
          Imap.insert m i i;
          Mod_core.Dstack.push s (w i);
          Mod_core.Dqueue.enqueue q (w i);
          Mod_core.Dvec.push_back v (w i)
        done;
        let check_one label f =
          let _, profile = Mod_core.Fase.run heap f in
          Alcotest.(check int) (label ^ ": one fence") 1
            profile.Mod_core.Fase.fences
        in
        check_one "map insert" (fun () -> Imap.insert m 7 70);
        check_one "map insert new" (fun () -> Imap.insert m 1000 1);
        check_one "map remove" (fun () -> ignore (Imap.remove m 3));
        check_one "stack push" (fun () -> Mod_core.Dstack.push s (w 9));
        check_one "stack pop" (fun () -> ignore (Mod_core.Dstack.pop s));
        check_one "queue enqueue" (fun () -> Mod_core.Dqueue.enqueue q (w 9));
        check_one "queue dequeue (incl. reversal)" (fun () ->
            ignore (Mod_core.Dqueue.dequeue q));
        check_one "vector set" (fun () -> Mod_core.Dvec.set v 5 (w 1));
        check_one "vector push" (fun () -> Mod_core.Dvec.push_back v (w 1));
        check_one "vector pop" (fun () -> ignore (Mod_core.Dvec.pop_back v));
        check_one "vector swap (multi-update FASE)" (fun () ->
            Mod_core.Dvec.swap v 1 2));
    Alcotest.test_case "lookups: zero fences, zero flushes" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        for i = 0 to 99 do
          Imap.insert m i i
        done;
        let _, profile =
          Mod_core.Fase.run heap (fun () ->
              for i = 0 to 99 do
                ignore (Imap.find m i)
              done)
        in
        Alcotest.(check int) "fences" 0 profile.Mod_core.Fase.fences;
        Alcotest.(check int) "flushes" 0 profile.Mod_core.Fase.flushes);
    Alcotest.test_case "CommitSiblings: 1 fence" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        (* parent with two map fields *)
        let parent = Pfds.Node.alloc heap ~words:2 in
        Pfds.Node.set heap parent 0 (Imap.empty_version heap);
        Pfds.Node.set heap parent 1 (Imap.empty_version heap);
        Pfds.Node.finish heap parent;
        Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent);
        let _, profile =
          Mod_core.Fase.run heap (fun () ->
              let p =
                Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 0)
              in
              let f0 = Imap.insert_pure heap (Pfds.Node.get heap p 0) 1 10 in
              let f1 = Imap.insert_pure heap (Pfds.Node.get heap p 1) 2 20 in
              Mod_core.Commit.siblings heap ~slot:0 [ (0, f0); (1, f1) ])
        in
        Alcotest.(check int) "one fence" 1 profile.Mod_core.Fase.fences);
  ]

(* -- Composition interface --------------------------------------------------- *)

let composition_tests =
  [
    Alcotest.test_case "multi-update single ds (Figure 7b)" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        Imap.insert m 1 10;
        Imap.insert m 2 20;
        (* swap the values of keys 1 and 2 failure-atomically *)
        let v0 = Mod_core.Handle.current m in
        let v1 = Option.get (Imap.find_in heap v0 1) in
        let v2 = Option.get (Imap.find_in heap v0 2) in
        let shadow = Imap.insert_pure heap v0 1 v2 in
        let shadow_shadow = Imap.insert_pure heap shadow 2 v1 in
        Mod_core.Handle.commit ~intermediates:[ shadow ] m shadow_shadow;
        Alcotest.(check (option int)) "k1 got v2" (Some 20) (Imap.find m 1);
        Alcotest.(check (option int)) "k2 got v1" (Some 10) (Imap.find m 2);
        check_heap_exact heap);
    Alcotest.test_case "CommitSiblings updates parent fields atomically"
      `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let parent = Pfds.Node.alloc heap ~words:3 in
        Pfds.Node.set heap parent 0 (Imap.empty_version heap);
        Pfds.Node.set heap parent 1 (Imap.empty_version heap);
        Pfds.Node.set heap parent 2 (w 12345) (* non-ds field is preserved *);
        Pfds.Node.finish heap parent;
        Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent);
        let p () = Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 0) in
        let f0 = Imap.insert_pure heap (Pfds.Node.get heap (p ()) 0) 1 10 in
        let f1 = Imap.insert_pure heap (Pfds.Node.get heap (p ()) 1) 2 20 in
        Mod_core.Commit.siblings heap ~slot:0 [ (0, f0); (1, f1) ];
        let parent' = p () in
        Alcotest.(check bool) "parent replaced" true (parent' <> parent);
        Alcotest.(check (option int)) "field 0" (Some 10)
          (Imap.find_in heap (Pfds.Node.get heap parent' 0) 1);
        Alcotest.(check (option int)) "field 1" (Some 20)
          (Imap.find_in heap (Pfds.Node.get heap parent' 1) 2);
        Alcotest.(check int) "scalar field copied" 12345
          (uw (Pfds.Node.get heap parent' 2));
        check_heap_exact heap);
    Alcotest.test_case "CommitUnrelated updates two roots atomically" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
        let m1 = Imap.open_or_create heap ~slot:0 in
        let m2 = Imap.open_or_create heap ~slot:1 in
        Imap.insert m1 1 100;
        (* move key 1 from m1 to m2 in one FASE *)
        let v1 = Mod_core.Handle.current m1 in
        let v2 = Mod_core.Handle.current m2 in
        let value = Option.get (Imap.find_in heap v1 1) in
        let v1', removed = Imap.remove_pure heap v1 1 in
        Alcotest.(check bool) "removed" true removed;
        let v2' = Imap.insert_pure heap v2 1 value in
        Mod_core.Commit.unrelated heap tx [ (0, v1'); (1, v2') ];
        Alcotest.(check (option int)) "gone from m1" None (Imap.find m1 1);
        Alcotest.(check (option int)) "moved to m2" (Some 100) (Imap.find m2 1));
    Alcotest.test_case "queue-to-map move in one FASE (unrelated)" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
        let q = Mod_core.Dqueue.open_or_create heap ~slot:0 in
        let m = Imap.open_or_create heap ~slot:1 in
        Mod_core.Dqueue.enqueue q (w 7);
        let qv = Mod_core.Handle.current q in
        (match Mod_core.Dqueue.dequeue_pure heap qv with
        | Some (v, qv') ->
            let mv =
              Imap.insert_pure heap (Mod_core.Handle.current m) (uw v) 1
            in
            Mod_core.Commit.unrelated heap tx [ (0, qv'); (1, mv) ]
        | None -> Alcotest.fail "queue should not be empty");
        Alcotest.(check bool) "queue empty" true (Mod_core.Dqueue.is_empty q);
        Alcotest.(check (option int)) "map has it" (Some 1) (Imap.find m 7));
  ]

(* -- recovery ----------------------------------------------------------------- *)

let recovery_tests =
  [
    Alcotest.test_case "recover a committed map after a crash" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 0 to 99 do
          Imap.insert m k (k * 2)
        done;
        (* close the last epoch: the final root write's flush is ordered by
           the next fence (Section 5.1) *)
        Pmalloc.Heap.sfence heap;
        let report = Mod_core.Recovery.crash_and_recover_exn heap in
        Alcotest.(check bool)
          "live blocks found" true
          (report.Mod_core.Recovery.gc.Pmalloc.Recovery_gc.live_blocks > 0);
        let m' = Imap.open_or_create heap ~slot:0 in
        Alcotest.(check int) "cardinal preserved" 100 (Imap.cardinal m');
        for k = 0 to 99 do
          Alcotest.(check (option int)) "binding" (Some (k * 2))
            (Imap.find m' k)
        done;
        check_heap_exact heap);
    Alcotest.test_case "interrupted FASE leaks are reclaimed" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 0 to 49 do
          Imap.insert m k k
        done;
        (* start an update but crash before Commit: shadow leaks *)
        let shadow =
          Imap.insert_pure heap (Mod_core.Handle.current m) 1000 1
        in
        ignore (shadow : Pmem.Word.t);
        let report =
          Mod_core.Recovery.crash_and_recover_exn
            ~mode:Pmem.Region.Keep_inflight heap
        in
        Alcotest.(check bool)
          "leak reclaimed" true
          (report.Mod_core.Recovery.gc.Pmalloc.Recovery_gc.reclaimed_words > 0);
        let m' = Imap.open_or_create heap ~slot:0 in
        Alcotest.(check (option int)) "uncommitted key absent" None
          (Imap.find m' 1000);
        Alcotest.(check int) "old state intact" 50 (Imap.cardinal m');
        check_heap_exact heap);
  ]

(* -- Section 5.4 consistency checker ------------------------------------------ *)

let consistency_tests =
  [
    Alcotest.test_case "MOD workload trace passes" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) ~trace:true () in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 0 to 199 do
          Imap.insert m k k
        done;
        for k = 0 to 99 do
          ignore (Imap.remove m k)
        done;
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        if not (Mod_core.Consistency.ok report) then
          Alcotest.failf "checker found: %a" Mod_core.Consistency.pp_report
            report);
    Alcotest.test_case "stack/queue/vector traces pass" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) ~trace:true () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        let q = Mod_core.Dqueue.open_or_create heap ~slot:1 in
        let v = Mod_core.Dvec.open_or_create heap ~slot:2 in
        for i = 0 to 99 do
          Mod_core.Dstack.push s (w i);
          Mod_core.Dqueue.enqueue q (w i);
          Mod_core.Dvec.push_back v (w i)
        done;
        for _ = 0 to 49 do
          ignore (Mod_core.Dstack.pop s);
          ignore (Mod_core.Dqueue.dequeue q)
        done;
        Mod_core.Dvec.swap v 1 2;
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        if not (Mod_core.Consistency.ok report) then
          Alcotest.failf "checker found: %a" Mod_core.Consistency.pp_report
            report);
    Alcotest.test_case "in-place write is caught (negative control)" `Quick
      (fun () ->
        let heap = mk_heap ~trace:true () in
        (* a committed cell... *)
        let cell = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:1 in
        Pmalloc.Heap.store heap cell (w 1);
        Pmalloc.Heap.flush_block heap cell;
        Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr cell);
        (* ...then a buggy in-place overwrite outside any commit *)
        Pmalloc.Heap.store heap cell (w 2);
        Pmalloc.Heap.clwb heap cell;
        Pmalloc.Heap.sfence heap;
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        Alcotest.(check bool) "caught" false (Mod_core.Consistency.ok report);
        match report.Mod_core.Consistency.violations with
        | Mod_core.Consistency.In_place_write { off; _ } :: _ ->
            Alcotest.(check int) "right offset" cell off
        | _ -> Alcotest.fail "expected an in-place write violation");
    Alcotest.test_case "missing flush is caught (negative control)" `Quick
      (fun () ->
        let heap = mk_heap ~trace:true () in
        let cell = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:1 in
        Pmalloc.Heap.store heap cell (w 1);
        (* forgot flush_block here *)
        Pmalloc.Heap.sfence heap;
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        Alcotest.(check bool) "caught" false (Mod_core.Consistency.ok report);
        match report.Mod_core.Consistency.violations with
        | Mod_core.Consistency.Unflushed_write _ :: _ -> ()
        | _ -> Alcotest.fail "expected an unflushed write violation");
    Alcotest.test_case "PMDK-style tx fails invariant 1 by design" `Quick
      (fun () ->
        let heap = mk_heap ~trace:true () in
        let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
        let cell = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:1 in
        Pmalloc.Heap.store heap cell (w 1);
        Pmalloc.Heap.flush_block heap cell;
        Pmalloc.Heap.sfence heap;
        Pmem.Trace.clear (Pmalloc.Heap.trace heap);
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Tx.add tx ~off:cell ~words:1;
            Pmstm.Tx.store tx cell (w 2));
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        Alcotest.(check bool)
          "in-place transactions violate the MOD discipline" false
          (Mod_core.Consistency.ok report));
  ]

(* -- the recipe-made sixth datastructure -------------------------------------- *)

let dpqueue_tests =
  [
    Alcotest.test_case "priority queue basic ops" `Quick (fun () ->
        let heap = mk_heap () in
        let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in
        List.iter (Mod_core.Dpqueue.insert pq) [ 5; 1; 4; 1; 3 ];
        Alcotest.(check int) "cardinal" 5 (Mod_core.Dpqueue.cardinal pq);
        Alcotest.(check (option int)) "min" (Some 1) (Mod_core.Dpqueue.find_min pq);
        let drained = List.init 5 (fun _ -> Mod_core.Dpqueue.delete_min pq) in
        Alcotest.(check (list (option int)))
          "sorted drain"
          [ Some 1; Some 1; Some 3; Some 4; Some 5 ]
          drained;
        Alcotest.(check bool) "empty" true (Mod_core.Dpqueue.is_empty pq);
        Alcotest.(check (option int)) "delete on empty" None
          (Mod_core.Dpqueue.delete_min pq);
        check_heap_exact heap);
    Alcotest.test_case "priority queue: one fence per op" `Quick (fun () ->
        let heap = mk_heap () in
        let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in
        for i = 0 to 63 do
          Mod_core.Dpqueue.insert pq (63 - i)
        done;
        let _, p1 = Mod_core.Fase.run heap (fun () -> Mod_core.Dpqueue.insert pq 7) in
        Alcotest.(check int) "insert fences" 1 p1.Mod_core.Fase.fences;
        let _, p2 =
          Mod_core.Fase.run heap (fun () -> ignore (Mod_core.Dpqueue.delete_min pq))
        in
        Alcotest.(check int) "delete fences" 1 p2.Mod_core.Fase.fences);
    Alcotest.test_case "priority queue survives crashes" `Quick (fun () ->
        let heap = mk_heap () in
        let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in
        for i = 0 to 49 do
          Mod_core.Dpqueue.insert pq (i * 3 mod 17)
        done;
        Pmalloc.Heap.sfence heap;
        ignore (Mod_core.Recovery.crash_and_recover_exn heap);
        let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in
        Alcotest.(check int) "all 50 survive" 50 (Mod_core.Dpqueue.cardinal pq);
        Alcotest.(check (option int)) "min correct" (Some 0)
          (Mod_core.Dpqueue.find_min pq);
        check_heap_exact heap);
    Alcotest.test_case "priority queue trace passes the checker" `Quick
      (fun () ->
        let heap = mk_heap ~trace:true () in
        let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in
        for i = 0 to 99 do
          Mod_core.Dpqueue.insert pq (i * 7 mod 31)
        done;
        for _ = 0 to 49 do
          ignore (Mod_core.Dpqueue.delete_min pq)
        done;
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        if not (Mod_core.Consistency.ok report) then
          Alcotest.failf "checker found: %a" Mod_core.Consistency.pp_report
            report);
  ]

(* -- durable RRB sequence ------------------------------------------------------ *)

let dseq_tests =
  [
    Alcotest.test_case "append and restrict are one-fence FASEs" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let a = Mod_core.Dseq.open_or_create heap ~slot:0 in
        let b = Mod_core.Dseq.open_or_create heap ~slot:1 in
        for i = 0 to 199 do
          Mod_core.Dseq.push_back a (w i)
        done;
        for i = 0 to 99 do
          Mod_core.Dseq.push_back b (w (1000 + i))
        done;
        let _, p1 = Mod_core.Fase.run heap (fun () -> Mod_core.Dseq.append a b) in
        Alcotest.(check int) "append: one fence" 1 p1.Mod_core.Fase.fences;
        Alcotest.(check int) "appended size" 300 (Mod_core.Dseq.size a);
        Alcotest.(check int) "b untouched" 100 (Mod_core.Dseq.size b);
        Alcotest.(check int) "seam value" 1000
          (uw (Mod_core.Dseq.get a 200));
        let _, p2 =
          Mod_core.Fase.run heap (fun () ->
              Mod_core.Dseq.restrict a ~pos:150 ~len:100)
        in
        Alcotest.(check int) "restrict: one fence" 1 p2.Mod_core.Fase.fences;
        Alcotest.(check int) "restricted size" 100 (Mod_core.Dseq.size a);
        Alcotest.(check int) "first kept" 150 (uw (Mod_core.Dseq.get a 0));
        check_heap_exact heap);
    Alcotest.test_case "sequence survives crash after append" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let a = Mod_core.Dseq.open_or_create heap ~slot:0 in
        let b = Mod_core.Dseq.open_or_create heap ~slot:1 in
        for i = 0 to 63 do
          Mod_core.Dseq.push_back a (w i);
          Mod_core.Dseq.push_back b (w (100 + i))
        done;
        Mod_core.Dseq.append a b;
        Pmalloc.Heap.sfence heap;
        ignore (Mod_core.Recovery.crash_and_recover_exn heap);
        let a = Mod_core.Dseq.open_or_create heap ~slot:0 in
        Alcotest.(check int) "size preserved" 128 (Mod_core.Dseq.size a);
        Alcotest.(check int) "content" 100 (uw (Mod_core.Dseq.get a 64));
        check_heap_exact heap);
    Alcotest.test_case "dseq trace passes the checker" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) ~trace:true () in
        let a = Mod_core.Dseq.open_or_create heap ~slot:0 in
        for i = 0 to 99 do
          Mod_core.Dseq.push_back a (w i)
        done;
        Mod_core.Dseq.restrict a ~pos:10 ~len:50;
        Mod_core.Dseq.set a 5 (w (-1));
        let report = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
        if not (Mod_core.Consistency.ok report) then
          Alcotest.failf "checker found: %a" Mod_core.Consistency.pp_report
            report);
  ]

let () =
  Alcotest.run "mod_core"
    [
      ("basic", basic_tests);
      ("fase", fase_tests);
      ("composition", composition_tests);
      ("recovery", recovery_tests);
      ("consistency", consistency_tests);
      ("dpqueue", dpqueue_tests);
      ("dseq", dseq_tests);
    ]
