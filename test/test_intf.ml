(* Signature-conformance tests for the unified {!Mod_core.Intf.DURABLE}
   interface: one functor exercised over all seven durable structures,
   plus the typed open-path errors ({!Mod_core.Error.t}). *)

let mk_heap ?(capacity = 1 lsl 18) () =
  Pmalloc.Heap.create ~capacity_words:capacity ()

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)
module Iset = Mod_core.Dset.Make (Pfds.Kv.Int)

(* The conformance suite itself: everything here is written against
   DURABLE alone, so it compiles once and runs for each structure. *)
module Conf (D : Mod_core.Intf.DURABLE) (E : sig
  val mk : int -> D.elt
end) =
struct
  (* With [?persist:Backup] the slot is promoted before the suite runs,
     so every check below exercises the Backup commit path (op-log
     appends, checkpoint on add_many's batch) and the descriptor-aware
     open/validate path.  With [~commit_mode:Cas] every Full-policy
     commit routes its root swing through the counted-CAS record update
     concurrent writers use, instead of the single-writer atomic store. *)
  let run ?persist ?(commit_mode = Pmalloc.Heap.Swing) () =
    let heap = mk_heap () in
    Pmalloc.Heap.set_commit_mode heap commit_mode;
    (match persist with
    | None -> ()
    | Some p -> ignore (D.open_or_create ~persist:p heap ~slot:0));
    let t =
      match D.open_result heap ~slot:0 with
      | Ok t -> t
      | Error e ->
          Alcotest.failf "%s: open_result on fresh slot: %s" D.structure
            (Mod_core.Error.to_string e)
    in
    Alcotest.(check bool) "fresh is_empty" true (D.is_empty t);
    Alcotest.(check int) "fresh size" 0 (D.size t);
    D.add t (E.mk 1);
    D.add_many t (List.map E.mk [ 2; 3; 4 ]);
    Alcotest.(check int) "size after add + add_many" 4 (D.size t);
    Alcotest.(check bool) "non-empty" false (D.is_empty t);
    let seen = ref 0 in
    D.iter_elts t (fun _ -> incr seen);
    Alcotest.(check int) "iter_elts visits size elements" 4 !seen;
    (* a populated root must re-validate *)
    (match D.open_result heap ~slot:0 with
    | Ok t2 -> Alcotest.(check int) "reopen size" 4 (D.size t2)
    | Error e ->
        Alcotest.failf "%s: reopen: %s" D.structure
          (Mod_core.Error.to_string e));
    (* Composition interface: pure insertion into a fresh empty version *)
    let v = D.add_pure heap (D.empty_version heap) (E.mk 42) in
    Alcotest.(check int) "size_in of pure singleton" 1 (D.size_in heap v);
    (* handle projection exists and is bound to the slot *)
    Alcotest.(check bool)
      "handle is non-null after inserts" false
      (Pmem.Word.is_null (Mod_core.Handle.current (D.handle t)));
    (* out-of-range slot is a typed error, not an exception *)
    match D.open_result heap ~slot:Pmalloc.Heap.root_slots with
    | Error (Mod_core.Error.Slot_out_of_range _) -> ()
    | Ok _ -> Alcotest.failf "%s: out-of-range slot opened" D.structure
    | Error e ->
        Alcotest.failf "%s: out-of-range slot: wrong error %s" D.structure
          (Mod_core.Error.to_string e)
end

module Conf_map =
  Conf
    (Imap)
    (struct
      let mk i = (i, i * 10)
    end)

module Conf_set =
  Conf
    (Iset)
    (struct
      let mk i = i
    end)

module Word_elt = struct
  let mk i = Pmem.Word.of_int i
end

module Conf_vec = Conf (Mod_core.Dvec) (Word_elt)
module Conf_stack = Conf (Mod_core.Dstack) (Word_elt)
module Conf_queue = Conf (Mod_core.Dqueue) (Word_elt)
module Conf_seq = Conf (Mod_core.Dseq) (Word_elt)

module Conf_pqueue =
  Conf
    (Mod_core.Dpqueue)
    (struct
      let mk i = i
    end)

(* ------------------------------------------------------------------ *)
(* Typed open-path errors                                             *)
(* ------------------------------------------------------------------ *)

let test_scalar_root () =
  let heap = mk_heap () in
  Pmalloc.Heap.root_set heap 3 (Pmem.Word.of_int 17);
  match Mod_core.Dvec.open_result heap ~slot:3 with
  | Error (Mod_core.Error.Corrupt_root { slot; _ }) ->
      Alcotest.(check int) "error names the slot" 3 slot
  | Ok _ -> Alcotest.fail "scalar root accepted as a vector"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Mod_core.Error.to_string e)

let test_codec_mismatch () =
  let heap = mk_heap () in
  (* a vector descriptor is 4 scanned words; the RRB and stack layouts
     differ, so opening the same slot as those structures must fail *)
  let v = Mod_core.Dvec.open_or_create heap ~slot:0 in
  Mod_core.Dvec.push_back v (Pmem.Word.of_int 1);
  (match Mod_core.Dseq.open_result heap ~slot:0 with
  | Error (Mod_core.Error.Codec_mismatch { slot; expected; found }) ->
      Alcotest.(check int) "slot" 0 slot;
      Alcotest.(check bool) "expected is non-empty" true (expected <> "");
      Alcotest.(check bool) "found is non-empty" true (found <> "")
  | Ok _ -> Alcotest.fail "vector root accepted as an RRB sequence"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Mod_core.Error.to_string e));
  match Mod_core.Dstack.open_result heap ~slot:0 with
  | Error (Mod_core.Error.Codec_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "vector root accepted as a stack"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Mod_core.Error.to_string e)

let test_error_strings () =
  let open Mod_core.Error in
  Alcotest.(check bool)
    "Slot_out_of_range mentions the limit" true
    (let s = to_string (Slot_out_of_range { slot = 99; limit = 16 }) in
     String.length s > 0);
  Alcotest.(check bool)
    "get_ok returns the payload" true
    (get_ok (Ok true));
  match get_ok (Error (Corrupt_root { slot = 1; detail = "boom" })) with
  | exception Error _ -> ()
  | _ -> Alcotest.fail "get_ok on Error did not raise"

let test_recover_result () =
  let heap = mk_heap () in
  let m = Imap.open_or_create heap ~slot:0 in
  Imap.insert m 1 2;
  match Mod_core.Recovery.recover heap with
  | Ok _report -> ()
  | Error e ->
      Alcotest.failf "recover on a consistent heap: %s"
        (Mod_core.Error.to_string e)

let () =
  Alcotest.run "intf"
    [
      ( "durable-conformance",
        [
          Alcotest.test_case "dmap" `Quick (Conf_map.run ?persist:None);
          Alcotest.test_case "dset" `Quick (Conf_set.run ?persist:None);
          Alcotest.test_case "dvec" `Quick (Conf_vec.run ?persist:None);
          Alcotest.test_case "dstack" `Quick (Conf_stack.run ?persist:None);
          Alcotest.test_case "dqueue" `Quick (Conf_queue.run ?persist:None);
          Alcotest.test_case "dseq" `Quick (Conf_seq.run ?persist:None);
          Alcotest.test_case "dpqueue" `Quick (Conf_pqueue.run ?persist:None);
        ] );
      ( "durable-conformance-backup",
        (let backup = Pmalloc.Heap.Backup in
         [
           Alcotest.test_case "dmap" `Quick (Conf_map.run ~persist:backup);
           Alcotest.test_case "dset" `Quick (Conf_set.run ~persist:backup);
           Alcotest.test_case "dvec" `Quick (Conf_vec.run ~persist:backup);
           Alcotest.test_case "dstack" `Quick
             (Conf_stack.run ~persist:backup);
           Alcotest.test_case "dqueue" `Quick
             (Conf_queue.run ~persist:backup);
           Alcotest.test_case "dseq" `Quick (Conf_seq.run ~persist:backup);
           Alcotest.test_case "dpqueue" `Quick
             (Conf_pqueue.run ~persist:backup);
         ]) );
      ( "durable-conformance-cas",
        (let cas = Pmalloc.Heap.Cas in
         [
           Alcotest.test_case "dmap" `Quick (Conf_map.run ~commit_mode:cas);
           Alcotest.test_case "dset" `Quick (Conf_set.run ~commit_mode:cas);
           Alcotest.test_case "dvec" `Quick (Conf_vec.run ~commit_mode:cas);
           Alcotest.test_case "dstack" `Quick
             (Conf_stack.run ~commit_mode:cas);
           Alcotest.test_case "dqueue" `Quick
             (Conf_queue.run ~commit_mode:cas);
           Alcotest.test_case "dseq" `Quick (Conf_seq.run ~commit_mode:cas);
           Alcotest.test_case "dpqueue" `Quick
             (Conf_pqueue.run ~commit_mode:cas);
         ]) );
      (* Backup x concurrent commit: skipped by design, with the reason
         encoded as the Invalid_argument the combination raises -- a
         Backup slot's commit order is its op-log append order, which a
         lock-free root CAS cannot serialize. *)
      ( "durable-conformance-backup-cas",
        [
          Alcotest.test_case "backup slot rejects update_cas" `Quick
            (fun () ->
              let heap = mk_heap () in
              let m = Imap.open_or_create heap ~slot:0 in
              Imap.insert m 1 2;
              Mod_core.Commit.enable heap ~slot:0;
              let h = Mod_core.Handle.make heap ~slot:0 in
              match
                Mod_core.Handle.update_cas h ~build:(fun _ -> None)
              with
              | exception Invalid_argument msg ->
                  Alcotest.(check bool)
                    "reason names the policy" true
                    (String.length msg > 0)
              | (_ : int) ->
                  Alcotest.fail
                    "update_cas on a Backup slot should raise \
                     Invalid_argument");
        ] );
      ( "typed-errors",
        [
          Alcotest.test_case "scalar root" `Quick test_scalar_root;
          Alcotest.test_case "codec mismatch" `Quick test_codec_mismatch;
          Alcotest.test_case "error strings" `Quick test_error_strings;
          Alcotest.test_case "recover returns result" `Quick
            test_recover_result;
        ] );
    ]
