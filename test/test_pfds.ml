(* Model-based tests for the functional datastructures in PM: every
   structure is driven with random operation sequences and compared
   against its plain-OCaml model. *)

let mk_heap ?(capacity = 1 lsl 18) () = Pmalloc.Heap.create ~capacity_words:capacity ()

let w = Pmem.Word.of_int
let uw v = Pmem.Word.to_int v

(* -- codecs ---------------------------------------------------------------- *)

let codec_tests =
  [
    Alcotest.test_case "int codec roundtrip" `Quick (fun () ->
        let heap = mk_heap () in
        List.iter
          (fun v ->
            Alcotest.(check int) "roundtrip" v
              Pfds.Kv.Int.(read heap (write heap v)))
          [ 0; 1; -5; max_int / 4 ]);
    Alcotest.test_case "string blob roundtrip" `Quick (fun () ->
        let heap = mk_heap () in
        List.iter
          (fun s ->
            Alcotest.(check string) "roundtrip" s
              Pfds.Kv.String_blob.(read heap (write heap s)))
          [ ""; "a"; "seven77"; "exactly-fourteen"; String.make 512 'x';
            "\000\255binary\001" ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"string blob roundtrip (qcheck)" ~count:200
         QCheck.(string_gen_of_size (Gen.int_range 0 600) Gen.char)
         (fun s ->
           let heap = mk_heap () in
           Pfds.Kv.String_blob.(read heap (write heap s)) = s));
    Alcotest.test_case "mix_int disperses low bits" `Quick (fun () ->
        (* adjacent keys should not collide in their low 5-bit chunk *)
        let chunks = Hashtbl.create 32 in
        for k = 0 to 255 do
          Hashtbl.replace chunks (Pfds.Kv.mix_int k land 31) ()
        done;
        Alcotest.(check bool)
          "uses most chunks" true
          (Hashtbl.length chunks > 24));
  ]

(* -- CHAMP map vs stdlib Map ---------------------------------------------- *)

module IntMap = Map.Make (Int)
module Champ_ii = Pfds.Champ.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

type map_op = Insert of int * int | Remove of int | Find of int

let map_op_gen keyspace =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Insert (k, v)) (int_range 0 keyspace) small_nat);
        (2, map (fun k -> Remove k) (int_range 0 keyspace));
        (2, map (fun k -> Find k) (int_range 0 keyspace));
      ])

let pp_map_op = function
  | Insert (k, v) -> Printf.sprintf "insert(%d,%d)" k v
  | Remove k -> Printf.sprintf "remove(%d)" k
  | Find k -> Printf.sprintf "find(%d)" k

let champ_agrees_with_model ops =
  let heap = mk_heap ~capacity:(1 lsl 20) () in
  let root = ref Champ_ii.empty in
  let model = ref IntMap.empty in
  List.for_all
    (fun op ->
      match op with
      | Insert (k, v) ->
          let root', grew = Champ_ii.insert heap !root k v in
          let grew_model = not (IntMap.mem k !model) in
          root := root';
          model := IntMap.add k v !model;
          grew = grew_model
      | Remove k ->
          let root', removed = Champ_ii.remove heap !root k in
          let removed_model = IntMap.mem k !model in
          root := root';
          model := IntMap.remove k !model;
          removed = removed_model
      | Find k -> Champ_ii.find heap !root k = IntMap.find_opt k !model)
    ops
  && Champ_ii.cardinal heap !root = IntMap.cardinal !model
  && IntMap.for_all (fun k v -> Champ_ii.find heap !root k = Some v) !model

let champ_qcheck =
  QCheck.Test.make ~name:"CHAMP agrees with Map (qcheck)" ~count:100
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_map_op ops))
       QCheck.Gen.(list_size (int_range 0 200) (map_op_gen 50)))
    champ_agrees_with_model

let champ_qcheck_dense =
  QCheck.Test.make ~name:"CHAMP dense keyspace (qcheck)" ~count:50
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_map_op ops))
       QCheck.Gen.(list_size (int_range 50 300) (map_op_gen 8)))
    champ_agrees_with_model

(* Force full-hash collisions to exercise collision nodes. *)
module Colliding_key : Pfds.Kv.CODEC with type t = int = struct
  type t = int

  let equal = Int.equal
  let hash k = k mod 3 (* at most 3 hash values: deep collisions *)
  let write _heap v = Pmem.Word.of_int v
  let read _heap w = Pmem.Word.to_int w
  let log_word v = Some (Pmem.Word.of_int v)
end

module Champ_collide = Pfds.Champ.Make (Colliding_key) (Pfds.Kv.Int)

let champ_tests =
  [
    Alcotest.test_case "empty map" `Quick (fun () ->
        let heap = mk_heap () in
        Alcotest.(check bool) "empty" true (Champ_ii.is_empty Champ_ii.empty);
        Alcotest.(check (option int)) "find" None
          (Champ_ii.find heap Champ_ii.empty 5);
        Alcotest.(check int) "cardinal" 0
          (Champ_ii.cardinal heap Champ_ii.empty));
    Alcotest.test_case "insert then find" `Quick (fun () ->
        let heap = mk_heap () in
        let root, grew = Champ_ii.insert heap Champ_ii.empty 1 100 in
        Alcotest.(check bool) "grew" true grew;
        Alcotest.(check (option int)) "found" (Some 100)
          (Champ_ii.find heap root 1);
        Alcotest.(check (option int)) "absent" None (Champ_ii.find heap root 2));
    Alcotest.test_case "persistence: old version unchanged" `Quick (fun () ->
        let heap = mk_heap () in
        let v1, _ = Champ_ii.insert heap Champ_ii.empty 1 100 in
        let v2, _ = Champ_ii.insert heap v1 1 200 in
        let v3, _ = Champ_ii.insert heap v2 2 300 in
        Alcotest.(check (option int)) "v1 intact" (Some 100)
          (Champ_ii.find heap v1 1);
        Alcotest.(check (option int)) "v2 updated" (Some 200)
          (Champ_ii.find heap v2 1);
        Alcotest.(check (option int)) "v2 has no k2" None
          (Champ_ii.find heap v2 2);
        Alcotest.(check (option int)) "v3 has k2" (Some 300)
          (Champ_ii.find heap v3 2));
    Alcotest.test_case "1000 inserts, all retrievable" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let root = ref Champ_ii.empty in
        for k = 0 to 999 do
          let r, _ = Champ_ii.insert heap !root k (k * 7) in
          root := r
        done;
        Alcotest.(check int) "cardinal" 1000 (Champ_ii.cardinal heap !root);
        for k = 0 to 999 do
          Alcotest.(check (option int))
            (Printf.sprintf "key %d" k)
            (Some (k * 7))
            (Champ_ii.find heap !root k)
        done);
    Alcotest.test_case "remove everything back to empty" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let root = ref Champ_ii.empty in
        for k = 0 to 99 do
          let r, _ = Champ_ii.insert heap !root k k in
          root := r
        done;
        for k = 0 to 99 do
          let r, removed = Champ_ii.remove heap !root k in
          Alcotest.(check bool) "removed" true removed;
          root := r
        done;
        Alcotest.(check bool) "empty again" true (Champ_ii.is_empty !root));
    Alcotest.test_case "remove absent key is a no-op" `Quick (fun () ->
        let heap = mk_heap () in
        let root, _ = Champ_ii.insert heap Champ_ii.empty 1 1 in
        let root', removed = Champ_ii.remove heap root 42 in
        Alcotest.(check bool) "not removed" false removed;
        Alcotest.(check bool) "same version" true (root' = root));
    Alcotest.test_case "hash collisions handled" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let root = ref Pmem.Word.null in
        for k = 0 to 63 do
          let r, grew = Champ_collide.insert heap !root k k in
          Alcotest.(check bool) "grew" true grew;
          root := r
        done;
        for k = 0 to 63 do
          Alcotest.(check (option int))
            (Printf.sprintf "collide key %d" k)
            (Some k)
            (Champ_collide.find heap !root k)
        done;
        for k = 0 to 63 do
          let r, removed = Champ_collide.remove heap !root k in
          Alcotest.(check bool) "collide remove" true removed;
          root := r
        done;
        Alcotest.(check bool) "empty" true (Pmem.Word.is_null !root));
    Alcotest.test_case "update operations never fence" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let stats = Pmalloc.Heap.stats heap in
        let fences_before = stats.Pmem.Stats.fences in
        let root = ref Champ_ii.empty in
        for k = 0 to 199 do
          let r, _ = Champ_ii.insert heap !root k k in
          root := r
        done;
        let r, _ = Champ_ii.remove heap !root 5 in
        ignore (r : Pmem.Word.t);
        Alcotest.(check int) "no fences in pure updates" fences_before
          stats.Pmem.Stats.fences);
    Alcotest.test_case "iter visits every binding once" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let root = ref Champ_ii.empty in
        for k = 0 to 299 do
          let r, _ = Champ_ii.insert heap !root k (k + 1) in
          root := r
        done;
        let seen = Hashtbl.create 64 in
        Champ_ii.iter heap !root (fun k v ->
            Alcotest.(check bool) "not seen before" false (Hashtbl.mem seen k);
            Alcotest.(check int) "value" (k + 1) v;
            Hashtbl.replace seen k ());
        Alcotest.(check int) "all seen" 300 (Hashtbl.length seen));
    Alcotest.test_case "string keys" `Quick (fun () ->
        let module M = Pfds.Champ.Make (Pfds.Kv.String_blob) (Pfds.Kv.Int) in
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let root = ref M.empty in
        for k = 0 to 99 do
          let r, _ = M.insert heap !root (Printf.sprintf "key-%d" k) k in
          root := r
        done;
        for k = 0 to 99 do
          Alcotest.(check (option int))
            (Printf.sprintf "str key %d" k)
            (Some k)
            (M.find heap !root (Printf.sprintf "key-%d" k))
        done;
        Alcotest.(check (option int)) "absent" None
          (M.find heap !root "missing"));
    QCheck_alcotest.to_alcotest champ_qcheck;
    QCheck_alcotest.to_alcotest champ_qcheck_dense;
  ]

(* -- persistent vector vs list model --------------------------------------- *)

type vec_op = Push of int | Pop | Set of int * int | Get of int

let pp_vec_op = function
  | Push v -> Printf.sprintf "push(%d)" v
  | Pop -> "pop"
  | Set (i, v) -> Printf.sprintf "set(%d,%d)" i v
  | Get i -> Printf.sprintf "get(%d)" i

let vec_op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun v -> Push v) small_nat);
        (2, return Pop);
        (2, map2 (fun i v -> Set (i, v)) (int_range 0 5000) small_nat);
        (2, map (fun i -> Get i) (int_range 0 5000));
      ])

let vec_agrees_with_model ops =
  let heap = mk_heap ~capacity:(1 lsl 20) () in
  let vec = ref (Pfds.Pvec.create heap) in
  let model = ref [] in
  (* model holds elements newest-first *)
  let ok = ref true in
  List.iter
    (fun op ->
      let n = List.length !model in
      match op with
      | Push v ->
          vec := Pfds.Pvec.push_back heap !vec (w v);
          model := v :: !model
      | Pop ->
          if n > 0 then begin
            let v, vec' = Pfds.Pvec.pop_back heap !vec in
            (match !model with
            | expect :: rest ->
                if uw v <> expect then ok := false;
                model := rest
            | [] -> ok := false);
            vec := vec'
          end
      | Set (i, v) ->
          if n > 0 then begin
            let i = i mod n in
            vec := Pfds.Pvec.set heap !vec i (w v);
            model :=
              List.mapi (fun j x -> if n - 1 - j = i then v else x) !model
          end
      | Get i ->
          if n > 0 then begin
            let i = i mod n in
            let expect = List.nth !model (n - 1 - i) in
            if uw (Pfds.Pvec.get heap !vec i) <> expect then ok := false
          end)
    ops;
  let n = List.length !model in
  !ok
  && Pfds.Pvec.size heap !vec = n
  && List.for_all2
       (fun a b -> a = b)
       (List.map uw (Pfds.Pvec.to_list heap !vec))
       (List.rev !model)

let pvec_tests =
  [
    Alcotest.test_case "empty vector" `Quick (fun () ->
        let heap = mk_heap () in
        let v = Pfds.Pvec.create heap in
        Alcotest.(check int) "size" 0 (Pfds.Pvec.size heap v);
        Alcotest.(check bool) "empty" true (Pfds.Pvec.is_empty heap v));
    Alcotest.test_case "push through tree levels (5000 elems)" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 21) () in
        let v = ref (Pfds.Pvec.create heap) in
        for i = 0 to 4999 do
          v := Pfds.Pvec.push_back heap !v (w (i * 3))
        done;
        Alcotest.(check int) "size" 5000 (Pfds.Pvec.size heap !v);
        for i = 0 to 4999 do
          if uw (Pfds.Pvec.get heap !v i) <> i * 3 then
            Alcotest.failf "index %d: got %d" i (uw (Pfds.Pvec.get heap !v i))
        done);
    Alcotest.test_case "pop back down through levels" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 21) () in
        let v = ref (Pfds.Pvec.create heap) in
        for i = 0 to 2499 do
          v := Pfds.Pvec.push_back heap !v (w i)
        done;
        for i = 2499 downto 0 do
          let x, v' = Pfds.Pvec.pop_back heap !v in
          if uw x <> i then Alcotest.failf "pop %d: got %d" i (uw x);
          v := v'
        done;
        Alcotest.(check int) "empty" 0 (Pfds.Pvec.size heap !v));
    Alcotest.test_case "set deep index" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 21) () in
        let v = ref (Pfds.Pvec.create heap) in
        for i = 0 to 1999 do
          v := Pfds.Pvec.push_back heap !v (w i)
        done;
        let v2 = Pfds.Pvec.set heap !v 100 (w (-1)) in
        Alcotest.(check int) "new version" (-1) (uw (Pfds.Pvec.get heap v2 100));
        Alcotest.(check int) "old version intact" 100
          (uw (Pfds.Pvec.get heap !v 100));
        Alcotest.(check int) "neighbours intact" 101
          (uw (Pfds.Pvec.get heap v2 101)));
    Alcotest.test_case "bounds checked" `Quick (fun () ->
        let heap = mk_heap () in
        let v = Pfds.Pvec.push_back heap (Pfds.Pvec.create heap) (w 1) in
        Alcotest.(check bool)
          "get oob raises" true
          (try
             ignore (Pfds.Pvec.get heap v 1);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool)
          "pop empty raises" true
          (try
             ignore (Pfds.Pvec.pop_back heap (Pfds.Pvec.create heap));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "updates never fence" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 21) () in
        let stats = Pmalloc.Heap.stats heap in
        let before = stats.Pmem.Stats.fences in
        let v = ref (Pfds.Pvec.create heap) in
        for i = 0 to 999 do
          v := Pfds.Pvec.push_back heap !v (w i)
        done;
        v := Pfds.Pvec.set heap !v 500 (w 0);
        ignore (Pfds.Pvec.pop_back heap !v);
        Alcotest.(check int) "no fences" before stats.Pmem.Stats.fences);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"vector agrees with list model (qcheck)"
         ~count:80
         (QCheck.make
            ~print:(fun ops -> String.concat "; " (List.map pp_vec_op ops))
            QCheck.Gen.(list_size (int_range 0 300) vec_op_gen))
         vec_agrees_with_model);
  ]

(* -- queue and stack vs models ---------------------------------------------- *)

let queue_tests =
  [
    Alcotest.test_case "fifo order with reversals" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let q = ref (Pfds.Pqueue.create heap) in
        let model = Queue.create () in
        let rng = Random.State.make [| 3 |] in
        for i = 0 to 999 do
          if Random.State.bool rng || Pfds.Pqueue.is_empty heap !q then begin
            q := Pfds.Pqueue.enqueue heap !q (w i);
            Queue.push i model
          end
          else
            match Pfds.Pqueue.dequeue heap !q with
            | Some (v, q') ->
                Alcotest.(check int) "fifo" (Queue.pop model) (uw v);
                q := q'
            | None -> Alcotest.fail "queue empty but model not"
        done;
        Alcotest.(check int) "length" (Queue.length model)
          (Pfds.Pqueue.length heap !q);
        Alcotest.(check (list int)) "contents"
          (List.of_seq (Queue.to_seq model))
          (List.map uw (Pfds.Pqueue.to_list heap !q)));
    Alcotest.test_case "old version intact after dequeue" `Quick (fun () ->
        let heap = mk_heap () in
        let q0 = Pfds.Pqueue.create heap in
        let q1 = Pfds.Pqueue.enqueue heap q0 (w 1) in
        let q2 = Pfds.Pqueue.enqueue heap q1 (w 2) in
        match Pfds.Pqueue.dequeue heap q2 with
        | Some (v, q3) ->
            Alcotest.(check int) "dequeued 1" 1 (uw v);
            Alcotest.(check (list int)) "q2 intact" [ 1; 2 ]
              (List.map uw (Pfds.Pqueue.to_list heap q2));
            Alcotest.(check (list int)) "q3" [ 2 ]
              (List.map uw (Pfds.Pqueue.to_list heap q3))
        | None -> Alcotest.fail "dequeue failed");
    Alcotest.test_case "dequeue on empty" `Quick (fun () ->
        let heap = mk_heap () in
        let q = Pfds.Pqueue.create heap in
        Alcotest.(check bool) "none" true (Pfds.Pqueue.dequeue heap q = None));
  ]

let stack_tests =
  [
    Alcotest.test_case "lifo order" `Quick (fun () ->
        let heap = mk_heap () in
        let s = ref Pfds.Pstack.empty in
        for i = 0 to 99 do
          s := Pfds.Pstack.push heap !s (w i)
        done;
        for i = 99 downto 0 do
          match Pfds.Pstack.pop heap !s with
          | Some (v, s') ->
              Alcotest.(check int) "lifo" i (uw v);
              s := s'
          | None -> Alcotest.fail "unexpected empty"
        done;
        Alcotest.(check bool) "empty" true (Pfds.Pstack.is_empty !s));
    Alcotest.test_case "structural sharing across versions" `Quick (fun () ->
        let heap = mk_heap () in
        let s1 = Pfds.Pstack.push heap Pfds.Pstack.empty (w 1) in
        let s2 = Pfds.Pstack.push heap s1 (w 2) in
        let s3 = Pfds.Pstack.push heap s2 (w 3) in
        Alcotest.(check (list int)) "s3" [ 3; 2; 1 ]
          (List.map uw (Pfds.Pstack.to_list heap s3));
        Alcotest.(check (list int)) "s2 intact" [ 2; 1 ]
          (List.map uw (Pfds.Pstack.to_list heap s2));
        (* push allocates exactly one 2-word node *)
        let alloc = Pmalloc.Heap.allocator heap in
        let before = Pmalloc.Allocator.allocations alloc in
        ignore (Pfds.Pstack.push heap s3 (w 4));
        Alcotest.(check int) "one node per push" (before + 1)
          (Pmalloc.Allocator.allocations alloc));
  ]

(* -- leftist heap vs sorted-list model -------------------------------------- *)

let heap_tests =
  [
    Alcotest.test_case "min extraction is sorted" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let rng = Random.State.make [| 13 |] in
        let values = List.init 500 (fun _ -> Random.State.int rng 10_000) in
        let h = ref Pfds.Pheap.empty in
        List.iter (fun v -> h := Pfds.Pheap.insert heap !h v) values;
        Alcotest.(check int) "cardinal" 500 (Pfds.Pheap.cardinal heap !h);
        let drained = ref [] in
        let rec drain () =
          match Pfds.Pheap.delete_min heap !h with
          | None -> ()
          | Some (p, h') ->
              drained := p :: !drained;
              h := h';
              drain ()
        in
        drain ();
        Alcotest.(check (list int)) "sorted drain"
          (List.sort compare values)
          (List.rev !drained));
    Alcotest.test_case "persistence across versions" `Quick (fun () ->
        let heap = mk_heap () in
        let h1 = Pfds.Pheap.insert heap Pfds.Pheap.empty 5 in
        let h2 = Pfds.Pheap.insert heap h1 3 in
        let h3 = Pfds.Pheap.insert heap h2 8 in
        Alcotest.(check (option int)) "h1 min" (Some 5) (Pfds.Pheap.find_min heap h1);
        Alcotest.(check (option int)) "h2 min" (Some 3) (Pfds.Pheap.find_min heap h2);
        Alcotest.(check int) "h3 size" 3 (Pfds.Pheap.cardinal heap h3);
        Alcotest.(check int) "h1 intact" 1 (Pfds.Pheap.cardinal heap h1));
    Alcotest.test_case "merge shares structure" `Quick (fun () ->
        let heap = mk_heap () in
        let build vs =
          List.fold_left (fun h v -> Pfds.Pheap.insert heap h v) Pfds.Pheap.empty vs
        in
        let a = build [ 1; 4; 9 ] and b = build [ 2; 3; 7 ] in
        let m = Pfds.Pheap.merge heap a b in
        Alcotest.(check int) "merged size" 6 (Pfds.Pheap.cardinal heap m);
        Alcotest.(check (option int)) "merged min" (Some 1)
          (Pfds.Pheap.find_min heap m);
        Alcotest.(check int) "a intact" 3 (Pfds.Pheap.cardinal heap a);
        Alcotest.(check int) "b intact" 3 (Pfds.Pheap.cardinal heap b));
    Alcotest.test_case "updates never fence" `Quick (fun () ->
        let heap = mk_heap () in
        let stats = Pmalloc.Heap.stats heap in
        let before = stats.Pmem.Stats.fences in
        let h = ref Pfds.Pheap.empty in
        for i = 0 to 199 do
          h := Pfds.Pheap.insert heap !h (199 - i)
        done;
        ignore (Pfds.Pheap.delete_min heap !h);
        Alcotest.(check int) "no fences" before stats.Pmem.Stats.fences);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"heap drains sorted (qcheck)" ~count:60
         QCheck.(small_list small_nat)
         (fun values ->
           let heap = mk_heap ~capacity:(1 lsl 20) () in
           let h =
             List.fold_left
               (fun h v -> Pfds.Pheap.insert heap h v)
               Pfds.Pheap.empty values
           in
           let rec drain h acc =
             match Pfds.Pheap.delete_min heap h with
             | None -> List.rev acc
             | Some (p, h') -> drain h' (p :: acc)
           in
           drain h [] = List.sort compare values));
  ]

(* -- RRB sequence: concat/slice vs list model -------------------------------- *)

let rrb_of_list heap l = Pfds.Rrb.of_words heap (List.map w l)
let rrb_to_list heap v = List.map uw (Pfds.Rrb.to_list heap v)

let rrb_tests =
  [
    Alcotest.test_case "of_words/get/to_list roundtrip" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let l = List.init 2500 (fun i -> i * 3) in
        let v = rrb_of_list heap l in
        Alcotest.(check int) "size" 2500 (Pfds.Rrb.size heap v);
        Alcotest.(check (list int)) "to_list" l (rrb_to_list heap v);
        List.iteri
          (fun i x ->
            if uw (Pfds.Rrb.get heap v i) <> x then
              Alcotest.failf "get %d: wrong value" i)
          l);
    Alcotest.test_case "concat equals list append" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let la = List.init 1000 (fun i -> i) in
        let lb = List.init 700 (fun i -> 10_000 + i) in
        let a = rrb_of_list heap la and b = rrb_of_list heap lb in
        let c = Pfds.Rrb.concat heap a b in
        Alcotest.(check int) "size" 1700 (Pfds.Rrb.size heap c);
        Alcotest.(check (list int)) "contents" (la @ lb) (rrb_to_list heap c);
        (* originals untouched *)
        Alcotest.(check (list int)) "a intact" la (rrb_to_list heap a);
        Alcotest.(check (list int)) "b intact" lb (rrb_to_list heap b));
    Alcotest.test_case "slice equals sublist" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let l = List.init 1500 (fun i -> i) in
        let v = rrb_of_list heap l in
        List.iter
          (fun (pos, len) ->
            let s = Pfds.Rrb.slice heap v ~pos ~len in
            let expect = List.filteri (fun i _ -> i >= pos && i < pos + len) l in
            Alcotest.(check (list int))
              (Printf.sprintf "slice %d %d" pos len)
              expect (rrb_to_list heap s))
          [ (0, 0); (0, 1500); (0, 40); (1460, 40); (700, 100); (31, 33);
            (32, 32); (999, 1); (1, 1498) ]);
    Alcotest.test_case "set path-copies" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let v = rrb_of_list heap (List.init 1200 (fun i -> i)) in
        let v2 = Pfds.Rrb.set heap v 777 (w (-7)) in
        Alcotest.(check int) "new" (-7) (uw (Pfds.Rrb.get heap v2 777));
        Alcotest.(check int) "old intact" 777 (uw (Pfds.Rrb.get heap v 777));
        Alcotest.(check int) "neighbour" 778 (uw (Pfds.Rrb.get heap v2 778)));
    Alcotest.test_case "push_back grows by one" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let v = ref (Pfds.Rrb.create heap) in
        for i = 0 to 99 do
          v := Pfds.Rrb.push_back heap !v (w i)
        done;
        Alcotest.(check (list int)) "contents"
          (List.init 100 (fun i -> i))
          (rrb_to_list heap !v));
    Alcotest.test_case "operations never fence" `Quick (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let stats = Pmalloc.Heap.stats heap in
        let before = stats.Pmem.Stats.fences in
        let a = rrb_of_list heap (List.init 500 (fun i -> i)) in
        let b = rrb_of_list heap (List.init 300 (fun i -> i)) in
        let c = Pfds.Rrb.concat heap a b in
        let _ = Pfds.Rrb.slice heap c ~pos:100 ~len:500 in
        Alcotest.(check int) "no fences" before stats.Pmem.Stats.fences);
    Alcotest.test_case "ownership: everything reclaims to zero" `Quick
      (fun () ->
        let heap = mk_heap ~capacity:(1 lsl 20) () in
        let allocator = Pmalloc.Heap.allocator heap in
        let baseline = Pmalloc.Allocator.live_words allocator in
        let a = rrb_of_list heap (List.init 800 (fun i -> i)) in
        let b = rrb_of_list heap (List.init 450 (fun i -> i + 1000)) in
        let c = Pfds.Rrb.concat heap a b in
        let s = Pfds.Rrb.slice heap c ~pos:50 ~len:900 in
        let u = Pfds.Rrb.set heap s 13 (w 0) in
        List.iter
          (fun v -> Pmalloc.Heap.release heap (Pmem.Word.to_ptr v))
          [ u; s; c; b; a ];
        Alcotest.(check int) "no leaks, no double frees" baseline
          (Pmalloc.Allocator.live_words allocator));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"concat/slice agree with list model (qcheck)"
         ~count:60
         QCheck.(
           pair
             (pair (int_range 0 400) (int_range 0 400))
             (pair (int_range 0 200) (int_range 0 200)))
         (fun ((na, nb), (p, l)) ->
           let heap = mk_heap ~capacity:(1 lsl 20) () in
           let la = List.init na (fun i -> i) in
           let lb = List.init nb (fun i -> 100_000 + i) in
           let a = rrb_of_list heap la and b = rrb_of_list heap lb in
           let c = Pfds.Rrb.concat heap a b in
           let lc = la @ lb in
           let pos = if na + nb = 0 then 0 else p mod (na + nb) in
           let len = min l (na + nb - pos) in
           let s = Pfds.Rrb.slice heap c ~pos ~len in
           rrb_to_list heap c = lc
           && rrb_to_list heap s
              = List.filteri (fun i _ -> i >= pos && i < pos + len) lc));
  ]

let () =
  Alcotest.run "pfds"
    [
      ("codecs", codec_tests);
      ("champ", champ_tests);
      ("pvec", pvec_tests);
      ("pqueue", queue_tests);
      ("pstack", stack_tests);
      ("pheap", heap_tests);
      ("rrb", rrb_tests);
    ]
