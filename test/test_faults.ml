(* Tests for the fault-injection and graceful-degradation layer: torn
   cacheline crashes, armed media faults, the checksummed dual-slot root
   records with secondary fallback, the typed-error recovery contract
   (nothing escapes [Mod_core.Recovery.recover] untyped), the dead-worker
   shard resweep, and the worklist-based deep-structure recovery. *)

let word = Pmem.Word.of_int

(* -- region-level fault model ---------------------------------------------- *)

let region_tests =
  [
    Alcotest.test_case "armed media line faults loads until cleared" `Quick
      (fun () ->
        let r = Pmem.Region.create ~capacity_words:256 ~seed:3 () in
        Pmem.Region.store r 40 (word 7);
        Pmem.Region.clwb r 40;
        Pmem.Region.sfence r;
        Pmem.Region.arm_media_fault r ~line:5;
        (match Pmem.Region.load r 40 with
        | _ -> Alcotest.fail "expected Media_fault"
        | exception Pmem.Region.Media_fault { off } ->
            Alcotest.(check int) "faulting offset" 40 off);
        (* neighbouring lines are unaffected *)
        Pmem.Region.store r 64 (word 1);
        Alcotest.(check int) "armed lines counted" 1
          (Pmem.Region.media_fault_count r);
        Pmem.Region.clear_media_faults r;
        Alcotest.(check int) "cleared" 0 (Pmem.Region.media_fault_count r);
        Alcotest.(check int) "load works again" 7
          (Pmem.Word.to_int (Pmem.Region.load r 40)));
    Alcotest.test_case "restore disarms media faults" `Quick (fun () ->
        let r = Pmem.Region.create ~capacity_words:256 ~seed:3 () in
        let snap = Pmem.Region.snapshot r in
        Pmem.Region.arm_media_fault r ~line:2;
        Pmem.Region.restore r snap;
        Alcotest.(check int) "restore clears the bad-line table" 0
          (Pmem.Region.media_fault_count r);
        ignore (Pmem.Region.load r 16 : Pmem.Word.t));
    Alcotest.test_case "torn crash persists a strict per-word subset" `Quick
      (fun () ->
        let r = Pmem.Region.create ~capacity_words:256 ~seed:3 () in
        (* one durable baseline line, then dirty every word of it *)
        for i = 0 to 7 do
          Pmem.Region.store r (64 + i) (word 100)
        done;
        Pmem.Region.clwb r 64;
        Pmem.Region.sfence r;
        for i = 0 to 7 do
          Pmem.Region.store r (64 + i) (word (200 + i))
        done;
        Pmem.Region.crash ~mode:Pmem.Region.Randomize ~seed:11 ~torn:true r;
        let image =
          List.init 8 (fun i ->
              Pmem.Word.to_int (Pmem.Region.load r (64 + i)))
        in
        List.iteri
          (fun i v ->
            if v <> 100 && v <> 200 + i then
              Alcotest.failf "word %d is neither old nor new: %d" i v)
          image;
        (* determinism: the same survival seed tears identically *)
        let r2 = Pmem.Region.create ~capacity_words:256 ~seed:3 () in
        for i = 0 to 7 do
          Pmem.Region.store r2 (64 + i) (word 100)
        done;
        Pmem.Region.clwb r2 64;
        Pmem.Region.sfence r2;
        for i = 0 to 7 do
          Pmem.Region.store r2 (64 + i) (word (200 + i))
        done;
        Pmem.Region.crash ~mode:Pmem.Region.Randomize ~seed:11 ~torn:true r2;
        let image2 =
          List.init 8 (fun i ->
              Pmem.Word.to_int (Pmem.Region.load r2 (64 + i)))
        in
        Alcotest.(check (list int)) "seeded tearing is deterministic" image
          image2);
  ]

(* -- checksummed dual-slot root records ------------------------------------- *)

let fresh_heap () = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ()

let corrupt_copy heap (off, words) =
  let region = Pmalloc.Heap.region heap in
  for w = off to off + words - 1 do
    Pmem.Region.corrupt_word region w
  done

let copy_range slot copy = List.nth (Pmalloc.Heap.root_record_ranges slot) copy

(* The record copy [root_get] currently serves ("primary") and the other
   one ("secondary", holding the previous committed value). *)
let active_range heap slot =
  copy_range slot (Pmalloc.Heap.active_root_copy heap slot)

let stale_range heap slot =
  copy_range slot (1 - Pmalloc.Heap.active_root_copy heap slot)

let root_record_tests =
  [
    Alcotest.test_case "corrupt primary copy falls back to secondary" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        (* two commits: the ping-pong leaves [3;2;1] in the stale copy
           and [4;3;2;1] in the active one *)
        Mod_core.Dstack.push_many s [ word 1; word 2; word 3 ];
        Mod_core.Dstack.push s (word 4);
        corrupt_copy heap (active_range heap 0);
        Alcotest.(check (list int))
          "previous committed value read through the surviving copy"
          [ 3; 2; 1 ]
          (List.map Pmem.Word.to_int (Mod_core.Dstack.to_list s));
        Alcotest.(check bool) "fallback counted" true
          (Pmalloc.Heap.root_fallbacks heap > 0);
        Alcotest.(check bool) "tear detected" true
          (Pmalloc.Heap.root_torn_detected heap > 0);
        (* a full recovery also survives the torn copy *)
        (match Mod_core.Recovery.recover heap with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "recovery failed: %s" (Mod_core.Error.to_string e));
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        Alcotest.(check (list int)) "recovered state is the previous commit"
          [ 3; 2; 1 ]
          (List.map Pmem.Word.to_int (Mod_core.Dstack.to_list s)));
    Alcotest.test_case "successive commits alternate record copies" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        Mod_core.Dstack.push s (word 1);
        let first = Pmalloc.Heap.active_root_copy heap 0 in
        Mod_core.Dstack.push s (word 2);
        Alcotest.(check int) "ping-pong" (1 - first)
          (Pmalloc.Heap.active_root_copy heap 0);
        (* corrupting the stale copy is invisible to reads *)
        corrupt_copy heap (stale_range heap 0);
        Alcotest.(check (list int)) "newest value intact" [ 2; 1 ]
          (List.map Pmem.Word.to_int (Mod_core.Dstack.to_list s)));
    Alcotest.test_case "both copies corrupt is a typed Torn_root" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        Mod_core.Dstack.push s (word 9);
        corrupt_copy heap (copy_range 0 0);
        corrupt_copy heap (copy_range 0 1);
        (match Mod_core.Recovery.recover heap with
        | Ok _ -> Alcotest.fail "expected Torn_root, recovery succeeded"
        | Error (Mod_core.Error.Torn_root { slot; _ }) ->
            Alcotest.(check int) "slot named" 0 slot
        | Error e ->
            Alcotest.failf "wrong error: %s" (Mod_core.Error.to_string e));
        (* the typed open path reports the same condition *)
        match Mod_core.Dstack.open_result heap ~slot:0 with
        | Ok _ -> Alcotest.fail "open_result should refuse a torn root"
        | Error (Mod_core.Error.Torn_root _) -> ()
        | Error e ->
            Alcotest.failf "wrong open error: %s" (Mod_core.Error.to_string e));
    Alcotest.test_case "media-bad root lines are a typed Media_error" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        Mod_core.Dstack.push s (word 5);
        let region = Pmalloc.Heap.region heap in
        List.iter
          (fun (off, _) ->
            Pmem.Region.arm_media_fault region
              ~line:(off lsr Pmem.Config.line_shift))
          (Pmalloc.Heap.root_record_ranges 0);
        match Mod_core.Recovery.recover heap with
        | Ok _ -> Alcotest.fail "expected Media_error, recovery succeeded"
        | Error (Mod_core.Error.Media_error _) -> ()
        | Error e ->
            Alcotest.failf "wrong error: %s" (Mod_core.Error.to_string e));
    Alcotest.test_case "root records survive torn crashes (all modes)" `Quick
      (fun () ->
        (* after a commit the record lines are the only dirty lines; a torn
           crash may persist any per-word subset, but each checksummed copy
           lives in one line, so validation always finds a whole copy *)
        List.iter
          (fun seed ->
            let heap = fresh_heap () in
            let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
            Mod_core.Dstack.push_many s [ word 10; word 20 ];
            Mod_core.Dstack.push s (word 30);
            Pmalloc.Heap.crash ~mode:Pmem.Region.Randomize ~seed ~torn:true
              heap;
            match Mod_core.Recovery.recover heap with
            | Error e ->
                Alcotest.failf "seed %d: recovery failed: %s" seed
                  (Mod_core.Error.to_string e)
            | Ok _ ->
                let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
                let got =
                  List.map Pmem.Word.to_int (Mod_core.Dstack.to_list s)
                in
                if got <> [ 30; 20; 10 ] && got <> [ 20; 10 ] then
                  Alcotest.failf
                    "seed %d: state is neither pre- nor post-push: [%s]" seed
                    (String.concat ";" (List.map string_of_int got)))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  ]

(* -- qcheck: injected faults never escape recover untyped ------------------- *)

type fault_kind =
  | No_fault
  | Corrupt_primary
  | Corrupt_both
  | Media_roots
  | Media_heap_line

let fault_kind_name = function
  | No_fault -> "none"
  | Corrupt_primary -> "corrupt-primary"
  | Corrupt_both -> "corrupt-both"
  | Media_roots -> "media-roots"
  | Media_heap_line -> "media-heap-line"

let arm heap = function
  | No_fault -> ()
  | Corrupt_primary -> corrupt_copy heap (active_range heap 0)
  | Corrupt_both ->
      corrupt_copy heap (copy_range 0 0);
      corrupt_copy heap (copy_range 0 1)
  | Media_roots ->
      let region = Pmalloc.Heap.region heap in
      List.iter
        (fun (off, _) ->
          Pmem.Region.arm_media_fault region
            ~line:(off lsr Pmem.Config.line_shift))
        (Pmalloc.Heap.root_record_ranges 0)
  | Media_heap_line ->
      let region = Pmalloc.Heap.region heap in
      Pmem.Region.arm_media_fault region
        ~line:(Pmalloc.Heap.root_directory_words lsr Pmem.Config.line_shift)

let fault_gen =
  QCheck.Gen.(
    let kind =
      oneofl
        [ No_fault; Corrupt_primary; Corrupt_both; Media_roots; Media_heap_line ]
    in
    let name = oneofl Crashtest.Workload.basic_names in
    map
      (fun (((name, kind), prefix), seed) -> (name, kind, prefix, seed))
      (pair (pair (pair name kind) (int_range 0 10)) (int_range 1 1000)))

let print_fault (name, kind, prefix, seed) =
  Printf.sprintf "%s kind=%s prefix=%d seed=%d" name (fault_kind_name kind)
    prefix seed

let fault_sweep_qcheck =
  QCheck.Test.make
    ~name:"every injected fault recovers or fails typed (qcheck)" ~count:120
    (QCheck.make ~print:print_fault fault_gen)
    (fun (name, kind, prefix, seed) ->
      let w = Crashtest.Workload.build name ~ops:10 in
      let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) () in
      let inst = w.Crashtest.Workload.make heap in
      inst.Crashtest.Workload.init ();
      for i = 0 to min prefix (w.Crashtest.Workload.ops - 1) do
        inst.Crashtest.Workload.run_op i
      done;
      Pmalloc.Heap.crash ~mode:Pmem.Region.Randomize ~seed ~torn:true heap;
      arm heap kind;
      (* the contract under test: recover returns Ok or a typed Error and
         never lets an exception escape *)
      match Mod_core.Recovery.recover heap with Ok _ | Error _ -> true)

let fault_detection_qcheck =
  QCheck.Test.make ~name:"both-copies faults are always detected (qcheck)"
    ~count:60
    (QCheck.make
       ~print:(fun (name, seed) -> Printf.sprintf "%s seed=%d" name seed)
       QCheck.Gen.(
         pair (oneofl Crashtest.Workload.basic_names) (int_range 1 1000)))
    (fun (name, seed) ->
      let w = Crashtest.Workload.build name ~ops:6 in
      let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) () in
      let inst = w.Crashtest.Workload.make heap in
      inst.Crashtest.Workload.init ();
      for i = 0 to 3 do
        inst.Crashtest.Workload.run_op i
      done;
      Pmalloc.Heap.crash ~mode:Pmem.Region.Randomize ~seed ~torn:true heap;
      corrupt_copy heap (copy_range 0 0);
      corrupt_copy heap (copy_range 0 1);
      match Mod_core.Recovery.recover heap with
      | Ok _ -> false (* silent absorption of a double fault *)
      | Error (Mod_core.Error.Torn_root _) -> true
      | Error _ -> false)

(* -- explorer fault sweep and dead-worker resweep --------------------------- *)

let quick_faults_cfg =
  {
    Crashtest.Explorer.default with
    randomize_samples = 2;
    stride = 3;
    faults = true;
  }

let explorer_tests =
  [
    Alcotest.test_case "fault sweep over a basic workload is clean" `Quick
      (fun () ->
        let w = Crashtest.Workload.build "map" ~ops:5 in
        let r = Crashtest.Explorer.explore ~cfg:quick_faults_cfg w in
        Alcotest.(check bool) "no violations" true (Crashtest.Explorer.ok r);
        Alcotest.(check bool) "faults were sampled" true
          (r.Crashtest.Explorer.fault_samples > 0);
        Alcotest.(check int) "every sample recovered or degraded typed"
          r.Crashtest.Explorer.fault_samples
          (r.Crashtest.Explorer.fault_recovered
          + r.Crashtest.Explorer.fault_degraded));
    Alcotest.test_case "dead worker's shard is re-swept sequentially" `Quick
      (fun () ->
        let w = Crashtest.Workload.build "queue" ~ops:5 in
        let reference =
          Crashtest.Explorer.explore ~cfg:quick_faults_cfg w
        in
        let killed =
          Crashtest.Explorer.explore
            ~cfg:
              {
                quick_faults_cfg with
                Crashtest.Explorer.jobs = 2;
                worker_kill = Some 0;
              }
            w
        in
        Alcotest.(check int) "one shard re-swept" 1
          killed.Crashtest.Explorer.shards_resequenced;
        (match killed.Crashtest.Explorer.failures with
        | [] -> ()
        | f :: _ as fs ->
            Alcotest.failf "killed sweep has %d failure(s), first: %s"
              (List.length fs) f.Crashtest.Explorer.detail);
        Alcotest.(check int) "same coverage as the sequential reference"
          reference.Crashtest.Explorer.points_tested
          killed.Crashtest.Explorer.points_tested;
        Alcotest.(check int) "same fault samples"
          reference.Crashtest.Explorer.fault_samples
          killed.Crashtest.Explorer.fault_samples);
  ]

(* -- worklist recovery: deep structures ------------------------------------- *)

let deep_tests =
  [
    Alcotest.test_case "recovery walks a 150k-node structure" `Quick
      (fun () ->
        (* the old recursive mark phase overflowed the OCaml stack at this
           depth; the explicit worklist must not *)
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 21) () in
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        let n = 150_000 in
        Mod_core.Dstack.push_many s (List.init n (fun i -> word i));
        let report = Mod_core.Recovery.recover_exn heap in
        ignore (report : Mod_core.Recovery.report);
        let s = Mod_core.Dstack.open_or_create heap ~slot:0 in
        Alcotest.(check int) "all nodes survive recovery" n
          (Mod_core.Dstack.length s);
        Alcotest.(check (option int)) "top element intact" (Some (n - 1))
          (Option.map Pmem.Word.to_int (Mod_core.Dstack.peek s)));
  ]

let () =
  Alcotest.run "faults"
    [
      ("region", region_tests);
      ("root-records", root_record_tests);
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest fault_sweep_qcheck;
          QCheck_alcotest.to_alcotest fault_detection_qcheck;
        ] );
      ("explorer", explorer_tests);
      ("deep-recovery", deep_tests);
    ]
