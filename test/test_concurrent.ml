(* Concurrent-writer regression suite: a corpus of (workload, writers,
   schedule, crash point, mode, survival seed) tuples replayed
   deterministically through {!Replay.creplay}, a qcheck property that
   two interleaved single-op CAS transactions serialize, bounded
   [explore_concurrent] sweeps (positive must be clean, the nofence
   negative control must be caught), and NOrec STM unit tests.

   The corpus pins real failure points found during development: the
   cset tuples crashed before the false-sharing fix to the line-state
   model (a racing store on a Flushing line used to void the
   neighbour's clwb+sfence), and the cmap tuples crashed before the
   counted-CAS fix (a value-compare root CAS let an A->B->A swing
   admit a stale expected value).  Both must stay Consistent forever;
   the cmap-nofence tuples are violations by construction and must
   stay caught. *)

open Crashtest
module IntMap = Map.Make (Int)
module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let keep = Pmem.Region.Keep_inflight
let drop = Pmem.Region.Drop_inflight
let rand = Pmem.Region.Randomize

(* -- regression corpus ------------------------------------------------------ *)

type tuple = {
  wname : string;
  writers : int;
  ops : int;
  schedule : Interleave.schedule;
  crash_index : int;  (** -1 = uncrashed serializability check *)
  mode : Pmem.Region.crash_mode;
  seed : int option;
  expect_violation : bool;
}

let t ?seed ?(writers = 2) ?(ops = 4) ?(expect_violation = false) wname
    schedule crash_index mode =
  { wname; writers; ops; schedule; crash_index; mode; seed; expect_violation }

let corpus =
  [
    (* uncrashed runs must match the serialized model exactly -- even for
       the nofence control, whose bug is a durability bug, not a logic
       bug (it only surfaces when power fails). *)
    t "cmap" (Round_robin 1) (-1) keep;
    t "cmap" (Seeded 1) (-1) keep;
    t "cset" (Seeded 2) (-1) keep;
    t "cstm-norec" (Round_robin 3) (-1) keep;
    t "cmap-nofence" (Round_robin 1) (-1) keep;
    (* pre-fix false-sharing failure points: w0's set-node second line
       shared a cacheline with w1's adjacent allocation; the racing
       store used to downgrade the Flushing line to Dirty and the crash
       dropped half the node even though w0's fence had "drained". *)
    t "cset" (Seeded 2) 37 rand ~seed:1004850;
    t "cset" (Seeded 2) 38 keep;
    t "cset" (Seeded 2) 38 rand ~seed:1004981;
    (* pre-fix ABA failure region: insert+remove returning the root to
       null let a stale CAS with expected=null win.  Swept points
       around the second commit window. *)
    t "cmap" (Round_robin 3) 50 keep;
    t "cmap" (Round_robin 1) 57 keep;
    t "cmap" (Round_robin 1) 57 drop;
    t "cmap" (Seeded 2) 44 rand ~seed:1005769;
    (* NOrec: crash points around a log publish + in-place apply *)
    t "cstm-norec" (Round_robin 1) 40 keep;
    t "cstm-norec" (Seeded 1) 55 drop;
    t "cstm-norec" (Round_robin 7) 70 rand ~seed:1009000;
    (* the negative control must keep violating at its recorded
       points: commits whose shadows were never clwb'd before the
       swing, caught when the crash drops the un-flushed lines. *)
    t "cmap-nofence" (Round_robin 1) 57 rand ~seed:1007471
      ~expect_violation:true;
    t "cmap-nofence" (Round_robin 1) 58 rand ~seed:1007601
      ~expect_violation:true;
    t "cmap-nofence" (Round_robin 1) 70 rand ~seed:1009173
      ~expect_violation:true;
  ]

let tuple_name tu =
  Printf.sprintf "%s %s ev%d %s%s%s" tu.wname
    (Interleave.schedule_name tu.schedule)
    tu.crash_index
    (Explorer.mode_name tu.mode)
    (match tu.seed with None -> "" | Some s -> Printf.sprintf " seed%d" s)
    (if tu.expect_violation then " (negative)" else "")

let replay_tuple tu () =
  let cw = Workload.cbuild tu.wname ~writers:tu.writers ~ops:tu.ops in
  match
    Replay.creplay cw ~schedule:tu.schedule ~crash_index:tu.crash_index
      ~mode:tu.mode ?seed:tu.seed ()
  with
  | None ->
      Alcotest.failf "%s: crash index beyond the last PM event"
        (tuple_name tu)
  | Some Oracle.Consistent ->
      if tu.expect_violation then
        Alcotest.failf "%s: expected a violation, got Consistent"
          (tuple_name tu)
  | Some (Oracle.Violation d) ->
      if not tu.expect_violation then
        Alcotest.failf "%s: unexpected violation: %s" (tuple_name tu) d

let corpus_tests =
  List.map
    (fun tu -> Alcotest.test_case (tuple_name tu) `Quick (replay_tuple tu))
    corpus

(* replays are identified by their tuple alone: running the same tuple
   twice must produce byte-identical verdict details. *)
let test_replay_deterministic () =
  let tu = List.find (fun tu -> tu.expect_violation) corpus in
  let go () =
    let cw = Workload.cbuild tu.wname ~writers:tu.writers ~ops:tu.ops in
    Replay.creplay cw ~schedule:tu.schedule ~crash_index:tu.crash_index
      ~mode:tu.mode ?seed:tu.seed ()
  in
  match (go (), go ()) with
  | Some (Oracle.Violation a), Some (Oracle.Violation b) ->
      Alcotest.(check string) "identical violation detail" a b
  | _ -> Alcotest.fail "negative tuple did not violate twice"

(* -- qcheck: two interleaved one-op transactions serialize ----------------- *)

type qop = Qins of int * int | Qrem of int

let apply_q op m =
  match op with
  | Qins (k, v) -> IntMap.add k v m
  | Qrem k -> IntMap.remove k m

let render m =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%d:%d" k v)
         (IntMap.bindings m))
  ^ "}"

let initial_bindings = [ (0, 10); (1, 11); (2, 12) ]

let run_two ~schedule opa opb =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) ~seed:42 () in
  let m = Imap.open_or_create heap ~slot:0 in
  List.iter (fun (k, v) -> Imap.insert m k v) initial_bindings;
  let h = Mod_core.Handle.make heap ~slot:0 in
  let do_op op () =
    let build old =
      match op with
      | Qins (k, v) -> Some (Imap.insert_pure heap old k v, [])
      | Qrem k ->
          let shadow, removed = Imap.remove_pure heap old k in
          if removed then Some (shadow, []) else None
    in
    (* reclaim:false -- the loser may still be mid-build over the
       superseded version (the commit_cas reclamation contract) *)
    ignore (Mod_core.Handle.update_cas h ~reclaim:false ~build : int)
  in
  Interleave.run (Pmalloc.Heap.region heap) ~schedule
    [| do_op opa; do_op opb |];
  render (Imap.fold h IntMap.add IntMap.empty)

let qop_gen =
  QCheck.Gen.(
    frequency
      [
        (2, map2 (fun k v -> Qins (k, v)) (int_bound 5) (int_bound 99));
        (1, map (fun k -> Qrem k) (int_bound 5));
      ])

let qop_print = function
  | Qins (k, v) -> Printf.sprintf "ins(%d,%d)" k v
  | Qrem k -> Printf.sprintf "rem(%d)" k

let sched_gen =
  QCheck.Gen.(
    map2
      (fun rr n ->
        if rr then Interleave.Round_robin (1 + (n mod 5))
        else Interleave.Seeded n)
      bool (int_bound 1000))

let prop_serializable =
  let arb =
    QCheck.make
      ~print:(fun (a, b, s) ->
        Printf.sprintf "%s || %s under %s" (qop_print a) (qop_print b)
          (Interleave.schedule_name s))
      QCheck.Gen.(triple qop_gen qop_gen sched_gen)
  in
  QCheck.Test.make ~count:60 ~name:"two interleaved 1-op txs serialize" arb
    (fun (opa, opb, schedule) ->
      let init =
        List.fold_left
          (fun m (k, v) -> IntMap.add k v m)
          IntMap.empty initial_bindings
      in
      let final = run_two ~schedule opa opb in
      let ab = render (apply_q opb (apply_q opa init)) in
      let ba = render (apply_q opa (apply_q opb init)) in
      final = ab || final = ba)

(* -- bounded live sweeps ---------------------------------------------------- *)

let quiet = { Explorer.default with log = ignore }

let test_positive_sweep_clean () =
  List.iter
    (fun name ->
      let cw = Workload.cbuild name ~writers:2 ~ops:2 in
      let r =
        Explorer.explore_concurrent ~cfg:quiet
          ~schedules:[ Interleave.Round_robin 1; Interleave.Seeded 1 ]
          cw
      in
      Alcotest.(check bool)
        (name ^ " tested points") true
        (r.Explorer.cr_points_tested > 0);
      match r.Explorer.cr_failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s: %d failures, first: %s" name
            (List.length r.Explorer.cr_failures)
            (Format.asprintf "%a" Explorer.pp_cfailure f))
    Workload.concurrent_positive_names

let test_negative_caught () =
  let cw = Workload.cbuild "cmap-nofence" ~writers:2 ~ops:4 in
  let r =
    Explorer.explore_concurrent ~cfg:quiet
      ~schedules:[ Interleave.Round_robin 1 ]
      cw
  in
  match r.Explorer.cr_failures with
  | [] -> Alcotest.fail "nofence negative control swept clean"
  | f :: _ ->
      (* every recorded failure must replay from its tuple alone, and
         the printed repro command must carry the concurrent axes *)
      Alcotest.(check bool) "failure reproduces" true (Replay.creproduces f);
      let cmd = Replay.ccommand f in
      let contains needle =
        let n = String.length needle and l = String.length cmd in
        let rec go i = i + n <= l && (String.sub cmd i n = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "repro command mentions %S" needle)
            true (contains needle))
        [ "--writers 2"; "--schedule"; "--replay" ]

(* -- NOrec unit tests ------------------------------------------------------- *)

let mk_norec () =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 14) () in
  let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:8 in
  for i = 0 to 7 do
    Pmalloc.Heap.store heap (b + i) (Pmem.Word.of_int 0)
  done;
  Pmalloc.Heap.flush_block heap b;
  Pmalloc.Heap.sfence heap;
  (heap, b, Pmstm.Norec.create heap)

let incr_tx s off delta tx =
  let v = Pmem.Word.to_int (Pmstm.Norec.read tx off) in
  ignore s;
  Pmstm.Norec.write tx off (Pmem.Word.of_int (v + delta))

let test_norec_commits () =
  let heap, b, s = mk_norec () in
  Pmstm.Norec.run s (incr_tx s b 5);
  Pmstm.Norec.run s (incr_tx s b 7);
  Alcotest.(check int)
    "in-place value" 12
    (Pmem.Word.to_int (Pmalloc.Heap.load heap b));
  Alcotest.(check int) "commits" 2 (Pmstm.Norec.commits s);
  Alcotest.(check int) "aborts" 0 (Pmstm.Norec.aborts s)

let test_norec_read_your_writes () =
  let _heap, b, s = mk_norec () in
  let seen =
    Pmstm.Norec.run s (fun tx ->
        Pmstm.Norec.write tx b (Pmem.Word.of_int 41);
        Pmstm.Norec.write tx b (Pmem.Word.of_int 42);
        Pmem.Word.to_int (Pmstm.Norec.read tx b))
  in
  Alcotest.(check int) "redo log serves the tx's own write" 42 seen

let test_norec_recover_clean () =
  let heap, _b, s = mk_norec () in
  Pmstm.Norec.run s (fun tx ->
      Pmstm.Norec.write tx _b (Pmem.Word.of_int 9));
  Alcotest.(check bool)
    "nothing to replay after a completed commit" false
    (Pmstm.Norec.recover heap)

let test_norec_interleaved () =
  let heap, b, s = mk_norec () in
  Pmstm.Norec.set_yield s Interleave.yield;
  let writer n () =
    for _ = 1 to n do
      Pmstm.Norec.run s (incr_tx s b 1)
    done
  in
  Interleave.run (Pmalloc.Heap.region heap)
    ~schedule:(Interleave.Seeded 7)
    [| writer 3; writer 3 |];
  Alcotest.(check int)
    "all six increments applied" 6
    (Pmem.Word.to_int (Pmalloc.Heap.load heap b));
  Alcotest.(check int) "six commits" 6 (Pmstm.Norec.commits s)

let () =
  Alcotest.run "concurrent"
    [
      ("regression-corpus", corpus_tests);
      ( "replay",
        [
          Alcotest.test_case "negative tuple replays deterministically"
            `Quick test_replay_deterministic;
        ] );
      ( "serializability",
        [ QCheck_alcotest.to_alcotest prop_serializable ] );
      ( "sweeps",
        [
          Alcotest.test_case "positive workloads sweep clean" `Quick
            test_positive_sweep_clean;
          Alcotest.test_case "nofence negative control is caught" `Quick
            test_negative_caught;
        ] );
      ( "norec",
        [
          Alcotest.test_case "commits apply in place and count" `Quick
            test_norec_commits;
          Alcotest.test_case "read-your-writes inside a tx" `Quick
            test_norec_read_your_writes;
          Alcotest.test_case "recover on a clean heap is a no-op" `Quick
            test_norec_recover_clean;
          Alcotest.test_case "interleaved writers serialize" `Quick
            test_norec_interleaved;
        ] );
    ]
