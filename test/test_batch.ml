(* Group-commit batching (Mod_core.Batch): commit-point auto-selection,
   the one-fence-per-batch FASE profile, differential equivalence against
   sequential single commits, discard semantics, and the hardened
   Commit.siblings null-root guard. *)

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)
module IntMap = Map.Make (Int)

let w = Pmem.Word.of_int
let uw = Pmem.Word.to_int
let fresh_heap () = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) ()

let dump_map m = Imap.fold m IntMap.add IntMap.empty

let point = Alcotest.testable
    (Fmt.of_to_string Mod_core.Batch.commit_point_name)
    ( = )

(* -- commit-point auto-selection ------------------------------------------ *)

let selection_tests =
  [
    Alcotest.test_case "empty batch commits nothing" `Quick (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        Alcotest.check point "empty" Mod_core.Batch.Empty
          (Mod_core.Batch.commit b);
        (* a no-op stage (removing an absent key) stays Empty too *)
        Mod_core.Batch.stage b ~slot:0 (fun v ->
            fst (Imap.remove_pure heap v 42));
        Alcotest.check point "no-op stage" Mod_core.Batch.Empty
          (Mod_core.Batch.commit b));
    Alcotest.test_case "one slot -> Single" `Quick (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        Mod_core.Batch.stage b ~slot:0 (fun v -> Imap.insert_pure heap v 1 10);
        Mod_core.Batch.stage b ~slot:0 (fun v -> Imap.insert_pure heap v 2 20);
        Alcotest.check point "single" Mod_core.Batch.Single
          (Mod_core.Batch.commit b);
        let m = Imap.open_or_create heap ~slot:0 in
        Alcotest.(check (option int)) "k1" (Some 10) (Imap.find m 1);
        Alcotest.(check (option int)) "k2" (Some 20) (Imap.find m 2));
    Alcotest.test_case "one parent slot, fields -> Siblings" `Quick (fun () ->
        let heap = fresh_heap () in
        let parent = Pfds.Node.alloc heap ~words:2 in
        Pfds.Node.set heap parent 0 Pfds.Pstack.empty;
        Pfds.Node.set heap parent 1 Pfds.Pstack.empty;
        Pfds.Node.finish heap parent;
        Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent);
        let b = Mod_core.Batch.create heap in
        Mod_core.Batch.stage_field b ~slot:0 ~field:0 (fun s ->
            Pfds.Pstack.push heap s (w 1));
        Mod_core.Batch.stage_field b ~slot:0 ~field:1 (fun s ->
            Pfds.Pstack.push heap s (w 2));
        Alcotest.check point "siblings" Mod_core.Batch.Siblings
          (Mod_core.Batch.commit b);
        let field f =
          let p = Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 0) in
          Pfds.Node.get heap p f
        in
        Alcotest.(check (list int)) "field 0" [ 1 ]
          (List.map uw (Pfds.Pstack.to_list heap (field 0)));
        Alcotest.(check (list int)) "field 1" [ 2 ]
          (List.map uw (Pfds.Pstack.to_list heap (field 1))));
    Alcotest.test_case "two slots -> Unrelated" `Quick (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        Mod_core.Batch.stage b ~slot:0 (fun v -> Imap.insert_pure heap v 1 10);
        Mod_core.Batch.stage b ~slot:1 (fun v -> Imap.insert_pure heap v 1 11);
        Alcotest.check point "unrelated" Mod_core.Batch.Unrelated
          (Mod_core.Batch.commit b);
        let m0 = Imap.open_or_create heap ~slot:0 in
        let m1 = Imap.open_or_create heap ~slot:1 in
        Alcotest.(check (option int)) "map0" (Some 10) (Imap.find m0 1);
        Alcotest.(check (option int)) "map1" (Some 11) (Imap.find m1 1));
    Alcotest.test_case "mixing stage and stage_field on one slot raises"
      `Quick (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        Mod_core.Batch.stage b ~slot:0 (fun v -> Imap.insert_pure heap v 1 1);
        Alcotest.check_raises "stage_field after stage"
          (Invalid_argument
             "Batch.stage_field: slot 0 already has a whole-version shadow")
          (fun () ->
            Mod_core.Batch.stage_field b ~slot:0 ~field:0 (fun x -> x)));
    Alcotest.test_case "read-your-writes through pending" `Quick (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        Mod_core.Batch.stage b ~slot:0 (fun v -> Imap.insert_pure heap v 7 70);
        Alcotest.(check (option int))
          "staged insert visible before commit" (Some 70)
          (Imap.find_in heap (Mod_core.Batch.pending b ~slot:0) 7);
        Alcotest.(check bool) "durable root still empty" true
          (Pmem.Word.is_null (Pmalloc.Heap.root_get heap 0));
        ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point));
  ]

(* -- FASE profile: one fence, one commit per batch ------------------------- *)

let profile_tests =
  [
    Alcotest.test_case "N-op Single batch is one fence, one commit" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let m = Imap.open_or_create heap ~slot:0 in
        Imap.insert m 0 0;
        (* warm *)
        List.iter
          (fun n ->
            let b = Mod_core.Batch.create heap in
            let (), p =
              Mod_core.Fase.run heap (fun () ->
                  for i = 1 to n do
                    Mod_core.Batch.stage b ~slot:0 (fun v ->
                        Imap.insert_pure heap v i (i * 2))
                  done;
                  ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point))
            in
            Alcotest.(check int)
              (Printf.sprintf "fences for %d-op batch" n)
              1 p.Mod_core.Fase.fences;
            Alcotest.(check int)
              (Printf.sprintf "commits for %d-op batch" n)
              1 p.Mod_core.Fase.commits)
          [ 1; 2; 8; 32 ]);
    Alcotest.test_case "Siblings batch is one fence, one commit" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let parent = Pfds.Node.alloc heap ~words:2 in
        Pfds.Node.set heap parent 0 Pfds.Pstack.empty;
        Pfds.Node.set heap parent 1 Pfds.Pstack.empty;
        Pfds.Node.finish heap parent;
        Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent);
        let b = Mod_core.Batch.create heap in
        let (), p =
          Mod_core.Fase.run heap (fun () ->
              for i = 1 to 6 do
                Mod_core.Batch.stage_field b ~slot:0 ~field:(i mod 2)
                  (fun s -> Pfds.Pstack.push heap s (w i))
              done;
              ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point))
        in
        Alcotest.(check int) "fences" 1 p.Mod_core.Fase.fences;
        Alcotest.(check int) "commits" 1 p.Mod_core.Fase.commits);
    Alcotest.test_case "empty commit is zero fences, zero commits" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        let (), p =
          Mod_core.Fase.run heap (fun () ->
              ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point))
        in
        Alcotest.(check int) "fences" 0 p.Mod_core.Fase.fences;
        Alcotest.(check int) "commits" 0 p.Mod_core.Fase.commits);
    Alcotest.test_case "insert_many profile: 1 fence regardless of N" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let m = Imap.open_or_create heap ~slot:0 in
        let (), p =
          Mod_core.Fase.run heap (fun () ->
              Imap.insert_many m (List.init 16 (fun i -> (i, i))))
        in
        Alcotest.(check int) "fences" 1 p.Mod_core.Fase.fences;
        Alcotest.(check int) "cardinal" 16 (Imap.cardinal m));
  ]

(* -- differential: one N-op batch == N sequential single commits ----------- *)

type script_op = Ins of int * int | Rem of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Ins (k, v)) (int_range 0 30) (int_range 0 999));
        (1, map (fun k -> Rem k) (int_range 0 30));
      ])

let script_gen = QCheck.Gen.(list_size (int_range 1 40) op_gen)

let print_script ops =
  String.concat ";"
    (List.map
       (function
         | Ins (k, v) -> Printf.sprintf "i%d=%d" k v
         | Rem k -> Printf.sprintf "r%d" k)
       ops)

let apply_batched heap ops =
  let b = Mod_core.Batch.create heap in
  List.iter
    (fun op ->
      Mod_core.Batch.stage b ~slot:0 (fun v ->
          match op with
          | Ins (k, value) -> Imap.insert_pure heap v k value
          | Rem k -> fst (Imap.remove_pure heap v k)))
    ops;
  ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point)

let apply_sequential heap ops =
  let m = Imap.open_or_create heap ~slot:0 in
  List.iter
    (function
      | Ins (k, v) -> Imap.insert m k v
      | Rem k -> ignore (Imap.remove m k : bool))
    ops

let batch_differential =
  QCheck.Test.make ~name:"one N-op batch == N sequential commits (qcheck)"
    ~count:100
    (QCheck.make ~print:print_script script_gen)
    (fun ops ->
      let h1 = fresh_heap () and h2 = fresh_heap () in
      apply_batched h1 ops;
      apply_sequential h2 ops;
      let d1 = dump_map (Imap.open_or_create h1 ~slot:0) in
      let d2 = dump_map (Imap.open_or_create h2 ~slot:0) in
      IntMap.equal Int.equal d1 d2)

(* Splitting one script into several consecutive batches is also
   equivalent -- the grouping is invisible to the final state. *)
let batch_split_differential =
  QCheck.Test.make
    ~name:"script split into batches == sequential commits (qcheck)"
    ~count:100
    (QCheck.make
       ~print:(fun (n, ops) ->
         Printf.sprintf "batch=%d %s" n (print_script ops))
       QCheck.Gen.(pair (int_range 1 7) script_gen))
    (fun (n, ops) ->
      let h1 = fresh_heap () and h2 = fresh_heap () in
      let b = Mod_core.Batch.create h1 in
      List.iteri
        (fun i op ->
          Mod_core.Batch.stage b ~slot:0 (fun v ->
              match op with
              | Ins (k, value) -> Imap.insert_pure h1 v k value
              | Rem k -> fst (Imap.remove_pure h1 v k));
          if (i + 1) mod n = 0 then
            ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point))
        ops;
      ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point);
      apply_sequential h2 ops;
      let d1 = dump_map (Imap.open_or_create h1 ~slot:0) in
      let d2 = dump_map (Imap.open_or_create h2 ~slot:0) in
      IntMap.equal Int.equal d1 d2)

(* -- discard and reclamation ----------------------------------------------- *)

let discard_tests =
  [
    Alcotest.test_case "discard drops staged work and leaks nothing" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 0 to 9 do
          Imap.insert m k k
        done;
        Pmalloc.Heap.sfence heap;
        let allocator = Pmalloc.Heap.allocator heap in
        let live_before = Pmalloc.Allocator.live_words allocator in
        let b = Mod_core.Batch.create heap in
        for k = 10 to 19 do
          Mod_core.Batch.stage b ~slot:0 (fun v ->
              Imap.insert_pure heap v k k)
        done;
        Mod_core.Batch.discard b;
        Alcotest.(check bool) "batch empty after discard" true
          (Mod_core.Batch.is_empty b);
        Pmalloc.Heap.sfence heap;
        (* releases are epoch-deferred to the next fence *)
        Alcotest.(check int) "live words back to pre-batch level" live_before
          (Pmalloc.Allocator.live_words allocator);
        Alcotest.(check int) "durable state untouched" 10 (Imap.cardinal m));
    Alcotest.test_case "batch intermediates reclaimed at commit" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let m = Imap.open_or_create heap ~slot:0 in
        for k = 0 to 9 do
          Imap.insert m k k
        done;
        Pmalloc.Heap.sfence heap;
        let allocator = Pmalloc.Heap.allocator heap in
        let live_before = Pmalloc.Allocator.live_words allocator in
        (* overwrite the same keys: steady-state size, so every shadow the
           batch chained through must be reclaimed *)
        let b = Mod_core.Batch.create heap in
        for k = 0 to 9 do
          Mod_core.Batch.stage b ~slot:0 (fun v ->
              Imap.insert_pure heap v k (k * 7))
        done;
        ignore (Mod_core.Batch.commit b : Mod_core.Batch.commit_point);
        Pmalloc.Heap.sfence heap;
        (* CHAMP node sizes depend on the update path taken (a same-key copy
           keeps the node width, a fresh insert widens it), so identical map
           contents may differ by a few live words between histories.  What
           must hold: every intermediate shadow the batch chained through is
           released (live stays near the steady-state footprint rather than
           growing by ~3 words per staged op), and nothing unreachable
           survives (recovery's reachability GC reclaims zero words). *)
        let live_after = Pmalloc.Allocator.live_words allocator in
        Alcotest.(check bool) "intermediate shadows released"
          true
          (live_after - live_before < 10);
        ignore (Mod_core.Recovery.recover_exn heap);
        Pmalloc.Heap.sfence heap;
        Alcotest.(check int) "no unreachable shadow survives" live_after
          (Pmalloc.Allocator.live_words allocator);
        Alcotest.(check (option int)) "new value" (Some 21) (Imap.find m 3));
  ]

(* -- Commit.siblings null-root hardening ----------------------------------- *)

let siblings_guard_tests =
  [
    Alcotest.test_case "siblings on a null root slot raises" `Quick (fun () ->
        let heap = fresh_heap () in
        Alcotest.check_raises "null parent"
          (Invalid_argument
             "Commit.siblings: root slot 0 holds no parent object (null)")
          (fun () ->
            Mod_core.Commit.siblings heap ~slot:0 [ (0, Pfds.Pstack.empty) ]));
    Alcotest.test_case "siblings on a scalar root slot raises" `Quick
      (fun () ->
        let heap = fresh_heap () in
        Pmalloc.Heap.root_set heap 0 (Pmem.Word.of_int 17);
        Pmalloc.Heap.sfence heap;
        Alcotest.check_raises "scalar parent"
          (Invalid_argument
             "Commit.siblings: root slot 0 holds no parent object (scalar \
              word)")
          (fun () ->
            Mod_core.Commit.siblings heap ~slot:0 [ (0, Pfds.Pstack.empty) ]));
    Alcotest.test_case "siblings field out of parent range raises" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let parent = Pfds.Node.alloc heap ~words:2 in
        Pfds.Node.set heap parent 0 Pfds.Pstack.empty;
        Pfds.Node.set heap parent 1 Pfds.Pstack.empty;
        Pfds.Node.finish heap parent;
        Mod_core.Commit.single heap ~slot:0 (Pmem.Word.of_ptr parent);
        Alcotest.check_raises "field 5 of a 2-word parent"
          (Invalid_argument
             "Commit.siblings: field 5 outside the 2-word parent")
          (fun () ->
            Mod_core.Commit.siblings heap ~slot:0 [ (5, Pfds.Pstack.empty) ]));
    Alcotest.test_case "Batch.pending_field on a null parent raises" `Quick
      (fun () ->
        let heap = fresh_heap () in
        let b = Mod_core.Batch.create heap in
        Alcotest.check_raises "null parent"
          (Invalid_argument "Batch.pending_field: root slot 0 holds no parent")
          (fun () ->
            ignore
              (Mod_core.Batch.pending_field b ~slot:0 ~field:0
                : Pmem.Word.t)));
  ]

let () =
  Alcotest.run "batch"
    [
      ("selection", selection_tests);
      ("profile", profile_tests);
      ( "differential",
        [
          QCheck_alcotest.to_alcotest batch_differential;
          QCheck_alcotest.to_alcotest batch_split_differential;
        ] );
      ("reclamation", discard_tests);
      ("siblings-guard", siblings_guard_tests);
    ]
