(* Unit and property tests for the persistent-memory hardware model. *)

let word_tests =
  let open Pmem in
  [
    Alcotest.test_case "scalar roundtrip" `Quick (fun () ->
        List.iter
          (fun v -> Alcotest.(check int) "roundtrip" v Word.(to_int (of_int v)))
          [ 0; 1; -1; 42; -42; 1 lsl 60; -(1 lsl 60) ]);
    Alcotest.test_case "pointer roundtrip" `Quick (fun () ->
        List.iter
          (fun p -> Alcotest.(check int) "roundtrip" p Word.(to_ptr (of_ptr p)))
          [ 0; 1; 64; 123456; 1 lsl 40 ]);
    Alcotest.test_case "tags distinguish" `Quick (fun () ->
        Alcotest.(check bool) "ptr is ptr" true (Word.is_ptr (Word.of_ptr 7));
        Alcotest.(check bool) "int not ptr" false (Word.is_ptr (Word.of_int 7));
        Alcotest.(check bool) "null is null" true (Word.is_null Word.null);
        Alcotest.(check bool)
          "ptr 0 is null" true
          (Word.is_null (Word.of_ptr 0));
        Alcotest.(check bool)
          "scalar 0 is not null" false
          (Word.is_null (Word.of_int 0)));
    Alcotest.test_case "decode mismatches raise" `Quick (fun () ->
        Alcotest.check_raises "to_ptr of scalar"
          (Invalid_argument "Word.to_ptr: scalar word") (fun () ->
            ignore (Word.to_ptr (Word.of_int 3)));
        Alcotest.check_raises "to_int of ptr"
          (Invalid_argument "Word.to_int: pointer word") (fun () ->
            ignore (Word.to_int (Word.of_ptr 3))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"scalar roundtrip (qcheck)" ~count:500
         (QCheck.int_range (-(1 lsl 55)) (1 lsl 55))
         (fun v -> Pmem.Word.(to_int (of_int v)) = v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pointer roundtrip (qcheck)" ~count:500
         (QCheck.int_range 0 (1 lsl 50))
         (fun p -> Pmem.Word.(to_ptr (of_ptr p)) = p));
  ]

let region_tests =
  let open Pmem in
  [
    Alcotest.test_case "store visible to load" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 10 (Word.of_int 99);
        Alcotest.(check int) "load" 99 (Word.to_int (Region.load r 10)));
    Alcotest.test_case "unflushed store not durable" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 10 (Word.of_int 99);
        Alcotest.(check int) "durable still zero" 0
          (Word.bits (Region.peek_durable r 10)));
    Alcotest.test_case "clwb+sfence makes durable" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 10 (Word.of_int 99);
        Region.clwb r 10;
        Region.sfence r;
        Alcotest.(check int) "durable" 99
          (Word.to_int (Region.peek_durable r 10)));
    Alcotest.test_case "clwb without fence leaves line in flight" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 10 (Word.of_int 99);
        Region.clwb r 10;
        Alcotest.(check int) "one in flight" 1 (Region.inflight r);
        Region.sfence r;
        Alcotest.(check int) "drained" 0 (Region.inflight r));
    Alcotest.test_case "store joins an in-flight line's writeback" `Quick
      (fun () ->
        (* A store racing a launched writeback joins the line: the next
           fence drains it with the store included, so a neighbour block
           sharing the line keeps its clwb+fence guarantee (false
           sharing must not void another writer's flush). *)
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 10 (Word.of_int 1);
        Region.clwb r 10;
        Region.store r 10 (Word.of_int 2);
        Alcotest.(check int) "still in flight" 1 (Region.inflight r);
        Region.sfence r;
        Alcotest.(check int) "drained" 0 (Region.inflight r);
        Alcotest.(check int) "line durable with the racing store" 2
          (Word.to_int (Region.peek_durable r 10)));
    Alcotest.test_case "crash drops dirty, keeps fenced" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 8 (Word.of_int 11);
        Region.clwb r 8;
        Region.sfence r;
        Region.store r 128 (Word.of_int 22);
        (* dirty, never flushed *)
        Region.crash ~mode:Region.Drop_inflight r;
        Alcotest.(check int) "fenced data survives" 11
          (Word.to_int (Region.load r 8));
        Alcotest.(check int) "dirty data lost" 0 (Word.bits (Region.load r 128)));
    Alcotest.test_case "crash keep-inflight persists launched flushes" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 8 (Word.of_int 11);
        Region.clwb r 8;
        Region.crash ~mode:Region.Keep_inflight r;
        Alcotest.(check int) "in-flight survived" 11
          (Word.to_int (Region.load r 8)));
    Alcotest.test_case "crash drop-inflight loses launched flushes" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 8 (Word.of_int 11);
        Region.clwb r 8;
        Region.crash ~mode:Region.Drop_inflight r;
        Alcotest.(check int) "in-flight lost" 0 (Word.bits (Region.load r 8)));
    Alcotest.test_case "capacity grows on demand" `Quick (fun () ->
        let r = Region.create ~capacity_words:64 () in
        Region.ensure_capacity r 1000;
        Alcotest.(check bool) "grew" true (Region.capacity_words r >= 1000);
        Region.store r 999 (Word.of_int 5);
        Alcotest.(check int) "usable" 5 (Word.to_int (Region.load r 999)));
    Alcotest.test_case "out-of-bounds access raises" `Quick (fun () ->
        let r = Region.create ~capacity_words:64 () in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Region.load r 64);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "sfence counts drained lines once" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        (* words 0 and 1 share a line; 64 is another line *)
        Region.store r 0 (Word.of_int 1);
        Region.store r 1 (Word.of_int 2);
        Region.store r 64 (Word.of_int 3);
        Region.clwb r 0;
        Region.clwb r 1;
        Region.clwb r 64;
        Alcotest.(check int) "two lines in flight" 2 (Region.inflight r);
        Region.sfence r;
        let s = Region.stats r in
        Alcotest.(check int) "drained" 2 s.Pmem.Stats.lines_drained);
  ]

let latency_tests =
  let open Pmem in
  [
    Alcotest.test_case "single flush+fence costs 353ns" `Quick (fun () ->
        Alcotest.(check (float 0.01)) "t1" 353.0 (Latency.amdahl_avg_ns 1));
    Alcotest.test_case "16-way overlap cuts latency ~75%" `Quick (fun () ->
        let avg16 = Latency.amdahl_avg_ns 16 in
        let reduction = (353.0 -. avg16) /. 353.0 in
        Alcotest.(check bool)
          (Printf.sprintf "reduction %.2f in [0.72, 0.80]" reduction)
          true
          (reduction > 0.72 && reduction < 0.80));
    Alcotest.test_case "amdahl is monotone decreasing" `Quick (fun () ->
        let rec check n =
          if n < 32 then begin
            Alcotest.(check bool)
              "monotone" true
              (Latency.amdahl_avg_ns (n + 1) < Latency.amdahl_avg_ns n);
            check (n + 1)
          end
        in
        check 1);
    Alcotest.test_case "fence stall scales with inflight" `Quick (fun () ->
        Alcotest.(check (float 0.01))
          "empty fence" Config.fence_base_ns
          (Latency.fence_stall_ns ~inflight:0);
        Alcotest.(check (float 0.01))
          "1 flush" 353.0
          (Latency.fence_stall_ns ~inflight:1);
        let s8 = Latency.fence_stall_ns ~inflight:8 in
        Alcotest.(check bool)
          "8 flushes cost less than 8 serialized" true
          (s8 < 8.0 *. 353.0));
    Alcotest.test_case "region charges fence stall to flush phase" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        Region.store r 0 (Word.of_int 1);
        Region.clwb r 0;
        let before = (Region.stats r).Stats.ns_flush in
        Region.sfence r;
        let after = (Region.stats r).Stats.ns_flush in
        Alcotest.(check (float 0.01)) "353ns stall" 353.0 (after -. before));
  ]

let hierarchy_tests =
  let open Pmem in
  [
    Alcotest.test_case "L2 absorbs L1 conflict misses cheaply" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:(1 lsl 16) () in
        (* touch a working set larger than L1D (32KB) but far below L2 *)
        let words = 8192 in
        for i = 0 to words - 1 do
          ignore (Region.load r (i * 8))
        done;
        let s = Region.stats r in
        let cold = s.Stats.now_ns in
        Stats.reset s;
        for i = 0 to words - 1 do
          ignore (Region.load r (i * 8))
        done;
        (* second sweep: all L1 misses, but served by L2 at 14ns *)
        Alcotest.(check bool)
          (Printf.sprintf "warm sweep (%.0f) far cheaper than cold (%.0f)"
             s.Stats.now_ns cold)
          true
          (s.Stats.now_ns < cold /. 4.0));
    Alcotest.test_case "first touch pays PM latency" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 () in
        let s = Region.stats r in
        let before = s.Stats.now_ns in
        ignore (Region.load r 512);
        Alcotest.(check (float 0.01)) "PM read" Config.pm_read_ns
          (s.Stats.now_ns -. before);
        let before = s.Stats.now_ns in
        ignore (Region.load r 512);
        Alcotest.(check (float 0.01)) "L1 hit" Config.l1_hit_ns
          (s.Stats.now_ns -. before));
  ]

let cache_tests =
  let open Pmem in
  [
    Alcotest.test_case "repeat access hits" `Quick (fun () ->
        let c = Cache.create () in
        let wb _ = () in
        Alcotest.(check bool) "first miss" false
          (Cache.access c ~writeback:wb ~line:5 ~write:false);
        Alcotest.(check bool) "second hit" true
          (Cache.access c ~writeback:wb ~line:5 ~write:false));
    Alcotest.test_case "conflict misses evict LRU" `Quick (fun () ->
        let c = Cache.create ~sets:1 ~ways:2 () in
        let wb _ = () in
        ignore (Cache.access c ~writeback:wb ~line:1 ~write:false);
        ignore (Cache.access c ~writeback:wb ~line:2 ~write:false);
        ignore (Cache.access c ~writeback:wb ~line:3 ~write:false);
        (* line 1 was LRU and must be gone *)
        Alcotest.(check bool) "line1 evicted" false (Cache.resident c ~line:1);
        Alcotest.(check bool) "line3 resident" true (Cache.resident c ~line:3));
    Alcotest.test_case "dirty eviction triggers writeback" `Quick (fun () ->
        let c = Cache.create ~sets:1 ~ways:1 () in
        let written = ref [] in
        let wb l = written := l :: !written in
        ignore (Cache.access c ~writeback:wb ~line:1 ~write:true);
        ignore (Cache.access c ~writeback:wb ~line:2 ~write:false);
        Alcotest.(check (list int)) "victim written back" [ 1 ] !written);
    Alcotest.test_case "mark_clean suppresses writeback" `Quick (fun () ->
        let c = Cache.create ~sets:1 ~ways:1 () in
        let written = ref [] in
        let wb l = written := l :: !written in
        ignore (Cache.access c ~writeback:wb ~line:1 ~write:true);
        Cache.mark_clean c ~line:1;
        ignore (Cache.access c ~writeback:wb ~line:2 ~write:false);
        Alcotest.(check (list int)) "no writeback" [] !written);
    Alcotest.test_case "eviction writeback makes line durable" `Quick
      (fun () ->
        (* region-level: write many lines so the 32KB L1D must evict;
           evicted dirty lines land in PM even without clwb *)
        let r = Region.create ~capacity_words:(1 lsl 16) () in
        for i = 0 to 8191 do
          Region.store r (i * 8) (Word.of_int i)
        done;
        let durable = ref 0 in
        for i = 0 to 8191 do
          if Word.bits (Region.peek_durable r (i * 8)) <> 0 then incr durable
        done;
        Alcotest.(check bool)
          (Printf.sprintf "%d lines evicted to PM" !durable)
          true (!durable > 4000));
  ]

let stats_tests =
  let open Pmem in
  [
    Alcotest.test_case "phase attribution" `Quick (fun () ->
        let s = Stats.create () in
        Stats.advance s 10.0;
        Stats.in_phase s Stats.Log (fun () -> Stats.advance s 5.0);
        Stats.in_phase s Stats.Flush (fun () -> Stats.advance s 2.0);
        Alcotest.(check (float 0.001)) "other" 10.0 s.Stats.ns_other;
        Alcotest.(check (float 0.001)) "log" 5.0 s.Stats.ns_log;
        Alcotest.(check (float 0.001)) "flush" 2.0 s.Stats.ns_flush;
        Alcotest.(check (float 0.001)) "total" 17.0 s.Stats.now_ns);
    Alcotest.test_case "in_phase restores on exception" `Quick (fun () ->
        let s = Stats.create () in
        (try Stats.in_phase s Stats.Log (fun () -> failwith "boom")
         with Failure _ -> ());
        Stats.advance s 1.0;
        Alcotest.(check (float 0.001)) "charged to other" 1.0 s.Stats.ns_other);
    Alcotest.test_case "snapshot diff" `Quick (fun () ->
        let s = Stats.create () in
        let before = Stats.snapshot s in
        Stats.advance s 7.0;
        s.Stats.clwbs <- 3;
        let d = Stats.diff ~before ~after:(Stats.snapshot s) in
        Alcotest.(check (float 0.001)) "ns" 7.0 d.Stats.s_now_ns;
        Alcotest.(check int) "clwbs" 3 d.Stats.s_clwbs);
  ]

let trace_tests =
  let open Pmem in
  [
    Alcotest.test_case "records region events in order" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 ~trace:true () in
        Region.store r 9 (Word.of_int 1);
        Region.clwb r 9;
        Region.sfence r;
        match Trace.to_list (Region.trace r) with
        | [ Trace.Write { off = 9 }; Trace.Flush { line = 1 }; Trace.Fence ] ->
            ()
        | evs ->
            Alcotest.failf "unexpected trace: %a"
              (Fmt.list ~sep:Fmt.comma Trace.pp_event)
              evs);
    Alcotest.test_case "disabled trace records nothing" `Quick (fun () ->
        let r = Region.create ~capacity_words:1024 ~trace:false () in
        Region.store r 9 (Word.of_int 1);
        Alcotest.(check int) "empty" 0 (Trace.length (Region.trace r)));
    Alcotest.test_case "trace grows past initial capacity" `Quick (fun () ->
        let t = Trace.create ~enabled:true in
        for i = 0 to 5000 do
          Trace.emit t (Trace.Write { off = i })
        done;
        Alcotest.(check int) "all kept" 5001 (Trace.length t));
  ]

let snapshot_tests =
  let open Pmem in
  let both_modes = [ Region.Full_copy; Region.Journal ] in
  (* Apply one random PM operation identically to both regions.  Crash
     seeds are drawn from the test rng so the two regions cannot diverge
     through their internal survival rngs. *)
  let apply_op rng rj rf =
    let cap = Region.capacity_words rj in
    match Random.State.int rng 100 with
    | n when n < 55 ->
        let off = Random.State.int rng cap in
        let v = Word.of_int (Random.State.int rng 1_000_000) in
        Region.store rj off v;
        Region.store rf off v
    | n when n < 75 ->
        let off = Random.State.int rng cap in
        Region.clwb rj off;
        Region.clwb rf off
    | n when n < 88 ->
        Region.sfence rj;
        Region.sfence rf
    | n when n < 96 ->
        let mode =
          match Random.State.int rng 3 with
          | 0 -> Region.Drop_inflight
          | 1 -> Region.Keep_inflight
          | _ -> Region.Randomize
        in
        let seed = Random.State.int rng 1_000_000 in
        Region.crash ~mode ~seed rj;
        Region.crash ~mode ~seed rf
    | _ ->
        let grow =
          cap + (Config.words_per_line * (1 + Random.State.int rng 4))
        in
        Region.ensure_capacity rj grow;
        Region.ensure_capacity rf grow
  in
  [
    Alcotest.test_case "journaled restore == full-copy restore (randomized)"
      `Quick (fun () ->
        (* differential property: a journaled region and a full-copy
           region fed identical store/clwb/sfence/crash/grow sequences
           have bit-identical images after every (possibly stacked)
           snapshot/restore *)
        let rng = Random.State.make [| 0xC0FFEE |] in
        for _trial = 1 to 40 do
          let rj = Region.create ~capacity_words:256 ~seed:7 () in
          let rf = Region.create ~capacity_words:256 ~seed:7 () in
          Region.set_snapshot_mode rj Region.Journal;
          let steps () =
            for _ = 1 to 25 do
              apply_op rng rj rf
            done
          in
          steps ();
          let sj = Region.snapshot rj and sf = Region.snapshot rf in
          steps ();
          (if Random.State.bool rng then begin
             (* stacked: restore an inner snapshot before the outer one *)
             let ij = Region.snapshot rj and inf = Region.snapshot rf in
             steps ();
             Region.restore rj ij;
             Region.restore rf inf;
             Alcotest.(check bool)
               "images equal after inner restore" true
               (Region.images_equal rj rf)
           end);
          Region.restore rj sj;
          Region.restore rf sf;
          Alcotest.(check bool)
            "images equal after restore" true
            (Region.images_equal rj rf);
          Alcotest.(check (float 1e-9))
            "sim clocks agree" (Region.stats rf).Stats.now_ns
            (Region.stats rj).Stats.now_ns
        done);
    Alcotest.test_case "restore after growth rewinds capacity, zeroes tail"
      `Quick (fun () ->
        List.iter
          (fun mode ->
            let r = Region.create ~capacity_words:256 () in
            Region.set_snapshot_mode r mode;
            Region.store r 10 (Word.of_int 5);
            Region.clwb r 10;
            Region.sfence r;
            let snap = Region.snapshot r in
            let cap0 = Region.capacity_words r in
            Region.ensure_capacity r 1024;
            Region.store r 900 (Word.of_int 77);
            Region.clwb r 900;
            Region.sfence r;
            Region.restore r snap;
            Alcotest.(check int)
              "capacity rewound" cap0
              (Region.capacity_words r);
            Alcotest.(check int)
              "pre-growth data intact" 5
              (Word.to_int (Region.peek_current r 10));
            (* growing again must expose zeroed words, not stale ones *)
            Region.ensure_capacity r 1024;
            Alcotest.(check int)
              "grown tail zeroed (current)" 0
              (Word.bits (Region.peek_current r 900));
            Alcotest.(check int)
              "grown tail zeroed (durable)" 0
              (Word.bits (Region.peek_durable r 900)))
          both_modes);
    Alcotest.test_case "restore pins stats across crash sampling" `Quick
      (fun () ->
        (* the Stats.t fix: sweep timing used to drift because restore
           left the clock and counters where the sampled crash pushed
           them *)
        List.iter
          (fun mode ->
            let r = Region.create ~capacity_words:256 () in
            Region.set_snapshot_mode r mode;
            Region.store r 0 (Word.of_int 1);
            Region.clwb r 0;
            Region.sfence r;
            let s = Region.stats r in
            let ns0 = s.Stats.now_ns in
            let fences0 = s.Stats.fences in
            let snap = Region.snapshot r in
            Region.store r 8 (Word.of_int 2);
            Region.clwb r 8;
            Region.sfence r;
            Region.crash r;
            Alcotest.(check bool)
              "clock advanced before restore" true
              ((Region.stats r).Stats.now_ns > ns0);
            Region.restore r snap;
            Alcotest.(check (float 1e-9))
              "now_ns rewound" ns0 (Region.stats r).Stats.now_ns;
            Alcotest.(check int)
              "fences rewound" fences0 (Region.stats r).Stats.fences)
          both_modes);
    Alcotest.test_case "journal records first touch per line only" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:256 () in
        Region.set_snapshot_mode r Region.Journal;
        let _snap = Region.snapshot r in
        Alcotest.(check int) "empty journal" 0 (Region.journal_entries r);
        Region.store r 0 (Word.of_int 1);
        Region.store r 1 (Word.of_int 2);
        Region.store r 2 (Word.of_int 3);
        Alcotest.(check int)
          "same line journaled once" 1
          (Region.journal_entries r);
        Region.store r Config.words_per_line (Word.of_int 4);
        Alcotest.(check int)
          "second line adds one entry" 2
          (Region.journal_entries r));
    Alcotest.test_case "restoring a stale journal token raises" `Quick
      (fun () ->
        let r = Region.create ~capacity_words:256 () in
        Region.set_snapshot_mode r Region.Journal;
        let outer = Region.snapshot r in
        Region.store r 0 (Word.of_int 1);
        let inner = Region.snapshot r in
        Region.restore r outer;
        Alcotest.check_raises "stale token"
          (Invalid_argument
             "Region.restore: stale journaled snapshot (journal truncated \
              below it)") (fun () -> Region.restore r inner));
  ]

let () =
  Alcotest.run "pmem"
    [
      ("word", word_tests);
      ("region", region_tests);
      ("latency", latency_tests);
      ("cache", cache_tests);
      ("hierarchy", hierarchy_tests);
      ("stats", stats_tests);
      ("trace", trace_tests);
      ("snapshot", snapshot_tests);
    ]
