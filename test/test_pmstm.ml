(* Tests for the PMDK-style transaction baseline: log semantics, abort and
   crash rollback, fence profiles, and the transactional datastructures. *)

let w = Pmem.Word.of_int
let uw v = Pmem.Word.to_int v

let mk ?(version = Pmstm.Tx.V1_5) () =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
  let tx = Pmstm.Tx.create heap ~version in
  (heap, tx)

(* A committed cell to mutate transactionally. *)
let mk_cell heap v =
  let cell = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:1 in
  Pmalloc.Heap.store heap cell (w v);
  Pmalloc.Heap.flush_block heap cell;
  Pmalloc.Heap.sfence heap;
  Pmalloc.Heap.root_set heap 0 (Pmem.Word.of_ptr cell);
  Pmalloc.Heap.sfence heap;
  cell

let tx_tests =
  [
    Alcotest.test_case "commit applies in-place writes durably" `Quick
      (fun () ->
        let heap, tx = mk () in
        let cell = mk_cell heap 1 in
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Tx.add tx ~off:cell ~words:1;
            Pmstm.Tx.store tx cell (w 2));
        Alcotest.(check int) "visible" 2 (uw (Pmalloc.Heap.load heap cell));
        Alcotest.(check int) "durable" 2
          (uw (Pmem.Region.peek_durable (Pmalloc.Heap.region heap) cell)));
    Alcotest.test_case "abort rolls back in-place writes" `Quick (fun () ->
        let heap, tx = mk () in
        let cell = mk_cell heap 1 in
        (try
           Pmstm.Tx.run tx (fun () ->
               Pmstm.Tx.add tx ~off:cell ~words:1;
               Pmstm.Tx.store tx cell (w 99);
               failwith "deliberate")
         with Failure _ -> ());
        Alcotest.(check int) "rolled back" 1 (uw (Pmalloc.Heap.load heap cell)));
    Alcotest.test_case "abort frees tx allocations" `Quick (fun () ->
        let heap, tx = mk () in
        let alloc = Pmalloc.Heap.allocator heap in
        let leaked = ref 0 in
        (try
           Pmstm.Tx.run tx (fun () ->
               leaked := Pmstm.Tx.alloc tx ~kind:Pmalloc.Block.Raw ~words:4;
               failwith "deliberate")
         with Failure _ -> ());
        Alcotest.(check bool)
          "freed" false
          (Pmalloc.Allocator.is_allocated alloc !leaked));
    Alcotest.test_case "store without add is rejected" `Quick (fun () ->
        let heap, tx = mk () in
        let cell = mk_cell heap 1 in
        Alcotest.(check bool)
          "raises" true
          (try
             Pmstm.Tx.run tx (fun () -> Pmstm.Tx.store tx cell (w 2));
             false
           with Failure _ -> true);
        Alcotest.(check int) "unchanged" 1 (uw (Pmalloc.Heap.load heap cell)));
    Alcotest.test_case "crash mid-tx rolls back from durable log" `Quick
      (fun () ->
        let heap, tx = mk ~version:Pmstm.Tx.V1_4 () in
        let cell = mk_cell heap 1 in
        (* start a tx, snapshot, overwrite, flush the data... then crash
           before commit invalidates the log *)
        Pmstm.Tx.begin_ tx;
        Pmstm.Tx.add tx ~off:cell ~words:1;
        Pmstm.Tx.store tx cell (w 99);
        Pmalloc.Heap.clwb heap cell;
        Pmalloc.Heap.sfence heap;
        Pmalloc.Heap.crash ~mode:Pmem.Region.Keep_inflight heap;
        let rolled = Pmstm.Tx.recover tx in
        Alcotest.(check bool) "log replayed" true rolled;
        Alcotest.(check int) "old value restored" 1
          (uw (Pmalloc.Heap.load heap cell)));
    Alcotest.test_case "crash after commit preserves new value" `Quick
      (fun () ->
        let heap, tx = mk ~version:Pmstm.Tx.V1_4 () in
        let cell = mk_cell heap 1 in
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Tx.add tx ~off:cell ~words:1;
            Pmstm.Tx.store tx cell (w 2));
        Pmalloc.Heap.crash heap;
        let rolled = Pmstm.Tx.recover tx in
        Alcotest.(check bool) "nothing to replay" false rolled;
        Alcotest.(check int) "committed value" 2
          (uw (Pmalloc.Heap.load heap cell)));
    Alcotest.test_case "nested transactions flatten" `Quick (fun () ->
        let heap, tx = mk () in
        let cell = mk_cell heap 1 in
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Tx.add tx ~off:cell ~words:1;
            Pmstm.Tx.store tx cell (w 2);
            Pmstm.Tx.begin_ tx;
            Pmstm.Tx.store tx cell (w 3);
            Pmstm.Tx.commit tx;
            Alcotest.(check bool) "still in tx" true (Pmstm.Tx.in_tx tx));
        Alcotest.(check bool) "outer committed" false (Pmstm.Tx.in_tx tx);
        Alcotest.(check int) "final value" 3 (uw (Pmalloc.Heap.load heap cell)));
    Alcotest.test_case "v1.4 fences more than v1.5" `Quick (fun () ->
        let count version =
          let heap, tx = mk ~version () in
          let cells = Array.init 2 (fun i -> mk_cell heap i) in
          let stats = Pmalloc.Heap.stats heap in
          let before = stats.Pmem.Stats.fences in
          Pmstm.Tx.run tx (fun () ->
              Array.iter
                (fun c ->
                  Pmstm.Tx.add tx ~off:c ~words:1;
                  Pmstm.Tx.store tx c (w 9))
                cells);
          stats.Pmem.Stats.fences - before
        in
        let f14 = count Pmstm.Tx.V1_4 in
        let f15 = count Pmstm.Tx.V1_5 in
        Alcotest.(check bool)
          (Printf.sprintf "v1.4 (%d) > v1.5 (%d)" f14 f15)
          true (f14 > f15);
        (* paper Section 3: typical PMDK transactions show 5-11 fences
           (undo logging can reach 50 on large transactions) *)
        List.iter
          (fun (v, n) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s in 5-11 range (%d)" v n)
              true
              (n >= 5 && n <= 11))
          [ ("v1.4", f14); ("v1.5", f15) ]);
  ]

(* -- transactional hashmap vs model ---------------------------------------- *)

module Pm_map = Pmstm.Pm_hashmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)
module IntMap = Map.Make (Int)

let hashmap_tests =
  [
    Alcotest.test_case "insert/find/remove" `Quick (fun () ->
        let heap, tx = mk () in
        let desc =
          Pmstm.Tx.run tx (fun () -> Pm_map.create tx ~nbuckets:64)
        in
        Pmstm.Tx.run tx (fun () ->
            Alcotest.(check bool) "added" true (Pm_map.insert tx desc 1 10));
        Pmstm.Tx.run tx (fun () ->
            Alcotest.(check bool) "updated" false (Pm_map.insert tx desc 1 20));
        Alcotest.(check (option int)) "find" (Some 20) (Pm_map.find heap desc 1);
        Alcotest.(check int) "cardinal" 1 (Pm_map.cardinal heap desc);
        Pmstm.Tx.run tx (fun () ->
            Alcotest.(check bool) "removed" true (Pm_map.remove tx desc 1));
        Alcotest.(check (option int)) "gone" None (Pm_map.find heap desc 1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hashmap agrees with Map (qcheck)" ~count:50
         QCheck.(
           list_of_size (Gen.int_range 0 150)
             (pair (int_range 0 40) (int_range 0 1000)))
         (fun ops ->
           let heap, tx = mk () in
           let desc =
             Pmstm.Tx.run tx (fun () -> Pm_map.create tx ~nbuckets:16)
           in
           let model = ref IntMap.empty in
           List.iter
             (fun (k, v) ->
               if v mod 5 = 0 then begin
                 let removed =
                   Pmstm.Tx.run tx (fun () -> Pm_map.remove tx desc k)
                 in
                 let removed_model = IntMap.mem k !model in
                 model := IntMap.remove k !model;
                 if removed <> removed_model then failwith "remove mismatch"
               end
               else begin
                 ignore
                   (Pmstm.Tx.run tx (fun () -> Pm_map.insert tx desc k v)
                     : bool);
                 model := IntMap.add k v !model
               end)
             ops;
           IntMap.for_all (fun k v -> Pm_map.find heap desc k = Some v) !model
           && Pm_map.cardinal heap desc = IntMap.cardinal !model));
    Alcotest.test_case "abort undoes inserts" `Quick (fun () ->
        let heap, tx = mk () in
        let desc =
          Pmstm.Tx.run tx (fun () -> Pm_map.create tx ~nbuckets:16)
        in
        Pmstm.Tx.run tx (fun () -> ignore (Pm_map.insert tx desc 1 10 : bool));
        (try
           Pmstm.Tx.run tx (fun () ->
               ignore (Pm_map.insert tx desc 2 20 : bool);
               failwith "deliberate")
         with Failure _ -> ());
        Alcotest.(check (option int)) "committed stays" (Some 10)
          (Pm_map.find heap desc 1);
        Alcotest.(check (option int)) "aborted gone" None
          (Pm_map.find heap desc 2);
        Alcotest.(check int) "count restored" 1 (Pm_map.cardinal heap desc));
  ]

(* -- transactional array, stack, queue -------------------------------------- *)

let array_tests =
  [
    Alcotest.test_case "push/set/get/swap" `Quick (fun () ->
        let heap, tx = mk () in
        let desc =
          Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.create tx ~capacity:8)
        in
        for i = 0 to 9 do
          Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.push_back tx desc (w i))
        done;
        (* pushed past capacity: growth happened inside a tx *)
        Alcotest.(check int) "size" 10 (Pmstm.Pm_array.size heap desc);
        for i = 0 to 9 do
          Alcotest.(check int) "get" i (uw (Pmstm.Pm_array.get heap desc i))
        done;
        Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.set tx desc 3 (w 33));
        Alcotest.(check int) "set" 33 (uw (Pmstm.Pm_array.get heap desc 3));
        Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.swap tx desc 0 9);
        Alcotest.(check int) "swap lo" 9 (uw (Pmstm.Pm_array.get heap desc 0));
        Alcotest.(check int) "swap hi" 0 (uw (Pmstm.Pm_array.get heap desc 9)));
    Alcotest.test_case "aborted swap leaves both elements" `Quick (fun () ->
        let heap, tx = mk () in
        let desc =
          Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.create tx ~capacity:4)
        in
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Pm_array.push_back tx desc (w 1);
            Pmstm.Pm_array.push_back tx desc (w 2));
        (try
           Pmstm.Tx.run tx (fun () ->
               Pmstm.Pm_array.swap tx desc 0 1;
               failwith "deliberate")
         with Failure _ -> ());
        Alcotest.(check int) "elem0" 1 (uw (Pmstm.Pm_array.get heap desc 0));
        Alcotest.(check int) "elem1" 2 (uw (Pmstm.Pm_array.get heap desc 1)));
  ]

let stack_queue_tests =
  [
    Alcotest.test_case "stack lifo" `Quick (fun () ->
        let heap, tx = mk () in
        let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_stack.create tx) in
        for i = 0 to 9 do
          Pmstm.Tx.run tx (fun () -> Pmstm.Pm_stack.push tx desc (w i))
        done;
        Alcotest.(check int) "length" 10 (Pmstm.Pm_stack.length heap desc);
        for i = 9 downto 0 do
          let v = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_stack.pop tx desc) in
          Alcotest.(check (option int)) "pop" (Some i) (Option.map uw v)
        done;
        Alcotest.(check bool) "empty" true (Pmstm.Pm_stack.is_empty heap desc));
    Alcotest.test_case "queue fifo" `Quick (fun () ->
        let heap, tx = mk () in
        let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.create tx) in
        for i = 0 to 9 do
          Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.enqueue tx desc (w i))
        done;
        for i = 0 to 9 do
          let v = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.dequeue tx desc) in
          Alcotest.(check (option int)) "dequeue" (Some i) (Option.map uw v)
        done;
        Alcotest.(check bool) "empty" true (Pmstm.Pm_queue.is_empty heap desc);
        (* refill after emptying: head/tail reset correctly *)
        Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.enqueue tx desc (w 42));
        let v = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.dequeue tx desc) in
        Alcotest.(check (option int)) "after refill" (Some 42) (Option.map uw v));
    Alcotest.test_case "pop on empty stack/queue" `Quick (fun () ->
        let _heap, tx = mk () in
        let sdesc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_stack.create tx) in
        let qdesc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.create tx) in
        Alcotest.(check bool)
          "stack none" true
          (Pmstm.Tx.run tx (fun () -> Pmstm.Pm_stack.pop tx sdesc) = None);
        Alcotest.(check bool)
          "queue none" true
          (Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.dequeue tx qdesc) = None));
  ]

let edge_tests =
  [
    Alcotest.test_case "log overflow grows the log and retries" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
        let tx =
          Pmstm.Tx.create ~log_capacity_words:64 heap ~version:Pmstm.Tx.V1_5
        in
        (* a committed 50-word block: snapshotting it word by word needs
           150 log words, overflowing the 64-word log -- the transaction
           must abort through the undo path, grow the log and retry, not
           die in the middle of the FASE *)
        let blk = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:50 in
        for i = 0 to 49 do
          Pmalloc.Heap.store heap (blk + i) (w i)
        done;
        Pmalloc.Heap.flush_block heap blk;
        Pmalloc.Heap.sfence heap;
        Pmstm.Tx.run tx (fun () ->
            for i = 0 to 49 do
              Pmstm.Tx.add tx ~off:(blk + i) ~words:1;
              Pmstm.Tx.store tx (blk + i) (w (100 + i))
            done);
        for i = 0 to 49 do
          Alcotest.(check int)
            (Printf.sprintf "word %d updated" i)
            (100 + i)
            (uw (Pmalloc.Heap.load heap (blk + i)))
        done;
        Alcotest.(check bool)
          "log grew" true
          (Pmstm.Tx.log_capacity tx > 64);
        (* the grown log is installed durably: recovery after a crash
           still finds exactly one valid (empty) log *)
        Pmalloc.Heap.crash heap;
        Alcotest.(check bool) "no rollback needed" false (Pmstm.Tx.recover tx));
    Alcotest.test_case "unsatisfiable log demand is a typed Log_full" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
        let tx =
          Pmstm.Tx.create ~log_capacity_words:8 heap ~version:Pmstm.Tx.V1_5
        in
        let blk =
          Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:4096
        in
        Pmalloc.Heap.flush_block heap blk;
        Pmalloc.Heap.sfence heap;
        (* one 4096-word snapshot never fits 8 * 2^6 = 512 words: after
           the growth retries are exhausted the typed Log_full surfaces
           and the transaction is aborted, leaving the heap recoverable *)
        Alcotest.(check bool)
          "raises Log_full" true
          (try
             Pmstm.Tx.run tx (fun () ->
                 Pmstm.Tx.add tx ~off:blk ~words:4096);
             false
           with Pmstm.Tx.Log_full -> true);
        Alcotest.(check bool) "tx aborted" false (Pmstm.Tx.in_tx tx);
        Alcotest.(check bool)
          "recovery clean" true
          (match Mod_core.Recovery.recover ~stm:tx heap with
          | Ok _ -> true
          | Error _ -> false));
    Alcotest.test_case "store_fresh rejects non-fresh targets" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
        let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
        let cell = mk_cell heap 0 in
        Alcotest.(check bool)
          "raises" true
          (try
             Pmstm.Tx.run tx (fun () ->
                 Pmstm.Tx.store_fresh tx cell (w 1));
             false
           with Failure _ -> true);
        ignore cell);
    Alcotest.test_case "ops outside a transaction are rejected" `Quick
      (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
        let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
        let checks =
          [
            (fun () -> Pmstm.Tx.add tx ~off:100 ~words:1);
            (fun () -> Pmstm.Tx.store tx 100 (w 1));
            (fun () ->
              ignore (Pmstm.Tx.alloc tx ~kind:Pmalloc.Block.Raw ~words:2));
            (fun () -> Pmstm.Tx.commit tx);
            (fun () -> Pmstm.Tx.abort tx);
          ]
        in
        List.iter
          (fun f ->
            Alcotest.(check bool)
              "raises" true
              (try
                 f ();
                 false
               with Invalid_argument _ -> true))
          checks);
    Alcotest.test_case "double-range add is deduplicated" `Quick (fun () ->
        let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 18) () in
        let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_4 in
        let cell = mk_cell heap 0 in
        let stats = Pmalloc.Heap.stats heap in
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Tx.add tx ~off:cell ~words:1;
            let fences = stats.Pmem.Stats.fences in
            (* a second add of the same covered range must be free *)
            Pmstm.Tx.add tx ~off:cell ~words:1;
            Alcotest.(check int) "no extra fences" fences
              stats.Pmem.Stats.fences;
            Pmstm.Tx.store tx cell (w 3));
        Alcotest.(check int) "value" 3 (uw (Pmalloc.Heap.load heap cell)));
  ]

(* -- transactional crit-bit tree (WHISPER's ctree) vs model ----------------- *)

let ctree_tests =
  [
    Alcotest.test_case "insert/find/remove" `Quick (fun () ->
        let heap, tx = mk () in
        let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_ctree.create tx) in
        Pmstm.Tx.run tx (fun () ->
            Alcotest.(check bool) "added" true
              (Pmstm.Pm_ctree.insert tx desc 5 (w 50)));
        Pmstm.Tx.run tx (fun () ->
            Alcotest.(check bool) "updated" false
              (Pmstm.Pm_ctree.insert tx desc 5 (w 55)));
        Alcotest.(check (option int)) "find" (Some 55)
          (Option.map uw (Pmstm.Pm_ctree.find heap desc 5));
        Alcotest.(check (option int)) "absent" None
          (Option.map uw (Pmstm.Pm_ctree.find heap desc 4));
        Pmstm.Tx.run tx (fun () ->
            Alcotest.(check bool) "removed" true (Pmstm.Pm_ctree.remove tx desc 5));
        Alcotest.(check int) "empty" 0 (Pmstm.Pm_ctree.cardinal heap desc));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ctree agrees with Map (qcheck)" ~count:50
         QCheck.(
           list_of_size (Gen.int_range 0 150)
             (pair (int_range 0 60) (int_range 0 1000)))
         (fun ops ->
           let heap, tx = mk () in
           let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_ctree.create tx) in
           let model = ref IntMap.empty in
           List.iter
             (fun (k, v) ->
               if v mod 4 = 0 then begin
                 let removed =
                   Pmstm.Tx.run tx (fun () -> Pmstm.Pm_ctree.remove tx desc k)
                 in
                 if removed <> IntMap.mem k !model then failwith "remove";
                 model := IntMap.remove k !model
               end
               else begin
                 let added =
                   Pmstm.Tx.run tx (fun () ->
                       Pmstm.Pm_ctree.insert tx desc k (w v))
                 in
                 if added = IntMap.mem k !model then failwith "insert";
                 model := IntMap.add k v !model
               end)
             ops;
           IntMap.for_all
             (fun k v ->
               Option.map uw (Pmstm.Pm_ctree.find heap desc k) = Some v)
             !model
           && Pmstm.Pm_ctree.cardinal heap desc = IntMap.cardinal !model));
    Alcotest.test_case "abort rolls back a splice" `Quick (fun () ->
        let heap, tx = mk () in
        let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_ctree.create tx) in
        Pmstm.Tx.run tx (fun () ->
            ignore (Pmstm.Pm_ctree.insert tx desc 1 (w 1) : bool));
        (try
           Pmstm.Tx.run tx (fun () ->
               ignore (Pmstm.Pm_ctree.insert tx desc 3 (w 3) : bool);
               failwith "deliberate")
         with Failure _ -> ());
        Alcotest.(check (option int)) "old key intact" (Some 1)
          (Option.map uw (Pmstm.Pm_ctree.find heap desc 1));
        Alcotest.(check (option int)) "aborted key gone" None
          (Option.map uw (Pmstm.Pm_ctree.find heap desc 3));
        Alcotest.(check int) "count restored" 1
          (Pmstm.Pm_ctree.cardinal heap desc));
    Alcotest.test_case "iter visits all keys" `Quick (fun () ->
        let heap, tx = mk () in
        let desc = Pmstm.Tx.run tx (fun () -> Pmstm.Pm_ctree.create tx) in
        for k = 0 to 63 do
          Pmstm.Tx.run tx (fun () ->
              ignore (Pmstm.Pm_ctree.insert tx desc (k * 17 mod 101) (w k) : bool))
        done;
        let seen = Hashtbl.create 64 in
        Pmstm.Pm_ctree.iter heap desc (fun k _ -> Hashtbl.replace seen k ());
        Alcotest.(check int) "all distinct keys" 64 (Hashtbl.length seen));
  ]

let () =
  Alcotest.run "pmstm"
    [
      ("tx", tx_tests);
      ("hashmap", hashmap_tests);
      ("array", array_tests);
      ("stack-queue", stack_queue_tests);
      ("edges", edge_tests);
      ("ctree", ctree_tests);
    ]
