(* Unit and property tests for the persistent allocator, heap and
   recovery GC. *)

let mk_heap ?(capacity = 1 lsl 16) ?(trace = false) () =
  Pmalloc.Heap.create ~capacity_words:capacity ~trace ()

let alloc_tests =
  [
    Alcotest.test_case "alloc returns distinct blocks" `Quick (fun () ->
        let heap = mk_heap () in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:4 in
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:4 in
        Alcotest.(check bool) "distinct" true (a <> b));
    Alcotest.test_case "block metadata round-trips" `Quick (fun () ->
        let heap = mk_heap () in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:10 in
        let alloc = Pmalloc.Heap.allocator heap in
        Alcotest.(check int) "used" 10 (Pmalloc.Allocator.used_of alloc a);
        Alcotest.(check bool)
          "raw kind" true
          (Pmalloc.Allocator.kind_of alloc a = Pmalloc.Block.Raw);
        Alcotest.(check bool)
          "capacity >= used+header" true
          (Pmalloc.Allocator.capacity_of alloc a
          >= 10 + Pmalloc.Block.header_words));
    Alcotest.test_case "free then alloc reuses memory" `Quick (fun () ->
        let heap = mk_heap () in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:6 in
        Pmalloc.Heap.free heap a;
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:6 in
        Alcotest.(check int) "same block back" a b);
    Alcotest.test_case "double free raises" `Quick (fun () ->
        let heap = mk_heap () in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:4 in
        Pmalloc.Heap.free heap a;
        Alcotest.(check bool)
          "raises" true
          (try
             Pmalloc.Heap.free heap a;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "live accounting" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let before = Pmalloc.Allocator.live_words alloc in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:6 in
        let mid = Pmalloc.Allocator.live_words alloc in
        Alcotest.(check bool) "grew" true (mid > before);
        Pmalloc.Heap.free heap a;
        Alcotest.(check int) "restored" before (Pmalloc.Allocator.live_words alloc));
    Alcotest.test_case "large blocks split and reuse" `Quick (fun () ->
        let heap = mk_heap () in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:500 in
        Pmalloc.Heap.free heap a;
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:100 in
        let c = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:100 in
        (* both carved out of the freed 500-word block *)
        let top = a + 500 in
        Alcotest.(check bool) "b inside" true (b >= a - 2 && b < top);
        Alcotest.(check bool) "c inside" true (c >= a - 2 && c < top));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"allocations never overlap (qcheck)" ~count:50
         QCheck.(list_of_size (Gen.int_range 1 60) (int_range 1 80))
         (fun sizes ->
           let heap = mk_heap ~capacity:(1 lsl 18) () in
           let alloc = Pmalloc.Heap.allocator heap in
           let blocks =
             List.map
               (fun w -> (Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:w, w))
               sizes
           in
           (* extents [header, header+capacity) must be pairwise disjoint *)
           let extents =
             List.map
               (fun (body, _) ->
                 let h = Pmalloc.Block.header_of_body body in
                 (h, h + Pmalloc.Allocator.capacity_of alloc body))
               blocks
           in
           let sorted = List.sort compare extents in
           let rec disjoint = function
             | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
             | _ -> true
           in
           disjoint sorted));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"free/alloc churn preserves contents (qcheck)"
         ~count:30
         QCheck.(small_list (int_range 1 40))
         (fun sizes ->
           let heap = mk_heap ~capacity:(1 lsl 18) () in
           (* write a signature into each block, free every other one,
              re-allocate, and confirm survivors are intact *)
           let blocks =
             List.mapi
               (fun i w ->
                 let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:w in
                 Pmalloc.Heap.store heap b (Pmem.Word.of_int (i + 1000));
                 (i, b, w))
               sizes
           in
           List.iter
             (fun (i, b, _) -> if i mod 2 = 0 then Pmalloc.Heap.free heap b)
             blocks;
           List.for_all
             (fun (i, b, _) ->
               i mod 2 = 0
               || Pmem.Word.to_int (Pmalloc.Heap.load heap b) = i + 1000)
             blocks));
  ]

(* Regression (allocator dealloc order): freeing a body that is not live
   must raise -- and must raise *before* any header decode can poison the
   accounting.  The old dealloc decoded the header word first, so a stale
   body whose block had been freed, re-split and overwritten subtracted a
   garbage capacity from [live_words] before the double-free check fired. *)
let dealloc_order_tests =
  [
    Alcotest.test_case "stale free leaves accounting intact" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:40 in
        Pmalloc.Heap.free heap a;
        (* recycle the extent as two smaller blocks: [a]'s old header word
           now holds a different block's metadata (or plain payload) *)
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:12 in
        let c = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:12 in
        List.iter
          (fun off -> Pmalloc.Heap.store heap off (Pmem.Word.of_int 0x5A5A))
          [ b; c ];
        let live = Pmalloc.Allocator.live_words alloc in
        let free = Pmalloc.Allocator.free_words alloc in
        Alcotest.(check bool)
          "stale free raises" true
          (try
             Pmalloc.Heap.free heap a;
             false
           with Invalid_argument _ -> true);
        Alcotest.(check int) "live words untouched" live
          (Pmalloc.Allocator.live_words alloc);
        Alcotest.(check int) "free words untouched" free
          (Pmalloc.Allocator.free_words alloc);
        (* the two live blocks are still sound *)
        Alcotest.(check int) "b intact" 0x5A5A
          (Pmem.Word.to_int (Pmalloc.Heap.load heap b));
        Alcotest.(check int) "b used" 12 (Pmalloc.Allocator.used_of alloc b));
    Alcotest.test_case "free of a never-allocated body raises" `Quick
      (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:16 in
        let live = Pmalloc.Allocator.live_words alloc in
        Alcotest.(check bool)
          "interior offset raises" true
          (try
             Pmalloc.Heap.free heap (a + 3);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check int) "accounting intact" live
          (Pmalloc.Allocator.live_words alloc));
  ]

(* Coalescing (freelist fragmentation): a freed split tail must re-fuse
   with its physical neighbors so the original extent is allocatable
   again, instead of fragmenting into ever-smaller shards. *)
let coalescing_tests =
  [
    Alcotest.test_case "split tails re-fuse on free" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:500 in
        Pmalloc.Heap.free heap a;
        (* split the 500-word extent: the allocation takes the head, the
           tail goes back to a coarse bin *)
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:100 in
        Alcotest.(check int) "head of the freed extent" a b;
        let frontier = Pmalloc.Allocator.frontier alloc in
        let before = Pmalloc.Allocator.coalesces alloc in
        Pmalloc.Heap.free heap b;
        Alcotest.(check bool)
          "neighbor merge happened" true
          (Pmalloc.Allocator.coalesces alloc > before);
        (* the re-fused extent serves a near-full-size allocation without
           touching the frontier *)
        let c = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:480 in
        Alcotest.(check int) "same extent again" a c;
        Alcotest.(check int) "no frontier growth" frontier
          (Pmalloc.Allocator.frontier alloc));
    Alcotest.test_case "fragmentation gauge drops on merge" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        (* three adjacent large blocks; freeing them out of order must
           collapse the freelist back to one entry *)
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:200 in
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:200 in
        let c = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:200 in
        Pmalloc.Heap.free heap a;
        Pmalloc.Heap.free heap c;
        Alcotest.(check int) "two disjoint extents" 2
          (Pmalloc.Allocator.freelist_entries alloc);
        Pmalloc.Heap.free heap b;
        (* b bridges a and c: both probes fire *)
        Alcotest.(check int) "one fused extent" 1
          (Pmalloc.Allocator.freelist_entries alloc));
  ]

(* Conservation (arenas + freelist + deferral + padding): every word
   between heap start and the frontier is in exactly one ledger for any
   crash-free alloc/release/fence history. *)
let conservation_test =
  let conserved alloc =
    Pmalloc.Allocator.live_words alloc
    + Pmalloc.Allocator.free_words alloc
    + Pmalloc.Allocator.deferred_words alloc
    + Pmalloc.Allocator.pad_words alloc
    = Pmalloc.Allocator.frontier alloc - Pmalloc.Allocator.heap_start alloc
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"live+free+deferred+pad covers the heap (qcheck)" ~count:60
         QCheck.(list_of_size (Gen.int_range 1 120) (int_range 0 1023))
         (fun ops ->
           let heap = mk_heap ~capacity:(1 lsl 18) () in
           let alloc = Pmalloc.Heap.allocator heap in
           let live = ref [] in
           let ok = ref true in
           List.iter
             (fun n ->
               (match n mod 10 with
               | 0 | 1 | 2 | 3 | 4 ->
                   (* arena classes and freelist sizes both in range *)
                   let words = 1 + (n mod 80) in
                   let b =
                     Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words
                   in
                   live := b :: !live
               | 5 | 6 | 7 -> (
                   match !live with
                   | [] -> ()
                   | l ->
                       let i = n mod List.length l in
                       let b = List.nth l i in
                       live := List.filteri (fun j _ -> j <> i) l;
                       (* epoch-deferred reclamation path *)
                       Pmalloc.Heap.release heap b)
               | 8 -> (
                   match !live with
                   | [] -> ()
                   | b :: rest ->
                       live := rest;
                       (* immediate-free path *)
                       Pmalloc.Heap.free heap b)
               | _ -> Pmalloc.Heap.sfence heap);
               if not (conserved alloc) then ok := false)
             ops;
           (* drain the deferral pipeline and re-check the identity *)
           Pmalloc.Heap.sfence heap;
           Pmalloc.Heap.sfence heap;
           !ok && conserved alloc
           && Pmalloc.Allocator.deferred_words alloc = 0));
  ]

let rc_tests =
  [
    Alcotest.test_case "retain/release lifecycle" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:2 in
        Alcotest.(check int) "initial rc" 1 (Pmalloc.Allocator.rc_get alloc a);
        Pmalloc.Heap.retain heap a;
        Alcotest.(check int) "after retain" 2 (Pmalloc.Allocator.rc_get alloc a);
        Pmalloc.Heap.release heap a;
        Alcotest.(check bool)
          "still allocated" true
          (Pmalloc.Allocator.is_allocated alloc a);
        Pmalloc.Heap.release heap a;
        Alcotest.(check bool)
          "freed at zero" false
          (Pmalloc.Allocator.is_allocated alloc a));
    Alcotest.test_case "release cascades through children" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let child = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
        Pmalloc.Heap.store heap child (Pmem.Word.of_int 5);
        let parent = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
        Pmalloc.Heap.store heap parent (Pmem.Word.of_ptr child);
        Pmalloc.Heap.release heap parent;
        Alcotest.(check bool)
          "child freed too" false
          (Pmalloc.Allocator.is_allocated alloc child));
    Alcotest.test_case "shared child survives one parent" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let child = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
        Pmalloc.Heap.store heap child (Pmem.Word.of_int 5);
        let mk_parent () =
          let p = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
          Pmalloc.Heap.store heap p (Pmem.Word.of_ptr child);
          p
        in
        let p1 = mk_parent () in
        Pmalloc.Heap.retain heap child;
        (* second parent shares *)
        let p2 = mk_parent () in
        Pmalloc.Heap.release heap p1;
        Alcotest.(check bool)
          "child alive" true
          (Pmalloc.Allocator.is_allocated alloc child);
        Pmalloc.Heap.release heap p2;
        Alcotest.(check bool)
          "child freed" false
          (Pmalloc.Allocator.is_allocated alloc child));
    Alcotest.test_case "raw children are freed, not scanned" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        let blob = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:3 in
        (* raw payload that would decode as a pointer if misread *)
        Pmalloc.Heap.store heap blob (Pmem.Word.raw 12345);
        let parent = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
        Pmalloc.Heap.store heap parent (Pmem.Word.of_ptr blob);
        Pmalloc.Heap.release heap parent;
        Alcotest.(check bool)
          "blob freed" false
          (Pmalloc.Allocator.is_allocated alloc blob));
  ]

let freelist_tests =
  [
    Alcotest.test_case "exact bins roundtrip" `Quick (fun () ->
        let fl = Pmalloc.Freelist.create () in
        Pmalloc.Freelist.insert fl ~body:100 ~capacity:8;
        Pmalloc.Freelist.insert fl ~body:200 ~capacity:8;
        Alcotest.(check int) "free words" 16 (Pmalloc.Freelist.free_words fl);
        (match Pmalloc.Freelist.take_exact fl 8 with
        | Some e -> Alcotest.(check int) "capacity" 8 e.Pmalloc.Freelist.capacity
        | None -> Alcotest.fail "expected a block");
        Alcotest.(check int) "free words after" 8
          (Pmalloc.Freelist.free_words fl));
    Alcotest.test_case "first-fit from coarse buckets" `Quick (fun () ->
        let fl = Pmalloc.Freelist.create () in
        Pmalloc.Freelist.insert fl ~body:100 ~capacity:100;
        Pmalloc.Freelist.insert fl ~body:300 ~capacity:400;
        (match Pmalloc.Freelist.take_at_least fl 150 with
        | Some e ->
            Alcotest.(check bool) "big enough" true (e.Pmalloc.Freelist.capacity >= 150)
        | None -> Alcotest.fail "expected a block");
        (* the 100-word block must still be available *)
        match Pmalloc.Freelist.take_at_least fl 80 with
        | Some e -> Alcotest.(check int) "remaining block" 100 e.Pmalloc.Freelist.capacity
        | None -> Alcotest.fail "expected the small block");
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"free words invariant (qcheck)" ~count:100
         QCheck.(small_list (int_range 4 500))
         (fun caps ->
           let fl = Pmalloc.Freelist.create () in
           List.iteri
             (fun i c -> Pmalloc.Freelist.insert fl ~body:(i * 1000) ~capacity:c)
             caps;
           let total = List.fold_left ( + ) 0 caps in
           let rec drain acc =
             match Pmalloc.Freelist.take_at_least fl 4 with
             | Some e -> drain (acc + e.Pmalloc.Freelist.capacity)
             | None -> acc
           in
           let drained = drain 0 in
           drained = total && Pmalloc.Freelist.free_words fl = 0));
  ]

let root_tests =
  [
    Alcotest.test_case "root slots start null" `Quick (fun () ->
        let heap = mk_heap () in
        for slot = 0 to Pmalloc.Heap.root_slots - 1 do
          Alcotest.(check bool)
            "null" true
            (Pmem.Word.is_null (Pmalloc.Heap.root_get heap slot))
        done);
    Alcotest.test_case "root set/get" `Quick (fun () ->
        let heap = mk_heap () in
        Pmalloc.Heap.root_set heap 3 (Pmem.Word.of_ptr 100);
        Alcotest.(check int) "roundtrip" 100
          (Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 3)));
    Alcotest.test_case "slot bounds checked" `Quick (fun () ->
        let heap = mk_heap () in
        Alcotest.(check bool)
          "raises" true
          (try
             ignore (Pmalloc.Heap.root_get heap 64);
             false
           with Invalid_argument _ -> true));
  ]

(* Build a small linked structure, commit it properly (flush+fence+root),
   then crash and check the recovery GC. *)
let recovery_tests =
  [
    Alcotest.test_case "reachable data survives, leaks reclaimed" `Quick
      (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        (* leaked block from an interrupted FASE: flushed but unreachable;
           allocated first so it sits in a gap between live blocks *)
        let leak = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:8 in
        Pmalloc.Heap.store heap leak (Pmem.Word.of_int 99);
        Pmalloc.Heap.flush_block heap leak;
        Pmalloc.Heap.sfence heap;
        (* committed chain: root -> a -> b *)
        let b = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:2 in
        Pmalloc.Heap.store heap b (Pmem.Word.of_int 22);
        Pmalloc.Heap.store heap (b + 1) Pmem.Word.null;
        Pmalloc.Heap.flush_block heap b;
        let a = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:2 in
        Pmalloc.Heap.store heap a (Pmem.Word.of_int 11);
        Pmalloc.Heap.store heap (a + 1) (Pmem.Word.of_ptr b);
        Pmalloc.Heap.flush_block heap a;
        Pmalloc.Heap.sfence heap;
        Pmalloc.Heap.root_set heap 0 (Pmem.Word.of_ptr a);
        Pmalloc.Heap.clwb heap 0;
        Pmalloc.Heap.sfence heap;
        Pmalloc.Heap.crash heap;
        let report = Pmalloc.Recovery_gc.recover heap in
        Alcotest.(check int) "two live blocks" 2
          report.Pmalloc.Recovery_gc.live_blocks;
        Alcotest.(check bool)
          "leak reclaimed" true
          (report.Pmalloc.Recovery_gc.reclaimed_words > 0);
        (* data is intact after recovery *)
        let a' = Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 0) in
        Alcotest.(check int) "a data" 11
          (Pmem.Word.to_int (Pmalloc.Heap.load heap a'));
        let b' = Pmem.Word.to_ptr (Pmalloc.Heap.load heap (a' + 1)) in
        Alcotest.(check int) "b data" 22
          (Pmem.Word.to_int (Pmalloc.Heap.load heap b'));
        (* reclaimed space is reusable *)
        let fresh = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:4 in
        Alcotest.(check bool)
          "allocator functional" true
          (Pmalloc.Allocator.is_allocated alloc fresh));
    Alcotest.test_case "recovery recomputes shared refcounts" `Quick (fun () ->
        let heap = mk_heap () in
        let alloc = Pmalloc.Heap.allocator heap in
        (* diamond: two parents share one child; both parents in roots *)
        let child = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
        Pmalloc.Heap.store heap child (Pmem.Word.of_int 7);
        Pmalloc.Heap.flush_block heap child;
        let mk_parent slot =
          let p = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words:1 in
          Pmalloc.Heap.store heap p (Pmem.Word.of_ptr child);
          Pmalloc.Heap.flush_block heap p;
          Pmalloc.Heap.sfence heap;
          Pmalloc.Heap.root_set heap slot (Pmem.Word.of_ptr p);
          Pmalloc.Heap.clwb heap slot
        in
        mk_parent 0;
        mk_parent 1;
        Pmalloc.Heap.sfence heap;
        Pmalloc.Heap.crash heap;
        ignore (Pmalloc.Recovery_gc.recover heap);
        let child' =
          Pmem.Word.to_ptr
            (Pmalloc.Heap.load heap
               (Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap 0)))
        in
        Alcotest.(check int) "in-degree 2" 2
          (Pmalloc.Allocator.rc_get alloc child'));
    Alcotest.test_case "empty heap recovers to empty" `Quick (fun () ->
        let heap = mk_heap () in
        Pmalloc.Heap.crash heap;
        let report = Pmalloc.Recovery_gc.recover heap in
        Alcotest.(check int) "no live blocks" 0
          report.Pmalloc.Recovery_gc.live_blocks);
  ]

let () =
  Alcotest.run "pmalloc"
    [
      ("allocator", alloc_tests);
      ("dealloc-order", dealloc_order_tests);
      ("coalescing", coalescing_tests);
      ("conservation", conservation_test);
      ("refcounts", rc_tests);
      ("freelist", freelist_tests);
      ("roots", root_tests);
      ("recovery", recovery_tests);
    ]
