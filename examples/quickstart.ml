(* Quickstart: the MOD Basic interface in five minutes.

   Every update below is a self-contained failure-atomic section with a
   single ordering point; a power failure at any instant leaves each
   datastructure in exactly its pre- or post-operation state.

   Run with: dune exec examples/quickstart.exe *)

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let () =
  (* A persistent heap: on real hardware this would be a DAX-mapped file
     on Optane DCPMM; here it is the simulated region. *)
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in

  (* Datastructures live in root slots so they can be found again after a
     restart.  [open_or_create] binds an existing structure or installs an
     empty one. *)
  let inventory = Imap.open_or_create heap ~slot:0 in
  let backlog = Mod_core.Dqueue.open_or_create heap ~slot:1 in
  let history = Mod_core.Dstack.open_or_create heap ~slot:2 in

  (* Updates look like updates on ordinary mutable containers. *)
  Imap.insert inventory 1001 25;
  Imap.insert inventory 1002 7;
  Imap.insert inventory 1001 24;
  (* overwrite *)
  Printf.printf "item 1001 stock: %s\n"
    (match Imap.find inventory 1001 with
    | Some n -> string_of_int n
    | None -> "-");

  Mod_core.Dqueue.enqueue backlog (Pmem.Word.of_int 555);
  Mod_core.Dstack.push history (Pmem.Word.of_int 1);

  (* Each of those calls was one FASE: one fence, no logging.  Check the
     claim live with the Fase profiler. *)
  let _, profile =
    Mod_core.Fase.run heap (fun () -> Imap.insert inventory 1003 3)
  in
  Format.printf "one insert cost: %a@." Mod_core.Fase.pp_profile profile;

  (* Simulate a power failure and recover: root slots still lead to the
     committed state, leaked shadows are collected.  (The fence closes the
     current epoch; without it, the very last update's root write may
     still be in flight and legitimately roll back one operation.) *)
  Pmalloc.Heap.sfence heap;
  let report = Mod_core.Recovery.crash_and_recover_exn heap in
  Format.printf "after crash: %a@." Mod_core.Recovery.pp_report report;

  (* Reopening after a restart is the moment things can be wrong (stale
     slot number, a different structure's root): [open_result] validates
     and returns a typed error instead of trusting the slot. *)
  let inventory =
    match Imap.open_result heap ~slot:0 with
    | Ok m -> m
    | Error e -> failwith (Mod_core.Error.to_string e)
  in
  Printf.printf "recovered inventory size: %d\n" (Imap.cardinal inventory);
  Printf.printf "recovered backlog length: %d\n"
    (Mod_core.Dqueue.length (Mod_core.Dqueue.open_or_create heap ~slot:1));
  Printf.printf "recovered history length: %d\n"
    (Mod_core.Dstack.length (Mod_core.Dstack.open_or_create heap ~slot:2));

  (* Metrics: install a telemetry collector and every Basic-interface
     call reports itself -- per-(structure x op) latency histograms and
     a fence-stall attribution that sums back to the global counter.
     The CLI equivalents: `modpm run map --metrics json` and
     `modpm stats`. *)
  let collector = Telemetry.install (Pmalloc.Heap.stats heap) in
  for i = 0 to 199 do
    Imap.insert inventory (2000 + i) i
  done;
  Imap.insert_many inventory (List.init 32 (fun i -> (3000 + i, i)));
  Telemetry.uninstall ();
  Format.printf "@.%a@." Telemetry.pp_report (Telemetry.report collector)
