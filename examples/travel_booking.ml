(* A travel-reservation service, in the style of the paper's vacation port
   (Section 6.2): four recoverable maps owned by one manager object, with
   multi-map failure-atomic sections through the Composition interface and
   CommitSiblings.

   A reservation must debit an item table AND credit the customer table
   atomically -- exactly the case Figure 8c is for.

   Run with: dune exec examples/travel_booking.exe *)

module Table = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let manager_slot = 0
let cars = 0
let flights = 1
let rooms = 2
let customers = 3

(* manager object: a 4-field parent block *)
let create_manager heap =
  let parent = Pfds.Node.alloc heap ~words:4 in
  for f = 0 to 3 do
    Pfds.Node.set heap parent f (Table.empty_version heap)
  done;
  Pfds.Node.finish heap parent;
  Mod_core.Commit.single heap ~slot:manager_slot (Pmem.Word.of_ptr parent)

let field heap f =
  let p = Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap manager_slot) in
  Pfds.Node.get heap p f

(* one FASE: add stock to an item table *)
let restock heap table item qty =
  let stock =
    Option.value ~default:0 (Table.find_in heap (field heap table) item)
  in
  let tbl' = Table.insert_pure heap (field heap table) item (stock + qty) in
  Mod_core.Commit.siblings heap ~slot:manager_slot [ (table, tbl') ]

(* one FASE: move a unit from an item table to a customer's itinerary *)
let reserve heap ~table ~item ~customer =
  match Table.find_in heap (field heap table) item with
  | Some stock when stock > 0 ->
      let tbl' = Table.insert_pure heap (field heap table) item (stock - 1) in
      let trips =
        Option.value ~default:0 (Table.find_in heap (field heap customers) customer)
      in
      let cust' =
        Table.insert_pure heap (field heap customers) customer (trips + 1)
      in
      Mod_core.Commit.siblings heap ~slot:manager_slot
        [ (table, tbl'); (customers, cust') ];
      true
  | Some _ | None -> false

let () =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 21) () in
  create_manager heap;

  for item = 0 to 49 do
    restock heap cars item 5;
    restock heap flights item 8;
    restock heap rooms item 3
  done;

  let rng = Random.State.make [| 2026 |] in
  let booked = ref 0 and refused = ref 0 in
  for _ = 1 to 400 do
    let table = Random.State.int rng 3 in
    let item = Random.State.int rng 50 in
    let customer = Random.State.int rng 40 in
    if reserve heap ~table ~item ~customer then incr booked else incr refused
  done;
  Printf.printf "booked %d reservations (%d refused: sold out)\n" !booked
    !refused;

  (* crash in the middle of the day; the books still balance *)
  let _ = Mod_core.Recovery.crash_and_recover_exn heap in
  let stock_sum f =
    let v = field heap f in
    let total = ref 0 in
    for item = 0 to 49 do
      total := !total + Option.value ~default:0 (Table.find_in heap v item)
    done;
    !total
  in
  let trips =
    let v = field heap customers in
    let total = ref 0 in
    for c = 0 to 39 do
      total := !total + Option.value ~default:0 (Table.find_in heap v c)
    done;
    !total
  in
  let stock = stock_sum cars + stock_sum flights + stock_sum rooms in
  Printf.printf "after crash: stock %d + trips %d = %d (expected 800)\n" stock
    trips (stock + trips)
