(* A tour of MOD's failure-atomicity machinery: what exactly survives a
   power failure, how leaked shadows are collected, and how the Section
   5.4 checker certifies an execution.

   Run with: dune exec examples/crash_recovery.exe *)

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let () =
  (* trace everything so the checker can audit the run afterwards *)
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) ~trace:true () in
  let m = Imap.open_or_create heap ~slot:0 in

  (* 1. committed state survives any crash mode *)
  for k = 1 to 100 do
    Imap.insert m k (k * k)
  done;
  Pmalloc.Heap.sfence heap;
  (* close the epoch *)
  Pmalloc.Heap.crash ~mode:Pmem.Region.Drop_inflight heap;
  let gc = Pmalloc.Recovery_gc.recover heap in
  Format.printf "1. worst-case crash: %a@." Pmalloc.Recovery_gc.pp_report gc;
  let m = Imap.open_or_create heap ~slot:0 in
  Printf.printf "   all %d entries intact, 50 -> %d\n" (Imap.cardinal m)
    (Option.get (Imap.find m 50));

  (* 2. an interrupted FASE leaks only memory, never consistency *)
  let doomed_shadow =
    Imap.insert_pure heap (Mod_core.Handle.current m) 777 0
  in
  ignore (doomed_shadow : Pmem.Word.t);
  (* ... power failure before Commit *)
  let report = Mod_core.Recovery.crash_and_recover_exn heap in
  Format.printf "2. interrupted FASE: %a@." Mod_core.Recovery.pp_report report;
  let m = Imap.open_or_create heap ~slot:0 in
  Printf.printf "   key 777 absent: %b; map still has %d entries\n"
    (Imap.find m 777 = None)
    (Imap.cardinal m);

  (* 3. multi-datastructure FASEs are all-or-nothing *)
  let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
  let other = Imap.open_or_create heap ~slot:1 in
  ignore (other : Imap.t);
  let v0 = Mod_core.Handle.current m in
  let v1 = Mod_core.Handle.current (Imap.open_or_create heap ~slot:1) in
  let value = Option.get (Imap.find_in heap v0 1) in
  let v0', _ = Imap.remove_pure heap v0 1 in
  let v1' = Imap.insert_pure heap v1 1 value in
  Mod_core.Commit.unrelated heap tx [ (0, v0'); (1, v1') ];
  let report = Mod_core.Recovery.crash_and_recover_exn ~stm:tx heap in
  Format.printf "3. cross-map move + crash: %a@." Mod_core.Recovery.pp_report
    report;
  let m = Imap.open_or_create heap ~slot:0 in
  let other = Imap.open_or_create heap ~slot:1 in
  Printf.printf "   key 1 in exactly one map: %b\n"
    (Imap.mem m 1 <> Imap.mem other 1);

  (* 4. the whole execution passes the Section 5.4 audit *)
  let audit = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
  Format.printf "4. %a@." Mod_core.Consistency.pp_report audit
