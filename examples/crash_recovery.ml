(* A tour of MOD's failure-atomicity machinery: what exactly survives a
   power failure, how leaked shadows are collected, how recovery reports
   corruption as typed errors instead of exceptions, and how a heap
   image outlives the process that wrote it.

   Run with: dune exec examples/crash_recovery.exe *)

module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

(* Every recovery entry point has a typed-result form: corruption comes
   back as [Error (e : Mod_core.Error.t)], never as an exception.  The
   example threads all its recoveries through this one handler. *)
let recovered what = function
  | Ok report -> report
  | Error e ->
      Printf.eprintf "%s: degraded with typed error: %s\n" what
        (Mod_core.Error.to_string e);
      exit 1

let () =
  (* trace everything so the checker can audit the run afterwards *)
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) ~trace:true () in
  let m = Imap.open_or_create heap ~slot:0 in

  (* 1. committed state survives any crash mode *)
  for k = 1 to 100 do
    Imap.insert m k (k * k)
  done;
  Pmalloc.Heap.sfence heap;
  (* close the epoch *)
  Pmalloc.Heap.crash ~mode:Pmem.Region.Drop_inflight heap;
  let report =
    recovered "worst-case crash" (Mod_core.Recovery.recover heap)
  in
  Format.printf "1. worst-case crash: %a@." Mod_core.Recovery.pp_report report;
  let m = Imap.open_or_create heap ~slot:0 in
  Printf.printf "   all %d entries intact, 50 -> %d\n" (Imap.cardinal m)
    (Option.get (Imap.find m 50));

  (* 2. an interrupted FASE leaks only memory, never consistency *)
  let doomed_shadow =
    Imap.insert_pure heap (Mod_core.Handle.current m) 777 0
  in
  ignore (doomed_shadow : Pmem.Word.t);
  (* ... power failure before Commit *)
  let report =
    recovered "interrupted FASE" (Mod_core.Recovery.crash_and_recover heap)
  in
  Format.printf "2. interrupted FASE: %a@." Mod_core.Recovery.pp_report report;
  let m = Imap.open_or_create heap ~slot:0 in
  Printf.printf "   key 777 absent: %b; map still has %d entries\n"
    (Imap.find m 777 = None)
    (Imap.cardinal m);

  (* 3. multi-datastructure FASEs are all-or-nothing *)
  let tx = Pmstm.Tx.create heap ~version:Pmstm.Tx.V1_5 in
  let other = Imap.open_or_create heap ~slot:1 in
  ignore (other : Imap.t);
  let v0 = Mod_core.Handle.current m in
  let v1 = Mod_core.Handle.current (Imap.open_or_create heap ~slot:1) in
  let value = Option.get (Imap.find_in heap v0 1) in
  let v0', _ = Imap.remove_pure heap v0 1 in
  let v1' = Imap.insert_pure heap v1 1 value in
  Mod_core.Commit.unrelated heap tx [ (0, v0'); (1, v1') ];
  let report =
    recovered "cross-map move"
      (Mod_core.Recovery.crash_and_recover ~stm:tx heap)
  in
  Format.printf "3. cross-map move + crash: %a@." Mod_core.Recovery.pp_report
    report;
  let m = Imap.open_or_create heap ~slot:0 in
  let other = Imap.open_or_create heap ~slot:1 in
  Printf.printf "   key 1 in exactly one map: %b\n"
    (Imap.mem m 1 <> Imap.mem other 1);

  (* 4. the whole execution passes the Section 5.4 audit *)
  let audit = Mod_core.Consistency.check (Pmalloc.Heap.trace heap) in
  Format.printf "4. %a@." Mod_core.Consistency.pp_report audit;

  (* 5. a file-backed heap outlives the process.  Every fence batches the
     dirty cachelines through a journaled, failure-atomic writeback to the
     image file; reopening replays or discards whatever a kill left
     behind.  (modpm killtest does this with a real fork + SIGKILL.) *)
  let path = Filename.temp_file "mod_example" ".img" in
  let fheap = Pmalloc.Heap.create ~capacity_words:(1 lsl 16) ~file:path () in
  let fm = Imap.open_or_create fheap ~slot:0 in
  for k = 1 to 100 do
    Imap.insert fm k (k * 7)
  done;
  Pmalloc.Heap.close fheap;
  (* ... process exits; a new one reopens the image *)
  (match Mod_core.Recovery.open_file ~path () with
  | Error e ->
      Printf.eprintf "reopen failed: %s\n" (Mod_core.Error.to_string e);
      exit 1
  | Ok open_report ->
      let fheap = open_report.Mod_core.Recovery.heap in
      let fm = Imap.open_or_create fheap ~slot:0 in
      Printf.printf
        "5. file-backed reopen (%s journal, %.2f ms): %d entries back, 50 \
         -> %d\n"
        (match open_report.Mod_core.Recovery.journal with
        | `None -> "no"
        | `Replayed n -> Printf.sprintf "replayed %d-line" n
        | `Discarded -> "discarded torn")
        (open_report.Mod_core.Recovery.reopen_ns /. 1e6)
        (Imap.cardinal fm)
        (Option.get (Imap.find fm 50));
      let fsck = Pmalloc.Fsck.check path in
      Printf.printf "   fsck: %s\n"
        (Pmalloc.Fsck.verdict_name fsck.Pmalloc.Fsck.verdict);
      Pmalloc.Heap.close fheap);

  (* 6. unusable images degrade to a typed error, never an exception *)
  let oc = open_out path in
  output_string oc "not a heap image";
  close_out oc;
  (match Mod_core.Recovery.open_file ~path () with
  | Ok _ -> Printf.eprintf "garbage image opened?!\n"
  | Error e ->
      Printf.printf "6. garbage image: typed %s\n"
        (Mod_core.Error.to_string e));
  Sys.remove path
