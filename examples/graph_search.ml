(* Recoverable breadth-first search, in the style of the paper's bfs
   workload (Table 2): the frontier lives in a durable MOD queue, so a
   crash mid-search resumes from the persisted frontier instead of
   restarting from scratch.  The graph itself is volatile and rebuilt on
   startup, exactly as in the paper (which rebuilds the Flickr graph per
   run).

   Run with: dune exec examples/graph_search.exe *)

let () =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 21) () in
  let g = Workloads.Graph.rmat ~n:20_000 ~edges:120_000 ~seed:7 in
  let src = Workloads.Graph.good_source g in
  Printf.printf "graph: %d nodes, R-MAT, source %d (out-degree %d)\n"
    g.Workloads.Graph.n src
    (Workloads.Graph.out_degree g src);

  let frontier = Mod_core.Dqueue.open_or_create heap ~slot:0 in
  let visited = Bytes.make g.Workloads.Graph.n '\000' in
  Bytes.set visited src '\001';
  Mod_core.Dqueue.enqueue frontier (Pmem.Word.of_int src);

  (* run the search, but lose power after 3000 dequeues *)
  let steps = ref 0 in
  let crashed = ref false in
  (try
     while not (Mod_core.Dqueue.is_empty frontier) do
       incr steps;
       if !steps = 3000 then raise Exit;
       match Mod_core.Dqueue.dequeue frontier with
       | None -> ()
       | Some w ->
           let v = Pmem.Word.to_int w in
           Array.iter
             (fun u ->
               if Bytes.get visited u = '\000' then begin
                 Bytes.set visited u '\001';
                 Mod_core.Dqueue.enqueue frontier (Pmem.Word.of_int u)
               end)
             g.Workloads.Graph.adj.(v)
     done
   with Exit ->
     crashed := true;
     ignore (Mod_core.Recovery.crash_and_recover_exn heap));
  assert !crashed;
  let frontier = Mod_core.Dqueue.open_or_create heap ~slot:0 in
  Printf.printf "power failure after %d steps; frontier recovered with %d nodes\n"
    !steps
    (Mod_core.Dqueue.length frontier);

  (* The visited bitmap was volatile and is lost; rebuild it as "anything
     that is or was in the frontier" is unnecessary -- BFS stays correct if
     we simply re-run with the recovered frontier, revisiting at most the
     in-flight wave.  Mark the recovered frontier as visited and go. *)
  let visited = Bytes.make g.Workloads.Graph.n '\000' in
  Mod_core.Dqueue.iter frontier (fun w ->
      Bytes.set visited (Pmem.Word.to_int w) '\001');
  let reached = ref (Mod_core.Dqueue.length frontier) in
  while not (Mod_core.Dqueue.is_empty frontier) do
    match Mod_core.Dqueue.dequeue frontier with
    | None -> ()
    | Some w ->
        let v = Pmem.Word.to_int w in
        Array.iter
          (fun u ->
            if Bytes.get visited u = '\000' then begin
              Bytes.set visited u '\001';
              incr reached;
              Mod_core.Dqueue.enqueue frontier (Pmem.Word.of_int u)
            end)
          g.Workloads.Graph.adj.(v)
  done;
  Printf.printf "search completed after recovery; %d nodes reached this phase\n"
    !reached
