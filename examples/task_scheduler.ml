(* A crash-safe deadline scheduler built on the sixth MOD datastructure:
   the durable priority queue produced by the paper's recipe (Section 4.2)
   from a purely functional leftist heap.

   Jobs are submitted with a deadline; the dispatcher repeatedly takes the
   earliest one.  A power failure between any two operations loses no job
   and dispatches none twice, with no logging and one fence per operation.

   Run with: dune exec examples/task_scheduler.exe *)

let () =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
  let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in

  (* submit a day of jobs: deadline encoded as minutes-since-midnight *)
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 200 do
    Mod_core.Dpqueue.insert pq (Random.State.int rng 1440)
  done;
  Printf.printf "submitted %d jobs, earliest at minute %d\n"
    (Mod_core.Dpqueue.cardinal pq)
    (Option.get (Mod_core.Dpqueue.find_min pq));

  (* dispatch for a while *)
  let dispatched = ref [] in
  for _ = 1 to 80 do
    match Mod_core.Dpqueue.delete_min pq with
    | Some deadline -> dispatched := deadline :: !dispatched
    | None -> ()
  done;
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> a >= b && check rest
      | _ -> true
    in
    check !dispatched
  in
  Printf.printf "dispatched 80 jobs in deadline order: %b\n" monotone;

  (* power failure *)
  Pmalloc.Heap.sfence heap;
  let report = Mod_core.Recovery.crash_and_recover_exn heap in
  Format.printf "crash: %a@." Mod_core.Recovery.pp_report report;
  let pq = Mod_core.Dpqueue.open_or_create heap ~slot:0 in
  Printf.printf "after recovery: %d jobs still queued, earliest at minute %d\n"
    (Mod_core.Dpqueue.cardinal pq)
    (Option.get (Mod_core.Dpqueue.find_min pq));

  (* and the cost profile is MOD's: one fence per operation *)
  let _, profile =
    Mod_core.Fase.run heap (fun () -> Mod_core.Dpqueue.insert pq 720)
  in
  Format.printf "one submit: %a@." Mod_core.Fase.pp_profile profile
