(* A recoverable key-value cache, in the style of the paper's memcached
   port (Table 2): one recoverable map, string keys and values, every set
   a single-update FASE.

   Run with: dune exec examples/kv_store.exe *)

module Kv = Mod_core.Dmap.Make (Pfds.Kv.String_blob) (Pfds.Kv.String_blob)

type store = { heap : Pmalloc.Heap.t; map : Kv.t }

let open_store heap = { heap; map = Kv.open_or_create heap ~slot:0 }

let set store key value = Kv.insert store.map key value
let get store key = Kv.find store.map key
let delete store key = Kv.remove store.map key

let () =
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 21) () in
  let store = open_store heap in

  (* a burst of sets, as a cache would see *)
  for i = 1 to 500 do
    set store
      (Printf.sprintf "user:%04d" i)
      (Printf.sprintf "{\"id\":%d,\"plan\":\"%s\"}" i
         (if i mod 3 = 0 then "pro" else "free"))
  done;
  set store "user:0042" "{\"id\":42,\"plan\":\"enterprise\"}";
  ignore (delete store "user:0013" : bool);

  Printf.printf "entries: %d\n" (Kv.cardinal store.map);
  Printf.printf "user:0042 -> %s\n"
    (Option.value ~default:"<absent>" (get store "user:0042"));
  Printf.printf "user:0013 -> %s\n"
    (Option.value ~default:"<absent>" (get store "user:0013"));

  (* kill the power mid-run; the cache survives (fence first so even the
     newest write's root update is past its epoch boundary) *)
  Pmalloc.Heap.sfence heap;
  let _ = Mod_core.Recovery.crash_and_recover_exn heap in
  let store = open_store heap in
  Printf.printf "after crash, entries: %d, user:0042 -> %s\n"
    (Kv.cardinal store.map)
    (Option.value ~default:"<absent>" (get store "user:0042"));

  (* measure what the paper measures: sets are ~95%% of memcached traffic
     and each is a one-fence FASE *)
  let _, profile =
    Mod_core.Fase.run heap (fun () -> set store "user:9999" (String.make 512 'x'))
  in
  Format.printf "one 512-byte set: %a@." Mod_core.Fase.pp_profile profile
