(** Purely functional min-heap (leftist heap) in persistent memory -- the
    demonstration that the paper's recipe (Section 4.2) yields new MOD
    datastructures beyond the five it ships.  See {!Mod_core.Dpqueue} for
    the durable wrapper. *)

type root = Pmem.Word.t
(** A heap version: pointer to the root node, or null for empty. *)

val empty : root
val is_empty : root -> bool

val insert : Pmalloc.Heap.t -> root -> int -> root
(** [insert heap h p] adds priority [p]; copies only the merge spine
    (O(log n) nodes), shares the rest.  Owned result. *)

val merge : Pmalloc.Heap.t -> root -> root -> root
(** Merge two (borrowed) versions into an owned one. *)

val find_min : Pmalloc.Heap.t -> root -> int option

val delete_min : Pmalloc.Heap.t -> root -> (int * root) option
(** Returns the minimum and an owned version without it. *)

val fold : Pmalloc.Heap.t -> root -> (int -> 'a -> 'a) -> 'a -> 'a
val cardinal : Pmalloc.Heap.t -> root -> int
val to_sorted_list_model : Pmalloc.Heap.t -> root -> int list
(** Drain-free sorted view (for tests). *)
