(** Purely functional stack in persistent memory: a cons list of two-word
    nodes [value; next] (Figure 1 of the paper is exactly this structure).

    All update operations are pure: they return an {e owned} new version
    and never modify the original.  New nodes are flushed with unordered
    clwbs; the single ordering point belongs to Commit. *)

type root = Pmem.Word.t
(** A stack version: pointer to the head node, or null for empty. *)

val empty : root
val is_empty : root -> bool

val push : Pmalloc.Heap.t -> root -> Pmem.Word.t -> root
(** [push heap v w] conses the owned value word [w]; allocates exactly one
    node, sharing the whole previous stack. *)

val pop : Pmalloc.Heap.t -> root -> (Pmem.Word.t * root) option
(** Returns the borrowed value word of the top element and an owned new
    head.  The value word stays valid until the pre-pop version is
    released (i.e. until after Commit). *)

val peek : Pmalloc.Heap.t -> root -> Pmem.Word.t option
val iter : Pmalloc.Heap.t -> root -> (Pmem.Word.t -> unit) -> unit
val length : Pmalloc.Heap.t -> root -> int
val to_list : Pmalloc.Heap.t -> root -> Pmem.Word.t list
