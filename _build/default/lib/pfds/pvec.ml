(** Persistent bit-partitioned vector in persistent memory.

    The paper's MOD vector uses a Relaxed Radix Balanced tree (Stucki et
    al., ICFP'15; reference [44]); for the operations the evaluation
    exercises (push_back, update, read, pop_back) the RRB tree degenerates
    to the classic 32-way radix trie with a tail buffer, which is what we
    implement here ([Rrb] adds the relaxed concatenation/slicing layer on
    top).  Every update copies the O(log32 n) nodes on the path to the
    affected leaf -- this is the "dense array becomes a tree" effect that
    makes the paper's vector workloads slower and more flush-heavy than
    PMDK's flat array (Sections 6.3-6.5).

    Layout:
    - descriptor (4 words): [size; shift; root; tail]
    - interior node: 32 child words (null-padded)
    - leaf node / tail: up to 32 value words

    All updates are pure and return an owned descriptor pointer. *)

let bits = 5
let branch = 1 lsl bits
let mask = branch - 1

type root = Pmem.Word.t

let desc_words = 4

let make_desc heap ~size ~shift ~root ~tail =
  let d = Node.alloc heap ~words:desc_words in
  Node.set heap d 0 (Pmem.Word.of_int size);
  Node.set heap d 1 (Pmem.Word.of_int shift);
  Node.set heap d 2 root;
  Node.set heap d 3 tail;
  Node.finish heap d;
  Pmem.Word.of_ptr d

(* An owned empty-vector descriptor. *)
let create heap =
  make_desc heap ~size:0 ~shift:bits ~root:Pmem.Word.null ~tail:Pmem.Word.null

let size heap v = Pmem.Word.to_int (Node.get heap (Pmem.Word.to_ptr v) 0)
let shift_of heap v = Pmem.Word.to_int (Node.get heap (Pmem.Word.to_ptr v) 1)
let root_of heap v = Node.get heap (Pmem.Word.to_ptr v) 2
let tail_of heap v = Node.get heap (Pmem.Word.to_ptr v) 3
let is_empty heap v = size heap v = 0

let tail_off size = if size < branch then 0 else ((size - 1) lsr bits) lsl bits

let check_bounds heap v i fn =
  let n = size heap v in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Pvec.%s: index %d out of bounds (size %d)" fn i n)

(* Leaf that holds elements [i - (i land mask) .. ] of the tree part. *)
let rec leaf_for heap shift node i =
  if shift = 0 then node
  else
    leaf_for heap (shift - bits)
      (Pmem.Word.to_ptr (Node.get heap node ((i lsr shift) land mask)))
      i

let get heap v i =
  check_bounds heap v i "get";
  let n = size heap v in
  if i >= tail_off n then
    Node.get heap (Pmem.Word.to_ptr (tail_of heap v)) (i land mask)
  else begin
    let leaf =
      leaf_for heap (shift_of heap v)
        (Pmem.Word.to_ptr (root_of heap v))
        i
    in
    Node.get heap leaf (i land mask)
  end

(* Fresh single-branch path of interior nodes of height [level] ending at
   [node] (an owned leaf). *)
let rec new_path heap level node =
  if level = 0 then node
  else begin
    let n = Node.alloc heap ~words:branch in
    Node.set heap n 0 (new_path heap (level - bits) node);
    for i = 1 to branch - 1 do
      Node.set heap n i Pmem.Word.null
    done;
    Node.finish heap n;
    Pmem.Word.of_ptr n
  end

(* Clone an interior node, sharing all slots except [slot], which receives
   the owned word [w]. *)
let clone_with heap node slot w =
  let fresh = Node.alloc heap ~words:branch in
  for i = 0 to branch - 1 do
    if i = slot then Node.set heap fresh i w
    else Node.set_shared heap fresh i (Node.get heap node i)
  done;
  Node.finish heap fresh;
  Pmem.Word.of_ptr fresh

(* Push a full tail leaf into the tree.  [size] is the pre-push element
   count of the tree+tail. *)
let rec push_tail heap size level parent tail_word =
  let subidx = ((size - 1) lsr level) land mask in
  let child =
    if level = bits then tail_word
    else begin
      let existing = Node.get heap parent subidx in
      if Pmem.Word.is_null existing then new_path heap (level - bits) tail_word
      else
        push_tail heap size (level - bits)
          (Pmem.Word.to_ptr existing)
          tail_word
    end
  in
  clone_with heap parent subidx child

let push_back heap v w =
  let n = size heap v in
  let shift = shift_of heap v in
  let root = root_of heap v in
  let tail = tail_of heap v in
  let tail_len = n - tail_off n in
  if tail_len > 0 && tail_len < branch then begin
    (* room in the tail: copy it one element bigger *)
    let src = Pmem.Word.to_ptr tail in
    let fresh = Node.alloc heap ~words:(tail_len + 1) in
    Node.blit_shared heap ~src ~soff:0 ~dst:fresh ~doff:0 ~len:tail_len;
    Node.set heap fresh tail_len w;
    Node.finish heap fresh;
    make_desc heap ~size:(n + 1) ~shift
      ~root:(Node.share heap root)
      ~tail:(Pmem.Word.of_ptr fresh)
  end
  else if n = 0 then begin
    let fresh = Node.alloc heap ~words:1 in
    Node.set heap fresh 0 w;
    Node.finish heap fresh;
    make_desc heap ~size:1 ~shift ~root:Pmem.Word.null
      ~tail:(Pmem.Word.of_ptr fresh)
  end
  else begin
    (* tail is full: push it into the tree, start a new tail *)
    let tail_shared = Node.share heap tail in
    let root', shift' =
      if Pmem.Word.is_null root then
        (* first spill: an interior root whose slot 0 leads to the leaf *)
        (new_path heap shift tail_shared, shift)
      else if n lsr bits > 1 lsl shift then begin
        (* root overflow: add a level *)
        let fresh = Node.alloc heap ~words:branch in
        Node.set_shared heap fresh 0 root;
        Node.set heap fresh 1 (new_path heap shift tail_shared);
        for i = 2 to branch - 1 do
          Node.set heap fresh i Pmem.Word.null
        done;
        Node.finish heap fresh;
        (Pmem.Word.of_ptr fresh, shift + bits)
      end
      else (push_tail heap n shift (Pmem.Word.to_ptr root) tail_shared, shift)
    in
    let fresh_tail = Node.alloc heap ~words:1 in
    Node.set heap fresh_tail 0 w;
    Node.finish heap fresh_tail;
    make_desc heap ~size:(n + 1) ~shift:shift' ~root:root'
      ~tail:(Pmem.Word.of_ptr fresh_tail)
  end

(* Path-copying point update inside the tree. *)
let rec do_assoc heap level node i w =
  if level = 0 then begin
    let fresh = Node.alloc heap ~words:branch in
    for s = 0 to branch - 1 do
      if s = (i land mask) then Node.set heap fresh s w
      else Node.set_shared heap fresh s (Node.get heap node s)
    done;
    Node.finish heap fresh;
    Pmem.Word.of_ptr fresh
  end
  else begin
    let subidx = (i lsr level) land mask in
    let child =
      do_assoc heap (level - bits)
        (Pmem.Word.to_ptr (Node.get heap node subidx))
        i w
    in
    clone_with heap node subidx child
  end

let set heap v i w =
  check_bounds heap v i "set";
  let n = size heap v in
  let shift = shift_of heap v in
  if i >= tail_off n then begin
    let tail = Pmem.Word.to_ptr (tail_of heap v) in
    let tail_len = n - tail_off n in
    let fresh = Node.alloc heap ~words:tail_len in
    for s = 0 to tail_len - 1 do
      if s = (i land mask) then Node.set heap fresh s w
      else Node.set_shared heap fresh s (Node.get heap tail s)
    done;
    Node.finish heap fresh;
    make_desc heap ~size:n ~shift
      ~root:(Node.share heap (root_of heap v))
      ~tail:(Pmem.Word.of_ptr fresh)
  end
  else begin
    let root' =
      do_assoc heap shift (Pmem.Word.to_ptr (root_of heap v)) i w
    in
    make_desc heap ~size:n ~shift ~root:root'
      ~tail:(Node.share heap (tail_of heap v))
  end

(* Remove the last leaf from the tree; returns the owned new subtree word
   (null when the subtree empties).  [size] is the pre-pop element count. *)
let rec pop_tail heap size level node =
  let subidx = ((size - 2) lsr level) land mask in
  if level > bits then begin
    let child =
      pop_tail heap size (level - bits)
        (Pmem.Word.to_ptr (Node.get heap node subidx))
    in
    if Pmem.Word.is_null child && subidx = 0 then Pmem.Word.null
    else clone_with heap node subidx child
  end
  else if subidx = 0 then Pmem.Word.null
  else clone_with heap node subidx Pmem.Word.null

let pop_back heap v =
  let n = size heap v in
  if n = 0 then invalid_arg "Pvec.pop_back: empty vector";
  let shift = shift_of heap v in
  let last = get heap v (n - 1) in
  if n = 1 then (last, create heap)
  else begin
    let tail_len = n - tail_off n in
    let desc =
      if tail_len > 1 then begin
        (* shrink the tail *)
        let tail = Pmem.Word.to_ptr (tail_of heap v) in
        let fresh = Node.alloc heap ~words:(tail_len - 1) in
        Node.blit_shared heap ~src:tail ~soff:0 ~dst:fresh ~doff:0
          ~len:(tail_len - 1);
        Node.finish heap fresh;
        make_desc heap ~size:(n - 1) ~shift
          ~root:(Node.share heap (root_of heap v))
          ~tail:(Pmem.Word.of_ptr fresh)
      end
      else begin
        (* tail empties: the tree's last leaf becomes the new tail *)
        let root = Pmem.Word.to_ptr (root_of heap v) in
        let new_tail = leaf_for heap shift root (n - 2) in
        Pmalloc.Heap.retain heap new_tail;
        let root' = pop_tail heap n shift root in
        let root', shift' =
          if
            shift > bits
            && (not (Pmem.Word.is_null root'))
            && Pmem.Word.is_null (Node.get heap (Pmem.Word.to_ptr root') 1)
          then begin
            (* collapse a one-child root level *)
            let inner = Node.get heap (Pmem.Word.to_ptr root') 0 in
            let inner = Node.share heap inner in
            Pmalloc.Heap.release heap (Pmem.Word.to_ptr root');
            (inner, shift - bits)
          end
          else (root', shift)
        in
        make_desc heap ~size:(n - 1) ~shift:shift' ~root:root'
          ~tail:(Pmem.Word.of_ptr new_tail)
      end
    in
    (last, desc)
  end

let iter heap v fn =
  let n = size heap v in
  for i = 0 to n - 1 do
    fn (get heap v i)
  done

let to_list heap v =
  let acc = ref [] in
  iter heap v (fun w -> acc := w :: !acc);
  List.rev !acc
