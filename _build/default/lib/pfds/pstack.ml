(** Purely functional stack in persistent memory: a cons list of two-word
    nodes [value; next].  Push creates one node; pop shares the tail.  Both
    are pure: the original version is never modified (Figure 1 of the
    paper is exactly this structure). *)

type root = Pmem.Word.t

let empty = Pmem.Word.null
let is_empty root = Pmem.Word.is_null root

(* [v] is an owned value word; the result is an owned new head. *)
let push heap root v =
  let node = Node.alloc heap ~words:2 in
  Node.set heap node 0 v;
  Node.set_shared heap node 1 root;
  Node.finish heap node;
  Pmem.Word.of_ptr node

(* Returns the borrowed value word of the top element and an owned new
   head.  The value word stays alive until the pre-pop version is
   released, i.e. until after Commit; callers must read or re-own it
   before then. *)
let pop heap root =
  if is_empty root then None
  else begin
    let node = Pmem.Word.to_ptr root in
    let v = Node.get heap node 0 in
    let next = Node.get heap node 1 in
    Some (v, Node.share heap next)
  end

let peek heap root =
  if is_empty root then None
  else Some (Node.get heap (Pmem.Word.to_ptr root) 0)

let iter heap root fn =
  let rec go w =
    if not (Pmem.Word.is_null w) then begin
      let node = Pmem.Word.to_ptr w in
      fn (Node.get heap node 0);
      go (Node.get heap node 1)
    end
  in
  go root

let length heap root =
  let n = ref 0 in
  iter heap root (fun _ -> incr n);
  !n

let to_list heap root =
  let acc = ref [] in
  iter heap root (fun w -> acc := w :: !acc);
  List.rev !acc
