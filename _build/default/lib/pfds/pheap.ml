(** Purely functional min-heap (leftist heap) in persistent memory.

    The paper ships five datastructures and a {e recipe} for making more
    from existing functional datastructures (Section 4.2): allocate the
    node state in PM, keep every update a pure function, flush all new
    nodes with unordered clwbs, and let Commit provide the single fence.
    This module follows the recipe for Okasaki's leftist heap, yielding a
    durable priority queue ([Mod_core.Dpqueue]) the paper does not have --
    a demonstration that the recipe generalizes.

    Node layout (Scanned, 4 words): [rank; priority; left; right].
    Merge copies only the right spine (O(log n) nodes); the rest of both
    heaps is shared. *)

type root = Pmem.Word.t

let empty = Pmem.Word.null
let is_empty root = Pmem.Word.is_null root

let f_rank = 0
let f_prio = 1
let f_left = 2
let f_right = 3

let rank heap root =
  if is_empty root then 0
  else Pmem.Word.to_int (Node.get heap (Pmem.Word.to_ptr root) f_rank)

let prio heap root = Pmem.Word.to_int (Node.get heap (Pmem.Word.to_ptr root) f_prio)

(* Build a node from a priority and two owned subtree words, restoring the
   leftist invariant (rank of left >= rank of right). *)
let make_node heap p a b =
  let ra = rank heap a and rb = rank heap b in
  let left, right, r = if ra >= rb then (a, b, rb + 1) else (b, a, ra + 1) in
  let n = Node.alloc heap ~words:4 in
  Node.set heap n f_rank (Pmem.Word.of_int r);
  Node.set heap n f_prio (Pmem.Word.of_int p);
  Node.set heap n f_left left;
  Node.set heap n f_right right;
  Node.finish heap n;
  Pmem.Word.of_ptr n

(* Merge two heaps; the arguments are borrowed (they stay part of the old
   versions), the result is owned.  Only right-spine nodes are fresh. *)
let rec merge heap h1 h2 =
  if is_empty h1 then Node.share heap h2
  else if is_empty h2 then Node.share heap h1
  else begin
    let n1 = Pmem.Word.to_ptr h1 and n2 = Pmem.Word.to_ptr h2 in
    if prio heap h1 <= prio heap h2 then begin
      let left = Node.share heap (Node.get heap n1 f_left) in
      let right = merge heap (Node.get heap n1 f_right) h2 in
      make_node heap (prio heap h1) left right
    end
    else begin
      let left = Node.share heap (Node.get heap n2 f_left) in
      let right = merge heap h1 (Node.get heap n2 f_right) in
      make_node heap (prio heap h2) left right
    end
  end

(* Pure update operations: owned results, originals untouched. *)

let insert heap root p =
  let single = make_node heap p Pmem.Word.null Pmem.Word.null in
  let merged = merge heap root single in
  (* [merge] shares its borrowed arguments, so it retained [single]; drop
     the constructor's ownership. *)
  Pmalloc.Heap.release heap (Pmem.Word.to_ptr single);
  merged

let find_min heap root = if is_empty root then None else Some (prio heap root)

(* Returns the minimum and an owned heap without it. *)
let delete_min heap root =
  if is_empty root then None
  else begin
    let n = Pmem.Word.to_ptr root in
    let rest = merge heap (Node.get heap n f_left) (Node.get heap n f_right) in
    Some (prio heap root, rest)
  end

let rec fold heap root fn acc =
  if is_empty root then acc
  else begin
    let n = Pmem.Word.to_ptr root in
    let acc = fn (prio heap root) acc in
    let acc = fold heap (Node.get heap n f_left) fn acc in
    fold heap (Node.get heap n f_right) fn acc
  end

let cardinal heap root = fold heap root (fun _ acc -> acc + 1) 0
let to_sorted_list_model heap root = List.sort compare (fold heap root (fun p acc -> p :: acc) [])
